module hftnetview

go 1.23
