// Package synth generates the synthetic Chicago–New Jersey corridor
// license database this reproduction substitutes for the live FCC ULS
// corpus (see DESIGN.md). The generator emits license filings — towers,
// paths, frequencies, grant/cancellation dates — for the ten HFT
// networks the paper names, plus the non-HFT licensees that make the
// §2.2 candidate-discovery funnel (57 → 29 → 9) come out right.
//
// Everything is deterministic: per-licensee seeded RNG, and geometric
// calibration by bisection against the paper's reported end-to-end
// latencies. The generator controls only where towers stand and when
// licenses were filed; every published number is then *measured* by the
// reconstruction pipeline, exactly as the paper measures the real corpus.
package synth

import (
	"time"

	"hftnetview/internal/uls"
)

// FrequencyPlan weights a network's draw over the three corridor bands.
// HFT corridor licenses cluster in the 6, 11 and 18 GHz common-carrier
// bands; §5 shows networks differ sharply in band strategy.
type FrequencyPlan struct {
	// Trunk6, Trunk11, Trunk18 weight the band choice for trunk and spur
	// links; Alt6, Alt11, Alt18 weight redundancy (rail/rung) links.
	Trunk6, Trunk11, Trunk18 float64
	Alt6, Alt11, Alt18       float64
}

// Phase is a historical trunk upgrade (§4): before Date, the towers in
// trunk-fraction range [From, To] sat on a worse alignment that cost
// DeltaMicros extra one-way latency on the CME–NY4 path; at Date the
// licensee cancelled those filings and granted replacements on the final
// alignment. Phases of one network must not overlap and must leave at
// least one untouched tower between their ranges.
type Phase struct {
	Date        uls.Date
	From, To    float64
	DeltaMicros float64
}

// Tranche staggers the initial trunk build: links whose midpoint lies at
// trunk fraction ≤ UpTo (and after the previous tranche's UpTo) are
// granted at Date.
type Tranche struct {
	Date uls.Date
	UpTo float64
}

// Ladder adds a redundancy rail parallel to the trunk over fraction
// range [From, To], granted at Date. Rail links and rungs draw from the
// Alt frequency pools.
type Ladder struct {
	From, To float64
	// Density is rail towers per spanned trunk link (>1 = shorter rail
	// links, as Webline's 36 km vs 48.5 km medians require).
	Density float64
	// RungEvery adds a rail↔trunk rung every that many rail towers (the
	// rail's two ends are always tied to the trunk).
	RungEvery int
	// LateralKM is the rail's lateral offset from the trunk.
	LateralKM float64
	// Uniform samples rail towers at uniform arc spacing instead of
	// aligning them to trunk vertices. Only safe over straight trunk
	// sections (a uniform rail beside a zigzag trunk would cut its
	// corners and undercut the calibrated latency).
	Uniform bool
	Date    uls.Date
}

// SpurLadder mirrors Ladder for a spur (NYSE / NASDAQ legs), expressed
// over the spur's own 0..1 fraction range.
type SpurLadder struct {
	From, To  float64
	Density   float64
	RungEvery int
	LateralKM float64
	Uniform   bool
	Date      uls.Date
}

// NetworkSpec describes one HFT network to generate.
type NetworkSpec struct {
	Name       string
	CallPrefix string // two letters, unique per licensee
	FRN        string

	// TrunkTowers is the tower count of the CME–NY4 shortest path
	// (Table 1's #Towers column), gateways included.
	TrunkTowers int

	// TargetNY4/NYSE/NASDAQ are the calibration targets in one-way ms
	// (Table 2). Zero disables that leg.
	TargetNY4, TargetNYSE, TargetNASDAQ float64

	// BranchNASDAQ and BranchNYSE are the trunk fractions where the legs
	// leave the trunk; BranchNASDAQ must be ≤ BranchNYSE.
	BranchNASDAQ, BranchNYSE float64

	// SpurTowersNYSE/NASDAQ are tower counts of each leg beyond the
	// branch tower (gateway included).
	SpurTowersNYSE, SpurTowersNASDAQ int

	// FiberKM are the data-center-to-gateway fiber tail lengths.
	FiberCMEKM, FiberNY4KM, FiberNYSEKM, FiberNASDAQKM float64

	// BaseJitterKM is the residual lateral jitter of the trunk west of
	// the NASDAQ branch (the "straight" part); the east part and the
	// spurs get amplitudes solved by bisection.
	BaseJitterKM float64

	Tranches                   []Tranche // initial build schedule; at least one required
	Phases                     []Phase   // §4 upgrade history
	Ladders                    []Ladder  // §5 redundancy
	LaddersNYSE, LaddersNASDAQ []SpurLadder

	// SpurGrantNYSE/NASDAQ date the legs' filings (zero = last/first
	// tranche respectively); StrayGrant dates the stray filings (zero =
	// first tranche).
	SpurGrantNYSE, SpurGrantNASDAQ uls.Date
	StrayGrant                     uls.Date

	// LicensesPerLink is 2 for networks that file each hop direction
	// separately (doubling their Fig 2 footprint), 1 otherwise; 0 means
	// the default of 2.
	LicensesPerLink int

	// JointPartner, when set, splits the network's filings between
	// Name and this second entity in alternating runs of JointRun links
	// — the "multiple entities filing on one network's behalf" blind
	// spot of §2.4. Both entities share the FRN; the partner also files
	// one stray link near CME (so it surfaces in the geographic search)
	// under JointPartnerPrefix call signs.
	JointPartner       string
	JointPartnerPrefix string
	JointRun           int

	// Strays adds that many detached off-corridor links at the first
	// tranche date (the disconnected filings visible in Fig 3).
	Strays int

	// DeathFrom/DeathTo, when set, cancel every license still active
	// over that window (National Tower Company's 2017–18 exit).
	DeathFrom, DeathTo uls.Date

	Freq FrequencyPlan
}

// d is a date-literal helper.
func d(y int, m time.Month, day int) uls.Date { return uls.NewDate(y, m, day) }

// Canonical licensee names (Table 1 plus the §4 casualty).
const (
	NLN   = "New Line Networks"
	PB    = "Pierce Broadband"
	JM    = "Jefferson Microwave"
	BC    = "Blueline Comm"
	WH    = "Webline Holdings"
	AQ2AT = "AQ2AT"
	WI    = "Wireless Internetwork"
	GTT   = "GTT Americas"
	SW    = "SW Networks"
	NTC   = "National Tower Company"
)

// JointPair names the hidden shared network split across two filing
// entities (§2.4's blind spot, resolvable by internal/entity).
const (
	JointA = "Fox River Relay"
	JointB = "Laurel Highlands Comm"
)

// HFTNetworks returns the corridor HFT network specs: the ten networks
// of Tables 1–2 plus the hidden joint-filing pair, calibrated to the
// paper's Tables 1–3 and Figs 1–2 (see DESIGN.md for the targets).
func HFTNetworks() []NetworkSpec {
	return []NetworkSpec{
		{
			// The §2.4 case: one physical network filed under two
			// entities. Neither alone is end-to-end connected; their
			// union is (≈4.055 ms), discoverable only by joint analysis.
			Name: JointA, CallPrefix: "FR", FRN: "0031415926",
			JointPartner: JointB, JointPartnerPrefix: "LH", JointRun: 4,
			TrunkTowers: 26,
			TargetNY4:   4.05500,
			FiberCMEKM:  1.0, FiberNY4KM: 1.0,
			BaseJitterKM:    1.0,
			Tranches:        []Tranche{{Date: d(2016, time.May, 11), UpTo: 1.01}},
			LicensesPerLink: 2,
			Freq: FrequencyPlan{
				Trunk6: 0.30, Trunk11: 0.60, Trunk18: 0.10,
				Alt6: 0.30, Alt11: 0.60, Alt18: 0.10,
			},
		},
		{
			Name: NLN, CallPrefix: "NL", FRN: "0024218701",
			TrunkTowers: 25,
			TargetNY4:   3.96171, TargetNYSE: 3.93209, TargetNASDAQ: 3.92728,
			BranchNASDAQ: 0.44, BranchNYSE: 0.85,
			SpurTowersNYSE: 6, SpurTowersNASDAQ: 13,
			FiberCMEKM: 0.3, FiberNY4KM: 0.3, FiberNYSEKM: 0.3, FiberNASDAQKM: 0.3,
			BaseJitterKM: 0.15,
			Tranches: []Tranche{
				{Date: d(2014, time.September, 10), UpTo: 0.40},
				{Date: d(2015, time.April, 20), UpTo: 0.78},
				{Date: d(2015, time.October, 6), UpTo: 1.01},
			},
			Phases: []Phase{
				{Date: d(2016, time.July, 12), From: 0.10, To: 0.22, DeltaMicros: 8},
				{Date: d(2017, time.June, 8), From: 0.28, To: 0.40, DeltaMicros: 11},
				{Date: d(2018, time.August, 21), From: 0.48, To: 0.56, DeltaMicros: 3.29},
			},
			Ladders: []Ladder{
				{From: 0.60, To: 0.74, Density: 1.1, RungEvery: 3, LateralKM: 3.5,
					Date: d(2016, time.May, 17)},
				{From: 0.78, To: 0.93, Density: 1.1, RungEvery: 3, LateralKM: 3.0,
					Date: d(2017, time.March, 9)},
			},
			LaddersNYSE: []SpurLadder{
				{From: 0.1, To: 0.9, Density: 1.2, RungEvery: 2, LateralKM: 2.5,
					Date: d(2017, time.September, 14)},
			},
			LaddersNASDAQ: []SpurLadder{
				{From: 0.30, To: 0.55, Density: 1.0, RungEvery: 3, LateralKM: 2.5,
					Date: d(2017, time.November, 15)},
			},
			Strays:          4,
			SpurGrantNASDAQ: d(2014, time.November, 12),
			SpurGrantNYSE:   d(2015, time.August, 19),
			StrayGrant:      d(2015, time.June, 10),
			LicensesPerLink: 2,
			Freq: FrequencyPlan{
				Trunk6: 0.05, Trunk11: 0.90, Trunk18: 0.05,
				Alt6: 0.40, Alt11: 0.50, Alt18: 0.10,
			},
		},
		{
			Name: PB, CallPrefix: "PB", FRN: "0028779011",
			TrunkTowers: 29,
			TargetNY4:   3.96209, TargetNYSE: 3.97000, TargetNASDAQ: 3.94000,
			BranchNASDAQ: 0.60, BranchNYSE: 0.88,
			SpurTowersNYSE: 5, SpurTowersNASDAQ: 11,
			FiberCMEKM: 0.3, FiberNY4KM: 0.3, FiberNYSEKM: 0.4, FiberNASDAQKM: 0.4,
			BaseJitterKM: 0.15,
			Tranches: []Tranche{
				{Date: d(2019, time.August, 13), UpTo: 0.55},
				{Date: d(2020, time.January, 21), UpTo: 1.01},
			},
			Ladders: []Ladder{
				// One short laddered section: Table 1 reports 7% APA.
				{From: 0.44, To: 0.48, Density: 1.0, RungEvery: 1, LateralKM: 3.0,
					Date: d(2020, time.February, 11)},
			},
			SpurGrantNASDAQ: d(2020, time.February, 4),
			SpurGrantNYSE:   d(2020, time.February, 18),
			LicensesPerLink: 1,
			Freq: FrequencyPlan{
				Trunk6: 0.10, Trunk11: 0.80, Trunk18: 0.10,
				Alt6: 0.30, Alt11: 0.60, Alt18: 0.10,
			},
		},
		{
			Name: JM, CallPrefix: "JM", FRN: "0022663130",
			TrunkTowers: 22,
			TargetNY4:   3.96597, TargetNYSE: 3.94021, TargetNASDAQ: 3.92828,
			BranchNASDAQ: 0.58, BranchNYSE: 0.85,
			SpurTowersNYSE: 6, SpurTowersNASDAQ: 12,
			FiberCMEKM: 0.4, FiberNY4KM: 0.3, FiberNYSEKM: 0.3, FiberNASDAQKM: 0.3,
			BaseJitterKM: 0.15,
			Tranches:     []Tranche{{Date: d(2013, time.October, 2), UpTo: 1.01}},
			Phases: []Phase{
				{Date: d(2014, time.June, 11), From: 0.08, To: 0.20, DeltaMicros: 17},
				{Date: d(2015, time.July, 7), From: 0.26, To: 0.38, DeltaMicros: 15},
				{Date: d(2016, time.June, 22), From: 0.44, To: 0.54, DeltaMicros: 9},
				{Date: d(2017, time.August, 15), From: 0.62, To: 0.72, DeltaMicros: 7},
				{Date: d(2018, time.July, 3), From: 0.745, To: 0.815, DeltaMicros: 6.03},
			},
			Ladders: []Ladder{
				{From: 0.12, To: 0.40, Density: 1.0, RungEvery: 3, LateralKM: 3.5,
					Date: d(2015, time.November, 18)},
				{From: 0.44, To: 0.54, Density: 1.0, RungEvery: 3, LateralKM: 3.0,
					Date: d(2016, time.August, 17)},
				{From: 0.62, To: 0.72, Density: 1.0, RungEvery: 3, LateralKM: 3.0,
					Date: d(2017, time.October, 11)},
			},
			Strays:          2,
			SpurGrantNASDAQ: d(2013, time.October, 2),
			SpurGrantNYSE:   d(2013, time.December, 4),
			LicensesPerLink: 1,
			Freq: FrequencyPlan{
				Trunk6: 0.20, Trunk11: 0.70, Trunk18: 0.10,
				Alt6: 0.45, Alt11: 0.45, Alt18: 0.10,
			},
		},
		{
			Name: BC, CallPrefix: "BC", FRN: "0019275412",
			TrunkTowers: 29,
			TargetNY4:   3.96940, TargetNYSE: 3.95866, TargetNASDAQ: 3.94500,
			BranchNASDAQ: 0.55, BranchNYSE: 0.86,
			SpurTowersNYSE: 6, SpurTowersNASDAQ: 12,
			FiberCMEKM: 0.4, FiberNY4KM: 0.4, FiberNYSEKM: 0.4, FiberNASDAQKM: 0.5,
			BaseJitterKM: 0.2,
			Tranches: []Tranche{
				{Date: d(2015, time.March, 17), UpTo: 0.6},
				{Date: d(2015, time.December, 2), UpTo: 1.01},
			},
			Phases: []Phase{
				{Date: d(2017, time.May, 16), From: 0.2, To: 0.34, DeltaMicros: 14},
				{Date: d(2018, time.September, 12), From: 0.64, To: 0.76, DeltaMicros: 9},
			},
			Strays:          1,
			SpurGrantNASDAQ: d(2015, time.December, 2),
			SpurGrantNYSE:   d(2016, time.February, 10),
			LicensesPerLink: 1,
			Freq: FrequencyPlan{
				Trunk6: 0.25, Trunk11: 0.65, Trunk18: 0.10,
				Alt6: 0.40, Alt11: 0.50, Alt18: 0.10,
			},
		},
		{
			Name: WH, CallPrefix: "WH", FRN: "0017544123",
			TrunkTowers: 27,
			TargetNY4:   3.97157, TargetNYSE: 4.04909, TargetNASDAQ: 3.92805,
			BranchNASDAQ: 0.55, BranchNYSE: 0.80,
			SpurTowersNYSE: 7, SpurTowersNASDAQ: 13,
			// WH's CME–NY4 surplus over the c-bound lives in a long NY4
			// fiber tail, keeping the trunk essentially straight so its
			// uniform (short-link) redundancy rails cannot undercut it.
			FiberCMEKM: 0.3, FiberNY4KM: 8.0, FiberNYSEKM: 0.3, FiberNASDAQKM: 0.3,
			BaseJitterKM: 0.1,
			Tranches:     []Tranche{{Date: d(2012, time.August, 8), UpTo: 1.01}},
			Phases: []Phase{
				{Date: d(2014, time.July, 23), From: 0.08, To: 0.20, DeltaMicros: 13.5},
				{Date: d(2016, time.August, 3), From: 0.34, To: 0.46, DeltaMicros: 13.5},
				{Date: d(2018, time.September, 5), From: 0.60, To: 0.72, DeltaMicros: 13.43},
			},
			Ladders: []Ladder{
				// Braided coverage over ~2/3 of the trunk with a
				// short-link uniform rail: this is what gives WH its high
				// APA and low link-length median (Fig 4a). Sections over
				// upgrade areas are re-built just after each upgrade
				// completes.
				{From: 0.24, To: 0.325, Density: 1.27, RungEvery: 2, LateralKM: 2.6,
					Uniform: true, Date: d(2013, time.March, 20)},
				{From: 0.50, To: 0.585, Density: 1.27, RungEvery: 2, LateralKM: 2.6,
					Uniform: true, Date: d(2013, time.May, 15)},
				{From: 0.76, To: 0.96, Density: 1.27, RungEvery: 2, LateralKM: 2.6,
					Uniform: true, Date: d(2013, time.September, 18)},
				{From: 0.08, To: 0.20, Density: 1.27, RungEvery: 2, LateralKM: 2.6,
					Uniform: true, Date: d(2014, time.September, 10)},
				{From: 0.36, To: 0.46, Density: 1.27, RungEvery: 2, LateralKM: 2.6,
					Uniform: true, Date: d(2016, time.October, 12)},
				{From: 0.62, To: 0.72, Density: 1.27, RungEvery: 2, LateralKM: 2.6,
					Uniform: true, Date: d(2018, time.November, 7)},
			},
			LaddersNYSE: []SpurLadder{
				{From: 0.05, To: 0.95, Density: 1.3, RungEvery: 2, LateralKM: 2.2,
					Date: d(2015, time.March, 25)},
			},
			LaddersNASDAQ: []SpurLadder{
				{From: 0.25, To: 0.75, Density: 1.3, RungEvery: 2, LateralKM: 2.2,
					Date: d(2015, time.September, 30)},
			},
			Strays:          2,
			SpurGrantNASDAQ: d(2012, time.September, 26),
			SpurGrantNYSE:   d(2012, time.November, 14),
			LicensesPerLink: 1,
			Freq: FrequencyPlan{
				Trunk6: 0.96, Trunk11: 0.02, Trunk18: 0.02,
				Alt6: 0.95, Alt11: 0.03, Alt18: 0.02,
			},
		},
		{
			Name: AQ2AT, CallPrefix: "AQ", FRN: "0026112448",
			TrunkTowers: 29,
			TargetNY4:   4.01101, TargetNYSE: 4.02000, TargetNASDAQ: 4.01500,
			BranchNASDAQ: 0.60, BranchNYSE: 0.87,
			SpurTowersNYSE: 5, SpurTowersNASDAQ: 11,
			FiberCMEKM: 0.6, FiberNY4KM: 0.6, FiberNYSEKM: 0.7, FiberNASDAQKM: 0.7,
			BaseJitterKM: 0.6,
			Tranches:     []Tranche{{Date: d(2016, time.February, 24), UpTo: 1.01}},
			Phases: []Phase{
				{Date: d(2018, time.April, 18), From: 0.3, To: 0.45, DeltaMicros: 12},
			},
			SpurGrantNASDAQ: d(2016, time.March, 16),
			SpurGrantNYSE:   d(2016, time.April, 6),
			LicensesPerLink: 1,
			Freq: FrequencyPlan{
				Trunk6: 0.35, Trunk11: 0.55, Trunk18: 0.10,
				Alt6: 0.40, Alt11: 0.50, Alt18: 0.10,
			},
		},
		{
			Name: WI, CallPrefix: "WI", FRN: "0015630918",
			TrunkTowers: 33,
			TargetNY4:   4.12246, TargetNYSE: 4.13000, TargetNASDAQ: 4.13000,
			BranchNASDAQ: 0.55, BranchNYSE: 0.85,
			SpurTowersNYSE: 6, SpurTowersNASDAQ: 12,
			FiberCMEKM: 1.2, FiberNY4KM: 1.0, FiberNYSEKM: 1.0, FiberNASDAQKM: 1.0,
			BaseJitterKM:    1.5,
			Tranches:        []Tranche{{Date: d(2013, time.May, 29), UpTo: 1.01}},
			Strays:          1,
			SpurGrantNASDAQ: d(2013, time.June, 19),
			SpurGrantNYSE:   d(2013, time.July, 17),
			LicensesPerLink: 1,
			Freq: FrequencyPlan{
				Trunk6: 0.50, Trunk11: 0.40, Trunk18: 0.10,
				Alt6: 0.50, Alt11: 0.40, Alt18: 0.10,
			},
		},
		{
			Name: GTT, CallPrefix: "GT", FRN: "0013443714",
			TrunkTowers: 28,
			TargetNY4:   4.24241, TargetNYSE: 4.25000, TargetNASDAQ: 4.25000,
			BranchNASDAQ: 0.55, BranchNYSE: 0.85,
			SpurTowersNYSE: 5, SpurTowersNASDAQ: 11,
			FiberCMEKM: 1.5, FiberNY4KM: 1.5, FiberNYSEKM: 1.5, FiberNASDAQKM: 1.5,
			BaseJitterKM:    2.5,
			Tranches:        []Tranche{{Date: d(2014, time.November, 5), UpTo: 1.01}},
			SpurGrantNASDAQ: d(2014, time.December, 3),
			SpurGrantNYSE:   d(2015, time.January, 14),
			LicensesPerLink: 1,
			Freq: FrequencyPlan{
				Trunk6: 0.40, Trunk11: 0.45, Trunk18: 0.15,
				Alt6: 0.40, Alt11: 0.45, Alt18: 0.15,
			},
		},
		{
			Name: SW, CallPrefix: "SW", FRN: "0011198122",
			TrunkTowers: 74,
			TargetNY4:   4.44530, TargetNYSE: 4.46000, TargetNASDAQ: 4.45500,
			BranchNASDAQ: 0.55, BranchNYSE: 0.85,
			SpurTowersNYSE: 8, SpurTowersNASDAQ: 16,
			FiberCMEKM: 2.0, FiberNY4KM: 2.0, FiberNYSEKM: 2.0, FiberNASDAQKM: 2.0,
			BaseJitterKM:    3.0,
			Tranches:        []Tranche{{Date: d(2012, time.June, 13), UpTo: 1.01}},
			Strays:          2,
			SpurGrantNASDAQ: d(2012, time.July, 11),
			SpurGrantNYSE:   d(2012, time.August, 15),
			LicensesPerLink: 1,
			Freq: FrequencyPlan{
				Trunk6: 0.45, Trunk11: 0.35, Trunk18: 0.20,
				Alt6: 0.45, Alt11: 0.35, Alt18: 0.20,
			},
		},
		{
			// The §4 casualty: connected through 2017, gone in 2018.
			Name: NTC, CallPrefix: "NT", FRN: "0009935612",
			TrunkTowers: 30,
			TargetNY4:   3.98600, TargetNYSE: 3.99500, TargetNASDAQ: 3.99000,
			BranchNASDAQ: 0.58, BranchNYSE: 0.86,
			SpurTowersNYSE: 5, SpurTowersNASDAQ: 11,
			FiberCMEKM: 0.5, FiberNY4KM: 0.5, FiberNYSEKM: 0.6, FiberNASDAQKM: 0.6,
			BaseJitterKM: 0.3,
			Tranches:     []Tranche{{Date: d(2012, time.October, 17), UpTo: 1.01}},
			Phases: []Phase{
				{Date: d(2013, time.July, 10), From: 0.12, To: 0.24, DeltaMicros: 7},
				{Date: d(2014, time.August, 6), From: 0.34, To: 0.48, DeltaMicros: 10.5},
				{Date: d(2015, time.September, 2), From: 0.62, To: 0.74, DeltaMicros: 1.5},
			},
			DeathFrom: d(2017, time.February, 14),
			DeathTo:   d(2018, time.October, 24),
			// The NJ legs land in 2013 — the aggressive acquisition year
			// §4 describes — while the NY4 trunk is live from late 2012.
			SpurGrantNASDAQ: d(2013, time.March, 13),
			SpurGrantNYSE:   d(2013, time.June, 5),
			LicensesPerLink: 2,
			Freq: FrequencyPlan{
				Trunk6: 0.30, Trunk11: 0.60, Trunk18: 0.10,
				Alt6: 0.40, Alt11: 0.50, Alt18: 0.10,
			},
		},
	}
}

// PartialSpec is a shortlisted-but-never-connected licensee (§3: "not
// all have an end-to-end network ... various states of setting up or
// bringing down").
type PartialSpec struct {
	Name       string
	CallPrefix string
	Towers     int     // ≥7 so the filing count clears the ≥11 threshold
	Extent     float64 // how far along the corridor the chain reaches
	GrantYear  int
	CancelYear int // 0 = still active
}

// PartialLicensees returns the 17 shortlisted licensees without
// end-to-end networks. Together with the 10 single-entity HFT specs and
// the 2 joint-filing entities they make the paper's 29 shortlisted
// licensees (57 candidates − 28 small).
func PartialLicensees() []PartialSpec {
	names := []struct {
		name   string
		prefix string
	}{
		{"Great Lakes Relay", "GL"},
		{"Prairie State Wireless", "PS"},
		{"Heartland Comm Partners", "HC"},
		{"Fox Valley Microwave", "FV"},
		{"Midwest Latency Labs", "ML"},
		{"Allegheny Ridge Radio", "AR"},
		{"Tri-State Backhaul", "TS"},
		{"Keystone Wave", "KW"},
		{"Illinois Valley Networks", "IV"},
		{"Calumet Wireless Trust", "CW"},
		{"Appalachian Crossing", "AC"},
		{"Lakeshore Link", "LL"},
		{"Mohawk Corridor Comm", "MC"},
		{"Susquehanna Radio Group", "SR"},
		{"Du Page Relay Co", "DP"},
		{"Pocono Ridge Networks", "PR"},
		{"Wabash Line", "WL"},
		// Two former list slots are taken by the joint-filing pair
		// (JointA/JointB), keeping the §2.2 funnel at 57 candidates and
		// 29 shortlisted.
	}
	out := make([]PartialSpec, 0, len(names))
	for i, n := range names {
		out = append(out, PartialSpec{
			Name:       n.name,
			CallPrefix: n.prefix,
			Towers:     7 + (i*3)%12,               // 7..18
			Extent:     0.18 + 0.035*float64(i%16), // 0.18..0.71
			GrantYear:  2013 + i%7,
			CancelYear: map[bool]int{true: 2017 + i%3, false: 0}[i%4 == 3],
		})
	}
	return out
}

// SmallSpec is a local non-HFT MG/FXO licensee near CME with fewer than
// 11 filings — the chaff the §2.2 filter removes.
type SmallSpec struct {
	Name       string
	CallPrefix string
	Towers     int // 2..5 → 2..8 filings, always < 11
	GrantYear  int
}

// SmallLicensees returns the 28 sub-threshold licensees (57 − 29).
func SmallLicensees() []SmallSpec {
	base := []string{
		"Aurora Utility District", "Kane County Public Safety",
		"Fermilab Site Comm", "DuPage Water Commission",
		"Naperville SCADA", "Oswego Pipeline Telemetry",
		"Com Grid West", "Batavia Municipal Radio",
		"Sugar Grove Telecom", "Plainfield Data Services",
		"Fox Metro Reclamation", "Illinois Tollway Radio",
		"Montgomery Rail Signal", "Yorkville Broadband Co-op",
		"Eola Switching", "Kendall Grain Exchange Comm",
		"Prairie Path Paging", "Waubonsee Campus Net",
		"Bristol Township Works", "Geneva Substation Link",
		"North Aurora Transit", "Mooseheart Relay",
		"Elburn Cold Storage", "Kaneville Telemetry",
		"Big Rock Quarry Comm", "Sandwich Fairgrounds Net",
		"Hinckley Irrigation District", "Somonauk Valley Wireless",
	}
	out := make([]SmallSpec, 0, len(base))
	for i, n := range base {
		out = append(out, SmallSpec{
			Name:       n,
			CallPrefix: smallPrefix(i),
			Towers:     2 + i%4,
			GrantYear:  2010 + i%10,
		})
	}
	return out
}

func smallPrefix(i int) string {
	return string([]byte{'Z', byte('A' + i%26)})
}
