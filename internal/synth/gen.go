package synth

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"hftnetview/internal/fresnel"
	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
	"hftnetview/internal/terrain"
	"hftnetview/internal/uls"
)

// Frequency pools (MHz): the lower 6 GHz, 11 GHz and 18 GHz fixed
// point-to-point bands used on the corridor (§5, Fig 4b).
var (
	band6 = []float64{
		5945.2, 6004.5, 6063.8, 6123.1, 6182.4, 6241.7, 6301.0, 6360.3,
	}
	band11 = []float64{
		10715.0, 10775.0, 10835.0, 10895.0, 10955.0, 11015.0, 11075.0,
		11135.0, 11195.0, 11245.0, 11305.0, 11365.0, 11425.0, 11485.0,
		11545.0, 11605.0, 11665.0,
	}
	band18 = []float64{
		17765.0, 17845.0, 17925.0, 18005.0, 18085.0, 18165.0,
	}
)

// linkKind distinguishes trunk/spur links (trunk frequency pool) from
// redundancy links (alt pool).
type linkKind int

const (
	kindTrunk linkKind = iota
	kindSpur
	kindRail
	kindRung
	kindStray
)

func (k linkKind) alt() bool { return k == kindRail || k == kindRung || k == kindStray }

// pendingLink is one physical hop over one time interval, ready for
// license emission.
type pendingLink struct {
	a, b          geo.Point
	grant, cancel uls.Date
	kind          linkKind
}

// generator accumulates licenses into a database.
type generator struct {
	db       *uls.Database
	nextID   int
	counters map[string]int // per-prefix call-sign sequence
}

// Generate builds the full synthetic corridor database: ten HFT
// networks, 19 partial licensees and 28 small licensees — the §2.2
// funnel of 57 candidates → 29 shortlisted → 9 connected (on
// 2020-04-01).
func Generate() (*uls.Database, error) {
	g := &generator{db: uls.NewDatabase(), nextID: 1000001}
	for _, spec := range HFTNetworks() {
		if err := g.network(spec); err != nil {
			return nil, fmt.Errorf("synth: %s: %w", spec.Name, err)
		}
	}
	for _, p := range PartialLicensees() {
		if err := g.partial(p); err != nil {
			return nil, fmt.Errorf("synth: %s: %w", p.Name, err)
		}
	}
	for _, s := range SmallLicensees() {
		if err := g.small(s); err != nil {
			return nil, fmt.Errorf("synth: %s: %w", s.Name, err)
		}
	}
	return g.db, nil
}

// network generates one HFT network's full license history.
func (g *generator) network(spec NetworkSpec) error {
	if len(spec.Tranches) == 0 {
		return fmt.Errorf("no build tranches")
	}
	rngGeo := newRNG(spec.Name, "geo")

	// Gateways sit on the corridor geodesic at the spec'd fiber-tail
	// distance from each data center.
	cme, ny4 := sites.CME.Location, sites.NY4.Location
	gwCME := geo.Destination(cme, geo.InitialBearing(cme, ny4), spec.FiberCMEKM*1000)
	gwNJ := geo.Destination(ny4, geo.InitialBearing(ny4, cme), spec.FiberNY4KM*1000)
	fiberNY4 := (spec.FiberCMEKM + spec.FiberNY4KM) * 1000

	trunk := newChain(gwCME, gwNJ, spec.TrunkTowers, rngGeo)

	// Phase tower sets, with branch towers excluded and inter-phase gaps
	// enforced.
	phaseSets, err := phaseTowerSets(trunk, spec.Phases)
	if err != nil {
		return err
	}
	inPhase := make(map[int]bool)
	for _, set := range phaseSets {
		for _, i := range set {
			inPhase[i] = true
		}
	}
	idxN := branchIndex(trunk, spec.BranchNASDAQ, inPhase)
	idxY := branchIndex(trunk, spec.BranchNYSE, inPhase)
	if spec.TargetNASDAQ > 0 && spec.TargetNYSE > 0 && idxN >= idxY {
		return fmt.Errorf("branch order: NASDAQ idx %d >= NYSE idx %d", idxN, idxY)
	}

	// Calibrate the trunk: residual base jitter west of the NASDAQ
	// branch, solved amplitude east of it to hit the CME–NY4 target.
	eastStart := 1
	if spec.TargetNASDAQ > 0 {
		trunk.applyAmplitude(1, idxN, spec.BaseJitterKM*1000)
		eastStart = idxN + 1
	}
	ny4Latency := func(ampEast float64) float64 {
		trunk.applyAmplitude(eastStart, spec.TrunkTowers-2, ampEast)
		return latencySeconds(trunk.lengthWith(nil), fiberNY4)
	}
	ampEast, err := bisect(0, 120e3, ny4Latency, msToSeconds(spec.TargetNY4),
		calibrationTolSeconds, "CME-NY4 trunk amplitude")
	if err != nil {
		return err
	}
	trunk.applyAmplitude(eastStart, spec.TrunkTowers-2, ampEast)
	finalNY4 := latencySeconds(trunk.lengthWith(nil), fiberNY4)

	// Spurs.
	var spurN, spurY *chain
	if spec.TargetNASDAQ > 0 {
		spurN, err = g.buildSpur(spec, trunk, idxN, sites.NASDAQ.Location,
			spec.FiberNASDAQKM, spec.SpurTowersNASDAQ, spec.TargetNASDAQ,
			newRNG(spec.Name, "spur-nasdaq"))
		if err != nil {
			return fmt.Errorf("NASDAQ spur: %w", err)
		}
	}
	if spec.TargetNYSE > 0 {
		spurY, err = g.buildSpur(spec, trunk, idxY, sites.NYSE.Location,
			spec.FiberNYSEKM, spec.SpurTowersNYSE, spec.TargetNYSE,
			newRNG(spec.Name, "spur-nyse"))
		if err != nil {
			return fmt.Errorf("NYSE spur: %w", err)
		}
	}

	// Phase amplitude calibration: each phase's worse pre-upgrade
	// alignment must have cost DeltaMicros on the CME–NY4 path.
	phaseExtras := make([]map[int]float64, len(spec.Phases))
	for pi, phase := range spec.Phases {
		set := phaseSets[pi]
		if len(set) == 0 {
			return fmt.Errorf("phase %d (%s) covers no towers", pi, phase.Date)
		}
		pj := phaseJitter(trunk, set, newRNG(spec.Name, fmt.Sprintf("phase-%d", pi)))
		f := func(amp float64) float64 {
			extras := make([]float64, spec.TrunkTowers)
			for _, i := range set {
				extras[i] = amp * pj[i]
			}
			return latencySeconds(trunk.lengthWith(extras), fiberNY4) - finalNY4
		}
		amp, err := bisect(0, 200e3, f, phase.DeltaMicros*1e-6,
			calibrationTolSeconds, fmt.Sprintf("phase %d delta", pi))
		if err != nil {
			return err
		}
		extras := make(map[int]float64, len(set))
		for _, i := range set {
			extras[i] = amp * pj[i]
		}
		phaseExtras[pi] = extras
	}

	// Assemble pending links.
	var links []pendingLink

	// Trunk links, split into pre/post-upgrade intervals.
	for i := 0; i < spec.TrunkTowers-1; i++ {
		mid := (trunk.fracs[i] + trunk.fracs[i+1]) / 2
		grant := trancheFor(spec.Tranches, mid)
		pi := phaseOfLink(phaseSets, i)
		if pi >= 0 && grant.Before(spec.Phases[pi].Date) {
			ph := spec.Phases[pi]
			links = append(links, pendingLink{
				a:     trunk.pos(i, phaseExtras[pi][i]),
				b:     trunk.pos(i+1, phaseExtras[pi][i+1]),
				grant: grant, cancel: ph.Date, kind: kindTrunk,
			})
			links = append(links, pendingLink{
				a: trunk.pos(i, 0), b: trunk.pos(i+1, 0),
				grant: ph.Date, kind: kindTrunk,
			})
			continue
		}
		links = append(links, pendingLink{
			a: trunk.pos(i, 0), b: trunk.pos(i+1, 0),
			grant: grant, kind: kindTrunk,
		})
	}

	// Spur links.
	spurGrantN := spec.SpurGrantNASDAQ
	if spurGrantN.IsZero() {
		spurGrantN = spec.Tranches[0].Date
	}
	spurGrantY := spec.SpurGrantNYSE
	if spurGrantY.IsZero() {
		spurGrantY = spec.Tranches[len(spec.Tranches)-1].Date
	}
	if spurN != nil {
		links = append(links, chainLinks(spurN, spurGrantN, kindSpur)...)
	}
	if spurY != nil {
		links = append(links, chainLinks(spurY, spurGrantY, kindSpur)...)
	}

	// Trunk ladders (validated against phase dates first).
	if err := validateLadderDates(spec.Phases, spec.Ladders); err != nil {
		return err
	}
	for li, lad := range spec.Ladders {
		rng := newRNG(spec.Name, fmt.Sprintf("ladder-%d", li))
		links = append(links, g.ladderLinks(trunk,
			lad.From, lad.To, lad.Density, lad.RungEvery, lad.LateralKM,
			lad.Uniform, lad.Date, inPhase, rng)...)
	}
	// Spur ladders (spur chains have no phases).
	for li, lad := range spec.LaddersNYSE {
		if spurY == nil {
			break
		}
		rng := newRNG(spec.Name, fmt.Sprintf("nyse-ladder-%d", li))
		links = append(links, g.ladderLinks(spurY,
			lad.From, lad.To, lad.Density, lad.RungEvery, lad.LateralKM,
			lad.Uniform, lad.Date, nil, rng)...)
	}
	for li, lad := range spec.LaddersNASDAQ {
		if spurN == nil {
			break
		}
		rng := newRNG(spec.Name, fmt.Sprintf("nasdaq-ladder-%d", li))
		links = append(links, g.ladderLinks(spurN,
			lad.From, lad.To, lad.Density, lad.RungEvery, lad.LateralKM,
			lad.Uniform, lad.Date, nil, rng)...)
	}

	// Stray off-corridor links (Fig 3's disconnected filings).
	strayGrant := spec.StrayGrant
	if strayGrant.IsZero() {
		strayGrant = spec.Tranches[0].Date
	}
	rngStray := newRNG(spec.Name, "stray")
	for s := 0; s < spec.Strays; s++ {
		frac := 0.15 + 0.7*rngStray.Float64()
		lateral := (25 + 35*rngStray.Float64()) * 1000
		if rngStray.IntN(2) == 0 {
			lateral = -lateral
		}
		base := geo.Interpolate(gwCME, gwNJ, frac)
		brg := geo.InitialBearing(base, gwNJ)
		a := geo.Offset(base, brg, 0, lateral)
		b := geo.Offset(base, brg, (10+20*rngStray.Float64())*1000, lateral)
		links = append(links, pendingLink{a: a, b: b, grant: strayGrant, kind: kindStray})
	}

	// Death: cancel everything still open across the exit window.
	if !spec.DeathFrom.IsZero() {
		rngDeath := newRNG(spec.Name, "death")
		span := int(spec.DeathTo.Time().Sub(spec.DeathFrom.Time()).Hours() / 24)
		if span < 1 {
			span = 1
		}
		for i := range links {
			if links[i].cancel.IsZero() {
				links[i].cancel = spec.DeathFrom.AddDays(rngDeath.IntN(span))
			}
		}
	}

	// Emit licenses. A joint-filing network alternates ownership between
	// the two entities in runs of JointRun links, so neither entity's
	// filings alone form an end-to-end path.
	lpl := spec.LicensesPerLink
	if lpl <= 0 {
		lpl = 2
	}
	rngEmit := newRNG(spec.Name, "emit")
	run := spec.JointRun
	if run <= 0 {
		run = 3
	}
	for li, lk := range links {
		owner, prefix := spec.Name, spec.CallPrefix
		if spec.JointPartner != "" && (li/run)%2 == 1 {
			owner, prefix = spec.JointPartner, spec.JointPartnerPrefix
		}
		g.emitLink(owner, prefix, spec.FRN, lk, lpl, spec.Freq, rngEmit)
	}
	if spec.JointPartner != "" {
		// The partner needs its own site near CME to surface in the
		// §2.2 geographic search: one short targeted-service link.
		brg := geo.InitialBearing(cme, ny4)
		a := geo.Destination(cme, brg+25, 3e3)
		b := geo.Destination(a, brg+25, 12e3)
		g.emitLink(spec.JointPartner, spec.JointPartnerPrefix, spec.FRN,
			pendingLink{a: a, b: b, grant: spec.Tranches[0].Date, kind: kindStray},
			lpl, spec.Freq, rngEmit)
	}
	return nil
}

// buildSpur constructs and calibrates one spur chain; tower 0 coincides
// with the trunk branch tower so reconstruction stitches them.
func (g *generator) buildSpur(spec NetworkSpec, trunk *chain, branchIdx int,
	dcLoc geo.Point, fiberKM float64, towers int, targetMs float64,
	rng *rand.Rand) (*chain, error) {
	branchPos := trunk.pos(branchIdx, 0)
	gw := geo.Destination(dcLoc, geo.InitialBearing(dcLoc, branchPos), fiberKM*1000)
	spur := newChain(branchPos, gw, towers+1, rng)
	trunkLen := trunk.lengthRange(0, branchIdx)
	fiber := (spec.FiberCMEKM + fiberKM) * 1000
	f := func(amp float64) float64 {
		spur.applyAmplitude(1, towers-1, amp)
		return latencySeconds(trunkLen+spur.lengthWith(nil), fiber)
	}
	amp, err := bisect(0, 120e3, f, msToSeconds(targetMs),
		calibrationTolSeconds, "spur amplitude")
	if err != nil {
		return nil, err
	}
	spur.applyAmplitude(1, towers-1, amp)
	return spur, nil
}

// chainLinks converts a chain into pending links granted at one date.
func chainLinks(c *chain, grant uls.Date, kind linkKind) []pendingLink {
	out := make([]pendingLink, 0, len(c.base)-1)
	for i := 0; i < len(c.base)-1; i++ {
		out = append(out, pendingLink{
			a: c.pos(i, 0), b: c.pos(i+1, 0), grant: grant, kind: kind,
		})
	}
	return out
}

// ladderLinks builds a redundancy rail over chain fraction range
// [from, to]. The rail parallels the chain's *final polyline* — each
// rail tower is a perpendicular offset of a point on the chain — so the
// rail never undercuts the calibrated trunk length: the lowest-latency
// route stays on the trunk (entering the rail costs two rungs), which
// keeps Table 1's tower counts and latencies intact.
//
// Rail towers sit at every chain vertex in range plus, for density > 1,
// extra samples inside the chain segments (inserting points on a
// straight segment leaves the rail's length unchanged while shortening
// its links — Webline's short-link profile). Rungs tie the rail to the
// chain at the range ends and every rungEvery chain vertices, skipping
// vertices a later upgrade phase will move (their filings must stay
// coordinate-stable).
func (g *generator) ladderLinks(c *chain,
	from, to, density float64, rungEvery int, lateralKM float64,
	uniform bool, grant uls.Date, inPhase map[int]bool, rng *rand.Rand) []pendingLink {

	iFrom := nearestOutside(c, from, inPhase)
	iTo := nearestOutside(c, to, inPhase)
	if iFrom < 0 || iTo < 0 || iTo <= iFrom {
		return nil
	}
	side := 1.0
	if rng.IntN(2) == 0 {
		side = -1
	}
	if uniform {
		return g.uniformRail(c, iFrom, iTo, density, rungEvery,
			side*lateralKM*1000, grant, inPhase, rng)
	}
	extraPerSegment := 0
	if density > 1 {
		extraPerSegment = int(math.Round(density - 1))
		if extraPerSegment < 1 {
			extraPerSegment = 1
		}
	}

	var rail []geo.Point
	railVertexOf := make(map[int]int) // chain index -> rail index
	for i := iFrom; i <= iTo; i++ {
		a := c.pos(i, 0)
		var segBrg float64
		if i < iTo {
			segBrg = geo.InitialBearing(a, c.pos(i+1, 0))
		} else {
			segBrg = geo.InitialBearing(c.pos(i-1, 0), a)
		}
		jitter := (rng.Float64() - 0.5) * 500
		railVertexOf[i] = len(rail)
		rail = append(rail, geo.Offset(a, segBrg, 0, side*lateralKM*1000+jitter))
		if i == iTo {
			break
		}
		b := c.pos(i+1, 0)
		for k := 1; k <= extraPerSegment; k++ {
			t := float64(k) / float64(extraPerSegment+1)
			mid := geo.Interpolate(a, b, t)
			jit := (rng.Float64() - 0.5) * 500
			rail = append(rail, geo.Offset(mid, segBrg, 0, side*lateralKM*1000+jit))
		}
	}

	var out []pendingLink
	for r := 0; r+1 < len(rail); r++ {
		out = append(out, pendingLink{a: rail[r], b: rail[r+1], grant: grant, kind: kindRail})
	}
	if rungEvery < 1 {
		rungEvery = 2
	}
	for i := iFrom; i <= iTo; i++ {
		if i != iFrom && i != iTo && (i-iFrom)%rungEvery != 0 {
			continue
		}
		if inPhase[i] {
			continue
		}
		out = append(out, pendingLink{
			a: rail[railVertexOf[i]], b: c.pos(i, 0), grant: grant, kind: kindRung,
		})
	}
	return out
}

// uniformRail builds a rail with towers at uniform arc spacing along the
// chain subpolyline — link lengths decoupled from the chain's tower
// spacing. Safe only where the chain is straight (see Ladder.Uniform).
func (g *generator) uniformRail(c *chain, iFrom, iTo int, density float64,
	rungEvery int, lateral float64, grant uls.Date,
	inPhase map[int]bool, rng *rand.Rand) []pendingLink {

	span := iTo - iFrom
	railN := int(math.Round(density*float64(span))) + 1
	if railN < 2 {
		railN = 2
	}
	// Cumulative arc lengths of the subpolyline.
	arc := make([]float64, span+1)
	for k := 1; k <= span; k++ {
		arc[k] = arc[k-1] + geo.Distance(c.pos(iFrom+k-1, 0), c.pos(iFrom+k, 0))
	}
	total := arc[span]
	at := func(s float64) (geo.Point, float64) {
		k := 0
		for k < span-1 && arc[k+1] < s {
			k++
		}
		a, b := c.pos(iFrom+k, 0), c.pos(iFrom+k+1, 0)
		seg := arc[k+1] - arc[k]
		t := 0.0
		if seg > 0 {
			t = (s - arc[k]) / seg
		}
		return geo.Interpolate(a, b, t), geo.InitialBearing(a, b)
	}
	rail := make([]geo.Point, railN)
	railArc := make([]float64, railN)
	for r := 0; r < railN; r++ {
		s := total * float64(r) / float64(railN-1)
		p, brg := at(s)
		jit := (rng.Float64() - 0.5) * 500
		rail[r] = geo.Offset(p, brg, 0, lateral+jit)
		railArc[r] = s
	}
	var out []pendingLink
	for r := 0; r+1 < railN; r++ {
		out = append(out, pendingLink{a: rail[r], b: rail[r+1], grant: grant, kind: kindRail})
	}
	if rungEvery < 1 {
		rungEvery = 2
	}
	for i := iFrom; i <= iTo; i++ {
		if i != iFrom && i != iTo && (i-iFrom)%rungEvery != 0 {
			continue
		}
		if inPhase[i] {
			continue
		}
		// Nearest rail sample by arc position.
		s := arc[i-iFrom]
		best, bestD := 0, math.Inf(1)
		for r := 0; r < railN; r++ {
			if d := math.Abs(railArc[r] - s); d < bestD {
				best, bestD = r, d
			}
		}
		out = append(out, pendingLink{
			a: rail[best], b: c.pos(i, 0), grant: grant, kind: kindRung,
		})
	}
	return out
}

// validateLadderDates rejects a ladder whose range overlaps a phase
// segment but whose grant predates that phase: the rail would parallel
// the final alignment while the trunk still sat on the old one, letting
// the shortest path bypass the historical detour the phase encodes.
func validateLadderDates(phases []Phase, ladders []Ladder) error {
	for li, lad := range ladders {
		for pi, ph := range phases {
			if lad.To < ph.From || lad.From > ph.To {
				continue
			}
			if lad.Date.Before(ph.Date) {
				return fmt.Errorf("ladder %d [%v,%v] granted %v predates overlapping phase %d (%v)",
					li, lad.From, lad.To, lad.Date, pi, ph.Date)
			}
		}
	}
	return nil
}

// nearestOutside returns the chain index nearest to fraction f that is
// not scheduled for replacement by an upgrade phase.
func nearestOutside(c *chain, f float64, inPhase map[int]bool) int {
	best, bestD := -1, math.Inf(1)
	for i, fr := range c.fracs {
		if inPhase[i] {
			continue
		}
		if d := math.Abs(fr - f); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// branchIndex picks the trunk tower nearest the requested fraction,
// skipping towers an upgrade phase will move (their coordinates must
// stay stable for the spur licenses filed against them).
func branchIndex(c *chain, f float64, inPhase map[int]bool) int {
	return nearestOutside(c, f, inPhase)
}

// phaseTowerSets resolves each phase's interior tower indices and
// enforces disjointness with ≥1 untouched tower between consecutive
// phases (which keeps the phases' latency deltas exactly additive).
func phaseTowerSets(c *chain, phases []Phase) ([][]int, error) {
	sets := make([][]int, len(phases))
	order := make([]int, len(phases))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return phases[order[a]].From < phases[order[b]].From })
	lastUsed := 0 // gateway tower 0 never moves
	for _, pi := range order {
		ph := phases[pi]
		var set []int
		for i := 1; i < len(c.fracs)-1; i++ {
			if c.fracs[i] >= ph.From && c.fracs[i] <= ph.To && i > lastUsed+1 {
				set = append(set, i)
			}
		}
		if len(set) == 0 {
			return nil, fmt.Errorf("phase %v [%v,%v] covers no usable towers",
				ph.Date, ph.From, ph.To)
		}
		lastUsed = set[len(set)-1]
		sets[pi] = set
	}
	return sets, nil
}

// phaseJitter builds the pre-upgrade lateral jitter shape for a phase's
// towers, signed to stack with the final jitter so length grows
// monotonically with amplitude.
func phaseJitter(c *chain, set []int, rng *rand.Rand) map[int]float64 {
	out := make(map[int]float64, len(set))
	sign := 1.0
	for _, i := range set {
		if c.jitter[i] != 0 {
			// Align with the final jitter's sign so offsets add up.
			sign = math.Copysign(1, c.jitter[i])
		}
		out[i] = sign * (0.6 + 0.4*rng.Float64())
		sign = -sign
	}
	return out
}

// phaseOfLink returns the index of the phase affecting trunk link
// (i, i+1), or -1. Phase sets are disjoint with gaps, so at most one
// phase touches a link.
func phaseOfLink(sets [][]int, link int) int {
	for pi, set := range sets {
		for _, t := range set {
			if t == link || t == link+1 {
				return pi
			}
		}
	}
	return -1
}

// trancheFor returns the grant date of a trunk link by its midpoint
// fraction.
func trancheFor(tranches []Tranche, mid float64) uls.Date {
	for _, t := range tranches {
		if mid <= t.UpTo {
			return t.Date
		}
	}
	return tranches[len(tranches)-1].Date
}

// emitLink files the licenses for one physical hop: lpl licenses (one
// per direction when lpl = 2) with band-weighted frequencies.
func (g *generator) emitLink(licensee, prefix, frn string, lk pendingLink,
	lpl int, plan FrequencyPlan, rng *rand.Rand) {
	ends := [][2]geo.Point{{lk.a, lk.b}}
	if lpl >= 2 {
		ends = append(ends, [2]geo.Point{lk.b, lk.a})
	}
	for _, e := range ends {
		freqs := drawFrequencies(plan, lk.kind, rng)
		g.addLicense(licensee, prefix, frn, e[0], e[1], lk.grant, lk.cancel, freqs, rng)
	}
}

// drawFrequencies picks 1–2 channel frequencies by the plan's band
// weights.
func drawFrequencies(plan FrequencyPlan, kind linkKind, rng *rand.Rand) []float64 {
	w6, w11, w18 := plan.Trunk6, plan.Trunk11, plan.Trunk18
	if kind.alt() {
		w6, w11, w18 = plan.Alt6, plan.Alt11, plan.Alt18
	}
	total := w6 + w11 + w18
	if total <= 0 {
		w6, w11, w18, total = 1, 1, 1, 3
	}
	pick := func() float64 {
		r := rng.Float64() * total
		switch {
		case r < w6:
			return band6[rng.IntN(len(band6))]
		case r < w6+w11:
			return band11[rng.IntN(len(band11))]
		default:
			return band18[rng.IntN(len(band18))]
		}
	}
	n := 1
	if rng.Float64() < 0.4 {
		n = 2
	}
	out := make([]float64, 0, n)
	seen := make(map[float64]bool)
	for len(out) < n {
		f := pick()
		if seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, f)
	}
	sort.Float64s(out)
	return out
}

// addLicense files one TX→RX license. Tower heights are engineered
// against the synthetic terrain: the filed support structures clear the
// Earth bulge, 0.6 F1 at 6 GHz (the widest Fresnel zone in use), and
// every ridge the hop crosses.
func (g *generator) addLicense(licensee, prefix, frn string, tx, rx geo.Point,
	grant, cancel uls.Date, freqs []float64, rng *rand.Rand) {
	status := uls.StatusActive
	if !cancel.IsZero() {
		status = uls.StatusCancelled
	}
	prof := fresnel.NewPathProfile(tx, rx, terrain.Elevation, 12)
	base := prof.RequiredEqualHeight(6, fresnel.StandardK, 420) + 6
	if base < 65 {
		base = 65
	}
	l := &uls.License{
		CallSign:     g.callSign(prefix),
		LicenseID:    g.nextID,
		Licensee:     licensee,
		FRN:          frn,
		ContactEmail: contactEmailFor(licensee),
		RadioService: uls.ServiceMG,
		Status:       status,
		Grant:        grant,
		Cancellation: cancel,
		Locations: []uls.Location{
			{Number: 1, Point: tx, GroundElevation: terrain.Elevation(tx),
				SupportHeight: base + 50*rng.Float64()},
			{Number: 2, Point: rx, GroundElevation: terrain.Elevation(rx),
				SupportHeight: base + 50*rng.Float64()},
		},
		Paths: []uls.Path{{
			Number: 1, TXLocation: 1, RXLocation: 2,
			StationClass: uls.ClassFXO, FrequenciesMHz: freqs,
			TXAzimuthDeg:   geo.InitialBearing(tx, rx),
			RXAzimuthDeg:   geo.InitialBearing(rx, tx),
			AntennaGainDBi: antennaGain(freqs),
		}},
	}
	g.nextID++
	if err := g.db.Add(l); err != nil {
		// Call signs and ids are generated uniquely and geometry is
		// validated upstream; a failure here is a generator bug.
		panic(err)
	}
}

// callSign allocates the next call sign under a licensee prefix.
// Counters are per-generator, keeping Generate deterministic and
// re-entrant.
func (g *generator) callSign(prefix string) string {
	if g.counters == nil {
		g.counters = make(map[string]int)
	}
	g.counters[prefix]++
	return fmt.Sprintf("WQ%s%03d", prefix, g.counters[prefix])
}

// partial generates a shortlisted-but-incomplete licensee: a chain from
// near CME that stops partway along the corridor.
func (g *generator) partial(spec PartialSpec) error {
	rng := newRNG(spec.Name, "partial")
	cme, ny4 := sites.CME.Location, sites.NY4.Location
	start := geo.Destination(cme, geo.InitialBearing(cme, ny4)+10*(rng.Float64()-0.5),
		(1+7*rng.Float64())*1000)
	// Cap the chain's reach so no tower-to-tower hop exceeds the ~50 km
	// practical microwave limit (§2.2 uses 100 km as the hard bound).
	extent := spec.Extent
	if maxExtent := float64(spec.Towers-1) * 48e3 / geo.Distance(cme, ny4); extent > maxExtent {
		extent = maxExtent
	}
	end := geo.Interpolate(cme, ny4, extent)
	c := newChain(start, end, spec.Towers, rng)
	c.applyAmplitude(1, spec.Towers-2, (2+6*rng.Float64())*1000)
	grant := uls.NewDate(spec.GrantYear, time.Month(1+rng.IntN(12)), 1+rng.IntN(28))
	var cancel uls.Date
	if spec.CancelYear > 0 {
		cancel = uls.NewDate(spec.CancelYear, time.Month(1+rng.IntN(12)), 1+rng.IntN(28))
	}
	plan := FrequencyPlan{Trunk6: 0.4, Trunk11: 0.5, Trunk18: 0.1,
		Alt6: 0.4, Alt11: 0.5, Alt18: 0.1}
	for _, lk := range chainLinks(c, grant, kindTrunk) {
		lk.cancel = cancel
		g.emitLink(spec.Name, spec.CallPrefix, partialFRN(spec.Name), lk, 2, plan, rng)
	}
	return nil
}

// small generates a sub-threshold local licensee near CME.
func (g *generator) small(spec SmallSpec) error {
	rng := newRNG(spec.Name, "small")
	cme := sites.CME.Location
	start := geo.Destination(cme, 360*rng.Float64(), (2+7*rng.Float64())*1000)
	end := geo.Destination(start, 360*rng.Float64(), (8+25*rng.Float64())*1000)
	c := newChain(start, end, spec.Towers, rng)
	c.applyAmplitude(1, spec.Towers-2, 2000*rng.Float64())
	grant := uls.NewDate(spec.GrantYear, time.Month(1+rng.IntN(12)), 1+rng.IntN(28))
	plan := FrequencyPlan{Trunk6: 0.7, Trunk11: 0.2, Trunk18: 0.1,
		Alt6: 0.7, Alt11: 0.2, Alt18: 0.1}
	for _, lk := range chainLinks(c, grant, kindTrunk) {
		g.emitLink(spec.Name, spec.CallPrefix, partialFRN(spec.Name), lk, 2, plan, rng)
	}
	return nil
}

// antennaGain files a plausible dish gain by band: larger apertures in
// the low bands, per corridor practice (6 GHz ~ 38-40 dBi, 11 GHz ~
// 41-43, 18 GHz ~ 44-46 for equivalent dish sizes).
func antennaGain(freqsMHz []float64) float64 {
	if len(freqsMHz) == 0 {
		return 40
	}
	switch f := freqsMHz[0]; {
	case f < 7000:
		return 38.5
	case f < 12000:
		return 41.8
	default:
		return 44.6
	}
}

// contactEmailFor derives the filing contact address for a licensee.
// The joint-filing pair shares one operations inbox — the §6 "licensee
// email addresses" identification signal.
func contactEmailFor(licensee string) string {
	switch licensee {
	case JointA, JointB:
		return "noc@rivercrest-ops.example"
	}
	var b []byte
	for i := 0; i < len(licensee); i++ {
		c := licensee[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b = append(b, c)
		case c >= 'A' && c <= 'Z':
			b = append(b, c+'a'-'A')
		}
	}
	return "licensing@" + string(b) + ".example"
}

// partialFRN derives a stable 10-digit FRN from a licensee name.
func partialFRN(name string) string {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return fmt.Sprintf("%010d", h%10000000000)
}
