package synth

import (
	"bytes"
	"hash/fnv"
	"math/rand/v2"
	"strings"

	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// Calibrated dirty corpora.
//
// The paper's ingestion survives real FCC extracts only because it
// tolerates dirt: truncated downloads, contradictory filings, shredded
// multi-license blocks. Corrupt manufactures that dirt reproducibly —
// a seeded mutator over the bulk encoding of a clean database — so the
// fault-tolerant reader (uls.ReadBulkWithOptions) can be tested and
// measured against corpora with a known corruption rate and a known
// set of untouched licenses that must survive byte-identically.

// Profile is a corruption recipe: what fraction of record lines to
// target and the relative weight of each mutation kind.
type Profile struct {
	// Name seeds the RNG stream (together with the seed argument) and
	// labels the profile in reports.
	Name string
	// Rate is the fraction of record lines targeted by a mutation.
	Rate float64
	// Mutation weights; zero-weight mutations are never applied.
	GarbleW    int // overwrite one field with junk
	TruncateW  int // cut the line short mid-record
	DuplicateW int // re-file a copy of the line
	ReorderW   int // move a record ahead of its HD header
	ShredW     int // join adjacent lines (a lost newline)
}

// Profiles returns the calibrated corruption profiles: one per
// mutation kind plus a mixed profile, all targeting 25% of record
// lines so salvage tests exercise the ≥20%-corrupted regime.
func Profiles() []Profile {
	return []Profile{
		{Name: "garble", Rate: 0.25, GarbleW: 1},
		{Name: "truncate", Rate: 0.25, TruncateW: 1},
		{Name: "duplicate", Rate: 0.25, DuplicateW: 1},
		{Name: "reorder", Rate: 0.25, ReorderW: 1},
		{Name: "shred", Rate: 0.25, ShredW: 1},
		{Name: "mixed", Rate: 0.25, GarbleW: 3, TruncateW: 2, DuplicateW: 2, ReorderW: 1, ShredW: 2},
	}
}

// Corruption is the outcome of one Corrupt run.
type Corruption struct {
	// Clean is the bulk encoding of the pristine database; Dirty is the
	// same corpus after mutation.
	Clean, Dirty []byte
	// Touched holds the call signs whose records a mutation reached
	// (directly or via a joined neighbor). Every license NOT in Touched
	// is bit-identical in Dirty and must be recovered exactly.
	Touched map[string]bool
	// RecordLines is the clean corpus's line count, Mutations how many
	// mutations were applied.
	RecordLines int
	Mutations   int
}

// CorruptionRate is the fraction of clean record lines that received a
// mutation.
func (c *Corruption) CorruptionRate() float64 {
	if c.RecordLines == 0 {
		return 0
	}
	return float64(c.Mutations) / float64(c.RecordLines)
}

// Corrupt encodes db in bulk format and applies the profile's
// mutations from a seeded RNG. The same (db, profile, seed) triple
// always yields the same Corruption. The call-sign field of a record is
// never garbled, so a mutation can only ever affect the license it is
// attributed to (plus joined neighbors) — Touched is exact, not a
// guess.
func Corrupt(db *uls.Database, p Profile, seed uint64) *Corruption {
	var buf bytes.Buffer
	if err := uls.WriteBulk(&buf, db); err != nil {
		// bytes.Buffer writes cannot fail; keep the signature honest.
		panic(err)
	}
	clean := append([]byte(nil), buf.Bytes()...)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		lines = nil
	}

	h := fnv.New64a()
	h.Write([]byte(p.Name))
	rng := rand.New(rand.NewPCG(seed, h.Sum64()|1))

	c := &Corruption{Clean: clean, Touched: make(map[string]bool), RecordLines: len(lines)}
	n := int(p.Rate * float64(len(lines)))
	if p.Rate > 0 && n == 0 && len(lines) > 0 {
		n = 1
	}
	// Distinct target indices, applied in descending order so that a
	// join's line removal or a duplicate's insertion never shifts a
	// target that is still pending.
	perm := rng.Perm(len(lines))
	targets := append([]int(nil), perm[:n]...)
	for i := 0; i < len(targets); i++ { // insertion-sort descending
		for j := i; j > 0 && targets[j] > targets[j-1]; j-- {
			targets[j], targets[j-1] = targets[j-1], targets[j]
		}
	}

	for _, idx := range targets {
		lines = applyMutation(rng, p, lines, idx, c)
		c.Mutations++
	}

	c.Dirty = []byte(strings.Join(lines, "\n"))
	if len(lines) > 0 {
		c.Dirty = append(c.Dirty, '\n')
	}
	return c
}

// junk fields that no HD/EN/LO/PA/FR field parser accepts as a number,
// date, DMS coordinate or status (they do form a "valid" licensee name,
// which is the realistic silent-corruption case for EN records).
var junkFields = []string{"#?~", "!!", "<corrupt>", "NaNope", "??-??-??"}

func applyMutation(rng *rand.Rand, p Profile, lines []string, idx int, c *Corruption) []string {
	touch := func(line string) {
		f := strings.SplitN(line, "|", 3)
		if len(f) >= 2 && f[1] != "" {
			c.Touched[f[1]] = true
		}
	}

	total := p.GarbleW + p.TruncateW + p.DuplicateW + p.ReorderW + p.ShredW
	if total == 0 {
		return lines
	}
	r := rng.IntN(total)
	switch {
	case r < p.GarbleW:
		touch(lines[idx])
		lines[idx] = garble(rng, lines[idx])
	case r < p.GarbleW+p.TruncateW:
		touch(lines[idx])
		if len(lines[idx]) > 4 {
			cut := 3 + rng.IntN(len(lines[idx])-4)
			lines[idx] = lines[idx][:cut]
		} else {
			lines[idx] = garble(rng, lines[idx])
		}
	case r < p.GarbleW+p.TruncateW+p.DuplicateW:
		touch(lines[idx])
		lines = append(lines, "")
		copy(lines[idx+1:], lines[idx:]) // shifts right: lines[idx+1] is now the duplicate
	case r < p.GarbleW+p.TruncateW+p.DuplicateW+p.ReorderW:
		touch(lines[idx])
		// Swap the record with its license's HD line, so the record
		// (and everything of this license in between — WriteBulk keeps
		// licenses contiguous) now precedes its header.
		if hd := hdIndex(lines, idx); hd >= 0 && hd != idx {
			lines[idx], lines[hd] = lines[hd], lines[idx]
		} else {
			lines[idx] = garble(rng, lines[idx]) // it was the HD itself
		}
	default: // shred: join with the following line (lost newline)
		j := idx + 1
		if j >= len(lines) {
			j = idx - 1
		}
		if j < 0 {
			lines[idx] = garble(rng, lines[idx])
			break
		}
		lo, hi := min(idx, j), max(idx, j)
		touch(lines[lo])
		touch(lines[hi])
		lines[lo] = lines[lo] + lines[hi]
		lines = append(lines[:hi], lines[hi+1:]...)
	}
	return lines
}

// garble overwrites one non-call-sign field with junk. The call-sign
// field (index 1) is never touched: a garbled call sign could collide
// with another license and smuggle records into it, which would make
// Touched attribution unsound.
func garble(rng *rand.Rand, line string) string {
	fields := strings.Split(line, "|")
	if len(fields) < 3 {
		return line + "|" + junkFields[rng.IntN(len(junkFields))]
	}
	fi := 2 + rng.IntN(len(fields)-2)
	fields[fi] = junkFields[rng.IntN(len(junkFields))]
	return strings.Join(fields, "|")
}

// hdIndex locates the HD line of the license owning lines[idx],
// searching backwards (WriteBulk emits each license contiguously,
// header first).
func hdIndex(lines []string, idx int) int {
	f := strings.SplitN(lines[idx], "|", 3)
	if len(f) < 2 || f[1] == "" {
		return -1
	}
	prefix := "HD|" + f[1] + "|"
	for i := idx; i >= 0; i-- {
		if strings.HasPrefix(lines[i], prefix) {
			return i
		}
	}
	return -1
}

// FlipBits returns a copy of data with n distinct bits flipped at
// seeded positions — the at-rest bit-rot counterpart to the record-level
// mutations above, used against binary artifacts (store segments,
// manifests) whose checksums must catch silent corruption. The same
// (data, seed, n) triple always flips the same bits. n is capped at the
// number of bits available.
func FlipBits(data []byte, seed uint64, n int) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 || n <= 0 {
		return out
	}
	if n > len(out)*8 {
		n = len(out) * 8
	}
	rng := rand.New(rand.NewPCG(seed, 0x626974666c6970)) // "bitflip"
	seen := make(map[int]bool, n)
	for len(seen) < n {
		bit := rng.IntN(len(out) * 8)
		if seen[bit] {
			continue
		}
		seen[bit] = true
		out[bit/8] ^= 1 << (bit % 8)
	}
	return out
}

// CorridorBounds is the Chicago–New Jersey corridor bounding box: the
// four data centers padded by two degrees, generous enough to contain
// every synthetic tower while still rejecting coordinates that landed
// on another continent.
func CorridorBounds() uls.Bounds {
	b := uls.Bounds{MinLat: 90, MaxLat: -90, MinLon: 180, MaxLon: -180}
	for _, dc := range sites.All {
		b.MinLat = min(b.MinLat, dc.Location.Lat)
		b.MaxLat = max(b.MaxLat, dc.Location.Lat)
		b.MinLon = min(b.MinLon, dc.Location.Lon)
		b.MaxLon = max(b.MaxLon, dc.Location.Lon)
	}
	const pad = 2.0
	b.MinLat -= pad
	b.MaxLat += pad
	b.MinLon -= pad
	b.MaxLon += pad
	return b
}
