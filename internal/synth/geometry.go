package synth

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"

	"hftnetview/internal/geo"
	"hftnetview/internal/units"
)

// newRNG returns a deterministic RNG for a licensee/purpose pair so that
// regeneration is stable and independent of generation order.
func newRNG(name, purpose string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(purpose))
	return rand.New(rand.NewPCG(h.Sum64(), 0x9e3779b97f4a7c15))
}

// chain is a tower chain: on-geodesic base points plus lateral offsets.
type chain struct {
	fracs   []float64   // position along the base geodesic, 0..1
	base    []geo.Point // on-geodesic positions
	bearing []float64   // local corridor bearing at each base point
	jitter  []float64   // unit lateral jitter shape, in [-1, 1]
	lateral []float64   // final lateral offset in meters
}

// newChain builds an n-tower chain between from and to with mildly
// jittered spacing; endpoints are pinned (zero jitter).
func newChain(from, to geo.Point, n int, rng *rand.Rand) *chain {
	if n < 2 {
		panic("synth: chain needs >= 2 towers")
	}
	c := &chain{
		fracs:   make([]float64, n),
		base:    make([]geo.Point, n),
		bearing: make([]float64, n),
		jitter:  make([]float64, n),
		lateral: make([]float64, n),
	}
	// Spacing: cumulative weights 1 ± 0.18.
	weights := make([]float64, n-1)
	var sum float64
	for i := range weights {
		weights[i] = 1 + 0.36*(rng.Float64()-0.5)
		sum += weights[i]
	}
	acc := 0.0
	for i := 0; i < n; i++ {
		c.fracs[i] = acc / sum
		if i < n-1 {
			acc += weights[i]
		}
	}
	c.fracs[n-1] = 1
	for i := 0; i < n; i++ {
		c.base[i] = geo.Interpolate(from, to, c.fracs[i])
		if i < n-1 {
			c.bearing[i] = geo.InitialBearing(c.base[i], to)
		} else {
			c.bearing[i] = geo.InitialBearing(from, to)
		}
	}
	// Alternating-sign unit jitter maximizes the length added per meter
	// of amplitude, which keeps calibrated amplitudes small.
	sign := 1.0
	for i := 1; i < n-1; i++ {
		c.jitter[i] = sign * (0.6 + 0.4*rng.Float64())
		sign = -sign
	}
	return c
}

// pos returns tower i displaced laterally by extra meters beyond its
// final offset.
func (c *chain) pos(i int, extra float64) geo.Point {
	off := c.lateral[i] + extra
	if off == 0 {
		return c.base[i]
	}
	return geo.Offset(c.base[i], c.bearing[i], 0, off)
}

// points materializes the full chain at its final offsets.
func (c *chain) points() []geo.Point {
	pts := make([]geo.Point, len(c.base))
	for i := range pts {
		pts[i] = c.pos(i, 0)
	}
	return pts
}

// lengthWith returns the chain's polyline length with per-tower extra
// lateral offsets (nil = final geometry).
func (c *chain) lengthWith(extras []float64) float64 {
	var total float64
	prev := c.pos(0, extraAt(extras, 0))
	for i := 1; i < len(c.base); i++ {
		cur := c.pos(i, extraAt(extras, i))
		total += geo.Distance(prev, cur)
		prev = cur
	}
	return total
}

// lengthRange returns the polyline length of towers [from, to] at final
// offsets.
func (c *chain) lengthRange(from, to int) float64 {
	var total float64
	prev := c.pos(from, 0)
	for i := from + 1; i <= to; i++ {
		cur := c.pos(i, 0)
		total += geo.Distance(prev, cur)
		prev = cur
	}
	return total
}

func extraAt(extras []float64, i int) float64 {
	if extras == nil {
		return 0
	}
	return extras[i]
}

// applyAmplitude sets the final lateral offsets of towers in [from, to]
// (inclusive) to amp × jitter.
func (c *chain) applyAmplitude(from, to int, amp float64) {
	for i := from; i <= to && i < len(c.lateral); i++ {
		if i <= 0 || i >= len(c.lateral)-1 {
			continue // endpoints stay pinned
		}
		c.lateral[i] = amp * c.jitter[i]
	}
}

// nearestIndex returns the chain index whose fraction is closest to f.
func (c *chain) nearestIndex(f float64) int {
	best, bestD := 0, math.Inf(1)
	for i, fr := range c.fracs {
		if d := math.Abs(fr - f); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// bisect solves f(x) = target for monotonically increasing f on [lo, hi]
// to within tol (in f's units). It errors when the target is outside
// [f(lo), f(hi)] — i.e. the spec's latency target is infeasible for the
// geometry.
func bisect(lo, hi float64, f func(float64) float64, target, tol float64, what string) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if target < flo-tol {
		return 0, fmt.Errorf("synth: %s: target %.9f below minimum %.9f", what, target, flo)
	}
	if target <= flo {
		return lo, nil
	}
	if target > fhi {
		return 0, fmt.Errorf("synth: %s: target %.9f above maximum %.9f", what, target, fhi)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		fm := f(mid)
		if math.Abs(fm-target) <= tol {
			return mid, nil
		}
		if fm < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// latencySeconds converts a mixed path (microwave meters + fiber meters)
// into one-way seconds.
func latencySeconds(mwMeters, fiberMeters float64) float64 {
	return units.MicrowaveLatency(mwMeters).Seconds() +
		units.FiberLatency(fiberMeters).Seconds()
}

// msToSeconds converts the spec's millisecond targets.
func msToSeconds(ms float64) float64 { return ms / 1000 }

// calibrationTolSeconds is the bisection tolerance: 1 ns one-way, i.e.
// ~0.3 m of path — far below the 0.4 µs gaps the tables report.
const calibrationTolSeconds = 1e-9
