package synth

import (
	"math"
	"testing"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// The generated corpus is deterministic, so tests share one instance.
var (
	testDB   *uls.Database
	snapshot = uls.NewDate(2020, time.April, 1)
)

func db(t *testing.T) *uls.Database {
	t.Helper()
	if testDB == nil {
		d, err := Generate()
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		testDB = d
	}
	return testDB
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for _, la := range a.All() {
		lb, ok := b.ByCallSign(la.CallSign)
		if !ok {
			t.Fatalf("call sign %s missing in second run", la.CallSign)
		}
		if la.Grant != lb.Grant || la.Cancellation != lb.Cancellation ||
			la.Licensee != lb.Licensee {
			t.Fatalf("%s differs across runs", la.CallSign)
		}
		if len(la.Locations) != len(lb.Locations) {
			t.Fatalf("%s location count differs", la.CallSign)
		}
		for i := range la.Locations {
			if la.Locations[i].Point != lb.Locations[i].Point {
				t.Fatalf("%s location %d moved across runs", la.CallSign, i)
			}
		}
	}
}

func TestCandidateFunnel(t *testing.T) {
	d := db(t)
	// §2.2: geographic search 10 km around CME, MG service, FXO class →
	// 57 candidate licensees; ≥11 filings → 29 shortlisted.
	within := d.WithinRadius(sites.CME.Location, 10e3)
	mgfxo := uls.FilterService(within, uls.ServiceMG, uls.ClassFXO)
	candidates := make(map[string]bool)
	for _, l := range mgfxo {
		candidates[l.Licensee] = true
	}
	if len(candidates) != 57 {
		t.Errorf("candidates = %d, want 57", len(candidates))
	}
	shortlisted := 0
	for name := range candidates {
		if len(d.ByLicensee(name)) >= 11 {
			shortlisted++
		}
	}
	if shortlisted != 29 {
		t.Errorf("shortlisted = %d, want 29", shortlisted)
	}
}

func TestTable1ConnectedNetworks(t *testing.T) {
	d := db(t)
	path := sites.Path{From: sites.CME, To: sites.NY4}
	rows, err := core.ConnectedNetworks(d, snapshot, path, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("connected networks = %d, want 9", len(rows))
	}
	// Paper Table 1 in order, with the reproduction's measured APA
	// tolerances (latency and tower count are calibrated exactly).
	want := []struct {
		name      string
		latencyMs float64
		apa       float64 // paper's value; tolerance below
		towers    int
	}{
		{NLN, 3.96171, 0.54, 25},
		{PB, 3.96209, 0.07, 29},
		{JM, 3.96597, 0.73, 22},
		{BC, 3.96940, 0.00, 29},
		{WH, 3.97157, 0.85, 27},
		{AQ2AT, 4.01101, 0.00, 29},
		{WI, 4.12246, 0.00, 33},
		{GTT, 4.24241, 0.00, 28},
		{SW, 4.44530, 0.00, 74},
	}
	for i, w := range want {
		r := rows[i]
		if r.Licensee != w.name {
			t.Fatalf("rank %d = %s, want %s", i+1, r.Licensee, w.name)
		}
		if math.Abs(r.Latency.Milliseconds()-w.latencyMs) > 0.00005 {
			t.Errorf("%s latency = %.5f ms, want %.5f", w.name,
				r.Latency.Milliseconds(), w.latencyMs)
		}
		if r.TowerCount != w.towers {
			t.Errorf("%s towers = %d, want %d", w.name, r.TowerCount, w.towers)
		}
		if math.Abs(r.APA-w.apa) > 0.10 {
			t.Errorf("%s APA = %.2f, want %.2f ± 0.10", w.name, r.APA, w.apa)
		}
	}
}

func TestTable2Rankings(t *testing.T) {
	d := db(t)
	ranks, err := core.RankNetworks(d, snapshot, sites.CorridorPaths(), 3, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]struct {
		name      string
		latencyMs float64
	}{
		"CME-NY4":    {{NLN, 3.96171}, {PB, 3.96209}, {JM, 3.96597}},
		"CME-NYSE":   {{NLN, 3.93209}, {JM, 3.94021}, {BC, 3.95866}},
		"CME-NASDAQ": {{NLN, 3.92728}, {WH, 3.92805}, {JM, 3.92828}},
	}
	for _, pr := range ranks {
		w := want[pr.Path.Name()]
		if len(pr.Ranked) != 3 {
			t.Fatalf("%s: got %d ranked", pr.Path.Name(), len(pr.Ranked))
		}
		for i := range w {
			if pr.Ranked[i].Licensee != w[i].name {
				t.Errorf("%s rank %d = %s, want %s", pr.Path.Name(), i+1,
					pr.Ranked[i].Licensee, w[i].name)
			}
			if math.Abs(pr.Ranked[i].Latency.Milliseconds()-w[i].latencyMs) > 0.00005 {
				t.Errorf("%s rank %d latency = %.5f, want %.5f", pr.Path.Name(), i+1,
					pr.Ranked[i].Latency.Milliseconds(), w[i].latencyMs)
			}
		}
	}
}

func TestTable2PaperGaps(t *testing.T) {
	d := db(t)
	opts := core.DefaultOptions()
	path := sites.Path{From: sites.CME, To: sites.NY4}
	get := func(name string) float64 {
		n, err := core.Reconstruct(d, name, snapshot, sites.All, opts)
		if err != nil {
			t.Fatal(err)
		}
		r, ok := n.BestRoute(path)
		if !ok {
			t.Fatalf("%s not connected", name)
		}
		return r.Latency.Microseconds()
	}
	// §3: NLN leads PB by ~0.4 µs on CME–NY4.
	gap := get(PB) - get(NLN)
	if math.Abs(gap-0.38) > 0.05 {
		t.Errorf("NLN→PB gap = %.2f µs, want ≈0.38", gap)
	}
}

func TestTable3APA(t *testing.T) {
	d := db(t)
	opts := core.DefaultOptions()
	want := []struct {
		path    sites.Path
		nln, wh float64 // paper values
	}{
		{sites.Path{From: sites.CME, To: sites.NY4}, 0.54, 0.85},
		{sites.Path{From: sites.CME, To: sites.NYSE}, 0.58, 0.92},
		{sites.Path{From: sites.CME, To: sites.NASDAQ}, 0.30, 0.80},
	}
	for _, w := range want {
		nlnNet, err := core.Reconstruct(d, NLN, snapshot, sites.All, opts)
		if err != nil {
			t.Fatal(err)
		}
		whNet, err := core.Reconstruct(d, WH, snapshot, sites.All, opts)
		if err != nil {
			t.Fatal(err)
		}
		nlnAPA, ok1 := nlnNet.APA(w.path)
		whAPA, ok2 := whNet.APA(w.path)
		if !ok1 || !ok2 {
			t.Fatalf("%s: APA not computable", w.path.Name())
		}
		if math.Abs(nlnAPA-w.nln) > 0.10 {
			t.Errorf("%s NLN APA = %.2f, want %.2f ± 0.10", w.path.Name(), nlnAPA, w.nln)
		}
		if math.Abs(whAPA-w.wh) > 0.10 {
			t.Errorf("%s WH APA = %.2f, want %.2f ± 0.10", w.path.Name(), whAPA, w.wh)
		}
		// The paper's headline: WH's APA is significantly higher than
		// NLN's on every path.
		if whAPA <= nlnAPA+0.15 {
			t.Errorf("%s: WH APA %.2f not significantly above NLN %.2f",
				w.path.Name(), whAPA, nlnAPA)
		}
	}
}

func TestFig1LatencyEvolution(t *testing.T) {
	d := db(t)
	opts := core.DefaultOptions()
	path := sites.Path{From: sites.CME, To: sites.NY4}
	dates := core.PaperSampleDates(2013, 2020)

	evo := func(name string) []core.EvolutionPoint {
		pts, err := core.Evolution(d, name, path, dates, opts)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}

	// NTC: connected 2013–2017, gone from 2018 on (§4).
	ntc := evo(NTC)
	for i, pt := range ntc {
		wantConn := dates[i].Year <= 2017
		if pt.Connected != wantConn {
			t.Errorf("NTC connected in %d = %v, want %v", dates[i].Year, pt.Connected, wantConn)
		}
	}
	if !(ntc[0].Latency.Milliseconds() > 4.0) {
		t.Errorf("NTC 2013 latency %.4f, want > 4.0", ntc[0].Latency.Milliseconds())
	}

	// PB: connected only in 2020.
	pb := evo(PB)
	for i, pt := range pb {
		wantConn := dates[i].Year == 2020
		if pt.Connected != wantConn {
			t.Errorf("PB connected in %d = %v, want %v", dates[i].Year, pt.Connected, wantConn)
		}
	}

	// NLN: end-to-end from 2016-01-01, monotone non-increasing latency.
	nln := evo(NLN)
	for i, pt := range nln {
		wantConn := dates[i].Year >= 2016
		if pt.Connected != wantConn {
			t.Errorf("NLN connected in %d = %v, want %v", dates[i].Year, pt.Connected, wantConn)
		}
	}
	for i := 5; i < len(nln); i++ { // 2017 onward vs previous year
		if nln[i].Latency > nln[i-1].Latency {
			t.Errorf("NLN latency increased %d→%d: %v → %v",
				dates[i-1].Year, dates[i].Year, nln[i-1].Latency, nln[i].Latency)
		}
	}

	// WH: connected throughout, declining from ~4.01 to its 2020 value.
	wh := evo(WH)
	for i, pt := range wh {
		if !pt.Connected {
			t.Errorf("WH disconnected in %d", dates[i].Year)
		}
	}
	if wh[0].Latency.Milliseconds() < 4.005 {
		t.Errorf("WH 2013 latency %.4f, want > 4.005", wh[0].Latency.Milliseconds())
	}
	if math.Abs(wh[7].Latency.Milliseconds()-3.97157) > 0.0001 {
		t.Errorf("WH 2020 latency %.5f, want 3.97157", wh[7].Latency.Milliseconds())
	}

	// §4: the corridor's fastest network went from ~4.00 ms (2013) to
	// 3.962 ms (2020), never reaching the 3.955-3.956 ms bound.
	best2013 := math.Inf(1)
	for _, name := range []string{NTC, WH} {
		if p := evo(name)[0]; p.Connected {
			best2013 = math.Min(best2013, p.Latency.Milliseconds())
		}
	}
	if math.Abs(best2013-4.005) > 0.01 {
		t.Errorf("fastest 2013 = %.4f ms, want ≈4.005", best2013)
	}
	best2020 := evo(NLN)[7].Latency.Milliseconds()
	if math.Abs(best2020-3.96171) > 0.0001 {
		t.Errorf("fastest 2020 = %.5f, want 3.96171", best2020)
	}
	cBound := 3.9561
	if best2020 <= cBound {
		t.Errorf("2020 best %.5f ms at or below the c bound %.4f", best2020, cBound)
	}
}

func TestFig2ActiveLicenses(t *testing.T) {
	d := db(t)
	count := func(name string, date uls.Date) int {
		return d.ActiveCountByLicensee(date)[name]
	}
	jan := func(y int) uls.Date { return uls.NewDate(y, time.January, 1) }

	// NLN: 95 active on 2016-01-01 after ~55 grants in 2015 (§4).
	nln2016 := count(NLN, jan(2016))
	if math.Abs(float64(nln2016)-95) > 15 {
		t.Errorf("NLN active on 2016-01-01 = %d, want ≈95", nln2016)
	}
	g2015, _ := d.GrantsCancellationsInYear(NLN, 2015)
	if math.Abs(float64(g2015)-55) > 15 {
		t.Errorf("NLN grants in 2015 = %d, want ≈55", g2015)
	}
	// NLN keeps growing through 2017-2018.
	if !(count(NLN, jan(2018)) > nln2016) {
		t.Error("NLN license count should grow after 2016")
	}

	// NTC: active fleet through 2016, 0 by 2019; all cancellations in
	// 2017-18 (§4: "cancelled 71 licenses in 2017 and 2018").
	if c := count(NTC, jan(2019)); c != 0 {
		t.Errorf("NTC active in 2019 = %d, want 0", c)
	}
	_, c17 := d.GrantsCancellationsInYear(NTC, 2017)
	_, c18 := d.GrantsCancellationsInYear(NTC, 2018)
	ntcPeak := count(NTC, jan(2017))
	if c17+c18 < ntcPeak {
		t.Errorf("NTC 2017-18 cancellations = %d, want >= %d (full exit)", c17+c18, ntcPeak)
	}
	if math.Abs(float64(c17+c18)-71) > 25 {
		t.Errorf("NTC 2017-18 cancellations = %d, want ≈71", c17+c18)
	}
	// NTC's 2014 shows both grants and cancellations (§4 narrative).
	g14, c14 := d.GrantsCancellationsInYear(NTC, 2014)
	if g14 == 0 || c14 == 0 {
		t.Errorf("NTC 2014 grants=%d cancels=%d, want both nonzero", g14, c14)
	}

	// PB: by far the fewest active licenses among the 2020-active four
	// (Fig 2 discussion).
	apr20 := snapshot
	pbC := count(PB, apr20)
	for _, other := range []string{NLN, WH, JM} {
		if oc := count(other, apr20); pbC >= oc {
			t.Errorf("PB count %d not below %s count %d", pbC, other, oc)
		}
	}
	if pbC == 0 {
		t.Error("PB should have active licenses in 2020")
	}
}

func TestFig4aLinkLengths(t *testing.T) {
	d := db(t)
	opts := core.DefaultOptions()
	path := sites.Path{From: sites.CME, To: sites.NY4}
	median := func(name string) float64 {
		n, err := core.Reconstruct(d, name, snapshot, sites.All, opts)
		if err != nil {
			t.Fatal(err)
		}
		lengths, ok := n.LinkLengthsOnBoundedPaths(path)
		if !ok || len(lengths) == 0 {
			t.Fatalf("%s: no bounded links", name)
		}
		return core.NewCDF(lengths).Median() / 1000
	}
	whMed := median(WH)
	nlnMed := median(NLN)
	// Paper: WH 36 km vs NLN 48.5 km (26% lower). Shape: WH well below
	// NLN; magnitudes within a few km.
	if whMed >= nlnMed {
		t.Errorf("WH median %.1f km not below NLN %.1f km", whMed, nlnMed)
	}
	if math.Abs(whMed-36) > 6 {
		t.Errorf("WH median = %.1f km, want ≈36", whMed)
	}
	if math.Abs(nlnMed-48.5) > 8 {
		t.Errorf("NLN median = %.1f km, want ≈48.5", nlnMed)
	}
}

func TestFig4bFrequencies(t *testing.T) {
	d := db(t)
	opts := core.DefaultOptions()
	path := sites.Path{From: sites.CME, To: sites.NY4}
	load := func(name string) *core.Network {
		n, err := core.Reconstruct(d, name, snapshot, sites.All, opts)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	wh := load(WH)
	nln := load(NLN)

	whSP, ok := wh.FrequenciesOnShortestPath(path)
	if !ok || len(whSP) == 0 {
		t.Fatal("WH: no shortest-path frequencies")
	}
	// Paper: >94% of WH's frequencies under 7 GHz.
	if frac := core.NewCDF(whSP).FractionBelow(7); frac < 0.94 {
		t.Errorf("WH frequencies under 7 GHz = %.2f, want > 0.94", frac)
	}

	nlnSP, ok := nln.FrequenciesOnShortestPath(path)
	if !ok || len(nlnSP) == 0 {
		t.Fatal("NLN: no shortest-path frequencies")
	}
	// Paper: NLN primarily uses the 11 GHz band.
	in11 := 0
	for _, f := range nlnSP {
		if f >= 10 && f < 12 {
			in11++
		}
	}
	if frac := float64(in11) / float64(len(nlnSP)); frac < 0.7 {
		t.Errorf("NLN 11 GHz share = %.2f, want > 0.7", frac)
	}

	// Paper: ≥18% of NLN's alternate-path frequencies in the 6 GHz band.
	nlnAlt, ok := nln.FrequenciesOnAlternatePaths(path)
	if !ok || len(nlnAlt) == 0 {
		t.Fatal("NLN: no alternate-path frequencies")
	}
	if frac := core.NewCDF(nlnAlt).FractionBelow(7); frac < 0.18 {
		t.Errorf("NLN alternate 6 GHz share = %.2f, want >= 0.18", frac)
	}
}

func TestGeneratedLicensesValidate(t *testing.T) {
	d := db(t)
	for _, l := range d.All() {
		if err := l.Validate(); err != nil {
			t.Fatalf("generated license invalid: %v", err)
		}
		if l.RadioService != uls.ServiceMG {
			t.Errorf("%s service = %s, want MG", l.CallSign, l.RadioService)
		}
		for _, p := range l.Paths {
			if p.StationClass != uls.ClassFXO {
				t.Errorf("%s class = %s, want FXO", l.CallSign, p.StationClass)
			}
		}
	}
}

func TestGeneratedLinkLengthsArePlausible(t *testing.T) {
	d := db(t)
	for _, l := range d.All() {
		for _, lk := range l.Links() {
			km := lk.LengthMeters() / 1000
			// §2.2: >100 km tower-to-tower microwave links are too
			// inefficient to exist.
			if km > 100 {
				t.Errorf("%s: %.1f km link exceeds 100 km", l.CallSign, km)
			}
			if km < 0.3 {
				t.Errorf("%s: %.2f km link implausibly short", l.CallSign, km)
			}
		}
	}
}

func TestAntennaRecordsMatchGeometry(t *testing.T) {
	d := db(t)
	for _, l := range d.All() {
		for _, p := range l.Paths {
			txLoc, _ := l.LocationByNumber(p.TXLocation)
			rxLoc, _ := l.LocationByNumber(p.RXLocation)
			wantTX := geo.InitialBearing(txLoc.Point, rxLoc.Point)
			if diff := angleDiff(p.TXAzimuthDeg, wantTX); diff > 0.5 {
				t.Fatalf("%s path %d: TX azimuth %.1f, geometry says %.1f",
					l.CallSign, p.Number, p.TXAzimuthDeg, wantTX)
			}
			// The RX dish faces back along the path (± the geodesic's
			// bearing change over the hop, under a degree at ≤60 km).
			back := math.Mod(p.TXAzimuthDeg+180, 360)
			if diff := angleDiff(p.RXAzimuthDeg, back); diff > 1.0 {
				t.Fatalf("%s path %d: RX azimuth %.1f not the back bearing of %.1f",
					l.CallSign, p.Number, p.RXAzimuthDeg, p.TXAzimuthDeg)
			}
			if p.AntennaGainDBi < 35 || p.AntennaGainDBi > 50 {
				t.Fatalf("%s path %d: gain %.1f dBi implausible", l.CallSign,
					p.Number, p.AntennaGainDBi)
			}
		}
	}
}

func angleDiff(a, b float64) float64 {
	d := math.Abs(math.Mod(a-b+540, 360) - 180)
	return d
}

func TestHFTNetworksHaveTowerNearCME(t *testing.T) {
	d := db(t)
	for _, spec := range HFTNetworks() {
		found := false
		for _, l := range d.ByLicensee(spec.Name) {
			for _, loc := range l.Locations {
				if distKM := distanceKM(loc, sites.CME); distKM <= 10 {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s has no tower within 10 km of CME", spec.Name)
		}
	}
}

func distanceKM(loc uls.Location, dc sites.DataCenter) float64 {
	return geo.Distance(loc.Point, dc.Location) / 1000
}
