package synth

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hftnetview/internal/uls"
)

// corpusDB generates the corpus once per test binary.
var corpusDB = func() func(t *testing.T) *uls.Database {
	var db *uls.Database
	return func(t *testing.T) *uls.Database {
		t.Helper()
		if db == nil {
			var err error
			db, err = Generate()
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
		}
		return db
	}
}()

func TestCorruptDeterministic(t *testing.T) {
	db := corpusDB(t)
	for _, p := range Profiles() {
		a := Corrupt(db, p, 7)
		b := Corrupt(db, p, 7)
		if !bytes.Equal(a.Dirty, b.Dirty) {
			t.Errorf("%s: same seed produced different dirty corpora", p.Name)
		}
		c := Corrupt(db, p, 8)
		if bytes.Equal(a.Dirty, c.Dirty) {
			t.Errorf("%s: different seeds produced identical dirty corpora", p.Name)
		}
		if bytes.Equal(a.Dirty, a.Clean) {
			t.Errorf("%s: corruption was a no-op", p.Name)
		}
		if got := a.CorruptionRate(); got < 0.20 {
			t.Errorf("%s: corruption rate %.3f below the 20%% regime", p.Name, got)
		}
	}
}

// TestCorruptTouchedExact verifies the attribution contract Corrupt
// documents: a license not in Touched has bit-identical lines in the
// dirty corpus.
func TestCorruptTouchedExact(t *testing.T) {
	db := corpusDB(t)
	for _, p := range Profiles() {
		c := Corrupt(db, p, 3)
		dirty := make(map[string]bool)
		for _, line := range strings.Split(string(c.Dirty), "\n") {
			dirty[line] = true
		}
		for _, line := range strings.Split(strings.TrimRight(string(c.Clean), "\n"), "\n") {
			f := strings.SplitN(line, "|", 3)
			if len(f) < 2 || c.Touched[f[1]] {
				continue
			}
			if !dirty[line] {
				t.Fatalf("%s: line of untouched license %s missing from dirty corpus: %q",
					p.Name, f[1], line)
			}
		}
	}
}

// TestSalvageRoundTrip is the headline guarantee: lenient ingestion of
// a ≥20%-corrupted corpus recovers every untouched license
// byte-identically to the clean parse, for seeds 1..20 across every
// profile, with a deterministic IngestReport.
func TestSalvageRoundTrip(t *testing.T) {
	db := corpusDB(t)
	cleanDB, err := uls.ReadBulk(bytes.NewReader(Corrupt(db, Profile{}, 0).Clean))
	if err != nil {
		t.Fatalf("clean parse: %v", err)
	}
	cleanLicense := make(map[string]string) // call sign -> bulk block
	for _, l := range cleanDB.All() {
		var b bytes.Buffer
		one := uls.NewDatabase()
		if err := one.Add(l); err != nil {
			t.Fatalf("re-add %s: %v", l.CallSign, err)
		}
		if err := uls.WriteBulk(&b, one); err != nil {
			t.Fatalf("WriteBulk %s: %v", l.CallSign, err)
		}
		cleanLicense[l.CallSign] = b.String()
	}

	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 20; seed++ {
				c := Corrupt(db, p, seed)
				got, rep, err := uls.ReadBulkWithOptions(bytes.NewReader(c.Dirty),
					uls.ReadBulkOptions{Mode: uls.Lenient})
				if err != nil {
					t.Fatalf("seed %d: lenient parse: %v", seed, err)
				}
				if rep == nil {
					t.Fatalf("seed %d: nil report", seed)
				}
				// Determinism of the report.
				_, rep2, err := uls.ReadBulkWithOptions(bytes.NewReader(c.Dirty),
					uls.ReadBulkOptions{Mode: uls.Lenient})
				if err != nil {
					t.Fatalf("seed %d: second lenient parse: %v", seed, err)
				}
				if rep.String() != rep2.String() {
					t.Fatalf("seed %d: IngestReport not deterministic:\n%s\nvs\n%s",
						seed, rep, rep2)
				}
				// Every untouched license must round-trip byte-identically.
				recovered, missing := 0, 0
				for cs, want := range cleanLicense {
					if c.Touched[cs] {
						continue
					}
					l, ok := got.ByCallSign(cs)
					if !ok {
						missing++
						t.Errorf("seed %d: untouched license %s lost", seed, cs)
						continue
					}
					var b bytes.Buffer
					one := uls.NewDatabase()
					if err := one.Add(l); err != nil {
						t.Fatalf("seed %d: re-add recovered %s: %v", seed, cs, err)
					}
					if err := uls.WriteBulk(&b, one); err != nil {
						t.Fatalf("seed %d: WriteBulk recovered %s: %v", seed, cs, err)
					}
					if b.String() != want {
						t.Errorf("seed %d: untouched license %s not byte-identical:\n got: %q\nwant: %q",
							seed, cs, b.String(), want)
					} else {
						recovered++
					}
				}
				if t.Failed() {
					t.Fatalf("seed %d profile %s: salvage failed (%d recovered, %d missing, rate %.2f)\nreport:\n%s",
						seed, p.Name, recovered, missing, c.CorruptionRate(), rep)
				}
			}
		})
	}
}

// TestCorridorBoundsContainsCorpus guards the bounds used for
// coordinate-range validation: every location the generator emits must
// sit inside CorridorBounds, or bounds-based repair would eat healthy
// towers.
func TestCorridorBoundsContainsCorpus(t *testing.T) {
	db := corpusDB(t)
	b := CorridorBounds()
	for _, l := range db.All() {
		for _, loc := range l.Locations {
			if !b.Contains(loc.Point) {
				t.Errorf("%s location %d at %v outside corridor bounds %v",
					l.CallSign, loc.Number, loc.Point, b)
			}
		}
	}
	if rep := uls.Validate(db, uls.ValidateOptions{Bounds: boundsPtr(b)}); !rep.Clean() {
		t.Errorf("clean corpus fails bounded Validate:\n%s", rep)
	}
}

func boundsPtr(b uls.Bounds) *uls.Bounds { return &b }

// TestSalvageRateByProfile records the measured salvage behaviour the
// EXPERIMENTS.md entry cites; it fails only if salvage degrades badly.
func TestSalvageRateByProfile(t *testing.T) {
	db := corpusDB(t)
	total := db.Len()
	for _, p := range Profiles() {
		c := Corrupt(db, p, 1)
		got, rep, err := uls.ReadBulkWithOptions(bytes.NewReader(c.Dirty),
			uls.ReadBulkOptions{Mode: uls.Lenient})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if testing.Verbose() {
			fmt.Printf("profile %-10s rate=%.2f touched=%d loaded=%d/%d quarantined=%d badlines=%d\n",
				p.Name, c.CorruptionRate(), len(c.Touched), got.Len(), total,
				len(rep.Quarantined), rep.BadLines)
		}
		untouched := total - len(c.Touched)
		if got.Len() < untouched {
			t.Errorf("%s: loaded %d licenses, fewer than the %d untouched ones",
				p.Name, got.Len(), untouched)
		}
	}
}
