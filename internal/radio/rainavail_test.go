package radio

import (
	"math"
	"testing"
)

func TestRainAttenuation001(t *testing.T) {
	// 45 km at 11 GHz under 42 mm/h with the path factor applied.
	gamma := SpecificAttenuation(11, R001CorridorMMH)
	want := gamma * 45 * EffectivePathFactor(45, R001CorridorMMH)
	if got := RainAttenuation001(11, 45, R001CorridorMMH); math.Abs(got-want) > 1e-9 {
		t.Errorf("A001 = %v, want %v", got, want)
	}
}

func TestRainUnavailabilityAtA001(t *testing.T) {
	// A margin equal to A(0.01%) means unavailable ≈ 0.01% of the year.
	a001 := RainAttenuation001(11, 45, R001CorridorMMH)
	// The P.530 scaling law gives A(0.01)/A001 = 0.12·0.01^-0.46 ≈ 0.999…
	// so the fixed point should land very near p = 0.01.
	u := RainUnavailability(11, 45, a001, R001CorridorMMH)
	if u < 0.5e-4 || u > 2e-4 {
		t.Errorf("unavailability at margin=A001 = %v, want ≈1e-4", u)
	}
}

func TestRainUnavailabilityMonotonicity(t *testing.T) {
	// More margin → less downtime.
	u30 := RainUnavailability(11, 45, 30, R001CorridorMMH)
	u40 := RainUnavailability(11, 45, 40, R001CorridorMMH)
	u50 := RainUnavailability(11, 45, 50, R001CorridorMMH)
	if !(u30 > u40 && u40 > u50) {
		t.Errorf("margin monotonicity broken: %v, %v, %v", u30, u40, u50)
	}
	// Higher frequency → more downtime at the same margin.
	u6 := RainUnavailability(6, 45, 40, R001CorridorMMH)
	u11 := RainUnavailability(11, 45, 40, R001CorridorMMH)
	u18 := RainUnavailability(18, 45, 40, R001CorridorMMH)
	if !(u6 < u11 && u11 < u18) {
		t.Errorf("frequency monotonicity broken: %v, %v, %v", u6, u11, u18)
	}
	// Longer link → more downtime.
	u25 := RainUnavailability(11, 25, 40, R001CorridorMMH)
	u60 := RainUnavailability(11, 60, 40, R001CorridorMMH)
	if u25 >= u60 {
		t.Errorf("length monotonicity broken: %v vs %v", u25, u60)
	}
}

func TestRainUnavailabilityScale(t *testing.T) {
	// A 6 GHz 45 km corridor hop with a 40 dB margin is essentially
	// rain-proof (minutes per year); the same hop at 18 GHz suffers
	// hours.
	u6 := RainUnavailability(6, 45, 40, R001CorridorMMH)
	if mins := AnnualDowntimeSeconds(u6) / 60; mins > 20 {
		t.Errorf("6 GHz hop downtime = %.1f min/yr, want < 20", mins)
	}
	u18 := RainUnavailability(18, 45, 40, R001CorridorMMH)
	if hours := AnnualDowntimeSeconds(u18) / 3600; hours < 1 {
		t.Errorf("18 GHz hop downtime = %.2f h/yr, want > 1", hours)
	}
}

func TestRainUnavailabilityEdgeCases(t *testing.T) {
	if RainUnavailability(11, 0, 40, R001CorridorMMH) != 0 {
		t.Error("zero-length link should have zero rain outage")
	}
	if RainUnavailability(0, 45, 40, R001CorridorMMH) != 0 {
		t.Error("zero frequency should have zero rain outage")
	}
	if RainUnavailability(11, 45, 0, R001CorridorMMH) != 0 {
		t.Error("zero margin handled")
	}
	u := RainUnavailability(38, 100, 1, 100)
	if u < 0 || u > 1 {
		t.Errorf("unavailability out of range: %v", u)
	}
}

func TestPathRainAvailability(t *testing.T) {
	wh := make([]Hop, 26)
	for i := range wh {
		wh[i] = Hop{FreqGHz: 6, PathKM: 45.6}
	}
	nln := make([]Hop, 24)
	for i := range nln {
		nln[i] = Hop{FreqGHz: 11, PathKM: 49.4}
	}
	aWH := PathRainAvailability(wh, 40, R001CorridorMMH)
	aNLN := PathRainAvailability(nln, 40, R001CorridorMMH)
	// §5 in one inequality: the 6 GHz short-link network rides out rain
	// the 11 GHz network cannot.
	if aWH <= aNLN {
		t.Errorf("WH rain availability %v not above NLN %v", aWH, aNLN)
	}
	if PathRainAvailability(nil, 40, R001CorridorMMH) != 1 {
		t.Error("empty path should be fully available")
	}
}
