package radio

import "math"

// Clear-air multipath fading, in the style of the Vigants–Barnett
// model used for North American fixed-link availability planning. Even
// without rain, atmospheric layering occasionally steers the beam off
// the dish; the deep-fade outage probability grows with the CUBE of
// path length and linearly with frequency — the quantitative core of
// the paper's §6 tradeoff "longer links allow cheaper builds using
// fewer towers, but are also less reliable".

// ClimateFactor is the Vigants–Barnett terrain/climate factor c:
// 0.25 for mountains/dry, 1 for average, 4 for humid/over-water paths.
type ClimateFactor float64

// Climate factors for the corridor's terrain mix.
const (
	ClimateDry     ClimateFactor = 0.25
	ClimateAverage ClimateFactor = 1.0
	ClimateHumid   ClimateFactor = 4.0
)

// MultipathOutageProbability returns the worst-month probability of a
// multipath fade deeper than the fade margin:
//
//	P = 6·10⁻⁷ · c · f · d³ · 10^(−M/10)
//
// with f in GHz, d in km and M in dB, clamped to [0, 1].
func MultipathOutageProbability(freqGHz, pathKM, marginDB float64, climate ClimateFactor) float64 {
	if pathKM <= 0 || freqGHz <= 0 {
		return 0
	}
	c := float64(climate)
	if c <= 0 {
		c = float64(ClimateAverage)
	}
	p := 6e-7 * c * freqGHz * math.Pow(pathKM, 3) * math.Pow(10, -marginDB/10)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// secondsPerMonth is the worst-month reference period.
const secondsPerMonth = 30 * 24 * 3600.0

// MultipathOutageSeconds converts the outage probability into expected
// worst-month outage seconds.
func MultipathOutageSeconds(freqGHz, pathKM, marginDB float64, climate ClimateFactor) float64 {
	return MultipathOutageProbability(freqGHz, pathKM, marginDB, climate) * secondsPerMonth
}

// PathAvailability returns the worst-month availability (0..1) of a
// multi-hop path whose hops fade independently: the product of per-hop
// availabilities.
func PathAvailability(hops []Hop, marginDB float64, climate ClimateFactor) float64 {
	avail := 1.0
	for _, h := range hops {
		p := MultipathOutageProbability(h.FreqGHz, h.PathKM, marginDB, climate)
		avail *= 1 - p
	}
	return avail
}

// Hop is one link of a path for availability computation.
type Hop struct {
	FreqGHz float64
	PathKM  float64
}

// EquivalentHopCountTradeoff answers the §6 build question directly:
// for a corridor of totalKM split into n equal hops, the per-path
// outage scales as n·(totalKM/n)³ = totalKM³/n² — halving hop length
// (doubling towers) cuts outage 4×. It returns the worst-month outage
// probability of the whole corridor for the given hop count.
func EquivalentHopCountTradeoff(totalKM float64, hops int, freqGHz, marginDB float64, climate ClimateFactor) float64 {
	if hops <= 0 {
		return 1
	}
	per := MultipathOutageProbability(freqGHz, totalKM/float64(hops), marginDB, climate)
	// Union bound, accurate for the small probabilities involved.
	p := per * float64(hops)
	if p > 1 {
		return 1
	}
	return p
}
