package radio

import (
	"hash/fnv"
	"math"
	"math/rand/v2"

	"hftnetview/internal/geo"
)

// Cell is one convective rain cell: a disc of uniform rain rate.
type Cell struct {
	Center  geo.Point
	RadiusM float64
	RateMMH float64
}

// Storm is a weather scenario: a set of rain cells over the corridor.
type Storm struct {
	Cells []Cell
}

// StormConfig parameterizes synthetic storm generation.
type StormConfig struct {
	// Cells is the number of rain cells to scatter.
	Cells int
	// MinRadiusKM and MaxRadiusKM bound cell sizes (convective cells are
	// typically 2–30 km across).
	MinRadiusKM, MaxRadiusKM float64
	// MinRateMMH and MaxRateMMH bound rain rates (25 = heavy,
	// 100+ = violent).
	MinRateMMH, MaxRateMMH float64
	// LateralKM scatters cells that far to either side of the corridor
	// line.
	LateralKM float64
}

// DefaultStormConfig is a severe convective line crossing the corridor.
func DefaultStormConfig() StormConfig {
	return StormConfig{
		Cells:       12,
		MinRadiusKM: 4, MaxRadiusKM: 25,
		MinRateMMH: 20, MaxRateMMH: 110,
		LateralKM: 40,
	}
}

// GenerateStorm deterministically scatters cfg.Cells rain cells along
// the corridor between from and to; the same seed always yields the same
// storm.
func GenerateStorm(seed uint64, from, to geo.Point, cfg StormConfig) Storm {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	rng := rand.New(rand.NewPCG(h.Sum64(), 0x5bd1e995))

	brg := geo.InitialBearing(from, to)
	var cells []Cell
	for i := 0; i < cfg.Cells; i++ {
		frac := rng.Float64()
		lateral := (rng.Float64()*2 - 1) * cfg.LateralKM * 1000
		base := geo.Interpolate(from, to, frac)
		cells = append(cells, Cell{
			Center:  geo.Offset(base, brg, 0, lateral),
			RadiusM: (cfg.MinRadiusKM + rng.Float64()*(cfg.MaxRadiusKM-cfg.MinRadiusKM)) * 1000,
			RateMMH: cfg.MinRateMMH + rng.Float64()*(cfg.MaxRateMMH-cfg.MinRateMMH),
		})
	}
	return Storm{Cells: cells}
}

// segmentSamples controls the numeric integration of attenuation along a
// link: the link is sampled at this many evenly spaced points.
const segmentSamples = 16

// LinkAttenuation integrates the storm's rain attenuation over the link
// a–b at the given carrier frequency, returning total dB. Each sample
// point inside a cell contributes that cell's rate over the sample's
// share of the path (overlapping cells take the max rate, as merged
// cells do not double rain).
func (s Storm) LinkAttenuation(a, b geo.Point, freqGHz float64) float64 {
	if len(s.Cells) == 0 {
		return 0
	}
	total := geo.Distance(a, b)
	if total <= 0 {
		return 0
	}
	stepKM := total / segmentSamples / 1000

	// The P.530 effective-path factor is a statistical stand-in for
	// finite cell sizes; with explicit cell geometry the wet extent is
	// integrated directly, so the factor must NOT be applied again.
	var attDB float64
	for i := 0; i < segmentSamples; i++ {
		t := (float64(i) + 0.5) / segmentSamples
		p := geo.Interpolate(a, b, t)
		rate := 0.0
		for _, c := range s.Cells {
			if geo.Distance(p, c.Center) <= c.RadiusM {
				rate = math.Max(rate, c.RateMMH)
			}
		}
		if rate > 0 {
			attDB += SpecificAttenuation(freqGHz, rate) * stepKM
		}
	}
	return attDB
}

// LinkDownUnderStorm reports whether the link a–b at freqGHz with the
// given fade margin fails in the storm.
func (s Storm) LinkDownUnderStorm(a, b geo.Point, freqGHz, marginDB float64) bool {
	return LinkDown(s.LinkAttenuation(a, b, freqGHz), marginDB)
}
