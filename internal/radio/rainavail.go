package radio

import "math"

// Annual rain unavailability in the style of ITU-R P.530's step-by-step
// method: from the climate's 0.01%-exceeded rain rate, compute the
// attenuation exceeded 0.01% of the year, then invert the P.530
// percentage scaling law to find how often the fade margin is exceeded.

// R001CorridorMMH is the rain rate exceeded 0.01% of an average year in
// the ITU rain climate covering the Chicago–New Jersey corridor
// (climate K/M bands ≈ 42 mm/h).
const R001CorridorMMH = 42.0

// RainAttenuation001 returns A₀.₀₁: the rain attenuation in dB exceeded
// 0.01% of the year on a link of pathKM at freqGHz, under rain rate
// r001 (mm/h), using the P.838 power law with the P.530 effective path
// factor.
func RainAttenuation001(freqGHz, pathKM, r001 float64) float64 {
	return PathAttenuation(freqGHz, r001, pathKM)
}

// RainUnavailability returns the fraction of an average year a link's
// rain attenuation exceeds its fade margin. P.530 scales attenuation
// with exceedance percentage p (in %) as
//
//	A(p)/A₀.₀₁ = 0.12 · p^(−(0.546 + 0.043·log₁₀ p))
//
// Setting A(p) = margin and solving for p by fixed-point iteration
// yields the unavailable fraction (p/100). Links whose A₀.₀₁ is below
// the margin even at 0.01% get the scaling extrapolated, which is the
// standard practice.
func RainUnavailability(freqGHz, pathKM, marginDB, r001 float64) float64 {
	if pathKM <= 0 || freqGHz <= 0 || marginDB <= 0 {
		return 0
	}
	a001 := RainAttenuation001(freqGHz, pathKM, r001)
	if a001 <= 0 {
		return 0
	}
	ratio := marginDB / a001
	// Solve 0.12 · p^(−(0.546+0.043·log10 p)) = ratio for p.
	p := 0.01
	for i := 0; i < 60; i++ {
		exp := -(0.546 + 0.043*math.Log10(p))
		f := 0.12 * math.Pow(p, exp)
		if math.Abs(f-ratio) < 1e-12 {
			break
		}
		// Invert one step: p' = (ratio/0.12)^(1/exp) with the current
		// exponent estimate.
		if exp >= 0 {
			break // outside the law's domain; p has exploded
		}
		pNew := math.Pow(ratio/0.12, 1/exp)
		if math.IsNaN(pNew) || math.IsInf(pNew, 0) || pNew <= 0 {
			break
		}
		if math.Abs(pNew-p) < 1e-12 {
			p = pNew
			break
		}
		p = pNew
	}
	if p < 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	return p / 100
}

// secondsPerYear for downtime conversion.
const secondsPerYear = 365.25 * 24 * 3600

// AnnualDowntimeSeconds converts an unavailability fraction into
// expected seconds per year.
func AnnualDowntimeSeconds(unavailability float64) float64 {
	return unavailability * secondsPerYear
}

// PathRainAvailability returns the annual availability of a multi-hop
// path under rain, hops fading independently.
func PathRainAvailability(hops []Hop, marginDB, r001 float64) float64 {
	avail := 1.0
	for _, h := range hops {
		avail *= 1 - RainUnavailability(h.FreqGHz, h.PathKM, marginDB, r001)
	}
	return avail
}
