package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMultipathOutageKnownValue(t *testing.T) {
	// 50 km at 6 GHz, 40 dB margin, average climate:
	// P = 6e-7 · 1 · 6 · 125000 · 1e-4 = 4.5e-5.
	got := MultipathOutageProbability(6, 50, 40, ClimateAverage)
	if math.Abs(got-4.5e-5) > 1e-9 {
		t.Errorf("P = %v, want 4.5e-5", got)
	}
}

func TestMultipathCubicLengthLaw(t *testing.T) {
	// Doubling path length raises outage 8x.
	p1 := MultipathOutageProbability(11, 25, 40, ClimateAverage)
	p2 := MultipathOutageProbability(11, 50, 40, ClimateAverage)
	if ratio := p2 / p1; math.Abs(ratio-8) > 1e-9 {
		t.Errorf("length doubling ratio = %v, want 8", ratio)
	}
}

func TestMultipathLinearFrequencyLaw(t *testing.T) {
	p6 := MultipathOutageProbability(6, 45, 40, ClimateAverage)
	p11 := MultipathOutageProbability(11, 45, 40, ClimateAverage)
	if ratio := p11 / p6; math.Abs(ratio-11.0/6.0) > 1e-9 {
		t.Errorf("frequency ratio = %v, want 11/6", ratio)
	}
}

func TestMultipathMarginLaw(t *testing.T) {
	// Every 10 dB of margin buys 10x outage reduction.
	p30 := MultipathOutageProbability(11, 45, 30, ClimateAverage)
	p40 := MultipathOutageProbability(11, 45, 40, ClimateAverage)
	if ratio := p30 / p40; math.Abs(ratio-10) > 1e-9 {
		t.Errorf("margin decade ratio = %v, want 10", ratio)
	}
}

func TestMultipathEdgeCases(t *testing.T) {
	if MultipathOutageProbability(11, 0, 40, ClimateAverage) != 0 {
		t.Error("zero path should have zero outage")
	}
	if MultipathOutageProbability(0, 45, 40, ClimateAverage) != 0 {
		t.Error("zero frequency should have zero outage")
	}
	// Absurd margin-free long link clamps to 1.
	if MultipathOutageProbability(38, 200, 0, ClimateHumid) != 1 {
		t.Error("deep-fade probability should clamp at 1")
	}
	// Zero climate falls back to average.
	if MultipathOutageProbability(11, 45, 40, 0) !=
		MultipathOutageProbability(11, 45, 40, ClimateAverage) {
		t.Error("climate fallback missing")
	}
}

func TestMultipathBoundsQuick(t *testing.T) {
	f := func(fSeed, dSeed, mSeed float64) bool {
		freq := math.Mod(math.Abs(fSeed), 40)
		d := math.Mod(math.Abs(dSeed), 120)
		m := math.Mod(math.Abs(mSeed), 60)
		if math.IsNaN(freq) || math.IsNaN(d) || math.IsNaN(m) {
			return true
		}
		p := MultipathOutageProbability(freq, d, m, ClimateAverage)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPathAvailability(t *testing.T) {
	// Webline-style: 26 hops of 45.6 km at 6 GHz, vs NLN-style: 24 hops
	// of 49.4 km at 11 GHz. WH must be more available.
	wh := make([]Hop, 26)
	for i := range wh {
		wh[i] = Hop{FreqGHz: 6, PathKM: 45.6}
	}
	nln := make([]Hop, 24)
	for i := range nln {
		nln[i] = Hop{FreqGHz: 11, PathKM: 49.4}
	}
	aWH := PathAvailability(wh, 40, ClimateAverage)
	aNLN := PathAvailability(nln, 40, ClimateAverage)
	if aWH <= aNLN {
		t.Errorf("WH availability %v not above NLN %v", aWH, aNLN)
	}
	if aWH < 0.999 {
		t.Errorf("corridor availability %v implausibly low", aWH)
	}
	if PathAvailability(nil, 40, ClimateAverage) != 1 {
		t.Error("empty path should be fully available")
	}
}

func TestEquivalentHopCountTradeoff(t *testing.T) {
	// The §6 tradeoff: more towers (shorter hops) → less outage, as
	// total³/n².
	p20 := EquivalentHopCountTradeoff(1186, 20, 11, 40, ClimateAverage)
	p40 := EquivalentHopCountTradeoff(1186, 40, 11, 40, ClimateAverage)
	if ratio := p20 / p40; math.Abs(ratio-4) > 1e-9 {
		t.Errorf("doubling towers should quarter outage; ratio = %v", ratio)
	}
	if EquivalentHopCountTradeoff(1186, 0, 11, 40, ClimateAverage) != 1 {
		t.Error("zero hops should be total outage")
	}
}
