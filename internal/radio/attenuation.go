// Package radio models microwave link reliability: rain-induced
// attenuation in the style of ITU-R P.838 (specific attenuation
// γ = k·R^α) and P.530 (effective path length), plus a synthetic storm
// generator for the corridor. The paper (§5) argues that longer links
// and higher frequencies are more susceptible to weather — this package
// makes that argument quantitative so the reliability comparison between
// Webline Holdings and New Line Networks can be simulated end to end.
package radio

import (
	"math"
	"sort"
)

// p838Row is one frequency row of the k/α regression table
// (horizontal polarization). Values follow ITU-R P.838-3 to the
// precision this simulation needs.
type p838Row struct {
	freqGHz float64
	k       float64
	alpha   float64
}

var p838Table = []p838Row{
	{1, 0.0000259, 0.9691},
	{2, 0.0000847, 1.0664},
	{4, 0.0006500, 1.1210},
	{6, 0.0017500, 1.3080},
	{7, 0.0030100, 1.3320},
	{8, 0.0045400, 1.3270},
	{10, 0.0121700, 1.2571},
	{12, 0.0238600, 1.1825},
	{15, 0.0448100, 1.1233},
	{18, 0.0707800, 1.0818},
	{23, 0.1286000, 1.0214},
	{30, 0.2403000, 0.9485},
	{40, 0.4431000, 0.8673},
}

// coefficients returns the k and α regression coefficients for a
// frequency, interpolating the table (k in log-log, α linearly in log f),
// clamped to the table's range.
func coefficients(freqGHz float64) (k, alpha float64) {
	t := p838Table
	if freqGHz <= t[0].freqGHz {
		return t[0].k, t[0].alpha
	}
	if freqGHz >= t[len(t)-1].freqGHz {
		last := t[len(t)-1]
		return last.k, last.alpha
	}
	i := sort.Search(len(t), func(i int) bool { return t[i].freqGHz >= freqGHz }) - 1
	lo, hi := t[i], t[i+1]
	frac := (math.Log(freqGHz) - math.Log(lo.freqGHz)) /
		(math.Log(hi.freqGHz) - math.Log(lo.freqGHz))
	k = math.Exp(math.Log(lo.k) + frac*(math.Log(hi.k)-math.Log(lo.k)))
	alpha = lo.alpha + frac*(hi.alpha-lo.alpha)
	return k, alpha
}

// SpecificAttenuation returns the rain attenuation rate γ in dB/km for a
// carrier frequency (GHz) and rain rate (mm/h), per the P.838 power law
// γ = k·R^α.
func SpecificAttenuation(freqGHz, rainRateMMH float64) float64 {
	if rainRateMMH <= 0 {
		return 0
	}
	k, alpha := coefficients(freqGHz)
	return k * math.Pow(rainRateMMH, alpha)
}

// EffectivePathFactor is P.530's path reduction factor r = 1/(1 + d/d0)
// with d0 = 35·e^(−0.015·R): intense rain cells are small, so long links
// are only partly inside them.
func EffectivePathFactor(pathKM, rainRateMMH float64) float64 {
	r := rainRateMMH
	if r > 100 {
		r = 100 // P.530 caps the exponent's rate
	}
	d0 := 35 * math.Exp(-0.015*r)
	return 1 / (1 + pathKM/d0)
}

// PathAttenuation returns the total rain attenuation in dB over a link of
// pathKM entirely exposed to rainRateMMH, applying the effective path
// factor.
func PathAttenuation(freqGHz, rainRateMMH, pathKM float64) float64 {
	if pathKM <= 0 {
		return 0
	}
	gamma := SpecificAttenuation(freqGHz, rainRateMMH)
	return gamma * pathKM * EffectivePathFactor(pathKM, rainRateMMH)
}

// DefaultFadeMarginDB is a typical engineered fade margin for corridor
// HFT links. A link is considered down when rain attenuation exceeds its
// margin.
const DefaultFadeMarginDB = 40.0

// LinkDown reports whether a link at freqGHz with the given fade margin
// fails under attenuation attDB.
func LinkDown(attDB, marginDB float64) bool {
	if marginDB <= 0 {
		marginDB = DefaultFadeMarginDB
	}
	return attDB > marginDB
}
