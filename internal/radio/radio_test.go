package radio

import (
	"math"
	"testing"
	"testing/quick"

	"hftnetview/internal/geo"
)

func TestSpecificAttenuationKnownPoints(t *testing.T) {
	// Table rows must reproduce exactly.
	cases := []struct {
		freq, rate, want float64
		tol              float64
	}{
		{10, 1, 0.01217, 1e-6}, // γ = k at R=1
		{18, 1, 0.07078, 1e-6},
		{10, 50, 0.01217 * math.Pow(50, 1.2571), 1e-6},
		{6, 25, 0.00175 * math.Pow(25, 1.308), 1e-6},
	}
	for _, c := range cases {
		if got := SpecificAttenuation(c.freq, c.rate); math.Abs(got-c.want) > c.tol {
			t.Errorf("γ(%v GHz, %v mm/h) = %v, want %v", c.freq, c.rate, got, c.want)
		}
	}
}

func TestAttenuationMonotoneInFrequency(t *testing.T) {
	// §5: "higher frequencies are more susceptible to weather
	// disruptions". γ must grow with frequency at fixed rain rate.
	for _, rate := range []float64{5, 25, 50, 100} {
		prev := 0.0
		for f := 2.0; f <= 38; f += 0.5 {
			g := SpecificAttenuation(f, rate)
			if g < prev {
				t.Fatalf("γ not monotone at %v GHz, %v mm/h: %v < %v", f, rate, g, prev)
			}
			prev = g
		}
	}
}

func TestAttenuationMonotoneInRate(t *testing.T) {
	f := func(r1, r2 float64) bool {
		a := math.Mod(math.Abs(r1), 150)
		b := math.Mod(math.Abs(r2), 150)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return SpecificAttenuation(11, a) <= SpecificAttenuation(11, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSixVsElevenGHz(t *testing.T) {
	// The §5 design tradeoff in numbers: at heavy rain, 11 GHz fades
	// several times faster than 6 GHz.
	g6 := SpecificAttenuation(6, 50)
	g11 := SpecificAttenuation(11, 50)
	if ratio := g11 / g6; ratio < 3 {
		t.Errorf("11/6 GHz attenuation ratio at 50 mm/h = %.1f, want > 3", ratio)
	}
}

func TestEffectivePathFactor(t *testing.T) {
	// Short paths are fully exposed; long paths only partially.
	if f := EffectivePathFactor(1, 50); f < 0.9 {
		t.Errorf("1 km factor = %v, want ≈1", f)
	}
	long := EffectivePathFactor(60, 50)
	short := EffectivePathFactor(10, 50)
	if long >= short {
		t.Errorf("long-path factor %v not below short-path %v", long, short)
	}
	if f := EffectivePathFactor(60, 50); f <= 0 || f > 1 {
		t.Errorf("factor out of range: %v", f)
	}
	// Rates above 100 mm/h clamp.
	if EffectivePathFactor(30, 150) != EffectivePathFactor(30, 100) {
		t.Error("rate clamp at 100 mm/h missing")
	}
}

func TestPathAttenuationEdgeCases(t *testing.T) {
	if PathAttenuation(11, 0, 50) != 0 {
		t.Error("no rain should mean no attenuation")
	}
	if PathAttenuation(11, 50, 0) != 0 {
		t.Error("zero-length path should have no attenuation")
	}
	if PathAttenuation(11, -5, 50) != 0 {
		t.Error("negative rain rate should clamp to 0")
	}
}

func TestLinkDown(t *testing.T) {
	if LinkDown(39.9, 40) {
		t.Error("attenuation below margin should not fail the link")
	}
	if !LinkDown(40.1, 40) {
		t.Error("attenuation above margin should fail the link")
	}
	// Zero margin selects the default.
	if LinkDown(DefaultFadeMarginDB-1, 0) {
		t.Error("default margin should apply when margin <= 0")
	}
}

func TestGenerateStormDeterministic(t *testing.T) {
	from := geo.Point{Lat: 41.76, Lon: -88.20}
	to := geo.Point{Lat: 40.78, Lon: -74.09}
	a := GenerateStorm(7, from, to, DefaultStormConfig())
	b := GenerateStorm(7, from, to, DefaultStormConfig())
	if len(a.Cells) != len(b.Cells) {
		t.Fatal("cell counts differ for same seed")
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs for same seed", i)
		}
	}
	c := GenerateStorm(8, from, to, DefaultStormConfig())
	same := true
	for i := range a.Cells {
		if a.Cells[i] != c.Cells[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical storms")
	}
}

func TestGenerateStormGeometry(t *testing.T) {
	from := geo.Point{Lat: 41.76, Lon: -88.20}
	to := geo.Point{Lat: 40.78, Lon: -74.09}
	cfg := DefaultStormConfig()
	s := GenerateStorm(42, from, to, cfg)
	if len(s.Cells) != cfg.Cells {
		t.Fatalf("cells = %d, want %d", len(s.Cells), cfg.Cells)
	}
	for _, c := range s.Cells {
		if c.RadiusM < cfg.MinRadiusKM*1000 || c.RadiusM > cfg.MaxRadiusKM*1000 {
			t.Errorf("radius %v out of range", c.RadiusM)
		}
		if c.RateMMH < cfg.MinRateMMH || c.RateMMH > cfg.MaxRateMMH {
			t.Errorf("rate %v out of range", c.RateMMH)
		}
		// Cells stay near the corridor.
		if geo.CrossTrack(from, to, c.Center) > (cfg.LateralKM+1)*1000 {
			t.Errorf("cell %v too far off corridor", c.Center)
		}
	}
}

func TestLinkAttenuationDryLink(t *testing.T) {
	storm := Storm{Cells: []Cell{{
		Center: geo.Point{Lat: 41.0, Lon: -80.0}, RadiusM: 10e3, RateMMH: 80,
	}}}
	// A link far from the cell sees nothing.
	a := geo.Point{Lat: 41.76, Lon: -88.20}
	b := geo.Point{Lat: 41.70, Lon: -87.80}
	if att := storm.LinkAttenuation(a, b, 11); att != 0 {
		t.Errorf("dry link attenuation = %v, want 0", att)
	}
	if (Storm{}).LinkAttenuation(a, b, 11) != 0 {
		t.Error("empty storm should not attenuate")
	}
}

func TestLinkAttenuationInsideCell(t *testing.T) {
	a := geo.Point{Lat: 41.0, Lon: -80.2}
	b := geo.Point{Lat: 41.0, Lon: -79.9} // ≈25 km link
	mid := geo.Midpoint(a, b)
	storm := Storm{Cells: []Cell{{Center: mid, RadiusM: 30e3, RateMMH: 60}}}

	att11 := storm.LinkAttenuation(a, b, 11)
	att6 := storm.LinkAttenuation(a, b, 6)
	if att11 <= 0 || att6 <= 0 {
		t.Fatalf("wet link attenuation = %v / %v, want > 0", att11, att6)
	}
	if att11 <= att6 {
		t.Errorf("11 GHz attenuation %v not above 6 GHz %v", att11, att6)
	}
	// Fully-inside-cell link ≈ γ·d (no path-reduction factor: the cell
	// geometry is explicit).
	manual := SpecificAttenuation(11, 60) * geo.Distance(a, b) / 1000
	if rel := math.Abs(att11-manual) / manual; rel > 0.05 {
		t.Errorf("integrated %v vs closed-form %v differ by %.2f", att11, manual, rel)
	}
	// Under a violent cell, an 11 GHz link of this length should exceed
	// a 40 dB margin while 6 GHz survives — the §5 story.
	heavy := Storm{Cells: []Cell{{Center: mid, RadiusM: 30e3, RateMMH: 100}}}
	if !heavy.LinkDownUnderStorm(a, b, 11, 40) {
		t.Error("11 GHz link should fade out at 100 mm/h")
	}
	if heavy.LinkDownUnderStorm(a, b, 6, 40) {
		t.Error("6 GHz link should survive 100 mm/h")
	}
}

func TestLongLinksFadeBeforeShort(t *testing.T) {
	// §5: longer links are less reliable. Same storm, same frequency:
	// a 50 km link inside the cell fades before a 15 km one.
	center := geo.Point{Lat: 41.0, Lon: -80.0}
	storm := Storm{Cells: []Cell{{Center: center, RadiusM: 40e3, RateMMH: 55}}}
	brg := 90.0
	shortA := geo.Destination(center, brg, -7.5e3)
	shortB := geo.Destination(center, brg, 7.5e3)
	longA := geo.Destination(center, brg, -25e3)
	longB := geo.Destination(center, brg, 25e3)
	attShort := storm.LinkAttenuation(shortA, shortB, 11)
	attLong := storm.LinkAttenuation(longA, longB, 11)
	if attLong <= attShort {
		t.Errorf("long link attenuation %v not above short link %v", attLong, attShort)
	}
}

func TestCoefficientsInterpolation(t *testing.T) {
	// Interpolated values must be bracketed by neighbors.
	k10, _ := coefficients(10)
	k12, _ := coefficients(12)
	k11, a11 := coefficients(11)
	if !(k10 < k11 && k11 < k12) {
		t.Errorf("k(11)=%v not between k(10)=%v and k(12)=%v", k11, k10, k12)
	}
	_, a10 := coefficients(10)
	_, a12 := coefficients(12)
	if !(a12 < a11 && a11 < a10) {
		t.Errorf("α(11)=%v not between α(12)=%v and α(10)=%v", a11, a12, a10)
	}
	// Clamping at range ends.
	kLow, _ := coefficients(0.5)
	kTab, _ := coefficients(1)
	if kLow != kTab {
		t.Error("below-range frequency should clamp")
	}
	kHigh, _ := coefficients(80)
	kTop, _ := coefficients(40)
	if kHigh != kTop {
		t.Error("above-range frequency should clamp")
	}
}
