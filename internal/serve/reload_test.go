package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

// writeBulkFile writes db to path in bulk interchange format.
func writeBulkFile(t testing.TB, path string, db *uls.Database) {
	t.Helper()
	var buf bytes.Buffer
	if err := uls.WriteBulk(&buf, db); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// withoutLicensee returns a copy of db minus one licensee's filings.
func withoutLicensee(t testing.TB, db *uls.Database, name string) *uls.Database {
	t.Helper()
	out := uls.NewDatabase()
	for _, l := range db.All() {
		if l.Licensee == name {
			continue
		}
		if err := out.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// licenseeSet extracts the sorted licensee column from a snapshot
// response for corpus-identity comparison.
func licenseeSet(resp snapshotResp) string {
	names := make([]string, 0, len(resp.Networks))
	for _, n := range resp.Networks {
		names = append(names, n.Licensee)
	}
	return strings.Join(names, "|")
}

// TestHotReloadAtomicSwap: queries racing an atomic generation swap
// must each observe exactly one complete corpus — the old or the new,
// never a blend, a partial load, or an error. Run under -race.
func TestHotReloadAtomicSwap(t *testing.T) {
	dir := t.TempDir()
	bulk := filepath.Join(dir, "corpus.uls")

	dbA := corpus(t)
	dbB := withoutLicensee(t, dbA, "Webline Holdings")

	writeBulkFile(t, bulk, dbA)
	s := New(Config{MaxInFlight: 32})
	if err := s.LoadCorpusFile(bulk, ReloadOptions{}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// The two legal worlds, as served by the API itself.
	wantA := licenseeSet(decode[snapshotResp](t, get(t, h, "/v1/snapshot")))
	if !strings.Contains(wantA, "Webline Holdings") {
		t.Fatalf("corpus A missing Webline Holdings: %q", wantA)
	}
	writeBulkFile(t, bulk, dbB)
	if err := s.LoadCorpusFile(bulk, ReloadOptions{}); err != nil {
		t.Fatal(err)
	}
	wantB := licenseeSet(decode[snapshotResp](t, get(t, h, "/v1/snapshot")))
	if wantA == wantB {
		t.Fatalf("corpora A and B serve identical rows; swap test is vacuous")
	}

	// Hammer queries while a writer goroutine keeps swapping A <-> B.
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				writeBulkFile(t, bulk, dbA)
			} else {
				writeBulkFile(t, bulk, dbB)
			}
			if err := s.LoadCorpusFile(bulk, ReloadOptions{}); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
		}
	}()

	var readers sync.WaitGroup
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				rec := get(t, h, "/v1/snapshot")
				if rec.Code != http.StatusOK {
					t.Errorf("reader %d query %d: status %d (%s)", g, i, rec.Code, rec.Body.String())
					return
				}
				got := licenseeSet(decode[snapshotResp](t, rec))
				if got != wantA && got != wantB {
					t.Errorf("reader %d query %d observed a corpus that is neither A nor B:\n got %q\n A  %q\n B  %q",
						g, i, got, wantA, wantB)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestReloadFailureKeepsOldGeneration: reload candidates that blow the
// ingestion error budget, or come back empty, are refused — the old
// generation keeps serving and the failure surfaces on /readyz. A
// subsequent repaired reload goes live. Run under -race.
func TestReloadFailureKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	bulk := filepath.Join(dir, "corpus.uls")
	dbA := corpus(t)
	writeBulkFile(t, bulk, dbA)

	s := New(Config{})
	opts := ReloadOptions{MaxErrorRate: 0.02}
	if err := s.LoadCorpusFile(bulk, opts); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	baseline := licenseeSet(decode[snapshotResp](t, get(t, h, "/v1/snapshot")))

	// Heavily corrupted candidates (every profile) and a truncated-to-
	// empty file must all be refused.
	cases := []struct {
		name  string
		bytes func() []byte
	}{
		{"empty file", func() []byte { return nil }},
		{"mixed corruption", func() []byte {
			return synth.Corrupt(dbA, synth.Profile{
				Name: "mixed", Rate: 0.6, GarbleW: 3, TruncateW: 2, DuplicateW: 2, ReorderW: 1, ShredW: 2,
			}, 7).Dirty
		}},
		{"garble corruption", func() []byte {
			return synth.Corrupt(dbA, synth.Profile{Name: "garble", Rate: 0.6, GarbleW: 1}, 11).Dirty
		}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(bulk, tc.bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := s.LoadCorpusFile(bulk, opts); err == nil {
				t.Fatal("corrupted reload succeeded, want refusal")
			}

			// Old generation still serving, byte-for-byte the same rows.
			rec := get(t, h, "/v1/snapshot")
			if rec.Code != http.StatusOK {
				t.Fatalf("query after failed reload: status %d", rec.Code)
			}
			if got := licenseeSet(decode[snapshotResp](t, rec)); got != baseline {
				t.Errorf("rows changed after failed reload:\n got  %q\n want %q", got, baseline)
			}
			if g := s.Stats().Generation; g == nil || g.ID != 1 {
				t.Errorf("generation = %+v, want ID 1 still live", g)
			}

			// readyz: still ready, but degraded with the reload error.
			rb := decode[readyzBody](t, get(t, h, "/readyz"))
			if !rb.Ready || !rb.Degraded || rb.LastReloadError == "" {
				t.Errorf("readyz after failed reload = %+v, want ready+degraded with error", rb)
			}
			if st := s.ReloadStatus(); st.Failures != i+1 {
				t.Errorf("reload failures = %d, want %d", st.Failures, i+1)
			}
		})
	}

	// Repaired corpus: reload succeeds, generation advances, /readyz
	// clears the degraded flag.
	writeBulkFile(t, bulk, dbA)
	if err := s.LoadCorpusFile(bulk, opts); err != nil {
		t.Fatalf("repaired reload: %v", err)
	}
	if g := s.Stats().Generation; g == nil || g.ID != 2 {
		t.Errorf("generation after repaired reload = %+v, want ID 2", g)
	}
	rb := decode[readyzBody](t, get(t, h, "/readyz"))
	if !rb.Ready || rb.Degraded || rb.LastReloadError != "" {
		t.Errorf("readyz after repaired reload = %+v, want ready and clean", rb)
	}
	if got := licenseeSet(decode[snapshotResp](t, get(t, h, "/v1/snapshot"))); got != baseline {
		t.Errorf("rows after repaired reload:\n got  %q\n want %q", got, baseline)
	}
}
