package serve

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// GracefulOptions configures ListenAndServeGraceful.
type GracefulOptions struct {
	// DrainTimeout bounds how long shutdown waits for in-flight
	// requests after the listener closes (default 15s).
	DrainTimeout time.Duration
	// OnHUP, when non-nil, runs (in its own goroutine) on every
	// SIGHUP — the conventional "reload your config/corpus" signal.
	OnHUP func()
	// OnReady, when non-nil, is called with the bound address just
	// before serving starts — how tests and callers using ":0" learn
	// the real port.
	OnReady func(net.Addr)
	// OnShutdown, when non-nil, runs exactly once after serving stops —
	// clean drain, expired drain, or listener failure — and before
	// ListenAndServeGraceful returns. It is the hook for releasing
	// durable resources: hftserve closes its corpus store here so a
	// terminating process never strands temp directories, even when
	// SIGTERM lands mid-persist.
	OnShutdown func()
	// Stop, when non-nil, triggers the same graceful shutdown path as
	// SIGTERM when it becomes readable (closed or sent to).
	Stop <-chan struct{}
}

// ListenAndServeGraceful runs srv with production signal discipline:
//
//   - SIGINT/SIGTERM (or Stop) begin graceful shutdown — the listener
//     closes immediately (new connections are refused), in-flight
//     requests get DrainTimeout to complete, then the process-level
//     serve call returns;
//   - SIGHUP invokes OnHUP without interrupting serving.
//
// It returns nil after a clean drain; a non-nil error means either the
// listener failed or the drain deadline expired with requests still in
// flight (srv.Close is then called to force-release them). Both
// cmd/hftserve and cmd/ulsserver run their servers through this one
// helper, so chaos soak tests can restart either cleanly mid-flight.
func ListenAndServeGraceful(srv *http.Server, opts GracefulOptions) error {
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 15 * time.Second
	}

	addr := srv.Addr
	if addr == "" {
		addr = ":http"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if opts.OnShutdown != nil {
		defer opts.OnShutdown()
	}

	sigs := []os.Signal{syscall.SIGINT, syscall.SIGTERM}
	if opts.OnHUP != nil {
		sigs = append(sigs, syscall.SIGHUP)
	}
	sigC := make(chan os.Signal, 4)
	signal.Notify(sigC, sigs...)
	defer signal.Stop(sigC)

	// The signal loop owns shutdown. shutdownErr is buffered so the
	// loop never blocks on it; abort unblocks the loop when Serve
	// fails before any signal arrives.
	shutdownErr := make(chan error, 1)
	abort := make(chan struct{})
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		for {
			var sig os.Signal
			select {
			case sig = <-sigC:
			case <-opts.Stop:
				sig = syscall.SIGTERM
			case <-abort:
				return
			}
			if sig == syscall.SIGHUP {
				go opts.OnHUP()
				continue
			}
			log.Printf("serve: %v: draining (timeout %v)", sig, opts.DrainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
			err := srv.Shutdown(ctx)
			cancel()
			if err != nil {
				// Drain deadline expired: force-close what remains so
				// the process can exit.
				srv.Close()
				shutdownErr <- err
			} else {
				shutdownErr <- nil
			}
			return
		}
	}()

	if opts.OnReady != nil {
		opts.OnReady(ln.Addr())
	}
	err = srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		// Listener-level failure, not a shutdown: report it directly.
		close(abort)
		srv.Close()
		<-loopDone
		return err
	}
	// Graceful path: wait for the drain verdict.
	verdict := <-shutdownErr
	<-loopDone
	return verdict
}
