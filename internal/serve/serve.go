// Package serve is the resilience-first HTTP query service over the
// snapshot engine: the paper's analyses (§3–§5 connected-network
// tables, rankings, longitudinal evolution, alternate-path
// availability) exposed as an always-on API that degrades gracefully
// instead of falling over.
//
// Every query flows through a composable middleware stack:
//
//   - panic recovery — a bad request can 500, never kill the process;
//   - admission control — a bounded concurrency limiter with a
//     max-wait queue sheds excess load with 503 + Retry-After;
//   - per-request deadlines — propagated via context into every
//     engine wait;
//   - a circuit breaker around engine rebuilds — consecutive rebuild
//     failures or timeouts trip it open, half-open probes decide when
//     to close it again.
//
// The corpus lives in an immutable generation (database + engine pair)
// behind one atomic pointer: a request pins its generation once at
// entry and can never observe a half-loaded corpus, and the hot
// reloader swaps in a replacement generation only after the candidate
// passes ingestion's error budget and the cross-record integrity pass.
// A failed reload keeps the old generation serving and surfaces on
// /readyz.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"hftnetview/internal/engine"
	"hftnetview/internal/uls"
)

// Config tunes the service's resilience envelope. The zero value is
// usable: every field falls back to the default documented on it.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (default 64).
	MaxInFlight int
	// MaxQueueWait is how long an arriving request may wait for a slot
	// before being shed (default 100ms).
	MaxQueueWait time.Duration
	// RetryAfter is the hint sent with 503 responses (default 1s).
	RetryAfter time.Duration
	// RequestTimeout is the per-request deadline (default 10s).
	RequestTimeout time.Duration
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive engine failures (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects work
	// before admitting a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// EngineWorkers bounds each generation engine's concurrent
	// reconstructions (default: the engine's own default).
	EngineWorkers int
	// RebuildTimeout caps each generation engine's snapshot waits
	// (default: RequestTimeout; the per-request context usually fires
	// first, this is the backstop for requests without deadlines).
	RebuildTimeout time.Duration
	// KeyframeInterval tunes each generation engine's replay keyframe
	// spacing in events (default: the engine's own default).
	KeyframeInterval int
	// WatchMaxStreams bounds concurrently open /v1/watch replay
	// streams; excess requests are shed with 503 (default 64).
	WatchMaxStreams int
	// WatchHeartbeat is how often an idle watch stream emits an SSE
	// heartbeat comment to keep the connection alive (default 15s).
	WatchHeartbeat time.Duration
	// WatchBuffer is the per-stream frame buffer between the replay
	// producer and the client connection; when a slow client fills it,
	// the replay clock pauses (default 32 frames).
	WatchBuffer int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 100 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.RebuildTimeout <= 0 {
		c.RebuildTimeout = c.RequestTimeout
	}
	if c.WatchMaxStreams <= 0 {
		c.WatchMaxStreams = 64
	}
	if c.WatchHeartbeat <= 0 {
		c.WatchHeartbeat = 15 * time.Second
	}
	if c.WatchBuffer <= 0 {
		c.WatchBuffer = 32
	}
	return c
}

// generation is one immutable corpus: a database and the engine built
// over it. Requests pin a generation at entry; reloads swap the
// pointer, never mutate a published generation.
type generation struct {
	id       int64
	db       *uls.Database
	eng      *engine.Engine
	source   string
	loadedAt time.Time

	// Store identity, when known: the persisted generation id and
	// corpus digest this in-memory generation corresponds to. Unlike
	// the process-local id above, these are comparable across processes
	// — the fleet's replicas and front tier use them to detect
	// wrong-generation responses and measure staleness. Zero/empty for
	// a corpus that was never persisted.
	storeGen int64
	digest   string
}

// Server is the query service. Create with New, install a corpus with
// SetCorpus (or LoadCorpusFile), and serve Handler().
type Server struct {
	cfg     Config
	limiter *Limiter
	breaker *Breaker

	gen    atomic.Pointer[generation]
	nextID atomic.Int64

	counters struct {
		requests atomic.Int64 // queries entering the /v1 surface
		shed     atomic.Int64 // 503s from the admission queue
		rejected atomic.Int64 // 503s from the open breaker
		failures atomic.Int64 // engine failures (timeouts + rebuild errors)
		panics   atomic.Int64 // handler panics recovered
	}

	reloadMu sync.Mutex
	reload   ReloadStatus

	persist persistState

	watch watchState

	auxMu sync.Mutex
	aux   map[string]func() any

	started time.Time
}

// RegisterStats installs a named auxiliary stats source whose snapshot
// is embedded in /statsz under "extra" — how subsystems layered on top
// of the server (the fleet's pull loop, for one) surface their health
// through the existing endpoint without serve depending on them.
// Registering the same name again replaces the source.
func (s *Server) RegisterStats(name string, fn func() any) {
	s.auxMu.Lock()
	defer s.auxMu.Unlock()
	if s.aux == nil {
		s.aux = make(map[string]func() any)
	}
	s.aux[name] = fn
}

// New returns a server with no corpus loaded; /readyz reports 503
// until SetCorpus or LoadCorpusFile installs one.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		limiter: NewLimiter(cfg.MaxInFlight, cfg.MaxQueueWait),
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		started: time.Now(),
	}
	s.watch.sem = make(chan struct{}, cfg.WatchMaxStreams)
	s.watch.stop = make(chan struct{})
	return s
}

// Config returns the server's effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// SetCorpus atomically swaps in a new corpus generation: a fresh engine
// is built over db and published with one pointer store. In-flight
// requests keep the generation they pinned at entry; new requests see
// the new one. The previous generation is garbage once its last
// request drains. With a store attached (AttachStore) the corpus is
// also persisted as a new on-disk generation.
func (s *Server) SetCorpus(db *uls.Database, source string) {
	s.publish(db, source)
	s.persistCorpus(db, source)
}

// publish installs the corpus as the live generation without touching
// the persistence layer (WarmStart uses it directly: re-saving what
// was just recovered would duplicate generations on every boot).
func (s *Server) publish(db *uls.Database, source string) {
	s.publishMeta(db, source, 0, "")
}

// publishMeta is publish with the corpus's store identity attached,
// when the caller knows it (warm starts and replica installs do).
func (s *Server) publishMeta(db *uls.Database, source string, storeGen int64, digest string) {
	opts := []engine.Option{engine.WithRebuildTimeout(s.cfg.RebuildTimeout)}
	if s.cfg.EngineWorkers > 0 {
		opts = append(opts, engine.WithWorkers(s.cfg.EngineWorkers))
	}
	if s.cfg.KeyframeInterval > 0 {
		opts = append(opts, engine.WithKeyframeInterval(s.cfg.KeyframeInterval))
	}
	g := &generation{
		id:       s.nextID.Add(1),
		db:       db,
		eng:      engine.New(db, opts...),
		source:   source,
		loadedAt: time.Now(),
		storeGen: storeGen,
		digest:   digest,
	}
	s.gen.Store(g)
}

// annotateStoreIdentity attaches a just-persisted store identity to the
// live generation, if it still serves the same database. The swap
// republishes a shallow copy sharing db and engine (generations are
// immutable once visible to requests); a CAS failure means a newer
// generation was published mid-persist and the identity belongs to a
// corpus that is no longer live — dropped, correctly.
func (s *Server) annotateStoreIdentity(db *uls.Database, storeGen int64, digest string) {
	g := s.gen.Load()
	if g == nil || g.db != db || (g.storeGen == storeGen && g.digest == digest) {
		return
	}
	g2 := *g
	g2.storeGen = storeGen
	g2.digest = digest
	s.gen.CompareAndSwap(g, &g2)
}

// StoreIdentity reports the live generation's cross-process identity:
// the persisted store generation id and corpus digest. ok is false when
// no corpus is loaded or the live corpus was never persisted — callers
// (the fleet announcer, for one) then omit the identity rather than
// report zeros as fact.
func (s *Server) StoreIdentity() (gen int64, digest string, ok bool) {
	g := s.gen.Load()
	if g == nil || g.storeGen == 0 {
		return 0, "", false
	}
	return g.storeGen, g.digest, true
}

// generationInfo is the serialized view of the live generation, shaped
// for remote staleness probes: a front tier or sibling replica reads
// store_generation, corpus_sha256, and age_seconds straight off
// /readyz or /statsz — no store dependency, no disk access.
type generationInfo struct {
	ID       int64  `json:"id"`
	Source   string `json:"source"`
	LoadedAt string `json:"loaded_at"`
	Licenses int    `json:"licenses"`
	// StoreGeneration is the cross-process generation id from the
	// corpus store (0 when the corpus was never persisted).
	StoreGeneration int64 `json:"store_generation,omitempty"`
	// CorpusSHA256 is the persisted corpus digest ("" when unknown).
	CorpusSHA256 string `json:"corpus_sha256,omitempty"`
	// AgeSeconds is how long this generation has been live.
	AgeSeconds float64 `json:"age_seconds"`
}

func (g *generation) info() generationInfo {
	return generationInfo{
		ID:              g.id,
		Source:          g.source,
		LoadedAt:        g.loadedAt.UTC().Format(time.RFC3339),
		Licenses:        g.db.Len(),
		StoreGeneration: g.storeGen,
		CorpusSHA256:    g.digest,
		AgeSeconds:      time.Since(g.loadedAt).Seconds(),
	}
}

// ServeStats is the /statsz payload: serving counters, the live
// generation, the engine's memo counters, breaker state, and reload
// history.
type ServeStats struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Requests      int64           `json:"requests"`
	Shed          int64           `json:"shed"`
	BreakerReject int64           `json:"breaker_rejected"`
	Failures      int64           `json:"engine_failures"`
	Panics        int64           `json:"panics"`
	InFlight      int             `json:"in_flight"`
	Generation    *generationInfo `json:"generation,omitempty"`
	Engine        *engine.Stats   `json:"engine,omitempty"`
	Breaker       BreakerStats    `json:"breaker"`
	Reload        ReloadStatus    `json:"reload"`
	Persist       *PersistStatus  `json:"persist,omitempty"`
	Watch         WatchStats      `json:"watch"`
	Extra         map[string]any  `json:"extra,omitempty"`
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServeStats {
	st := ServeStats{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.counters.requests.Load(),
		Shed:          s.counters.shed.Load(),
		BreakerReject: s.counters.rejected.Load(),
		Failures:      s.counters.failures.Load(),
		Panics:        s.counters.panics.Load(),
		InFlight:      s.limiter.InFlight(),
		Breaker:       s.breaker.Stats(),
		Reload:        s.ReloadStatus(),
		Watch:         s.watch.stats(),
	}
	if ps := s.PersistStatus(); ps.Enabled {
		st.Persist = &ps
	}
	if g := s.gen.Load(); g != nil {
		info := g.info()
		st.Generation = &info
		est := g.eng.Stats()
		st.Engine = &est
	}
	s.auxMu.Lock()
	for name, fn := range s.aux {
		if st.Extra == nil {
			st.Extra = make(map[string]any, len(s.aux))
		}
		st.Extra[name] = fn()
	}
	s.auxMu.Unlock()
	return st
}
