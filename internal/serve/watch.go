package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// /v1/watch — streaming replay of one licensee's network evolution.
//
// Where /v1/evolution samples a date grid and returns one JSON body,
// /v1/watch replays the licensee's temporal event log as a
// server-sent-event stream: an initial full snapshot at the replay
// window's start, then one diff frame per event date — links and towers
// added/removed (core.DiffNetworks), the latency delta, the active
// license count, and the lifecycle events that fired. Frames carry
// SSE ids of the form "<generation>.<seq>" with seq monotonically
// increasing and gap-free, so a client (or the soak test) can assert
// it observed every transition — and a dropped client can resume: a
// reconnect with the standard Last-Event-ID header picks the replay
// up at the next frame of the same pinned generation, or gets 409
// when that generation is no longer the live corpus (diffs from a
// dead generation cannot be stitched onto the new one's replay).
//
// The stream is long-lived, so it deliberately bypasses the query
// surface's admission limiter and per-request deadline — a replay
// parked in the admission queue would pin a slot for minutes — and is
// bounded instead by its own stream semaphore (WatchMaxStreams).
// Backpressure is the replay clock: frames flow through a bounded
// channel into the client connection, so a slow reader blocks the
// producer and pauses the replay rather than ballooning memory or
// skipping events. Heartbeat comments keep idle connections (paced
// replays between sparse events) alive through proxies.
//
// Each stream pins its corpus generation at entry, like every query: a
// hot reload mid-stream never tears or mixes replays — the stream
// finishes against the generation it started with.

// watchState is the server's streaming surface: a stream semaphore, a
// drain signal for graceful shutdown, and counters.
type watchState struct {
	sem      chan struct{}
	stop     chan struct{}
	stopOnce sync.Once

	streams  atomic.Int64 // streams accepted
	active   atomic.Int64 // streams currently open
	rejected atomic.Int64 // 503s from the stream semaphore
	frames   atomic.Int64 // data frames written (hello/snapshot/diff/eof/drain)
	drained  atomic.Int64 // streams ended by StopWatches
}

// WatchStats is the /statsz view of the streaming surface.
type WatchStats struct {
	Streams  int64 `json:"streams"`
	Active   int64 `json:"active"`
	Rejected int64 `json:"rejected"`
	Frames   int64 `json:"frames"`
	Drained  int64 `json:"drained"`
}

func (ws *watchState) stats() WatchStats {
	return WatchStats{
		Streams:  ws.streams.Load(),
		Active:   ws.active.Load(),
		Rejected: ws.rejected.Load(),
		Frames:   ws.frames.Load(),
		Drained:  ws.drained.Load(),
	}
}

// StopWatches asks every open /v1/watch stream to drain: each writer
// sends a final `drain` event and closes. New watch requests are
// refused afterwards. Idempotent; wired into graceful shutdown
// (http.Server.RegisterOnShutdown) so Shutdown's handler wait cannot
// hang on a replay that still has years to stream.
func (s *Server) StopWatches() {
	s.watch.stopOnce.Do(func() { close(s.watch.stop) })
}

// sseFrame is one wire-ready frame: a pre-marshaled payload with its
// event name and sequence id.
type sseFrame struct {
	id    int64
	event string
	data  []byte
}

// watchHello is the stream's opening frame: the replay parameters as
// resolved, the pinned generation, and how many diff frames will
// follow (barring error or drain).
type watchHello struct {
	Licensee   string  `json:"licensee"`
	Path       string  `json:"path"`
	From       string  `json:"from"`
	To         string  `json:"to"`
	Speed      float64 `json:"speed"`
	Seed       int64   `json:"seed"`
	Generation int64   `json:"generation"`
	// StoreGeneration / CorpusSHA256 identify the pinned corpus across
	// processes, zero/empty when it was never persisted.
	StoreGeneration int64  `json:"store_generation,omitempty"`
	CorpusSHA256    string `json:"corpus_sha256,omitempty"`
	// Diffs is the number of diff frames the replay will emit.
	Diffs int `json:"diffs"`
}

// watchEvent is one lifecycle transition inside a diff frame.
type watchEvent struct {
	Kind     string `json:"kind"`
	CallSign string `json:"call_sign"`
}

// watchSnapshot is the network state at the start of the replay window.
type watchSnapshot struct {
	Seq            int64   `json:"seq"`
	Date           string  `json:"date"`
	Towers         int     `json:"towers"`
	Links          int     `json:"links"`
	Connected      bool    `json:"connected"`
	LatencyMicros  float64 `json:"latency_us,omitempty"`
	ActiveLicenses int     `json:"active_licenses"`
}

// watchDiff is one replay step: what changed at this event date
// relative to the previous frame.
type watchDiff struct {
	Seq            int64        `json:"seq"`
	Date           string       `json:"date"`
	Events         []watchEvent `json:"events"`
	TowersAdded    int          `json:"towers_added"`
	TowersRemoved  int          `json:"towers_removed"`
	LinksAdded     int          `json:"links_added"`
	LinksRemoved   int          `json:"links_removed"`
	Towers         int          `json:"towers"`
	Links          int          `json:"links"`
	Connected      bool         `json:"connected"`
	LatencyMicros  float64      `json:"latency_us,omitempty"`
	LatencyDeltaUs float64      `json:"latency_delta_us,omitempty"`
	ActiveLicenses int          `json:"active_licenses"`
}

// parseFloat parses an optional float query parameter.
func parseFloat(r *http.Request, name string, def float64) (float64, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(q, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q (want a number)", name, q)
	}
	return f, nil
}

// handleWatch serves /v1/watch. Parameters: licensee (required), path
// (FROM-TO, default CME-NY4), from/to (years, defaults 2013/2020, end
// capped at the paper snapshot), speed (virtual days per wall second;
// 0 = as fast as the client reads), seed (deterministic pacing jitter,
// so many concurrent paced replays don't tick in lockstep).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	licensee := r.URL.Query().Get("licensee")
	if licensee == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter: licensee")
		return
	}
	path, err := parsePath(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	from, err := parseInt(r, "from", 2013)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := parseInt(r, "to", 2020)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if from > to {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("from=%d after to=%d", from, to))
		return
	}
	speed, err := parseFloat(r, "speed", 0)
	if err != nil || speed < 0 {
		writeError(w, http.StatusBadRequest, "bad speed (want a number of virtual days per second >= 0)")
		return
	}
	seed, err := parseInt(r, "seed", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	g := s.gen.Load()
	if g == nil {
		w.Header().Set("Retry-After", RetryAfterJitter(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "no corpus loaded")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}

	// Resume: a reconnecting client presents the last frame id it saw
	// and the replay continues from the next frame. resumeAfter is the
	// seq already delivered (-1 = fresh stream). The id's generation
	// part must match the live generation — resuming against a corpus
	// that has since been replaced would stitch diffs from two
	// different histories, so that is a 409, restart from scratch.
	// (id -1 is the drain frame: a client that saw it starts fresh.)
	resumeAfter := int64(-1)
	if lei := r.Header.Get("Last-Event-ID"); lei != "" && lei != "-1" {
		genPart, seqPart, found := strings.Cut(lei, ".")
		pg, err1 := strconv.ParseInt(genPart, 10, 64)
		ps, err2 := strconv.ParseInt(seqPart, 10, 64)
		if !found || err1 != nil || err2 != nil || ps < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad Last-Event-ID %q (want <generation>.<seq>)", lei))
			return
		}
		if pg != g.id {
			writeError(w, http.StatusConflict, fmt.Sprintf("generation %d is gone (live generation is %d); restart the stream", pg, g.id))
			return
		}
		resumeAfter = ps
	}

	// Refuse new streams once draining, and bound concurrent streams
	// with the watch semaphore (non-blocking: a replay is not worth
	// queueing for).
	select {
	case <-s.watch.stop:
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	default:
	}
	select {
	case s.watch.sem <- struct{}{}:
	default:
		s.watch.rejected.Add(1)
		w.Header().Set("Retry-After", RetryAfterJitter(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "watch stream limit reached")
		return
	}
	defer func() { <-s.watch.sem }()
	s.watch.streams.Add(1)
	s.watch.active.Add(1)
	defer s.watch.active.Add(-1)

	start := uls.NewDate(from, time.January, 1)
	end := uls.NewDate(to, time.December, 31)
	if to >= 2020 {
		end = paperSnapshot()
	}

	// The replay schedule: every distinct event date in (start, end],
	// with that date's events attached.
	var steps []watchStep
	for _, ev := range g.db.EventLog().Events(licensee) {
		if !ev.Date.After(start) || ev.Date.After(end) {
			continue
		}
		if n := len(steps); n > 0 && steps[n-1].date.Equal(ev.Date) {
			steps[n-1].events = append(steps[n-1].events, ev)
		} else {
			steps = append(steps, watchStep{date: ev.Date, events: []uls.Event{ev}})
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	if g.storeGen > 0 {
		w.Header().Set("X-Corpus-Generation", strconv.FormatInt(g.storeGen, 10))
	}
	if g.digest != "" {
		w.Header().Set("X-Corpus-Digest", g.digest)
	}
	w.WriteHeader(http.StatusOK)

	// The producer computes frames and the writer ships them; the
	// bounded channel between them is the backpressure seam. Canceling
	// ctx (client gone, writer done, or drain) stops the producer.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.watch.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	buffer := s.cfg.WatchBuffer
	frames := make(chan sseFrame, buffer)
	go func() {
		defer close(frames)
		s.produceWatch(ctx, g, licensee, path, start, speed, int64(seed), steps, resumeAfter, frames)
	}()

	heartbeat := time.NewTicker(s.cfg.WatchHeartbeat)
	defer heartbeat.Stop()
	// A drain broadcast makes three select cases ready at once: the
	// stop channel, ctx (via the forwarder), and the closing frames
	// channel (the producer exits on ctx). Go picks among ready cases
	// at random, so every exit path below re-checks stop — the drain
	// frame must reach every still-connected stream, not just the ones
	// whose select happened to land on the stop arm.
	terminal := false // an eof or error frame has been written
	drain := func() {
		fmt.Fprint(w, "id: -1\nevent: drain\ndata: {}\n\n")
		flusher.Flush()
		s.watch.frames.Add(1)
		s.watch.drained.Add(1)
	}
	stopping := func() bool {
		select {
		case <-s.watch.stop:
			return true
		default:
			return false
		}
	}
	for {
		select {
		case f, ok := <-frames:
			if !ok {
				// Producer done: either the replay completed (terminal
				// frame already written) or the drain broadcast
				// canceled it mid-stream.
				if !terminal && stopping() && r.Context().Err() == nil {
					drain()
				}
				return
			}
			fmt.Fprintf(w, "id: %d.%d\nevent: %s\ndata: %s\n\n", g.id, f.id, f.event, f.data)
			flusher.Flush()
			s.watch.frames.Add(1)
			if f.event == "eof" || f.event == "error" {
				terminal = true
			}
		case <-heartbeat.C:
			fmt.Fprint(w, ": hb\n\n")
			flusher.Flush()
		case <-s.watch.stop:
			if !terminal {
				drain()
			}
			return
		case <-ctx.Done():
			// Client disconnects cancel ctx too; only a still-connected
			// client mid-drain gets the terminal frame.
			if !terminal && stopping() && r.Context().Err() == nil {
				drain()
			}
			return
		}
	}
}

// watchStep is one replay step: a distinct event date and the
// lifecycle events that fired on it.
type watchStep struct {
	date   uls.Date
	events []uls.Event
}

// produceWatch computes the replay frames in order: hello (seq 0), the
// start snapshot (seq 1), one diff per event date (seq 2..S+1), eof
// (seq S+2). Every send honors ctx, so a canceled stream stops
// computing promptly; with speed > 0 the producer paces frames by
// virtual time (jittered deterministically by seed so concurrent
// replays desynchronize).
//
// resumeAfter >= 0 resumes a dropped stream: every frame with seq <=
// resumeAfter is suppressed (the client already has them), the
// baseline network state is recomputed at the date the client last
// saw, and the replay continues from the next frame — the
// concatenation of the frames the client kept and the frames this
// stream emits is byte-identical to an uninterrupted replay.
func (s *Server) produceWatch(ctx context.Context, g *generation, licensee string, path sites.Path, start uls.Date, speed float64, seed int64, steps []watchStep, resumeAfter int64, frames chan<- sseFrame) {
	send := func(id int64, event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		select {
		case frames <- sseFrame{id: id, event: event, data: data}:
			return true
		case <-ctx.Done():
			return false
		}
	}
	fail := func(id int64, err error) {
		send(id, "error", errorBody{Error: err.Error()})
	}

	log := g.db.EventLog()
	dcs := []sites.DataCenter{path.From, path.To}
	snapshotAt := func(d uls.Date) (*core.Network, error) {
		return g.eng.SnapshotContext(ctx, core.SnapshotRequest{
			Licensees: []string{licensee},
			Date:      d,
			DCs:       dcs,
			Opts:      core.DefaultOptions(),
		})
	}
	latency := func(n *core.Network) (float64, bool) {
		r, ok := n.BestRoute(path)
		if !ok {
			return 0, false
		}
		return r.Latency.Microseconds(), true
	}

	S := int64(len(steps))
	last := resumeAfter // highest seq the client already holds; -1 = none
	lastStr := start.String()
	if S > 0 {
		lastStr = steps[S-1].date.String()
	}
	if last < 0 {
		if !send(0, "hello", watchHello{
			Licensee: licensee, Path: path.Name(),
			From: start.String(), To: lastStr,
			Speed: speed, Seed: seed,
			Generation: g.id, StoreGeneration: g.storeGen, CorpusSHA256: g.digest,
			Diffs: len(steps),
		}) {
			return
		}
		last = 0
	}

	// Baseline network state: for a fresh stream (or a client holding
	// only the hello) it is the window start and is emitted as the
	// snapshot frame; for a resume it is the date of the last diff the
	// client saw — recomputed, not replayed, so the diffs that follow
	// chain off exactly the state the client's copy ends in.
	baseline := start
	if last >= 2 {
		baseline = steps[min(last-2, S-1)].date
	}
	prev, err := snapshotAt(baseline)
	if err != nil {
		fail(last+1, err)
		return
	}
	prevLat, prevConn := latency(prev)
	if last == 0 {
		snap := watchSnapshot{
			Seq: 1, Date: start.String(),
			Towers: len(prev.Towers), Links: len(prev.Links),
			Connected:      prevConn,
			ActiveLicenses: log.ActiveCount(licensee, start),
		}
		if prevConn {
			snap.LatencyMicros = prevLat
		}
		if !send(1, "snapshot", snap) {
			return
		}
		last = 1
	}

	rng := rand.New(rand.NewPCG(uint64(seed), 0x77a7c4)) //nolint:gosec // pacing jitter, not security
	clock := baseline
	seq := last
	// Diff for step index i carries seq 2+i; the client holds seqs
	// through `last`, so the replay continues at step index last-1.
	for _, st := range steps[min(last-1, S):] {
		if speed > 0 {
			days := int(st.date.Time().Sub(clock.Time()).Hours() / 24)
			if days > 0 {
				wait := time.Duration(float64(days) / speed * float64(time.Second))
				// ±10% deterministic jitter: many streams replaying the
				// same corpus at the same speed shouldn't tick in
				// lockstep.
				wait += time.Duration((rng.Float64() - 0.5) * 0.2 * float64(wait))
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return
				}
			}
		}
		clock = st.date

		cur, err := snapshotAt(st.date)
		if err != nil {
			fail(seq+1, err)
			return
		}
		seq++
		d := core.DiffNetworks(prev, cur)
		curLat, curConn := latency(cur)
		frame := watchDiff{
			Seq: seq, Date: st.date.String(),
			Events:         make([]watchEvent, 0, len(st.events)),
			TowersAdded:    d.TowersAdded,
			TowersRemoved:  d.TowersRemoved,
			LinksAdded:     d.LinksAdded,
			LinksRemoved:   d.LinksRemoved,
			Towers:         len(cur.Towers),
			Links:          len(cur.Links),
			Connected:      curConn,
			ActiveLicenses: log.ActiveCount(licensee, st.date),
		}
		for _, ev := range st.events {
			frame.Events = append(frame.Events, watchEvent{
				Kind: ev.Kind.String(), CallSign: ev.License.CallSign,
			})
		}
		if curConn {
			frame.LatencyMicros = curLat
			if prevConn {
				frame.LatencyDeltaUs = curLat - prevLat
			}
		}
		if !send(seq, "diff", frame) {
			return
		}
		prev, prevLat, prevConn = cur, curLat, curConn
	}

	// The eof seq is fixed at S+2 regardless of where the stream
	// resumed — a client that reconnects after seeing the eof just gets
	// it again, idempotently.
	send(S+2, "eof", map[string]int64{"frames": S + 2})
}
