package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hftnetview/internal/synth"
)

// TestServeSoak is the end-to-end resilience soak from the issue's
// acceptance criteria, driven by real process signals:
//
//   - concurrent clients hammer the API well beyond the admission
//     limit — overload must shed with 503 + Retry-After, never drop
//     or corrupt a response;
//   - mid-flight, the corpus file is corrupted and SIGHUP'd — the
//     reload must be refused and the old generation keep serving;
//   - the file is repaired and SIGHUP'd again — the new generation
//     must go live without interrupting traffic;
//   - finally SIGTERM — the listener closes, every in-flight request
//     drains to a complete response, and the server exits cleanly.
//
// Run under -race via `make serve-soak` (wired into `make ci`).
func TestServeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	dir := t.TempDir()
	bulk := filepath.Join(dir, "corpus.uls")
	dbA := corpus(t)
	dbB := withoutLicensee(t, dbA, "Webline Holdings")
	writeBulkFile(t, bulk, dbA)

	s := New(Config{
		MaxInFlight:      4,
		MaxQueueWait:     2 * time.Millisecond,
		RequestTimeout:   6 * time.Second,
		BreakerThreshold: 1 << 30, // the soak injects no engine faults; keep the breaker quiet
	})
	reloadOpts := ReloadOptions{MaxErrorRate: 0.02}
	if err := s.LoadCorpusFile(bulk, reloadOpts); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hup := make(chan struct{}, 1)
	go s.Watch(ctx, bulk, 0, hup, reloadOpts)

	httpSrv := &http.Server{Addr: "127.0.0.1:0", Handler: s.Handler()}
	addrC := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ListenAndServeGraceful(httpSrv, GracefulOptions{
			DrainTimeout: 15 * time.Second,
			OnHUP: func() {
				select {
				case hup <- struct{}{}:
				default: // reload already pending
				}
			},
			OnReady: func(a net.Addr) { addrC <- a },
		})
	}()
	var base string
	select {
	case a := <-addrC:
		base = "http://" + a.String()
	case err := <-serveErr:
		t.Fatalf("server died before ready: %v", err)
	}

	// Clients. Keep-alives are off so every request is its own
	// connection: after SIGTERM, new dials are refused (expected and
	// distinguishable) while accepted requests must still complete.
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   20 * time.Second,
	}
	urls := []string{
		"/v1/snapshot",
		"/v1/snapshot?date=2019-04-01",
		"/v1/rank?top=3",
		"/v1/evolution?licensee=New+Line+Networks&from=2016&to=2020",
		"/v1/apa",
		"/statsz",
		"/healthz",
		"/readyz",
	}

	var (
		termSent  atomic.Bool
		completed atomic.Int64 // requests with a fully read response
		shed      atomic.Int64 // 503s with a Retry-After header
		timeouts  atomic.Int64 // 504s: deadline-bounded degradation, still a complete response
		refused   atomic.Int64 // post-SIGTERM connection refusals

		problemMu sync.Mutex
		problems  []string

		latMu     sync.Mutex
		latencies []time.Duration // completed-200 request latencies
	)
	recordProblem := func(format string, args ...any) {
		problemMu.Lock()
		defer problemMu.Unlock()
		if len(problems) < 20 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}

	stop := make(chan struct{})
	var clients sync.WaitGroup
	const nClients = 16 // 4× the admission limit: guaranteed overload
	for c := 0; c < nClients; c++ {
		clients.Add(1)
		go func(c int) {
			defer clients.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := base + urls[(c+i)%len(urls)]
				reqStart := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					if termSent.Load() {
						// Listener closed; a fresh dial being refused
						// is the graceful-shutdown contract, not a
						// dropped request.
						refused.Add(1)
						return
					}
					recordProblem("client %d: transport error before SIGTERM: %v", c, err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					recordProblem("client %d: %s: response truncated: %v", c, url, rerr)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if len(body) == 0 {
						recordProblem("client %d: %s: empty 200 body", c, url)
					}
					latMu.Lock()
					latencies = append(latencies, time.Since(reqStart))
					latMu.Unlock()
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						recordProblem("client %d: %s: 503 without Retry-After", c, url)
					}
					shed.Add(1)
				case http.StatusGatewayTimeout:
					// The per-request deadline fired on a slow analysis
					// (the §2.4 pair sweep is O(n²) reconstructions):
					// a complete, well-formed 504 is graceful
					// degradation, not a drop.
					timeouts.Add(1)
				default:
					recordProblem("client %d: %s: unexpected status %d (%s)",
						c, url, resp.StatusCode, strings.TrimSpace(string(body)))
				}
				completed.Add(1)
			}
		}(c)
	}

	self := os.Getpid()
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: pure overload.
	time.Sleep(300 * time.Millisecond)

	// Phase 2: corrupt the corpus and SIGHUP. The reload must fail the
	// error budget and generation 1 must keep serving.
	dirty := synth.Corrupt(dbA, synth.Profile{
		Name: "mixed", Rate: 0.6, GarbleW: 3, TruncateW: 2, DuplicateW: 2, ReorderW: 1, ShredW: 2,
	}, 42).Dirty
	if err := os.WriteFile(bulk, dirty, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(self, syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitFor("corrupted reload to be refused", func() bool { return s.ReloadStatus().Failures >= 1 })
	if g := s.Stats().Generation; g == nil || g.ID != 1 {
		t.Fatalf("generation after corrupted reload = %+v, want ID 1 still live", g)
	}

	// Phase 3: repair the corpus (to the distinct B variant, so the
	// swap is observable) and SIGHUP again.
	writeBulkFile(t, bulk, dbB)
	if err := syscall.Kill(self, syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitFor("repaired reload to go live", func() bool {
		g := s.Stats().Generation
		return g != nil && g.ID == 2
	})

	// Phase 4: more load on the new generation, then SIGTERM.
	time.Sleep(200 * time.Millisecond)
	termSent.Store(true)
	if err := syscall.Kill(self, syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil (all in-flight drained)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited after SIGTERM")
	}
	close(stop)
	clients.Wait()

	problemMu.Lock()
	for _, p := range problems {
		t.Error(p)
	}
	problemMu.Unlock()

	st := s.Stats()
	t.Logf("soak: %d completed (%d deadline 504s), %d shed (server counter %d), %d refused post-SIGTERM, reloads %+v, engine %+v",
		completed.Load(), timeouts.Load(), shed.Load(), st.Shed, refused.Load(), st.Reload, st.Engine)
	latMu.Lock()
	if n := len(latencies); n > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		t.Logf("soak: served-200 latency p50 %v, p99 %v, max %v; shed rate %.1f%%",
			latencies[n/2], latencies[n*99/100], latencies[n-1],
			100*float64(st.Shed)/float64(st.Requests))
	}
	latMu.Unlock()
	if completed.Load() == 0 {
		t.Error("no client request completed")
	}
	if shed.Load() == 0 || st.Shed == 0 {
		t.Errorf("no load shedding observed (client %d, server %d) — admission limit never hit?",
			shed.Load(), st.Shed)
	}
	if st.Panics != 0 {
		t.Errorf("panics recovered during soak = %d, want 0", st.Panics)
	}
	if st.Reload.Failures < 1 || st.Reload.Attempts < 2 {
		t.Errorf("reload history = %+v, want >=2 attempts with >=1 failure", st.Reload)
	}
}
