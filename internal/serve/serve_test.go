package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/sites"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

var (
	corpusOnce sync.Once
	corpusDB   *uls.Database
	corpusErr  error
)

func corpus(t testing.TB) *uls.Database {
	t.Helper()
	corpusOnce.Do(func() { corpusDB, corpusErr = synth.Generate() })
	if corpusErr != nil {
		t.Fatalf("synth.Generate: %v", corpusErr)
	}
	return corpusDB
}

func testServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.SetCorpus(corpus(t), "test corpus")
	return s
}

func get(t testing.TB, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func decode[T any](t testing.TB, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return v
}

type snapshotResp struct {
	Date       string `json:"date"`
	Path       string `json:"path"`
	Generation int64  `json:"generation"`
	Networks   []struct {
		Licensee      string  `json:"licensee"`
		LatencyMicros float64 `json:"latency_us"`
		APA           float64 `json:"apa"`
		Towers        int     `json:"towers"`
		Hops          int     `json:"hops"`
	} `json:"networks"`
}

// TestSnapshotEndpointMatchesDirect: the HTTP rows must equal the
// one-shot analysis over the same corpus.
func TestSnapshotEndpointMatchesDirect(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	rec := get(t, h, "/v1/snapshot?date=2020-04-01&path=CME-NY4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	got := decode[snapshotResp](t, rec)

	want, err := core.ConnectedNetworks(corpus(t),
		uls.NewDate(2020, time.April, 1),
		sites.Path{From: sites.CME, To: sites.NY4}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Networks) != len(want) || len(want) == 0 {
		t.Fatalf("rows = %d, want %d (nonzero)", len(got.Networks), len(want))
	}
	for i, row := range got.Networks {
		if row.Licensee != want[i].Licensee {
			t.Errorf("row %d licensee = %q, want %q", i, row.Licensee, want[i].Licensee)
		}
		if row.LatencyMicros != want[i].Latency.Microseconds() {
			t.Errorf("row %d latency = %v, want %v", i, row.LatencyMicros, want[i].Latency.Microseconds())
		}
		if row.APA != want[i].APA || row.Towers != want[i].TowerCount || row.Hops != want[i].HopCount {
			t.Errorf("row %d = %+v, want %+v", i, row, want[i])
		}
	}
	if got.Date != "04/01/2020" || got.Path != "CME-NY4" || got.Generation != 1 {
		t.Errorf("envelope = %s/%s/gen %d, want 04/01/2020/CME-NY4/gen 1",
			got.Date, got.Path, got.Generation)
	}
}

func TestRankEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	rec := get(t, s.Handler(), "/v1/rank?top=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	got := decode[struct {
		Paths []struct {
			Path   string `json:"path"`
			Ranked []struct {
				Licensee string `json:"licensee"`
			} `json:"ranked"`
		} `json:"paths"`
	}](t, rec)
	if len(got.Paths) != 3 {
		t.Fatalf("paths = %d, want the 3 corridor paths", len(got.Paths))
	}
	for _, p := range got.Paths {
		if len(p.Ranked) == 0 || len(p.Ranked) > 3 {
			t.Errorf("path %s ranked %d networks, want 1..3", p.Path, len(p.Ranked))
		}
	}
}

func TestEvolutionEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	rec := get(t, s.Handler(), "/v1/evolution?licensee=New+Line+Networks&from=2016&to=2020")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	got := decode[struct {
		Licensee string `json:"licensee"`
		Points   []struct {
			Date      string `json:"date"`
			Connected bool   `json:"connected"`
		} `json:"points"`
	}](t, rec)
	if len(got.Points) != 5 {
		t.Fatalf("points = %d, want 5 (2016..2020)", len(got.Points))
	}
	anyConnected := false
	for _, p := range got.Points {
		anyConnected = anyConnected || p.Connected
	}
	if !anyConnected {
		t.Error("no connected point for New Line Networks 2016-2020")
	}
}

func TestAPAEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	rec := get(t, s.Handler(), "/v1/apa")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	got := decode[struct {
		Networks []struct {
			Licensee string  `json:"licensee"`
			APA      float64 `json:"apa"`
		} `json:"networks"`
		Complementary []struct {
			Pair string `json:"pair"`
		} `json:"complementary_pairs"`
	}](t, rec)
	if len(got.Networks) == 0 {
		t.Fatal("no APA rows")
	}
	for _, n := range got.Networks {
		if n.APA < 0 || n.APA > 1 {
			t.Errorf("%s APA = %v, want [0,1]", n.Licensee, n.APA)
		}
	}
}

func TestBadParams(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	for _, url := range []string{
		"/v1/snapshot?date=not-a-date",
		"/v1/snapshot?path=CME",
		"/v1/snapshot?path=CME-LHR",
		"/v1/rank?top=many",
		"/v1/evolution", // missing licensee
		"/v1/evolution?licensee=X&from=2020&to=2013",
	} {
		if rec := get(t, h, url); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, rec.Code)
		}
	}
}

func TestHealthEndpoints(t *testing.T) {
	// No corpus: alive but not ready.
	s := New(Config{})
	h := s.Handler()
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	rec := get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz without corpus = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("readyz 503 missing Retry-After")
	}
	// Queries without a corpus are 503, not 500.
	if rec := get(t, h, "/v1/snapshot"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query without corpus = %d, want 503", rec.Code)
	}

	s.SetCorpus(corpus(t), "test corpus")
	rec = get(t, h, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz with corpus = %d, want 200", rec.Code)
	}
	body := decode[readyzBody](t, rec)
	if !body.Ready || body.Generation == nil || body.Generation.Licenses == 0 {
		t.Errorf("readyz body = %+v, want ready with a populated generation", body)
	}
}

func TestStatszCounters(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if rec := get(t, h, "/v1/snapshot"); rec.Code != http.StatusOK {
			t.Fatalf("warmup %d: status %d", i, rec.Code)
		}
	}
	rec := get(t, h, "/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz = %d", rec.Code)
	}
	st := decode[ServeStats](t, rec)
	if st.Requests != 3 {
		t.Errorf("requests = %d, want 3", st.Requests)
	}
	if st.Engine == nil || st.Engine.Rebuilds == 0 {
		t.Errorf("engine stats = %+v, want nonzero rebuilds", st.Engine)
	}
	if st.Engine != nil && st.Engine.Hits == 0 {
		t.Errorf("engine hits = 0 after repeated identical queries, want cache hits")
	}
	if st.Breaker.State != "closed" {
		t.Errorf("breaker state = %q, want closed", st.Breaker.State)
	}
}

// TestBreakerTripsOnEngineTimeouts: queries that blow the rebuild
// budget 504 and, after enough consecutive failures, trip the breaker
// into fast 503s.
func TestBreakerTripsOnEngineTimeouts(t *testing.T) {
	s := New(Config{
		// A 1ns rebuild budget makes every cold snapshot wait expire
		// deterministically: the first query over a cold engine can
		// never have every reconstruction already memoized.
		RebuildTimeout:   time.Nanosecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	s.SetCorpus(corpus(t), "test corpus")
	h := s.Handler()

	rec := get(t, h, "/v1/snapshot")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout query: status = %d, want 504 (body %s)", rec.Code, rec.Body.String())
	}
	rec = get(t, h, "/v1/snapshot")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-trip query: status = %d, want 503 from open breaker", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("breaker 503 missing Retry-After")
	}
	st := s.Stats()
	if st.Breaker.State != "open" || st.BreakerReject == 0 || st.Failures < 1 {
		t.Errorf("stats = breaker %+v, rejects %d, failures %d; want open/1+/1+",
			st.Breaker, st.BreakerReject, st.Failures)
	}
	// readyz surfaces the open breaker but stays ready (old corpus
	// still pinned; liveness decisions belong to the operator).
	rb := decode[readyzBody](t, get(t, h, "/readyz"))
	if rb.Breaker != "open" {
		t.Errorf("readyz breaker = %q, want open", rb.Breaker)
	}
}
