package serve

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hftnetview/internal/store"
)

// tempDebris lists the in-progress store artifacts (tmp-gen-* dirs,
// MANIFEST-*.json.tmp files) in dir.
func tempDebris(t testing.TB, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading store dir: %v", err)
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "tmp-gen-") || strings.HasSuffix(name, ".json.tmp") {
			out = append(out, name)
		}
	}
	return out
}

// TestWarmStartServesPersistedGeneration: a server attached to a store
// holding a verified generation must boot from it — ready, queryable,
// and reporting warm boot mode — without writing a duplicate
// generation back.
func TestWarmStartServesPersistedGeneration(t *testing.T) {
	dir := t.TempDir()
	seed, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Save(corpus(t), "seeded by test"); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	s.AttachStore(st)
	rep, err := s.WarmStart()
	if err != nil {
		t.Fatalf("warm start: %v\n%s", err, rep)
	}
	if rep.Served == 0 || len(rep.Discarded) != 0 {
		t.Fatalf("unexpected recovery report: %s", rep)
	}

	h := s.Handler()
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after warm start = %d, body %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/snapshot"); rec.Code != http.StatusOK {
		t.Fatalf("/v1/snapshot after warm start = %d, body %s", rec.Code, rec.Body.String())
	}

	ps := s.PersistStatus()
	if !ps.Enabled || ps.Boot != "warm" || !ps.Verified || ps.Generation != rep.Served {
		t.Fatalf("persist status = %+v, want enabled warm verified gen %d", ps, rep.Served)
	}

	// Recovering must not have re-persisted the corpus as a new
	// generation.
	gens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("store has %d generations after warm start, want 1", len(gens))
	}
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartPrewarmsEngine: a warm boot kicks a background prewarm
// of the default query surface, so the first zero-parameter
// /v1/snapshot after the prewarm settles is served entirely from the
// memo store.
func TestWarmStartPrewarmsEngine(t *testing.T) {
	dir := t.TempDir()
	seed, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Save(corpus(t), "seeded by test"); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	s.AttachStore(st)
	if _, err := s.WarmStart(); err != nil {
		t.Fatalf("warm start: %v", err)
	}
	defer s.CloseStore()

	deadline := time.Now().Add(30 * time.Second)
	for s.PersistStatus().Prewarmed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background prewarm never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got, want := s.PersistStatus().Prewarmed, len(corpus(t).Licensees()); got != want {
		t.Fatalf("prewarmed %d snapshots, want one per licensee (%d)", got, want)
	}

	before := s.Stats().Engine.Rebuilds
	if rec := get(t, s.Handler(), "/v1/snapshot"); rec.Code != http.StatusOK {
		t.Fatalf("/v1/snapshot = %d, body %s", rec.Code, rec.Body.String())
	}
	if after := s.Stats().Engine.Rebuilds; after != before {
		t.Errorf("default query after prewarm rebuilt (%d -> %d), want all memo hits", before, after)
	}
}

// TestPublishPersistsGenerations: with a store attached, every
// published corpus — SetCorpus and successful file reloads alike —
// lands as a new on-disk generation.
func TestPublishPersistsGenerations(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	s.AttachStore(st)

	s.SetCorpus(corpus(t), "direct corpus")
	gens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("store has %d generations after SetCorpus, want 1", len(gens))
	}

	bulk := filepath.Join(t.TempDir(), "corpus.uls")
	writeBulkFile(t, bulk, withoutLicensee(t, corpus(t), "Webline Holdings"))
	if err := s.LoadCorpusFile(bulk, ReloadOptions{}); err != nil {
		t.Fatal(err)
	}
	if gens, err = st.List(); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("store has %d generations after reload, want 2", len(gens))
	}
	if gens[0].Licenses >= gens[1].Licenses {
		t.Fatalf("newest generation has %d licenses, want fewer than %d (the reload dropped a licensee)",
			gens[0].Licenses, gens[1].Licenses)
	}

	ps := s.PersistStatus()
	if ps.Generation != gens[0].ID || ps.LastError != "" {
		t.Fatalf("persist status = %+v, want generation %d and no error", ps, gens[0].ID)
	}
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistFailureKeepsServing: a persistence failure must not
// affect the in-memory publish — the corpus serves, and the failure
// surfaces as degraded health on /readyz.
func TestPersistFailureKeepsServing(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.WithFailpoints(store.Failpoints{
		BeforeManifest: func() error {
			return fmt.Errorf("%w: injected persist failure", store.ErrFailpoint)
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	s.AttachStore(st)
	s.SetCorpus(corpus(t), "doomed persist")

	h := s.Handler()
	rec := get(t, h, "/v1/snapshot")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/snapshot = %d after persist failure, want 200", rec.Code)
	}
	body := decode[struct {
		Ready    bool `json:"ready"`
		Degraded bool `json:"degraded"`
		Persist  *struct {
			LastError string `json:"last_error"`
		} `json:"persist"`
	}](t, get(t, h, "/readyz"))
	if !body.Ready || !body.Degraded || body.Persist == nil || body.Persist.LastError == "" {
		t.Fatalf("/readyz = %+v, want ready+degraded with a persist error", body)
	}
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownSweepsPersistDebris: when termination lands around an
// interrupted persist — here an injected crash that strands a
// tmp-gen-* directory, exactly what SIGTERM mid-Save leaves — the
// graceful shutdown path must close the store and sweep the debris
// before the process exits.
func TestShutdownSweepsPersistDebris(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.WithFailpoints(store.Failpoints{
		BeforeManifest: func() error {
			return fmt.Errorf("%w: crash mid-persist", store.ErrFailpoint)
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	s.AttachStore(st)

	stop := make(chan struct{})
	httpSrv := &http.Server{Addr: "127.0.0.1:0", Handler: s.Handler()}
	addrC := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ListenAndServeGraceful(httpSrv, GracefulOptions{
			DrainTimeout: 5 * time.Second,
			OnReady:      func(a net.Addr) { addrC <- a },
			Stop:         stop,
			OnShutdown: func() {
				if err := s.CloseStore(); err != nil {
					t.Errorf("closing store on shutdown: %v", err)
				}
			},
		})
	}()
	select {
	case <-addrC:
	case err := <-serveErr:
		t.Fatalf("server died before ready: %v", err)
	}

	// Publish while serving: the injected failpoint kills the persist
	// after the segments are written, stranding a temp directory like a
	// real crash would.
	s.SetCorpus(corpus(t), "interrupted persist")
	if got := tempDebris(t, dir); len(got) == 0 {
		t.Fatal("failpoint left no temp debris; the test is not exercising the sweep")
	}

	// "SIGTERM": stop triggers the graceful path, which runs OnShutdown
	// after the drain.
	close(stop)
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	if got := tempDebris(t, dir); len(got) != 0 {
		t.Fatalf("temp debris survived shutdown: %v", got)
	}

	// The store is closed: further persists must refuse, not recreate
	// debris.
	if _, err := st.Save(corpus(t), "after close"); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("save after shutdown = %v, want ErrClosed", err)
	}
}

// TestKeyframePersistRoundTrip: a serving process's replay keyframes
// survive a restart — CloseStore exports them next to the generation,
// and the next WarmStart of the same data directory imports them into
// the fresh engine (verified by digest) before prewarming.
func TestKeyframePersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	seed, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Save(corpus(t), "seeded by test"); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	boot := func() *Server {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Interval 1 keyframes every event, so even short replays leave
		// state worth persisting.
		s := New(Config{KeyframeInterval: 1})
		s.AttachStore(st)
		if _, err := s.WarmStart(); err != nil {
			t.Fatalf("warm start: %v", err)
		}
		return s
	}

	s1 := boot()
	// Drive the delta path so the engine accumulates keyframes.
	licensee := corpus(t).Licensees()[0]
	rec := get(t, s1.Handler(), "/v1/evolution?licensee="+url.QueryEscape(licensee))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/evolution = %d, body %s", rec.Code, rec.Body.String())
	}
	if err := s1.CloseStore(); err != nil {
		t.Fatal(err)
	}
	saved := s1.PersistStatus().KeyframesSaved
	if saved == 0 {
		t.Fatal("CloseStore exported no keyframes after an evolution sweep")
	}

	s2 := boot()
	defer s2.CloseStore()
	deadline := time.Now().Add(30 * time.Second)
	for s2.PersistStatus().KeyframesLoaded == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("restart imported no keyframes (first run saved %d)", saved)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := s2.PersistStatus().KeyframesLoaded; got != saved {
		t.Fatalf("restart imported %d keyframes, first run saved %d", got, saved)
	}

	// The imported state must serve correct results.
	rec2 := get(t, s2.Handler(), "/v1/evolution?licensee="+url.QueryEscape(licensee))
	if rec2.Code != http.StatusOK {
		t.Fatalf("post-import /v1/evolution = %d", rec2.Code)
	}
	if rec2.Body.String() != rec.Body.String() {
		t.Fatal("evolution response changed across keyframe persist round trip")
	}
}
