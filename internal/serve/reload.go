package serve

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"hftnetview/internal/uls"
)

// ReloadOptions governs how a corpus file is (re)ingested before it
// may replace the live generation.
type ReloadOptions struct {
	// Mode is the bulk-ingestion fault policy (default Lenient: skip
	// malformed records, salvage the rest).
	Mode uls.ParseMode
	// MaxErrorRate is the ingestion error budget: a candidate corpus
	// rejecting more than this fraction of its record lines is refused
	// and the old generation keeps serving (default 0.05).
	MaxErrorRate float64
	// Bounds, when non-nil, bounds-checks coordinates during the
	// integrity pass.
	Bounds *uls.Bounds
}

// withDefaults fills unset fields.
func (o ReloadOptions) withDefaults() ReloadOptions {
	if o.MaxErrorRate <= 0 {
		o.MaxErrorRate = 0.05
	}
	if o.Mode == 0 { // uls.Strict is the zero ParseMode; reloads default to Lenient
		o.Mode = uls.Lenient
	}
	return o
}

// ReloadStatus is the hot reloader's history, surfaced on /readyz and
// /statsz.
type ReloadStatus struct {
	Attempts    int    `json:"attempts"`
	Failures    int    `json:"failures"`
	LastError   string `json:"last_error,omitempty"`
	LastSuccess string `json:"last_success,omitempty"`
}

// ReloadStatus returns a copy of the reload history.
func (s *Server) ReloadStatus() ReloadStatus {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.reload
}

// LoadCorpusFile ingests path under opts and, if the candidate passes
// the error budget and the integrity pass, atomically swaps it in as
// the live generation. On any failure the previous generation keeps
// serving and the error is recorded for /readyz. The swap protocol:
//
//  1. ingest into a fresh database (the live one is never touched);
//  2. refuse the candidate if ingestion blew the error budget;
//  3. run the cross-record integrity pass with repair, dropping only
//     inconsistent sub-records;
//  4. refuse an empty candidate (a truncated or garbage file must not
//     evict a working corpus);
//  5. build a fresh engine and publish (db, engine) with one atomic
//     pointer store.
//
// Requests pin their generation once at entry, so no request ever
// observes the corpus mid-swap.
func (s *Server) LoadCorpusFile(path string, opts ReloadOptions) error {
	opts = opts.withDefaults()
	err := s.loadCorpusFile(path, opts)

	s.reloadMu.Lock()
	s.reload.Attempts++
	if err != nil {
		s.reload.Failures++
		s.reload.LastError = err.Error()
	} else {
		s.reload.LastError = ""
		s.reload.LastSuccess = time.Now().UTC().Format(time.RFC3339)
	}
	s.reloadMu.Unlock()
	return err
}

func (s *Server) loadCorpusFile(path string, opts ReloadOptions) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("opening corpus: %w", err)
	}
	defer f.Close()

	db, report, err := uls.ReadBulkWithOptions(f, uls.ReadBulkOptions{
		Mode:         opts.Mode,
		MaxErrorRate: opts.MaxErrorRate,
	})
	if err != nil {
		return fmt.Errorf("ingesting corpus: %w", err)
	}
	vrep := uls.Validate(db, uls.ValidateOptions{Bounds: opts.Bounds, Repair: true})
	if db.Len() == 0 {
		return fmt.Errorf("candidate corpus is empty after salvage (%d bad lines, %d issues)",
			report.BadLines, len(vrep.Issues))
	}
	src := fmt.Sprintf("%s (%d licenses, %d bad lines, %d repaired)",
		path, db.Len(), report.BadLines, vrep.Repaired)
	s.SetCorpus(db, src)
	return nil
}

// Watch hot-reloads the corpus until ctx is done: immediately on every
// tick of hup (wire it to SIGHUP), and, when interval > 0, whenever a
// poll sees the file's (mtime, size) change. Reload failures are
// logged and recorded but never stop the watcher — the next SIGHUP or
// file change retries.
func (s *Server) Watch(ctx context.Context, path string, interval time.Duration, hup <-chan struct{}, opts ReloadOptions) {
	var lastMod time.Time
	var lastSize int64
	if fi, err := os.Stat(path); err == nil {
		lastMod, lastSize = fi.ModTime(), fi.Size()
	}

	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	reload := func(trigger string) {
		if err := s.LoadCorpusFile(path, opts); err != nil {
			log.Printf("serve: reload (%s) failed, keeping previous generation: %v", trigger, err)
			return
		}
		if fi, err := os.Stat(path); err == nil {
			lastMod, lastSize = fi.ModTime(), fi.Size()
		}
		log.Printf("serve: reload (%s) succeeded: generation %d live", trigger, s.gen.Load().id)
	}

	for {
		select {
		case <-ctx.Done():
			return
		case _, ok := <-hup:
			if !ok {
				return
			}
			reload("SIGHUP")
		case <-tick:
			fi, err := os.Stat(path)
			if err != nil {
				continue // transient: file mid-replace
			}
			if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
				continue
			}
			reload("file change")
		}
	}
}
