package serve

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestWatchSoak is the streaming surface's endurance test (run it
// under -race via `make watch-soak`): a seeded mix of fast readers,
// slow readers (exercising the backpressure seam — their replay clock
// must pause, not drop frames), and clients that disconnect mid-replay,
// all while the corpus hot-reloads underneath them. Asserts:
//
//   - every frame sequence observed is gap-free and monotone — a
//     client that read frames 0..k saw every transition in between,
//     whether it finished, was drained, or hung up;
//   - completed streams end in eof (or drain after StopWatches);
//   - no goroutines leak once the streams and the server wind down.
func TestWatchSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	s := testServer(t, Config{WatchMaxStreams: 64, WatchHeartbeat: 25 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	licensees := corpus(t).Licensees()

	const (
		fastClients    = 6
		slowClients    = 4
		flakyClients   = 4
		reloads        = 3
		reloadInterval = 60 * time.Millisecond
	)

	// kind describes each client's read discipline.
	type outcome struct {
		kind   string
		err    error
		events []sseEvent
	}
	results := make(chan outcome, fastClients+slowClients+flakyClients)
	var wg sync.WaitGroup

	stream := func(kind string, i int, read func(ctx context.Context, body io.Reader) ([]sseEvent, error)) {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(uint64(i), 0x50a7))
		licensee := licensees[i%len(licensees)]
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		speed := ""
		if kind == "slow" {
			// Paced just enough that a reload lands mid-stream; the slow
			// read below is the real brake.
			speed = "&speed=" + strconv.Itoa(2000+rng.IntN(2000))
		}
		req, err := http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/v1/watch?licensee=%s&seed=%d%s", ts.URL, url.QueryEscape(licensee), i, speed), nil)
		if err != nil {
			results <- outcome{kind: kind, err: err}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			results <- outcome{kind: kind, err: err}
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			results <- outcome{kind: kind, err: fmt.Errorf("status %d", resp.StatusCode)}
			return
		}
		events, err := read(ctx, resp.Body)
		results <- outcome{kind: kind, events: events, err: err}
	}

	for i := 0; i < fastClients; i++ {
		wg.Add(1)
		go stream("fast", i, func(_ context.Context, body io.Reader) ([]sseEvent, error) {
			evs, _ := parseSSE(body)
			return evs, nil
		})
	}
	for i := 0; i < slowClients; i++ {
		wg.Add(1)
		go stream("slow", fastClients+i, func(_ context.Context, body io.Reader) ([]sseEvent, error) {
			// Trickle-read a few bytes at a time so the server's frame
			// buffer and the socket fill up and the producer blocks.
			evs, _ := parseSSE(&slowReader{r: body, chunk: 64, pause: time.Millisecond})
			return evs, nil
		})
	}
	for i := 0; i < flakyClients; i++ {
		wg.Add(1)
		go stream("flaky", fastClients+slowClients+i, func(ctx context.Context, body io.Reader) ([]sseEvent, error) {
			// Read a random prefix, then hang up mid-stream.
			n := 2 + i%5
			lr := &limitedFrames{r: body, max: n}
			evs, _ := parseSSE(lr)
			return evs, nil
		})
	}

	// Hot-reload the corpus underneath the open streams: pinned
	// generations must keep replaying without tearing.
	for i := 0; i < reloads; i++ {
		time.Sleep(reloadInterval)
		s.SetCorpus(corpus(t), fmt.Sprintf("soak reload %d", i))
	}

	// End the soak: slow paced streams would otherwise replay for ages.
	time.Sleep(reloadInterval)
	s.StopWatches()
	wg.Wait()
	close(results)

	finished := map[string]int{}
	for res := range results {
		if res.err != nil {
			t.Errorf("%s client failed: %v", res.kind, res.err)
			continue
		}
		if len(res.events) == 0 {
			t.Errorf("%s client saw no frames", res.kind)
			continue
		}
		// Gap-free monotone ids on every observed prefix; flaky clients
		// just stop early, so only full streams must close with
		// eof/drain.
		verifyWatchPrefix(t, res.kind, res.events)
		if res.kind != "flaky" {
			if last := res.events[len(res.events)-1].event; last != "eof" && last != "drain" {
				t.Errorf("%s client ended with %q, want eof or drain", res.kind, last)
			}
		}
		finished[res.kind]++
	}
	if finished["fast"] != fastClients || finished["slow"] != slowClients || finished["flaky"] != flakyClients {
		t.Fatalf("finished clients = %v", finished)
	}

	ts.Close()
	if ws := s.Stats().Watch; ws.Active != 0 {
		t.Fatalf("streams still active after soak: %+v", ws)
	}

	// Everything the soak spawned — producers, writers, connections —
	// must wind down; allow the runtime a moment and a small slack for
	// unrelated test-runner goroutines.
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+5 {
			return
		}
		select {
		case <-deadline:
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d at baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// verifyWatchPrefix asserts a (possibly truncated) stream prefix obeys
// the protocol: hello, snapshot, diffs with contiguous ids, at most one
// trailing drain.
func verifyWatchPrefix(t *testing.T, kind string, events []sseEvent) {
	t.Helper()
	if events[0].event != "hello" {
		t.Errorf("%s client: first frame = %q, want hello", kind, events[0].event)
		return
	}
	streamGen, _ := watchID(t, events[0].id)
	for i, ev := range events {
		if ev.event == "drain" {
			if i != len(events)-1 {
				t.Errorf("%s client: drain frame %d not last of %d", kind, i, len(events))
			}
			return
		}
		gen, seq := watchID(t, ev.id)
		if gen != streamGen {
			t.Errorf("%s client: frame %d (%s) generation %s, stream started on %s", kind, i, ev.event, gen, streamGen)
			return
		}
		if seq != i {
			t.Errorf("%s client: frame %d (%s) seq = %d, want %d (sequence gap)", kind, i, ev.event, seq, i)
			return
		}
	}
}

// slowReader throttles reads to chunk bytes per pause.
type slowReader struct {
	r     io.Reader
	chunk int
	pause time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	time.Sleep(s.pause)
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.r.Read(p)
}

// limitedFrames stops reading (simulating a client hang-up) after max
// SSE frame terminators have passed.
type limitedFrames struct {
	r    io.Reader
	max  int
	seen int
	prev byte
	done bool
}

func (l *limitedFrames) Read(p []byte) (int, error) {
	if l.done {
		return 0, io.EOF
	}
	if len(p) > 32 {
		p = p[:32]
	}
	n, err := l.r.Read(p)
	for i := 0; i < n; i++ {
		if p[i] == '\n' && l.prev == '\n' {
			l.seen++
			if l.seen >= l.max {
				l.done = true
				return i + 1, io.EOF
			}
		}
		l.prev = p[i]
	}
	return n, err
}
