package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// The admission queue and circuit breaker sit on every request, so
// their no-contention fast paths must cost nanoseconds, not
// microseconds. `make bench` emits these as JSON alongside the E1–E18
// suite.

// BenchmarkAdmissionFastPath: Acquire+Release with a free slot (the
// overload-free common case; no timer may be allocated here).
func BenchmarkAdmissionFastPath(b *testing.B) {
	l := NewLimiter(64, 100*time.Millisecond)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Acquire(ctx); err != nil {
			b.Fatal(err)
		}
		l.Release()
	}
}

// BenchmarkAdmissionFastPathParallel: the same fast path under
// GOMAXPROCS-way contention on the slot channel.
func BenchmarkAdmissionFastPathParallel(b *testing.B) {
	l := NewLimiter(64, 100*time.Millisecond)
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.Acquire(ctx); err != nil {
				b.Fatal(err)
			}
			l.Release()
		}
	})
}

// BenchmarkBreakerFastPath: Allow+done(success) on a closed breaker
// (every healthy request pays this).
func BenchmarkBreakerFastPath(b *testing.B) {
	br := NewBreaker(5, 5*time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := br.Allow()
		if err != nil {
			b.Fatal(err)
		}
		done(false)
	}
}

// BenchmarkBreakerOpenRejection: the shed path while the breaker is
// open — rejections must be at least as cheap as admissions.
func BenchmarkBreakerOpenRejection(b *testing.B) {
	br := NewBreaker(1, time.Hour)
	done, err := br.Allow()
	if err != nil {
		b.Fatal(err)
	}
	done(true) // trip
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Allow(); err == nil {
			b.Fatal("breaker unexpectedly closed")
		}
	}
}

// BenchmarkMiddlewareStack: one request through the full resilience
// stack (recovery → counting → admission → deadline) to a no-op
// handler — the serving overhead on top of handler work.
func BenchmarkMiddlewareStack(b *testing.B) {
	s := New(Config{})
	noop := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := s.withRecovery(s.withCounting(s.withAdmission(s.withDeadline(noop))))
	req := httptest.NewRequest("GET", "/v1/snapshot", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
