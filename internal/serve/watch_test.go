package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// parseSSE splits an SSE stream into events, counting heartbeat
// comments separately.
func parseSSE(r io.Reader) (events []sseEvent, heartbeats int) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur sseEvent
	pending := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if pending {
				events = append(events, cur)
				cur, pending = sseEvent{}, false
			}
		case strings.HasPrefix(line, ":"):
			heartbeats++
		case strings.HasPrefix(line, "id: "):
			cur.id, pending = strings.TrimPrefix(line, "id: "), true
		case strings.HasPrefix(line, "event: "):
			cur.event, pending = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "data: "):
			cur.data, pending = strings.TrimPrefix(line, "data: "), true
		}
	}
	return events, heartbeats
}

// watchID splits a frame id "<gen>.<seq>" into its parts.
func watchID(t testing.TB, id string) (gen string, seq int) {
	t.Helper()
	genPart, seqPart, ok := strings.Cut(id, ".")
	if !ok {
		t.Fatalf("frame id %q is not <generation>.<seq>", id)
	}
	n, err := strconv.Atoi(seqPart)
	if err != nil {
		t.Fatalf("frame id %q: seq %q is not a number", id, seqPart)
	}
	return genPart, n
}

// assertWatchFrames checks the replay protocol invariants on a
// completed (or cleanly drained) stream: hello first, snapshot second,
// then diffs, closed by eof or drain, with gap-free "<gen>.<seq>" ids
// under one generation and monotonically increasing dates. It returns
// the diff frames.
func assertWatchFrames(t testing.TB, events []sseEvent) []sseEvent {
	t.Helper()
	if len(events) < 2 {
		t.Fatalf("stream too short: %d frames", len(events))
	}
	if events[0].event != "hello" {
		t.Fatalf("first frame = %q, want hello", events[0].event)
	}
	if events[1].event != "snapshot" {
		t.Fatalf("second frame = %q, want snapshot", events[1].event)
	}
	last := events[len(events)-1]
	if last.event != "eof" && last.event != "drain" {
		t.Fatalf("last frame = %q, want eof or drain", last.event)
	}
	var diffs []sseEvent
	prevDate := ""
	streamGen, _ := watchID(t, events[0].id)
	for i, ev := range events {
		if ev.event == "drain" {
			if i != len(events)-1 {
				t.Fatalf("drain frame %d is not last of %d", i, len(events))
			}
			break
		}
		gen, seq := watchID(t, ev.id)
		if gen != streamGen {
			t.Fatalf("frame %d (%s): generation %s, stream started on %s", i, ev.event, gen, streamGen)
		}
		if seq != i {
			t.Fatalf("frame %d (%s): seq = %d, want %d (sequence gap)", i, ev.event, seq, i)
		}
		if ev.event == "diff" {
			var d struct {
				Date string `json:"date"`
			}
			if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if prevDate != "" && d.Date <= prevDate {
				t.Fatalf("diff dates not increasing: %s after %s", d.Date, prevDate)
			}
			prevDate = d.Date
			diffs = append(diffs, ev)
		}
	}
	return diffs
}

// TestWatchReplayMatchesEventLog: a full-speed replay emits exactly one
// diff frame per distinct event date in the window, with gap-free ids,
// and its final cumulative state equals a direct rebuild at the last
// event date.
func TestWatchReplayMatchesEventLog(t *testing.T) {
	s := testServer(t, Config{})
	db := corpus(t)
	licensee := db.Licensees()[0]

	rec := get(t, s.Handler(), "/v1/watch?licensee="+licensee)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events, _ := parseSSE(rec.Body)
	diffs := assertWatchFrames(t, events)
	if events[len(events)-1].event != "eof" {
		t.Fatalf("undisturbed replay ended with %q, want eof", events[len(events)-1].event)
	}

	// One diff per distinct event date in (2013-01-01, 2020-04-01].
	start := uls.NewDate(2013, time.January, 1)
	end := uls.NewDate(2020, time.April, 1)
	wantDates := map[string]int{}
	var lastDate uls.Date
	for _, ev := range db.EventLog().Events(licensee) {
		if ev.Date.After(start) && !ev.Date.After(end) {
			wantDates[ev.Date.String()]++
			lastDate = ev.Date
		}
	}
	if len(diffs) != len(wantDates) {
		t.Fatalf("got %d diff frames, want %d (one per event date)", len(diffs), len(wantDates))
	}
	var hello struct {
		Diffs int `json:"diffs"`
	}
	if err := json.Unmarshal([]byte(events[0].data), &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Diffs != len(diffs) {
		t.Fatalf("hello announced %d diffs, stream carried %d", hello.Diffs, len(diffs))
	}

	var final struct {
		Date           string `json:"date"`
		Towers, Links  int
		ActiveLicenses int `json:"active_licenses"`
	}
	if err := json.Unmarshal([]byte(diffs[len(diffs)-1].data), &final); err != nil {
		t.Fatal(err)
	}
	if wantDates[final.Date] == 0 {
		t.Fatalf("final diff date %s is not an event date", final.Date)
	}
	n, err := core.DirectProvider(db).Snapshot(core.SnapshotRequest{
		Licensees: []string{licensee}, Date: lastDate,
		DCs:  []sites.DataCenter{sites.CME, sites.NY4},
		Opts: core.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var finalCounts struct {
		Towers int `json:"towers"`
		Links  int `json:"links"`
	}
	if err := json.Unmarshal([]byte(diffs[len(diffs)-1].data), &finalCounts); err != nil {
		t.Fatal(err)
	}
	if finalCounts.Towers != len(n.Towers) || finalCounts.Links != len(n.Links) {
		t.Fatalf("final frame %d towers %d links, direct rebuild has %d towers %d links",
			finalCounts.Towers, finalCounts.Links, len(n.Towers), len(n.Links))
	}
	if got := db.EventLog().ActiveCount(licensee, lastDate); final.ActiveLicenses != got {
		t.Fatalf("final active_licenses = %d, event log says %d", final.ActiveLicenses, got)
	}
}

// TestWatchResume: a dropped stream resumed with the SSE Last-Event-ID
// header continues from the next frame, and the concatenation of the
// frames the client kept with the frames the resumed stream sends is
// identical to an uninterrupted replay — no gap, no overlap, no drift.
func TestWatchResume(t *testing.T) {
	s := testServer(t, Config{})
	licensee := corpus(t).Licensees()[0]
	h := s.Handler()
	u := "/v1/watch?licensee=" + url.QueryEscape(licensee)

	resume := func(lastID string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", u, nil)
		req.Header.Set("Last-Event-ID", lastID)
		h.ServeHTTP(rec, req)
		return rec
	}

	full, _ := parseSSE(get(t, h, u).Body)
	assertWatchFrames(t, full)
	if last := full[len(full)-1]; last.event != "eof" {
		t.Fatalf("baseline replay ended with %q, want eof", last.event)
	}

	// Cut the stream after the hello, the snapshot, an early diff, a
	// middle diff, and the last diff; each resumed tail must splice
	// back into a frame-for-frame copy of the uninterrupted replay.
	for _, cut := range []int{0, 1, 2, len(full) / 2, len(full) - 2} {
		if cut < 0 || cut >= len(full)-1 {
			continue
		}
		rec := resume(full[cut].id)
		if rec.Code != http.StatusOK {
			t.Fatalf("resume after frame %d: status %d, body %s", cut, rec.Code, rec.Body.String())
		}
		resumed, _ := parseSSE(rec.Body)
		combined := append(append([]sseEvent{}, full[:cut+1]...), resumed...)
		if len(combined) != len(full) {
			t.Fatalf("resume after frame %d: %d combined frames, want %d", cut, len(combined), len(full))
		}
		for i := range full {
			if combined[i] != full[i] {
				t.Fatalf("resume after frame %d: frame %d = %+v, want %+v", cut, i, combined[i], full[i])
			}
		}
	}

	// A client that already saw the eof just gets it again, idempotently.
	eof := full[len(full)-1]
	resumed, _ := parseSSE(resume(eof.id).Body)
	if len(resumed) != 1 || resumed[0] != eof {
		t.Fatalf("resume past eof: got %+v, want just the eof frame", resumed)
	}

	// Malformed ids are a 400; the drain frame's id ("-1") starts over.
	if rec := resume("bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID: status %d, want 400", rec.Code)
	}
	events, _ := parseSSE(resume("-1").Body)
	if len(events) != len(full) {
		t.Fatalf("drain-id resume: %d frames, want a full replay of %d", len(events), len(full))
	}

	// A reload retires the pinned generation; resuming against it would
	// stitch diffs from two different histories — 409, start over.
	s.SetCorpus(corpus(t), "reloaded")
	if rec := resume(full[2].id); rec.Code != http.StatusConflict {
		t.Fatalf("resume across reload: status %d, want 409", rec.Code)
	}
}

func TestWatchBadParams(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	for _, u := range []string{
		"/v1/watch",                       // missing licensee
		"/v1/watch?licensee=x&path=bogus", // bad path
		"/v1/watch?licensee=x&speed=-2",   // negative speed
		"/v1/watch?licensee=x&from=2020&to=2013",
	} {
		if rec := get(t, h, u); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", u, rec.Code)
		}
	}
}

// TestWatchLimitHeartbeatAndDrain exercises the stream semaphore, the
// heartbeat, and graceful drain over a real connection: a paced replay
// holds the only stream slot (collecting heartbeats while it waits), a
// second request is shed, StopWatches ends the stream with a drain
// frame, and new requests are refused afterwards.
func TestWatchLimitHeartbeatAndDrain(t *testing.T) {
	s := testServer(t, Config{WatchMaxStreams: 1, WatchHeartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	licensee := corpus(t).Licensees()[0]

	// speed=0.001 virtual days/second: the first inter-event wait is
	// effectively forever, so the stream idles after the snapshot.
	resp, err := http.Get(fmt.Sprintf("%s/v1/watch?licensee=%s&speed=0.001&seed=7", ts.URL, url.QueryEscape(licensee)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	type result struct {
		events     []sseEvent
		heartbeats int
	}
	done := make(chan result, 1)
	go func() {
		evs, hbs := parseSSE(resp.Body)
		done <- result{evs, hbs}
	}()

	// Wait until the stream has demonstrably started and heartbeats had
	// time to flow, then verify the slot is held.
	time.Sleep(100 * time.Millisecond)
	shed, err := http.Get(fmt.Sprintf("%s/v1/watch?licensee=%s", ts.URL, url.QueryEscape(licensee)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, shed.Body)
	shed.Body.Close()
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream: status = %d, want 503", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("shed stream has no Retry-After")
	}

	s.StopWatches()
	var res result
	select {
	case res = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not drain after StopWatches")
	}
	if last := res.events[len(res.events)-1]; last.event != "drain" {
		t.Fatalf("stopped stream ended with %q, want drain", last.event)
	}
	assertWatchFrames(t, res.events)
	if res.heartbeats == 0 {
		t.Fatal("idle paced stream sent no heartbeats")
	}

	// Draining refuses new streams.
	refused, err := http.Get(fmt.Sprintf("%s/v1/watch?licensee=%s", ts.URL, url.QueryEscape(licensee)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, refused.Body)
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain stream: status = %d, want 503", refused.StatusCode)
	}

	ws := s.Stats().Watch
	if ws.Streams != 1 || ws.Rejected < 1 || ws.Drained != 1 || ws.Active != 0 {
		t.Fatalf("watch stats = %+v", ws)
	}
}
