package serve

import (
	"strconv"
	"testing"
	"time"

	"hftnetview/internal/store"
)

// TestRetryAfterJitter: shed hints must be integer seconds in
// [hint, 2·hint] and actually spread — identical hints retry as a
// thundering herd.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		v := RetryAfterJitter(4 * time.Second)
		n, err := strconv.Atoi(v)
		if err != nil || n < 4 || n > 8 {
			t.Fatalf("RetryAfterJitter(4s) = %q, want integer in [4,8]", v)
		}
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Errorf("200 jittered hints produced only %d distinct values %v — not spread", len(seen), seen)
	}
	// Sub-second hints still floor at 1s but may jitter to 2s.
	for i := 0; i < 50; i++ {
		n, err := strconv.Atoi(RetryAfterJitter(10 * time.Millisecond))
		if err != nil || n < 1 || n > 2 {
			t.Fatalf("RetryAfterJitter(10ms) out of [1,2]: %d err=%v", n, err)
		}
	}
}

// TestGenerationIdentity: with a store attached, /readyz and /statsz
// expose the persisted generation id, corpus digest, and age, and every
// /v1 response is stamped with the corpus it was computed from — the
// measurements a front tier needs to detect staleness without any store
// dependency.
func TestGenerationIdentity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	s := New(Config{})
	s.AttachStore(st)
	s.SetCorpus(corpus(t), "identity test")

	gi, err := st.List()
	if err != nil || len(gi) != 1 {
		t.Fatalf("store generations after SetCorpus = %v, %v; want exactly 1", gi, err)
	}
	wantGen, wantDigest := gi[0].ID, gi[0].CorpusSHA256

	h := s.Handler()

	var ready readyzBody
	ready = decode[readyzBody](t, get(t, h, "/readyz"))
	if ready.Generation == nil {
		t.Fatal("/readyz has no generation")
	}
	if ready.Generation.StoreGeneration != wantGen || ready.Generation.CorpusSHA256 != wantDigest {
		t.Errorf("/readyz identity = (%d, %q), want (%d, %q)",
			ready.Generation.StoreGeneration, ready.Generation.CorpusSHA256, wantGen, wantDigest)
	}
	if ready.Generation.AgeSeconds < 0 {
		t.Errorf("/readyz age_seconds = %v, want >= 0", ready.Generation.AgeSeconds)
	}

	stats := s.Stats()
	if stats.Generation == nil || stats.Generation.StoreGeneration != wantGen || stats.Generation.CorpusSHA256 != wantDigest {
		t.Errorf("/statsz identity = %+v, want (%d, %q)", stats.Generation, wantGen, wantDigest)
	}

	rec := get(t, h, "/v1/snapshot")
	if rec.Code != 200 {
		t.Fatalf("/v1/snapshot = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Corpus-Generation"); got != strconv.FormatInt(wantGen, 10) {
		t.Errorf("X-Corpus-Generation = %q, want %d", got, wantGen)
	}
	if got := rec.Header().Get("X-Corpus-Digest"); got != wantDigest {
		t.Errorf("X-Corpus-Digest = %q, want %q", got, wantDigest)
	}
}

// TestRegisterStats: auxiliary stats sources surface under /statsz
// "extra".
// TestPublishStoreGenerationClearsBootError: a replica that boots
// against an empty store records the warm-start failure as a persist
// error, but the first verified install it publishes proves the store
// healthy — the stale boot error must not keep /readyz degraded.
func TestPublishStoreGenerationClearsBootError(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	s := New(Config{})
	s.AttachStore(st)
	if _, err := s.WarmStart(); err == nil {
		t.Fatal("WarmStart on an empty store should fail")
	}
	if ps := s.PersistStatus(); ps.LastError == "" {
		t.Fatal("cold boot should record the warm-start failure as a persist error")
	}

	// Land a generation the way the pull loop does: it already exists
	// verified in the store, then gets published without re-persisting.
	db := corpus(t)
	gi, err := st.Save(db, "pulled")
	if err != nil {
		t.Fatal(err)
	}
	s.PublishStoreGeneration(db, gi)

	ps := s.PersistStatus()
	if ps.LastError != "" || !ps.Verified || ps.Generation != gi.ID {
		t.Fatalf("after publish: persist = %+v, want verified generation %d with no lingering error", ps, gi.ID)
	}
}

func TestRegisterStats(t *testing.T) {
	s := testServer(t, Config{})
	s.RegisterStats("pull", func() any { return map[string]int{"rejections": 3} })
	st := s.Stats()
	v, ok := st.Extra["pull"].(map[string]int)
	if !ok || v["rejections"] != 3 {
		t.Fatalf("Extra[pull] = %#v, want rejections 3", st.Extra["pull"])
	}
}
