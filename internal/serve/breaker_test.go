package serve

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.Now
	return b, clk
}

// mustAllow asserts admission and settles the unit of work.
func mustAllow(t *testing.T, b *Breaker, failure bool) {
	t.Helper()
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow() = %v, want admitted", err)
	}
	done(failure)
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)

	// Two failures, then a success: the consecutive counter resets.
	mustAllow(t, b, true)
	mustAllow(t, b, true)
	mustAllow(t, b, false)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after reset = %v, want closed", st)
	}

	// Three consecutive failures trip it.
	mustAllow(t, b, true)
	mustAllow(t, b, true)
	mustAllow(t, b, true)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, st)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}
	if st := b.Stats(); st.Trips != 1 || st.Rejections != 1 {
		t.Errorf("stats = %+v, want 1 trip, 1 rejection", st)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	mustAllow(t, b, true) // trip

	// Before the cooldown: rejected.
	clk.Advance(30 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow mid-cooldown = %v, want ErrBreakerOpen", err)
	}

	// After the cooldown: exactly one probe is admitted; a second
	// concurrent request is rejected while the probe is in flight.
	clk.Advance(31 * time.Second)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	probeDone, err := b.Allow()
	if err != nil {
		t.Fatalf("probe Allow = %v, want admitted", err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second probe = %v, want ErrBreakerOpen", err)
	}

	// Successful probe closes the breaker for everyone.
	probeDone(false)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", st)
	}
	mustAllow(t, b, false)
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	mustAllow(t, b, true) // trip
	clk.Advance(2 * time.Minute)

	probeDone, err := b.Allow()
	if err != nil {
		t.Fatalf("probe Allow = %v", err)
	}
	probeDone(true)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open again", st)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow after failed probe = %v, want ErrBreakerOpen", err)
	}
	// The re-opened cooldown starts from the probe failure.
	clk.Advance(61 * time.Second)
	probeDone, err = b.Allow()
	if err != nil {
		t.Fatalf("second probe = %v, want admitted", err)
	}
	probeDone(false)
	if st := b.Stats(); st.State != "closed" || st.Trips != 2 {
		t.Errorf("stats = %+v, want closed with 2 trips", st)
	}
}

// TestBreakerStaleOutcomeIgnored: a closed-state request that settles
// after a probe already closed/opened the breaker must not flap it.
func TestBreakerStaleOutcomeIgnored(t *testing.T) {
	b, clk := testBreaker(2, time.Minute)
	slowDone, err := b.Allow() // closed-state request, settles late
	if err != nil {
		t.Fatal(err)
	}
	mustAllow(t, b, true)
	mustAllow(t, b, true) // trips
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	slowDone(true) // stale: breaker is open, must be a no-op
	clk.Advance(2 * time.Minute)
	probeDone, err := b.Allow()
	if err != nil {
		t.Fatalf("probe after stale outcome = %v, want admitted", err)
	}
	probeDone(false)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

// TestBreakerConcurrent: hammering Allow/done from many goroutines
// stays race-free and the automaton's counters stay coherent.
func TestBreakerConcurrent(t *testing.T) {
	b, _ := testBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				done, err := b.Allow()
				if err != nil {
					continue
				}
				done(i%7 == 0)
			}
		}(g)
	}
	wg.Wait()
	st := b.Stats()
	if st.Trips < 0 || st.Rejections < 0 {
		t.Fatalf("negative counters: %+v", st)
	}
	// Settle whatever state the storm left: the breaker must still be
	// operable.
	deadline := time.Now().Add(time.Second)
	for {
		done, err := b.Allow()
		if err == nil {
			done(false)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker wedged after concurrent storm")
		}
		time.Sleep(time.Millisecond)
	}
}
