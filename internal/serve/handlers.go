package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/engine"
	"hftnetview/internal/entity"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// Handler returns the service's HTTP surface. Query endpoints run the
// full resilience stack (recovery → counting → admission → deadline);
// the health/status endpoints bypass admission so they answer even
// while the query surface is saturated.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	query := func(h http.HandlerFunc) http.Handler {
		return s.withCounting(s.withAdmission(s.withDeadline(h)))
	}
	mux.Handle("/v1/snapshot", query(s.handleSnapshot))
	mux.Handle("/v1/rank", query(s.handleRank))
	mux.Handle("/v1/evolution", query(s.handleEvolution))
	mux.Handle("/v1/apa", query(s.handleAPA))

	// The replay stream is long-lived, so it skips admission and the
	// per-request deadline; its own semaphore bounds concurrency (see
	// watch.go).
	mux.Handle("/v1/watch", s.withCounting(http.HandlerFunc(s.handleWatch)))

	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statsz", s.handleStatsz)

	return s.withRecovery(mux)
}

// ctxProvider adapts a generation's engine to core.SnapshotProvider
// with every snapshot wait bounded by the request context, so the
// per-request deadline reaches into each reconstruction the analyses
// fan out.
type ctxProvider struct {
	ctx context.Context
	eng *engine.Engine
}

func (p ctxProvider) DB() *uls.Database { return p.eng.DB() }

func (p ctxProvider) Snapshot(req core.SnapshotRequest) (*core.Network, error) {
	return p.eng.SnapshotContext(p.ctx, req)
}

func (p ctxProvider) Snapshots(reqs []core.SnapshotRequest) ([]*core.Network, error) {
	return core.SnapshotsParallel(p, reqs)
}

// EvolutionSweep forwards core.EvolutionSweeper to the engine's linear
// event-log pass, keeping the request context on every anchor
// snapshot — core.EvolutionVia over a ctxProvider takes the delta
// sweep, not the legacy per-date path.
func (p ctxProvider) EvolutionSweep(licensee string, path sites.Path, dates []uls.Date, opts core.Options) ([]core.EvolutionPoint, error) {
	return p.eng.EvolutionSweepContext(p.ctx, licensee, path, dates, opts)
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// runQuery wraps one engine-backed analysis in the circuit breaker and
// failure accounting: engine failures (timeouts, rebuild errors) count
// against the breaker; client-side cancellation does not. It writes the
// error response on failure and reports whether the caller should
// proceed to render results.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, f func(p core.SnapshotProvider, g *generation) error) bool {
	g := s.gen.Load()
	if g == nil {
		w.Header().Set("Retry-After", RetryAfterJitter(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "no corpus loaded")
		return false
	}
	// Every query response names the exact corpus it was computed from:
	// the fleet's chaos soak asserts wrong-generation responses are
	// impossible by checking these against the primary's published set.
	if g.storeGen > 0 {
		w.Header().Set("X-Corpus-Generation", strconv.FormatInt(g.storeGen, 10))
	}
	if g.digest != "" {
		w.Header().Set("X-Corpus-Digest", g.digest)
	}
	done, err := s.breaker.Allow()
	if err != nil {
		s.counters.rejected.Add(1)
		w.Header().Set("Retry-After", RetryAfterJitter(s.cfg.BreakerCooldown))
		writeError(w, http.StatusServiceUnavailable, "engine circuit breaker open")
		return false
	}
	err = f(ctxProvider{ctx: r.Context(), eng: g.eng}, g)
	switch engine.Classify(err) {
	case engine.FailureNone:
		done(false)
		return true
	case engine.FailureCanceled:
		// The client hung up; the engine is fine.
		done(false)
		writeError(w, statusClientClosedRequest, "client canceled")
	case engine.FailureTimeout:
		s.counters.failures.Add(1)
		done(true)
		writeError(w, http.StatusGatewayTimeout, fmt.Sprintf("query deadline exceeded: %v", err))
	default: // FailureRebuild
		s.counters.failures.Add(1)
		done(true)
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("reconstruction failed: %v", err))
	}
	return false
}

// --- query parameter parsing ---

// paperSnapshot is the default as-of date, the paper's 1 April 2020.
func paperSnapshot() uls.Date { return uls.NewDate(2020, time.April, 1) }

func parseDate(r *http.Request) (uls.Date, error) {
	q := r.URL.Query().Get("date")
	if q == "" {
		return paperSnapshot(), nil
	}
	d, err := uls.ParseDate(q)
	if err != nil || d.IsZero() {
		return uls.Date{}, fmt.Errorf("bad date %q (want YYYY-MM-DD or MM/DD/YYYY)", q)
	}
	return d, nil
}

func parsePath(r *http.Request) (sites.Path, error) {
	q := r.URL.Query().Get("path")
	if q == "" {
		return sites.Path{From: sites.CME, To: sites.NY4}, nil
	}
	from, to, ok := strings.Cut(q, "-")
	if !ok {
		return sites.Path{}, fmt.Errorf("bad path %q (want FROM-TO, e.g. CME-NY4)", q)
	}
	a, okA := sites.ByCode(strings.ToUpper(from))
	b, okB := sites.ByCode(strings.ToUpper(to))
	if !okA || !okB {
		return sites.Path{}, fmt.Errorf("unknown data center in path %q (codes: CME, NY4, NYSE, NASDAQ)", q)
	}
	return sites.Path{From: a, To: b}, nil
}

func parseInt(r *http.Request, name string, def int) (int, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q (want an integer)", name, q)
	}
	return n, nil
}

// --- response DTOs ---

// networkRow is one connected network: the Table 1 row shape.
type networkRow struct {
	Licensee      string  `json:"licensee"`
	LatencyMicros float64 `json:"latency_us"`
	APA           float64 `json:"apa"`
	Towers        int     `json:"towers"`
	Hops          int     `json:"hops"`
}

func toRow(s core.NetworkSummary) networkRow {
	return networkRow{
		Licensee:      s.Licensee,
		LatencyMicros: s.Latency.Microseconds(),
		APA:           s.APA,
		Towers:        s.TowerCount,
		Hops:          s.HopCount,
	}
}

// --- endpoints ---

// handleSnapshot serves /v1/snapshot: the networks with an end-to-end
// route on the path at the date, in latency order (Table 1).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	date, err := parseDate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	path, err := parsePath(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	type resp struct {
		Date       string       `json:"date"`
		Path       string       `json:"path"`
		Generation int64        `json:"generation"`
		Networks   []networkRow `json:"networks"`
	}
	var out resp
	if !s.runQuery(w, r, func(p core.SnapshotProvider, g *generation) error {
		rows, err := core.ConnectedNetworksVia(p, date, path, core.DefaultOptions())
		if err != nil {
			return err
		}
		out = resp{Date: date.String(), Path: path.Name(), Generation: g.id,
			Networks: make([]networkRow, 0, len(rows))}
		for _, row := range rows {
			out.Networks = append(out.Networks, toRow(row))
		}
		return nil
	}) {
		return
	}
	writeJSON(w, out)
}

// handleRank serves /v1/rank: the fastest networks per corridor path
// (Table 2), optionally truncated with ?top=N.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	date, err := parseDate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	top, err := parseInt(r, "top", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	type ranking struct {
		Path         string       `json:"path"`
		GeodesicKM   float64      `json:"geodesic_km"`
		Ranked       []networkRow `json:"ranked"`
		GeodesicRTTu float64      `json:"geodesic_rtt_us"`
	}
	type resp struct {
		Date       string    `json:"date"`
		Generation int64     `json:"generation"`
		Paths      []ranking `json:"paths"`
	}
	var out resp
	if !s.runQuery(w, r, func(p core.SnapshotProvider, g *generation) error {
		ranks, err := core.RankNetworksVia(p, date, sites.CorridorPaths(), top, core.DefaultOptions())
		if err != nil {
			return err
		}
		out = resp{Date: date.String(), Generation: g.id}
		for _, pr := range ranks {
			rk := ranking{
				Path:         pr.Path.Name(),
				GeodesicKM:   pr.GeodesicMeters / 1e3,
				GeodesicRTTu: 2 * pr.GeodesicMeters / 299792458.0 * 1e6,
				Ranked:       make([]networkRow, 0, len(pr.Ranked)),
			}
			for _, row := range pr.Ranked {
				rk.Ranked = append(rk.Ranked, toRow(row))
			}
			out.Paths = append(out.Paths, rk)
		}
		return nil
	}) {
		return
	}
	writeJSON(w, out)
}

// handleEvolution serves /v1/evolution: one licensee's longitudinal
// trajectory (Figs 1–2) over ?from/?to years of paper sample dates.
func (s *Server) handleEvolution(w http.ResponseWriter, r *http.Request) {
	licensee := r.URL.Query().Get("licensee")
	if licensee == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter: licensee")
		return
	}
	path, err := parsePath(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	from, err := parseInt(r, "from", 2013)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := parseInt(r, "to", 2020)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if from > to {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("from=%d after to=%d", from, to))
		return
	}
	type point struct {
		Date           string  `json:"date"`
		Connected      bool    `json:"connected"`
		LatencyMicros  float64 `json:"latency_us,omitempty"`
		ActiveLicenses int     `json:"active_licenses"`
	}
	type resp struct {
		Licensee   string  `json:"licensee"`
		Path       string  `json:"path"`
		Generation int64   `json:"generation"`
		Points     []point `json:"points"`
	}
	var out resp
	if !s.runQuery(w, r, func(p core.SnapshotProvider, g *generation) error {
		pts, err := core.EvolutionVia(p, licensee, path, core.PaperSampleDates(from, to), core.DefaultOptions())
		if err != nil {
			return err
		}
		out = resp{Licensee: licensee, Path: path.Name(), Generation: g.id,
			Points: make([]point, 0, len(pts))}
		for _, pt := range pts {
			jp := point{Date: pt.Date.String(), Connected: pt.Connected,
				ActiveLicenses: pt.ActiveLicenses}
			if pt.Connected {
				jp.LatencyMicros = pt.Latency.Microseconds()
			}
			out.Points = append(out.Points, jp)
		}
		return nil
	}) {
		return
	}
	writeJSON(w, out)
}

// handleAPA serves /v1/apa: per-network alternate-path availability on
// the path at the date (§5), plus the complementary licensee pairs
// whose union closes an end-to-end route (§2.4).
func (s *Server) handleAPA(w http.ResponseWriter, r *http.Request) {
	date, err := parseDate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	path, err := parsePath(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	type apaRow struct {
		Licensee      string  `json:"licensee"`
		APA           float64 `json:"apa"`
		LatencyMicros float64 `json:"latency_us"`
	}
	type pairRow struct {
		A, B          string  `json:"-"`
		Pair          string  `json:"pair"`
		LatencyMicros float64 `json:"latency_us"`
	}
	type resp struct {
		Date          string    `json:"date"`
		Path          string    `json:"path"`
		Generation    int64     `json:"generation"`
		Networks      []apaRow  `json:"networks"`
		Complementary []pairRow `json:"complementary_pairs"`
	}
	var out resp
	if !s.runQuery(w, r, func(p core.SnapshotProvider, g *generation) error {
		rows, err := core.ConnectedNetworksVia(p, date, path, core.DefaultOptions())
		if err != nil {
			return err
		}
		pairs, err := entity.ComplementaryPairsVia(p, date, path, nil, core.DefaultOptions())
		if err != nil {
			return err
		}
		out = resp{Date: date.String(), Path: path.Name(), Generation: g.id,
			Networks: make([]apaRow, 0, len(rows)), Complementary: []pairRow{}}
		for _, row := range rows {
			out.Networks = append(out.Networks, apaRow{
				Licensee: row.Licensee, APA: row.APA,
				LatencyMicros: row.Latency.Microseconds(),
			})
		}
		for _, pr := range pairs {
			out.Complementary = append(out.Complementary, pairRow{
				Pair:          pr.A + " + " + pr.B,
				LatencyMicros: pr.Latency.Microseconds(),
			})
		}
		return nil
	}) {
		return
	}
	writeJSON(w, out)
}

// handleHealthz is liveness: the process is up and the handler loop
// responds. Always 200.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyzBody is the /readyz payload.
type readyzBody struct {
	Ready           bool            `json:"ready"`
	Degraded        bool            `json:"degraded,omitempty"`
	Breaker         string          `json:"breaker"`
	Generation      *generationInfo `json:"generation,omitempty"`
	LastReloadError string          `json:"last_reload_error,omitempty"`
	Persist         *PersistStatus  `json:"persist,omitempty"`
}

// handleReadyz is readiness: 503 until a corpus generation is
// installed, 200 thereafter. A failed hot reload does not flip
// readiness (the old generation keeps serving) but surfaces here as
// degraded with the reload error.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := readyzBody{Breaker: s.breaker.State().String()}
	g := s.gen.Load()
	if g != nil {
		info := g.info()
		body.Ready = true
		body.Generation = &info
	}
	if rs := s.ReloadStatus(); rs.LastError != "" {
		body.Degraded = true
		body.LastReloadError = rs.LastError
	}
	if ps := s.PersistStatus(); ps.Enabled {
		body.Persist = &ps
		if ps.LastError != "" {
			body.Degraded = true
		}
	}
	if !body.Ready {
		w.Header().Set("Retry-After", RetryAfterJitter(s.cfg.RetryAfter))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(body)
		return
	}
	writeJSON(w, body)
}

// handleStatsz serves the counter snapshot.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}
