package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestLimiterFastPath(t *testing.T) {
	l := NewLimiter(2, 0)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire = %v, want ErrOverloaded (maxWait 0)", err)
	}
	if got := l.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	l.Release()
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// TestLimiterQueueAdmitsWithinWait: a queued request is admitted when a
// slot frees before maxWait.
func TestLimiterQueueAdmitsWithinWait(t *testing.T) {
	l := NewLimiter(1, 2*time.Second)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		l.Release()
	}()
	start := time.Now()
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("queued acquire = %v, want admitted after release", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("waited %v, want ~20ms", waited)
	}
}

func TestLimiterShedsAfterMaxWait(t *testing.T) {
	l := NewLimiter(1, 20*time.Millisecond)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire = %v, want ErrOverloaded after maxWait", err)
	}
}

func TestLimiterRespectsContext(t *testing.T) {
	l := NewLimiter(1, time.Minute)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := l.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire = %v, want context.Canceled", err)
	}
}

// TestAdmissionMiddlewareSheds: beyond MaxInFlight + queue, requests
// get 503 with a Retry-After hint, and the shed counter moves.
func TestAdmissionMiddlewareSheds(t *testing.T) {
	s := New(Config{MaxInFlight: 2, MaxQueueWait: 10 * time.Millisecond, RetryAfter: 3 * time.Second})
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	h := s.withAdmission(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-block
	}))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/snapshot", nil))
		}()
	}
	<-started
	<-started

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshot", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", rec.Header().Get("Retry-After"))
	}
	if shed := s.counters.shed.Load(); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}
	close(block)
	wg.Wait()
}

// TestRecoveryMiddleware: a panicking handler becomes a 500; the
// process (and the next request) lives on.
func TestRecoveryMiddleware(t *testing.T) {
	s := New(Config{})
	calls := 0
	h := s.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			panic("boom")
		}
		w.WriteHeader(http.StatusOK)
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshot", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request status = %d, want 500", rec.Code)
	}
	if p := s.counters.panics.Load(); p != 1 {
		t.Errorf("panics counter = %d, want 1", p)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("request after panic status = %d, want 200", rec.Code)
	}
}

// TestDeadlineMiddleware: the per-request deadline reaches the handler
// through the request context.
func TestDeadlineMiddleware(t *testing.T) {
	s := New(Config{RequestTimeout: 30 * time.Millisecond})
	h := s.withDeadline(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dl, ok := r.Context().Deadline()
		if !ok {
			t.Error("handler context has no deadline")
		}
		if until := time.Until(dl); until > 30*time.Millisecond {
			t.Errorf("deadline %v away, want <= 30ms", until)
		}
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
			t.Error("context never expired")
		}
		w.WriteHeader(http.StatusGatewayTimeout)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshot", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
}
