package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// ErrOverloaded is returned by Limiter.Acquire when a request cannot be
// admitted: every slot is busy and none freed within the admission
// queue's maximum wait. Handlers translate it into 503 + Retry-After.
var ErrOverloaded = errors.New("serve: admission queue full")

// Limiter is a bounded concurrency limiter with a max-wait admission
// queue: up to `slots` requests run at once, and an arriving request
// waits at most maxWait for a slot before being shed. The zero wait
// still performs one non-blocking try, so a limiter with maxWait 0
// degenerates to a plain semaphore.
type Limiter struct {
	slots   chan struct{}
	maxWait time.Duration
}

// NewLimiter returns a limiter admitting n concurrent requests with the
// given maximum admission-queue wait.
func NewLimiter(n int, maxWait time.Duration) *Limiter {
	if n < 1 {
		n = 1
	}
	return &Limiter{slots: make(chan struct{}, n), maxWait: maxWait}
}

// Acquire admits the request or sheds it. The fast path (a free slot)
// never allocates a timer. A nil return means the caller holds a slot
// and MUST call Release exactly once.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	if l.maxWait <= 0 {
		return ErrOverloaded
	}
	t := time.NewTimer(l.maxWait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-t.C:
		return ErrOverloaded
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees the slot held by a successful Acquire.
func (l *Limiter) Release() { <-l.slots }

// InFlight returns the number of currently admitted requests.
func (l *Limiter) InFlight() int { return len(l.slots) }

// withRecovery converts a handler panic into a 500 without killing the
// process: the always-on service must survive any single bad request.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.counters.panics.Add(1)
				log.Printf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				// Headers may already be out; WriteHeader after that is
				// a no-op plus a log line, which is the best available.
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withAdmission is the load-shedding gate: a request that cannot get a
// slot within the admission queue's max wait is shed with 503 and a
// Retry-After hint instead of piling onto an already saturated engine.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := s.limiter.Acquire(r.Context()); err != nil {
			if errors.Is(err, ErrOverloaded) {
				s.counters.shed.Add(1)
				w.Header().Set("Retry-After", RetryAfterJitter(s.cfg.RetryAfter))
				writeError(w, http.StatusServiceUnavailable, "overloaded: admission queue full")
				return
			}
			// Client went away while queued.
			writeError(w, statusClientClosedRequest, "client canceled while queued")
			return
		}
		defer s.limiter.Release()
		next.ServeHTTP(w, r)
	})
}

// withDeadline propagates the per-request deadline via the request
// context so every engine wait downstream is bounded.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// withCounting counts every request entering the query surface.
func (s *Server) withCounting(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.counters.requests.Add(1)
		next.ServeHTTP(w, r)
	})
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the response; nothing useful can be sent, but the
// status keeps the access accounting honest.
const statusClientClosedRequest = 499

// RetryAfterJitter renders a Retry-After header value: the configured
// hint plus up to one hint's worth of uniform jitter, at least 1s (the
// header is integer seconds; rounding a sub-second hint to 0 would
// invite an immediate retry stampede). The jitter matters at fleet
// scale: a shed wave given one identical Retry-After retries as a
// synchronized thundering herd, re-saturating a recovering service at
// exactly t+hint; spreading the hints over [hint, 2·hint] spreads the
// retries too. The front tier reuses this for its own shed responses.
func RetryAfterJitter(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs + rand.IntN(secs+1))
}
