package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/engine"
	"hftnetview/internal/sites"
	"hftnetview/internal/store"
	"hftnetview/internal/uls"
)

// Persistence wiring: with a store attached, the server boots warm
// from the newest crash-safe generation on disk (serving within
// milliseconds, before any bulk file is re-ingested) and persists
// every corpus it publishes — the initial load, SIGHUP reloads, and
// background hot swaps — as a new verified generation. Persistence is
// strictly subordinate to serving: a failed Save never fails the
// publish; it is logged and surfaced on /readyz and /statsz.

// PersistStatus is the persistence layer's health, surfaced on /readyz
// and /statsz.
type PersistStatus struct {
	// Enabled reports whether a store is attached.
	Enabled bool `json:"enabled"`
	// Boot is how this process obtained its first corpus: "warm" (the
	// store's newest verified generation) or "cold" (bulk ingest or
	// synthesis).
	Boot string `json:"boot,omitempty"`
	// Generation is the id of the newest persisted (or recovered)
	// generation.
	Generation int64 `json:"generation,omitempty"`
	// Verified reports whether that generation's checksums are known
	// good (always true for recovered generations; true for saved ones
	// once the save commits).
	Verified bool `json:"verified,omitempty"`
	// LastSaved is when the newest generation was persisted, RFC 3339.
	LastSaved string `json:"last_saved,omitempty"`
	// LastError is the most recent persistence failure ("" when the
	// last operation succeeded).
	LastError string `json:"last_error,omitempty"`
	// Discarded counts generations recovery had to throw away (torn
	// writes, checksum mismatches) during the last warm start.
	Discarded int `json:"discarded,omitempty"`
	// Prewarmed counts the default-surface snapshots primed into the
	// engine's memo store after the last warm start (0 until the
	// background prewarm finishes).
	Prewarmed int `json:"prewarmed,omitempty"`
	// KeyframesLoaded counts the replay keyframes imported into the
	// engine from the store's sidecar on the last warm start; keyframes
	// are advisory, so a missing or mismatched sidecar just leaves this
	// 0.
	KeyframesLoaded int `json:"keyframes_loaded,omitempty"`
	// KeyframesSaved counts the replay keyframes in the last exported
	// sidecar.
	KeyframesSaved int `json:"keyframes_saved,omitempty"`
}

// persistState is the server's attachment point for a store.
type persistState struct {
	mu     sync.Mutex
	st     *store.Store
	status PersistStatus
}

// AttachStore binds a crash-safe generation store to the server. From
// this point every published corpus is persisted as a new generation;
// call WarmStart before the first publish to boot from disk. Boot mode
// reports "cold" until a WarmStart succeeds.
func (s *Server) AttachStore(st *store.Store) {
	s.persist.mu.Lock()
	defer s.persist.mu.Unlock()
	s.persist.st = st
	s.persist.status.Enabled = true
	if s.persist.status.Boot == "" {
		s.persist.status.Boot = "cold"
	}
}

// PersistStatus returns a copy of the persistence health.
func (s *Server) PersistStatus() PersistStatus {
	s.persist.mu.Lock()
	defer s.persist.mu.Unlock()
	return s.persist.status
}

// WarmStart recovers the newest fully verified generation from the
// attached store and publishes it as the live corpus — without
// re-persisting what was just read back. The report (never nil when a
// store is attached) accounts for any newer generations recovery had
// to discard. On error — including store.ErrNoGeneration for an empty
// store — nothing is published and the caller should fall back to a
// cold boot.
func (s *Server) WarmStart() (*store.RecoveryReport, error) {
	s.persist.mu.Lock()
	st := s.persist.st
	s.persist.mu.Unlock()
	if st == nil {
		return nil, fmt.Errorf("serve: warm start without an attached store")
	}

	db, gi, rep, err := st.Load()

	s.persist.mu.Lock()
	defer s.persist.mu.Unlock()
	if rep != nil {
		s.persist.status.Discarded = len(rep.Discarded)
	}
	if err != nil {
		s.persist.status.LastError = err.Error()
		return rep, err
	}
	s.persist.status.Boot = "warm"
	s.persist.status.Generation = gi.ID
	s.persist.status.Verified = true
	s.persist.status.LastError = ""
	s.publishMeta(db, fmt.Sprintf("store generation %d: %s", gi.ID, gi.Source), gi.ID, gi.CorpusSHA256)
	// The corpus serves immediately; the rest of "fast" fills in the
	// background: restore persisted replay keyframes first (so prewarm
	// replays from them instead of from scratch), then prime the memo
	// store with the default query surface.
	go func() {
		s.restoreKeyframes()
		s.prewarmDefaults()
	}()
	return rep, nil
}

// restoreKeyframes seeds the live engine's replay tracks from the
// store's keyframe sidecar for the recovered generation. Keyframes are
// advisory: any failure (no sidecar, torn write, wrong corpus digest)
// is a silent cold start for the replay path, never a boot problem.
func (s *Server) restoreKeyframes() {
	s.persist.mu.Lock()
	st := s.persist.st
	s.persist.mu.Unlock()
	g := s.gen.Load()
	if st == nil || g == nil || g.storeGen <= 0 || g.digest == "" {
		return
	}
	payload, err := st.LoadKeyframes(g.storeGen)
	if err != nil {
		return
	}
	var kf engine.KeyframeExport
	if json.Unmarshal(payload, &kf) != nil || kf.CorpusSHA256 != g.digest {
		return
	}
	n := g.eng.ImportKeyframes(kf)
	if n > 0 {
		log.Printf("serve: restored %d replay keyframes for store generation %d", n, g.storeGen)
	}
	s.persist.mu.Lock()
	s.persist.status.KeyframesLoaded = n
	s.persist.mu.Unlock()
}

// exportKeyframes persists the live engine's replay keyframes next to
// the generation they were computed against. Best-effort by design —
// a failure costs the next boot's warm replay, nothing else.
func (s *Server) exportKeyframes() {
	s.persist.mu.Lock()
	st := s.persist.st
	s.persist.mu.Unlock()
	g := s.gen.Load()
	if st == nil || g == nil || g.storeGen <= 0 || g.digest == "" {
		return
	}
	kf := g.eng.ExportKeyframes(g.digest)
	if len(kf.Tracks) == 0 {
		return
	}
	count := 0
	for _, t := range kf.Tracks {
		count += len(t.Keyframes)
	}
	payload, err := json.Marshal(kf)
	if err != nil {
		return
	}
	if err := st.SaveKeyframes(g.storeGen, payload); err != nil {
		log.Printf("serve: exporting %d replay keyframes failed (ignored): %v", count, err)
		return
	}
	s.persist.mu.Lock()
	s.persist.status.KeyframesSaved = count
	s.persist.mu.Unlock()
}

// prewarmDefaults primes the live generation's engine with the default
// query surface — one snapshot per licensee on the default corridor
// path at the paper snapshot date, exactly the requests the zero-
// parameter /v1/snapshot fans out — and records the count. A warm boot
// restores the corpus in milliseconds but an empty memo store; this
// closes the remaining gap between "serving" and "fast".
func (s *Server) prewarmDefaults() {
	g := s.gen.Load()
	if g == nil {
		return
	}
	path := sites.Path{From: sites.CME, To: sites.NY4}
	licensees := g.db.Licensees()
	reqs := make([]core.SnapshotRequest, len(licensees))
	for i, name := range licensees {
		reqs[i] = core.SnapshotRequest{
			Licensees: []string{name},
			Date:      paperSnapshot(),
			DCs:       []sites.DataCenter{path.From, path.To},
			Opts:      core.DefaultOptions(),
		}
	}
	start := time.Now()
	n := g.eng.Prewarm(context.Background(), reqs)
	log.Printf("serve: prewarmed %d/%d default snapshots in %v", n, len(reqs), time.Since(start).Round(time.Millisecond))

	s.persist.mu.Lock()
	s.persist.status.Prewarmed = n
	s.persist.mu.Unlock()
}

// persistCorpus saves a just-published corpus as a new store
// generation. A no-op without an attached store; a Save failure leaves
// the in-memory generation serving and is surfaced as degraded health.
func (s *Server) persistCorpus(db *uls.Database, source string) {
	s.persist.mu.Lock()
	st := s.persist.st
	s.persist.mu.Unlock()
	if st == nil {
		return
	}

	gi, err := st.Save(db, source)

	s.persist.mu.Lock()
	if err != nil {
		s.persist.status.LastError = err.Error()
		s.persist.mu.Unlock()
		log.Printf("serve: persisting generation failed (serving continues): %v", err)
		return
	}
	s.persist.status.Generation = gi.ID
	s.persist.status.Verified = true
	s.persist.status.LastSaved = gi.CreatedAt.UTC().Format(time.RFC3339)
	s.persist.status.LastError = ""
	s.persist.mu.Unlock()

	// The corpus now has a durable cross-process identity; stamp it on
	// the live generation so /readyz and the /v1 response headers carry
	// it.
	s.annotateStoreIdentity(db, gi.ID, gi.CorpusSHA256)
}

// PublishStoreGeneration atomically swaps in a corpus that already
// exists as a verified generation in this server's attached store —
// the replica pull loop's publish path. Unlike SetCorpus it does not
// re-persist (the store just installed these exact bytes); the store
// identity is stamped directly so staleness probes and response
// headers reflect the shipped generation id immediately.
func (s *Server) PublishStoreGeneration(db *uls.Database, gi *store.GenInfo) {
	s.publishMeta(db, fmt.Sprintf("store generation %d: %s", gi.ID, gi.Source), gi.ID, gi.CorpusSHA256)

	s.persist.mu.Lock()
	s.persist.status.Generation = gi.ID
	s.persist.status.Verified = true
	s.persist.status.LastSaved = gi.CreatedAt.UTC().Format(time.RFC3339)
	// The store demonstrably holds a verified generation now, so a
	// stale boot-time failure (cold start: "no verified generation")
	// must not keep reporting the replica as degraded.
	s.persist.status.LastError = ""
	s.persist.mu.Unlock()
}

// CloseStore detaches and closes the attached store, sweeping any temp
// debris a crashed or failed save left behind. The live engine's
// replay keyframes are exported first, so the next boot of this data
// directory replays warm. Idempotent, and a no-op when no store is
// attached; wired into graceful shutdown so a terminating service
// never strands temp directories.
func (s *Server) CloseStore() error {
	s.exportKeyframes()
	s.persist.mu.Lock()
	st := s.persist.st
	s.persist.st = nil
	s.persist.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Close()
}
