package serve

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the breaker is
// rejecting work: the engine has failed repeatedly and is being given
// time to recover. Handlers translate it into 503 + Retry-After.
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: all work is rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe is admitted; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String renders the state for /statsz and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker is a circuit breaker around engine rebuilds. It trips after
// `threshold` consecutive failures (rebuild errors or timeouts, as
// classified by the caller), rejects everything for `cooldown`, then
// admits exactly one half-open probe: a successful probe closes the
// breaker, a failed one re-opens it for another cooldown. All methods
// are safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu          sync.Mutex
	state       BreakerState
	consecutive int       // consecutive failures while closed
	openedAt    time.Time // when the breaker last tripped
	probing     bool      // a half-open probe is in flight
	trips       int64
	rejections  int64
}

// NewBreaker returns a closed breaker that trips after threshold
// consecutive failures and stays open for cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow asks to run one unit of work. On nil error the caller MUST
// invoke the returned done function exactly once with whether the work
// failed (in the breaker's sense — timeouts and engine errors, not
// client errors). ErrBreakerOpen means the work is rejected.
func (b *Breaker) Allow() (done func(failure bool), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()

	if b.state == BreakerOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.rejections++
			return nil, ErrBreakerOpen
		}
		// Cooldown over: move to half-open and admit one probe.
		b.state = BreakerHalfOpen
		b.probing = false
	}
	if b.state == BreakerHalfOpen {
		if b.probing {
			b.rejections++
			return nil, ErrBreakerOpen
		}
		b.probing = true
		return b.probeDone, nil
	}
	return b.closedDone, nil
}

// closedDone settles one closed-state unit of work.
func (b *Breaker) closedDone(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		// A probe already settled the state while this request was in
		// flight; stale outcomes must not flap the automaton.
		return
	}
	if !failure {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.trip()
	}
}

// probeDone settles the half-open probe.
func (b *Breaker) probeDone(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen {
		return
	}
	b.probing = false
	if failure {
		b.trip()
		return
	}
	b.state = BreakerClosed
	b.consecutive = 0
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.consecutive = 0
	b.trips++
}

// State returns the breaker's current state, advancing open → half-open
// when the cooldown has elapsed (so status endpoints report "half-open"
// as soon as a probe would be admitted).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// BreakerStats is a consistent snapshot of the breaker's counters.
type BreakerStats struct {
	State       string `json:"state"`
	Consecutive int    `json:"consecutive_failures"`
	Trips       int64  `json:"trips"`
	Rejections  int64  `json:"rejections"`
}

// Stats returns the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	state := b.State().String()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:       state,
		Consecutive: b.consecutive,
		Trips:       b.trips,
		Rejections:  b.rejections,
	}
}
