package geo

import "testing"

// FuzzParseDMS asserts the DMS parser never panics and accepted values
// re-render losslessly.
func FuzzParseDMS(f *testing.F) {
	for _, s := range []string{
		"", "41-47-45.0 N", "88-14-33.0 W", "41 47 45.0 N", "0-00-00.0 N",
		"179-59-59.9 E", "91-00-00.0 N", "x-47-45.0 N", "41-47-45.0 Q",
		"- - - N", "41-47-45.0  N",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDMS(s)
		if err != nil {
			return
		}
		if !d.Valid() {
			t.Fatalf("ParseDMS(%q) accepted invalid DMS %+v", s, d)
		}
		back, err := ParseDMS(d.String())
		if err != nil {
			t.Fatalf("rendered DMS %q failed to parse: %v", d.String(), err)
		}
		// The canonical rendering is 0.1" resolution, so compare there.
		if back.Degrees != d.Degrees || back.Minutes != d.Minutes ||
			back.Direction != d.Direction {
			t.Fatalf("round trip changed %+v to %+v", d, back)
		}
	})
}
