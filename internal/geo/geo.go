// Package geo provides the geodesy substrate used throughout HFTNetView:
// great-circle and ellipsoidal distance computation on the WGS84 Earth
// model, bearings, destination points, cross-track distances, and parsing
// of coordinates in the degrees-minutes-seconds form used by FCC ULS
// filings.
//
// All distances are in meters and all angles at the API boundary are in
// degrees unless a name says otherwise. Latitude is positive north,
// longitude positive east (so the Chicago–New Jersey corridor lies at
// longitudes around -74 to -88).
package geo

import (
	"errors"
	"fmt"
	"math"
)

// WGS84 ellipsoid constants.
const (
	// EquatorialRadius is the WGS84 semi-major axis in meters.
	EquatorialRadius = 6378137.0
	// PolarRadius is the WGS84 semi-minor axis in meters.
	PolarRadius = 6356752.314245
	// Flattening is the WGS84 flattening f = (a-b)/a.
	Flattening = 1.0 / 298.257223563
	// MeanRadius is the IUGG mean Earth radius R1 in meters, used by the
	// spherical (haversine) fallback.
	MeanRadius = 6371008.8
)

// Point is a geographic coordinate on the WGS84 ellipsoid.
type Point struct {
	Lat float64 // degrees, [-90, 90]
	Lon float64 // degrees, [-180, 180]
}

// String renders the point with the ~0.1 m precision the FCC records carry.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies within the legal lat/lon ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// radians converts degrees to radians.
func radians(deg float64) float64 { return deg * math.Pi / 180 }

// degrees converts radians to degrees.
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Haversine returns the great-circle distance in meters between a and b on
// a sphere of MeanRadius. It is accurate to ~0.5% against the ellipsoid and
// is used as a cheap lower bound and as a cross-check for Vincenty.
func Haversine(a, b Point) float64 {
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * MeanRadius * math.Asin(math.Sqrt(h))
}

// ErrNoConvergence is returned by Distance when the Vincenty iteration
// fails to converge (nearly antipodal points).
var ErrNoConvergence = errors.New("geo: vincenty iteration did not converge")

// vincentyInverse solves the geodesic inverse problem on the WGS84
// ellipsoid, returning distance in meters and the initial and final
// bearings in radians.
func vincentyInverse(a, b Point) (dist, alpha1, alpha2 float64, err error) {
	if a == b {
		return 0, 0, 0, nil
	}
	f := Flattening
	la := EquatorialRadius
	lb := PolarRadius

	phi1, phi2 := radians(a.Lat), radians(b.Lat)
	L := radians(b.Lon - a.Lon)
	U1 := math.Atan((1 - f) * math.Tan(phi1))
	U2 := math.Atan((1 - f) * math.Tan(phi2))
	sinU1, cosU1 := math.Sincos(U1)
	sinU2, cosU2 := math.Sincos(U2)

	lambda := L
	var sinLambda, cosLambda, sinSigma, cosSigma, sigma, sinAlpha,
		cosSqAlpha, cos2SigmaM float64
	for i := 0; i < 200; i++ {
		sinLambda, cosLambda = math.Sincos(lambda)
		t1 := cosU2 * sinLambda
		t2 := cosU1*sinU2 - sinU1*cosU2*cosLambda
		sinSigma = math.Sqrt(t1*t1 + t2*t2)
		if sinSigma == 0 {
			return 0, 0, 0, nil // coincident points
		}
		cosSigma = sinU1*sinU2 + cosU1*cosU2*cosLambda
		sigma = math.Atan2(sinSigma, cosSigma)
		sinAlpha = cosU1 * cosU2 * sinLambda / sinSigma
		cosSqAlpha = 1 - sinAlpha*sinAlpha
		if cosSqAlpha == 0 {
			cos2SigmaM = 0 // equatorial line
		} else {
			cos2SigmaM = cosSigma - 2*sinU1*sinU2/cosSqAlpha
		}
		C := f / 16 * cosSqAlpha * (4 + f*(4-3*cosSqAlpha))
		lambdaPrev := lambda
		lambda = L + (1-C)*f*sinAlpha*
			(sigma+C*sinSigma*(cos2SigmaM+C*cosSigma*(-1+2*cos2SigmaM*cos2SigmaM)))
		if math.Abs(lambda-lambdaPrev) < 1e-12 {
			uSq := cosSqAlpha * (la*la - lb*lb) / (lb * lb)
			A := 1 + uSq/16384*(4096+uSq*(-768+uSq*(320-175*uSq)))
			B := uSq / 1024 * (256 + uSq*(-128+uSq*(74-47*uSq)))
			deltaSigma := B * sinSigma * (cos2SigmaM + B/4*
				(cosSigma*(-1+2*cos2SigmaM*cos2SigmaM)-
					B/6*cos2SigmaM*(-3+4*sinSigma*sinSigma)*(-3+4*cos2SigmaM*cos2SigmaM)))
			dist = lb * A * (sigma - deltaSigma)
			alpha1 = math.Atan2(cosU2*sinLambda, cosU1*sinU2-sinU1*cosU2*cosLambda)
			alpha2 = math.Atan2(cosU1*sinLambda, -sinU1*cosU2+cosU1*sinU2*cosLambda)
			return dist, alpha1, alpha2, nil
		}
	}
	return 0, 0, 0, ErrNoConvergence
}

// Distance returns the geodesic distance in meters between a and b on the
// WGS84 ellipsoid (Vincenty inverse). For the rare non-convergent
// near-antipodal case it falls back to the haversine distance; corridor
// geometry never hits that case.
func Distance(a, b Point) float64 {
	d, _, _, err := vincentyInverse(a, b)
	if err != nil {
		return Haversine(a, b)
	}
	return d
}

// InitialBearing returns the initial bearing in degrees (clockwise from
// north, [0, 360)) of the geodesic from a to b.
func InitialBearing(a, b Point) float64 {
	_, alpha1, _, err := vincentyInverse(a, b)
	if err != nil {
		// Spherical fallback.
		lat1, lat2 := radians(a.Lat), radians(b.Lat)
		dLon := radians(b.Lon - a.Lon)
		y := math.Sin(dLon) * math.Cos(lat2)
		x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
		alpha1 = math.Atan2(y, x)
	}
	deg := degrees(alpha1)
	if deg < 0 {
		deg += 360
	}
	return deg
}

// Destination solves the geodesic direct problem: the point reached by
// travelling dist meters from start along the given initial bearing in
// degrees (Vincenty direct formula on WGS84).
func Destination(start Point, bearingDeg, dist float64) Point {
	if dist == 0 {
		return start
	}
	f := Flattening
	la := EquatorialRadius
	lb := PolarRadius

	alpha1 := radians(bearingDeg)
	sinAlpha1, cosAlpha1 := math.Sincos(alpha1)
	tanU1 := (1 - f) * math.Tan(radians(start.Lat))
	cosU1 := 1 / math.Sqrt(1+tanU1*tanU1)
	sinU1 := tanU1 * cosU1
	sigma1 := math.Atan2(tanU1, cosAlpha1)
	sinAlpha := cosU1 * sinAlpha1
	cosSqAlpha := 1 - sinAlpha*sinAlpha
	uSq := cosSqAlpha * (la*la - lb*lb) / (lb * lb)
	A := 1 + uSq/16384*(4096+uSq*(-768+uSq*(320-175*uSq)))
	B := uSq / 1024 * (256 + uSq*(-128+uSq*(74-47*uSq)))

	sigma := dist / (lb * A)
	var sinSigma, cosSigma, cos2SigmaM float64
	for i := 0; i < 200; i++ {
		cos2SigmaM = math.Cos(2*sigma1 + sigma)
		sinSigma, cosSigma = math.Sincos(sigma)
		deltaSigma := B * sinSigma * (cos2SigmaM + B/4*
			(cosSigma*(-1+2*cos2SigmaM*cos2SigmaM)-
				B/6*cos2SigmaM*(-3+4*sinSigma*sinSigma)*(-3+4*cos2SigmaM*cos2SigmaM)))
		sigmaPrev := sigma
		sigma = dist/(lb*A) + deltaSigma
		if math.Abs(sigma-sigmaPrev) < 1e-12 {
			break
		}
	}
	cos2SigmaM = math.Cos(2*sigma1 + sigma)
	sinSigma, cosSigma = math.Sincos(sigma)

	tmp := sinU1*sinSigma - cosU1*cosSigma*cosAlpha1
	phi2 := math.Atan2(sinU1*cosSigma+cosU1*sinSigma*cosAlpha1,
		(1-f)*math.Sqrt(sinAlpha*sinAlpha+tmp*tmp))
	lambda := math.Atan2(sinSigma*sinAlpha1,
		cosU1*cosSigma-sinU1*sinSigma*cosAlpha1)
	C := f / 16 * cosSqAlpha * (4 + f*(4-3*cosSqAlpha))
	L := lambda - (1-C)*f*sinAlpha*
		(sigma+C*sinSigma*(cos2SigmaM+C*cosSigma*(-1+2*cos2SigmaM*cos2SigmaM)))
	lon2 := radians(start.Lon) + L

	return Point{Lat: degrees(phi2), Lon: normalizeLonRad(lon2)}
}

func normalizeLonRad(lon float64) float64 {
	deg := degrees(lon)
	for deg > 180 {
		deg -= 360
	}
	for deg < -180 {
		deg += 360
	}
	return deg
}

// Interpolate returns the point a fraction t (0..1) of the way along the
// geodesic from a to b, by solving the direct problem from a.
func Interpolate(a, b Point, t float64) Point {
	if t <= 0 {
		return a
	}
	if t >= 1 {
		return b
	}
	d := Distance(a, b)
	return Destination(a, InitialBearing(a, b), d*t)
}

// Offset returns the point displaced from p by along meters in the
// direction of bearingDeg and lateral meters perpendicular to it
// (positive lateral = 90° clockwise from the bearing). It is the primitive
// the synthetic corridor generator uses to jitter towers off a geodesic.
func Offset(p Point, bearingDeg, along, lateral float64) Point {
	q := p
	if along != 0 {
		q = Destination(q, bearingDeg, along)
	}
	if lateral != 0 {
		q = Destination(q, math.Mod(bearingDeg+90, 360), lateral)
	}
	return q
}

// CrossTrack returns the (unsigned) cross-track distance in meters of
// point p from the great circle through a and b, using the spherical
// approximation, which is accurate to well under 1% at corridor scales.
func CrossTrack(a, b, p Point) float64 {
	d13 := Haversine(a, p) / MeanRadius
	theta13 := radians(InitialBearing(a, p))
	theta12 := radians(InitialBearing(a, b))
	dxt := math.Asin(math.Sin(d13) * math.Sin(theta13-theta12))
	return math.Abs(dxt * MeanRadius)
}

// PathLength returns the total geodesic length in meters of the polyline
// through pts. A polyline with fewer than two points has length 0.
func PathLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += Distance(pts[i-1], pts[i])
	}
	return total
}

// Midpoint returns the geodesic midpoint of a and b.
func Midpoint(a, b Point) Point { return Interpolate(a, b, 0.5) }
