package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Known data-center coordinates used throughout the reproduction.
var (
	cme      = Point{Lat: 41.7625, Lon: -88.2030}   // CME Aurora, IL (calibrated)
	ny4      = Point{Lat: 40.7770, Lon: -74.093036} // Equinix NY4 Secaucus, NJ
	nyse     = Point{Lat: 41.0722, Lon: -74.174623} // NYSE Mahwah, NJ
	nasdaq   = Point{Lat: 40.5837, Lon: -74.260104} // NASDAQ Carteret, NJ
	london   = Point{Lat: 51.5074, Lon: -0.1278}
	newYork  = Point{Lat: 40.7128, Lon: -74.0060}
	sydney   = Point{Lat: -33.8688, Lon: 151.2093}
	santiago = Point{Lat: -33.4489, Lon: -70.6693}
)

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64 // meters
		tol  float64 // relative tolerance
	}{
		// Reference distances computed with Karney's GeographicLib.
		{"London-NewYork", london, newYork, 5585234, 0.001},
		{"Sydney-Santiago", sydney, santiago, 11369000, 0.002},
		{"CME-NY4 corridor", cme, ny4, 1186000, 0.001},
		{"CME-NYSE corridor", cme, nyse, 1174000, 0.001},
		{"CME-NASDAQ corridor", cme, nasdaq, 1176000, 0.001},
		{"zero", cme, cme, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Distance(tt.a, tt.b)
			if tt.want == 0 {
				if got != 0 {
					t.Fatalf("Distance = %v, want 0", got)
				}
				return
			}
			if rel := math.Abs(got-tt.want) / tt.want; rel > tt.tol {
				t.Errorf("Distance = %.0f m, want %.0f m (rel err %.4f > %.4f)",
					got, tt.want, rel, tt.tol)
			}
		})
	}
}

func TestHaversineCloseToVincenty(t *testing.T) {
	d1 := Haversine(cme, ny4)
	d2 := Distance(cme, ny4)
	if rel := math.Abs(d1-d2) / d2; rel > 0.006 {
		t.Errorf("haversine %.0f vs vincenty %.0f differ by %.4f", d1, d2, rel)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := clampPoint(lat1, lon1)
		b := clampPoint(lat2, lon2)
		d1 := Distance(a, b)
		d2 := Distance(b, a)
		return math.Abs(d1-d2) <= 1e-6*(1+d1)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDistanceNonNegativeAndIdentity(t *testing.T) {
	f := func(lat, lon float64) bool {
		p := clampPoint(lat, lon)
		return Distance(p, p) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
	g := func(lat1, lon1, lat2, lon2 float64) bool {
		a := clampPoint(lat1, lon1)
		b := clampPoint(lat2, lon2)
		return Distance(a, b) >= 0
	}
	if err := quick.Check(g, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	// Geodesic distance is a metric; check d(a,c) <= d(a,b)+d(b,c) with a
	// small numeric slack. Restrict to a hemisphere patch to avoid
	// antipodal fallback mixing models.
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := patchPoint(lat1, lon1)
		b := patchPoint(lat2, lon2)
		c := patchPoint(lat3, lon3)
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-3
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	// Destination(a, bearing(a,b), d(a,b)) should land on b.
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := patchPoint(lat1, lon1)
		b := patchPoint(lat2, lon2)
		if Distance(a, b) < 1 {
			return true
		}
		d := Distance(a, b)
		brg := InitialBearing(a, b)
		got := Destination(a, brg, d)
		return Distance(got, b) < 0.5 // half a meter
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDestinationDistanceConsistency(t *testing.T) {
	// The point reached by travelling d meters is d meters away.
	f := func(lat, lon, bearing, distKm float64) bool {
		p := patchPoint(lat, lon)
		brg := math.Mod(math.Abs(bearing), 360)
		d := math.Mod(math.Abs(distKm), 2000) * 1000 // up to 2000 km
		if d < 1 {
			return true
		}
		q := Destination(p, brg, d)
		return math.Abs(Distance(p, q)-d) < 0.5
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestInterpolateEndpointsAndMonotonicity(t *testing.T) {
	if got := Interpolate(cme, ny4, 0); got != cme {
		t.Errorf("Interpolate(t=0) = %v, want %v", got, cme)
	}
	if got := Interpolate(cme, ny4, 1); got != ny4 {
		t.Errorf("Interpolate(t=1) = %v, want %v", got, ny4)
	}
	total := Distance(cme, ny4)
	prev := 0.0
	for _, tfrac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		p := Interpolate(cme, ny4, tfrac)
		d := Distance(cme, p)
		if d <= prev {
			t.Errorf("Interpolate not monotone at t=%v: %v <= %v", tfrac, d, prev)
		}
		if math.Abs(d-total*tfrac) > total*0.001 {
			t.Errorf("Interpolate(t=%v) at %.0f m, want %.0f m", tfrac, d, total*tfrac)
		}
		prev = d
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(cme, ny4)
	d1 := Distance(cme, m)
	d2 := Distance(m, ny4)
	if math.Abs(d1-d2) > 1 {
		t.Errorf("midpoint distances differ: %.1f vs %.1f", d1, d2)
	}
}

func TestCrossTrackOnAndOffPath(t *testing.T) {
	mid := Interpolate(cme, ny4, 0.5)
	if xt := CrossTrack(cme, ny4, mid); xt > 50 {
		t.Errorf("cross-track of on-path point = %.1f m, want ~0", xt)
	}
	off := Offset(mid, InitialBearing(cme, ny4), 0, 5000)
	xt := CrossTrack(cme, ny4, off)
	if math.Abs(xt-5000) > 100 {
		t.Errorf("cross-track of 5 km offset point = %.1f m, want ≈5000", xt)
	}
}

func TestOffsetAlongOnly(t *testing.T) {
	brg := InitialBearing(cme, ny4)
	q := Offset(cme, brg, 10000, 0)
	if d := Distance(cme, q); math.Abs(d-10000) > 1 {
		t.Errorf("along-only offset distance = %.1f, want 10000", d)
	}
}

func TestPathLength(t *testing.T) {
	if got := PathLength(nil); got != 0 {
		t.Errorf("PathLength(nil) = %v", got)
	}
	if got := PathLength([]Point{cme}); got != 0 {
		t.Errorf("PathLength(single) = %v", got)
	}
	pts := []Point{cme, Interpolate(cme, ny4, 0.5), ny4}
	direct := Distance(cme, ny4)
	got := PathLength(pts)
	if got < direct-1 {
		t.Errorf("polyline through midpoint shorter than direct: %v < %v", got, direct)
	}
	if got > direct*1.001 {
		t.Errorf("polyline through on-geodesic midpoint too long: %v vs %v", got, direct)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	p := Point{Lat: 40, Lon: -88}
	north := Point{Lat: 41, Lon: -88}
	east := Point{Lat: 40, Lon: -87}
	if b := InitialBearing(p, north); math.Abs(b-0) > 0.5 && math.Abs(b-360) > 0.5 {
		t.Errorf("bearing to north = %v", b)
	}
	if b := InitialBearing(p, east); math.Abs(b-90) > 1 {
		t.Errorf("bearing to east = %v", b)
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {90, 180}, {-90, -180}, cme}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{{91, 0}, {0, 181}, {-91, 0}, {0, -181},
		{math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

// clampPoint maps arbitrary floats into legal lat/lon space.
func clampPoint(lat, lon float64) Point {
	if math.IsNaN(lat) || math.IsInf(lat, 0) {
		lat = 0
	}
	if math.IsNaN(lon) || math.IsInf(lon, 0) {
		lon = 0
	}
	lat = math.Mod(lat, 90)
	lon = math.Mod(lon, 180)
	return Point{Lat: lat, Lon: lon}
}

// patchPoint maps arbitrary floats into a mid-latitude patch where
// geodesics are well-conditioned (no antipodal or polar degeneracies).
func patchPoint(lat, lon float64) Point {
	if math.IsNaN(lat) || math.IsInf(lat, 0) {
		lat = 0
	}
	if math.IsNaN(lon) || math.IsInf(lon, 0) {
		lon = 0
	}
	return Point{
		Lat: 25 + math.Mod(math.Abs(lat), 30),  // 25..55 N
		Lon: -60 - math.Mod(math.Abs(lon), 60), // 60..120 W
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 200}
}
