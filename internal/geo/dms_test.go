package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDMSDecimal(t *testing.T) {
	tests := []struct {
		dms  DMS
		want float64
	}{
		{DMS{41, 47, 45.0, 'N'}, 41.795833},
		{DMS{88, 14, 33.0, 'W'}, -88.2425},
		{DMS{0, 0, 0, 'N'}, 0},
		{DMS{33, 52, 7.7, 'S'}, -33.868806},
		{DMS{151, 12, 33.5, 'E'}, 151.209306},
	}
	for _, tt := range tests {
		if got := tt.dms.Decimal(); math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("%v.Decimal() = %v, want %v", tt.dms, got, tt.want)
		}
	}
}

func TestToDMSRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		lat := math.Mod(raw, 90)
		d := ToDMS(lat, true)
		if !d.Valid() {
			return false
		}
		// 0.1" resolution is ~2.8e-5 degrees.
		return math.Abs(d.Decimal()-lat) < 5e-5
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
	g := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		lon := math.Mod(raw, 180)
		d := ToDMS(lon, false)
		return d.Valid() && math.Abs(d.Decimal()-lon) < 5e-5
	}
	if err := quick.Check(g, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestToDMSCarry(t *testing.T) {
	// 41.9999999 should carry seconds → minutes → degrees cleanly.
	d := ToDMS(41.9999999, true)
	if !d.Valid() {
		t.Fatalf("carry produced invalid DMS: %+v", d)
	}
	if math.Abs(d.Decimal()-42.0) > 5e-5 {
		t.Errorf("carry: got %v, want ≈42", d.Decimal())
	}
}

func TestParseDMS(t *testing.T) {
	good := []struct {
		in   string
		want float64
	}{
		{"41-47-45.0 N", 41.795833},
		{"88-14-33.0 W", -88.2425},
		{"41 47 45.0 N", 41.795833},
		{" 0-00-00.0 N", 0},
		{"179-59-59.9 E", 179.999972},
	}
	for _, tt := range good {
		d, err := ParseDMS(tt.in)
		if err != nil {
			t.Errorf("ParseDMS(%q) error: %v", tt.in, err)
			continue
		}
		if math.Abs(d.Decimal()-tt.want) > 1e-4 {
			t.Errorf("ParseDMS(%q) = %v, want %v", tt.in, d.Decimal(), tt.want)
		}
	}
	bad := []string{
		"", "N", "41-47 N", "41-47-45.0-3 N", "x-47-45.0 N",
		"41-xx-45.0 N", "41-47-zz N", "91-00-00.0 N", "41-60-00.0 N",
		"41-47-60.0 N", "181-00-00.0 E", "41-47-45.0 Q",
	}
	for _, in := range bad {
		if _, err := ParseDMS(in); err == nil {
			t.Errorf("ParseDMS(%q) succeeded, want error", in)
		}
	}
}

func TestParseDMSStringRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		lat := math.Mod(raw, 90)
		d := ToDMS(lat, true)
		parsed, err := ParseDMS(d.String())
		return err == nil && parsed == d
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPointDMSRoundTrip(t *testing.T) {
	for _, p := range []Point{cme, ny4, nyse, nasdaq, sydney, santiago} {
		lat, lon := PointToDMS(p)
		got, err := PointFromDMS(lat, lon)
		if err != nil {
			t.Fatalf("PointFromDMS(%v): %v", p, err)
		}
		if Distance(got, p) > 5 { // 0.1" ≈ 3 m
			t.Errorf("DMS round trip moved %v by %.1f m", p, Distance(got, p))
		}
	}
}

func TestPointFromDMSRejectsSwappedAxes(t *testing.T) {
	lat, lon := PointToDMS(cme)
	if _, err := PointFromDMS(lon, lat); err == nil {
		t.Error("PointFromDMS accepted swapped lat/lon")
	}
	if _, err := PointFromDMS(lat, lat); err == nil {
		t.Error("PointFromDMS accepted latitude as longitude")
	}
}

func TestDMSValid(t *testing.T) {
	invalid := []DMS{
		{-1, 0, 0, 'N'}, {0, -1, 0, 'N'}, {0, 60, 0, 'N'},
		{0, 0, -0.1, 'N'}, {0, 0, 60, 'N'}, {91, 0, 0, 'N'},
		{181, 0, 0, 'E'}, {0, 0, 0, 'Z'},
	}
	for _, d := range invalid {
		if d.Valid() {
			t.Errorf("%+v should be invalid", d)
		}
	}
	if !(DMS{90, 0, 0, 'S'}).Valid() {
		t.Error("90-00-00 S should be valid")
	}
	if !(DMS{180, 0, 0, 'W'}).Valid() {
		t.Error("180-00-00 W should be valid")
	}
}
