package geo

import (
	"fmt"
	"strconv"
	"strings"
)

// FCC ULS location records carry coordinates as separate degree, minute,
// second and hemisphere-direction fields (e.g. 41° 47' 52.3" N). This file
// converts between that representation and decimal degrees.

// DMS is a coordinate component in degrees-minutes-seconds form as stored
// in ULS `LO` records.
type DMS struct {
	Degrees   int
	Minutes   int
	Seconds   float64
	Direction byte // 'N', 'S', 'E' or 'W'
}

// Decimal converts the component to signed decimal degrees. South and west
// are negative.
func (d DMS) Decimal() float64 {
	v := float64(d.Degrees) + float64(d.Minutes)/60 + d.Seconds/3600
	if d.Direction == 'S' || d.Direction == 'W' {
		v = -v
	}
	return v
}

// Valid reports whether the component is a legal latitude (N/S) or
// longitude (E/W).
func (d DMS) Valid() bool {
	if d.Degrees < 0 || d.Minutes < 0 || d.Minutes >= 60 ||
		d.Seconds < 0 || d.Seconds >= 60 {
		return false
	}
	switch d.Direction {
	case 'N', 'S':
		return d.Degrees <= 90
	case 'E', 'W':
		return d.Degrees <= 180
	}
	return false
}

// String renders the component in the compact form used by the simulated
// portal's detail pages, e.g. "41-47-52.3 N".
func (d DMS) String() string {
	return fmt.Sprintf("%d-%02d-%04.1f %c", d.Degrees, d.Minutes, d.Seconds, d.Direction)
}

// ToDMS converts decimal degrees to DMS. isLat selects the hemisphere
// letters (N/S vs E/W). Seconds are kept at 0.1" resolution (≈3 m), the
// precision ULS records carry.
func ToDMS(decimal float64, isLat bool) DMS {
	dir := byte('N')
	if isLat {
		if decimal < 0 {
			dir = 'S'
		}
	} else {
		dir = 'E'
		if decimal < 0 {
			dir = 'W'
		}
	}
	v := decimal
	if v < 0 {
		v = -v
	}
	deg := int(v)
	rem := (v - float64(deg)) * 60
	min := int(rem)
	sec := (rem - float64(min)) * 60
	// Round to 0.1" and carry.
	sec = float64(int(sec*10+0.5)) / 10
	if sec >= 60 {
		sec -= 60
		min++
	}
	if min >= 60 {
		min -= 60
		deg++
	}
	return DMS{Degrees: deg, Minutes: min, Seconds: sec, Direction: dir}
}

// ParseDMS parses the compact "D-M-S.s H" form produced by DMS.String and
// by the simulated portal. It also accepts the space-separated
// "D M S.s H" variant.
func ParseDMS(s string) (DMS, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return DMS{}, fmt.Errorf("geo: empty DMS string")
	}
	dir := s[len(s)-1]
	body := strings.TrimSpace(s[:len(s)-1])
	var parts []string
	if strings.Contains(body, "-") {
		parts = strings.Split(body, "-")
	} else {
		parts = strings.Fields(body)
	}
	if len(parts) != 3 {
		return DMS{}, fmt.Errorf("geo: malformed DMS %q", s)
	}
	deg, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return DMS{}, fmt.Errorf("geo: bad degrees in %q: %v", s, err)
	}
	min, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return DMS{}, fmt.Errorf("geo: bad minutes in %q: %v", s, err)
	}
	sec, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil {
		return DMS{}, fmt.Errorf("geo: bad seconds in %q: %v", s, err)
	}
	d := DMS{Degrees: deg, Minutes: min, Seconds: sec, Direction: dir}
	if !d.Valid() {
		return DMS{}, fmt.Errorf("geo: out-of-range DMS %q", s)
	}
	return d, nil
}

// PointToDMS converts a Point to its latitude and longitude DMS components.
func PointToDMS(p Point) (lat, lon DMS) {
	return ToDMS(p.Lat, true), ToDMS(p.Lon, false)
}

// PointFromDMS builds a Point from latitude and longitude DMS components.
func PointFromDMS(lat, lon DMS) (Point, error) {
	if !lat.Valid() || lat.Direction == 'E' || lat.Direction == 'W' {
		return Point{}, fmt.Errorf("geo: invalid latitude %v", lat)
	}
	if !lon.Valid() || lon.Direction == 'N' || lon.Direction == 'S' {
		return Point{}, fmt.Errorf("geo: invalid longitude %v", lon)
	}
	return Point{Lat: lat.Decimal(), Lon: lon.Decimal()}, nil
}
