package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// lineGraph builds a chain n0 - n1 - ... - n{k} with unit weights.
func lineGraph(t testing.TB, k int) (*Graph, []NodeID) {
	t.Helper()
	g := New()
	ids := make([]NodeID, k+1)
	for i := range ids {
		ids[i] = g.EnsureNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < k; i++ {
		if _, err := g.AddEdge(ids[i], ids[i+1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

// ladderGraph builds two parallel chains with rungs:
//
//	a0 - a1 - ... - a{k}
//	 \   |          /
//	  b0 - b1 - ...b{k}   (a_i - b_i rungs, plus shared endpoints)
func ladderGraph(t testing.TB, k int, railW, rungW float64) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := New()
	src := g.EnsureNode("src")
	dst := g.EnsureNode("dst")
	as := make([]NodeID, k)
	bs := make([]NodeID, k)
	for i := 0; i < k; i++ {
		as[i] = g.EnsureNode(fmt.Sprintf("a%d", i))
		bs[i] = g.EnsureNode(fmt.Sprintf("b%d", i))
	}
	mustAdd := func(a, b NodeID, w float64) {
		if _, err := g.AddEdge(a, b, w); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(src, as[0], railW)
	mustAdd(src, bs[0], railW)
	for i := 0; i < k-1; i++ {
		mustAdd(as[i], as[i+1], railW)
		mustAdd(bs[i], bs[i+1], railW)
	}
	for i := 0; i < k; i++ {
		mustAdd(as[i], bs[i], rungW)
	}
	mustAdd(as[k-1], dst, railW)
	mustAdd(bs[k-1], dst, railW)
	return g, src, dst
}

func TestEnsureNodeDedup(t *testing.T) {
	g := New()
	a := g.EnsureNode("x")
	b := g.EnsureNode("x")
	if a != b {
		t.Errorf("EnsureNode not idempotent: %d vs %d", a, b)
	}
	if g.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", g.NumNodes())
	}
	if g.Key(a) != "x" {
		t.Errorf("Key = %q", g.Key(a))
	}
	if _, ok := g.Node("x"); !ok {
		t.Error("Node(x) missing")
	}
	if _, ok := g.Node("y"); ok {
		t.Error("Node(y) should not exist")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.EnsureNode("a")
	b := g.EnsureNode("b")
	if _, err := g.AddEdge(a, a, 1); err == nil {
		t.Error("self loop accepted")
	}
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := g.AddEdge(a, b, w); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
	if _, err := g.AddEdge(a, 99, 1); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := g.AddEdge(a, b, 0); err != nil {
		t.Errorf("zero weight rejected: %v", err)
	}
}

func TestShortestPathLine(t *testing.T) {
	g, ids := lineGraph(t, 10)
	p, ok := g.ShortestPath(ids[0], ids[10])
	if !ok {
		t.Fatal("unreachable")
	}
	if p.Weight != 10 || p.Len() != 10 {
		t.Errorf("Weight=%v Len=%d, want 10, 10", p.Weight, p.Len())
	}
	if p.Nodes[0] != ids[0] || p.Nodes[len(p.Nodes)-1] != ids[10] {
		t.Error("path endpoints wrong")
	}
	// Node sequence must be consistent with edge sequence.
	for i, eid := range p.Edges {
		e := g.Edge(eid)
		u, v := p.Nodes[i], p.Nodes[i+1]
		if !((e.A == u && e.B == v) || (e.A == v && e.B == u)) {
			t.Fatalf("edge %d does not connect consecutive path nodes", i)
		}
	}
}

func TestShortestPathPrefersCheaperRoute(t *testing.T) {
	g := New()
	a, b, c := g.EnsureNode("a"), g.EnsureNode("b"), g.EnsureNode("c")
	g.AddEdge(a, c, 10)
	g.AddEdge(a, b, 2)
	g.AddEdge(b, c, 3)
	p, ok := g.ShortestPath(a, c)
	if !ok || p.Weight != 5 || p.Len() != 2 {
		t.Errorf("path = %+v, want weight 5 via b", p)
	}
}

func TestShortestPathParallelEdges(t *testing.T) {
	g := New()
	a, b := g.EnsureNode("a"), g.EnsureNode("b")
	g.AddEdge(a, b, 5)
	cheap, _ := g.AddEdge(a, b, 2)
	p, ok := g.ShortestPath(a, b)
	if !ok || p.Weight != 2 || p.Edges[0] != cheap {
		t.Errorf("parallel edge selection wrong: %+v", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New()
	a := g.EnsureNode("a")
	b := g.EnsureNode("b")
	if _, ok := g.ShortestPath(a, b); ok {
		t.Error("disconnected nodes reported reachable")
	}
}

func TestShortestPathSelf(t *testing.T) {
	g, ids := lineGraph(t, 3)
	p, ok := g.ShortestPath(ids[1], ids[1])
	if !ok || p.Weight != 0 || p.Len() != 0 || len(p.Nodes) != 1 {
		t.Errorf("self path = %+v", p)
	}
}

func TestDisabledEdges(t *testing.T) {
	g := New()
	a, b, c := g.EnsureNode("a"), g.EnsureNode("b"), g.EnsureNode("c")
	direct, _ := g.AddEdge(a, c, 1)
	g.AddEdge(a, b, 2)
	g.AddEdge(b, c, 2)
	g.SetDisabled(direct, true)
	p, ok := g.ShortestPath(a, c)
	if !ok || p.Weight != 4 {
		t.Errorf("with direct disabled: %+v, want weight 4", p)
	}
	g.SetDisabled(direct, false)
	p, _ = g.ShortestPath(a, c)
	if p.Weight != 1 {
		t.Errorf("after re-enable: %+v, want weight 1", p)
	}
}

func TestDistancesFrom(t *testing.T) {
	g, ids := lineGraph(t, 5)
	dist := g.DistancesFrom(ids[0])
	for i, id := range ids {
		if dist[id] != float64(i) {
			t.Errorf("dist[%d] = %v, want %d", i, dist[id], i)
		}
	}
	lone := g.EnsureNode("lone")
	dist = g.DistancesFrom(ids[0])
	if !math.IsInf(dist[lone], 1) {
		t.Errorf("dist[lone] = %v, want +Inf", dist[lone])
	}
}

func TestNaiveMatchesHeapDijkstra(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for trial := 0; trial < 30; trial++ {
		g := New()
		n := 30
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.EnsureNode(fmt.Sprintf("n%d", i))
		}
		for e := 0; e < 80; e++ {
			a := ids[rng.IntN(n)]
			b := ids[rng.IntN(n)]
			if a == b {
				continue
			}
			g.AddEdge(a, b, rng.Float64()*10)
		}
		src, dst := ids[0], ids[n-1]
		p1, ok1 := g.ShortestPath(src, dst)
		p2, ok2 := g.ShortestPathNaive(src, dst)
		if ok1 != ok2 {
			t.Fatalf("trial %d: reachability differs", trial)
		}
		if ok1 && math.Abs(p1.Weight-p2.Weight) > 1e-12 {
			t.Fatalf("trial %d: weights differ: %v vs %v", trial, p1.Weight, p2.Weight)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New()
	a, b := g.EnsureNode("a"), g.EnsureNode("b")
	c, d := g.EnsureNode("c"), g.EnsureNode("d")
	g.EnsureNode("e") // isolated
	g.AddEdge(a, b, 1)
	g.AddEdge(c, d, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, comp := range comps {
		sizes[len(comp)]++
	}
	if sizes[2] != 2 || sizes[1] != 1 {
		t.Errorf("component sizes = %v", sizes)
	}
}

func TestComponentsRespectDisabled(t *testing.T) {
	g := New()
	a, b := g.EnsureNode("a"), g.EnsureNode("b")
	e, _ := g.AddEdge(a, b, 1)
	if got := len(g.Components()); got != 1 {
		t.Fatalf("components = %d, want 1", got)
	}
	g.SetDisabled(e, true)
	if got := len(g.Components()); got != 2 {
		t.Errorf("components with disabled edge = %d, want 2", got)
	}
}

// TestDijkstraTriangleProperty checks d(s,v) <= d(s,u) + w(u,v) on random
// graphs — the defining relaxation invariant.
func TestDijkstraTriangleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		g := New()
		n := 20
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.EnsureNode(fmt.Sprintf("n%d", i))
		}
		for e := 0; e < 50; e++ {
			a, b := ids[rng.IntN(n)], ids[rng.IntN(n)]
			if a == b {
				continue
			}
			g.AddEdge(a, b, rng.Float64()*5)
		}
		dist := g.DistancesFrom(ids[0])
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(EdgeID(id))
			if dist[e.B] > dist[e.A]+e.Weight+1e-12 {
				return false
			}
			if dist[e.A] > dist[e.B]+e.Weight+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLadderShortestVsRails(t *testing.T) {
	g, src, dst := ladderGraph(t, 5, 1, 0.1)
	p, ok := g.ShortestPath(src, dst)
	if !ok {
		t.Fatal("ladder unreachable")
	}
	// Straight rail: 6 edges of weight 1.
	if p.Weight != 6 {
		t.Errorf("ladder shortest = %v, want 6", p.Weight)
	}
}
