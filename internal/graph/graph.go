// Package graph provides the weighted-graph substrate for network
// reconstruction: an undirected multigraph keyed by string node names,
// binary-heap Dijkstra, connected components, bounded loop-free path
// enumeration, and per-edge removal analysis (the primitive behind the
// paper's APA metric, §5).
//
// Edge weights are arbitrary non-negative costs; the reconstruction layer
// uses one-way propagation latency in seconds.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a node; it is a dense index assigned by EnsureNode.
type NodeID int32

// EdgeID identifies an edge; it is a dense index assigned by AddEdge.
type EdgeID int32

// Edge is an undirected weighted edge. Parallel edges and their distinct
// identities are preserved (two licenses may cover the same tower pair).
type Edge struct {
	A, B     NodeID
	Weight   float64
	Disabled bool // excluded from traversal when true
}

// Other returns the endpoint opposite to n.
func (e Edge) Other(n NodeID) NodeID {
	if e.A == n {
		return e.B
	}
	return e.A
}

// Graph is an undirected weighted multigraph. The zero value is not
// usable; call New.
type Graph struct {
	keys  []string
	byKey map[string]NodeID
	edges []Edge
	adj   [][]EdgeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byKey: make(map[string]NodeID)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.keys) }

// NumEdges returns the number of edges, including disabled ones.
func (g *Graph) NumEdges() int { return len(g.edges) }

// EnsureNode returns the NodeID for key, creating the node if needed.
func (g *Graph) EnsureNode(key string) NodeID {
	if id, ok := g.byKey[key]; ok {
		return id
	}
	id := NodeID(len(g.keys))
	g.keys = append(g.keys, key)
	g.byKey[key] = id
	g.adj = append(g.adj, nil)
	return id
}

// Node returns the NodeID for key and whether it exists.
func (g *Graph) Node(key string) (NodeID, bool) {
	id, ok := g.byKey[key]
	return id, ok
}

// Key returns the string key of a node.
func (g *Graph) Key(id NodeID) string { return g.keys[id] }

// AddEdge adds an undirected edge with the given non-negative weight and
// returns its EdgeID.
func (g *Graph) AddEdge(a, b NodeID, w float64) (EdgeID, error) {
	if a == b {
		return 0, fmt.Errorf("graph: self loop at node %d (%s)", a, g.keys[a])
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("graph: invalid edge weight %v", w)
	}
	if int(a) >= len(g.keys) || int(b) >= len(g.keys) || a < 0 || b < 0 {
		return 0, fmt.Errorf("graph: edge references unknown node (%d, %d)", a, b)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{A: a, B: b, Weight: w})
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	return id, nil
}

// Edge returns a copy of the edge with the given id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Clone returns a deep copy of the graph sharing no mutable state with
// the receiver. Analyses that temporarily disable edges (edge-removal
// APA, storm routing) can run concurrently on clones of one graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		keys:  append([]string(nil), g.keys...),
		byKey: make(map[string]NodeID, len(g.byKey)),
		edges: append([]Edge(nil), g.edges...),
		adj:   make([][]EdgeID, len(g.adj)),
	}
	for k, v := range g.byKey {
		c.byKey[k] = v
	}
	for i, ids := range g.adj {
		c.adj[i] = append([]EdgeID(nil), ids...)
	}
	return c
}

// SetDisabled marks an edge as excluded from (or restored to) traversal.
func (g *Graph) SetDisabled(id EdgeID, disabled bool) {
	g.edges[id].Disabled = disabled
}

// EdgesOf returns the edge ids incident to n (including disabled edges).
func (g *Graph) EdgesOf(n NodeID) []EdgeID { return g.adj[n] }

// Path is a walk through the graph with its total weight.
type Path struct {
	Nodes  []NodeID
	Edges  []EdgeID
	Weight float64
}

// Len returns the number of hops (edges) on the path.
func (p Path) Len() int { return len(p.Edges) }

// item is a binary-heap entry for Dijkstra.
type item struct {
	node NodeID
	dist float64
}

// minHeap is a hand-rolled binary heap over items; container/heap's
// interface indirection costs ~2x on this hot path (see the ablation
// bench), and the heap is trivial.
type minHeap []item

func (h *minHeap) push(it item) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist <= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *minHeap) pop() item {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l].dist < (*h)[smallest].dist {
			smallest = l
		}
		if r < n && (*h)[r].dist < (*h)[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// ShortestPath returns the minimum-weight path from src to dst over
// enabled edges, and whether dst is reachable. Ties are broken by
// insertion order deterministically.
func (g *Graph) ShortestPath(src, dst NodeID) (Path, bool) {
	dist, prevEdge := g.dijkstra(src, dst)
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	return g.tracePath(src, dst, dist, prevEdge), true
}

// DistancesFrom returns the minimum weight from src to every node
// (math.Inf(1) where unreachable), over enabled edges.
func (g *Graph) DistancesFrom(src NodeID) []float64 {
	dist, _ := g.dijkstra(src, -1)
	return dist
}

// ShortestPathTree returns the full Dijkstra result from src: per-node
// distances and the parent edge of each node in the shortest-path tree
// (-1 for src and unreachable nodes).
func (g *Graph) ShortestPathTree(src NodeID) ([]float64, []EdgeID) {
	return g.dijkstra(src, -1)
}

// TreePathNodes returns the nodes on the tree path from src to dst
// (inclusive, in src→dst order) given a parent-edge array produced by
// ShortestPathTree(src). It returns nil when dst is unreachable.
func (g *Graph) TreePathNodes(prevEdge []EdgeID, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if prevEdge[dst] < 0 {
		return nil
	}
	var rev []NodeID
	at := dst
	for at != src {
		rev = append(rev, at)
		eid := prevEdge[at]
		if eid < 0 {
			return nil
		}
		at = g.edges[eid].Other(at)
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// dijkstra runs to completion, or until dst is settled when dst >= 0.
func (g *Graph) dijkstra(src, dst NodeID) (dist []float64, prevEdge []EdgeID) {
	n := len(g.keys)
	dist = make([]float64, n)
	prevEdge = make([]EdgeID, n)
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	h := make(minHeap, 0, 64)
	h.push(item{node: src})
	for len(h) > 0 {
		it := h.pop()
		u := it.node
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.adj[u] {
			e := &g.edges[eid]
			if e.Disabled {
				continue
			}
			v := e.Other(u)
			if settled[v] {
				continue
			}
			if nd := dist[u] + e.Weight; nd < dist[v] {
				dist[v] = nd
				prevEdge[v] = eid
				h.push(item{node: v, dist: nd})
			}
		}
	}
	return dist, prevEdge
}

func (g *Graph) tracePath(src, dst NodeID, dist []float64, prevEdge []EdgeID) Path {
	var redges []EdgeID
	var rnodes []NodeID
	at := dst
	rnodes = append(rnodes, at)
	for at != src {
		eid := prevEdge[at]
		redges = append(redges, eid)
		at = g.edges[eid].Other(at)
		rnodes = append(rnodes, at)
	}
	// Reverse in place.
	for i, j := 0, len(redges)-1; i < j; i, j = i+1, j-1 {
		redges[i], redges[j] = redges[j], redges[i]
	}
	for i, j := 0, len(rnodes)-1; i < j; i, j = i+1, j-1 {
		rnodes[i], rnodes[j] = rnodes[j], rnodes[i]
	}
	return Path{Nodes: rnodes, Edges: redges, Weight: dist[dst]}
}

// ShortestPathNaive is Dijkstra with an O(V) linear scan instead of a
// heap. It exists only as the ablation baseline for the benchmark suite.
func (g *Graph) ShortestPathNaive(src, dst NodeID) (Path, bool) {
	n := len(g.keys)
	dist := make([]float64, n)
	prevEdge := make([]EdgeID, n)
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	for {
		u := NodeID(-1)
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if !settled[i] && dist[i] < best {
				best = dist[i]
				u = NodeID(i)
			}
		}
		if u < 0 {
			break
		}
		settled[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.adj[u] {
			e := &g.edges[eid]
			if e.Disabled {
				continue
			}
			v := e.Other(u)
			if nd := dist[u] + e.Weight; nd < dist[v] {
				dist[v] = nd
				prevEdge[v] = eid
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	return g.tracePath(src, dst, dist, prevEdge), true
}

// Components returns the connected components over enabled edges, each a
// sorted list of NodeIDs; components are ordered by their smallest node.
func (g *Graph) Components() [][]NodeID {
	n := len(g.keys)
	seen := make([]bool, n)
	var comps [][]NodeID
	stack := make([]NodeID, 0, 64)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack = append(stack[:0], NodeID(start))
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, eid := range g.adj[u] {
				e := &g.edges[eid]
				if e.Disabled {
					continue
				}
				v := e.Other(u)
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether dst is reachable from src over enabled edges.
func (g *Graph) Connected(src, dst NodeID) bool {
	_, ok := g.ShortestPath(src, dst)
	return ok
}
