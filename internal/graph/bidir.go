package graph

import "math"

// ShortestPathBidirectional is Dijkstra run simultaneously from both
// endpoints, stopping when the frontiers' combined radius covers the
// best meeting point. On corridor-scale graphs it settles roughly half
// the nodes of the one-sided search; it exists as the ablation
// comparison for ShortestPath and returns identical weights.
func (g *Graph) ShortestPathBidirectional(src, dst NodeID) (Path, bool) {
	if src == dst {
		return Path{Nodes: []NodeID{src}}, true
	}
	n := len(g.keys)
	distF := make([]float64, n)
	distB := make([]float64, n)
	prevF := make([]EdgeID, n)
	prevB := make([]EdgeID, n)
	settledF := make([]bool, n)
	settledB := make([]bool, n)
	for i := 0; i < n; i++ {
		distF[i] = math.Inf(1)
		distB[i] = math.Inf(1)
		prevF[i] = -1
		prevB[i] = -1
	}
	distF[src] = 0
	distB[dst] = 0
	var hf, hb minHeap
	hf.push(item{node: src})
	hb.push(item{node: dst})

	best := math.Inf(1)
	meet := NodeID(-1)

	relax := func(h *minHeap, dist, other []float64, prev []EdgeID,
		settled, settledOther []bool) bool {
		for len(*h) > 0 {
			it := h.pop()
			u := it.node
			if settled[u] {
				continue
			}
			settled[u] = true
			// Termination: once the settled radius reaches best/2 on
			// both sides no shorter crossing can exist; conservatively,
			// stop expanding when this frontier alone passes best.
			if dist[u] > best {
				return false
			}
			for _, eid := range g.adj[u] {
				e := &g.edges[eid]
				if e.Disabled {
					continue
				}
				v := e.Other(u)
				nd := dist[u] + e.Weight
				if nd < dist[v] {
					dist[v] = nd
					prev[v] = eid
					h.push(item{node: v, dist: nd})
				}
				if total := nd + other[v]; total < best {
					best = total
					meet = v
				}
			}
			return true
		}
		return false
	}

	aliveF, aliveB := true, true
	for aliveF || aliveB {
		// Expand the smaller frontier first.
		if aliveF && (!aliveB || topDist(hf) <= topDist(hb)) {
			aliveF = relax(&hf, distF, distB, prevF, settledF, settledB)
		} else if aliveB {
			aliveB = relax(&hb, distB, distF, prevB, settledB, settledF)
		}
		if math.IsInf(best, 1) {
			continue
		}
		// Standard stopping rule: frontier minima sum past the best
		// crossing.
		if topDist(hf)+topDist(hb) >= best {
			break
		}
	}
	if meet < 0 {
		return Path{}, false
	}

	// Stitch src→meet (forward tree) and meet→dst (backward tree).
	forward := g.TreePathNodes(prevF, src, meet)
	var fEdges []EdgeID
	for at := meet; at != src; {
		eid := prevF[at]
		fEdges = append(fEdges, eid)
		at = g.edges[eid].Other(at)
	}
	for i, j := 0, len(fEdges)-1; i < j; i, j = i+1, j-1 {
		fEdges[i], fEdges[j] = fEdges[j], fEdges[i]
	}
	nodes := append([]NodeID(nil), forward...)
	edges := fEdges
	for at := meet; at != dst; {
		eid := prevB[at]
		edges = append(edges, eid)
		at = g.edges[eid].Other(at)
		nodes = append(nodes, at)
	}
	return Path{Nodes: nodes, Edges: edges, Weight: best}, true
}

func topDist(h minHeap) float64 {
	if len(h) == 0 {
		return math.Inf(1)
	}
	return h[0].dist
}
