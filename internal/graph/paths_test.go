package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

func TestPathsWithinDiamond(t *testing.T) {
	// src -1- m1 -1- dst  and  src -2- m2 -2- dst, plus m1 -0.5- m2.
	g := New()
	src, dst := g.EnsureNode("s"), g.EnsureNode("d")
	m1, m2 := g.EnsureNode("m1"), g.EnsureNode("m2")
	g.AddEdge(src, m1, 1)
	g.AddEdge(m1, dst, 1)
	g.AddEdge(src, m2, 2)
	g.AddEdge(m2, dst, 2)
	g.AddEdge(m1, m2, 0.5)

	paths, trunc := g.PathsWithin(src, dst, EnumerateOptions{Bound: 4})
	if trunc {
		t.Fatal("unexpected truncation")
	}
	// Within 4: s-m1-d (2), s-m1-m2-d (3.5), s-m2-d (4), s-m2-m1-d (3.5).
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4; got %+v", len(paths), paths)
	}
	for _, p := range paths {
		if p.Weight > 4 {
			t.Errorf("path exceeds bound: %+v", p)
		}
		seen := map[NodeID]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Errorf("path revisits node: %+v", p)
			}
			seen[n] = true
		}
	}

	paths, _ = g.PathsWithin(src, dst, EnumerateOptions{Bound: 2})
	if len(paths) != 1 || paths[0].Weight != 2 {
		t.Errorf("bound 2: %d paths, want only the shortest", len(paths))
	}

	paths, _ = g.PathsWithin(src, dst, EnumerateOptions{Bound: 1})
	if len(paths) != 0 {
		t.Errorf("bound below shortest: got %d paths", len(paths))
	}
}

func TestPathsWithinUnreachable(t *testing.T) {
	g := New()
	a, b := g.EnsureNode("a"), g.EnsureNode("b")
	paths, trunc := g.PathsWithin(a, b, EnumerateOptions{Bound: 100})
	if len(paths) != 0 || trunc {
		t.Errorf("unreachable: %d paths, trunc=%v", len(paths), trunc)
	}
}

func TestPathsWithinTruncation(t *testing.T) {
	// A ladder has exponentially many simple paths; cap at 5.
	g, src, dst := ladderGraph(t, 8, 1, 0.1)
	paths, trunc := g.PathsWithin(src, dst, EnumerateOptions{Bound: 100, MaxPaths: 5})
	if !trunc {
		t.Error("want truncation with MaxPaths=5")
	}
	if len(paths) != 5 {
		t.Errorf("paths = %d, want 5", len(paths))
	}
}

func TestPathsWithinPruningEquivalence(t *testing.T) {
	// Pruned and unpruned enumeration must agree on the path *set*.
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 10; trial++ {
		g := New()
		n := 12
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.EnsureNode(fmt.Sprintf("n%d", i))
		}
		for e := 0; e < 25; e++ {
			a, b := ids[rng.IntN(n)], ids[rng.IntN(n)]
			if a == b {
				continue
			}
			g.AddEdge(a, b, 1+rng.Float64()*3)
		}
		src, dst := ids[0], ids[n-1]
		sp, ok := g.ShortestPath(src, dst)
		if !ok {
			continue
		}
		bound := sp.Weight * 1.5
		p1, t1 := g.PathsWithin(src, dst, EnumerateOptions{Bound: bound})
		p2, t2 := g.PathsWithin(src, dst, EnumerateOptions{Bound: bound, DisablePruning: true})
		if t1 || t2 {
			continue
		}
		if len(p1) != len(p2) {
			t.Fatalf("trial %d: pruned=%d unpruned=%d paths", trial, len(p1), len(p2))
		}
		key := func(p Path) string { return fmt.Sprint(p.Nodes) }
		set := map[string]bool{}
		for _, p := range p1 {
			set[key(p)] = true
		}
		for _, p := range p2 {
			if !set[key(p)] {
				t.Fatalf("trial %d: unpruned found path missing from pruned: %v", trial, p.Nodes)
			}
		}
	}
}

func TestEdgeRemovalChainHasZeroAPA(t *testing.T) {
	g, ids := lineGraph(t, 10)
	src, dst := ids[0], ids[10]
	if apa := g.APA(src, dst, 100); apa != 0 {
		t.Errorf("chain APA = %v, want 0", apa)
	}
	res := g.EdgeRemovalAnalysis(src, dst, 100)
	for _, r := range res {
		if r.WithinBound || !math.IsInf(r.Latency, 1) {
			t.Errorf("chain edge %d: %+v, want disconnected", r.Edge, r)
		}
	}
}

func TestEdgeRemovalLadderHasHighAPA(t *testing.T) {
	// Cheap rungs: removing any single rail edge leaves a detour through
	// the other rail at small extra cost.
	g, src, dst := ladderGraph(t, 6, 1, 0.05)
	sp, _ := g.ShortestPath(src, dst)
	apa := g.APA(src, dst, sp.Weight*1.6)
	if apa != 1 {
		t.Errorf("ladder APA = %v, want 1 (every edge has an alternate)", apa)
	}
}

func TestEdgeRemovalAsymmetricLadderTightBound(t *testing.T) {
	// Rail A is the fast rail; rail B is 20% slower. Under a tight bound,
	// removing a fast-rail edge forces a detour that violates the bound,
	// so tight-bound APA is strictly below loose-bound APA.
	g := New()
	src, dst := g.EnsureNode("s"), g.EnsureNode("d")
	k := 5
	as := make([]NodeID, k)
	bs := make([]NodeID, k)
	for i := 0; i < k; i++ {
		as[i] = g.EnsureNode(fmt.Sprintf("A%d", i))
		bs[i] = g.EnsureNode(fmt.Sprintf("B%d", i))
	}
	g.AddEdge(src, as[0], 1)
	g.AddEdge(src, bs[0], 1.2)
	for i := 0; i < k-1; i++ {
		g.AddEdge(as[i], as[i+1], 1)
		g.AddEdge(bs[i], bs[i+1], 1.2)
	}
	for i := 0; i < k; i++ {
		g.AddEdge(as[i], bs[i], 0.05)
	}
	g.AddEdge(as[k-1], dst, 1)
	g.AddEdge(bs[k-1], dst, 1.2)

	sp, ok := g.ShortestPath(src, dst)
	if !ok || sp.Weight != 6 {
		t.Fatalf("shortest = %+v, want weight 6 on fast rail", sp)
	}
	loose := g.APA(src, dst, sp.Weight*1.6)
	tight := g.APA(src, dst, sp.Weight*1.01)
	if loose != 1 {
		t.Errorf("loose APA = %v, want 1", loose)
	}
	if tight >= loose {
		t.Errorf("tight-bound APA %v should be < loose-bound APA %v", tight, loose)
	}
}

func TestEdgeRemovalFastMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	for trial := 0; trial < 20; trial++ {
		g := New()
		n := 15
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.EnsureNode(fmt.Sprintf("n%d", i))
		}
		for e := 0; e < 35; e++ {
			a, b := ids[rng.IntN(n)], ids[rng.IntN(n)]
			if a == b {
				continue
			}
			g.AddEdge(a, b, 0.5+rng.Float64()*2)
		}
		src, dst := ids[0], ids[n-1]
		sp, ok := g.ShortestPath(src, dst)
		if !ok {
			continue
		}
		bound := sp.Weight * 1.3
		slow := g.EdgeRemovalAnalysis(src, dst, bound)
		fast := g.EdgeRemovalAnalysisFast(src, dst, bound)
		if len(slow) != len(fast) {
			t.Fatalf("trial %d: result lengths differ", trial)
		}
		for i := range slow {
			if slow[i].Edge != fast[i].Edge || slow[i].WithinBound != fast[i].WithinBound {
				t.Fatalf("trial %d edge %d: slow=%+v fast=%+v",
					trial, slow[i].Edge, slow[i], fast[i])
			}
		}
	}
}

func TestEdgeRemovalRestoresState(t *testing.T) {
	g, ids := lineGraph(t, 5)
	pre := make([]bool, g.NumEdges())
	for i := range pre {
		pre[i] = g.Edge(EdgeID(i)).Disabled
	}
	g.EdgeRemovalAnalysis(ids[0], ids[5], 100)
	g.EdgeRemovalAnalysisFast(ids[0], ids[5], 100)
	for i := range pre {
		if g.Edge(EdgeID(i)).Disabled != pre[i] {
			t.Errorf("edge %d disabled state mutated", i)
		}
	}
}

func TestEdgeRemovalSkipsDisabled(t *testing.T) {
	g, ids := lineGraph(t, 3)
	extra, _ := g.AddEdge(ids[0], ids[3], 10)
	g.SetDisabled(extra, true)
	res := g.EdgeRemovalAnalysis(ids[0], ids[3], 100)
	if len(res) != 3 {
		t.Errorf("results = %d, want 3 (disabled edge excluded)", len(res))
	}
}

func TestAPAUnreachableBaseline(t *testing.T) {
	g := New()
	a, b := g.EnsureNode("a"), g.EnsureNode("b")
	c := g.EnsureNode("c")
	g.AddEdge(a, c, 1) // b unreachable
	if apa := g.APA(a, b, 100); apa != 0 {
		t.Errorf("APA with unreachable dst = %v, want 0", apa)
	}
}
