package graph

import "sort"

// KShortestPaths returns up to k loop-free paths from src to dst in
// non-decreasing weight order, using Yen's algorithm. The first result
// equals ShortestPath; subsequent results are the next-best simple
// paths. Duplicate paths are never returned.
//
// The reconstruction layer uses it to rank a braided network's diverse
// physical routes — the infrastructure behind the paper's "more
// alternate paths" observation (§5) without the 5%-bound framing.
func (g *Graph) KShortestPaths(src, dst NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst)
	if !ok {
		return nil
	}
	accepted := []Path{first}
	seen := map[string]bool{pathKey(first): true}
	var candidates []Path

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		// Each node of the previous path (except the terminal) is a
		// spur point.
		for spurIdx := 0; spurIdx < len(prev.Nodes)-1; spurIdx++ {
			spurNode := prev.Nodes[spurIdx]
			rootNodes := prev.Nodes[:spurIdx+1]
			rootEdges := prev.Edges[:spurIdx]

			var disabled []EdgeID
			disable := func(id EdgeID) {
				if !g.edges[id].Disabled {
					g.edges[id].Disabled = true
					disabled = append(disabled, id)
				}
			}
			// Block the edges that previous accepted paths (sharing
			// this root) take out of the spur node.
			for _, p := range accepted {
				if len(p.Nodes) > spurIdx && sameNodes(p.Nodes[:spurIdx+1], rootNodes) &&
					len(p.Edges) > spurIdx {
					disable(p.Edges[spurIdx])
				}
			}
			// Remove the root nodes (other than the spur node) from the
			// graph by disabling their incident edges.
			for _, n := range rootNodes[:len(rootNodes)-1] {
				for _, eid := range g.adj[n] {
					disable(eid)
				}
			}

			spurPath, ok := g.ShortestPath(spurNode, dst)

			for _, id := range disabled {
				g.edges[id].Disabled = false
			}
			if !ok {
				continue
			}
			total := Path{
				Nodes:  append(append([]NodeID(nil), rootNodes...), spurPath.Nodes[1:]...),
				Edges:  append(append([]EdgeID(nil), rootEdges...), spurPath.Edges...),
				Weight: rootWeight(g, rootEdges) + spurPath.Weight,
			}
			key := pathKey(total)
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool {
			return candidates[i].Weight < candidates[j].Weight
		})
		accepted = append(accepted, candidates[0])
		candidates = candidates[1:]
	}
	return accepted
}

func rootWeight(g *Graph, edges []EdgeID) float64 {
	var w float64
	for _, eid := range edges {
		w += g.edges[eid].Weight
	}
	return w
}

func sameNodes(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pathKey(p Path) string {
	// The edge sequence identifies a path: in a multigraph, parallel
	// edges between the same towers are distinct paths.
	key := make([]byte, 0, len(p.Edges)*4)
	for _, e := range p.Edges {
		key = append(key, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(key)
}
