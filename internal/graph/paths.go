package graph

import "math"

// EnumerateOptions controls bounded loop-free path enumeration.
type EnumerateOptions struct {
	// Bound is the inclusive maximum total weight of returned paths.
	Bound float64
	// MaxPaths caps the number of returned paths (0 = DefaultMaxPaths).
	// Enumeration of simple paths is worst-case exponential; the cap is a
	// safety valve, and hitting it is reported via the truncated result.
	MaxPaths int
	// DisablePruning turns off the distance-to-target lower-bound pruning
	// and bounds the search by accumulated cost alone. It exists only for
	// the ablation benchmark.
	DisablePruning bool
}

// DefaultMaxPaths is the default enumeration cap.
const DefaultMaxPaths = 100000

// PathsWithin enumerates loop-free (simple) paths from src to dst whose
// total weight is at most opts.Bound, in DFS order. truncated reports
// whether the MaxPaths cap cut enumeration short.
//
// The search prunes any prefix whose cost plus the exact remaining
// shortest-path cost to dst exceeds the bound, computed from one reverse
// Dijkstra pass; this is what makes the "all loop-free paths within 5% of
// the geodesic c-latency" analysis of Fig 4(a) tractable.
func (g *Graph) PathsWithin(src, dst NodeID, opts EnumerateOptions) (paths []Path, truncated bool) {
	maxPaths := opts.MaxPaths
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	var toDst []float64
	if !opts.DisablePruning {
		toDst = g.DistancesFrom(dst) // undirected: dist-to == dist-from
		if math.IsInf(toDst[src], 1) || toDst[src] > opts.Bound {
			return nil, false
		}
	}

	onPath := make([]bool, len(g.keys))
	var nodes []NodeID
	var edges []EdgeID

	var dfs func(u NodeID, cost float64) bool // returns false when capped
	dfs = func(u NodeID, cost float64) bool {
		if u == dst {
			p := Path{
				Nodes:  append([]NodeID(nil), nodes...),
				Edges:  append([]EdgeID(nil), edges...),
				Weight: cost,
			}
			paths = append(paths, p)
			return len(paths) < maxPaths
		}
		for _, eid := range g.adj[u] {
			e := &g.edges[eid]
			if e.Disabled {
				continue
			}
			v := e.Other(u)
			if onPath[v] {
				continue
			}
			nc := cost + e.Weight
			if nc > opts.Bound {
				continue
			}
			if toDst != nil && nc+toDst[v] > opts.Bound {
				continue
			}
			onPath[v] = true
			nodes = append(nodes, v)
			edges = append(edges, eid)
			ok := dfs(v, nc)
			nodes = nodes[:len(nodes)-1]
			edges = edges[:len(edges)-1]
			onPath[v] = false
			if !ok {
				return false
			}
		}
		return true
	}

	onPath[src] = true
	nodes = append(nodes, src)
	capped := !dfs(src, 0)
	return paths, capped
}

// RemovalResult reports, for one edge, whether the network still meets
// the latency bound with that edge removed.
type RemovalResult struct {
	Edge        EdgeID
	WithinBound bool
	// Latency is the s-t shortest-path weight without the edge
	// (+Inf when disconnected).
	Latency float64
}

// EdgeRemovalAnalysis removes each enabled edge in turn and reports
// whether the src-dst shortest path of the remaining graph stays within
// bound. This is the paper's APA computation (§5): APA is the fraction
// of results with WithinBound == true.
//
// The graph is restored to its original enabled/disabled state before
// returning.
func (g *Graph) EdgeRemovalAnalysis(src, dst NodeID, bound float64) []RemovalResult {
	var out []RemovalResult
	for id := range g.edges {
		eid := EdgeID(id)
		if g.edges[id].Disabled {
			continue
		}
		g.edges[id].Disabled = true
		lat := math.Inf(1)
		if p, ok := g.ShortestPath(src, dst); ok {
			lat = p.Weight
		}
		g.edges[id].Disabled = false
		out = append(out, RemovalResult{
			Edge:        eid,
			WithinBound: lat <= bound,
			Latency:     lat,
		})
	}
	return out
}

// EdgeRemovalAnalysisFast is the optimized variant: an edge not on the
// current shortest path cannot worsen it when removed, so only
// shortest-path edges need a re-run. Results are identical to
// EdgeRemovalAnalysis whenever the baseline shortest path is within
// bound; it exists both as the production implementation and as the
// ablation comparison point.
func (g *Graph) EdgeRemovalAnalysisFast(src, dst NodeID, bound float64) []RemovalResult {
	base, ok := g.ShortestPath(src, dst)
	if !ok || base.Weight > bound {
		// Baseline already violates the bound; every removal does too.
		var out []RemovalResult
		baseLat := math.Inf(1)
		if ok {
			baseLat = base.Weight
		}
		for id := range g.edges {
			if g.edges[id].Disabled {
				continue
			}
			out = append(out, RemovalResult{Edge: EdgeID(id), WithinBound: false, Latency: baseLat})
		}
		return out
	}
	onSP := make(map[EdgeID]bool, len(base.Edges))
	for _, eid := range base.Edges {
		onSP[eid] = true
	}
	var out []RemovalResult
	for id := range g.edges {
		eid := EdgeID(id)
		if g.edges[id].Disabled {
			continue
		}
		if !onSP[eid] {
			out = append(out, RemovalResult{Edge: eid, WithinBound: true, Latency: base.Weight})
			continue
		}
		g.edges[id].Disabled = true
		lat := math.Inf(1)
		if p, ok := g.ShortestPath(src, dst); ok {
			lat = p.Weight
		}
		g.edges[id].Disabled = false
		out = append(out, RemovalResult{Edge: eid, WithinBound: lat <= bound, Latency: lat})
	}
	return out
}

// APA returns the alternate-path-availability fraction in [0, 1]: the
// share of enabled edges whose individual removal keeps the src-dst
// latency within bound. Returns 0 for an edgeless graph.
func (g *Graph) APA(src, dst NodeID, bound float64) float64 {
	res := g.EdgeRemovalAnalysisFast(src, dst, bound)
	if len(res) == 0 {
		return 0
	}
	ok := 0
	for _, r := range res {
		if r.WithinBound {
			ok++
		}
	}
	return float64(ok) / float64(len(res))
}
