package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	for trial := 0; trial < 40; trial++ {
		g := New()
		n := 40
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.EnsureNode(fmt.Sprintf("n%d", i))
		}
		for e := 0; e < 100; e++ {
			a, b := ids[rng.IntN(n)], ids[rng.IntN(n)]
			if a == b {
				continue
			}
			g.AddEdge(a, b, 0.2+rng.Float64()*5)
		}
		src, dst := ids[rng.IntN(n)], ids[rng.IntN(n)]
		p1, ok1 := g.ShortestPath(src, dst)
		p2, ok2 := g.ShortestPathBidirectional(src, dst)
		if ok1 != ok2 {
			t.Fatalf("trial %d: reachability differs (%v vs %v)", trial, ok1, ok2)
		}
		if !ok1 {
			continue
		}
		if math.Abs(p1.Weight-p2.Weight) > 1e-9 {
			t.Fatalf("trial %d: weights differ: %v vs %v", trial, p1.Weight, p2.Weight)
		}
		// The returned path must actually have its claimed weight.
		var sum float64
		for _, eid := range p2.Edges {
			sum += g.Edge(eid).Weight
		}
		if math.Abs(sum-p2.Weight) > 1e-9 {
			t.Fatalf("trial %d: path edges sum %v, claimed %v", trial, sum, p2.Weight)
		}
		// And be a connected walk src→dst.
		if p2.Nodes[0] != src || p2.Nodes[len(p2.Nodes)-1] != dst {
			t.Fatalf("trial %d: endpoints wrong", trial)
		}
		for i, eid := range p2.Edges {
			e := g.Edge(eid)
			u, v := p2.Nodes[i], p2.Nodes[i+1]
			if !((e.A == u && e.B == v) || (e.A == v && e.B == u)) {
				t.Fatalf("trial %d: edge %d does not connect consecutive nodes", trial, i)
			}
		}
	}
}

func TestBidirectionalEdgeCases(t *testing.T) {
	g := New()
	a, b := g.EnsureNode("a"), g.EnsureNode("b")
	g.EnsureNode("lone")

	if p, ok := g.ShortestPathBidirectional(a, a); !ok || p.Weight != 0 {
		t.Errorf("self path = %+v, %v", p, ok)
	}
	if _, ok := g.ShortestPathBidirectional(a, b); ok {
		t.Error("disconnected reported reachable")
	}
	g.AddEdge(a, b, 2)
	p, ok := g.ShortestPathBidirectional(a, b)
	if !ok || p.Weight != 2 || p.Len() != 1 {
		t.Errorf("single edge path = %+v, %v", p, ok)
	}
}

func TestBidirectionalRespectsDisabled(t *testing.T) {
	g := New()
	a, b, c := g.EnsureNode("a"), g.EnsureNode("b"), g.EnsureNode("c")
	direct, _ := g.AddEdge(a, c, 1)
	g.AddEdge(a, b, 2)
	g.AddEdge(b, c, 2)
	g.SetDisabled(direct, true)
	p, ok := g.ShortestPathBidirectional(a, c)
	if !ok || p.Weight != 4 {
		t.Errorf("with direct disabled: %+v", p)
	}
}
