package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

func TestKShortestDiamond(t *testing.T) {
	g := New()
	s, d := g.EnsureNode("s"), g.EnsureNode("d")
	m1, m2 := g.EnsureNode("m1"), g.EnsureNode("m2")
	g.AddEdge(s, m1, 1)
	g.AddEdge(m1, d, 1) // s-m1-d = 2
	g.AddEdge(s, m2, 2)
	g.AddEdge(m2, d, 2)    // s-m2-d = 4
	g.AddEdge(m1, m2, 0.5) // s-m1-m2-d = 3.5 and s-m2-m1-d = 3.5

	paths := g.KShortestPaths(s, d, 10)
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(paths))
	}
	wantWeights := []float64{2, 3.5, 3.5, 4}
	for i, p := range paths {
		if math.Abs(p.Weight-wantWeights[i]) > 1e-12 {
			t.Errorf("path %d weight = %v, want %v", i, p.Weight, wantWeights[i])
		}
		// Simple paths only.
		seen := map[NodeID]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Errorf("path %d revisits node %d", i, n)
			}
			seen[n] = true
		}
	}
	// First result equals ShortestPath.
	sp, _ := g.ShortestPath(s, d)
	if paths[0].Weight != sp.Weight {
		t.Errorf("first path %v != shortest %v", paths[0].Weight, sp.Weight)
	}
}

func TestKShortestK1AndUnreachable(t *testing.T) {
	g := New()
	a, b := g.EnsureNode("a"), g.EnsureNode("b")
	g.EnsureNode("lone")
	g.AddEdge(a, b, 1)
	if paths := g.KShortestPaths(a, b, 1); len(paths) != 1 {
		t.Errorf("k=1 paths = %d", len(paths))
	}
	if paths := g.KShortestPaths(a, b, 0); paths != nil {
		t.Errorf("k=0 should be nil")
	}
	lone, _ := g.Node("lone")
	if paths := g.KShortestPaths(a, lone, 3); paths != nil {
		t.Errorf("unreachable should be nil, got %d", len(paths))
	}
}

func TestKShortestRestoresGraph(t *testing.T) {
	g, src, dst := ladderGraph(t, 4, 1, 0.2)
	before := make([]bool, g.NumEdges())
	for i := range before {
		before[i] = g.Edge(EdgeID(i)).Disabled
	}
	g.KShortestPaths(src, dst, 5)
	for i := range before {
		if g.Edge(EdgeID(i)).Disabled != before[i] {
			t.Fatalf("edge %d disabled state leaked", i)
		}
	}
}

func TestKShortestMatchesEnumeration(t *testing.T) {
	// On random graphs, Yen's top-k must equal the k best simple paths
	// found by exhaustive bounded enumeration.
	rng := rand.New(rand.NewPCG(21, 4))
	for trial := 0; trial < 10; trial++ {
		g := New()
		n := 9
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.EnsureNode(fmt.Sprintf("n%d", i))
		}
		for e := 0; e < 16; e++ {
			a, b := ids[rng.IntN(n)], ids[rng.IntN(n)]
			if a == b {
				continue
			}
			g.AddEdge(a, b, 0.5+rng.Float64()*3)
		}
		src, dst := ids[0], ids[n-1]
		all, trunc := g.PathsWithin(src, dst, EnumerateOptions{Bound: math.Inf(1)})
		if trunc || len(all) == 0 {
			continue
		}
		// Sort enumerated paths by weight.
		weights := make([]float64, len(all))
		for i, p := range all {
			weights[i] = p.Weight
		}
		sortFloats(weights)

		k := 4
		if k > len(all) {
			k = len(all)
		}
		paths := g.KShortestPaths(src, dst, k)
		if len(paths) != k {
			t.Fatalf("trial %d: got %d paths, want %d", trial, len(paths), k)
		}
		for i := 0; i < k; i++ {
			if math.Abs(paths[i].Weight-weights[i]) > 1e-9 {
				t.Fatalf("trial %d: path %d weight %v, enumeration says %v",
					trial, i, paths[i].Weight, weights[i])
			}
		}
	}
}

func TestKShortestSortedAndUnique(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 5))
	for trial := 0; trial < 20; trial++ {
		g := New()
		n := 25
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.EnsureNode(fmt.Sprintf("n%d", i))
		}
		for e := 0; e < 60; e++ {
			a, b := ids[rng.IntN(n)], ids[rng.IntN(n)]
			if a == b {
				continue
			}
			g.AddEdge(a, b, 0.5+rng.Float64()*4)
		}
		paths := g.KShortestPaths(ids[0], ids[n-1], 8)
		seen := map[string]bool{}
		for i, p := range paths {
			if i > 0 && p.Weight < paths[i-1].Weight-1e-12 {
				t.Fatalf("trial %d: weights not sorted at %d", trial, i)
			}
			k := pathKey(p)
			if seen[k] {
				t.Fatalf("trial %d: duplicate path at %d", trial, i)
			}
			seen[k] = true
			// Simplicity.
			nodes := map[NodeID]bool{}
			for _, nd := range p.Nodes {
				if nodes[nd] {
					t.Fatalf("trial %d: path %d revisits a node", trial, i)
				}
				nodes[nd] = true
			}
		}
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
