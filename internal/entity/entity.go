// Package entity implements the paper's proposed future work (§2.4, §6):
// identifying which filing entities jointly operate one physical
// network. It offers two complementary signals:
//
//   - registration clustering: entities sharing an FCC Registration
//     Number filed by the same registrant;
//   - complementary-link analysis: pairs of licensees, neither of which
//     has an end-to-end path alone, whose combined filings do — §2.4's
//     "evaluating which networks have complementary links that together
//     form end-end paths".
package entity

import (
	"sort"

	"hftnetview/internal/core"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

// ClustersByFRN groups licensee names that share an FCC Registration
// Number. Only groups with at least two names are returned, sorted
// internally and by first member.
func ClustersByFRN(db *uls.Database) [][]string {
	byFRN := make(map[string]map[string]bool)
	for _, l := range db.All() {
		if l.FRN == "" {
			continue
		}
		set := byFRN[l.FRN]
		if set == nil {
			set = make(map[string]bool)
			byFRN[l.FRN] = set
		}
		set[l.Licensee] = true
	}
	var out [][]string
	for _, set := range byFRN {
		if len(set) < 2 {
			continue
		}
		group := make([]string, 0, len(set))
		for name := range set {
			group = append(group, name)
		}
		sort.Strings(group)
		out = append(out, group)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ClustersByContact groups licensee names that file under the same
// contact email address — the §6 signal ("analyzing items like the
// licensee email addresses"). Only groups with at least two names are
// returned.
func ClustersByContact(db *uls.Database) [][]string {
	byEmail := make(map[string]map[string]bool)
	for _, l := range db.All() {
		if l.ContactEmail == "" {
			continue
		}
		set := byEmail[l.ContactEmail]
		if set == nil {
			set = make(map[string]bool)
			byEmail[l.ContactEmail] = set
		}
		set[l.Licensee] = true
	}
	var out [][]string
	for _, set := range byEmail {
		if len(set) < 2 {
			continue
		}
		group := make([]string, 0, len(set))
		for name := range set {
			group = append(group, name)
		}
		sort.Strings(group)
		out = append(out, group)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Pair is a complementary licensee pair: neither connected alone, the
// union connected.
type Pair struct {
	A, B string
	// Latency is the union network's end-to-end latency on the path.
	Latency units.Latency
	// TowerCount is the union route's tower count.
	TowerCount int
}

// ComplementaryPairs tests every pair among candidates (nil = every
// licensee in the database): pairs where neither member has an
// end-to-end route on the path at the date, but their union does.
// Pairs are returned sorted by (A, B); within a pair A < B. It is the
// one-shot form of ComplementaryPairsVia over an uncached provider.
func ComplementaryPairs(db *uls.Database, date uls.Date, path sites.Path,
	candidates []string, opts core.Options) ([]Pair, error) {
	return ComplementaryPairsVia(core.DirectProvider(db), date, path, candidates, opts)
}

// ComplementaryPairsVia is ComplementaryPairs over a SnapshotProvider.
// The O(n) per-licensee screens and the O(n²) union reconstructions are
// both resolved as provider batches, so the snapshot engine fans them
// out and reuses any snapshots other analyses already built.
func ComplementaryPairsVia(p core.SnapshotProvider, date uls.Date, path sites.Path,
	candidates []string, opts core.Options) ([]Pair, error) {
	if candidates == nil {
		candidates = p.DB().Licensees()
	}
	dcs := []sites.DataCenter{path.From, path.To}

	// Screen per-licensee connectivity; connected licensees cannot be
	// part of a complementary pair (they are networks already).
	reqs := make([]core.SnapshotRequest, len(candidates))
	for i, name := range candidates {
		reqs[i] = core.SnapshotRequest{
			Licensees: []string{name}, Date: date, DCs: dcs, Opts: opts,
		}
	}
	nets, err := p.Snapshots(reqs)
	if err != nil {
		return nil, err
	}
	var loners []string
	for i, n := range nets {
		if !n.Connected(path) && len(n.Links) > 0 {
			loners = append(loners, candidates[i])
		}
	}
	sort.Strings(loners)

	type pairIdx struct{ a, b string }
	var pairs []pairIdx
	var unionReqs []core.SnapshotRequest
	for i := 0; i < len(loners); i++ {
		for j := i + 1; j < len(loners); j++ {
			pairs = append(pairs, pairIdx{loners[i], loners[j]})
			unionReqs = append(unionReqs, core.SnapshotRequest{
				Licensees: []string{loners[i], loners[j]},
				Date:      date, DCs: dcs, Opts: opts,
			})
		}
	}
	unions, err := p.Snapshots(unionReqs)
	if err != nil {
		return nil, err
	}

	var out []Pair
	for i, u := range unions {
		r, ok := u.BestRoute(path)
		if !ok {
			continue
		}
		out = append(out, Pair{
			A: pairs[i].a, B: pairs[i].b,
			Latency:    r.Latency,
			TowerCount: r.TowerCount,
		})
	}
	return out, nil
}
