package entity

import (
	"testing"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/sites"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

var (
	corpus   *uls.Database
	snapshot = uls.NewDate(2020, time.April, 1)
	pathNY4  = sites.Path{From: sites.CME, To: sites.NY4}
)

func db(t *testing.T) *uls.Database {
	t.Helper()
	if corpus == nil {
		d, err := synth.Generate()
		if err != nil {
			t.Fatal(err)
		}
		corpus = d
	}
	return corpus
}

func TestClustersByFRN(t *testing.T) {
	clusters := ClustersByFRN(db(t))
	var joint []string
	for _, c := range clusters {
		for _, name := range c {
			if name == synth.JointA {
				joint = c
			}
		}
	}
	if joint == nil {
		t.Fatalf("joint pair not clustered; clusters = %v", clusters)
	}
	if len(joint) != 2 || joint[0] != synth.JointA || joint[1] != synth.JointB {
		t.Errorf("joint cluster = %v, want [%s %s]", joint, synth.JointA, synth.JointB)
	}
	// The ten single-entity HFT networks must NOT share FRNs.
	for _, c := range clusters {
		for _, name := range c {
			for _, spec := range synth.HFTNetworks() {
				if spec.JointPartner == "" && name == spec.Name {
					t.Errorf("%s unexpectedly clustered: %v", name, c)
				}
			}
		}
	}
}

func TestClustersByContact(t *testing.T) {
	clusters := ClustersByContact(db(t))
	if len(clusters) != 1 {
		t.Fatalf("contact clusters = %v, want only the joint pair", clusters)
	}
	got := clusters[0]
	if len(got) != 2 || got[0] != synth.JointA || got[1] != synth.JointB {
		t.Errorf("contact cluster = %v", got)
	}
	// Every corpus license carries a contact address.
	for _, l := range db(t).All() {
		if l.ContactEmail == "" {
			t.Fatalf("%s has no contact email", l.CallSign)
		}
	}
}

func TestJointEntitiesDisconnectedAlone(t *testing.T) {
	opts := core.DefaultOptions()
	for _, name := range []string{synth.JointA, synth.JointB} {
		n, err := core.Reconstruct(db(t), name, snapshot, sites.All, opts)
		if err != nil {
			t.Fatal(err)
		}
		if n.Connected(pathNY4) {
			t.Errorf("%s should not be connected alone", name)
		}
		if len(n.Links) == 0 {
			t.Errorf("%s has no links at all", name)
		}
	}
}

func TestReconstructUnionConnects(t *testing.T) {
	u, err := core.ReconstructUnion(db(t), []string{synth.JointA, synth.JointB},
		snapshot, sites.All, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := u.BestRoute(pathNY4)
	if !ok {
		t.Fatal("union should be connected")
	}
	// Calibrated to 4.055 ms.
	if ms := r.Latency.Milliseconds(); ms < 4.0549 || ms > 4.0551 {
		t.Errorf("union latency = %.5f ms, want 4.05500", ms)
	}
	if r.TowerCount != 26 {
		t.Errorf("union towers = %d, want 26", r.TowerCount)
	}
	if u.Licensee != synth.JointA+" + "+synth.JointB {
		t.Errorf("union label = %q", u.Licensee)
	}
}

func TestComplementaryPairs(t *testing.T) {
	pairs, err := ComplementaryPairs(db(t), snapshot, pathNY4, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v, want exactly the joint pair", pairs)
	}
	p := pairs[0]
	if p.A != synth.JointA || p.B != synth.JointB {
		t.Errorf("pair = %s + %s", p.A, p.B)
	}
	if ms := p.Latency.Milliseconds(); ms < 4.05 || ms > 4.06 {
		t.Errorf("pair latency = %.5f", ms)
	}
}

func TestComplementaryPairsSubset(t *testing.T) {
	// Restricting candidates to names without the partner finds nothing.
	pairs, err := ComplementaryPairs(db(t), snapshot, pathNY4,
		[]string{synth.JointA, "Great Lakes Relay"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("pairs = %+v, want none", pairs)
	}
}

func TestReconstructUnionValidation(t *testing.T) {
	if _, err := core.ReconstructUnion(db(t), nil, snapshot, sites.All,
		core.DefaultOptions()); err == nil {
		t.Error("empty licensee list accepted")
	}
}
