package yamlx

import (
	"fmt"
	"strconv"
	"strings"
)

// Unmarshal parses the YAML subset produced by Marshal: block mappings,
// block sequences (including "- key: value" map items), and scalars.
// Lines whose first non-space character is '#' are comments.
func Unmarshal(data []byte) (any, error) {
	p := &parser{}
	for n, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, "\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := countIndent(line)
		if indent%2 != 0 {
			return nil, fmt.Errorf("yamlx: line %d: odd indentation %d", n+1, indent)
		}
		p.lines = append(p.lines, parsedLine{no: n + 1, indent: indent / 2, text: trimmed})
	}
	if len(p.lines) == 0 {
		return nil, nil
	}
	v, next, err := p.parseBlock(0, p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(p.lines) {
		return nil, fmt.Errorf("yamlx: line %d: unexpected content after document",
			p.lines[next].no)
	}
	return v, nil
}

type parsedLine struct {
	no     int
	indent int // in 2-space units
	text   string
}

type parser struct {
	lines []parsedLine
}

func countIndent(line string) int {
	n := 0
	for n < len(line) && line[n] == ' ' {
		n++
	}
	if n < len(line) && line[n] == '\t' {
		// Tabs are illegal indentation in YAML; report as odd indent via
		// an impossible value.
		return -1
	}
	return n
}

// parseBlock parses the block starting at line index i with the given
// indent level, returning the value and the index of the first line after
// the block.
func (p *parser) parseBlock(i, indent int) (any, int, error) {
	if strings.HasPrefix(p.lines[i].text, "- ") || p.lines[i].text == "-" {
		return p.parseSequence(i, indent)
	}
	return p.parseMapping(i, indent)
}

func (p *parser) parseSequence(i, indent int) (any, int, error) {
	var items []any
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent != indent || !(strings.HasPrefix(ln.text, "- ") || ln.text == "-") {
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			return nil, 0, fmt.Errorf("yamlx: line %d: empty sequence item", ln.no)
		}
		if key, val, isMap := splitKeyValue(rest); isMap {
			// Map item: the "- " consumed one indent unit; the map body
			// continues at indent+1.
			m := NewMap()
			next, err := p.parseMapEntry(m, i, indent+1, key, val, ln.no)
			if err != nil {
				return nil, 0, err
			}
			i = next
			for i < len(p.lines) && p.lines[i].indent == indent+1 &&
				!strings.HasPrefix(p.lines[i].text, "- ") {
				k2, v2, ok := splitKeyValue(p.lines[i].text)
				if !ok {
					return nil, 0, fmt.Errorf("yamlx: line %d: expected key: value",
						p.lines[i].no)
				}
				next, err := p.parseMapEntry(m, i, indent+1, k2, v2, p.lines[i].no)
				if err != nil {
					return nil, 0, err
				}
				i = next
			}
			items = append(items, m)
			continue
		}
		sc, err := parseScalar(rest)
		if err != nil {
			return nil, 0, fmt.Errorf("yamlx: line %d: %v", ln.no, err)
		}
		items = append(items, sc)
		i++
	}
	return items, i, nil
}

func (p *parser) parseMapping(i, indent int) (any, int, error) {
	m := NewMap()
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent != indent || strings.HasPrefix(ln.text, "- ") {
			break
		}
		key, val, ok := splitKeyValue(ln.text)
		if !ok {
			return nil, 0, fmt.Errorf("yamlx: line %d: expected key: value, got %q",
				ln.no, ln.text)
		}
		next, err := p.parseMapEntry(m, i, indent, key, val, ln.no)
		if err != nil {
			return nil, 0, err
		}
		i = next
	}
	return m, i, nil
}

// parseMapEntry handles one "key: value" or "key:" line at index i and
// returns the index after the entry (including any nested block).
func (p *parser) parseMapEntry(m *Map, i, indent int, key, val string, lineNo int) (int, error) {
	k, err := parseKey(key)
	if err != nil {
		return 0, fmt.Errorf("yamlx: line %d: %v", lineNo, err)
	}
	if _, dup := m.Get(k); dup {
		return 0, fmt.Errorf("yamlx: line %d: duplicate key %q", lineNo, k)
	}
	if val != "" {
		sc, err := parseScalar(val)
		if err != nil {
			return 0, fmt.Errorf("yamlx: line %d: %v", lineNo, err)
		}
		m.Set(k, sc)
		return i + 1, nil
	}
	// Value is a nested block (or an implicit null when nothing deeper
	// follows). Sequence items may sit at the same indent as the key.
	j := i + 1
	if j >= len(p.lines) {
		m.Set(k, nil)
		return j, nil
	}
	nested := p.lines[j]
	switch {
	case nested.indent >= indent+1:
		v, next, err := p.parseBlock(j, nested.indent)
		if err != nil {
			return 0, err
		}
		m.Set(k, v)
		return next, nil
	case nested.indent == indent && strings.HasPrefix(nested.text, "- "):
		v, next, err := p.parseSequence(j, indent)
		if err != nil {
			return 0, err
		}
		m.Set(k, v)
		return next, nil
	default:
		m.Set(k, nil)
		return j, nil
	}
}

// splitKeyValue splits a "key: value" or "key:" line, honoring quoted
// keys. isMap is false when the line has no top-level ": " separator.
func splitKeyValue(s string) (key, value string, isMap bool) {
	if strings.HasPrefix(s, `"`) {
		// Quoted key: find the closing quote.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", "", false
		}
		rest := s[end+1:]
		if rest == ":" {
			return s[:end+1], "", true
		}
		if strings.HasPrefix(rest, ": ") {
			return s[:end+1], strings.TrimSpace(rest[2:]), true
		}
		return "", "", false
	}
	if idx := strings.Index(s, ": "); idx >= 0 {
		return s[:idx], strings.TrimSpace(s[idx+2:]), true
	}
	if strings.HasSuffix(s, ":") {
		return s[:len(s)-1], "", true
	}
	return "", "", false
}

func parseKey(s string) (string, error) {
	if strings.HasPrefix(s, `"`) {
		return strconv.Unquote(s)
	}
	return s, nil
}

func parseScalar(s string) (any, error) {
	switch s {
	case "null", "~", "Null", "NULL":
		return nil, nil
	case "true", "True", "TRUE":
		return true, nil
	case "false", "False", "FALSE":
		return false, nil
	case "{}":
		return NewMap(), nil
	case "[]":
		return []any{}, nil
	}
	if strings.HasPrefix(s, `"`) {
		return strconv.Unquote(s)
	}
	if strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") && len(s) >= 2 {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	switch s {
	case ".inf", "+.inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-.inf":
		return strconv.ParseFloat("-Inf", 64)
	case ".nan":
		return strconv.ParseFloat("NaN", 64)
	}
	return s, nil
}
