package yamlx

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	b, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return string(b)
}

func mustUnmarshal(t *testing.T, s string) any {
	t.Helper()
	v, err := Unmarshal([]byte(s))
	if err != nil {
		t.Fatalf("Unmarshal(%q): %v", s, err)
	}
	return v
}

func TestMarshalScalars(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{nil, "null\n"},
		{true, "true\n"},
		{false, "false\n"},
		{42, "42\n"},
		{int64(-7), "-7\n"},
		{3.5, "3.5\n"},
		{2.0, "2.0\n"}, // floats stay float-shaped
		{"hello", "hello\n"},
		{"needs quote: yes", "\"needs quote: yes\"\n"},
		{"123", "\"123\"\n"}, // numeric-looking string must quote
		{"true", "\"true\"\n"},
		{"", "\"\"\n"},
		{"- dash", "\"- dash\"\n"},
	}
	for _, c := range cases {
		if got := mustMarshal(t, c.in); got != c.want {
			t.Errorf("Marshal(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMarshalMapOrdering(t *testing.T) {
	m := NewMap().Set("name", "NLN").Set("alpha", 1).Set("beta", 2)
	got := mustMarshal(t, m)
	want := "name: NLN\nalpha: 1\nbeta: 2\n"
	if got != want {
		t.Errorf("ordered map:\n%q\nwant\n%q", got, want)
	}
	// Plain maps sort keys.
	got = mustMarshal(t, map[string]any{"b": 2, "a": 1})
	if got != "a: 1\nb: 2\n" {
		t.Errorf("sorted map: %q", got)
	}
}

func TestMarshalNested(t *testing.T) {
	doc := NewMap().
		Set("network", "Webline Holdings").
		Set("towers", []any{
			NewMap().Set("id", "T1").Set("lat", 41.76).Set("lon", -88.2),
			NewMap().Set("id", "T2").Set("lat", 41.70).Set("lon", -87.9),
		}).
		Set("meta", NewMap().Set("count", 2))
	got := mustMarshal(t, doc)
	want := strings.Join([]string{
		"network: Webline Holdings",
		"towers:",
		"  - id: T1",
		"    lat: 41.76",
		"    lon: -88.2",
		"  - id: T2",
		"    lat: 41.7",
		"    lon: -87.9",
		"meta:",
		"  count: 2",
		"",
	}, "\n")
	if got != want {
		t.Errorf("nested doc:\n%s\nwant:\n%s", got, want)
	}
}

func TestMarshalEmptyCollections(t *testing.T) {
	doc := NewMap().Set("links", []any{}).Set("attrs", NewMap())
	got := mustMarshal(t, doc)
	if got != "links: []\nattrs: {}\n" {
		t.Errorf("empty collections: %q", got)
	}
}

func TestRoundTripDocument(t *testing.T) {
	doc := NewMap().
		Set("name", "New Line Networks").
		Set("active", true).
		Set("latency_ms", 3.96171).
		Set("towers", []any{
			NewMap().Set("id", "CME-gw").Set("height_m", 150.0).
				Set("fiber", true),
			NewMap().Set("id", "t-17").Set("height_m", 95.5).
				Set("fiber", false),
		}).
		Set("frequencies_ghz", []any{6.2, 11.2, 18.1}).
		Set("notes", nil)
	enc := mustMarshal(t, doc)
	back := mustUnmarshal(t, enc)
	assertEqualValue(t, back, doc)
}

func assertEqualValue(t *testing.T, got, want any) {
	t.Helper()
	switch w := want.(type) {
	case *Map:
		g, ok := got.(*Map)
		if !ok {
			t.Fatalf("got %T, want *Map", got)
		}
		if !reflect.DeepEqual(g.Keys(), w.Keys()) {
			t.Fatalf("keys = %v, want %v", g.Keys(), w.Keys())
		}
		for _, k := range w.Keys() {
			gv, _ := g.Get(k)
			wv, _ := w.Get(k)
			assertEqualValue(t, gv, wv)
		}
	case []any:
		g, ok := got.([]any)
		if !ok || len(g) != len(w) {
			t.Fatalf("got %#v, want sequence of %d", got, len(w))
		}
		for i := range w {
			assertEqualValue(t, g[i], w[i])
		}
	case int:
		if g, ok := got.(int64); !ok || g != int64(w) {
			t.Fatalf("got %#v, want %d", got, w)
		}
	case float64:
		g, ok := got.(float64)
		if !ok || math.Abs(g-w) > 1e-12 {
			t.Fatalf("got %#v, want %v", got, w)
		}
	default:
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("got %#v, want %#v", got, want)
		}
	}
}

func TestUnmarshalComments(t *testing.T) {
	in := "# header comment\nname: test\n# trailing comment\ncount: 3\n"
	v := mustUnmarshal(t, in)
	m := v.(*Map)
	if n, _ := m.Get("name"); n != "test" {
		t.Errorf("name = %v", n)
	}
	if c, _ := m.Get("count"); c != int64(3) {
		t.Errorf("count = %v", c)
	}
}

func TestUnmarshalSequenceAtKeyIndent(t *testing.T) {
	// Both "indented" and "same-indent" sequence styles must parse.
	same := "items:\n- a\n- b\n"
	indented := "items:\n  - a\n  - b\n"
	for _, in := range []string{same, indented} {
		m := mustUnmarshal(t, in).(*Map)
		items, _ := m.Get("items")
		seq, ok := items.([]any)
		if !ok || len(seq) != 2 || seq[0] != "a" || seq[1] != "b" {
			t.Errorf("Unmarshal(%q) items = %#v", in, items)
		}
	}
}

func TestUnmarshalScalarTypes(t *testing.T) {
	in := strings.Join([]string{
		"i: 42",
		"f: 3.25",
		"fe: 1e-3",
		"b1: true",
		"b0: false",
		"n: null",
		"tilde: ~",
		`qs: "quoted: str"`,
		"plain: plain str",
		"inf: .inf",
		"ninf: -.inf",
	}, "\n")
	m := mustUnmarshal(t, in).(*Map)
	check := func(k string, want any) {
		t.Helper()
		got, ok := m.Get(k)
		if !ok {
			t.Fatalf("missing key %q", k)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %#v, want %#v", k, got, want)
		}
	}
	check("i", int64(42))
	check("f", 3.25)
	check("fe", 1e-3)
	check("b1", true)
	check("b0", false)
	check("n", nil)
	check("tilde", nil)
	check("qs", "quoted: str")
	check("plain", "plain str")
	check("inf", math.Inf(1))
	check("ninf", math.Inf(-1))
}

func TestUnmarshalNullValueKey(t *testing.T) {
	m := mustUnmarshal(t, "a:\nb: 1\n").(*Map)
	if v, ok := m.Get("a"); !ok || v != nil {
		t.Errorf("a = %#v, %v, want nil", v, ok)
	}
	// Trailing bare key.
	m = mustUnmarshal(t, "a: 1\nb:\n").(*Map)
	if v, ok := m.Get("b"); !ok || v != nil {
		t.Errorf("b = %#v, %v, want nil", v, ok)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"   a: 1",    // odd indentation
		"a: 1\na: 2", // duplicate key
		"just a scalar line with no colon\nanother",
		"- \n",         // empty sequence item
		"a: 1\n\tb: 2", // tab indentation
	}
	for _, in := range bad {
		if _, err := Unmarshal([]byte(in)); err == nil {
			t.Errorf("Unmarshal(%q) succeeded, want error", in)
		}
	}
}

func TestUnmarshalEmpty(t *testing.T) {
	v, err := Unmarshal(nil)
	if err != nil || v != nil {
		t.Errorf("Unmarshal(nil) = %#v, %v", v, err)
	}
	v, err = Unmarshal([]byte("# only a comment\n"))
	if err != nil || v != nil {
		t.Errorf("Unmarshal(comment) = %#v, %v", v, err)
	}
}

func TestMarshalUnsupported(t *testing.T) {
	if _, err := Marshal(struct{}{}); err == nil {
		t.Error("Marshal(struct) should fail")
	}
	if _, err := Marshal([]any{[]any{1}}); err == nil {
		t.Error("Marshal(nested sequences) should fail")
	}
}

// TestStringRoundTripQuick fuzzes strings through scalar encode/decode.
func TestStringRoundTripQuick(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\n\r") {
			return true // multi-line scalars unsupported by design
		}
		doc := NewMap().Set("v", s)
		enc, err := Marshal(doc)
		if err != nil {
			return false
		}
		back, err := Unmarshal(enc)
		if err != nil {
			return false
		}
		m, ok := back.(*Map)
		if !ok {
			return false
		}
		v, _ := m.Get("v")
		return v == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestNumberRoundTripQuick fuzzes floats and ints.
func TestNumberRoundTripQuick(t *testing.T) {
	f := func(i int64, fl float64) bool {
		if math.IsNaN(fl) {
			return true
		}
		doc := NewMap().Set("i", i).Set("f", fl)
		enc, err := Marshal(doc)
		if err != nil {
			return false
		}
		back, err := Unmarshal(enc)
		if err != nil {
			return false
		}
		m := back.(*Map)
		gi, _ := m.Get("i")
		gf, _ := m.Get("f")
		if gi != i {
			return false
		}
		gfF, ok := gf.(float64)
		return ok && (gfF == fl || math.Abs(gfF-fl) < math.Abs(fl)*1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
