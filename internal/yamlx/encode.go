// Package yamlx is a small, dependency-free YAML subset codec: block
// mappings, block sequences, and plain/quoted scalars — exactly the
// fragment needed for the human-readable network files the paper's tool
// publishes. It is not a general YAML implementation (no anchors, flow
// collections, multi-document streams, or tags).
//
// Encoding accepts a value tree of *Map (ordered mapping), map[string]any
// (emitted with sorted keys), []any, and scalars (string, bool, integer
// and float types, nil). Decoding produces *Map, []any, and scalar types
// string / bool / int64 / float64 / nil.
package yamlx

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Map is an order-preserving string-keyed mapping. The YAML files the
// tool emits read better when fields keep their semantic order (name
// before towers, towers before links), which sorted map keys destroy.
type Map struct {
	keys []string
	vals map[string]any
}

// NewMap returns an empty ordered map.
func NewMap() *Map {
	return &Map{vals: make(map[string]any)}
}

// Set inserts or replaces a key, preserving first-insertion order.
func (m *Map) Set(key string, v any) *Map {
	if _, ok := m.vals[key]; !ok {
		m.keys = append(m.keys, key)
	}
	m.vals[key] = v
	return m
}

// Get returns the value for key and whether it is present.
func (m *Map) Get(key string) (any, bool) {
	v, ok := m.vals[key]
	return v, ok
}

// Keys returns the keys in insertion order; the caller must not mutate
// the returned slice.
func (m *Map) Keys() []string { return m.keys }

// Len returns the number of entries.
func (m *Map) Len() int { return len(m.keys) }

// Marshal renders the value tree as YAML.
func Marshal(v any) ([]byte, error) {
	var sb strings.Builder
	if err := encodeValue(&sb, v, 0, false); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

func encodeValue(sb *strings.Builder, v any, indent int, inSequenceItem bool) error {
	switch t := v.(type) {
	case *Map:
		return encodeMap(sb, t.keys, t.vals, indent, inSequenceItem)
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return encodeMap(sb, keys, t, indent, inSequenceItem)
	case []any:
		return encodeSeq(sb, t, indent)
	default:
		s, err := scalarString(v)
		if err != nil {
			return err
		}
		sb.WriteString(s)
		sb.WriteByte('\n')
		return nil
	}
}

func encodeMap(sb *strings.Builder, keys []string, vals map[string]any, indent int, inSequenceItem bool) error {
	if len(keys) == 0 {
		sb.WriteString("{}\n")
		return nil
	}
	for i, k := range keys {
		// The first key of a map that is a sequence item shares the "- "
		// line; later keys get full indentation.
		if !(inSequenceItem && i == 0) {
			sb.WriteString(strings.Repeat("  ", indent))
		}
		sb.WriteString(quoteKey(k))
		sb.WriteByte(':')
		v := vals[k]
		switch v.(type) {
		case *Map, map[string]any, []any:
			if isEmptyCollection(v) {
				sb.WriteByte(' ')
				if err := encodeValue(sb, v, 0, false); err != nil {
					return err
				}
				continue
			}
			sb.WriteByte('\n')
			if err := encodeValue(sb, v, indent+1, false); err != nil {
				return err
			}
		default:
			sb.WriteByte(' ')
			s, err := scalarString(v)
			if err != nil {
				return err
			}
			sb.WriteString(s)
			sb.WriteByte('\n')
		}
	}
	return nil
}

func encodeSeq(sb *strings.Builder, items []any, indent int) error {
	if len(items) == 0 {
		sb.WriteString("[]\n")
		return nil
	}
	for _, it := range items {
		sb.WriteString(strings.Repeat("  ", indent))
		sb.WriteString("- ")
		switch it.(type) {
		case *Map, map[string]any:
			if isEmptyCollection(it) {
				sb.WriteString("{}\n")
				continue
			}
			if err := encodeValue(sb, it, indent+1, true); err != nil {
				return err
			}
		case []any:
			return fmt.Errorf("yamlx: nested sequences as sequence items are not supported")
		default:
			s, err := scalarString(it)
			if err != nil {
				return err
			}
			sb.WriteString(s)
			sb.WriteByte('\n')
		}
	}
	return nil
}

func isEmptyCollection(v any) bool {
	switch t := v.(type) {
	case *Map:
		return t.Len() == 0
	case map[string]any:
		return len(t) == 0
	case []any:
		return len(t) == 0
	}
	return false
}

func scalarString(v any) (string, error) {
	switch t := v.(type) {
	case nil:
		return "null", nil
	case bool:
		if t {
			return "true", nil
		}
		return "false", nil
	case string:
		return encodeString(t), nil
	case int:
		return strconv.Itoa(t), nil
	case int32:
		return strconv.FormatInt(int64(t), 10), nil
	case int64:
		return strconv.FormatInt(t, 10), nil
	case float32:
		return encodeFloat(float64(t)), nil
	case float64:
		return encodeFloat(t), nil
	default:
		return "", fmt.Errorf("yamlx: unsupported scalar type %T", v)
	}
}

func encodeFloat(f float64) string {
	if math.IsNaN(f) {
		return ".nan"
	}
	if math.IsInf(f, 1) {
		return ".inf"
	}
	if math.IsInf(f, -1) {
		return "-.inf"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Force a float-looking token so decoding keeps the type.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// needsQuoting reports whether a plain (unquoted) rendering of s would be
// ambiguous or would re-parse as a different scalar.
func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	switch s {
	case "null", "~", "true", "false", "yes", "no", "on", "off",
		"Null", "True", "False", "NULL", "TRUE", "FALSE":
		return true
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return true
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return true
	}
	if strings.HasPrefix(s, ".") {
		return true
	}
	first := s[0]
	if strings.IndexByte("-?:,[]{}#&*!|>'\"%@` ", first) >= 0 {
		return true
	}
	if strings.Contains(s, ": ") || strings.HasSuffix(s, ":") ||
		strings.Contains(s, " #") {
		return true
	}
	if strings.ContainsAny(s, "\n\t") {
		return true
	}
	if s != strings.TrimSpace(s) {
		return true
	}
	return false
}

func encodeString(s string) string {
	if !needsQuoting(s) {
		return s
	}
	return strconv.Quote(s) // YAML double-quoted style is JSON-compatible
}

func quoteKey(k string) string { return encodeString(k) }
