package yamlx

import "testing"

// FuzzUnmarshal asserts the YAML-subset parser never panics, and that
// any document it accepts can be re-marshalled (the decoded tree only
// contains supported types) and re-parsed.
func FuzzUnmarshal(f *testing.F) {
	seeds := []string{
		"",
		"a: 1\n",
		"a:\n  - 1\n  - two\n",
		"a:\n  b: true\n  c: null\n",
		"- x\n- y\n",
		"towers:\n  - id: 1\n    lat: 41.5\n  - id: 2\n",
		"\"quoted key\": \"quoted: value\"\n",
		"a: .inf\nb: -.inf\n",
		"  bad indent\n",
		"a: 1\na: 2\n",
		"# only comment\n",
		"-\n",
		"\tx: 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(data)
		if err != nil || v == nil {
			return
		}
		enc, err := Marshal(v)
		if err != nil {
			t.Fatalf("decoded tree failed to marshal: %v", err)
		}
		if _, err := Unmarshal(enc); err != nil {
			t.Fatalf("re-marshalled document failed to parse: %v\n%s", err, enc)
		}
	})
}
