// Delta snapshot path: the engine reframes "rebuild licensee X as of
// date D" around the corpus's temporal event log (uls.EventLog). The
// active license set only changes when an event fires, so every date
// between two consecutive events shares one snapshot — requests are
// re-keyed from their literal date to their anchor (the date of the
// last event ≤ D), and a rebuild replays the log from the nearest
// rolling cursor or keyframe instead of re-running the date-interval
// stabbing query. Monotone sweeps (Evolution over an ascending date
// grid) therefore cost one linear pass over the log; keyframes bound
// the rewind cost of out-of-order dates and are exportable for warm
// boot (see internal/store keyframe persistence).
package engine

import (
	"context"
	"sort"
	"strings"
	"sync"

	"hftnetview/internal/core"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// track is the rolling replay state for one (licensee set, DC set,
// options) family of snapshots: its merged event stream, a cursor with
// the active set after the events applied so far, and keyframes — the
// active set captured at multiples of the keyframe interval while the
// cursor rolled forward. One track serves every date requested for the
// family; the memo store above it absorbs repeats, so a track only
// sees distinct anchors.
type track struct {
	label string
	dcs   []sites.DataCenter
	opts  core.Options

	mu        sync.Mutex
	events    []uls.Event
	cursor    int                     // events applied into active
	active    map[string]*uls.License // call sign -> license, after cursor events
	keyframes map[int][]*uls.License  // event index -> active set at that index
}

// deltaStats accumulates one rebuild's replay counters; fill folds
// them into the engine stats under the engine mutex.
type deltaStats struct {
	deltaBuilds, keyframeRestores, eventsReplayed, keyframesSaved int64
}

// canonNames sorts and deduplicates a licensee list — the canonical
// form shared by memo keys, track keys, and union labels.
func canonNames(licensees []string) []string {
	names := append([]string(nil), licensees...)
	sort.Strings(names)
	dedup := names[:0]
	for i, n := range names {
		if i == 0 || names[i-1] != n {
			dedup = append(dedup, n)
		}
	}
	return dedup
}

// trackKeyOf is the memo key minus the date: requests that differ only
// by date share one track.
func trackKeyOf(req core.SnapshotRequest) string {
	names := canonNames(req.Licensees)
	codes := make([]string, len(req.DCs))
	for i, dc := range req.DCs {
		codes[i] = dc.Code
	}
	sort.Strings(codes)
	var b strings.Builder
	b.WriteString(strings.Join(names, "\x1f"))
	b.WriteString("\x1e")
	b.WriteString(strings.Join(codes, "\x1f"))
	b.WriteString("\x1e")
	b.WriteString(req.Opts.Fingerprint())
	return b.String()
}

// rekey maps a request's date to its anchor — the last event date ≤ the
// requested date in the licensee set's merged stream. All dates
// between two events collapse onto one memo key; the clone handed back
// to the caller has its Date patched to the literal request.
func (e *Engine) rekey(req core.SnapshotRequest) (core.SnapshotRequest, bool) {
	if e.deltaOff {
		return req, false
	}
	anchor := anchorOf(e.db.EventLog(), req.Licensees, req.Date)
	if anchor == req.Date {
		return req, false
	}
	req.Date = anchor
	return req, true
}

// anchorOf is the merged-stream anchor: the max of the per-licensee
// anchors (an empty list or a "" entry selects the whole database).
func anchorOf(log *uls.EventLog, licensees []string, d uls.Date) uls.Date {
	if len(licensees) == 0 {
		return log.AnchorDate("", d)
	}
	var best uls.Date
	for _, name := range licensees {
		a := log.AnchorDate(name, d)
		if name == "" {
			return a
		}
		if best.IsZero() || (!a.IsZero() && best.Before(a)) {
			best = a
		}
	}
	return best
}

// trackFor returns (building if needed) the replay track for the
// request's (licensees, DCs, options) family.
func (e *Engine) trackFor(req core.SnapshotRequest) *track {
	key := trackKeyOf(req)
	e.trackMu.Lock()
	defer e.trackMu.Unlock()
	if t, ok := e.tracks[key]; ok {
		return t
	}
	names := canonNames(req.Licensees)
	t := &track{
		label:     core.UnionLabel(names),
		dcs:       append([]sites.DataCenter(nil), req.DCs...),
		opts:      req.Opts,
		events:    e.db.EventLog().MergedEvents(names),
		active:    make(map[string]*uls.License),
		keyframes: make(map[int][]*uls.License),
	}
	e.tracks[key] = t
	return t
}

// flushTracks drops all replay state; called (under the engine mutex)
// when a database generation change flushes the memo store.
func (e *Engine) flushTracks() {
	e.trackMu.Lock()
	e.tracks = make(map[string]*track)
	e.trackMu.Unlock()
}

// snapshotActive copies the active set into a call-sign-sorted slice —
// the stable form kept in keyframes and handed to the stitcher.
func snapshotActive(active map[string]*uls.License) []*uls.License {
	out := make([]*uls.License, 0, len(active))
	for _, l := range active {
		out = append(out, l)
	}
	uls.SortLicenses(out)
	return out
}

// replayLocked advances (or rewinds) the track to the given event
// index and returns the active set there. Rolling forward applies
// events one by one, capturing a keyframe at every multiple of the
// interval it passes; a target behind the cursor restarts from the
// nearest keyframe at or before it (or from the empty set).
// t.mu must be held.
func (t *track) replayLocked(to, every int) (active []*uls.License, ds deltaStats) {
	ds.deltaBuilds = 1
	if t.cursor > to {
		base, baseIdx := []*uls.License(nil), 0
		for idx, set := range t.keyframes {
			if idx <= to && idx > baseIdx {
				base, baseIdx = set, idx
			}
		}
		t.active = make(map[string]*uls.License, len(base))
		for _, l := range base {
			t.active[l.CallSign] = l
		}
		t.cursor = baseIdx
		ds.keyframeRestores = 1
	}
	for t.cursor < to {
		ev := t.events[t.cursor]
		if ev.Kind.Activates() {
			t.active[ev.License.CallSign] = ev.License
		} else {
			delete(t.active, ev.License.CallSign)
		}
		t.cursor++
		ds.eventsReplayed++
		if every > 0 && t.cursor%every == 0 {
			if _, ok := t.keyframes[t.cursor]; !ok {
				t.keyframes[t.cursor] = snapshotActive(t.active)
				ds.keyframesSaved++
			}
		}
	}
	return snapshotActive(t.active), ds
}

// reconstructDelta is the delta-path rebuild: resolve the request's
// track, replay the event log to the requested (anchor) date, and
// stitch the network from the replayed active set. Stitching sorts the
// materialized links by their unique (call sign, path number)
// identity, so the result is deep-equal to a full stab-query rebuild
// of the same date.
func (e *Engine) reconstructDelta(req core.SnapshotRequest) (*core.Network, deltaStats, error) {
	t := e.trackFor(req)
	t.mu.Lock()
	active, ds := t.replayLocked(uls.EventCursorAt(t.events, req.Date), e.keyframeEvery)
	t.mu.Unlock()
	n, err := core.ReconstructActive(active, t.label, req.Date, t.dcs, req.Opts)
	return n, ds, err
}

// reconstructAny dispatches a cache-miss rebuild to the delta path or,
// with WithoutDelta, to the legacy full-stitch path.
func (e *Engine) reconstructAny(req core.SnapshotRequest) (*core.Network, deltaStats, error) {
	if e.deltaOff {
		n, err := e.reconstruct(req)
		return n, deltaStats{}, err
	}
	return e.reconstructDelta(req)
}

// EvolutionSweep resolves a longitudinal sweep as one linear pass over
// the event log: the dates collapse onto their distinct anchors,
// anchors resolve in ascending order (so the rolling cursor only moves
// forward — each anchor's snapshot is the previous one patched by the
// events between them), the end-to-end route is computed once per
// anchor, and per-date license counts come from the log's prefix sums.
// It implements core.EvolutionSweeper, so core.EvolutionVia over the
// engine takes this path automatically.
func (e *Engine) EvolutionSweep(licensee string, path sites.Path, dates []uls.Date, opts core.Options) ([]core.EvolutionPoint, error) {
	return e.EvolutionSweepContext(context.Background(), licensee, path, dates, opts)
}

// EvolutionSweepContext is EvolutionSweep with a caller deadline
// bounding each anchor snapshot (the serving tier's per-request
// context).
func (e *Engine) EvolutionSweepContext(ctx context.Context, licensee string, path sites.Path, dates []uls.Date, opts core.Options) ([]core.EvolutionPoint, error) {
	log := e.db.EventLog()
	dcs := []sites.DataCenter{path.From, path.To}

	type group struct {
		anchor uls.Date
		idxs   []int
	}
	byAnchor := make(map[uls.Date]*group)
	var order []*group
	for i, d := range dates {
		a := anchorOf(log, []string{licensee}, d)
		g, ok := byAnchor[a]
		if !ok {
			g = &group{anchor: a}
			byAnchor[a] = g
			order = append(order, g)
		}
		g.idxs = append(g.idxs, i)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].anchor.Before(order[j].anchor) })

	out := make([]core.EvolutionPoint, len(dates))
	for _, g := range order {
		n, err := e.SnapshotContext(ctx, core.SnapshotRequest{
			Licensees: []string{licensee},
			Date:      g.anchor,
			DCs:       dcs,
			Opts:      opts,
		})
		if err != nil {
			return nil, err
		}
		r, connected := n.BestRoute(path)
		for _, i := range g.idxs {
			pt := core.EvolutionPoint{
				Date:           dates[i],
				ActiveLicenses: log.ActiveCount(licensee, dates[i]),
			}
			if connected {
				pt.Connected = true
				pt.Latency = r.Latency
			}
			out[i] = pt
		}
	}
	return out, nil
}

// KeyframeExport is the engine's replay state in persistable form:
// per track, the keyframe active sets as call-sign lists. It is only
// meaningful against the exact corpus it was captured from — event
// indexes and call signs are positions in that corpus's event log —
// so it carries the corpus digest and importers must match it.
type KeyframeExport struct {
	CorpusSHA256     string          `json:"corpus_sha256"`
	KeyframeInterval int             `json:"keyframe_interval"`
	Tracks           []KeyframeTrack `json:"tracks,omitempty"`
}

// KeyframeTrack is one track's identity and captured keyframes.
type KeyframeTrack struct {
	Licensees []string           `json:"licensees,omitempty"`
	DCs       []sites.DataCenter `json:"dcs,omitempty"`
	Opts      core.Options       `json:"opts"`
	Keyframes []Keyframe         `json:"keyframes,omitempty"`
}

// Keyframe is one captured active set: the call signs in force after
// the first EventIndex events of the track's merged stream.
type Keyframe struct {
	EventIndex int      `json:"event_index"`
	CallSigns  []string `json:"call_signs,omitempty"`
}

// ExportKeyframes captures every track's keyframes for persistence.
// corpusSHA256 identifies the corpus the replay state was built
// against; ImportKeyframes on a different corpus must be refused by
// the caller (the store layer keys keyframe files to the generation's
// digest for exactly this reason).
func (e *Engine) ExportKeyframes(corpusSHA256 string) KeyframeExport {
	out := KeyframeExport{CorpusSHA256: corpusSHA256, KeyframeInterval: e.keyframeEvery}
	e.trackMu.Lock()
	type namedTrack struct {
		key string
		t   *track
	}
	tracks := make([]namedTrack, 0, len(e.tracks))
	for k, t := range e.tracks {
		tracks = append(tracks, namedTrack{key: k, t: t})
	}
	e.trackMu.Unlock()
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].key < tracks[j].key })

	for _, nt := range tracks {
		t := nt.t
		parts := strings.SplitN(nt.key, "\x1e", 3)
		kt := KeyframeTrack{DCs: append([]sites.DataCenter(nil), t.dcs...)}
		if parts[0] != "" {
			kt.Licensees = strings.Split(parts[0], "\x1f")
		}
		t.mu.Lock()
		idxs := make([]int, 0, len(t.keyframes))
		for idx := range t.keyframes {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			kf := Keyframe{EventIndex: idx}
			for _, l := range t.keyframes[idx] {
				kf.CallSigns = append(kf.CallSigns, l.CallSign)
			}
			kt.Keyframes = append(kt.Keyframes, kf)
		}
		t.mu.Unlock()
		if len(kt.Keyframes) == 0 {
			continue
		}
		kt.Opts = t.opts
		out.Tracks = append(out.Tracks, kt)
	}
	return out
}

// ImportKeyframes seeds replay tracks from a prior export, returning
// the number of keyframes installed. Callers must only import state
// captured from an identical corpus (compare KeyframeExport.
// CorpusSHA256 against the live generation's digest); keyframes whose
// call signs or event indexes don't resolve against the current
// database are skipped rather than trusted.
func (e *Engine) ImportKeyframes(kf KeyframeExport) int {
	installed := 0
	for _, kt := range kf.Tracks {
		t := e.trackFor(core.SnapshotRequest{Licensees: kt.Licensees, DCs: kt.DCs, Opts: kt.Opts})
		t.mu.Lock()
		for _, frame := range kt.Keyframes {
			if frame.EventIndex < 0 || frame.EventIndex > len(t.events) {
				continue
			}
			if _, ok := t.keyframes[frame.EventIndex]; ok {
				continue
			}
			set := make([]*uls.License, 0, len(frame.CallSigns))
			resolved := true
			for _, cs := range frame.CallSigns {
				l, ok := e.db.ByCallSign(cs)
				if !ok {
					resolved = false
					break
				}
				set = append(set, l)
			}
			if !resolved {
				continue
			}
			t.keyframes[frame.EventIndex] = set
			installed++
		}
		t.mu.Unlock()
	}
	return installed
}
