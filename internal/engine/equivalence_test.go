package engine

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"hftnetview/internal/core"
	"hftnetview/internal/sites"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

// TestDeltaEquivalence is the delta path's correctness property: for
// seeded corpora (seed 1 = the clean synth corpus; seeds 2–20 = the
// corpus corrupted with the mixed profile and salvaged by the lenient
// reader, so the license population varies per seed) and every
// keyframe interval in {1, 16, 256}, a delta-replayed snapshot is
// deep-equal to a DirectProvider full rebuild — at every event
// boundary of the probed licensee's stream, at seeded random dates
// between events, and just outside the stream's date range. Probes run
// in shuffled order so replay exercises rewinds (keyframe restores),
// not just the forward cursor. Run under -race.
func TestDeltaEquivalence(t *testing.T) {
	clean := corpus(t)
	maxSeed := uint64(20)
	if testing.Short() {
		maxSeed = 3
	}
	mixed := synth.Profiles()[len(synth.Profiles())-1]
	if mixed.Name != "mixed" {
		t.Fatalf("expected last profile to be mixed, got %q", mixed.Name)
	}

	for seed := uint64(1); seed <= maxSeed; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			db := clean
			if seed > 1 {
				c := synth.Corrupt(clean, mixed, seed)
				salvaged, _, err := uls.ReadBulkWithOptions(
					bytes.NewReader(c.Dirty), uls.ReadBulkOptions{Mode: uls.Lenient})
				if err != nil {
					t.Fatalf("salvage: %v", err)
				}
				if salvaged.Len() == 0 {
					t.Fatal("salvage kept nothing")
				}
				db = salvaged
			}
			names := db.Licensees()
			if len(names) == 0 {
				t.Fatal("corpus has no licensees")
			}
			lic := names[int(seed)%len(names)]
			probes := equivalenceProbes(t, db, lic, seed)

			direct := core.DirectProvider(db)
			for _, interval := range []int{1, 16, 256} {
				eng := New(db, WithKeyframeInterval(interval))
				for _, d := range probes {
					assertSnapshotsEqual(t, eng, direct, []string{lic}, d,
						fmt.Sprintf("interval=%d licensee=%q date=%s", interval, lic, d))
				}
				// A union track over two licensees (sorted, matching the
				// engine's canonical order) must replay identically too.
				if len(names) > 1 {
					pair := []string{names[0], names[len(names)/2]}
					if pair[0] != pair[1] {
						for _, d := range probes[:min(len(probes), 8)] {
							assertSnapshotsEqual(t, eng, direct, pair, d,
								fmt.Sprintf("interval=%d union=%v date=%s", interval, pair, d))
						}
					}
				}
				st := eng.Stats()
				if st.DeltaBuilds != st.Rebuilds {
					t.Errorf("interval=%d: %d of %d rebuilds bypassed the delta path",
						interval, st.Rebuilds-st.DeltaBuilds, st.Rebuilds)
				}
			}
		})
	}
}

// equivalenceProbes returns the licensee's event-boundary dates, a
// seeded random date inside each between-event gap, and one date on
// each side of the stream — shuffled deterministically.
func equivalenceProbes(t *testing.T, db *uls.Database, licensee string, seed uint64) []uls.Date {
	t.Helper()
	events := db.EventLog().Events(licensee)
	if len(events) == 0 {
		t.Skipf("licensee %q has no events", licensee)
	}
	rng := rand.New(rand.NewPCG(seed, 0xe4e17))
	var probes []uls.Date
	probes = append(probes, events[0].Date.AddDays(-1))
	for i, ev := range events {
		probes = append(probes, ev.Date)
		if i+1 < len(events) {
			gap := daysBetween(ev.Date, events[i+1].Date)
			if gap > 1 {
				probes = append(probes, ev.Date.AddDays(1+rng.IntN(gap-1)))
			}
		}
	}
	probes = append(probes, events[len(events)-1].Date.AddDays(1))
	rng.Shuffle(len(probes), func(i, j int) { probes[i], probes[j] = probes[j], probes[i] })
	return probes
}

func daysBetween(a, b uls.Date) int {
	n := 0
	for d := a; d.Before(b) && n < 4000; d = d.AddDays(1) {
		n++
	}
	return n
}

func assertSnapshotsEqual(t *testing.T, eng *Engine, direct core.SnapshotProvider, licensees []string, d uls.Date, label string) {
	t.Helper()
	req := core.SnapshotRequest{Licensees: licensees, Date: d, DCs: sites.All, Opts: core.DefaultOptions()}
	got, err := eng.Snapshot(req)
	if err != nil {
		t.Fatalf("%s: delta snapshot: %v", label, err)
	}
	want, err := direct.Snapshot(req)
	if err != nil {
		t.Fatalf("%s: direct snapshot: %v", label, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: delta snapshot diverges from full rebuild:\n delta: %d towers %d links %d fiber, licensee %q\ndirect: %d towers %d links %d fiber, licensee %q",
			label,
			len(got.Towers), len(got.Links), len(got.Fiber), got.Licensee,
			len(want.Towers), len(want.Links), len(want.Fiber), want.Licensee)
	}
}
