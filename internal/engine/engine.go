// Package engine is the shared snapshot layer under every analysis:
// a concurrency-safe, memoizing store of reconstructed networks keyed
// by (licensee set, date, data-center set, options fingerprint).
//
// Every analysis in the paper starts from the same primitive —
// "rebuild licensee X's network as of date D" (§2.3) — and the
// longitudinal sweeps (§4) and multi-network tables (§3, §5) repeat it
// across dates, licensees, and experiments. The engine reconstructs
// each distinct snapshot exactly once per database generation:
// concurrent requests for the same key coalesce onto one in-flight
// reconstruction, independent keys fan out across a bounded worker
// pool, and completed snapshots are served from the memo store as deep
// clones (callers may freely mutate what they get back; the cache
// stays pristine).
//
// The engine implements core.SnapshotProvider, so the core analyses
// (ConnectedNetworksVia, RankNetworksVia, EvolutionVia) and the entity
// layer run against it unchanged; convenience methods mirror the
// facade's analysis surface. Stats expose hit/miss/coalesce/rebuild
// counters for benchmarks and reports.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// Engine is the memoized snapshot store. Create one per database with
// New and share it across analyses; all methods are safe for
// concurrent use.
type Engine struct {
	db             *uls.Database
	sem            chan struct{} // bounds concurrent reconstructions
	rebuildTimeout time.Duration // 0 = wait forever
	keyframeEvery  int           // replay keyframe interval, in events
	deltaOff       bool          // WithoutDelta: legacy full-stitch rebuilds

	// Delta replay state: one track per (licensee set, DC set, options)
	// family, flushed together with the memo store on generation
	// change. Guarded by trackMu; lock order is mu before trackMu
	// (flushTracks runs under mu), never the reverse.
	trackMu sync.Mutex
	tracks  map[string]*track

	mu      sync.Mutex
	gen     int64 // db generation the memo store was built against
	entries map[string]*entry

	// Counters live under mu so Stats returns one consistent snapshot
	// (rebuilds can never be observed ahead of the misses that caused
	// them) — /statsz scrapes these concurrently with query traffic.
	stats Stats
}

// entry is one memoized (or in-flight) reconstruction. done is closed
// when net/err are final; goroutines that find an open entry coalesce
// by waiting on it instead of reconstructing again.
type entry struct {
	done chan struct{}
	net  *core.Network
	err  error
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the number of concurrent reconstructions (default
// 2×GOMAXPROCS; reconstruction mixes CPU-bound geodesy with allocation).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.sem = make(chan struct{}, n)
		}
	}
}

// WithKeyframeInterval sets how many replayed events separate two
// keyframes (default 16). Smaller intervals bound rewinds tighter at
// the cost of memory; 1 keyframes every event position the replay
// visits. Values < 1 are ignored.
func WithKeyframeInterval(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.keyframeEvery = n
		}
	}
}

// WithoutDelta disables the event-log delta path: every cache miss is
// a full date-interval stitch and requests memoize under their literal
// dates. It exists as the correctness oracle and benchmark baseline
// for the delta path, not for production use.
func WithoutDelta() Option {
	return func(e *Engine) { e.deltaOff = true }
}

// WithRebuildTimeout caps how long any single SnapshotContext call
// waits for its reconstruction (queueing included). A request that
// exceeds the cap fails with an error classified as FailureTimeout;
// the rebuild itself keeps running and, on success, primes the memo
// store for the next attempt. 0 (the default) waits forever.
func WithRebuildTimeout(d time.Duration) Option {
	return func(e *Engine) { e.rebuildTimeout = d }
}

// New returns an engine over db. The engine assumes the database is
// mutated only between analyses (the uls.Database contract); a
// generation change detected on the next request flushes the memo
// store.
func New(db *uls.Database, opts ...Option) *Engine {
	e := &Engine{
		db:            db,
		gen:           db.Generation(),
		entries:       make(map[string]*entry),
		tracks:        make(map[string]*track),
		keyframeEvery: 16,
	}
	for _, o := range opts {
		o(e)
	}
	if e.sem == nil {
		e.sem = make(chan struct{}, 2*defaultWorkers())
	}
	return e
}

func defaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// DB returns the underlying license database.
func (e *Engine) DB() *uls.Database { return e.db }

// keyOf canonicalizes a request into its memo key: sorted deduplicated
// licensees, the date, sorted data-center codes, and the options
// fingerprint. Requests that normalize identically share one snapshot.
func keyOf(req core.SnapshotRequest) string {
	dedup := canonNames(req.Licensees)
	codes := make([]string, len(req.DCs))
	for i, dc := range req.DCs {
		codes[i] = dc.Code
	}
	sort.Strings(codes)
	var b strings.Builder
	b.WriteString(strings.Join(dedup, "\x1f"))
	b.WriteString("\x1e")
	b.WriteString(req.Date.String())
	b.WriteString("\x1e")
	b.WriteString(strings.Join(codes, "\x1f"))
	b.WriteString("\x1e")
	b.WriteString(req.Opts.Fingerprint())
	return b.String()
}

// Snapshot returns the network described by the request, reconstructing
// it at most once per key and database generation. The returned network
// is a deep clone: mutating it (including through analyses that toggle
// graph edges) cannot poison the cache.
func (e *Engine) Snapshot(req core.SnapshotRequest) (*core.Network, error) {
	return e.SnapshotContext(context.Background(), req)
}

// SnapshotContext is Snapshot with a caller-supplied deadline: the wait
// for the reconstruction (in-flight or newly started) is bounded by ctx
// and by the engine's rebuild timeout, whichever is shorter. An expired
// wait abandons only the wait — the rebuild keeps running in the
// background and memoizes its result for later requests, so a retry
// after a transient overload is likely a cache hit. Failed rebuilds are
// NOT memoized: concurrent waiters coalesced onto the attempt all see
// the error, but the next request retries from scratch. Classify the
// returned error with Classify to drive circuit-breaker policy.
func (e *Engine) SnapshotContext(ctx context.Context, req core.SnapshotRequest) (*core.Network, error) {
	if e.rebuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.rebuildTimeout)
		defer cancel()
	}
	// Anchor re-keying: the requested date collapses onto the date of
	// the last event at or before it — every date between two events
	// shares one memo entry. The clone returned below has its Date
	// patched back to the literal request.
	want := req.Date
	req, rekeyed := e.rekey(req)
	key := keyOf(req)

	e.mu.Lock()
	if g := e.db.Generation(); g != e.gen {
		// The database changed under us: every memoized snapshot is
		// stale. Entries still in flight finish against the old data
		// and are dropped with the map, and the replay tracks (built
		// over the old event log) flush with them.
		e.entries = make(map[string]*entry)
		e.gen = g
		e.stats.Invalidations++
		e.flushTracks()
	}
	ent, ok := e.entries[key]
	if ok {
		select {
		case <-ent.done:
			e.stats.Hits++
			if rekeyed {
				e.stats.DeltaHits++
			}
		default:
			e.stats.Coalesced++
		}
	} else {
		ent = &entry{done: make(chan struct{})}
		e.entries[key] = ent
		e.stats.Misses++
		go e.fill(key, ent, req)
	}
	e.mu.Unlock()

	select {
	case <-ent.done:
	case <-ctx.Done():
		// A result that arrived together with the deadline still
		// counts: never turn a ready snapshot into a timeout.
		select {
		case <-ent.done:
		default:
			return nil, fmt.Errorf("engine: waiting for snapshot rebuild: %w", ctx.Err())
		}
	}
	if ent.err != nil {
		return nil, ent.err
	}
	n := ent.net.Clone()
	n.Date = want
	return n, nil
}

// fill runs the reconstruction for a freshly created entry and
// publishes the result. Error entries are evicted so failures are
// retried rather than served from the memo store.
func (e *Engine) fill(key string, ent *entry, req core.SnapshotRequest) {
	e.sem <- struct{}{}
	var ds deltaStats
	ent.net, ds, ent.err = e.reconstructAny(req)
	<-e.sem

	e.mu.Lock()
	e.stats.Rebuilds++
	e.stats.DeltaBuilds += ds.deltaBuilds
	e.stats.KeyframeRestores += ds.keyframeRestores
	e.stats.EventsReplayed += ds.eventsReplayed
	e.stats.KeyframesSaved += ds.keyframesSaved
	if ent.err != nil && e.entries[key] == ent {
		delete(e.entries, key)
	}
	e.mu.Unlock()
	close(ent.done)
}

// reconstruct performs the actual rebuild for a cache miss.
func (e *Engine) reconstruct(req core.SnapshotRequest) (*core.Network, error) {
	if len(req.Licensees) > 1 {
		names := append([]string(nil), req.Licensees...)
		sort.Strings(names)
		return core.ReconstructUnion(e.db, names, req.Date, req.DCs, req.Opts)
	}
	name := ""
	if len(req.Licensees) == 1 {
		name = req.Licensees[0]
	}
	return core.Reconstruct(e.db, name, req.Date, req.DCs, req.Opts)
}

// Snapshots resolves a batch of requests in order, fanning independent
// reconstructions out across the worker pool. Duplicate keys within the
// batch coalesce onto one reconstruction.
func (e *Engine) Snapshots(reqs []core.SnapshotRequest) ([]*core.Network, error) {
	return core.SnapshotsParallel(e, reqs)
}

// Prewarm primes the memo store with the given requests and returns
// how many completed successfully before ctx expired. Reconstructions
// run through the same bounded worker pool queries use (requests
// already memoized are free), so a warm-booted service can prewarm its
// default query surface in the background and the first real request
// after a restart pays a memo hit instead of a rebuild. Failures are
// not retried: a request that fails here simply stays cold, and the
// next real query for it retries from scratch.
func (e *Engine) Prewarm(ctx context.Context, reqs []core.SnapshotRequest) int {
	var ok atomic.Int64
	var wg sync.WaitGroup
	for _, req := range reqs {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.SnapshotContext(ctx, req); err == nil {
				ok.Add(1)
			}
		}()
	}
	wg.Wait()
	return int(ok.Load())
}

// ConnectedNetworks is core.ConnectedNetworksVia over this engine.
func (e *Engine) ConnectedNetworks(date uls.Date, path sites.Path, opts core.Options) ([]core.NetworkSummary, error) {
	return core.ConnectedNetworksVia(e, date, path, opts)
}

// RankNetworks is core.RankNetworksVia over this engine.
func (e *Engine) RankNetworks(date uls.Date, paths []sites.Path, topN int, opts core.Options) ([]core.PathRanking, error) {
	return core.RankNetworksVia(e, date, paths, topN, opts)
}

// Evolution is core.EvolutionVia over this engine: the per-date sweep
// runs in parallel, and repeated sweeps are served from the memo store.
func (e *Engine) Evolution(licensee string, path sites.Path, dates []uls.Date, opts core.Options) ([]core.EvolutionPoint, error) {
	return core.EvolutionVia(e, licensee, path, dates, opts)
}

// Stats is a point-in-time snapshot of the engine's counters. The
// snapshot is internally consistent: all fields are captured under one
// lock, so cross-field invariants (Rebuilds ≤ Misses, one rebuild per
// miss absent invalidations) hold in every snapshot even while query
// traffic is mutating the counters.
type Stats struct {
	// Hits counts requests served from a completed memo entry.
	Hits int64
	// Misses counts requests that created a new memo entry.
	Misses int64
	// Coalesced counts requests that joined an in-flight
	// reconstruction instead of starting their own.
	Coalesced int64
	// Rebuilds counts reconstructions actually executed; with no
	// invalidations it equals Misses and, per key, is exactly 1.
	Rebuilds int64
	// Invalidations counts memo-store flushes triggered by database
	// generation changes.
	Invalidations int64
	// DeltaHits counts memo hits where anchor re-keying collapsed a
	// requested date onto an earlier anchor's snapshot — requests the
	// pre-delta engine would have rebuilt under a distinct date key.
	DeltaHits int64
	// DeltaBuilds counts rebuilds served by the event-log replay path
	// (vs the legacy full-stitch path under WithoutDelta).
	DeltaBuilds int64
	// KeyframeRestores counts replays that rewound to a keyframe (or
	// the empty set) because the target date preceded the rolling
	// cursor.
	KeyframeRestores int64
	// EventsReplayed counts log events applied across all replays.
	EventsReplayed int64
	// KeyframesSaved counts keyframes captured while rolling forward.
	KeyframesSaved int64
	// Entries is the current memo-store size.
	Entries int
}

// Stats returns a consistent snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := e.stats
	st.Entries = len(e.entries)
	e.mu.Unlock()
	return st
}

// FailureClass buckets the errors SnapshotContext can return, for
// circuit-breaker policy: only FailureTimeout and FailureRebuild count
// against the engine's health; FailureCanceled is the caller's doing
// and FailureNone is success.
type FailureClass int

const (
	// FailureNone: no error.
	FailureNone FailureClass = iota
	// FailureTimeout: the wait for a rebuild exceeded its deadline
	// (the engine's rebuild timeout or the request deadline).
	FailureTimeout
	// FailureCanceled: the caller canceled the request.
	FailureCanceled
	// FailureRebuild: the reconstruction itself failed.
	FailureRebuild
)

// String renders the class for logs and status endpoints.
func (c FailureClass) String() string {
	switch c {
	case FailureNone:
		return "none"
	case FailureTimeout:
		return "timeout"
	case FailureCanceled:
		return "canceled"
	default:
		return "rebuild"
	}
}

// Classify buckets an error returned by SnapshotContext (or by an
// analysis running over the engine).
func Classify(err error) FailureClass {
	switch {
	case err == nil:
		return FailureNone
	case errors.Is(err, context.DeadlineExceeded):
		return FailureTimeout
	case errors.Is(err, context.Canceled):
		return FailureCanceled
	default:
		return FailureRebuild
	}
}
