package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/geo"
	"hftnetview/internal/graph"
	"hftnetview/internal/sites"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

var (
	corpusOnce sync.Once
	corpusDB   *uls.Database
	corpusErr  error
)

func corpus(t testing.TB) *uls.Database {
	t.Helper()
	corpusOnce.Do(func() { corpusDB, corpusErr = synth.Generate() })
	if corpusErr != nil {
		t.Fatalf("synth.Generate: %v", corpusErr)
	}
	return corpusDB
}

var (
	pathNY4  = sites.Path{From: sites.CME, To: sites.NY4}
	snapshot = uls.NewDate(2020, time.April, 1)
)

func req(licensee string, date uls.Date, opts core.Options) core.SnapshotRequest {
	return core.SnapshotRequest{
		Licensees: []string{licensee},
		Date:      date,
		DCs:       sites.All,
		Opts:      opts,
	}
}

func TestSnapshotMemoization(t *testing.T) {
	e := New(corpus(t))
	a, err := e.Snapshot(req("Webline Holdings", snapshot, core.DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Snapshot(req("Webline Holdings", snapshot, core.DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Rebuilds != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 rebuild", st)
	}
	if a == b {
		t.Error("engine returned the same *Network twice; wants clones")
	}
	if len(a.Links) != len(b.Links) || len(a.Towers) != len(b.Towers) {
		t.Errorf("clone mismatch: %d/%d links, %d/%d towers",
			len(a.Links), len(b.Links), len(a.Towers), len(b.Towers))
	}
}

// TestCacheKeyOptions: same db+date+licensee with differing Options
// must not share a snapshot.
func TestCacheKeyOptions(t *testing.T) {
	e := New(corpus(t))
	def := core.DefaultOptions()
	uncapped := def
	uncapped.FiberTailsPerDC = 0 // 0 = no per-DC cap: strictly more tails

	a, err := e.Snapshot(req("Webline Holdings", snapshot, def))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Snapshot(req("Webline Holdings", snapshot, uncapped))
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 misses, 0 hits (options must split keys)", st)
	}
	if len(b.Fiber) <= len(a.Fiber) {
		t.Errorf("uncapped fiber tails = %d, capped = %d; options leaked across keys",
			len(b.Fiber), len(a.Fiber))
	}

	// Different dates must split keys too.
	if _, err := e.Snapshot(req("Webline Holdings",
		uls.NewDate(2016, time.January, 1), def)); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 3 {
		t.Errorf("misses = %d after distinct-date request, want 3", st.Misses)
	}
}

// TestCacheKeyCanonicalization: licensee order, duplicate names, and DC
// order must not split keys.
func TestCacheKeyCanonicalization(t *testing.T) {
	e := New(corpus(t))
	def := core.DefaultOptions()
	reqs := []core.SnapshotRequest{
		{Licensees: []string{"New Line Networks", "Pierce Broadband"},
			Date: snapshot, DCs: sites.All, Opts: def},
		{Licensees: []string{"Pierce Broadband", "New Line Networks"},
			Date: snapshot, DCs: reversedDCs(), Opts: def},
		{Licensees: []string{"New Line Networks", "Pierce Broadband", "New Line Networks"},
			Date: snapshot, DCs: sites.All, Opts: def},
	}
	for _, r := range reqs {
		if _, err := e.Snapshot(r); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss + 2 hits across equivalent requests", st)
	}
}

func reversedDCs() []sites.DataCenter {
	out := append([]sites.DataCenter(nil), sites.All...)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestMutationDoesNotPoisonCache: mutating a returned network — fields
// and graph alike — must not leak into later cache reads.
func TestMutationDoesNotPoisonCache(t *testing.T) {
	e := New(corpus(t))
	r := req("Webline Holdings", snapshot, core.DefaultOptions())
	first, err := e.Snapshot(r)
	if err != nil {
		t.Fatal(err)
	}
	route0, ok := first.BestRoute(pathNY4)
	if !ok {
		t.Fatal("WH should be connected")
	}

	// Vandalize the returned clone.
	first.Towers[0].Point = geo.Point{Lat: 0, Lon: 0}
	first.Links[0].FrequenciesMHz[0] = -1
	for i := range first.Links {
		first.Links[i].LengthMeters = 0
	}
	g := first.Graph()
	for i := 0; i < g.NumEdges(); i++ {
		g.SetDisabled(graph.EdgeID(i), true)
	}
	if _, ok := first.BestRoute(pathNY4); ok {
		t.Fatal("sanity: vandalized clone should be disconnected")
	}

	second, err := e.Snapshot(r)
	if err != nil {
		t.Fatal(err)
	}
	route1, ok := second.BestRoute(pathNY4)
	if !ok {
		t.Fatal("cache poisoned: second snapshot not connected")
	}
	if route1.Latency != route0.Latency {
		t.Errorf("cache poisoned: latency %v, want %v", route1.Latency, route0.Latency)
	}
	if second.Links[0].FrequenciesMHz[0] == -1 {
		t.Error("cache poisoned: frequency mutation visible in second snapshot")
	}
	if st := e.Stats(); st.Rebuilds != 1 {
		t.Errorf("rebuilds = %d, want 1 (second read must come from cache)", st.Rebuilds)
	}
}

// TestConcurrentExactlyOnce: 100 goroutines requesting a mix of
// identical and distinct snapshots; every key must be reconstructed
// exactly once and all results must agree. Run under -race.
func TestConcurrentExactlyOnce(t *testing.T) {
	e := New(corpus(t))
	def := core.DefaultOptions()
	licensees := []string{
		"New Line Networks", "Webline Holdings", "Pierce Broadband",
		"Jefferson Microwave", "National Tower Company",
	}
	dates := []uls.Date{
		uls.NewDate(2016, time.January, 1),
		snapshot,
	}
	distinct := len(licensees) * len(dates)

	const goroutines = 100
	type result struct {
		key     string
		towers  int
		links   int
		latency string
	}
	results := make([]result, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			lic := licensees[i%len(licensees)]
			d := dates[(i/len(licensees))%len(dates)]
			n, err := e.Snapshot(req(lic, d, def))
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			lat := "-"
			if r, ok := n.BestRoute(pathNY4); ok {
				lat = r.Latency.String()
			}
			results[i] = result{
				key:     fmt.Sprintf("%s@%s", lic, d),
				towers:  len(n.Towers),
				links:   len(n.Links),
				latency: lat,
			}
		}(i)
	}
	close(start)
	wg.Wait()

	st := e.Stats()
	if st.Rebuilds != int64(distinct) {
		t.Errorf("rebuilds = %d, want exactly %d (one per distinct key)", st.Rebuilds, distinct)
	}
	if st.Misses != int64(distinct) {
		t.Errorf("misses = %d, want %d", st.Misses, distinct)
	}
	if got := st.Hits + st.Coalesced + st.Misses; got != goroutines {
		t.Errorf("hits+coalesced+misses = %d, want %d", got, goroutines)
	}
	byKey := make(map[string]result)
	for _, r := range results {
		if prev, ok := byKey[r.key]; ok && prev != r {
			t.Errorf("divergent results for %s: %+v vs %+v", r.key, prev, r)
		}
		byKey[r.key] = r
	}
}

// TestGenerationInvalidation: mutating the database flushes the memo
// store on the next request.
func TestGenerationInvalidation(t *testing.T) {
	db := uls.NewDatabase()
	grant := uls.NewDate(2015, time.June, 1)
	lic := func(cs string, a, b geo.Point) *uls.License {
		return &uls.License{
			CallSign: cs, LicenseID: 1, Licensee: "Gen Net",
			RadioService: uls.ServiceMG, Status: uls.StatusActive, Grant: grant,
			Locations: []uls.Location{
				{Number: 1, Point: a, SupportHeight: 100},
				{Number: 2, Point: b, SupportHeight: 100},
			},
			Paths: []uls.Path{{Number: 1, TXLocation: 1, RXLocation: 2,
				StationClass: uls.ClassFXO, FrequenciesMHz: []float64{11000}}},
		}
	}
	a := geo.Point{Lat: 41.85, Lon: -87.6}
	b := geo.Point{Lat: 41.80, Lon: -87.0}
	c := geo.Point{Lat: 41.75, Lon: -86.4}
	if err := db.Add(lic("WQGN001", a, b)); err != nil {
		t.Fatal(err)
	}

	e := New(db)
	r := req("Gen Net", snapshot, core.DefaultOptions())
	n1, err := e.Snapshot(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(n1.Links) != 1 {
		t.Fatalf("links = %d, want 1", len(n1.Links))
	}

	if err := db.Add(lic("WQGN002", b, c)); err != nil {
		t.Fatal(err)
	}
	n2, err := e.Snapshot(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(n2.Links) != 2 {
		t.Errorf("links after Add = %d, want 2 (stale cache served)", len(n2.Links))
	}
	if st := e.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

// TestEvolutionCachedMatchesDirect: the engine's evolution sweep must
// match the one-shot path exactly, on cold and warm cache alike.
func TestEvolutionCachedMatchesDirect(t *testing.T) {
	db := corpus(t)
	dates := core.PaperSampleDates(2013, 2020)
	want, err := core.Evolution(db, "New Line Networks", pathNY4, dates, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	for pass := 0; pass < 2; pass++ {
		got, err := e.Evolution("New Line Networks", pathNY4, dates, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d points, want %d", pass, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("pass %d point %d = %+v, want %+v", pass, i, got[i], want[i])
			}
		}
	}
	st := e.Stats()
	// Anchor re-keying collapses the date grid onto distinct event-log
	// anchors, so rebuilds can undershoot the date count but must never
	// exceed it, and the second sweep must be fully cached.
	if st.Rebuilds > int64(len(dates)) || st.Rebuilds < 1 {
		t.Errorf("rebuilds = %d, want 1..%d (one per distinct anchor)", st.Rebuilds, len(dates))
	}
	if st.Rebuilds != st.Misses {
		t.Errorf("rebuilds = %d, misses = %d; want equal (second sweep fully cached)", st.Rebuilds, st.Misses)
	}
	if st.Hits < st.Misses {
		t.Errorf("hits = %d, want >= %d (second sweep served from memo)", st.Hits, st.Misses)
	}
}

// TestUnionSnapshot: multi-licensee requests reconstruct the union
// network and memoize under the canonical (sorted) licensee set.
func TestUnionSnapshot(t *testing.T) {
	e := New(corpus(t))
	def := core.DefaultOptions()
	u, err := e.Snapshot(core.SnapshotRequest{
		Licensees: []string{"Webline Holdings", "New Line Networks"},
		Date:      snapshot, DCs: sites.All, Opts: def,
	})
	if err != nil {
		t.Fatal(err)
	}
	nln, err := e.Snapshot(req("New Line Networks", snapshot, def))
	if err != nil {
		t.Fatal(err)
	}
	wh, err := e.Snapshot(req("Webline Holdings", snapshot, def))
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Links) <= len(nln.Links) || len(u.Links) <= len(wh.Links) {
		t.Errorf("union links = %d, want more than either member (%d, %d)",
			len(u.Links), len(nln.Links), len(wh.Links))
	}
}

// TestStatsConsistentSnapshot: Stats must be one coherent snapshot
// while query traffic mutates the counters — the /statsz scrape runs
// concurrently with serving. Run under -race. Before counters moved
// under the engine mutex, field-by-field atomic reads could observe a
// rebuild ahead of the miss that caused it.
func TestStatsConsistentSnapshot(t *testing.T) {
	e := New(corpus(t))
	def := core.DefaultOptions()
	licensees := []string{
		"New Line Networks", "Webline Holdings", "Pierce Broadband",
		"Jefferson Microwave", "National Tower Company",
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lic := licensees[(w+i)%len(licensees)]
				d := uls.NewDate(2013+(w+i)%8, time.April, 1)
				if _, err := e.Snapshot(req(lic, d, def)); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}(w)
	}

	var prev Stats
	for i := 0; i < 200; i++ {
		st := e.Stats()
		if st.Rebuilds > st.Misses {
			t.Fatalf("inconsistent snapshot: rebuilds %d > misses %d", st.Rebuilds, st.Misses)
		}
		if tot, ptot := st.Hits+st.Misses+st.Coalesced, prev.Hits+prev.Misses+prev.Coalesced; tot < ptot {
			t.Fatalf("request total went backwards: %d -> %d", ptot, tot)
		}
		if st.Hits < prev.Hits || st.Misses < prev.Misses || st.Rebuilds < prev.Rebuilds {
			t.Fatalf("counter went backwards: %+v -> %+v", prev, st)
		}
		prev = st
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotContextTimeout: an expired wait returns a
// FailureTimeout-classified error, the abandoned rebuild still primes
// the memo store, and a later request is served from it.
func TestSnapshotContextTimeout(t *testing.T) {
	e := New(corpus(t), WithRebuildTimeout(time.Nanosecond))
	r := req("New Line Networks", snapshot, core.DefaultOptions())
	_, err := e.SnapshotContext(context.Background(), r)
	if err == nil {
		t.Fatal("want timeout error from 1ns rebuild budget")
	}
	if c := Classify(err); c != FailureTimeout {
		t.Fatalf("Classify(%v) = %v, want FailureTimeout", err, c)
	}

	// The background rebuild finishes and memoizes; once done, even the
	// 1ns budget serves it (ready results are never turned into
	// timeouts).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := e.Stats(); st.Rebuilds == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned rebuild never completed")
		}
		time.Sleep(time.Millisecond)
	}
	n, err := e.SnapshotContext(context.Background(), r)
	if err != nil {
		t.Fatalf("post-rebuild request: %v", err)
	}
	if len(n.Links) == 0 {
		t.Error("post-rebuild request returned empty network")
	}
	if st := e.Stats(); st.Rebuilds != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 rebuild, 1 hit", st)
	}
}

// TestSnapshotContextCanceled: caller cancellation classifies as
// FailureCanceled, not as an engine failure.
func TestSnapshotContextCanceled(t *testing.T) {
	e := New(corpus(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.SnapshotContext(ctx, req("Webline Holdings", snapshot, core.DefaultOptions()))
	if err == nil {
		t.Fatal("want error from canceled context")
	}
	if c := Classify(err); c != FailureCanceled {
		t.Fatalf("Classify(%v) = %v, want FailureCanceled", err, c)
	}
}

// TestRebuildErrorNotMemoized: failed rebuilds must be retried, not
// served from the memo store — the circuit breaker's half-open probe
// depends on the retry actually re-executing.
func TestRebuildErrorNotMemoized(t *testing.T) {
	e := New(corpus(t))
	var bad core.Options // zero options fail reconstruction
	r := req("Webline Holdings", snapshot, bad)
	for i := 1; i <= 2; i++ {
		_, err := e.Snapshot(r)
		if err == nil {
			t.Fatalf("attempt %d: want reconstruction error", i)
		}
		if c := Classify(err); c != FailureRebuild {
			t.Fatalf("Classify(%v) = %v, want FailureRebuild", err, c)
		}
		if st := e.Stats(); st.Rebuilds != int64(i) {
			t.Fatalf("rebuilds after attempt %d = %d, want %d (errors must not be memoized)",
				i, st.Rebuilds, i)
		}
	}
	if st := e.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d, want 0 (error entries must be evicted)", st.Entries)
	}
}

// TestPrewarm: prewarming a set of requests rebuilds each exactly
// once, and the subsequent real queries are memo hits.
func TestPrewarm(t *testing.T) {
	e := New(corpus(t))
	names := []string{"Webline Holdings", "New Line Networks", "Pierce Broadband"}
	reqs := make([]core.SnapshotRequest, len(names))
	for i, n := range names {
		reqs[i] = req(n, snapshot, core.DefaultOptions())
	}
	// Duplicate one request: it must coalesce, not double-build.
	reqs = append(reqs, req(names[0], snapshot, core.DefaultOptions()))

	n := e.Prewarm(context.Background(), reqs)
	if n != len(reqs) {
		t.Fatalf("Prewarm = %d, want %d", n, len(reqs))
	}
	st := e.Stats()
	if st.Rebuilds != int64(len(names)) {
		t.Errorf("prewarm ran %d rebuilds, want %d (duplicate must coalesce)", st.Rebuilds, len(names))
	}

	for _, name := range names {
		if _, err := e.Snapshot(req(name, snapshot, core.DefaultOptions())); err != nil {
			t.Fatalf("query after prewarm: %v", err)
		}
	}
	if after := e.Stats(); after.Rebuilds != st.Rebuilds {
		t.Errorf("queries after prewarm rebuilt (%d -> %d rebuilds), want all memo hits",
			st.Rebuilds, after.Rebuilds)
	}
}

// TestPrewarmCanceled: an expired context stops the sweep early and
// the count reflects only what finished.
func TestPrewarmCanceled(t *testing.T) {
	e := New(corpus(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n := e.Prewarm(ctx, []core.SnapshotRequest{
		req("Webline Holdings", snapshot, core.DefaultOptions()),
	}); n != 0 {
		t.Fatalf("Prewarm under canceled ctx = %d, want 0", n)
	}
}
