package race

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/radio"
	"hftnetview/internal/sites"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

var (
	corpus   *uls.Database
	snapshot = uls.NewDate(2020, time.April, 1)
	pathNY4  = sites.Path{From: sites.CME, To: sites.NY4}
)

func db(t *testing.T) *uls.Database {
	t.Helper()
	if corpus == nil {
		d, err := synth.Generate()
		if err != nil {
			t.Fatal(err)
		}
		corpus = d
	}
	return corpus
}

func network(t *testing.T, name string) *core.Network {
	t.Helper()
	n, err := core.Reconstruct(db(t), name, snapshot, sites.All, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestWinProbabilityBasics(t *testing.T) {
	l := units.Latency(0.00396)
	if p := WinProbability(l, l, 1e-6); p != 0.5 {
		t.Errorf("equal latencies: p = %v, want 0.5", p)
	}
	// A 3σ·√2 lead is a near-certain win.
	lead := units.Latency(3 * math.Sqrt2 * 1e-6)
	if p := WinProbability(l, l+lead, 1e-6); p < 0.99 {
		t.Errorf("3σ√2 lead: p = %v, want > 0.99", p)
	}
	// Complementarity.
	a, b := units.Latency(0.00396171), units.Latency(0.00396209)
	pa := WinProbability(a, b, 0.5e-6)
	pb := WinProbability(b, a, 0.5e-6)
	if math.Abs(pa+pb-1) > 1e-12 {
		t.Errorf("P(A)+P(B) = %v, want 1", pa+pb)
	}
	if pa <= 0.5 {
		t.Errorf("faster side p = %v, want > 0.5", pa)
	}
}

func TestWinProbabilityDeterministic(t *testing.T) {
	a, b := units.Latency(1e-3), units.Latency(2e-3)
	if WinProbability(a, b, 0) != 1 {
		t.Error("σ=0: faster side should always win")
	}
	if WinProbability(b, a, 0) != 0 {
		t.Error("σ=0: slower side should always lose")
	}
	if WinProbability(a, a, 0) != 0.5 {
		t.Error("σ=0 tie should be 0.5")
	}
}

func TestWinProbabilityMonotoneInGap(t *testing.T) {
	f := func(gapUS1, gapUS2 float64) bool {
		g1 := math.Mod(math.Abs(gapUS1), 50)
		g2 := math.Mod(math.Abs(gapUS2), 50)
		if math.IsNaN(g1) || math.IsNaN(g2) {
			return true
		}
		if g1 > g2 {
			g1, g2 = g2, g1
		}
		base := units.Latency(0.004)
		p1 := WinProbability(base, base+units.Latency(g1*1e-6), 1e-6)
		p2 := WinProbability(base, base+units.Latency(g2*1e-6), 1e-6)
		return p1 <= p2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestWinProbabilityMatchesMonteCarlo cross-checks the closed form.
func TestWinProbabilityMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 1))
	latA := units.Latency(0.00396171)
	latB := units.Latency(0.00396209) // +0.38 µs
	sigma := 0.5e-6
	wins := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		a := latA.Seconds() + rng.NormFloat64()*sigma
		b := latB.Seconds() + rng.NormFloat64()*sigma
		if a < b {
			wins++
		}
	}
	mc := float64(wins) / trials
	closed := WinProbability(latA, latB, sigma)
	if math.Abs(mc-closed) > 0.005 {
		t.Errorf("Monte Carlo %v vs closed form %v", mc, closed)
	}
	// A 0.38 µs edge at 0.5 µs jitter is worth ~70% of races — the
	// paper's "sub-microsecond differences matter" in one number.
	if closed < 0.6 || closed > 0.8 {
		t.Errorf("NLN-vs-PB edge win rate = %v, want ≈0.70", closed)
	}
}

func TestFairWeatherSeasonNLNBeatsWH(t *testing.T) {
	nln := Strategy{Name: "NLN", Networks: []*core.Network{network(t, synth.NLN)}}
	wh := Strategy{Name: "WH", Networks: []*core.Network{network(t, synth.WH)}}
	res, err := FairWeatherSeason(nln, wh, pathNY4, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	// 9.86 µs lead at 2 µs jitter: near-certain.
	if res.WinShareA < 0.95 {
		t.Errorf("fair weather NLN win share = %v, want > 0.95", res.WinShareA)
	}
}

func TestStormySeasonCombinationWins(t *testing.T) {
	// §5: "the most competitive trading firms may even use a combination
	// of both services to maintain their advantage in varied conditions."
	nlnNet := network(t, synth.NLN)
	whNet := network(t, synth.WH)
	nln := Strategy{Name: "NLN only", Networks: []*core.Network{nlnNet}}
	wh := Strategy{Name: "WH only", Networks: []*core.Network{whNet}}
	both := Strategy{Name: "NLN+WH", Networks: []*core.Network{nlnNet, whNet}}

	var storms []radio.Storm
	for seed := 1; seed <= 20; seed++ {
		storms = append(storms, radio.GenerateStorm(uint64(seed),
			sites.CME.Location, sites.NY4.Location, radio.DefaultStormConfig()))
	}
	sigma := 2e-6
	margin := radio.DefaultFadeMarginDB

	vsNLN, err := Season(both, nln, pathNY4, storms, margin, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if vsNLN.WinShareA <= 0.5 {
		t.Errorf("combo vs NLN-only win share = %v, want > 0.5", vsNLN.WinShareA)
	}
	vsWH, err := Season(both, wh, pathNY4, storms, margin, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if vsWH.WinShareA <= 0.5 {
		t.Errorf("combo vs WH-only win share = %v, want > 0.5", vsWH.WinShareA)
	}
	// NLN-only suffers real downtime across a stormy season.
	nlnVsWH, err := Season(nln, wh, pathNY4, storms, margin, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if nlnVsWH.AUnavailable == 0 {
		t.Error("NLN should be dark in some storm scenarios")
	}
}

func TestSeasonEmpty(t *testing.T) {
	if _, err := Season(Strategy{}, Strategy{}, pathNY4, nil, 40, 1e-6); err == nil {
		t.Error("empty season should error")
	}
}

func TestEffectiveLatencyPicksFastest(t *testing.T) {
	nlnNet := network(t, synth.NLN)
	whNet := network(t, synth.WH)
	s := Strategy{Name: "both", Networks: []*core.Network{whNet, nlnNet}}
	lat, ok := s.EffectiveLatency(pathNY4, radio.Storm{}, radio.DefaultFadeMarginDB)
	if !ok {
		t.Fatal("clear weather should be available")
	}
	// Fair weather: the combo's latency equals NLN's (the faster).
	if math.Abs(lat.Milliseconds()-3.96171) > 0.00005 {
		t.Errorf("combo fair latency = %.5f, want NLN's 3.96171", lat.Milliseconds())
	}
	empty := Strategy{Name: "none"}
	if _, ok := empty.EffectiveLatency(pathNY4, radio.Storm{}, 40); ok {
		t.Error("empty strategy should never be available")
	}
}
