// Package race models the winner-takes-all latency races that motivate
// the paper (§1): "the first player to reach the distant financial
// center reaps all the rewards". It turns latency differences — down to
// the 0.4 µs gaps of Table 2 — into win probabilities, and evaluates
// multi-network subscription strategies under weather, quantifying §5's
// closing speculation that "the most competitive trading firms may even
// use a combination of both services".
package race

import (
	"fmt"
	"math"

	"hftnetview/internal/core"
	"hftnetview/internal/radio"
	"hftnetview/internal/sites"
	"hftnetview/internal/units"
)

// WinProbability returns P(A's message arrives before B's) when each
// side's one-way latency is perturbed by independent zero-mean Gaussian
// jitter with standard deviation sigma seconds (radio regeneration,
// serialization, and matching-engine arrival jitter):
//
//	P = Φ((latB − latA) / (σ·√2))
//
// Equal latencies give 0.5; a lead of a few σ gives near-certainty.
func WinProbability(latA, latB units.Latency, sigma float64) float64 {
	if sigma <= 0 {
		// Deterministic race.
		switch {
		case latA < latB:
			return 1
		case latA > latB:
			return 0
		default:
			return 0.5
		}
	}
	z := (latB.Seconds() - latA.Seconds()) / (sigma * math.Sqrt2)
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// Strategy is a firm's connectivity choice: one or more subscribed
// networks; per scenario the firm uses whichever subscribed network is
// fastest right now.
type Strategy struct {
	Name     string
	Networks []*core.Network
}

// EffectiveLatency returns the strategy's best available latency for the
// path under a storm (fade margin marginDB); ok is false when every
// subscribed network is disconnected.
func (s Strategy) EffectiveLatency(path sites.Path, storm radio.Storm, marginDB float64) (units.Latency, bool) {
	best := units.Latency(math.Inf(1))
	found := false
	for _, n := range s.Networks {
		impact, err := n.RouteUnderStorm(path, storm, marginDB)
		if err != nil || !impact.Connected {
			continue
		}
		if impact.Route.Latency < best {
			best = impact.Route.Latency
			found = true
		}
	}
	return best, found
}

// SeasonResult summarizes a head-to-head season.
type SeasonResult struct {
	// WinShareA is A's expected share of races won over the season.
	WinShareA float64
	// Scenarios is the number of weather scenarios evaluated.
	Scenarios int
	// AUnavailable and BUnavailable count scenarios where the strategy
	// had no connected network (its opponent wins those outright; if
	// both are dark the race is a coin flip).
	AUnavailable, BUnavailable int
}

// Season plays a head-to-head between two strategies across a sequence
// of storm scenarios: per scenario, each strategy races on its best
// available network with jitter sigma.
func Season(a, b Strategy, path sites.Path, storms []radio.Storm,
	marginDB, sigma float64) (SeasonResult, error) {
	if len(storms) == 0 {
		return SeasonResult{}, fmt.Errorf("race: empty season")
	}
	var res SeasonResult
	res.Scenarios = len(storms)
	var total float64
	for _, storm := range storms {
		latA, okA := a.EffectiveLatency(path, storm, marginDB)
		latB, okB := b.EffectiveLatency(path, storm, marginDB)
		switch {
		case okA && okB:
			total += WinProbability(latA, latB, sigma)
		case okA:
			res.BUnavailable++
			total += 1
		case okB:
			res.AUnavailable++
		default:
			res.AUnavailable++
			res.BUnavailable++
			total += 0.5
		}
	}
	res.WinShareA = total / float64(len(storms))
	return res, nil
}

// FairWeatherSeason is Season with a single no-storm scenario — the
// Table 1 world where propagation latency alone decides.
func FairWeatherSeason(a, b Strategy, path sites.Path, sigma float64) (SeasonResult, error) {
	return Season(a, b, path, []radio.Storm{{}}, radio.DefaultFadeMarginDB, sigma)
}
