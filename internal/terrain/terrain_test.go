package terrain

import (
	"math"
	"testing"
	"testing/quick"

	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
)

func TestElevationDeterministic(t *testing.T) {
	p := geo.Point{Lat: 40.9, Lon: -78.8}
	if Elevation(p) != Elevation(p) {
		t.Error("elevation not deterministic")
	}
}

func TestElevationRange(t *testing.T) {
	f := func(latSeed, lonSeed float64) bool {
		lat := 38 + math.Mod(math.Abs(latSeed), 6)
		lon := -89 + math.Mod(math.Abs(lonSeed), 16)
		if math.IsNaN(lat) || math.IsNaN(lon) {
			return true
		}
		e := Elevation(geo.Point{Lat: lat, Lon: lon})
		return e >= 0 && e < 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWestHigherThanCoast(t *testing.T) {
	west := Elevation(sites.CME.Location)
	coast := Elevation(sites.NY4.Location)
	if west <= coast {
		t.Errorf("CME %f should sit above the coast %f", west, coast)
	}
	if west < 120 || west > 320 {
		t.Errorf("CME elevation = %.0f m, want Midwest ~200", west)
	}
	if coast > 120 {
		t.Errorf("NY4 elevation = %.0f m, want coastal lowland", coast)
	}
}

func TestAppalachianRidgesPresent(t *testing.T) {
	// Sample along the corridor: the central-Pennsylvania stretch must
	// rise well above both ends.
	a, b := sites.CME.Location, sites.NY4.Location
	maxRidge := 0.0
	for frac := 0.55; frac <= 0.85; frac += 0.01 {
		if e := Elevation(geo.Interpolate(a, b, frac)); e > maxRidge {
			maxRidge = e
		}
	}
	if maxRidge < 350 {
		t.Errorf("Appalachian max = %.0f m, want > 350", maxRidge)
	}
}

func TestElevationSmoothness(t *testing.T) {
	// 100 m steps change elevation by a bounded amount (no cliffs that
	// would make Fresnel sampling unreliable).
	a := geo.Point{Lat: 40.8, Lon: -79.0}
	prev := Elevation(a)
	brg := 95.0
	for i := 1; i <= 200; i++ {
		p := geo.Destination(a, brg, float64(i)*100)
		e := Elevation(p)
		if d := math.Abs(e - prev); d > 60 {
			t.Fatalf("elevation jumped %.0f m over 100 m at step %d", d, i)
		}
		prev = e
	}
}

func TestProfile(t *testing.T) {
	a, b := sites.CME.Location, sites.NY4.Location
	prof := Profile(a, b, 64)
	if len(prof) != 64 {
		t.Fatalf("profile samples = %d", len(prof))
	}
	for i, e := range prof {
		if e < 0 || e > 1000 {
			t.Errorf("sample %d = %v out of range", i, e)
		}
	}
	// The corridor profile must include the ridge belt.
	max := 0.0
	for _, e := range prof {
		if e > max {
			max = e
		}
	}
	if max < 300 {
		t.Errorf("corridor max = %.0f m, want ridge crossings", max)
	}
}

func TestValueNoiseBounds(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		v := valueNoise(math.Mod(x, 1e6), math.Mod(y, 1e6))
		return v >= -1.0001 && v <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
