// Package terrain provides a deterministic synthetic elevation model of
// the Chicago–New Jersey corridor: the flat Midwest falling gently
// eastward, the Appalachian ridge-and-valley belt in central
// Pennsylvania, and coastal lowlands — the relief that decides where
// towers must stand tall (see internal/fresnel). The model is smooth,
// seed-free and pure, so every package sees the same ground.
package terrain

import (
	"math"

	"hftnetview/internal/geo"
)

// Elevation returns the model terrain height in meters above sea level.
// Values are clamped to [0, ∞) and stay under ~900 m on the corridor.
func Elevation(p geo.Point) float64 {
	// Base west→east gradient: ~205 m at the CME longitude to ~25 m at
	// the coast.
	t := (p.Lon + 88.2) / 14.2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	elev := 205 - 180*t

	// Appalachian ridge-and-valley belt: parallel ridges at fixed
	// longitudes, each a Gaussian in longitude whose crest undulates
	// with latitude.
	for _, ridge := range []struct {
		lon, amp, width float64
	}{
		{-80.1, 260, 0.30},
		{-79.0, 360, 0.35},
		{-77.9, 310, 0.30},
		{-76.8, 220, 0.28},
	} {
		dx := (p.Lon - ridge.lon) / ridge.width
		crest := 0.85 + 0.15*math.Sin(p.Lat*9+ridge.lon)
		elev += ridge.amp * crest * math.Exp(-dx*dx)
	}

	// Rolling local relief: two octaves of smooth value noise.
	elev += 45 * valueNoise(p.Lat*7, p.Lon*7)
	elev += 18 * valueNoise(p.Lat*29+100, p.Lon*29)

	if elev < 0 {
		return 0
	}
	return elev
}

// Profile samples the terrain along the geodesic a→b at n evenly spaced
// interior points, returning the elevations in order from a to b.
func Profile(a, b geo.Point, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		t := (float64(i) + 0.5) / float64(n)
		out[i] = Elevation(geo.Interpolate(a, b, t))
	}
	return out
}

// valueNoise is deterministic 2-D value noise in [-1, 1]: hashed lattice
// values with smoothstep bilinear interpolation.
func valueNoise(x, y float64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	fx, fy := x-x0, y-y0
	sx, sy := smooth(fx), smooth(fy)
	v00 := lattice(int64(x0), int64(y0))
	v10 := lattice(int64(x0)+1, int64(y0))
	v01 := lattice(int64(x0), int64(y0)+1)
	v11 := lattice(int64(x0)+1, int64(y0)+1)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// lattice hashes integer grid coordinates to a stable value in [-1, 1].
func lattice(x, y int64) float64 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return float64(h%2000001)/1000000 - 1
}
