// Package viz renders reconstructed networks as GeoJSON feature
// collections and self-contained SVG corridor maps — the reproduction's
// stand-in for the paper's Google-Maps visualizations (Fig 3).
package viz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"hftnetview/internal/core"
	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
)

// geoJSON types — the subset of RFC 7946 needed for points and lines.

type featureCollection struct {
	Type     string    `json:"type"`
	Features []feature `json:"features"`
}

type feature struct {
	Type       string         `json:"type"`
	Geometry   geometry       `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"` // [lon, lat] or [[lon, lat], ...]
}

func pointCoords(p geo.Point) []float64 { return []float64{p.Lon, p.Lat} }

// NetworkGeoJSON renders the network as a GeoJSON FeatureCollection:
// towers as Points, microwave links and fiber tails as LineStrings, and
// the corridor data centers as Points.
func NetworkGeoJSON(n *core.Network) ([]byte, error) {
	fc := featureCollection{Type: "FeatureCollection"}
	for i, tw := range n.Towers {
		fc.Features = append(fc.Features, feature{
			Type:     "Feature",
			Geometry: geometry{Type: "Point", Coordinates: pointCoords(tw.Point)},
			Properties: map[string]any{
				"kind":     "tower",
				"id":       i,
				"height_m": tw.HeightMeters,
				"licensee": n.Licensee,
			},
		})
	}
	for _, l := range n.Links {
		fc.Features = append(fc.Features, feature{
			Type: "Feature",
			Geometry: geometry{Type: "LineString", Coordinates: [][]float64{
				pointCoords(n.Towers[l.From].Point),
				pointCoords(n.Towers[l.To].Point),
			}},
			Properties: map[string]any{
				"kind":      "microwave_link",
				"call_sign": l.CallSign,
				"length_km": l.LengthMeters / 1000,
				"freqs_mhz": l.FrequenciesMHz,
			},
		})
	}
	for _, f := range n.Fiber {
		fc.Features = append(fc.Features, feature{
			Type: "Feature",
			Geometry: geometry{Type: "LineString", Coordinates: [][]float64{
				pointCoords(f.DataCenter.Location),
				pointCoords(n.Towers[f.Tower].Point),
			}},
			Properties: map[string]any{
				"kind":        "fiber_tail",
				"data_center": f.DataCenter.Code,
				"length_km":   f.LengthMeters / 1000,
			},
		})
	}
	for _, dc := range sites.All {
		fc.Features = append(fc.Features, feature{
			Type:     "Feature",
			Geometry: geometry{Type: "Point", Coordinates: pointCoords(dc.Location)},
			Properties: map[string]any{
				"kind": "data_center",
				"code": dc.Code,
				"name": dc.Name,
			},
		})
	}
	return json.MarshalIndent(fc, "", "  ")
}

// projection maps lon/lat into SVG pixel space (equirectangular with a
// cos(midLat) aspect correction, fine at corridor scale).
type projection struct {
	minLon, maxLon, minLat, maxLat float64
	width, height                  float64
	margin                         float64
}

func newProjection(pts []geo.Point, width int) projection {
	p := projection{
		minLon: math.Inf(1), maxLon: math.Inf(-1),
		minLat: math.Inf(1), maxLat: math.Inf(-1),
		width: float64(width), margin: 20,
	}
	for _, pt := range pts {
		p.minLon = math.Min(p.minLon, pt.Lon)
		p.maxLon = math.Max(p.maxLon, pt.Lon)
		p.minLat = math.Min(p.minLat, pt.Lat)
		p.maxLat = math.Max(p.maxLat, pt.Lat)
	}
	// Pad degenerate boxes.
	if p.maxLon-p.minLon < 0.01 {
		p.minLon -= 0.05
		p.maxLon += 0.05
	}
	if p.maxLat-p.minLat < 0.01 {
		p.minLat -= 0.05
		p.maxLat += 0.05
	}
	midLat := (p.minLat + p.maxLat) / 2
	aspect := (p.maxLat - p.minLat) / ((p.maxLon - p.minLon) * math.Cos(midLat*math.Pi/180))
	p.height = (p.width-2*p.margin)*aspect + 2*p.margin
	return p
}

func (p projection) xy(pt geo.Point) (x, y float64) {
	x = p.margin + (pt.Lon-p.minLon)/(p.maxLon-p.minLon)*(p.width-2*p.margin)
	y = p.margin + (p.maxLat-pt.Lat)/(p.maxLat-p.minLat)*(p.height-2*p.margin)
	return x, y
}

// SVGOptions styles the corridor map.
type SVGOptions struct {
	// Width is the image width in pixels (height follows the bbox).
	Width int
	// LinkColor and TowerColor style the network; defaults are used
	// when empty.
	LinkColor, TowerColor string
	// Title is drawn in the top-left corner.
	Title string
}

// NetworkSVG renders the network as a self-contained SVG corridor map.
func NetworkSVG(n *core.Network, opts SVGOptions) []byte {
	if opts.Width <= 0 {
		opts.Width = 1200
	}
	if opts.LinkColor == "" {
		opts.LinkColor = "#1f77b4"
	}
	if opts.TowerColor == "" {
		opts.TowerColor = "#d62728"
	}

	pts := make([]geo.Point, 0, len(n.Towers)+len(sites.All))
	for _, tw := range n.Towers {
		pts = append(pts, tw.Point)
	}
	for _, dc := range sites.All {
		pts = append(pts, dc.Location)
	}
	proj := newProjection(pts, opts.Width)

	var buf bytes.Buffer
	fmt.Fprintf(&buf, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		proj.width, proj.height, proj.width, proj.height)
	fmt.Fprintf(&buf, `<rect width="100%%" height="100%%" fill="#fbfbf8"/>`+"\n")

	// Fiber tails (dashed).
	for _, f := range n.Fiber {
		x1, y1 := proj.xy(f.DataCenter.Location)
		x2, y2 := proj.xy(n.Towers[f.Tower].Point)
		fmt.Fprintf(&buf, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#555" stroke-width="1" stroke-dasharray="4 3"/>`+"\n",
			x1, y1, x2, y2)
	}
	// Microwave links.
	for _, l := range n.Links {
		x1, y1 := proj.xy(n.Towers[l.From].Point)
		x2, y2 := proj.xy(n.Towers[l.To].Point)
		fmt.Fprintf(&buf, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.4"/>`+"\n",
			x1, y1, x2, y2, opts.LinkColor)
	}
	// Towers.
	for _, tw := range n.Towers {
		x, y := proj.xy(tw.Point)
		fmt.Fprintf(&buf, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s"/>`+"\n",
			x, y, opts.TowerColor)
	}
	// Data centers.
	for _, dc := range sites.All {
		x, y := proj.xy(dc.Location)
		fmt.Fprintf(&buf, `<rect x="%.1f" y="%.1f" width="8" height="8" fill="#111"/>`+"\n",
			x-4, y-4)
		fmt.Fprintf(&buf, `<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">%s</text>`+"\n",
			x+6, y-5, dc.Code)
	}
	title := opts.Title
	if title == "" {
		title = fmt.Sprintf("%s — %s (%d towers, %d links)",
			n.Licensee, n.Date, len(n.Towers), len(n.Links))
	}
	fmt.Fprintf(&buf, `<text x="%.0f" y="16" font-size="13" font-family="sans-serif" font-weight="bold">%s</text>`+"\n",
		proj.margin, xmlEscape(title))
	buf.WriteString("</svg>\n")
	return buf.Bytes()
}

// atlasPalette colors the corridor atlas; distinct hues per network.
var atlasPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
}

// AtlasSVG renders several networks onto one corridor map — the "every
// network in the race" view of the Fig 3 family. Networks are drawn in
// palette order with a legend.
func AtlasSVG(networks []*core.Network, opts SVGOptions) []byte {
	if opts.Width <= 0 {
		opts.Width = 1400
	}
	var pts []geo.Point
	for _, n := range networks {
		for _, tw := range n.Towers {
			pts = append(pts, tw.Point)
		}
	}
	for _, dc := range sites.All {
		pts = append(pts, dc.Location)
	}
	if len(pts) == 0 {
		return []byte("<svg xmlns=\"http://www.w3.org/2000/svg\"/>\n")
	}
	proj := newProjection(pts, opts.Width)

	var buf bytes.Buffer
	legendH := float64(14*len(networks) + 10)
	fmt.Fprintf(&buf, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		proj.width, proj.height+legendH, proj.width, proj.height+legendH)
	fmt.Fprintf(&buf, `<rect width="100%%" height="100%%" fill="#fbfbf8"/>`+"\n")

	for i, n := range networks {
		color := atlasPalette[i%len(atlasPalette)]
		for _, l := range n.Links {
			x1, y1 := proj.xy(n.Towers[l.From].Point)
			x2, y2 := proj.xy(n.Towers[l.To].Point)
			fmt.Fprintf(&buf, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-opacity="0.75"/>`+"\n",
				x1, y1, x2, y2, color)
		}
	}
	for _, dc := range sites.All {
		x, y := proj.xy(dc.Location)
		fmt.Fprintf(&buf, `<rect x="%.1f" y="%.1f" width="8" height="8" fill="#111"/>`+"\n", x-4, y-4)
		fmt.Fprintf(&buf, `<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">%s</text>`+"\n",
			x+6, y-5, dc.Code)
	}
	// Legend.
	for i, n := range networks {
		y := proj.height + 14*float64(i) + 12
		color := atlasPalette[i%len(atlasPalette)]
		fmt.Fprintf(&buf, `<rect x="%.0f" y="%.1f" width="18" height="4" fill="%s"/>`+"\n",
			proj.margin, y-4, color)
		fmt.Fprintf(&buf, `<text x="%.0f" y="%.1f" font-size="11" font-family="sans-serif">%s (%d links)</text>`+"\n",
			proj.margin+24, y, xmlEscape(n.Licensee), len(n.Links))
	}
	title := opts.Title
	if title == "" {
		title = fmt.Sprintf("Chicago-New Jersey corridor: %d networks", len(networks))
	}
	fmt.Fprintf(&buf, `<text x="%.0f" y="16" font-size="13" font-family="sans-serif" font-weight="bold">%s</text>`+"\n",
		proj.margin, xmlEscape(title))
	buf.WriteString("</svg>\n")
	return buf.Bytes()
}

func xmlEscape(s string) string {
	var b bytes.Buffer
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
