package viz

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

func testNetwork(t *testing.T) *core.Network {
	t.Helper()
	db := uls.NewDatabase()
	grant := uls.NewDate(2015, time.June, 1)
	pts := make([]geo.Point, 12)
	for i := range pts {
		frac := 0.002 + 0.996*float64(i)/float64(len(pts)-1)
		pts[i] = geo.Interpolate(sites.CME.Location, sites.NY4.Location, frac)
	}
	for i := 0; i < len(pts)-1; i++ {
		l := &uls.License{
			CallSign: fmt.Sprintf("WQVZ%03d", i), LicenseID: i + 1,
			Licensee: "Viz & Co", FRN: "0000000009",
			RadioService: uls.ServiceMG, Status: uls.StatusActive, Grant: grant,
			Locations: []uls.Location{
				{Number: 1, Point: pts[i], GroundElevation: 200, SupportHeight: 90},
				{Number: 2, Point: pts[i+1], GroundElevation: 190, SupportHeight: 95},
			},
			Paths: []uls.Path{{Number: 1, TXLocation: 1, RXLocation: 2,
				StationClass: uls.ClassFXO, FrequenciesMHz: []float64{11245}}},
		}
		if err := db.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	n, err := core.Reconstruct(db, "Viz & Co", uls.NewDate(2020, time.April, 1),
		sites.All, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetworkGeoJSON(t *testing.T) {
	n := testNetwork(t)
	data, err := NetworkGeoJSON(n)
	if err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string          `json:"type"`
				Coordinates json.RawMessage `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(data, &fc); err != nil {
		t.Fatalf("GeoJSON does not parse: %v", err)
	}
	if fc.Type != "FeatureCollection" {
		t.Errorf("type = %q", fc.Type)
	}
	counts := map[string]int{}
	for _, f := range fc.Features {
		if f.Type != "Feature" {
			t.Errorf("feature type = %q", f.Type)
		}
		kind, _ := f.Properties["kind"].(string)
		counts[kind]++
		switch kind {
		case "tower", "data_center":
			if f.Geometry.Type != "Point" {
				t.Errorf("%s geometry = %q", kind, f.Geometry.Type)
			}
			var c []float64
			if err := json.Unmarshal(f.Geometry.Coordinates, &c); err != nil || len(c) != 2 {
				t.Errorf("%s coordinates malformed: %s", kind, f.Geometry.Coordinates)
			} else if c[0] > -70 || c[0] < -90 {
				t.Errorf("%s lon %v out of corridor (lon/lat order wrong?)", kind, c[0])
			}
		case "microwave_link", "fiber_tail":
			if f.Geometry.Type != "LineString" {
				t.Errorf("%s geometry = %q", kind, f.Geometry.Type)
			}
		default:
			t.Errorf("unknown feature kind %q", kind)
		}
	}
	if counts["tower"] != 12 {
		t.Errorf("towers = %d, want 12", counts["tower"])
	}
	if counts["microwave_link"] != 11 {
		t.Errorf("links = %d, want 11", counts["microwave_link"])
	}
	if counts["data_center"] != len(sites.All) {
		t.Errorf("data centers = %d, want %d", counts["data_center"], len(sites.All))
	}
	if counts["fiber_tail"] < 2 {
		t.Errorf("fiber tails = %d, want >= 2", counts["fiber_tail"])
	}
}

func TestNetworkSVG(t *testing.T) {
	n := testNetwork(t)
	svg := string(NetworkSVG(n, SVGOptions{Width: 1000}))
	if !strings.HasPrefix(svg, "<svg ") {
		t.Fatalf("not an SVG: %.60q", svg)
	}
	if !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("SVG not closed")
	}
	if got := strings.Count(svg, "<circle"); got != 12 {
		t.Errorf("tower circles = %d, want 12", got)
	}
	// 11 MW links + fiber tails as lines.
	if got := strings.Count(svg, "<line"); got < 13 {
		t.Errorf("lines = %d, want >= 13", got)
	}
	for _, dc := range sites.All {
		if !strings.Contains(svg, ">"+dc.Code+"</text>") {
			t.Errorf("missing data-center label %s", dc.Code)
		}
	}
	// Licensee name must be escaped in the title.
	if !strings.Contains(svg, "Viz &amp; Co") {
		t.Error("title not escaped")
	}
	if strings.Contains(svg, "Viz & Co") {
		t.Error("raw ampersand leaked into SVG")
	}
}

func TestNetworkSVGDefaultsAndCustomTitle(t *testing.T) {
	n := testNetwork(t)
	svg := string(NetworkSVG(n, SVGOptions{Title: "Custom <Title>"}))
	if !strings.Contains(svg, "Custom &lt;Title&gt;") {
		t.Error("custom title not rendered/escaped")
	}
	if !strings.Contains(svg, `width="1200"`) {
		t.Error("default width not applied")
	}
}

func TestAtlasSVG(t *testing.T) {
	n1 := testNetwork(t)
	svg := string(AtlasSVG([]*core.Network{n1, n1}, SVGOptions{}))
	if !strings.HasPrefix(svg, "<svg ") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG")
	}
	// 11 links × 2 networks + legend rects.
	if got := strings.Count(svg, "<line"); got != 22 {
		t.Errorf("atlas lines = %d, want 22", got)
	}
	// Legend entries.
	if got := strings.Count(svg, "(11 links)"); got != 2 {
		t.Errorf("legend entries = %d, want 2", got)
	}
	if !strings.Contains(svg, "corridor: 2 networks") {
		t.Error("default title missing")
	}
	// Empty atlas degrades gracefully.
	if out := AtlasSVG(nil, SVGOptions{}); len(out) == 0 {
		t.Error("empty atlas should still emit an SVG stub")
	}
}

func TestProjectionWithinViewBox(t *testing.T) {
	n := testNetwork(t)
	pts := make([]geo.Point, 0, len(n.Towers))
	for _, tw := range n.Towers {
		pts = append(pts, tw.Point)
	}
	proj := newProjection(pts, 800)
	for _, pt := range pts {
		x, y := proj.xy(pt)
		if x < 0 || x > proj.width || y < 0 || y > proj.height {
			t.Errorf("point %v projects outside viewBox: (%v, %v)", pt, x, y)
		}
	}
	// North must be up: the northernmost point has the smallest y.
	_, yNorth := proj.xy(geo.Point{Lat: proj.maxLat, Lon: proj.minLon})
	_, ySouth := proj.xy(geo.Point{Lat: proj.minLat, Lon: proj.minLon})
	if yNorth >= ySouth {
		t.Error("projection is upside down")
	}
}

func TestProjectionDegenerateBBox(t *testing.T) {
	proj := newProjection([]geo.Point{{Lat: 41, Lon: -88}}, 400)
	x, y := proj.xy(geo.Point{Lat: 41, Lon: -88})
	if x < 0 || x > proj.width || y < 0 || y > proj.height {
		t.Errorf("degenerate bbox projects outside: (%v, %v)", x, y)
	}
}
