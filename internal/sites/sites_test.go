package sites

import (
	"math"
	"testing"
)

func TestGeodesicsMatchPaper(t *testing.T) {
	// Table 2 reports the corridor geodesics as 1,186 / 1,174 / 1,176 km.
	want := map[string]float64{
		"CME-NY4":    1186e3,
		"CME-NYSE":   1174e3,
		"CME-NASDAQ": 1176e3,
	}
	for _, p := range CorridorPaths() {
		w, ok := want[p.Name()]
		if !ok {
			t.Fatalf("unexpected path %s", p.Name())
		}
		if got := p.GeodesicMeters(); math.Abs(got-w) > 1000 {
			t.Errorf("%s geodesic = %.0f m, want %.0f ± 1000", p.Name(), got, w)
		}
	}
}

func TestByCode(t *testing.T) {
	for _, dc := range All {
		got, ok := ByCode(dc.Code)
		if !ok || got.Name != dc.Name {
			t.Errorf("ByCode(%q) = %+v, %v", dc.Code, got, ok)
		}
	}
	if _, ok := ByCode("LSE"); ok {
		t.Error("ByCode(LSE) should not exist")
	}
}

func TestPathName(t *testing.T) {
	p := Path{From: CME, To: NY4}
	if p.Name() != "CME-NY4" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestEastOrdering(t *testing.T) {
	if len(East) != 3 || East[0].Code != "NY4" || East[1].Code != "NYSE" || East[2].Code != "NASDAQ" {
		t.Errorf("East = %+v, want NY4, NYSE, NASDAQ", East)
	}
}

func TestAllLocationsValid(t *testing.T) {
	for _, dc := range All {
		if !dc.Location.Valid() {
			t.Errorf("%s location invalid: %v", dc.Code, dc.Location)
		}
		// Corridor sanity: all sites are in the northeastern US.
		if dc.Location.Lat < 40 || dc.Location.Lat > 42.5 ||
			dc.Location.Lon > -73 || dc.Location.Lon < -89 {
			t.Errorf("%s location out of corridor: %v", dc.Code, dc.Location)
		}
	}
}
