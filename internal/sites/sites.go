// Package sites pins the financial data centers that anchor the
// Chicago–New Jersey trading corridor the paper studies (§1, §2.2).
//
// The coordinates are calibrated so that the geodesic distances between
// CME and the three New Jersey facilities match the paper's reported
// values (1,186 / 1,174 / 1,176 km, Table 2) to within a kilometer; they
// sit within ~2 km of the physical facilities.
package sites

import "hftnetview/internal/geo"

// DataCenter identifies one of the corridor's anchor facilities.
type DataCenter struct {
	// Code is the short identifier used in path names (e.g. "CME").
	Code string
	// Name is the human-readable facility name.
	Name string
	// Location is the calibrated facility coordinate.
	Location geo.Point
}

// The four anchor facilities (§2.2).
var (
	// CME is the Chicago Mercantile Exchange data center in Aurora, IL.
	CME = DataCenter{Code: "CME", Name: "CME Aurora IL",
		Location: geo.Point{Lat: 41.7625, Lon: -88.2030}}
	// NY4 is the Equinix NY4 data center in Secaucus, NJ (hosts CBOE).
	NY4 = DataCenter{Code: "NY4", Name: "Equinix NY4 Secaucus NJ",
		Location: geo.Point{Lat: 40.7770, Lon: -74.093036}}
	// NYSE is the New York Stock Exchange data center in Mahwah, NJ.
	NYSE = DataCenter{Code: "NYSE", Name: "NYSE Mahwah NJ",
		Location: geo.Point{Lat: 41.0722, Lon: -74.174623}}
	// NASDAQ is the NASDAQ data center in Carteret, NJ.
	NASDAQ = DataCenter{Code: "NASDAQ", Name: "NASDAQ Carteret NJ",
		Location: geo.Point{Lat: 40.5837, Lon: -74.260104}}
)

// East lists the eastern (New Jersey) endpoints in the order the paper's
// Table 2 uses.
var East = []DataCenter{NY4, NYSE, NASDAQ}

// All lists every anchor facility.
var All = []DataCenter{CME, NY4, NYSE, NASDAQ}

// ByCode returns the data center with the given code and whether it
// exists.
func ByCode(code string) (DataCenter, bool) {
	for _, dc := range All {
		if dc.Code == code {
			return dc, true
		}
	}
	return DataCenter{}, false
}

// Path is an ordered data-center pair, the unit of analysis in Tables 1–3.
type Path struct {
	From, To DataCenter
}

// Name renders the path as the paper writes it, e.g. "CME-NY4".
func (p Path) Name() string { return p.From.Code + "-" + p.To.Code }

// GeodesicMeters returns the geodesic distance between the endpoints.
func (p Path) GeodesicMeters() float64 {
	return geo.Distance(p.From.Location, p.To.Location)
}

// CorridorPaths lists the three paths of Table 2 in table order.
func CorridorPaths() []Path {
	return []Path{
		{From: CME, To: NY4},
		{From: CME, To: NYSE},
		{From: CME, To: NASDAQ},
	}
}
