package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"hftnetview/internal/serve"
	"hftnetview/internal/store"
)

// maxShipBytes bounds a single manifest or segment download; a
// malicious or corrupted primary must not drive an unbounded read.
const maxShipBytes = 256 << 20

// PullerConfig wires one replica's pull loop.
type PullerConfig struct {
	// Primary is the base URL of the primary's shipping endpoints.
	Primary string
	// Store is the replica's own crash-safe store; pulled generations
	// are verified and committed here before going live.
	Store *store.Store
	// Server, when non-nil, has each installed generation published as
	// its live corpus, and gains a "pull" section on /statsz.
	Server *serve.Server
	// Interval is the poll cadence (default 2s); each sleep is
	// stretched by up to JitterFrac so a restarted fleet's replicas
	// don't poll the primary in lockstep.
	Interval time.Duration
	// JitterFrac is the fraction of Interval used as jitter (default
	// 0.5, i.e. sleeps are uniform in [Interval, 1.5·Interval]).
	JitterFrac float64
	// MaxBackoff caps the exponential backoff consecutive failures
	// build up to (default 8·Interval). One success resets to Interval.
	MaxBackoff time.Duration
	// Client issues the HTTP fetches (default: a client with a 30s
	// timeout). Tests inject fault transports here.
	Client *http.Client
	// Keep is how many local generations survive the post-install GC
	// (default 3; the previous generation is always retained as the
	// fallback corpus).
	Keep int
}

func (c PullerConfig) withDefaults() PullerConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.5
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.Interval
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Keep <= 0 {
		c.Keep = 3
	}
	return c
}

// PullStatus is the pull loop's account of itself, surfaced on the
// replica's /statsz under "pull".
type PullStatus struct {
	// Attempts counts pulls that found a newer generation and tried to
	// install it; Polls counts every manifest probe.
	Polls    int64 `json:"polls"`
	Attempts int64 `json:"attempts"`
	// Installs counts generations verified, committed, and published.
	Installs int64 `json:"installs"`
	// Rejections counts downloads refused because verification failed
	// — corrupted bytes never went live and never touched disk
	// durably; the previous generation kept serving.
	Rejections int64 `json:"rejections"`
	// Retried counts pulls abandoned because the primary GC'd the
	// generation mid-download (retryable; the next poll starts over
	// from a newer manifest).
	Retried int64 `json:"retried"`
	// Backoffs counts ticks slept beyond the base interval because of
	// consecutive failures — a sick primary shows up here long before
	// it shows up in the error log's volume.
	Backoffs int64 `json:"backoffs"`
	// Generation is the newest installed store generation id.
	Generation int64 `json:"generation"`
	// LastError is the most recent pull failure ("" after a clean
	// poll); LastInstall timestamps the newest install.
	LastError   string `json:"last_error,omitempty"`
	LastInstall string `json:"last_install,omitempty"`
}

// Puller replicates a primary's generations into a local store and
// serves them. Safe for one Run loop plus concurrent Status calls.
type Puller struct {
	cfg PullerConfig

	mu         sync.Mutex
	status     PullStatus
	retryAfter time.Duration // shipper's latest Retry-After hint; consumed by nextDelay
}

// NewPuller returns a puller; if cfg.Server is set, its pull status is
// registered on that server's /statsz.
func NewPuller(cfg PullerConfig) *Puller {
	p := &Puller{cfg: cfg.withDefaults()}
	if p.cfg.Server != nil {
		p.cfg.Server.RegisterStats("pull", func() any { return p.Status() })
	}
	return p
}

// Status returns a copy of the pull counters.
func (p *Puller) Status() PullStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status
}

// Run polls until ctx is done. Failures never stop the loop: a
// verification rejection or a transport error is recorded and the next
// tick tries again — but consecutive failures back off exponentially
// (capped, reset by one success), so a fleet of replicas does not
// hammer a primary that is down, and a shipper shedding load with
// Retry-After gets at least the breather it asked for.
func (p *Puller) Run(ctx context.Context) {
	failStreak := 0
	for {
		if _, err := p.PullOnce(ctx); err != nil {
			if ctx.Err() == nil {
				log.Printf("fleet: pull from %s: %v", p.cfg.Primary, err)
			}
			failStreak++
		} else {
			failStreak = 0
		}
		d := p.nextDelay(failStreak)
		d += time.Duration(rand.Float64() * p.cfg.JitterFrac * float64(p.cfg.Interval))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
	}
}

// nextDelay is the base sleep before the next poll: Interval after a
// success, doubling per consecutive failure up to MaxBackoff, and
// never less than the shipper's pending Retry-After hint (the primary
// said when to come back; ignoring it is how retry storms start).
func (p *Puller) nextDelay(failStreak int) time.Duration {
	d := p.cfg.Interval
	for i := 0; i < failStreak; i++ {
		d *= 2
		if d >= p.cfg.MaxBackoff {
			d = p.cfg.MaxBackoff
			break
		}
	}
	p.mu.Lock()
	if p.retryAfter > d {
		d = p.retryAfter
	}
	p.retryAfter = 0
	if d > p.cfg.Interval {
		p.status.Backoffs++
	}
	p.mu.Unlock()
	return d
}

// PullOnce probes the primary's newest manifest and, if it is ahead of
// the local store, downloads, verifies, installs, and publishes it.
// It reports whether a new generation went live.
func (p *Puller) PullOnce(ctx context.Context) (installed bool, err error) {
	p.bump(func(st *PullStatus) { st.Polls++ })

	mb, err := p.fetch(ctx, p.cfg.Primary+shipPrefix+"manifest")
	if err != nil {
		return false, p.fail(err)
	}
	gi, err := store.ParseManifest(mb)
	if err != nil {
		// The manifest itself arrived corrupted — a verification
		// rejection, same as a bad segment.
		p.bump(func(st *PullStatus) { st.Attempts++; st.Rejections++ })
		return false, p.fail(fmt.Errorf("%w: manifest: %v", store.ErrVerify, err))
	}
	local, err := p.cfg.Store.LatestID()
	if err != nil {
		return false, p.fail(err)
	}
	if gi.ID <= local {
		p.clearError()
		return false, nil // up to date
	}

	p.bump(func(st *PullStatus) { st.Attempts++ })
	fetchSeg := func(name string) ([]byte, error) {
		return p.fetch(ctx, fmt.Sprintf("%s%ssegment/%d/%s", p.cfg.Primary, shipPrefix, gi.ID, name))
	}
	igi, db, err := p.cfg.Store.Install(mb, fetchSeg)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrVerify):
		p.bump(func(st *PullStatus) { st.Rejections++ })
		return false, p.fail(err)
	case store.IsRetryable(err):
		// The primary GC'd this generation mid-pull; the next poll
		// starts from whatever replaced it.
		p.bump(func(st *PullStatus) { st.Retried++ })
		return false, p.fail(err)
	case errors.Is(err, os.ErrExist):
		p.clearError()
		return false, nil // raced with another installer; already have it
	default:
		return false, p.fail(err)
	}

	if p.cfg.Server != nil {
		p.cfg.Server.PublishStoreGeneration(db, igi)
	}
	p.mu.Lock()
	p.status.Installs++
	p.status.Generation = igi.ID
	p.status.LastInstall = time.Now().UTC().Format(time.RFC3339)
	p.status.LastError = ""
	p.mu.Unlock()

	// Prune local history; Keep >= 1 plus GC's own last-recoverable
	// guarantee means the fallback corpus always survives.
	if _, err := p.cfg.Store.GC(p.cfg.Keep); err != nil && !errors.Is(err, store.ErrClosed) {
		log.Printf("fleet: post-install gc: %v", err)
	}
	return true, nil
}

func (p *Puller) bump(f func(*PullStatus)) {
	p.mu.Lock()
	f(&p.status)
	p.mu.Unlock()
}

func (p *Puller) fail(err error) error {
	p.bump(func(st *PullStatus) { st.LastError = err.Error() })
	return err
}

func (p *Puller) clearError() {
	p.bump(func(st *PullStatus) { st.LastError = "" })
}

// fetch GETs one shipping URL. A 404 carrying X-Gen-Gone is translated
// back into the store's retryable ErrGenGone so Install's caller can
// classify it.
func (p *Puller) fetch(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShipBytes))
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", url, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return body, nil
	case resp.StatusCode == http.StatusNotFound && resp.Header.Get("X-Gen-Gone") != "":
		return nil, fmt.Errorf("%w: primary swept it mid-pull", store.ErrGenGone)
	default:
		// A shedding shipper names its price; record it for nextDelay.
		if resp.StatusCode == http.StatusServiceUnavailable {
			if secs, aerr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); aerr == nil && secs > 0 {
				p.mu.Lock()
				p.retryAfter = time.Duration(secs) * time.Second
				p.mu.Unlock()
			}
		}
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
}
