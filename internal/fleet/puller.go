package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"hftnetview/internal/serve"
	"hftnetview/internal/store"
)

// maxShipBytes bounds a single manifest or segment download; a
// malicious or corrupted primary must not drive an unbounded read.
const maxShipBytes = 256 << 20

// PullerConfig wires one replica's pull loop.
type PullerConfig struct {
	// Primary is the base URL of the primary's shipping endpoints
	// (static wiring; also the seed source before the first successful
	// role resolution when Front is set).
	Primary string
	// Front, when set, makes the source dynamic: each poll resolves the
	// fleet's current source role from the front's /v1/fleet/source and
	// re-targets on change, fenced by the role's monotone epoch — a
	// resolution naming a lower epoch than one already obeyed is
	// refused, so a stale front (or a fenced old primary reappearing
	// behind one) can never re-point this replica at dead state.
	Front string
	// Self is this replica's own base URL; when the resolved source is
	// Self the poll is a no-op — a promoted source's store IS the
	// origin, there is nothing to pull.
	Self string
	// Store is the replica's own crash-safe store; pulled generations
	// are verified and committed here before going live.
	Store *store.Store
	// Server, when non-nil, has each installed generation published as
	// its live corpus, and gains a "pull" section on /statsz.
	Server *serve.Server
	// Interval is the poll cadence (default 2s); each sleep is
	// stretched by up to JitterFrac so a restarted fleet's replicas
	// don't poll the primary in lockstep.
	Interval time.Duration
	// JitterFrac is the fraction of Interval used as jitter (default
	// 0.5, i.e. sleeps are uniform in [Interval, 1.5·Interval]).
	JitterFrac float64
	// MaxBackoff caps the exponential backoff consecutive failures
	// build up to (default 8·Interval). One success resets to Interval.
	MaxBackoff time.Duration
	// Client issues the HTTP fetches (default: a client with a 30s
	// timeout). Tests inject fault transports here.
	Client *http.Client
	// Keep is how many local generations survive the post-install GC
	// (default 3; the previous generation is always retained as the
	// fallback corpus).
	Keep int
	// MaxBytesPerSec caps segment download throughput with a token
	// bucket (0 = unlimited), so replication and repair traffic cannot
	// starve live serving. The staging area makes the stretched
	// transfer safe: a pull interrupted mid-budget resumes where it
	// stopped.
	MaxBytesPerSec int64
}

func (c PullerConfig) withDefaults() PullerConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.5
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.Interval
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Keep <= 0 {
		c.Keep = 3
	}
	return c
}

// PullStatus is the pull loop's account of itself, surfaced on the
// replica's /statsz under "pull".
type PullStatus struct {
	// Attempts counts pulls that found a newer generation and tried to
	// install it; Polls counts every manifest probe.
	Polls    int64 `json:"polls"`
	Attempts int64 `json:"attempts"`
	// Installs counts generations verified, committed, and published.
	Installs int64 `json:"installs"`
	// Rejections counts downloads refused because verification failed
	// — corrupted bytes never went live and never touched disk
	// durably; the previous generation kept serving.
	Rejections int64 `json:"rejections"`
	// Retried counts pulls abandoned because the primary GC'd the
	// generation mid-download (retryable; the next poll starts over
	// from a newer manifest).
	Retried int64 `json:"retried"`
	// Backoffs counts ticks slept beyond the base interval because of
	// consecutive failures — a sick primary shows up here long before
	// it shows up in the error log's volume.
	Backoffs int64 `json:"backoffs"`
	// SegmentsFetched and BytesFetched count wire-level segment
	// transfer: what actually crossed the network, the denominator for
	// every saving below.
	SegmentsFetched int64 `json:"segments_fetched"`
	BytesFetched    int64 `json:"bytes_fetched"`
	// Resumed counts segments whose bytes were (partly or wholly)
	// recovered from an earlier interrupted pull instead of
	// re-downloaded — staged partials continued with ranged GETs and
	// verified survivors re-adopted after a restart.
	Resumed int64 `json:"resumed"`
	// ReusedSegments counts segments satisfied by SHA-256 digest from a
	// local committed generation (delta shipping: unchanged segments of
	// generation N+1 never touch the wire).
	ReusedSegments int64 `json:"reused_segments"`
	// BytesSaved totals the bytes resume and reuse kept off the wire.
	BytesSaved int64 `json:"bytes_saved"`
	// ThrottleWaits counts reads the MaxBytesPerSec token bucket made
	// sleep — nonzero means the budget is actually shaping traffic.
	ThrottleWaits int64 `json:"throttle_waits,omitempty"`
	// Generation is the newest installed store generation id.
	Generation int64 `json:"generation"`
	// Source is the base URL currently replicated from — the static
	// primary, or the front-resolved source role; SourceEpoch is the
	// epoch fence it was adopted under (0 = static wiring).
	Source      string `json:"source,omitempty"`
	SourceEpoch int64  `json:"source_epoch,omitempty"`
	// ConsecutiveFailures counts polls failed since the last clean one
	// — a wedged or re-targeting puller is diagnosable from /statsz
	// without logs.
	ConsecutiveFailures int64 `json:"consecutive_failures,omitempty"`
	// Fenced counts source resolutions refused for naming a lower epoch
	// than one already obeyed; Diverged counts local generations
	// quarantined as dead-branch state after a promotion.
	Fenced   int64 `json:"fenced,omitempty"`
	Diverged int64 `json:"diverged,omitempty"`
	// LastError is the most recent pull failure ("" after a clean
	// poll); LastInstall timestamps the newest install.
	LastError   string `json:"last_error,omitempty"`
	LastInstall string `json:"last_install,omitempty"`
}

// Puller replicates a primary's generations into a local store and
// serves them. Safe for one Run loop plus concurrent Status calls.
type Puller struct {
	cfg    PullerConfig
	bucket *byteBucket // nil = unthrottled

	mu         sync.Mutex
	status     PullStatus
	retryAfter time.Duration // shipper's latest Retry-After hint; consumed by nextDelay

	// credited marks segments whose transfer accounting (resumed,
	// reused, fetched) is settled for creditedGen — re-opening the same
	// staging area on a later attempt re-adopts the same files and must
	// not count them again.
	creditedGen int64
	credited    map[string]bool
}

// NewPuller returns a puller; if cfg.Server is set, its pull status is
// registered on that server's /statsz.
func NewPuller(cfg PullerConfig) *Puller {
	p := &Puller{cfg: cfg.withDefaults()}
	p.bucket = newByteBucket(p.cfg.MaxBytesPerSec)
	p.status.Source = p.cfg.Primary
	if p.cfg.Server != nil {
		p.cfg.Server.RegisterStats("pull", func() any { return p.Status() })
	}
	return p
}

// Status returns a copy of the pull counters.
func (p *Puller) Status() PullStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status
}

// Run polls until ctx is done. Failures never stop the loop: a
// verification rejection or a transport error is recorded and the next
// tick tries again — but consecutive failures back off exponentially
// (capped, reset by one success), so a fleet of replicas does not
// hammer a primary that is down, and a shipper shedding load with
// Retry-After gets at least the breather it asked for.
func (p *Puller) Run(ctx context.Context) {
	failStreak := 0
	for {
		if _, err := p.PullOnce(ctx); err != nil {
			if ctx.Err() == nil {
				log.Printf("fleet: pull from %s: %v", p.Status().Source, err)
			}
			failStreak++
		} else {
			failStreak = 0
		}
		d := p.nextDelay(failStreak)
		d += time.Duration(rand.Float64() * p.cfg.JitterFrac * float64(p.cfg.Interval))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
	}
}

// nextDelay is the base sleep before the next poll: Interval after a
// success, doubling per consecutive failure up to MaxBackoff, and
// never less than the shipper's pending Retry-After hint (the primary
// said when to come back; ignoring it is how retry storms start).
func (p *Puller) nextDelay(failStreak int) time.Duration {
	d := p.cfg.Interval
	for i := 0; i < failStreak; i++ {
		d *= 2
		if d >= p.cfg.MaxBackoff {
			d = p.cfg.MaxBackoff
			break
		}
	}
	p.mu.Lock()
	if p.retryAfter > d {
		d = p.retryAfter
	}
	p.retryAfter = 0
	if d > p.cfg.Interval {
		p.status.Backoffs++
	}
	p.mu.Unlock()
	return d
}

// resolveSource picks the base URL this poll replicates from. Static
// wiring (no Front) is just Primary. Dynamic wiring asks the front for
// the current source role, fenced by its epoch: a resolution naming a
// lower epoch than one already obeyed is counted and refused, a vacant
// role or an unreachable front keeps the last adopted source (its
// failures accrue the ordinary backoff). "" means nothing to pull from
// yet.
func (p *Puller) resolveSource(ctx context.Context) string {
	if p.cfg.Front == "" {
		return p.cfg.Primary
	}
	var info SourceInfo
	ok := false
	if req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.cfg.Front+fleetPrefix+"source", nil); err == nil {
		if resp, err := p.cfg.Client.Do(req); err == nil {
			if resp.StatusCode == http.StatusOK &&
				json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&info) == nil {
				ok = true
			}
			resp.Body.Close()
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ok && info.URL != "" {
		switch {
		case info.Epoch < p.status.SourceEpoch:
			p.status.Fenced++
		case info.URL != p.status.Source || info.Epoch != p.status.SourceEpoch:
			log.Printf("fleet: pull source is now %s (epoch %d)", info.URL, info.Epoch)
			p.status.Source = info.URL
			p.status.SourceEpoch = info.Epoch
		}
	}
	return p.status.Source
}

// PullOnce resolves the current source, probes its newest manifest
// and, if it is ahead of the local store, downloads, verifies,
// installs, and publishes it. It reports whether a new generation went
// live.
func (p *Puller) PullOnce(ctx context.Context) (installed bool, err error) {
	p.bump(func(st *PullStatus) { st.Polls++ })

	src := p.resolveSource(ctx)
	if src == "" {
		p.clearError() // source role vacant, nothing adopted yet
		return false, nil
	}
	if p.cfg.Self != "" && src == p.cfg.Self {
		p.clearError() // we ARE the source; our store is the origin
		return false, nil
	}

	mb, err := p.fetch(ctx, src+shipPrefix+"manifest")
	if err != nil {
		return false, p.fail(err)
	}
	gi, err := store.ParseManifest(mb)
	if err != nil {
		// The manifest itself arrived corrupted — a verification
		// rejection, same as a bad segment.
		p.bump(func(st *PullStatus) { st.Attempts++; st.Rejections++ })
		return false, p.fail(fmt.Errorf("%w: manifest: %v", store.ErrVerify, err))
	}
	if gi.ID <= 0 {
		p.bump(func(st *PullStatus) { st.Attempts++; st.Rejections++ })
		return false, p.fail(fmt.Errorf("%w: manifest names generation %d", store.ErrVerify, gi.ID))
	}
	local, err := p.cfg.Store.LatestID()
	if err != nil {
		return false, p.fail(err)
	}
	if gi.ID <= local {
		if p.cfg.Front == "" {
			p.clearError()
			return false, nil // up to date
		}
		return p.reconcile(ctx, src, gi, mb)
	}
	return p.installFrom(ctx, src, gi, mb)
}

// reconcile handles a resolved source whose newest generation does not
// lead the local store. The source is the only member that creates
// generations in its epoch, so local ids beyond the source's newest —
// or a differing corpus digest at the same id — are dead-branch state
// inherited from a fenced, older-epoch source (the old primary's
// unshipped tail). Dead-branch generations are quarantined, never
// deleted, and the source's own newest is installed when ours differs;
// matching digests just mean "up to date".
func (p *Puller) reconcile(ctx context.Context, src string, gi *store.GenInfo, mb []byte) (bool, error) {
	gens, err := p.cfg.Store.List()
	if err != nil {
		return false, p.fail(err)
	}
	for _, g := range gens {
		if g.ID <= gi.ID {
			continue
		}
		if qerr := p.cfg.Store.QuarantineGeneration(g.ID); qerr != nil {
			return false, p.fail(fmt.Errorf("quarantining dead-branch generation %d: %w", g.ID, qerr))
		}
		p.bump(func(st *PullStatus) { st.Diverged++ })
		log.Printf("fleet: quarantined dead-branch generation %d (source %s is at %d, epoch %d)",
			g.ID, src, gi.ID, p.Status().SourceEpoch)
	}
	localDigest, derr := p.cfg.Store.GenDigest(gi.ID)
	switch {
	case derr == nil && localDigest == gi.CorpusSHA256:
		p.clearError()
		return false, nil // same branch, up to date
	case derr == nil, !store.IsRetryable(derr):
		// Same id from a different branch, or a local manifest too
		// corrupt to compare: quarantine ours and take the source's.
		if qerr := p.cfg.Store.QuarantineGeneration(gi.ID); qerr != nil && !store.IsRetryable(qerr) {
			return false, p.fail(fmt.Errorf("quarantining divergent generation %d: %w", gi.ID, qerr))
		}
		p.bump(func(st *PullStatus) { st.Diverged++ })
		log.Printf("fleet: quarantined divergent generation %d, reinstalling from %s", gi.ID, src)
	default:
		// We simply do not hold the source's newest id; install it.
	}
	return p.installFrom(ctx, src, gi, mb)
}

// installFrom downloads, verifies, installs, and publishes gi from src
// through the store's resumable staging area: segments already held
// locally by digest are reused off-wire, partials from an earlier
// interrupted pull are continued with ranged GETs, and every staged
// byte passes the size + SHA-256 ladder before it counts. A pull that
// fails mid-way leaves its verified progress staged on disk; the next
// poll resumes instead of starting over.
func (p *Puller) installFrom(ctx context.Context, src string, gi *store.GenInfo, mb []byte) (bool, error) {
	p.bump(func(st *PullStatus) { st.Attempts++ })
	stg, err := p.cfg.Store.OpenStaging(mb)
	switch {
	case err == nil:
	case errors.Is(err, os.ErrExist):
		p.clearError()
		return false, nil // raced with another installer; already have it
	case errors.Is(err, store.ErrVerify):
		p.bump(func(st *PullStatus) { st.Rejections++ })
		return false, p.fail(err)
	default:
		return false, p.fail(err)
	}
	defer stg.Close()

	// Progress adopted at open — resumed survivors of an interrupted
	// pull plus digest-reused local segments — is bytes the wire never
	// carries. Credit each segment once per generation: a later attempt
	// re-opening the same staging area re-adopts the same files.
	for _, si := range gi.Segments {
		if !stg.Verified(si.Name) || !p.markCredited(gi.ID, si.Name) {
			continue
		}
		reused, sz := stg.Origin(si.Name) == "reused", si.Bytes
		p.bump(func(st *PullStatus) {
			if reused {
				st.ReusedSegments++
			} else {
				st.Resumed++
			}
			st.BytesSaved += sz
		})
	}

	for _, si := range stg.Missing() {
		if stg.ReuseLocal(si) {
			if p.markCredited(gi.ID, si.Name) {
				p.bump(func(st *PullStatus) { st.ReusedSegments++; st.BytesSaved += si.Bytes })
			}
			continue
		}
		if err := p.fetchStagedSegment(ctx, src, gi, si, stg); err != nil {
			switch {
			case errors.Is(err, store.ErrVerify):
				p.bump(func(st *PullStatus) { st.Rejections++ })
			case store.IsRetryable(err):
				// The source swept or re-published the generation
				// mid-pull; the next poll starts from a fresh manifest.
				p.bump(func(st *PullStatus) { st.Retried++ })
			}
			return false, p.fail(err)
		}
	}

	igi, db, err := p.cfg.Store.InstallStaged(stg)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrVerify):
		p.bump(func(st *PullStatus) { st.Rejections++ })
		return false, p.fail(err)
	case errors.Is(err, os.ErrExist):
		p.clearError()
		return false, nil // raced with another installer; already have it
	default:
		return false, p.fail(err)
	}

	if p.cfg.Server != nil {
		p.cfg.Server.PublishStoreGeneration(db, igi)
	}
	p.mu.Lock()
	p.status.Installs++
	p.status.Generation = igi.ID
	p.status.LastInstall = time.Now().UTC().Format(time.RFC3339)
	p.status.LastError = ""
	p.status.ConsecutiveFailures = 0
	p.mu.Unlock()

	// Prune local history; Keep >= 1 plus GC's own last-recoverable
	// guarantee means the fallback corpus always survives.
	if _, err := p.cfg.Store.GC(p.cfg.Keep); err != nil && !errors.Is(err, store.ErrClosed) {
		log.Printf("fleet: post-install gc: %v", err)
	}
	return true, nil
}

// markCredited records that a segment's transfer accounting is settled
// for this generation, reporting whether this call was the first to do
// so. A new generation id resets the set.
func (p *Puller) markCredited(gen int64, name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.creditedGen != gen {
		p.creditedGen = gen
		p.credited = make(map[string]bool)
	}
	if p.credited[name] {
		return false
	}
	p.credited[name] = true
	return true
}

func (p *Puller) bump(f func(*PullStatus)) {
	p.mu.Lock()
	f(&p.status)
	p.mu.Unlock()
}

func (p *Puller) fail(err error) error {
	p.bump(func(st *PullStatus) { st.LastError = err.Error(); st.ConsecutiveFailures++ })
	return err
}

func (p *Puller) clearError() {
	p.bump(func(st *PullStatus) { st.LastError = ""; st.ConsecutiveFailures = 0 })
}

// fetchStagedSegment downloads one segment into the staging area,
// resuming any existing partial with a ranged GET, and runs the
// completion ladder. Errors classify exactly like Install's: ErrVerify
// for bytes that fail the manifest's checks (the poisoned partial is
// discarded), ErrGenGone for a source that moved on mid-pull, anything
// else a transport failure whose partial stays staged for resume.
func (p *Puller) fetchStagedSegment(ctx context.Context, src string, gi *store.GenInfo, si store.SegmentInfo, stg *store.Staging) error {
	url := fmt.Sprintf("%s%ssegment/%d/%s", src, shipPrefix, gi.ID, si.Name)
	off := stg.PartialSize(si.Name)
	if off > si.Bytes {
		// Longer than the manifest promises: poisoned, start over.
		if err := stg.ResetPartial(si.Name); err != nil {
			return err
		}
		off = 0
	}
	if off == si.Bytes {
		// A prior pull landed every byte but was cut before the verify:
		// nothing to fetch, run the ladder directly.
		if err := stg.CompleteSegment(si); err != nil {
			return err
		}
		if p.markCredited(gi.ID, si.Name) {
			p.bump(func(st *PullStatus) { st.Resumed++; st.BytesSaved += off })
		}
		return nil
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if off > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", off))
		// The segment digest is the strong validator: a source holding
		// different bytes under this name answers 200-whole instead of
		// splicing a mismatched tail onto our partial.
		req.Header.Set("If-Range", `"`+si.SHA256+`"`)
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("fetching segment %s: %w", si.Name, err)
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		if off > 0 {
			// The source ignored the range (or If-Range says the
			// content moved): restart this segment from byte zero.
			if err := stg.ResetPartial(si.Name); err != nil {
				return err
			}
			off = 0
		}
	case http.StatusPartialContent:
		start, perr := parseContentRangeStart(resp.Header.Get("Content-Range"))
		if perr != nil || start != off {
			stg.ResetPartial(si.Name)
			return fmt.Errorf("%w: segment %s: unusable range response %q",
				store.ErrVerify, si.Name, resp.Header.Get("Content-Range"))
		}
	case http.StatusNotFound:
		if resp.Header.Get("X-Gen-Gone") != "" {
			return fmt.Errorf("%w: source swept it mid-pull", store.ErrGenGone)
		}
		return fmt.Errorf("GET %s: status 404", url)
	case http.StatusServiceUnavailable:
		if secs, aerr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); aerr == nil && secs > 0 {
			p.mu.Lock()
			p.retryAfter = time.Duration(secs) * time.Second
			p.mu.Unlock()
		}
		return fmt.Errorf("GET %s: status 503", url)
	default:
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}

	// The shipper names the branch and content ahead of the body: a
	// mismatch means the source re-published or promoted mid-pull, so
	// restart from a fresh manifest without downloading a byte.
	if d := resp.Header.Get("X-Gen-Digest"); d != "" && d != gi.CorpusSHA256 {
		return fmt.Errorf("%w: source re-published generation %d mid-pull", store.ErrGenGone, gi.ID)
	}
	if d := resp.Header.Get("X-Segment-SHA256"); d != "" && d != si.SHA256 {
		return fmt.Errorf("%w: segment %s moved mid-pull", store.ErrGenGone, si.Name)
	}

	w, err := stg.SegmentWriter(si)
	if err != nil {
		return err
	}
	if w.Offset() != off {
		w.Close()
		return fmt.Errorf("fleet: partial for %s moved underfoot (%d != %d)", si.Name, w.Offset(), off)
	}
	// Read at most one byte past what the manifest promises: an
	// over-long body must fail the size ladder, never grow the partial
	// unboundedly.
	body := io.Reader(io.LimitReader(resp.Body, si.Bytes-off+1))
	if p.bucket != nil {
		body = &throttledReader{ctx: ctx, r: body, bucket: p.bucket, onWait: func() {
			p.bump(func(st *PullStatus) { st.ThrottleWaits++ })
		}}
	}
	n, cpErr := io.Copy(w, body)
	w.Close()
	if n > 0 {
		p.bump(func(st *PullStatus) { st.BytesFetched += n })
	}
	if cpErr != nil {
		// Torn mid-stream: the partial stays staged for the next pull.
		return fmt.Errorf("fetching segment %s: %w", si.Name, cpErr)
	}
	if err := stg.CompleteSegment(si); err != nil {
		return err
	}
	p.markCredited(gi.ID, si.Name)
	p.bump(func(st *PullStatus) { st.SegmentsFetched++ })
	if off > 0 {
		p.bump(func(st *PullStatus) { st.Resumed++; st.BytesSaved += off })
	}
	return nil
}

// parseContentRangeStart extracts the first byte position a 206
// response's Content-Range claims to start at.
func parseContentRangeStart(v string) (int64, error) {
	rest, ok := strings.CutPrefix(v, "bytes ")
	if !ok {
		return 0, fmt.Errorf("bad Content-Range %q", v)
	}
	start, _, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, fmt.Errorf("bad Content-Range %q", v)
	}
	return strconv.ParseInt(start, 10, 64)
}

// fetch GETs one shipping URL. A 404 carrying X-Gen-Gone is translated
// back into the store's retryable ErrGenGone so Install's caller can
// classify it.
func (p *Puller) fetch(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShipBytes))
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", url, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return body, nil
	case resp.StatusCode == http.StatusNotFound && resp.Header.Get("X-Gen-Gone") != "":
		return nil, fmt.Errorf("%w: primary swept it mid-pull", store.ErrGenGone)
	default:
		// A shedding shipper names its price; record it for nextDelay.
		if resp.StatusCode == http.StatusServiceUnavailable {
			if secs, aerr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); aerr == nil && secs > 0 {
				p.mu.Lock()
				p.retryAfter = time.Duration(secs) * time.Second
				p.mu.Unlock()
			}
		}
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
}
