package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMembershipLeaseLifecycle drives one member through the whole
// lease state machine on a fake clock: join grants a TTL, renewals
// push expiry forward, a lapse evicts, and a rejoin after eviction is
// a fresh admission.
func TestMembershipLeaseLifecycle(t *testing.T) {
	clock := time.Unix(1000, 0)
	var added, removed []string
	m := NewMembership(nil, time.Second, 8, func(a, r []Replica) {
		for _, x := range a {
			added = append(added, x.Name)
		}
		for _, x := range r {
			removed = append(removed, x.Name)
		}
	})
	m.now = func() time.Time { return clock }

	grant, err := m.Join(joinRequest{Name: "r1", URL: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if grant.TTLMillis != 1000 || grant.HeartbeatMillis >= grant.TTLMillis {
		t.Fatalf("grant = %+v; want 1s TTL with a heartbeat well inside it", grant)
	}
	if !m.Has("r1") || m.Len() != 1 || len(added) != 1 {
		t.Fatalf("after join: has=%v len=%d added=%v", m.Has("r1"), m.Len(), added)
	}

	// Renewals keep the lease alive past the original expiry.
	for i := 0; i < 3; i++ {
		clock = clock.Add(600 * time.Millisecond)
		if _, err := m.Join(joinRequest{Name: "r1", URL: "http://127.0.0.1:1"}); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
		if ev := m.Sweep(); len(ev) != 0 {
			t.Fatalf("renewed member swept: %v", ev)
		}
	}
	if s := m.Stats(); s.Joins != 1 || s.Renews != 3 {
		t.Fatalf("stats after renewals = %+v", s)
	}

	// Stop renewing: one TTL later the sweep evicts it.
	clock = clock.Add(1001 * time.Millisecond)
	ev := m.Sweep()
	if len(ev) != 1 || ev[0].Name != "r1" || m.Has("r1") || len(removed) != 1 {
		t.Fatalf("lapse: evicted=%v has=%v removed=%v", ev, m.Has("r1"), removed)
	}
	if ring := m.Ring(); ring.Len() != 0 {
		t.Fatalf("evicted member still on the ring: %d nodes", ring.Len())
	}

	// A restarted process on the same name but a new port rejoins clean.
	if _, err := m.Join(joinRequest{Name: "r1", URL: "http://127.0.0.1:2"}); err != nil {
		t.Fatalf("rejoin after eviction: %v", err)
	}
	if s := m.Stats(); s.Joins != 2 || s.Evictions != 1 {
		t.Fatalf("stats after rejoin = %+v", s)
	}
}

// TestMembershipValidation: joins are rejected for missing fields,
// relative URLs, and name collisions with a different live URL; a
// graceful leave evicts immediately; permanent (seeded) members are
// immune to both leave and sweep.
func TestMembershipValidation(t *testing.T) {
	m := NewMembership([]Replica{{Name: "seed", URL: "http://127.0.0.1:9"}}, 50*time.Millisecond, 8, nil)

	for _, req := range []joinRequest{
		{Name: "", URL: "http://x"},
		{Name: "x", URL: ""},
		{Name: "x", URL: "not-a-url"},
		{Name: "x", URL: "/relative"},
	} {
		if _, err := m.Join(req); err == nil {
			t.Errorf("join %+v accepted, want rejection", req)
		}
	}
	if _, err := m.Join(joinRequest{Name: "r1", URL: "http://127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	// Same name, different URL, while the lease is live: operator error.
	if _, err := m.Join(joinRequest{Name: "r1", URL: "http://127.0.0.1:2"}); err == nil {
		t.Fatal("conflicting join accepted")
	}

	m.Leave("r1")
	if m.Has("r1") {
		t.Fatal("member still present after leave")
	}
	m.Leave("seed")
	time.Sleep(60 * time.Millisecond)
	m.Sweep()
	if !m.Has("seed") {
		t.Fatal("permanent member lost to leave/sweep")
	}
	if s := m.Stats(); s.Rejects != 5 || s.Leaves != 1 {
		t.Fatalf("stats = %+v; want 5 rejects, 1 leave", s)
	}
}

// TestMembershipClockSkewHarmless: leases are measured on the front's
// clock, so announce timestamps hours off (or unparseable) must not
// shorten or lengthen a lease — they surface only as skew diagnostics.
func TestMembershipClockSkewHarmless(t *testing.T) {
	clock := time.Unix(5000, 0)
	m := NewMembership(nil, time.Second, 8, nil)
	m.now = func() time.Time { return clock }

	skewed := clock.Add(-3 * time.Hour).UTC().Format(time.RFC3339Nano)
	if _, err := m.Join(joinRequest{Name: "r1", URL: "http://127.0.0.1:1", SentAt: skewed}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Join(joinRequest{Name: "r2", URL: "http://127.0.0.1:2", SentAt: "garbage-timestamp"}); err != nil {
		t.Fatal(err)
	}
	// Both leases expire on the FRONT's schedule, not the senders'.
	clock = clock.Add(900 * time.Millisecond)
	if ev := m.Sweep(); len(ev) != 0 {
		t.Fatalf("skewed members evicted early: %v", ev)
	}
	clock = clock.Add(200 * time.Millisecond)
	if ev := m.Sweep(); len(ev) != 2 {
		t.Fatalf("skewed members not evicted on schedule: %v", ev)
	}
	if s := m.Stats(); s.MaxSkewSeconds < (3 * time.Hour).Seconds() {
		t.Fatalf("max skew %.0fs not recorded", s.MaxSkewSeconds)
	}
}

// TestFrontFleetJoinServeEvict is the tentpole's end-to-end happy
// path over real HTTP: a front tier starts with NO static replicas, a
// replica announces itself via the Announcer, becomes routable, serves
// proxied queries, then leaves gracefully — and the front returns to
// shedding.
func TestFrontFleetJoinServeEvict(t *testing.T) {
	_, base, _ := newPrimary(t)
	repURL, _ := liveReplica(t, base)

	f := NewFront(FrontConfig{
		Primary:       base,
		LeaseTTL:      500 * time.Millisecond,
		CheckInterval: 20 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	front := httptest.NewServer(f.Handler())
	defer front.Close()
	client := front.Client()

	// Empty fleet sheds with 503 + Retry-After.
	resp, err := client.Get(front.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("empty fleet: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	ann := NewAnnouncer(AnnouncerConfig{
		Front: front.URL,
		Self:  Replica{Name: "r1", URL: repURL},
	})
	if err := ann.AnnounceOnce(ctx); err != nil {
		t.Fatal(err)
	}
	st := ann.State()
	if !st.Joined || st.TTLSeconds != 0.5 {
		t.Fatalf("announcer state after join = %+v", st)
	}

	waitFor(t, 5*time.Second, "joined replica routable", func() bool {
		ready, _ := getJSON[struct {
			Routable int `json:"routable"`
		}](t, client, front.URL+"/readyz")
		return ready.Routable == 1
	})
	resp, err = client.Get(front.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Fleet-Replica") != "r1" {
		t.Fatalf("proxied query: status %d via %q", resp.StatusCode, resp.Header.Get("X-Fleet-Replica"))
	}

	// The member table names the joiner.
	members, code := getJSON[MembershipStats](t, client, front.URL+"/v1/fleet/members")
	if code != http.StatusOK || len(members.Members) != 1 || members.Members[0].Name != "r1" {
		t.Fatalf("member table = %+v (status %d)", members, code)
	}

	// Graceful leave evicts immediately — no TTL wait.
	if err := ann.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	if f.Members().Has("r1") {
		t.Fatal("member present after graceful leave")
	}
	waitFor(t, 5*time.Second, "post-leave shed", func() bool {
		resp, err := client.Get(front.URL + "/v1/snapshot")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
}

// TestFrontLeaseLapseEvictsWithinTTL: a member that stops renewing is
// off the ring within one lease TTL plus one sweep interval — the
// tentpole's convergence bound — while a heartbeating sibling stays.
func TestFrontLeaseLapseEvictsWithinTTL(t *testing.T) {
	_, base, _ := newPrimary(t)
	aliveURL, _ := liveReplica(t, base)
	deadURL, _ := liveReplica(t, base)

	const ttl = 300 * time.Millisecond
	f := NewFront(FrontConfig{
		Primary:       base,
		LeaseTTL:      ttl,
		CheckInterval: 20 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	front := httptest.NewServer(f.Handler())
	defer front.Close()

	alive := NewAnnouncer(AnnouncerConfig{Front: front.URL, Self: Replica{Name: "alive", URL: aliveURL}})
	go alive.Run(ctx)
	dead := NewAnnouncer(AnnouncerConfig{Front: front.URL, Self: Replica{Name: "dead", URL: deadURL}})
	if err := dead.AnnounceOnce(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "both members joined", func() bool { return f.Members().Len() == 2 })

	// "dead" never renews again; it must be gone within TTL + sweep
	// slack, and "alive" must still hold its lease well past that.
	waitFor(t, ttl+200*time.Millisecond, "lapsed member evicted", func() bool { return !f.Members().Has("dead") })
	if !f.Members().Has("alive") {
		t.Fatal("heartbeating member evicted alongside the lapsed one")
	}
	if s := f.Members().Stats(); s.Evictions != 1 {
		t.Fatalf("membership stats = %+v; want exactly 1 eviction", s)
	}
}

// TestFrontMinHealthyFloor: with MinHealthy=2 and only one routable
// member, every request sheds 503+Retry-After even though that member
// could answer — the floor trades availability for not melting a rump.
func TestFrontMinHealthyFloor(t *testing.T) {
	_, base, _ := newPrimary(t)
	repURL, _ := liveReplica(t, base)

	f := NewFront(FrontConfig{
		Replicas:      []Replica{{Name: "r1", URL: repURL}},
		Primary:       base,
		MinHealthy:    2,
		CheckInterval: 20 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	front := httptest.NewServer(f.Handler())
	defer front.Close()
	client := front.Client()

	waitFor(t, 5*time.Second, "replica probed healthy", func() bool {
		snap := f.checker.Snapshot()
		return len(snap) == 1 && snap[0].Healthy
	})
	resp, err := client.Get(front.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("below-floor fleet: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	ready, code := getJSON[struct {
		Ready bool `json:"ready"`
	}](t, client, front.URL+"/readyz")
	if code != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("readyz below floor = %v (status %d), want not ready", ready.Ready, code)
	}
}

// TestCheckerHungReplica is the per-probe-timeout regression test: one
// hung replica (accepts connections, never answers) must neither stall
// the check loop nor delay a healthy sibling's probe — the sweep
// completes within the derived per-probe timeout, not the HTTP
// client's.
func TestCheckerHungReplica(t *testing.T) {
	hungGate := &SlowGate{}
	hungGate.Hang()
	hung := httptest.NewServer(hungGate.Wrap(http.NewServeMux()))
	defer hung.Close()
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ready":true}`)
	}))
	defer healthy.Close()

	// A 60s client timeout: if probes ran under it, this test would
	// hang for a minute. The per-probe timeout derived from the 25ms
	// interval (clamped to 100ms) must govern instead.
	c := NewChecker([]Replica{
		{Name: "hung", URL: hung.URL},
		{Name: "ok", URL: healthy.URL},
	}, &http.Client{Timeout: 60 * time.Second}, 1)
	c.probeTimeout = probeTimeoutFor(25 * time.Millisecond)

	start := time.Now()
	c.CheckOnce(context.Background())
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("sweep with a hung replica took %v — per-probe timeout not applied", elapsed)
	}
	snap := c.Snapshot()
	byName := map[string]ReplicaHealth{}
	for _, h := range snap {
		byName[h.Name] = h
	}
	if byName["hung"].Healthy || byName["hung"].LastError == "" {
		t.Fatalf("hung replica = %+v; want unhealthy with an error", byName["hung"])
	}
	if !byName["ok"].Healthy {
		t.Fatalf("healthy sibling = %+v; hung peer starved its probe", byName["ok"])
	}
}

func TestProbeTimeoutDerivation(t *testing.T) {
	for _, tc := range []struct {
		interval, want time.Duration
	}{
		{25 * time.Millisecond, 100 * time.Millisecond},  // clamp up
		{250 * time.Millisecond, 500 * time.Millisecond}, // 2× interval
		{10 * time.Second, 2 * time.Second},              // clamp down
	} {
		if got := probeTimeoutFor(tc.interval); got != tc.want {
			t.Errorf("probeTimeoutFor(%v) = %v, want %v", tc.interval, got, tc.want)
		}
	}
}

// TestRingChurnBoundedMovement is the consistent-hashing contract:
// adding or removing one node of n moves at most ~2/(n+1) of the keys
// (the ideal is 1/(n+1); the factor-2 slack absorbs vnode variance),
// and the keys that do move all move to/from the churned node.
func TestRingChurnBoundedMovement(t *testing.T) {
	const keys = 20000
	for _, n := range []int{4, 8, 16} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("replica-%d", i)
		}
		before := NewRing(nodes, 0)
		after := NewRing(append(append([]string{}, nodes...), "replica-new"), 0)

		movedAdd := 0
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("licensee:%d", k)
			ob, oa := before.Seq(key)[0], after.Seq(key)[0]
			if ob != oa {
				movedAdd++
				if oa != "replica-new" {
					t.Fatalf("n=%d: key %q moved %s→%s, not to the new node", n, key, ob, oa)
				}
			}
		}
		bound := int(2.0 / float64(n+1) * keys)
		if movedAdd > bound {
			t.Errorf("n=%d: adding one node moved %d/%d keys, bound %d (~2/(n+1))", n, movedAdd, keys, bound)
		}
		if movedAdd == 0 {
			t.Errorf("n=%d: adding a node moved nothing — it owns no keyspace", n)
		}

		// Removal is the mirror image: only the removed node's keys move.
		movedRemove := 0
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("licensee:%d", k)
			oa, ob := after.Seq(key)[0], before.Seq(key)[0]
			if oa != ob {
				movedRemove++
				if oa != "replica-new" {
					t.Fatalf("n=%d: removal moved key %q that %s owned", n, key, oa)
				}
			}
		}
		if movedRemove > bound {
			t.Errorf("n=%d: removing one node moved %d/%d keys, bound %d", n, movedRemove, keys, bound)
		}
	}
}

// TestMembershipConcurrentChurnNeverRoutesRemoved hammers Join / Leave
// / Sweep from several goroutines while readers route keys, asserting
// the ring a reader loads never contains a member whose removal has
// completed — the atomic rebuild-under-lock contract. Run under -race
// in CI.
func TestMembershipConcurrentChurnNeverRoutesRemoved(t *testing.T) {
	m := NewMembership([]Replica{{Name: "anchor", URL: "http://127.0.0.1:9"}}, time.Minute, 8, nil)

	var stop atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				name := fmt.Sprintf("churn-%d-%d", w, i)
				if _, err := m.Join(joinRequest{Name: name, URL: "http://127.0.0.1:1"}); err != nil {
					t.Errorf("join %s: %v", name, err)
					return
				}
				m.Leave(name)
				// The contract under test: a ring loaded after Leave
				// returned must not route to the removed member, no
				// matter how many sibling joins/leaves race the rebuild.
				// (No sibling ever re-adds this name, so seeing it here
				// can only mean a stale ring was published.)
				for _, n2 := range m.Ring().Seq(name) {
					if n2 == name {
						t.Errorf("ring loaded after Leave(%s) returned still routes to it", name)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent readers keep the hot path (atomic ring load + walk)
	// racing the rebuilds; -race flags any unsynchronized publish.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if seq := m.Ring().Seq(fmt.Sprintf("key-%d-%d", r, i)); len(seq) == 0 {
					t.Error("ring lost its permanent member mid-churn")
					return
				}
			}
		}(r)
	}
	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if !m.Has("anchor") {
		t.Fatal("permanent member lost during churn")
	}
}

// TestPullerBackoff: consecutive failures double the sleep up to the
// cap, one success resets it, and a shipper's Retry-After hint floors
// the next sleep — all visible in the backoffs counter.
func TestPullerBackoff(t *testing.T) {
	var shed atomic.Bool
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if shed.Load() {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		http.NotFound(w, r)
	}))
	defer primary.Close()

	p, _, _ := newReplica(t, primary.URL, nil)
	p.cfg.Interval = 100 * time.Millisecond
	p.cfg.MaxBackoff = 800 * time.Millisecond

	// Success (or a clean no-op poll) keeps the base cadence.
	if d := p.nextDelay(0); d != 100*time.Millisecond {
		t.Fatalf("delay after success = %v, want the base interval", d)
	}
	if p.Status().Backoffs != 0 {
		t.Fatal("backoff counted on the success path")
	}
	// Failures double, then saturate at the cap.
	for i, want := range []time.Duration{200, 400, 800, 800, 800} {
		if d := p.nextDelay(i + 1); d != want*time.Millisecond {
			t.Fatalf("delay after %d failures = %v, want %v", i+1, d, want*time.Millisecond)
		}
	}
	if got := p.Status().Backoffs; got != 5 {
		t.Fatalf("backoffs = %d, want 5", got)
	}
	// Reset on success.
	if d := p.nextDelay(0); d != 100*time.Millisecond {
		t.Fatalf("delay after reset = %v", d)
	}

	// A shedding shipper's Retry-After floors the next delay even on
	// the first failure, then is consumed.
	shed.Store(true)
	if _, err := p.PullOnce(context.Background()); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("pull against shedding shipper = %v, want 503 error", err)
	}
	if d := p.nextDelay(1); d != 7*time.Second {
		t.Fatalf("delay after shed = %v, want the 7s Retry-After hint", d)
	}
	if d := p.nextDelay(1); d != 200*time.Millisecond {
		t.Fatalf("hint not consumed: next delay = %v", d)
	}
}
