package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"hftnetview/internal/serve"
)

// Lease-based membership, replica side. A replica announces itself to
// the front tier with POST /v1/fleet/join and keeps the resulting TTL
// lease alive with the same call on a jittered heartbeat. The lease is
// the fleet's failure detector: a replica that stops renewing — crash,
// partition, or graceful leave — is evicted from the routing ring when
// the TTL lapses, with no operator in the loop.
//
// All lease accounting happens on the FRONT's clock: the join payload
// carries the replica's own send timestamp purely as a diagnostic, and
// the front measures skew but never trusts it. A replica with a clock
// hours off (the chaos campaigns inject exactly that) renews exactly
// like a well-behaved one.

// fleetPrefix roots the membership control surface on the front tier.
const fleetPrefix = "/v1/fleet/"

// joinRequest is the announce/heartbeat body.
type joinRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Generation/Digest are the replica's live corpus identity at send
	// time — diagnostics on the front's member table; routing keeps
	// using the probed /readyz values, which cannot be spoofed stale.
	Generation int64  `json:"generation,omitempty"`
	Digest     string `json:"digest,omitempty"`
	// SentAt is the replica's wall clock at send time (RFC3339Nano).
	// The front records the skew and otherwise ignores it: leases live
	// on the front's clock alone.
	SentAt string `json:"sent_at,omitempty"`
}

// joinResponse is the granted lease: the TTL the front holds the
// member to and the heartbeat cadence it suggests (TTL/3, leaving two
// missed beats of slack before eviction).
type joinResponse struct {
	TTLMillis       int64 `json:"ttl_ms"`
	HeartbeatMillis int64 `json:"heartbeat_ms"`
	// Source is the fleet's current source role at grant time — how a
	// rejoining stale primary learns it has been fenced to replica.
	Source SourceInfo `json:"source"`
}

// leaveRequest is the graceful-leave body.
type leaveRequest struct {
	Name string `json:"name"`
}

// LeaseState is the announcer's self-report, surfaced on the replica's
// /statsz under "lease".
type LeaseState struct {
	Front  string `json:"front"`
	Joined bool   `json:"joined"`
	// TTLSeconds/HeartbeatSeconds echo the front's current grant.
	TTLSeconds       float64 `json:"ttl_seconds,omitempty"`
	HeartbeatSeconds float64 `json:"heartbeat_seconds,omitempty"`
	Renews           int64   `json:"renews"`
	Failures         int64   `json:"failures"`
	Leaves           int64   `json:"leaves"`
	LastRenew        string  `json:"last_renew,omitempty"`
	LastError        string  `json:"last_error,omitempty"`
	// IsSource reports whether the last grant named this replica as the
	// fleet's source; SourceName/SourceEpoch echo the grant's role.
	IsSource    bool   `json:"is_source,omitempty"`
	SourceName  string `json:"source_name,omitempty"`
	SourceEpoch int64  `json:"source_epoch,omitempty"`
}

// AnnouncerConfig wires one replica's membership loop.
type AnnouncerConfig struct {
	// Front is the front tier's base URL.
	Front string
	// Self is how the replica introduces itself: the member name and
	// the URL the front should route to.
	Self Replica
	// Server, when non-nil, supplies the live corpus identity for each
	// announce and gains a "lease" section on /statsz.
	Server *serve.Server
	// Interval overrides the front-suggested heartbeat cadence (0 =
	// follow the grant; before the first successful join the announcer
	// retries every RetryInterval).
	Interval time.Duration
	// RetryInterval paces announces while unjoined (default 500ms).
	RetryInterval time.Duration
	// Client issues the announces (default: 5s timeout).
	Client *http.Client
	// LeaveOnExit sends one best-effort leave when Run's context ends,
	// so a cleanly shut down replica is evicted immediately instead of
	// lingering until its lease lapses. The chaos harness leaves it
	// false: a SIGKILL-shaped kill must NOT say goodbye — detecting the
	// silent death is the lease's whole job.
	LeaveOnExit bool
	// Paused, when it reports true, skips announce ticks — the chaos
	// harness uses it to simulate a replica that silently stops
	// renewing without tearing the process down.
	Paused func() bool
	// Skew, when set, offsets the SentAt timestamp — the chaos
	// campaigns' clock-skew fault. The front must shrug it off.
	Skew func() time.Duration
}

func (c AnnouncerConfig) withDefaults() AnnouncerConfig {
	if c.RetryInterval <= 0 {
		c.RetryInterval = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	return c
}

// Announcer keeps one replica's membership lease alive. Safe for one
// Run loop plus concurrent State/Leave calls.
type Announcer struct {
	cfg AnnouncerConfig

	mu    sync.Mutex
	state LeaseState
}

// NewAnnouncer returns an announcer; if cfg.Server is set, the lease
// state is registered on that server's /statsz.
func NewAnnouncer(cfg AnnouncerConfig) *Announcer {
	a := &Announcer{cfg: cfg.withDefaults()}
	a.state.Front = a.cfg.Front
	if a.cfg.Server != nil {
		a.cfg.Server.RegisterStats("lease", func() any { return a.State() })
	}
	return a
}

// State returns a copy of the lease counters.
func (a *Announcer) State() LeaseState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// Run announces until ctx is done (then leaves, if LeaveOnExit).
func (a *Announcer) Run(ctx context.Context) {
	rng := rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), hash64(a.cfg.Self.Name)|1)) //nolint:gosec // heartbeat jitter, not security
	for {
		var d time.Duration
		if a.cfg.Paused != nil && a.cfg.Paused() {
			d = a.cfg.RetryInterval
		} else if err := a.AnnounceOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Printf("fleet: announce to %s: %v", a.cfg.Front, err)
			d = a.cfg.RetryInterval
		} else {
			d = a.heartbeatInterval()
		}
		// ±20% jitter: a restarted fleet's replicas must not renew in
		// lockstep, for the same reason the pull loop staggers.
		d += time.Duration((rng.Float64() - 0.5) * 0.4 * float64(d))
		select {
		case <-ctx.Done():
			if a.cfg.LeaveOnExit {
				leaveCtx, cancel := context.WithTimeout(context.Background(), time.Second)
				defer cancel()
				_ = a.Leave(leaveCtx)
			}
			return
		case <-time.After(d):
		}
	}
}

func (a *Announcer) heartbeatInterval() time.Duration {
	if a.cfg.Interval > 0 {
		return a.cfg.Interval
	}
	a.mu.Lock()
	hb := time.Duration(a.state.HeartbeatSeconds * float64(time.Second))
	a.mu.Unlock()
	if hb <= 0 {
		return a.cfg.RetryInterval
	}
	return hb
}

// AnnounceOnce sends one join/renew and records the granted lease.
func (a *Announcer) AnnounceOnce(ctx context.Context) error {
	body := joinRequest{
		Name:   a.cfg.Self.Name,
		URL:    a.cfg.Self.URL,
		SentAt: a.sentAt(),
	}
	if a.cfg.Server != nil {
		if gen, digest, ok := a.cfg.Server.StoreIdentity(); ok {
			body.Generation, body.Digest = gen, digest
		}
	}
	var grant joinResponse
	if err := a.post(ctx, fleetPrefix+"join", body, &grant); err != nil {
		a.mu.Lock()
		a.state.Failures++
		a.state.Joined = false
		a.state.LastError = err.Error()
		a.mu.Unlock()
		return err
	}
	a.mu.Lock()
	a.state.Joined = true
	a.state.Renews++
	a.state.TTLSeconds = float64(grant.TTLMillis) / 1e3
	a.state.HeartbeatSeconds = float64(grant.HeartbeatMillis) / 1e3
	a.state.LastRenew = time.Now().UTC().Format(time.RFC3339)
	a.state.LastError = ""
	a.state.IsSource = grant.Source.Name != "" && grant.Source.Name == a.cfg.Self.Name
	a.state.SourceName = grant.Source.Name
	a.state.SourceEpoch = grant.Source.Epoch
	a.mu.Unlock()
	return nil
}

// Leave revokes the lease immediately: the front evicts the member on
// receipt instead of waiting out the TTL.
func (a *Announcer) Leave(ctx context.Context) error {
	err := a.post(ctx, fleetPrefix+"leave", leaveRequest{Name: a.cfg.Self.Name}, nil)
	a.mu.Lock()
	a.state.Joined = false
	if err == nil {
		a.state.Leaves++
	} else {
		a.state.LastError = err.Error()
	}
	a.mu.Unlock()
	return err
}

func (a *Announcer) sentAt() string {
	now := time.Now()
	if a.cfg.Skew != nil {
		now = now.Add(a.cfg.Skew())
	}
	return now.UTC().Format(time.RFC3339Nano)
}

func (a *Announcer) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Front+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s%s: status %d: %s", a.cfg.Front, path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("POST %s%s: decoding grant: %w", a.cfg.Front, path, err)
		}
	}
	return nil
}
