package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hftnetview/internal/serve"
	"hftnetview/internal/store"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

// segGet is one observed wire fetch of a segment: which generation and
// segment, from which byte offset (0 = full GET, >0 = ranged resume).
type segGet struct {
	gen  string
	name string
	off  int64
}

// recordingTransport logs every segment GET passing through it — the
// soak's proof that verified segments are never re-fetched and resumes
// are genuinely ranged.
type recordingTransport struct {
	base http.RoundTripper

	mu   sync.Mutex
	gets []segGet
}

func (r *recordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.Contains(req.URL.Path, shipPrefix+"segment/") {
		parts := strings.Split(req.URL.Path, "/")
		g := segGet{gen: parts[len(parts)-2], name: parts[len(parts)-1]}
		if rg, ok := strings.CutPrefix(req.Header.Get("Range"), "bytes="); ok {
			v, _, _ := strings.Cut(rg, "-")
			g.off, _ = strconv.ParseInt(v, 10, 64)
		}
		r.mu.Lock()
		r.gets = append(r.gets, g)
		r.mu.Unlock()
	}
	base := r.base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

func (r *recordingTransport) snapshot() []segGet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]segGet(nil), r.gets...)
}

// soakPrimary saves db as one generation of a fresh store and ships it.
func soakPrimary(t *testing.T, db *uls.Database, source string) (*store.Store, *store.GenInfo, string) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.WithSegmentTarget(16<<10), store.WithBlockLicenses(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	gi, err := st.Save(db, source)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewShipper(st))
	t.Cleanup(srv.Close)
	return st, gi, srv.URL
}

// drainStagingAndFsck is the common teardown gate: after a drill
// converges, the replica store must hold no staging debris and pass a
// full integrity walk.
func drainStagingAndFsck(t *testing.T, st *store.Store, drill string) {
	t.Helper()
	if _, err := st.GC(3); err != nil {
		t.Fatalf("%s: gc: %v", drill, err)
	}
	if ids, _ := st.StagingIDs(); len(ids) != 0 {
		t.Errorf("%s: staging leak after drain: %v", drill, ids)
	}
	rep, err := st.Fsck()
	if err != nil {
		t.Fatalf("%s: fsck: %v", drill, err)
	}
	if !rep.OK() {
		t.Errorf("%s: fsck not clean: %+v", drill, rep)
	}
}

// TestShipSoak is E25, the torn-transfer drill: resumable delta
// replication must converge byte-identically under mid-stream link
// cuts, corruption injected into resumed ranges, kill/restart between
// segments, and a throttled link — re-downloading nothing it already
// verified and shipping zero wire bytes for segments shared between
// generations. Run under -race via `make ship-soak` (wired into
// `make ci`).
func TestShipSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	// ---- Drill 1: flaky link. Every segment download risks a seeded
	// mid-stream cut AND byte corruption (206 resumes included). The
	// puller must grind through on ranged resumes and still install the
	// exact published bytes — poisoned partials quarantined, never
	// blended.
	t.Run("flaky-link", func(t *testing.T) {
		pst, gi, primary := soakPrimary(t, corpus(t), "flaky drill")
		faulty := NewFaultyTransport(nil, synth.Profiles()[len(synth.Profiles())-1], 7)
		faulty.SetRate(0.15)
		cut := NewCutTransport(faulty, 7)
		cut.SetRate(0.6)
		p, _, rst := newReplica(t, primary, clientWith(cut))

		installed := false
		verifiedHighWater := 0
		for attempt := 0; attempt < 500 && !installed; attempt++ {
			ok, err := p.PullOnce(context.Background())
			if ok {
				installed = true
				break
			}
			if err == nil {
				t.Fatalf("attempt %d: PullOnce = (false, nil) with nothing installed", attempt)
			}
			// Progress must be monotone: a failed attempt never costs a
			// segment that already verified.
			if rep, rerr := rst.StagingReportFor(gi.ID); rerr == nil {
				if got := len(rep.Verified); got < verifiedHighWater {
					t.Fatalf("verified count regressed %d → %d after %v", verifiedHighWater, got, err)
				} else {
					verifiedHighWater = got
				}
			}
		}
		if !installed {
			t.Fatalf("no convergence in 500 attempts (cuts=%d corrupted=%d status=%+v)",
				cut.Cuts.Load(), faulty.Corrupted.Load(), p.Status())
		}

		// Byte-identical to the source: same manifest, same digests.
		pm, _, _ := pst.ExportManifest(gi.ID)
		rm, _, err := rst.ExportManifest(gi.ID)
		if err != nil || string(pm) != string(rm) {
			t.Fatalf("replica manifest differs from primary's (err %v)", err)
		}
		st := p.Status()
		if cut.Cuts.Load() == 0 || faulty.Corrupted.Load() == 0 {
			t.Fatalf("drill vacuous: cuts=%d corrupted=%d", cut.Cuts.Load(), faulty.Corrupted.Load())
		}
		if st.Resumed == 0 {
			t.Errorf("no ranged resumes under a 60%% cut rate: %+v", st)
		}
		t.Logf("flaky-link: %d attempts, %d cuts, %d corrupted, status %+v",
			st.Attempts, cut.Cuts.Load(), faulty.Corrupted.Load(), st)
		drainStagingAndFsck(t, rst, "flaky-link")
	})

	// ---- Drill 2: kill/restart. The replica dies mid-transfer (store
	// slammed shut between segments, like a SIGKILL), reboots from the
	// surviving directory, and finishes. The wire log must show each
	// segment fetched from byte zero at most once, per-segment offsets
	// never regressing, and zero fetches for anything verified before
	// the kill.
	t.Run("kill-restart", func(t *testing.T) {
		_, gi, primary := soakPrimary(t, corpus(t), "kill drill")
		dir := t.TempDir()
		rec := &recordingTransport{}
		cut := NewCutTransport(rec, 99)
		cut.SetRate(0.5)
		client := clientWith(cut)

		rst, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.New(serve.Config{})
		srv.AttachStore(rst)
		p := NewPuller(PullerConfig{Primary: primary, Store: rst, Server: srv, Client: client})

		// Phase 1: pull under cuts until some segments verified but the
		// install hasn't landed — then kill.
		phase1Installed := false
		for attempt := 0; attempt < 200; attempt++ {
			if ok, _ := p.PullOnce(context.Background()); ok {
				phase1Installed = true
				break
			}
			if rep, rerr := rst.StagingReportFor(gi.ID); rerr == nil && len(rep.Verified) >= 1 {
				break
			}
		}
		var verifiedAtKill map[string]bool
		var killMark int
		if !phase1Installed {
			rep, rerr := rst.StagingReportFor(gi.ID)
			if rerr != nil {
				t.Fatalf("no staging progress before the kill: %v", rerr)
			}
			verifiedAtKill = map[string]bool{}
			for _, name := range rep.Verified {
				verifiedAtKill[name] = true
			}
			killMark = len(rec.snapshot())
			rst.Close() // SIGKILL-shaped: no drain, staging left as-is

			// Phase 2: reboot from the same disk, clean link, finish.
			rst, err = store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			srv = serve.New(serve.Config{})
			srv.AttachStore(rst)
			p = NewPuller(PullerConfig{Primary: primary, Store: rst, Server: srv, Client: client})
			cut.SetRate(0)
			if ok, perr := p.PullOnce(context.Background()); perr != nil || !ok {
				t.Fatalf("post-restart pull = (%v, %v), want install", ok, perr)
			}
		}
		defer rst.Close()
		if id, _ := rst.LatestID(); id != gi.ID {
			t.Fatalf("replica at %d after restart, want %d", id, gi.ID)
		}

		gets := rec.snapshot()
		zeroFetches := map[string]int{}
		lastOff := map[string]int64{}
		for _, g := range gets {
			key := g.gen + "/" + g.name
			if g.off == 0 {
				zeroFetches[key]++
			}
			if g.off < lastOff[key] {
				t.Errorf("segment %s fetched at offset %d after reaching %d — resume regressed", key, g.off, lastOff[key])
			}
			lastOff[key] = g.off
		}
		for key, n := range zeroFetches {
			if n > 1 {
				t.Errorf("segment %s fetched from byte zero %d times — verified or partial progress was thrown away", key, n)
			}
		}
		var resumes int
		for _, g := range gets {
			if g.off > 0 {
				resumes++
			}
		}
		if !phase1Installed {
			if resumes == 0 {
				t.Error("no ranged fetch in the whole drill — resume leg vacuous")
			}
			for _, g := range gets[killMark:] {
				if verifiedAtKill[g.name] {
					t.Errorf("segment %s was verified before the kill but fetched again after restart", g.name)
				}
			}
			t.Logf("kill-restart: %d wire gets, %d ranged, %d verified at kill, %d cuts",
				len(gets), resumes, len(verifiedAtKill), cut.Cuts.Load())
		} else {
			t.Logf("kill-restart: converged before the kill window (%d gets, %d ranged) — kill leg skipped this seed", len(gets), resumes)
		}
		drainStagingAndFsck(t, rst, "kill-restart")
	})

	// ---- Drill 3: delta shipping. The replica holds generation N; the
	// primary publishes N+1 sharing most segment digests. The pull must
	// reuse every shared segment from local disk — zero wire bytes for
	// them — and fetch exactly the changed tail.
	t.Run("delta", func(t *testing.T) {
		all := corpus(t).All()
		prefix := uls.NewDatabase()
		if err := prefix.AddBulk(all[:len(all)*3/4], uls.BulkAddOptions{TrustValidated: true}); err != nil {
			t.Fatal(err)
		}
		pst, gi1, primary := soakPrimary(t, prefix, "delta gen one")

		rec := &recordingTransport{}
		p, _, rst := newReplica(t, primary, clientWith(rec))
		if ok, err := p.PullOnce(context.Background()); err != nil || !ok {
			t.Fatalf("bootstrap pull = (%v, %v)", ok, err)
		}

		gi2, err := pst.Save(corpus(t), "delta gen two")
		if err != nil {
			t.Fatal(err)
		}
		shas1 := map[string]bool{}
		for _, si := range gi1.Segments {
			shas1[si.SHA256] = true
		}
		shared := map[string]bool{}
		var sharedCount int
		var changedBytes int64
		for _, si := range gi2.Segments {
			if shas1[si.SHA256] {
				shared[si.Name] = true
				sharedCount++
			} else {
				changedBytes += si.Bytes
			}
		}
		if sharedCount == 0 || changedBytes == 0 {
			t.Fatalf("drill vacuous: %d shared segments, %d changed bytes", sharedCount, changedBytes)
		}

		before := p.Status()
		mark := len(rec.snapshot())
		if ok, err := p.PullOnce(context.Background()); err != nil || !ok {
			t.Fatalf("delta pull = (%v, %v)", ok, err)
		}
		after := p.Status()

		gen2 := strconv.FormatInt(gi2.ID, 10)
		for _, g := range rec.snapshot()[mark:] {
			if g.gen == gen2 && shared[g.name] {
				t.Errorf("shared segment %s crossed the wire — delta reuse failed", g.name)
			}
		}
		if got := after.ReusedSegments - before.ReusedSegments; got != int64(sharedCount) {
			t.Errorf("reused_segments += %d, want %d", got, sharedCount)
		}
		if got := after.BytesFetched - before.BytesFetched; got != changedBytes {
			t.Errorf("bytes_fetched += %d, want exactly the %d changed bytes", got, changedBytes)
		}
		if after.BytesSaved <= before.BytesSaved {
			t.Errorf("bytes_saved did not grow across a delta pull: %d → %d", before.BytesSaved, after.BytesSaved)
		}
		pm, _, _ := pst.ExportManifest(gi2.ID)
		rm, _, err := rst.ExportManifest(gi2.ID)
		if err != nil || string(pm) != string(rm) {
			t.Fatalf("delta-installed manifest differs from primary's (err %v)", err)
		}
		t.Logf("delta: %d/%d segments reused, %d bytes fetched (saved %d)",
			sharedCount, len(gi2.Segments), after.BytesFetched-before.BytesFetched,
			after.BytesSaved-before.BytesSaved)
		drainStagingAndFsck(t, rst, "delta")
	})

	// ---- Drill 4: slow link. A byte-budget below the corpus size must
	// throttle the transfer (the bucket visibly waits) and still land a
	// clean install.
	t.Run("slow-link", func(t *testing.T) {
		pst, gi, primary := soakPrimary(t, corpus(t), "slow drill")
		rst, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rst.Close() })
		srv := serve.New(serve.Config{})
		srv.AttachStore(rst)
		p := NewPuller(PullerConfig{
			Primary: primary, Store: rst, Server: srv,
			MaxBytesPerSec: gi.Bytes / 2, // burst covers half; the rest must wait
		})
		if ok, err := p.PullOnce(context.Background()); err != nil || !ok {
			t.Fatalf("throttled pull = (%v, %v)", ok, err)
		}
		st := p.Status()
		if st.ThrottleWaits == 0 {
			t.Errorf("throttled pull recorded zero waits: %+v", st)
		}
		pm, _, _ := pst.ExportManifest(gi.ID)
		rm, _, err := rst.ExportManifest(gi.ID)
		if err != nil || string(pm) != string(rm) {
			t.Fatalf("throttled install differs from primary's (err %v)", err)
		}
		t.Logf("slow-link: %d throttle waits over %d bytes", st.ThrottleWaits, st.BytesFetched)
		drainStagingAndFsck(t, rst, "slow-link")
	})
}
