package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"hftnetview/internal/store"
)

// Peer repair: the fleet side of the store's anti-entropy scrubber.
// Every member mounts the /v1/gen shipper over its own store, so a
// replica that finds a rotten segment can re-fetch exactly those bytes
// from any peer still holding a verified copy — the store supplies the
// detection and the swap, this file supplies the "from any peer whose
// manifest digest matches" fetch.

// PeerLister enumerates candidate repair peers. FrontMembers resolves
// them live from the front's member table; StaticPeers pins a fixed
// set (e.g. just the primary in a statically wired fleet).
type PeerLister func(ctx context.Context) ([]Replica, error)

// FrontMembers returns a PeerLister over the front tier's
// /v1/fleet/members table, so the repair path re-targets with
// membership exactly like the pull path does.
func FrontMembers(front string, client *http.Client) PeerLister {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return func(ctx context.Context) ([]Replica, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, front+fleetPrefix+"members", nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s%smembers: status %d", front, fleetPrefix, resp.StatusCode)
		}
		var stats MembershipStats
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&stats); err != nil {
			return nil, fmt.Errorf("decoding member table: %w", err)
		}
		peers := make([]Replica, 0, len(stats.Members))
		for _, m := range stats.Members {
			peers = append(peers, Replica{Name: m.Name, URL: m.URL})
		}
		return peers, nil
	}
}

// StaticPeers returns a PeerLister over a fixed replica set.
func StaticPeers(replicas ...Replica) PeerLister {
	return func(context.Context) ([]Replica, error) { return replicas, nil }
}

// PeerFetcherConfig wires a repair fetcher.
type PeerFetcherConfig struct {
	// Peers enumerates candidate peers each repair attempt.
	Peers PeerLister
	// Self is this replica's own base URL, excluded from candidates.
	Self string
	// Client issues the fetches (default: 10s timeout).
	Client *http.Client
}

// NewPeerFetcher returns a store.SegmentFetch that repairs one segment
// from the first peer whose manifest for the generation matches the
// local manifest's corpus digest. The digest gate is what makes repair
// safe across promotions: a peer holding a same-id generation from a
// different branch is silently skipped, never blended in. The fetched
// bytes are verified against the manifest entry's exact size and
// SHA-256 here as well as by the store, so a lying peer just means
// "try the next one".
func NewPeerFetcher(cfg PeerFetcherConfig) store.SegmentFetch {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	// get fetches one URL; check, when non-nil, sees the response
	// headers before a single body byte is read — the shipper
	// advertises X-Gen-Digest and X-Segment-SHA256, so a peer on a
	// divergent branch is rejected for free. Peers that predate the
	// headers (no value present) fall through to the body-level checks.
	get := func(ctx context.Context, url string, check func(http.Header) error) ([]byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		if check != nil {
			if err := check(resp.Header); err != nil {
				return nil, err
			}
		}
		return io.ReadAll(io.LimitReader(resp.Body, maxShipBytes))
	}
	headerGate := func(name, want string) func(http.Header) error {
		return func(h http.Header) error {
			if got := h.Get(name); got != "" && got != want {
				return fmt.Errorf("%s %s does not match wanted %s", name, got[:min(12, len(got))], want[:min(12, len(want))])
			}
			return nil
		}
	}
	return func(ctx context.Context, gen store.GenInfo, seg store.SegmentInfo) ([]byte, error) {
		peers, err := cfg.Peers(ctx)
		if err != nil {
			return nil, fmt.Errorf("listing repair peers: %w", err)
		}
		tried := 0
		for _, peer := range peers {
			if peer.URL == "" || peer.URL == cfg.Self {
				continue
			}
			tried++
			mb, err := get(ctx, fmt.Sprintf("%s%smanifest?id=%d", peer.URL, shipPrefix, gen.ID),
				headerGate("X-Gen-Digest", gen.CorpusSHA256))
			if err != nil {
				continue // peer down, divergent branch, or never had the generation
			}
			pgi, err := store.ParseManifest(mb)
			if err != nil || pgi.ID != gen.ID || pgi.CorpusSHA256 != gen.CorpusSHA256 {
				continue // different branch or corrupt copy: never blend
			}
			data, err := get(ctx, fmt.Sprintf("%s%ssegment/%d/%s", peer.URL, shipPrefix, gen.ID, seg.Name),
				headerGate("X-Segment-SHA256", seg.SHA256))
			if err != nil {
				continue
			}
			if int64(len(data)) != seg.Bytes {
				continue
			}
			sum := sha256.Sum256(data)
			if hex.EncodeToString(sum[:]) != seg.SHA256 {
				continue // rotten on the peer too, or corrupted in flight
			}
			return data, nil
		}
		return nil, fmt.Errorf("no peer holds a verified copy of generation %d %s (%d tried)",
			gen.ID, seg.Name, tried)
	}
}
