package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterminism: the same node set must produce the same ring
// and the same failover sequence regardless of input order — replica
// affinity only works if every front-tier instance agrees on it.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"r1", "r2", "r3"}, 64)
	b := NewRing([]string{"r3", "r1", "r2"}, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("licensee:L%03d", i)
		sa, sb := a.Seq(key), b.Seq(key)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("Seq(%q) differs across insertion orders: %v vs %v", key, sa, sb)
		}
		if len(sa) != 3 {
			t.Fatalf("Seq(%q) = %v, want all 3 nodes", key, sa)
		}
		seen := map[string]bool{}
		for _, n := range sa {
			if seen[n] {
				t.Fatalf("Seq(%q) repeats node %s: %v", key, n, sa)
			}
			seen[n] = true
		}
	}
}

// TestRingDistribution: with enough virtual nodes no replica owns a
// wildly outsized share of keys.
func TestRingDistribution(t *testing.T) {
	nodes := []string{"r1", "r2", "r3", "r4"}
	r := NewRing(nodes, 64)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Seq(fmt.Sprintf("key-%d", i))[0]]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys (counts %v) — ring badly unbalanced", n, share*100, counts)
		}
	}
}

// TestRingStability: removing one node must not move keys owned by the
// survivors — that is the consistent-hashing property the engine memo
// locality depends on.
func TestRingStability(t *testing.T) {
	full := NewRing([]string{"r1", "r2", "r3"}, 64)
	without := map[string]*Ring{
		"r1": NewRing([]string{"r2", "r3"}, 64),
		"r2": NewRing([]string{"r1", "r3"}, 64),
		"r3": NewRing([]string{"r1", "r2"}, 64),
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("licensee:L%03d", i)
		owner := full.Seq(key)[0]
		for dead, ring := range without {
			got := ring.Seq(key)[0]
			if dead == owner {
				// The orphaned key must land on the full ring's first
				// failover choice: the ring walk IS the failover plan.
				if want := full.Seq(key)[1]; got != want {
					t.Errorf("key %q orphaned by %s moved to %s, want next-in-ring %s", key, dead, got, want)
				}
			} else if got != owner {
				t.Errorf("key %q owned by %s moved to %s when unrelated node %s left", key, owner, got, dead)
			}
		}
	}
}

// TestRingEmpty: a ring with no nodes yields no candidates rather than
// panicking — the front tier sheds instead.
func TestRingEmpty(t *testing.T) {
	if seq := NewRing(nil, 0).Seq("anything"); seq != nil {
		t.Fatalf("empty ring Seq = %v, want nil", seq)
	}
}
