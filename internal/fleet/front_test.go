package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestCheckerTransitions: a replica is ejected only after failAfter
// consecutive bad probes and readmitted after a single good one.
func TestCheckerTransitions(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	rep := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, `{"ready":%v,"generation":{"store_generation":7,"corpus_sha256":"abc","age_seconds":1.5}}`, ready.Load())
	}))
	defer rep.Close()

	c := NewChecker([]Replica{{Name: "r1", URL: rep.URL}}, nil, 2)
	ctx := context.Background()

	if c.Snapshot()[0].Healthy {
		t.Fatal("replica healthy before any probe")
	}
	c.CheckOnce(ctx)
	h := c.Snapshot()[0]
	if !h.Healthy || h.Generation != 7 || h.Digest != "abc" || h.AgeSeconds != 1.5 {
		t.Fatalf("after good probe: %+v", h)
	}

	// One bad probe is a blip, two is an ejection.
	ready.Store(false)
	c.CheckOnce(ctx)
	if !c.Snapshot()[0].Healthy {
		t.Fatal("ejected after a single failed probe")
	}
	c.CheckOnce(ctx)
	if h := c.Snapshot()[0]; h.Healthy || h.LastError == "" {
		t.Fatalf("still healthy after %d failed probes: %+v", 2, h)
	}

	// Recovery is immediate.
	ready.Store(true)
	c.CheckOnce(ctx)
	if h := c.Snapshot()[0]; !h.Healthy || h.LastError != "" {
		t.Fatalf("not readmitted after good probe: %+v", h)
	}
}

// liveReplica pulls the primary's generation and serves it over a real
// listener, returning its base URL.
func liveReplica(t *testing.T, primary string) (string, *Puller) {
	t.Helper()
	p, srv, _ := newReplica(t, primary, nil)
	if installed, err := p.PullOnce(context.Background()); err != nil || !installed {
		t.Fatalf("replica bootstrap pull = (%v, %v)", installed, err)
	}
	rep := httptest.NewServer(srv.Handler())
	t.Cleanup(rep.Close)
	replicaServers[rep.URL] = rep
	return rep.URL, p
}

// TestFrontRoutingFailoverShed drives the front tier through its three
// regimes: affinity routing while the fleet is whole, transparent
// failover when the key's owner dies, and a jittered 503 shed when
// nobody is left.
func TestFrontRoutingFailoverShed(t *testing.T) {
	_, base, _ := newPrimary(t)
	urls := make(map[string]string)
	for _, name := range []string{"r1", "r2", "r3"} {
		urls[name], _ = liveReplica(t, base)
	}

	f := NewFront(FrontConfig{
		Replicas: []Replica{
			{Name: "r1", URL: urls["r1"]},
			{Name: "r2", URL: urls["r2"]},
			{Name: "r3", URL: urls["r3"]},
		},
		Primary:       base,
		CheckInterval: 20 * time.Millisecond,
		HedgeAfter:    2 * time.Second, // out of the way: this test wants sequential failover
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	front := httptest.NewServer(f.Handler())
	defer front.Close()
	client := front.Client()

	waitFor(t, 5*time.Second, "all replicas routable", func() bool {
		ready, _ := getJSON[struct {
			Routable int `json:"routable"`
		}](t, client, front.URL+"/readyz")
		return ready.Routable == 3
	})

	// Affinity: one licensee's queries stick to one replica.
	owner := ""
	for i := 0; i < 5; i++ {
		resp, err := client.Get(front.URL + "/v1/snapshot?licensee=New%20Line%20Networks")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("proxied snapshot = %d", resp.StatusCode)
		}
		rep := resp.Header.Get("X-Fleet-Replica")
		if owner == "" {
			owner = rep
		} else if rep != owner {
			t.Fatalf("licensee routed to %s then %s — affinity broken", owner, rep)
		}
	}
	if owner == "" {
		t.Fatal("no X-Fleet-Replica header on proxied response")
	}

	// Mutations are refused at the front door.
	resp, err := client.Post(front.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST through front = %d, want 405", resp.StatusCode)
	}

	// Kill the owner: the same query must keep answering 200 from a
	// sibling, without waiting for the health checker to notice.
	closeReplicaServer(t, urls[owner])
	resp, err = client.Get(front.URL + "/v1/snapshot?licensee=New%20Line%20Networks")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query after owner death = %d, want 200 via failover", resp.StatusCode)
	}
	if rep := resp.Header.Get("X-Fleet-Replica"); rep == owner {
		t.Fatalf("failover response still attributed to dead owner %s", rep)
	}

	// Kill everyone: the front sheds with 503 + Retry-After.
	for name, u := range urls {
		if name != owner {
			closeReplicaServer(t, u)
		}
	}
	waitFor(t, 5*time.Second, "shed regime", func() bool {
		resp, err := client.Get(front.URL + "/v1/snapshot")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != ""
	})
	if s := f.Stats(); s.Shed == 0 || s.Retried == 0 {
		t.Errorf("front stats after the drill = %+v; want shed and retried both counted", s)
	}
}

// replicaServers tracks httptest servers by URL so tests can kill a
// replica picked at runtime by the ring.
var replicaServers = map[string]*httptest.Server{}

func closeReplicaServer(t *testing.T, url string) {
	t.Helper()
	srv, ok := replicaServers[url]
	if !ok {
		t.Fatalf("no test server registered for %s", url)
	}
	srv.CloseClientConnections()
	srv.Close()
}

// TestFrontStalenessExclusion: a replica whose generation falls more
// than StalenessBound behind the primary is excluded from routing even
// though it answers /readyz, and readmitted once it catches up.
func TestFrontStalenessExclusion(t *testing.T) {
	pst, base, _ := newPrimary(t)
	repURL, puller := liveReplica(t, base)

	f := NewFront(FrontConfig{
		Replicas:       []Replica{{Name: "r1", URL: repURL}},
		Primary:        base,
		StalenessBound: 2,
		CheckInterval:  20 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	front := httptest.NewServer(f.Handler())
	defer front.Close()
	client := front.Client()

	routable := func() int {
		ready, _ := getJSON[struct {
			Routable int `json:"routable"`
		}](t, client, front.URL+"/readyz")
		return ready.Routable
	}
	waitFor(t, 5*time.Second, "replica routable", func() bool { return routable() == 1 })

	// Push the primary 3 generations ahead; the replica (not pulling)
	// exceeds the bound and must drop out of rotation.
	for i := 0; i < 3; i++ {
		if _, err := pst.Save(corpus(t), fmt.Sprintf("update %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "stale replica excluded", func() bool { return routable() == 0 })
	resp, err := client.Get(front.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query against all-stale fleet = %d, want 503", resp.StatusCode)
	}

	// The replica catches up and rejoins.
	if installed, err := puller.PullOnce(context.Background()); err != nil || !installed {
		t.Fatalf("catch-up pull = (%v, %v)", installed, err)
	}
	waitFor(t, 5*time.Second, "caught-up replica readmitted", func() bool { return routable() == 1 })
}
