package fleet

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"hftnetview/internal/store"
)

// TestShipperEndpoints: the shipping surface serves the on-disk
// artifacts byte-for-byte and rejects malformed or mutating requests.
func TestShipperEndpoints(t *testing.T) {
	st, base, _ := newPrimary(t)
	client := http.DefaultClient

	latest, code := getJSON[struct {
		ID int64 `json:"id"`
	}](t, client, base+"/v1/gen/latest")
	if code != 200 || latest.ID <= 0 {
		t.Fatalf("latest = %+v (status %d), want a committed id", latest, code)
	}

	resp, err := client.Get(base + "/v1/gen/manifest")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("manifest status %d: %s", resp.StatusCode, mb)
	}
	if got := resp.Header.Get("X-Gen-ID"); got == "" || got == "0" {
		t.Errorf("manifest X-Gen-ID = %q, want the served id", got)
	}
	want, _, err := st.ExportManifest(latest.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb, want) {
		t.Error("shipped manifest differs from on-disk bytes")
	}

	// Segments round trip byte-identically too.
	gi, err := store.ParseManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range gi.Segments {
		resp, err := client.Get(base + "/v1/gen/segment/" + strconv.FormatInt(latest.ID, 10) + "/" + seg.Name)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("segment %s status %d", seg.Name, resp.StatusCode)
		}
		disk, err := st.ReadSegmentRaw(latest.ID, seg.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, disk) {
			t.Errorf("segment %s shipped bytes differ from disk", seg.Name)
		}
	}

	for _, tc := range []struct {
		url  string
		want int
	}{
		{base + "/v1/gen/manifest?id=999", 404}, // never committed → gone
		{base + "/v1/gen/manifest?id=bogus", 400},
		{base + "/v1/gen/segment/1/..%2F..%2FMANIFEST-000001.json", 400},
		{base + "/v1/gen/segment/1/seg-9999.dat", 404},
		{base + "/v1/gen/segment/999/seg-0000.dat", 404},
		{base + "/v1/gen/unknown", 404},
	} {
		resp, err := client.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
		if tc.want == 404 && resp.Request.URL.Path != "/v1/gen/unknown" {
			if resp.Header.Get("X-Gen-Gone") == "" {
				t.Errorf("GET %s missing X-Gen-Gone on retryable 404", tc.url)
			}
		}
	}

	// Shipping is read-only.
	resp, err = client.Post(base+"/v1/gen/manifest", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST manifest = %d, want 405", resp.StatusCode)
	}
}

// TestShipperRangeAndDigests: the segment endpoint is a resumable,
// content-addressed surface — ranged GETs get exact 206 slices, every
// response advertises the digests a puller verifies against, and the
// shipper's own counters account for the served bytes.
func TestShipperRangeAndDigests(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.WithSegmentTarget(32<<10), store.WithBlockLicenses(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	gi, err := st.Save(corpus(t), "range drill")
	if err != nil {
		t.Fatal(err)
	}
	shipper := NewShipper(st)
	srv := httptest.NewServer(shipper)
	t.Cleanup(srv.Close)
	client := srv.Client()

	digest, err := st.GenDigest(gi.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Manifest advertises the corpus digest before a byte of segment
	// data moves.
	resp, err := client.Get(srv.URL + "/v1/gen/manifest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Gen-Digest"); got != digest {
		t.Fatalf("manifest X-Gen-Digest = %q, want %q", got, digest)
	}

	si := gi.Segments[0]
	segURL := srv.URL + "/v1/gen/segment/" + strconv.FormatInt(gi.ID, 10) + "/" + si.Name
	disk, err := st.ReadSegmentRaw(gi.ID, si.Name)
	if err != nil {
		t.Fatal(err)
	}

	// Full GET: digest headers + a strong ETag a resume can validate
	// against.
	resp, err = client.Get(segURL)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(full, disk) {
		t.Fatalf("full GET = %d, %d bytes; want 200 with %d disk bytes", resp.StatusCode, len(full), len(disk))
	}
	if got := resp.Header.Get("X-Segment-SHA256"); got != si.SHA256 {
		t.Fatalf("X-Segment-SHA256 = %q, want %q", got, si.SHA256)
	}
	if got := resp.Header.Get("X-Gen-Digest"); got != digest {
		t.Fatalf("segment X-Gen-Digest = %q, want %q", got, digest)
	}
	if got := resp.Header.Get("ETag"); got != `"`+si.SHA256+`"` {
		t.Fatalf("ETag = %q, want quoted segment digest", got)
	}

	// Ranged GET: a mid-stream resume asks for the tail and gets
	// exactly the tail, 206, with an honest Content-Range.
	off := si.Bytes / 2
	req, _ := http.NewRequest(http.MethodGet, segURL, nil)
	req.Header.Set("Range", "bytes="+strconv.FormatInt(off, 10)+"-")
	req.Header.Set("If-Range", `"`+si.SHA256+`"`)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tail, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("ranged GET = %d, want 206", resp.StatusCode)
	}
	if start, err := parseContentRangeStart(resp.Header.Get("Content-Range")); err != nil || start != off {
		t.Fatalf("Content-Range %q start = %d, %v; want %d", resp.Header.Get("Content-Range"), start, err, off)
	}
	if !bytes.Equal(tail, disk[off:]) {
		t.Fatalf("ranged body = %d bytes, differs from disk tail of %d", len(tail), len(disk)-int(off))
	}

	// A stale If-Range (the segment the client was mid-download of no
	// longer matches) must fall back to a full 200 — never a torn
	// splice of two different segments.
	req, _ = http.NewRequest(http.MethodGet, segURL, nil)
	req.Header.Set("Range", "bytes="+strconv.FormatInt(off, 10)+"-")
	req.Header.Set("If-Range", `"`+"0000deadbeef"+`"`)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(body, disk) {
		t.Fatalf("stale If-Range = %d with %d bytes, want full 200", resp.StatusCode, len(body))
	}

	// An unsatisfiable range is refused, not silently clamped.
	req, _ = http.NewRequest(http.MethodGet, segURL, nil)
	req.Header.Set("Range", "bytes="+strconv.FormatInt(si.Bytes+100, 10)+"-")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("past-EOF range = %d, want 416", resp.StatusCode)
	}

	// The counters own up: three segment serves, one of them ranged,
	// with body bytes accounted.
	ss := shipper.Status()
	if ss.Segments < 3 || ss.RangeServes != 1 {
		t.Errorf("ship status = %+v, want >=3 segment serves with exactly 1 range serve", ss)
	}
	wantBytes := int64(len(disk)) + (si.Bytes - off) + int64(len(disk))
	if ss.BytesServed < wantBytes {
		t.Errorf("bytes_served = %d, want at least %d", ss.BytesServed, wantBytes)
	}
	if ss.Manifests < 1 {
		t.Errorf("manifests = %d, want >=1", ss.Manifests)
	}
}
