package fleet

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"testing"

	"hftnetview/internal/store"
)

// TestShipperEndpoints: the shipping surface serves the on-disk
// artifacts byte-for-byte and rejects malformed or mutating requests.
func TestShipperEndpoints(t *testing.T) {
	st, base, _ := newPrimary(t)
	client := http.DefaultClient

	latest, code := getJSON[struct {
		ID int64 `json:"id"`
	}](t, client, base+"/v1/gen/latest")
	if code != 200 || latest.ID <= 0 {
		t.Fatalf("latest = %+v (status %d), want a committed id", latest, code)
	}

	resp, err := client.Get(base + "/v1/gen/manifest")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("manifest status %d: %s", resp.StatusCode, mb)
	}
	if got := resp.Header.Get("X-Gen-ID"); got == "" || got == "0" {
		t.Errorf("manifest X-Gen-ID = %q, want the served id", got)
	}
	want, _, err := st.ExportManifest(latest.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb, want) {
		t.Error("shipped manifest differs from on-disk bytes")
	}

	// Segments round trip byte-identically too.
	gi, err := store.ParseManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range gi.Segments {
		resp, err := client.Get(base + "/v1/gen/segment/" + strconv.FormatInt(latest.ID, 10) + "/" + seg.Name)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("segment %s status %d", seg.Name, resp.StatusCode)
		}
		disk, err := st.ReadSegmentRaw(latest.ID, seg.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, disk) {
			t.Errorf("segment %s shipped bytes differ from disk", seg.Name)
		}
	}

	for _, tc := range []struct {
		url  string
		want int
	}{
		{base + "/v1/gen/manifest?id=999", 404}, // never committed → gone
		{base + "/v1/gen/manifest?id=bogus", 400},
		{base + "/v1/gen/segment/1/..%2F..%2FMANIFEST-000001.json", 400},
		{base + "/v1/gen/segment/1/seg-9999.dat", 404},
		{base + "/v1/gen/segment/999/seg-0000.dat", 404},
		{base + "/v1/gen/unknown", 404},
	} {
		resp, err := client.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
		if tc.want == 404 && resp.Request.URL.Path != "/v1/gen/unknown" {
			if resp.Header.Get("X-Gen-Gone") == "" {
				t.Errorf("GET %s missing X-Gen-Gone on retryable 404", tc.url)
			}
		}
	}

	// Shipping is read-only.
	resp, err = client.Post(base+"/v1/gen/manifest", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST manifest = %d, want 405", resp.StatusCode)
	}
}
