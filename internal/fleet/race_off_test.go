//go:build !race

package fleet

// raceScale is 1 without the race detector; see race_on_test.go.
const raceScale = 1
