package fleet

import (
	"context"
	"math/rand/v2"
	"time"
)

// Campaign is the multi-fault chaos driver: a seeded loop that
// composes faults the individual soaks only apply in isolation.
// Each round it draws a random subset of the fault palette, injects
// them together, holds, heals them all, and gives the fleet a
// quiescent window to converge — in which OnRoundHealed runs the
// test's convergence assertions (ring membership restored, staleness
// back in bounds) before the next round begins. Everything is
// deterministic in Seed, so a failing campaign replays.
type Campaign struct {
	// Seed drives every random choice (which faults, how long).
	Seed uint64
	// Faults is the palette. Inject and Heal must be idempotent and
	// safe regardless of fleet state — a fault may find its target
	// replica already killed by a sibling fault.
	Faults []Fault
	// MinActive..MaxActive bounds the faults drawn per round
	// (defaults 1..min(3, len(Faults))).
	MinActive, MaxActive int
	// HoldMin..HoldMax bounds how long a round's faults stay injected
	// (defaults 200ms..600ms).
	HoldMin, HoldMax time.Duration
	// Settle is the quiescent window after healing, before
	// OnRoundHealed (default 0 — the hook does its own waiting).
	Settle time.Duration
	// OnRoundHealed, when set, runs after each round heals: the place
	// for convergence assertions. Returning false stops the campaign.
	OnRoundHealed func(round int, injected []string) bool
}

// Fault is one nameable failure mode with a way in and a way out.
type Fault struct {
	Name   string
	Inject func()
	Heal   func()
}

// Run executes rounds until ctx is done or OnRoundHealed stops it,
// returning the number of completed (injected AND healed) rounds.
// Faults are always healed before return — even on cancellation
// mid-hold — so a finished campaign never leaks a partition into
// whatever the test does next.
func (c *Campaign) Run(ctx context.Context) int {
	rng := rand.New(rand.NewPCG(c.Seed, c.Seed^0x9e3779b97f4a7c15|1))
	minA, maxA := c.MinActive, c.MaxActive
	if minA <= 0 {
		minA = 1
	}
	if maxA <= 0 || maxA > len(c.Faults) {
		maxA = min(3, len(c.Faults))
	}
	if maxA < minA {
		maxA = minA
	}
	holdMin, holdMax := c.HoldMin, c.HoldMax
	if holdMin <= 0 {
		holdMin = 200 * time.Millisecond
	}
	if holdMax < holdMin {
		holdMax = holdMin + 400*time.Millisecond
	}

	rounds := 0
	for ctx.Err() == nil && len(c.Faults) > 0 {
		// Draw this round's faults: a partial shuffle of the palette.
		k := minA + rng.IntN(maxA-minA+1)
		idx := rng.Perm(len(c.Faults))[:k]
		names := make([]string, 0, k)
		for _, i := range idx {
			names = append(names, c.Faults[i].Name)
			c.Faults[i].Inject()
		}

		hold := holdMin + time.Duration(rng.Int64N(int64(holdMax-holdMin)+1))
		select {
		case <-ctx.Done():
		case <-time.After(hold):
		}

		for _, i := range idx {
			c.Faults[i].Heal()
		}
		if ctx.Err() != nil {
			return rounds
		}
		rounds++

		if c.Settle > 0 {
			select {
			case <-ctx.Done():
				return rounds
			case <-time.After(c.Settle):
			}
		}
		if c.OnRoundHealed != nil && !c.OnRoundHealed(rounds, names) {
			return rounds
		}
	}
	return rounds
}
