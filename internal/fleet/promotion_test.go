package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeReadyz serves a minimal /readyz a Checker probe can read, with a
// settable generation and health.
type fakeReadyz struct {
	mu    sync.Mutex
	gen   int64
	ready bool
}

func (f *fakeReadyz) set(gen int64, ready bool) {
	f.mu.Lock()
	f.gen, f.ready = gen, ready
	f.mu.Unlock()
}

func (f *fakeReadyz) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	gen, ready := f.gen, f.ready
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, `{"ready":%v,"generation":{"store_generation":%d,"corpus_sha256":"d%d"}}`, ready, gen, gen)
}

func TestMembershipPromoteEpochMonotone(t *testing.T) {
	m := NewMembership(nil, time.Minute, 8, nil)
	join := func(name, url string) {
		t.Helper()
		if _, err := m.Join(joinRequest{Name: name, URL: url}); err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
	}
	join("a", "http://a:1")
	join("b", "http://b:1")

	if src := m.Source(); src.Name != "" || src.Epoch != 0 {
		t.Fatalf("fresh registry has source %+v, want vacant epoch 0", src)
	}
	if _, ok := m.Promote("ghost"); ok {
		t.Fatal("promoting a non-member succeeded")
	}
	src, ok := m.Promote("a")
	if !ok || src.Name != "a" || src.URL != "http://a:1" || src.Epoch != 1 {
		t.Fatalf("first promotion gave %+v ok=%v, want a@epoch1", src, ok)
	}
	// Re-promoting the holder must not burn an epoch.
	if src, ok = m.Promote("a"); ok || src.Epoch != 1 {
		t.Fatalf("re-promoting holder gave %+v ok=%v, want no-op at epoch 1", src, ok)
	}
	if src, ok = m.Promote("b"); !ok || src.Name != "b" || src.Epoch != 2 {
		t.Fatalf("handing the role over gave %+v ok=%v, want b@epoch2", src, ok)
	}

	// A graceful leave vacates the role but the epoch fence survives.
	m.Leave("b")
	if src = m.Source(); src.Name != "" || src.URL != "" || src.Epoch != 2 {
		t.Fatalf("after leave, source is %+v, want vacant at epoch 2", src)
	}
	if src, ok = m.Promote("a"); !ok || src.Epoch != 3 {
		t.Fatalf("promotion after vacancy gave %+v ok=%v, want epoch 3", src, ok)
	}

	// The join grant carries the role, so a rejoining member learns it.
	grant, err := m.Join(joinRequest{Name: "b", URL: "http://b:2"})
	if err != nil {
		t.Fatalf("rejoin b: %v", err)
	}
	if grant.Source.Name != "a" || grant.Source.Epoch != 3 {
		t.Fatalf("join grant carries source %+v, want a@epoch3", grant.Source)
	}
}

func TestMembershipSweepVacatesSource(t *testing.T) {
	m := NewMembership(nil, time.Second, 8, nil)
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }
	if _, err := m.Join(joinRequest{Name: "a", URL: "http://a:1"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Promote("a"); !ok {
		t.Fatal("promotion failed")
	}
	clock = clock.Add(2 * time.Second)
	if evicted := m.Sweep(); len(evicted) != 1 {
		t.Fatalf("sweep evicted %d, want 1", len(evicted))
	}
	if src := m.Source(); src.Name != "" || src.Epoch != 1 {
		t.Fatalf("after lapse, source is %+v, want vacant at epoch 1", src)
	}
}

// TestFrontPromotesNewestGeneration drives maybePromote directly: the
// healthy member with the newest generation wins, ties break on the
// smallest name, and a healthy incumbent is never displaced.
func TestFrontPromotesNewestGeneration(t *testing.T) {
	fakes := map[string]*fakeReadyz{}
	var replicas []Replica
	for _, name := range []string{"r1", "r2", "r3"} {
		fz := &fakeReadyz{}
		srv := httptest.NewServer(fz)
		t.Cleanup(srv.Close)
		fakes[name] = fz
		replicas = append(replicas, Replica{Name: name, URL: srv.URL})
	}
	fakes["r1"].set(3, true)
	fakes["r2"].set(5, true) // newest generation: must win
	fakes["r3"].set(5, true) // same generation, later name: must lose

	f := NewFront(FrontConfig{Replicas: replicas, Promote: true, FailAfter: 1})
	ctx := context.Background()
	f.checker.CheckOnce(ctx)
	f.maybePromote()
	if src := f.Members().Source(); src.Name != "r2" || src.Epoch != 1 {
		t.Fatalf("elected %+v, want r2@epoch1", src)
	}
	if got := f.PrimaryGeneration(); got != 5 {
		t.Fatalf("primary generation %d, want 5", got)
	}

	// A healthy incumbent holds the role even when overtaken.
	fakes["r1"].set(9, true)
	f.checker.CheckOnce(ctx)
	f.maybePromote()
	if src := f.Members().Source(); src.Name != "r2" {
		t.Fatalf("healthy incumbent displaced: %+v", src)
	}

	// The incumbent failing probes hands the role to the best survivor —
	// and the tracked primary generation re-anchors to the new source.
	fakes["r2"].set(5, false)
	f.checker.CheckOnce(ctx)
	f.maybePromote()
	if src := f.Members().Source(); src.Name != "r1" || src.Epoch != 2 {
		t.Fatalf("failover elected %+v, want r1@epoch2", src)
	}
	if got := f.PrimaryGeneration(); got != 9 {
		t.Fatalf("primary generation %d after failover, want 9", got)
	}
}

// fakeSourceFront is a bare front-shaped control surface serving only
// /v1/fleet/source with a settable SourceInfo.
type fakeSourceFront struct {
	mu  sync.Mutex
	src SourceInfo
}

func (f *fakeSourceFront) set(s SourceInfo) {
	f.mu.Lock()
	f.src = s
	f.mu.Unlock()
}

func (f *fakeSourceFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	src := f.src
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(src)
}

func TestPullerEpochFence(t *testing.T) {
	_, primaryURL, _ := newPrimary(t)
	front := &fakeSourceFront{}
	frontSrv := httptest.NewServer(front)
	t.Cleanup(frontSrv.Close)

	p, _, st := newReplica(t, "", nil)
	p.cfg.Front = frontSrv.URL
	ctx := context.Background()

	// Vacant role: nothing to pull, a clean no-op poll.
	if installed, err := p.PullOnce(ctx); err != nil || installed {
		t.Fatalf("vacant-role poll: installed=%v err=%v", installed, err)
	}

	// Role appears at epoch 2: adopt and install.
	front.set(SourceInfo{Name: "p", URL: primaryURL, Epoch: 2})
	if installed, err := p.PullOnce(ctx); err != nil || !installed {
		t.Fatalf("adoption poll: installed=%v err=%v", installed, err)
	}
	status := p.Status()
	if status.Source != primaryURL || status.SourceEpoch != 2 {
		t.Fatalf("adopted %q@%d, want %q@2", status.Source, status.SourceEpoch, primaryURL)
	}

	// A stale resolution at a lower epoch is refused; the adopted source
	// stays, so the poll still succeeds against it.
	front.set(SourceInfo{Name: "old", URL: "http://127.0.0.1:1", Epoch: 1})
	if _, err := p.PullOnce(ctx); err != nil {
		t.Fatalf("fenced poll: %v", err)
	}
	status = p.Status()
	if status.Fenced == 0 {
		t.Fatal("stale epoch was not fenced")
	}
	if status.Source != primaryURL || status.SourceEpoch != 2 {
		t.Fatalf("fence let source move to %q@%d", status.Source, status.SourceEpoch)
	}

	// The resolved source being this replica itself is a clean no-op:
	// a promoted source must not pull from anyone.
	p.cfg.Self = "http://self:1"
	front.set(SourceInfo{Name: "self", URL: "http://self:1", Epoch: 3})
	if installed, err := p.PullOnce(ctx); err != nil || installed {
		t.Fatalf("self-source poll: installed=%v err=%v", installed, err)
	}
	if got, err := st.LatestID(); err != nil || got != 1 {
		t.Fatalf("replica store at generation %d (err %v), want 1", got, err)
	}
}

// TestPullerReconcileQuarantinesDeadBranch rebuilds the failover
// scenario in miniature: a replica inherits generations the dead
// primary never shipped, the promoted source's history disagrees, and
// reconciliation must quarantine the dead branch and converge on the
// source's truth without deleting anything.
func TestPullerReconcileQuarantinesDeadBranch(t *testing.T) {
	srcStore, srcURL, _ := newPrimary(t) // source at generation 1

	p, _, st := newReplica(t, "", nil)
	// The replica holds its own generations 1 and 2 from the old
	// primary's era — same ids, different bytes (different comments make
	// different manifests, hence different corpus digests is not
	// guaranteed; use a different corpus shape via double-save).
	if _, err := st.Save(corpus(t), "old-branch gen 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(corpus(t), "old-branch gen 2 (unshipped tail)"); err != nil {
		t.Fatal(err)
	}

	front := &fakeSourceFront{}
	frontSrv := httptest.NewServer(front)
	t.Cleanup(frontSrv.Close)
	p.cfg.Front = frontSrv.URL
	front.set(SourceInfo{Name: "s", URL: srcURL, Epoch: 5})

	ctx := context.Background()
	if _, err := p.PullOnce(ctx); err != nil {
		t.Fatalf("reconcile poll: %v", err)
	}

	status := p.Status()
	if status.Diverged == 0 {
		t.Fatalf("no divergence recorded: %+v", status)
	}
	// The replica must now hold exactly the source's branch: its newest
	// id with its digest.
	srcDigest, err := srcStore.GenDigest(1)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "replica converged on source branch", func() bool {
		id, err := st.LatestID()
		if err != nil || id != 1 {
			return false
		}
		d, err := st.GenDigest(1)
		return err == nil && d == srcDigest
	})
	// Nothing was deleted: the dead branch sits in quarantine.
	rep, err := st.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store not clean after reconcile: %+v", rep)
	}
}
