package fleet

import (
	"encoding/json"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"hftnetview/internal/store"
)

// shipPrefix is the root of the generation-shipping surface.
const shipPrefix = "/v1/gen/"

// Shipper exposes a store's committed generations over HTTP:
//
//	GET /v1/gen/latest              {"id": N} — newest committed id (0 = empty)
//	GET /v1/gen/manifest[?id=N]     raw manifest bytes (newest without ?id)
//	GET /v1/gen/segment/{id}/{name} raw segment bytes (Range supported)
//
// Manifest and segment responses are byte-for-byte the on-disk
// artifacts; their integrity is carried by the format itself (manifest
// self-checksum, per-segment digests), so the transport needs no extra
// framing. Segments stream straight from disk via http.ServeContent —
// no whole-file allocation per request — which also gives ranged GETs:
// a puller resuming a torn transfer asks for exactly the missing tail.
// Every response advertises the branch and content identity up front
// (X-Gen-Digest, X-Segment-SHA256, ETag = segment SHA-256) so a client
// on a different branch can reject the transfer before downloading a
// byte, and If-Range can never splice bytes from two publications of
// the same id. A generation swept by GC between a replica reading the
// manifest and fetching a segment answers 404 with X-Gen-Gone: the
// puller's retryable signal to restart from a newer manifest.
type Shipper struct {
	st *store.Store

	manifests   atomic.Int64
	segments    atomic.Int64
	rangeServes atomic.Int64
	bytesServed atomic.Int64
}

// NewShipper exports st's generations.
func NewShipper(st *store.Store) *Shipper { return &Shipper{st: st} }

// ShipStatus counts what this member has shipped — the serving-side
// half of the fleet's transfer accounting, exported on /statsz.
type ShipStatus struct {
	// Manifests and Segments count completed responses by kind.
	Manifests int64 `json:"manifests"`
	Segments  int64 `json:"segments"`
	// RangeServes counts segment responses answered 206 — resumed
	// transfers, each one whole-file bytes the wire did not re-carry.
	RangeServes int64 `json:"range_serves"`
	// BytesServed is the total segment body bytes written to the wire.
	BytesServed int64 `json:"bytes_served"`
}

// Status snapshots the shipping counters.
func (h *Shipper) Status() ShipStatus {
	return ShipStatus{
		Manifests:   h.manifests.Load(),
		Segments:    h.segments.Load(),
		RangeServes: h.rangeServes.Load(),
		BytesServed: h.bytesServed.Load(),
	}
}

func (h *Shipper) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, shipPrefix)
	switch {
	case rest == "latest":
		h.serveLatest(w)
	case rest == "manifest":
		h.serveManifest(w, r)
	case strings.HasPrefix(rest, "segment/"):
		h.serveSegment(w, r, strings.TrimPrefix(rest, "segment/"))
	default:
		http.NotFound(w, r)
	}
}

func (h *Shipper) serveLatest(w http.ResponseWriter) {
	id, err := h.st.LatestID()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		ID int64 `json:"id"`
	}{id})
}

func (h *Shipper) serveManifest(w http.ResponseWriter, r *http.Request) {
	var id int64
	if q := r.URL.Query().Get("id"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n <= 0 {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		id = n
	}
	data, served, err := h.st.ExportManifest(id)
	if err != nil {
		h.exportError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Gen-ID", strconv.FormatInt(served, 10))
	if gi, err := store.ParseManifest(data); err == nil {
		w.Header().Set("X-Gen-Digest", gi.CorpusSHA256)
	}
	w.Write(data)
	h.manifests.Add(1)
}

func (h *Shipper) serveSegment(w http.ResponseWriter, r *http.Request, rest string) {
	gen, name, ok := strings.Cut(rest, "/")
	id, err := strconv.ParseInt(gen, 10, 64)
	if !ok || err != nil || id <= 0 || strings.Contains(name, "/") {
		http.Error(w, "bad segment reference", http.StatusBadRequest)
		return
	}
	path, si, modTime, err := h.st.SegmentHandle(id, name)
	if err != nil {
		h.exportError(w, err)
		return
	}
	digest, err := h.st.GenDigest(id)
	if err != nil {
		h.exportError(w, err)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			// The manifest resolved but the segment file is gone:
			// concurrent GC swept the generation mid-request.
			w.Header().Set("X-Gen-Gone", "1")
			http.Error(w, "generation swept mid-request", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Gen-ID", strconv.FormatInt(id, 10))
	w.Header().Set("X-Gen-Digest", digest)
	w.Header().Set("X-Segment-SHA256", si.SHA256)
	// The segment digest is the strong validator: If-Range against it
	// can never splice a resumed tail onto bytes from a different
	// publication of the same id.
	w.Header().Set("ETag", `"`+si.SHA256+`"`)
	cw := &countingWriter{ResponseWriter: w}
	http.ServeContent(cw, r, "", modTime, f)
	h.segments.Add(1)
	h.bytesServed.Add(cw.bytes)
	if cw.status == http.StatusPartialContent {
		h.rangeServes.Add(1)
	}
}

// countingWriter records the response status and body bytes written —
// the shipper's wire accounting, without buffering anything.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (c *countingWriter) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	n, err := c.ResponseWriter.Write(p)
	c.bytes += int64(n)
	return n, err
}

// exportError maps store read errors onto the wire: a GC-swept
// generation is 404 + X-Gen-Gone (retryable — pull a newer manifest),
// a malformed reference 400, anything else 500.
func (h *Shipper) exportError(w http.ResponseWriter, err error) {
	switch {
	case store.IsRetryable(err):
		w.Header().Set("X-Gen-Gone", "1")
		http.Error(w, err.Error(), http.StatusNotFound)
	case strings.Contains(err.Error(), "bad segment reference"):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
