package fleet

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"hftnetview/internal/store"
)

// shipPrefix is the root of the generation-shipping surface.
const shipPrefix = "/v1/gen/"

// Shipper exposes a store's committed generations over HTTP:
//
//	GET /v1/gen/latest              {"id": N} — newest committed id (0 = empty)
//	GET /v1/gen/manifest[?id=N]     raw manifest bytes (newest without ?id)
//	GET /v1/gen/segment/{id}/{name} raw segment bytes
//
// Manifest and segment responses are byte-for-byte the on-disk
// artifacts; their integrity is carried by the format itself (manifest
// self-checksum, per-segment digests), so the transport needs no extra
// framing. A generation swept by GC between a replica reading the
// manifest and fetching a segment answers 404 with X-Gen-Gone: the
// puller's retryable signal to restart from a newer manifest.
type Shipper struct {
	st *store.Store
}

// NewShipper exports st's generations.
func NewShipper(st *store.Store) *Shipper { return &Shipper{st: st} }

func (h *Shipper) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, shipPrefix)
	switch {
	case rest == "latest":
		h.serveLatest(w)
	case rest == "manifest":
		h.serveManifest(w, r)
	case strings.HasPrefix(rest, "segment/"):
		h.serveSegment(w, strings.TrimPrefix(rest, "segment/"))
	default:
		http.NotFound(w, r)
	}
}

func (h *Shipper) serveLatest(w http.ResponseWriter) {
	id, err := h.st.LatestID()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		ID int64 `json:"id"`
	}{id})
}

func (h *Shipper) serveManifest(w http.ResponseWriter, r *http.Request) {
	var id int64
	if q := r.URL.Query().Get("id"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n <= 0 {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		id = n
	}
	data, served, err := h.st.ExportManifest(id)
	if err != nil {
		h.exportError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Gen-ID", strconv.FormatInt(served, 10))
	w.Write(data)
}

func (h *Shipper) serveSegment(w http.ResponseWriter, rest string) {
	gen, name, ok := strings.Cut(rest, "/")
	id, err := strconv.ParseInt(gen, 10, 64)
	if !ok || err != nil || id <= 0 || strings.Contains(name, "/") {
		http.Error(w, "bad segment reference", http.StatusBadRequest)
		return
	}
	data, err := h.st.ReadSegmentRaw(id, name)
	if err != nil {
		h.exportError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// exportError maps store read errors onto the wire: a GC-swept
// generation is 404 + X-Gen-Gone (retryable — pull a newer manifest),
// a malformed reference 400, anything else 500.
func (h *Shipper) exportError(w http.ResponseWriter, err error) {
	switch {
	case store.IsRetryable(err):
		w.Header().Set("X-Gen-Gone", "1")
		http.Error(w, err.Error(), http.StatusNotFound)
	case strings.Contains(err.Error(), "bad segment reference"):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
