package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hftnetview/internal/serve"
	"hftnetview/internal/store"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

var (
	corpusOnce sync.Once
	corpusDB   *uls.Database
	corpusErr  error
)

func corpus(t testing.TB) *uls.Database {
	t.Helper()
	corpusOnce.Do(func() { corpusDB, corpusErr = synth.Generate() })
	if corpusErr != nil {
		t.Fatalf("synth.Generate: %v", corpusErr)
	}
	return corpusDB
}

// alteredCorpus is the shared corpus minus its first license. Dropping
// the head shifts every encoding block by one, so NO segment of a
// generation saved from it is digest-identical to one saved from
// corpus — tests that need the wire actually exercised (corruption
// drills) use this for re-publications, or the puller's local digest
// reuse would satisfy the pull with zero fetched bytes.
func alteredCorpus(t testing.TB) *uls.Database {
	t.Helper()
	all := corpus(t).All()
	db := uls.NewDatabase()
	if err := db.AddBulk(all[1:], uls.BulkAddOptions{TrustValidated: true}); err != nil {
		t.Fatalf("building altered corpus: %v", err)
	}
	return db
}

// newPrimary opens a store in a temp dir, saves the shared corpus as
// one generation, and serves the shipping endpoints over httptest.
// Returns the store, the shipping base URL, and the server for
// shutdown control.
func newPrimary(t testing.TB) (*store.Store, string, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.WithSegmentTarget(32<<10), store.WithBlockLicenses(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if _, err := st.Save(corpus(t), "primary seed"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewShipper(st))
	t.Cleanup(srv.Close)
	return st, srv.URL, srv
}

// newReplica wires a puller-backed replica over its own store and
// serve server. The caller drives PullOnce by hand.
func newReplica(t testing.TB, primary string, client *http.Client) (*Puller, *serve.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := serve.New(serve.Config{})
	srv.AttachStore(st)
	p := NewPuller(PullerConfig{Primary: primary, Store: st, Server: srv, Client: client})
	return p, srv, st
}

// clientWith wraps a transport in a plain client.
func clientWith(rt http.RoundTripper) *http.Client {
	return &http.Client{Transport: rt, Timeout: 30 * time.Second}
}

// getJSON GETs url and decodes the JSON body into T.
func getJSON[T any](t testing.TB, client *http.Client, url string) (T, int) {
	t.Helper()
	var v T
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return v, resp.StatusCode
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
