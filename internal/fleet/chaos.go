package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hftnetview/internal/serve"
	"hftnetview/internal/store"
	"hftnetview/internal/synth"
)

// Chaos harness: in-process stand-ins for the fleet's failure modes.
// A ChaosReplica is a full replica (store + serve server + pull loop +
// announcer + listener) whose Kill is SIGKILL-shaped — the listener
// and every open connection are slammed shut mid-flight, the pull and
// announce loops are abandoned wherever they were (no graceful leave:
// the lease must lapse), nothing is drained or closed; Restart
// warm-boots from the surviving store directory exactly like a
// respawned process. A FaultyTransport sits under the puller's HTTP
// client and corrupts segment downloads with mutations drawn from a
// synth corruption profile's weights. A Partitioner is a network
// partition at the transport layer: requests to blocked hosts fail
// without a packet sent. A SlowGate makes a replica slow or hung
// without killing it. The Campaign runner (campaign.go) composes
// these into seeded multi-fault rounds.

// ChaosReplica is one killable, restartable replica.
type ChaosReplica struct {
	Name     string
	StoreDir string // survives kills, like a real machine's disk
	Primary  string
	// PullInterval is the replica's poll cadence; ServeCfg its query
	// service envelope; Transport, when set, underlies the puller's
	// HTTP client (inject a FaultyTransport and/or Partitioner here);
	// Keep the local GC retention.
	PullInterval time.Duration
	ServeCfg     serve.Config
	Transport    http.RoundTripper
	Keep         int

	// PullFront, when set, makes the pull source dynamic: the puller
	// resolves the fleet's current source role from this front-tier URL
	// each poll (epoch-fenced) instead of pulling the static Primary.
	PullFront string

	// ScrubInterval > 0 runs a background anti-entropy scrubber over
	// the replica's store, repairing corrupt segments from fleet peers
	// (resolved via PullFront's member table when set, else the static
	// Primary). ScrubPause throttles it between segments;
	// ScrubQuarantineAfter is the consecutive-miss ladder to
	// whole-generation quarantine; RepairTransport, when set, underlies
	// the repair fetches (partitionable like everything else).
	ScrubInterval        time.Duration
	ScrubPause           time.Duration
	ScrubQuarantineAfter int
	RepairTransport      http.RoundTripper

	// Front, when set, makes the replica self-register: each Start
	// boots an announcer against this front-tier URL; Kill abandons it
	// mid-lease. AnnounceTransport underlies the announce client
	// (inject a Partitioner to cut the replica off from the front);
	// AnnounceInterval overrides the front-suggested heartbeat. The
	// paused/skew knobs live on the ChaosReplica — not the announcer —
	// so they survive kill/restart cycles.
	Front             string
	AnnounceTransport http.RoundTripper
	AnnounceInterval  time.Duration

	// Gate, when set, wraps the replica's handler — the campaign dials
	// it to make this replica slow or hung without killing it.
	Gate *SlowGate

	announcePaused atomic.Bool
	skewNanos      atomic.Int64

	mu             sync.Mutex
	addr           string
	st             *store.Store
	srv            *serve.Server
	puller         *Puller
	scrubber       *store.Scrubber
	announcer      *Announcer
	httpSrv        *http.Server
	cancelPull     context.CancelFunc
	pullDone       chan struct{}
	scrubDone      chan struct{}
	cancelAnnounce context.CancelFunc
	announceDone   chan struct{}
	running        bool
	cum            PullStatus        // accumulated across kills; a restart starts a fresh Puller
	cumScrub       store.ScrubStatus // likewise for the scrubber
}

// SetAnnouncePaused stops (true) or resumes (false) lease renewals
// without touching the process — the "replica silently stops
// heartbeating" fault. Persists across Kill/Start.
func (r *ChaosReplica) SetAnnouncePaused(paused bool) { r.announcePaused.Store(paused) }

// SetSkew offsets the announce timestamps by d — the clock-skew fault.
// The front must keep granting leases regardless. Persists across
// Kill/Start.
func (r *ChaosReplica) SetSkew(d time.Duration) { r.skewNanos.Store(int64(d)) }

// Announcer returns the live announcer (nil while killed or when no
// Front is configured).
func (r *ChaosReplica) Announcer() *Announcer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.announcer
}

// URL returns the replica's base URL ("" before the first Start).
func (r *ChaosReplica) URL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.addr == "" {
		return ""
	}
	return "http://" + r.addr
}

// Running reports whether the replica is currently serving.
func (r *ChaosReplica) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.running
}

// Server returns the live serve.Server (nil while killed) — for test
// assertions against /statsz-level state.
func (r *ChaosReplica) Server() *serve.Server {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.srv
}

// Start boots (or re-boots) the replica: open the store, warm-start
// from whatever generation survived, start the pull loop, and listen.
// The first Start picks a free port; restarts re-bind the same one so
// the front tier's replica URL stays valid, retrying briefly while the
// kernel releases the old socket.
func (r *ChaosReplica) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		return fmt.Errorf("chaos replica %s: already running", r.Name)
	}

	st, err := store.Open(r.StoreDir)
	if err != nil {
		return err
	}
	srv := serve.New(r.ServeCfg)
	srv.AttachStore(st)
	// An empty store (first boot) just serves nothing until the first
	// pull lands; any other warm-start failure is likewise survivable.
	_, _ = srv.WarmStart()

	// Bind the listener before wiring the loops: the puller's self-URL
	// fence and the scrubber's peer exclusion both need the bound addr.
	addr := r.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			st.Close()
			return fmt.Errorf("chaos replica %s: rebinding %s: %w", r.Name, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.addr = ln.Addr().String()
	self := "http://" + r.addr

	client := &http.Client{Timeout: 30 * time.Second}
	if r.Transport != nil {
		client.Transport = r.Transport
	}
	puller := NewPuller(PullerConfig{
		Primary:  r.Primary,
		Front:    r.PullFront,
		Self:     self,
		Store:    st,
		Server:   srv,
		Interval: r.PullInterval,
		Client:   client,
		Keep:     r.Keep,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		puller.Run(ctx)
	}()

	var scrubber *store.Scrubber
	var sdone chan struct{}
	if r.ScrubInterval > 0 {
		repairClient := &http.Client{Timeout: 10 * time.Second}
		if r.RepairTransport != nil {
			repairClient.Transport = r.RepairTransport
		}
		var peers PeerLister
		switch {
		case r.PullFront != "":
			peers = FrontMembers(r.PullFront, repairClient)
		case r.Front != "":
			peers = FrontMembers(r.Front, repairClient)
		default:
			peers = StaticPeers(Replica{Name: "primary", URL: r.Primary})
		}
		scrubber = store.NewScrubber(st, store.ScrubConfig{
			Interval: r.ScrubInterval,
			Pause:    r.ScrubPause,
			Fetch: NewPeerFetcher(PeerFetcherConfig{
				Peers:  peers,
				Self:   self,
				Client: repairClient,
			}),
			QuarantineAfter: r.ScrubQuarantineAfter,
		})
		srv.RegisterStats("scrub", func() any { return scrubber.Status() })
		sdone = make(chan struct{})
		go func() {
			defer close(sdone)
			scrubber.Run(ctx)
		}()
	}

	// Every replica ships: peers repair from each other, and a promoted
	// source serves pulls with no reconfiguration.
	var handler http.Handler = WithShipping(srv.Handler(), NewShipper(st))
	if r.Gate != nil {
		handler = r.Gate.Wrap(handler)
	}
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(ln)

	if r.Front != "" {
		annClient := &http.Client{Timeout: 5 * time.Second}
		if r.AnnounceTransport != nil {
			annClient.Transport = r.AnnounceTransport
		}
		ann := NewAnnouncer(AnnouncerConfig{
			Front:    r.Front,
			Self:     Replica{Name: r.Name, URL: "http://" + r.addr},
			Server:   srv,
			Interval: r.AnnounceInterval,
			// Retry on the same cadence: rejoin latency after a healed
			// partition is then bounded by one announce interval, which
			// the soak's convergence assertions depend on.
			RetryInterval: r.AnnounceInterval,
			Client:        annClient,
			// LeaveOnExit stays false: Kill is a crash, and the lease
			// lapsing unannounced is the behavior under test.
			Paused: r.announcePaused.Load,
			Skew:   func() time.Duration { return time.Duration(r.skewNanos.Load()) },
		})
		actx, acancel := context.WithCancel(context.Background())
		adone := make(chan struct{})
		go func() {
			defer close(adone)
			ann.Run(actx)
		}()
		r.announcer = ann
		r.cancelAnnounce = acancel
		r.announceDone = adone
	}

	r.st = st
	r.srv = srv
	r.puller = puller
	r.scrubber = scrubber
	r.httpSrv = httpSrv
	r.cancelPull = cancel
	r.pullDone = done
	r.scrubDone = sdone
	r.running = true
	return nil
}

// Store returns the live store (nil while killed) — for test seeding
// and on-disk fault injection against a running replica.
func (r *ChaosReplica) Store() *store.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

// CumulativeStatus sums the pull counters over the replica's whole
// life, across every kill/restart (gauges are the live loop's).
func (r *ChaosReplica) CumulativeStatus() PullStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.cum
	if r.puller != nil {
		out = addPullCounters(out, r.puller.Status())
	}
	return out
}

func addPullCounters(acc, s PullStatus) PullStatus {
	acc.Polls += s.Polls
	acc.Attempts += s.Attempts
	acc.Installs += s.Installs
	acc.Rejections += s.Rejections
	acc.Retried += s.Retried
	acc.Backoffs += s.Backoffs
	acc.SegmentsFetched += s.SegmentsFetched
	acc.BytesFetched += s.BytesFetched
	acc.Resumed += s.Resumed
	acc.ReusedSegments += s.ReusedSegments
	acc.BytesSaved += s.BytesSaved
	acc.ThrottleWaits += s.ThrottleWaits
	if s.Generation > acc.Generation {
		acc.Generation = s.Generation
	}
	if s.LastInstall > acc.LastInstall {
		acc.LastInstall = s.LastInstall
	}
	acc.LastError = s.LastError
	return acc
}

// CumulativeScrub sums the scrub counters over the replica's whole
// life, across every kill/restart.
func (r *ChaosReplica) CumulativeScrub() store.ScrubStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.cumScrub
	if r.scrubber != nil {
		out = addScrubCounters(out, r.scrubber.Status())
	}
	return out
}

func addScrubCounters(acc, s store.ScrubStatus) store.ScrubStatus {
	acc.Cycles += s.Cycles
	acc.Segments += s.Segments
	acc.Corrupt += s.Corrupt
	acc.Repaired += s.Repaired
	acc.Quarantined += s.Quarantined
	acc.Unrepaired += s.Unrepaired
	acc.GenerationsQuarantined += s.GenerationsQuarantined
	acc.LastError = s.LastError
	if s.LastRepair != "" {
		acc.LastRepair = s.LastRepair
	}
	return acc
}

// Kill is the SIGKILL analogue: listener and connections slam shut
// (in-flight responses are cut mid-byte), the pull loop's context is
// cancelled and whatever install was mid-verify is abandoned (its temp
// directory is swept by the next Start, like crash debris), and the
// store is NOT cleanly closed. Kill waits only for the pull goroutine
// to notice the cancel, so a Restart never races the old loop's file
// writes.
func (r *ChaosReplica) Kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.running {
		return
	}
	r.cancelPull()
	if r.cancelAnnounce != nil {
		r.cancelAnnounce()
	}
	r.httpSrv.Close()
	select {
	case <-r.pullDone:
	case <-time.After(5 * time.Second):
	}
	if r.scrubDone != nil {
		select {
		case <-r.scrubDone:
		case <-time.After(5 * time.Second):
		}
	}
	if r.announceDone != nil {
		select {
		case <-r.announceDone:
		case <-time.After(5 * time.Second):
		}
	}
	r.cum = addPullCounters(r.cum, r.puller.Status())
	if r.scrubber != nil {
		r.cumScrub = addScrubCounters(r.cumScrub, r.scrubber.Status())
	}
	r.st = nil
	r.srv = nil
	r.puller = nil
	r.scrubber = nil
	r.announcer = nil
	r.httpSrv = nil
	r.cancelAnnounce = nil
	r.announceDone = nil
	r.scrubDone = nil
	r.running = false
}

// FaultyTransport corrupts segment downloads passing through it:
// with probability Rate (atomically adjustable mid-soak), the response
// body of a /v1/gen/segment/ GET is mutated — the mutation kind drawn
// from the synth corruption profile's weights, reusing the calibrated
// recipes the ingestion salvage tests are built on. GarbleW flips
// bits, TruncateW cuts the tail, DuplicateW appends a re-read chunk,
// ReorderW swaps two chunks, ShredW deletes an interior chunk. Every
// mutation must be caught by the manifest's size/SHA-256 checks —
// Corrupted counts injections, so tests can assert rejections match.
type FaultyTransport struct {
	Base    http.RoundTripper
	Profile synth.Profile
	Seed    uint64
	// CorruptManifests extends injection to manifest downloads (off by
	// default: segment corruption is the common partial-transfer mode).
	CorruptManifests bool

	rate      atomic.Uint64 // current rate in fixed-point parts-per-1e9
	Corrupted atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultyTransport wraps base (nil means http.DefaultTransport).
func NewFaultyTransport(base http.RoundTripper, profile synth.Profile, seed uint64) *FaultyTransport {
	t := &FaultyTransport{Base: base, Profile: profile, Seed: seed}
	t.SetRate(profile.Rate)
	t.rng = rand.New(rand.NewPCG(seed, hash64(profile.Name)|1))
	return t
}

// SetRate adjusts the corruption probability (0 disables injection).
func (t *FaultyTransport) SetRate(rate float64) {
	t.rate.Store(floatBits(rate))
}

func floatBits(f float64) uint64 { return uint64(int64(f * 1e9)) }

func (t *FaultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	target := strings.Contains(req.URL.Path, shipPrefix+"segment/") ||
		(t.CorruptManifests && strings.Contains(req.URL.Path, shipPrefix+"manifest"))
	// 206 bodies are corrupted too: a resumed range is exactly where a
	// flaky link keeps injecting damage, and the puller's whole-file
	// re-verification must catch a poisoned tail.
	if err != nil || !target ||
		(resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent) {
		return resp, err
	}
	rate := float64(t.rate.Load()) / 1e9
	t.mu.Lock()
	hit := rate > 0 && t.rng.Float64() < rate
	var seed uint64
	var kind int
	if hit {
		seed = t.rng.Uint64()
		kind = t.pickKind()
	}
	t.mu.Unlock()
	if !hit {
		return resp, nil
	}

	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShipBytes))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	body = corruptBytes(body, kind, seed)
	t.Corrupted.Add(1)
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header = resp.Header.Clone()
	resp.Header.Del("Content-Length")
	return resp, nil
}

// errLinkCut is what a severed connection surfaces to a body reader.
var errLinkCut = fmt.Errorf("fleet: connection cut mid-stream (injected)")

// CutTransport severs segment downloads mid-stream: with probability
// Rate, a /v1/gen/segment/ response body delivers a seeded fraction of
// its bytes and then fails with a transport error — exactly the shape
// a dropped TCP connection presents to a reader, as opposed to
// FaultyTransport's complete-but-wrong bodies. The resumable puller
// must keep the delivered prefix staged and continue it with a ranged
// GET; Cuts counts injections so soaks can assert the drill actually
// fired. 206 resumption responses are cut too — a flaky link does not
// spare retries.
type CutTransport struct {
	Base http.RoundTripper
	Seed uint64

	rate atomic.Uint64 // fixed-point parts-per-1e9, like FaultyTransport
	Cuts atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewCutTransport wraps base (nil means http.DefaultTransport).
func NewCutTransport(base http.RoundTripper, seed uint64) *CutTransport {
	t := &CutTransport{Base: base, Seed: seed}
	t.rng = rand.New(rand.NewPCG(seed, 0xC11))
	return t
}

// SetRate adjusts the cut probability (0 disables injection).
func (t *CutTransport) SetRate(rate float64) { t.rate.Store(floatBits(rate)) }

func (t *CutTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !strings.Contains(req.URL.Path, shipPrefix+"segment/") ||
		(resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent) {
		return resp, err
	}
	rate := float64(t.rate.Load()) / 1e9
	t.mu.Lock()
	hit := rate > 0 && t.rng.Float64() < rate
	var frac float64
	if hit {
		frac = t.rng.Float64()
	}
	t.mu.Unlock()
	if !hit {
		return resp, nil
	}
	length := resp.ContentLength
	if length <= 0 {
		length = 64 << 10
	}
	t.Cuts.Add(1)
	resp.Body = &cutBody{rc: resp.Body, remaining: int64(frac * float64(length))}
	return resp, nil
}

// cutBody delivers its byte budget, then fails like a severed link.
type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, errLinkCut
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }

// Partitioner is a network partition at the RoundTripper layer:
// requests to blocked hosts fail immediately with a transport error —
// no packet sent, exactly the shape a severed link presents to an HTTP
// client. One Partitioner per directed edge (front→replica,
// replica→primary, replica→front); composing over a FaultyTransport
// (Base) stacks partition on top of corruption.
type Partitioner struct {
	Base http.RoundTripper

	mu      sync.Mutex
	blocked map[string]bool

	Blocked atomic.Int64 // requests refused, for test accounting
}

// NewPartitioner wraps base (nil means http.DefaultTransport).
func NewPartitioner(base http.RoundTripper) *Partitioner {
	return &Partitioner{Base: base, blocked: make(map[string]bool)}
}

// Block severs the link to each URL's host until Unblock/Heal.
func (p *Partitioner) Block(urls ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, u := range urls {
		if h := hostOf(u); h != "" {
			p.blocked[h] = true
		}
	}
}

// Unblock restores the link to each URL's host.
func (p *Partitioner) Unblock(urls ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, u := range urls {
		delete(p.blocked, hostOf(u))
	}
}

// Heal restores every link.
func (p *Partitioner) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	clear(p.blocked)
}

func (p *Partitioner) isBlocked(host string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[host]
}

func (p *Partitioner) RoundTrip(req *http.Request) (*http.Response, error) {
	if p.isBlocked(req.URL.Host) {
		p.Blocked.Add(1)
		return nil, fmt.Errorf("chaos: partitioned from %s", req.URL.Host)
	}
	base := p.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// hostOf extracts host:port from a URL or returns the input when it
// already is one ("127.0.0.1:8080" parses with an empty url.Host).
func hostOf(u string) string {
	if parsed, err := url.Parse(u); err == nil && parsed.Host != "" {
		return parsed.Host
	}
	return u
}

// SlowGate makes a handler slow or hung without killing the process:
// the slow-replica fault. Delay > 0 stalls every request by that much
// before serving; Hang blocks requests until the client gives up (the
// hung-replica fault — the caller's timeout, not this gate, ends the
// wait). Zero value is a transparent gate.
type SlowGate struct {
	delayNanos atomic.Int64 // -1 = hang
}

// SetDelay stalls each gated request by d (0 restores pass-through).
func (g *SlowGate) SetDelay(d time.Duration) { g.delayNanos.Store(int64(d)) }

// Hang blocks every gated request until its client disconnects.
func (g *SlowGate) Hang() { g.delayNanos.Store(-1) }

// Clear restores pass-through.
func (g *SlowGate) Clear() { g.delayNanos.Store(0) }

// Wrap gates h.
func (g *SlowGate) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch d := g.delayNanos.Load(); {
		case d < 0:
			<-r.Context().Done() // hung: never answer, let the probe/request deadline fire
			return
		case d > 0:
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}

// Mutation kinds, selected by the profile's weights.
const (
	mutGarble = iota
	mutTruncate
	mutDuplicate
	mutReorder
	mutShred
)

func (t *FaultyTransport) pickKind() int {
	p := t.Profile
	total := p.GarbleW + p.TruncateW + p.DuplicateW + p.ReorderW + p.ShredW
	if total == 0 {
		return mutGarble
	}
	r := t.rng.IntN(total)
	switch {
	case r < p.GarbleW:
		return mutGarble
	case r < p.GarbleW+p.TruncateW:
		return mutTruncate
	case r < p.GarbleW+p.TruncateW+p.DuplicateW:
		return mutDuplicate
	case r < p.GarbleW+p.TruncateW+p.DuplicateW+p.ReorderW:
		return mutReorder
	default:
		return mutShred
	}
}

// corruptBytes applies one byte-level mutation. Deterministic in
// (data, kind, seed). Always returns a buffer that differs from data
// when len(data) > 0.
func corruptBytes(data []byte, kind int, seed uint64) []byte {
	if len(data) == 0 {
		return []byte{0xFF}
	}
	rng := rand.New(rand.NewPCG(seed, uint64(kind)|1))
	chunk := len(data) / 4
	if chunk < 1 {
		chunk = 1
	}
	switch kind {
	case mutTruncate:
		return data[:rng.IntN(len(data))]
	case mutDuplicate:
		at := rng.IntN(len(data))
		n := min(chunk, len(data)-at)
		return append(append([]byte{}, data...), data[at:at+n]...)
	case mutReorder:
		if len(data) >= 2*chunk {
			out := append([]byte{}, data...)
			a := rng.IntN(len(out) - 2*chunk + 1)
			b := a + chunk
			for i := 0; i < chunk; i++ {
				out[a+i], out[b+i] = out[b+i], out[a+i]
			}
			if !bytes.Equal(out, data) {
				return out
			}
		}
		return synth.FlipBits(data, seed, 3)
	case mutShred:
		at := rng.IntN(len(data))
		n := min(chunk, len(data)-at)
		return append(append([]byte{}, data[:at]...), data[at+n:]...)
	default: // mutGarble
		return synth.FlipBits(data, seed, 1+rng.IntN(8))
	}
}
