//go:build race

package fleet

// raceScale stretches the soak's cadences under the race detector,
// whose instrumentation slows deep verification and reconstruction
// roughly fivefold — without it the publisher outruns the fleet and
// the whole soak degenerates into staleness shedding.
const raceScale = 4
