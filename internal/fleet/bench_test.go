package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hftnetview/internal/serve"
	"hftnetview/internal/store"
	"hftnetview/internal/uls"
)

// countingTransport totals every response-body byte that crosses it —
// the benchmarks' bytes-on-wire meter.
type countingTransport struct {
	base  http.RoundTripper
	bytes atomic.Int64
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := c.base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	resp.Body = &countingBody{rc: resp.Body, n: &c.bytes}
	return resp, nil
}

type countingBody struct {
	rc io.ReadCloser
	n  *atomic.Int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	b.n.Add(int64(n))
	return n, err
}

func (b *countingBody) Close() error { return b.rc.Close() }

// benchPrimary: a primary at generation 1 (three-quarters of the
// corpus) and generation 2 (the full corpus) — the delta between them
// is the changed tail.
func benchPrimary(b *testing.B) (*store.Store, string) {
	b.Helper()
	all := corpus(b).All()
	prefix := uls.NewDatabase()
	if err := prefix.AddBulk(all[:len(all)*3/4], uls.BulkAddOptions{TrustValidated: true}); err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(b.TempDir(), store.WithSegmentTarget(16<<10), store.WithBlockLicenses(8))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	if _, err := st.Save(prefix, "bench gen one"); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Save(corpus(b), "bench gen two"); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(NewShipper(st))
	b.Cleanup(srv.Close)
	return st, srv.URL
}

// BenchmarkShipFullPull: a cold replica replicates generation 2 from
// scratch — every segment crosses the wire. The wireB/op metric is the
// baseline delta shipping is measured against.
func BenchmarkShipFullPull(b *testing.B) {
	_, primary := benchPrimary(b)
	meter := &countingTransport{}
	client := clientWith(meter)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rst, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		srv := serve.New(serve.Config{})
		srv.AttachStore(rst)
		p := NewPuller(PullerConfig{Primary: primary, Store: rst, Server: srv, Client: client})
		b.StartTimer()
		if ok, err := p.PullOnce(context.Background()); err != nil || !ok {
			b.Fatalf("full pull = (%v, %v)", ok, err)
		}
		b.StopTimer()
		rst.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(meter.bytes.Load())/float64(b.N), "wireB/op")
}

// BenchmarkShipDeltaPull: the replica already holds generation 1, so
// pulling generation 2 reuses every shared segment by digest and
// fetches only the changed tail — wireB/op here over the full-pull
// baseline is the delta-shipping saving on the wire.
func BenchmarkShipDeltaPull(b *testing.B) {
	pst, primary := benchPrimary(b)
	mb1, _, err := pst.ExportManifest(1)
	if err != nil {
		b.Fatal(err)
	}
	localFetch := func(name string) ([]byte, error) { return pst.ReadSegmentRaw(1, name) }
	meter := &countingTransport{}
	client := clientWith(meter)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rst, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		// Seed generation 1 off-wire: the replica's starting state.
		if _, _, err := rst.Install(mb1, localFetch); err != nil {
			b.Fatal(err)
		}
		srv := serve.New(serve.Config{})
		srv.AttachStore(rst)
		p := NewPuller(PullerConfig{Primary: primary, Store: rst, Server: srv, Client: client})
		b.StartTimer()
		if ok, err := p.PullOnce(context.Background()); err != nil || !ok {
			b.Fatalf("delta pull = (%v, %v)", ok, err)
		}
		b.StopTimer()
		rst.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(meter.bytes.Load())/float64(b.N), "wireB/op")
}
