package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent hash ring over replica names. Each node is
// placed at vnodes pseudo-random points; a key routes to the first
// node clockwise of its hash. The property the fleet needs is memo
// locality under churn: a licensee's queries keep landing on the same
// replica (whose engine has that licensee's snapshots memoized), and
// when a replica dies only the keys it owned move — the survivors'
// hot shards stay hot.
type Ring struct {
	hashes []uint64
	owner  map[uint64]string
	nodes  []string
}

// NewRing builds a ring over nodes with the given virtual-node count
// per node (<=0 means 64). Node order does not matter; the same node
// set always yields the same ring.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{owner: make(map[uint64]string, len(nodes)*vnodes)}
	r.nodes = append(r.nodes, nodes...)
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			h := hash64(fmt.Sprintf("%s#%d", n, v))
			// On the (astronomically unlikely) collision, first
			// sorted node wins deterministically.
			if _, taken := r.owner[h]; !taken {
				r.owner[h] = n
				r.hashes = append(r.hashes, h)
			}
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	return r
}

// Len returns the number of distinct nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Seq returns every node in ring order starting at key's position: the
// first element is the key's owner, the rest are the failover order.
// Deterministic for a given (ring, key).
func (r *Ring) Seq(key string) []string {
	if len(r.hashes) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= h })
	seq := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for k := 0; k < len(r.hashes) && len(seq) < len(r.nodes); k++ {
		n := r.owner[r.hashes[(i+k)%len(r.hashes)]]
		if !seen[n] {
			seen[n] = true
			seq = append(seq, n)
		}
	}
	return seq
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV of short, similar strings differs mostly in the low bits, so
	// raw sums cluster on the ring; a splitmix64 finalizer spreads them.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
