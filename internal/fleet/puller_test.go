package fleet

import (
	"context"
	"net/http/httptest"
	"testing"

	"hftnetview/internal/synth"
)

// statszBody is the slice of the replica /statsz payload these tests
// read: the generation identity plus the puller's self-report.
type statszBody struct {
	Generation *struct {
		StoreGeneration int64  `json:"store_generation"`
		CorpusSHA256    string `json:"corpus_sha256"`
	} `json:"generation"`
	Extra struct {
		Pull PullStatus `json:"pull"`
	} `json:"extra"`
}

// TestPullerInstallsAndServes: a fresh replica pulls the primary's
// generation, verifies it, goes live with it, and answers queries
// stamped with the same identity the primary persisted.
func TestPullerInstallsAndServes(t *testing.T) {
	pst, base, _ := newPrimary(t)
	p, srv, rst := newReplica(t, base, nil)

	installed, err := p.PullOnce(context.Background())
	if err != nil || !installed {
		t.Fatalf("first PullOnce = (%v, %v), want a fresh install", installed, err)
	}

	// Replica store now holds the same generation, byte-comparable.
	pid, _ := pst.LatestID()
	rid, _ := rst.LatestID()
	if pid != rid {
		t.Fatalf("replica at generation %d, primary at %d", rid, pid)
	}
	pm, _, err := pst.ExportManifest(pid)
	if err != nil {
		t.Fatal(err)
	}
	rm, _, err := rst.ExportManifest(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(pm) != string(rm) {
		t.Error("replica manifest differs from primary's")
	}

	// The serve layer went live with it: /statsz identity matches and
	// queries answer with the generation headers.
	rep := httptest.NewServer(srv.Handler())
	defer rep.Close()
	stats, code := getJSON[statszBody](t, rep.Client(), rep.URL+"/statsz")
	if code != 200 || stats.Generation == nil || stats.Generation.StoreGeneration != pid {
		t.Fatalf("/statsz generation = %+v (status %d), want store generation %d", stats.Generation, code, pid)
	}
	if stats.Extra.Pull.Installs != 1 || stats.Extra.Pull.Generation != pid {
		t.Errorf("/statsz pull = %+v, want 1 install at generation %d", stats.Extra.Pull, pid)
	}
	resp, err := rep.Client().Get(rep.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/snapshot on replica = %d", resp.StatusCode)
	}

	// A second poll is a no-op: already up to date.
	installed, err = p.PullOnce(context.Background())
	if err != nil || installed {
		t.Fatalf("second PullOnce = (%v, %v), want clean no-op", installed, err)
	}
	if st := p.Status(); st.Polls != 2 || st.Attempts != 1 || st.Installs != 1 {
		t.Errorf("status after two polls = %+v", st)
	}
}

// TestPullerRejectsCorruptShipment is the replica-side verification
// rejection drill: every corruption profile's byte-level analogue is
// injected into segment downloads at rate 1, and the replica must (a)
// refuse every poisoned install, (b) keep serving its previous
// generation untouched, and (c) report the rejections on /statsz.
// Clearing the fault then lets the same replica install the same
// generation cleanly — rejection is quarantine, not a death spiral.
func TestPullerRejectsCorruptShipment(t *testing.T) {
	pst, base, _ := newPrimary(t)

	// Replica first syncs a clean generation — the fallback corpus.
	faulty := NewFaultyTransport(nil, synth.Profile{Name: "clean"}, 1)
	client := clientWith(faulty)
	p, srv, rst := newReplica(t, base, client)
	if installed, err := p.PullOnce(context.Background()); err != nil || !installed {
		t.Fatalf("clean bootstrap pull = (%v, %v)", installed, err)
	}
	goodGen, _ := rst.LatestID()

	// Primary publishes a new generation the replica shares no segment
	// digests with (local reuse must not bypass the hostile wire).
	if _, err := pst.Save(alteredCorpus(t), "update under fire"); err != nil {
		t.Fatal(err)
	}
	for _, profile := range synth.Profiles() {
		faulty.Profile = profile
		faulty.SetRate(1)
		before := faulty.Corrupted.Load()
		installed, err := p.PullOnce(context.Background())
		if installed || err == nil {
			t.Fatalf("profile %s: poisoned pull = (%v, %v), want rejection", profile.Name, installed, err)
		}
		if faulty.Corrupted.Load() == before {
			t.Fatalf("profile %s: transport injected nothing — test is vacuous", profile.Name)
		}
		if got, _ := rst.LatestID(); got != goodGen {
			t.Fatalf("profile %s: replica store at %d after rejection, want untouched %d", profile.Name, got, goodGen)
		}
	}

	// The previous generation kept serving, and /statsz owns up to
	// every rejection.
	rep := httptest.NewServer(srv.Handler())
	defer rep.Close()
	stats, _ := getJSON[statszBody](t, rep.Client(), rep.URL+"/statsz")
	if stats.Generation == nil || stats.Generation.StoreGeneration != goodGen {
		t.Fatalf("replica serving %+v after rejections, want generation %d", stats.Generation, goodGen)
	}
	wantRejections := int64(len(synth.Profiles()))
	if stats.Extra.Pull.Rejections != wantRejections {
		t.Errorf("/statsz pull.rejections = %d, want %d", stats.Extra.Pull.Rejections, wantRejections)
	}
	if stats.Extra.Pull.LastError == "" {
		t.Error("/statsz pull.last_error empty after a rejection")
	}

	// Fault lifted: the next poll installs the update cleanly.
	faulty.SetRate(0)
	if installed, err := p.PullOnce(context.Background()); err != nil || !installed {
		t.Fatalf("post-fault pull = (%v, %v), want clean install", installed, err)
	}
	newGen, _ := pst.LatestID()
	if got, _ := rst.LatestID(); got != newGen {
		t.Fatalf("replica at %d after recovery, want %d", newGen, got)
	}
	stats, _ = getJSON[statszBody](t, rep.Client(), rep.URL+"/statsz")
	if stats.Extra.Pull.LastError != "" {
		t.Errorf("pull.last_error = %q after clean install, want cleared", stats.Extra.Pull.LastError)
	}
}

// TestPullerCorruptManifest: a garbled manifest is rejected before any
// segment is fetched.
func TestPullerCorruptManifest(t *testing.T) {
	_, base, _ := newPrimary(t)
	faulty := NewFaultyTransport(nil, synth.Profiles()[0], 99)
	faulty.CorruptManifests = true
	faulty.SetRate(1)
	p, _, rst := newReplica(t, base, clientWith(faulty))
	installed, err := p.PullOnce(context.Background())
	if installed || err == nil {
		t.Fatalf("pull with corrupt manifest = (%v, %v), want rejection", installed, err)
	}
	if got, _ := rst.LatestID(); got != 0 {
		t.Fatalf("replica committed generation %d from a corrupt manifest", got)
	}
	if st := p.Status(); st.Rejections != 1 {
		t.Errorf("rejections = %d, want 1", st.Rejections)
	}
}

// TestCorruptBytesAlwaysMutates: every mutation kind must actually
// change the buffer, or the fault injector silently tests nothing.
func TestCorruptBytesAlwaysMutates(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	for kind := mutGarble; kind <= mutShred; kind++ {
		for seed := uint64(1); seed < 50; seed++ {
			out := corruptBytes(data, kind, seed)
			if string(out) == string(data) {
				t.Fatalf("kind %d seed %d: corruptBytes returned input unchanged", kind, seed)
			}
		}
	}
}
