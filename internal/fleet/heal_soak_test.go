package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hftnetview/internal/serve"
	"hftnetview/internal/store"
	"hftnetview/internal/synth"
)

// TestHealSoak is E24, the self-healing data-plane drill: a fleet with
// NO external primary at all. The source of truth is a role, not a
// process — the front elects one member to publish, every member ships
// its generations to its peers, and a background scrubber on every
// member repairs bit rot in place from whichever peer still holds a
// verified copy. A seeded campaign composes the fatal faults on top of
// E23's palette: the source is killed PERMANENTLY (never restarted),
// bytes rot on live replicas' disks, partitions sever repair paths —
// all under saturating audited load.
//
// Invariants:
//
//   - promotion: within one lease TTL of the source dying, a healthy
//     member holding the newest generation is promoted under a higher
//     epoch, and publishing resumes;
//   - anti-entropy: every injected bit-flip is repaired in place —
//     no replica is restarted to heal, and every surviving store ends
//     the soak Fsck-clean;
//   - fencing: epochs observed at the front only ever increase, and a
//     returning dead source rejoins as a plain replica — the role and
//     epoch it finds are someone else's, and its unshipped tail is
//     reconciled away rather than served;
//   - the client-visible error surface stays exactly
//     {200, 503+Retry-After}, with zero wrong-generation or
//     wrong-digest responses.
//
// Run under -race via `make heal-soak` (wired into `make ci`).
func TestHealSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		soakFor        = 5 * time.Second * raceScale
		replicaCount   = 4
		clients        = 4
		stalenessBound = 3
		publishEvery   = 300 * time.Millisecond * raceScale
		pullEvery      = 60 * time.Millisecond
		checkEvery     = 25 * time.Millisecond
		leaseTTL       = 300 * time.Millisecond * raceScale
		announceEvery  = 60 * time.Millisecond
		scrubEvery     = 75 * time.Millisecond * raceScale
		holdMin        = 250 * time.Millisecond * raceScale
		holdMax        = 600 * time.Millisecond * raceScale
		// promoteBudget is the issue's bound: one lease TTL from source
		// death to a new source elected, plus probe-cadence slack (the
		// health-fail path usually beats the lease lapse).
		promoteBudget = leaseTTL + 40*checkEvery
	)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// published maps generation id → the set of corpus digests ever
	// published under that id. A SET, not a single digest: after a
	// promotion the new source's branch legitimately reuses ids the dead
	// source's unshipped tail also used — both are real published state,
	// and a 200 carrying either digest is correct.
	var pubMu sync.Mutex
	published := make(map[int64]map[string]bool)
	var latestGen atomic.Int64
	record := func(gi *store.GenInfo) {
		pubMu.Lock()
		if published[gi.ID] == nil {
			published[gi.ID] = make(map[string]bool)
		}
		published[gi.ID][gi.CorpusSHA256] = true
		pubMu.Unlock()
		for {
			cur := latestGen.Load()
			if gi.ID <= cur || latestGen.CompareAndSwap(cur, gi.ID) {
				break
			}
		}
	}
	publishedDigest := func(id int64, digest string) bool {
		pubMu.Lock()
		defer pubMu.Unlock()
		return published[id][digest]
	}

	// Front tier: promotion on, zero static members, no Primary URL —
	// the fleet's newest generation is whatever the elected source
	// probes as.
	frontPart := NewPartitioner(nil)
	f := NewFront(FrontConfig{
		Promote:        true,
		StalenessBound: stalenessBound,
		LeaseTTL:       leaseTTL,
		MinHealthy:     1,
		HedgeAfter:     50 * time.Millisecond,
		RequestTimeout: 3 * time.Second,
		RetryAfter:     100 * time.Millisecond,
		CheckInterval:  checkEvery,
		Client:         &http.Client{Timeout: 2 * time.Second, Transport: frontPart},
	})
	go f.Run(ctx)
	front := httptest.NewServer(f.Handler())
	defer front.Close()

	// Replicas: every one ships, scrubs, pulls from the front-resolved
	// source, and self-registers. m1's store is seeded with generation 1
	// before boot, so the first election deterministically picks it.
	baseDir := t.TempDir()
	mixed := synth.Profiles()[len(synth.Profiles())-1]
	replicas := make([]*ChaosReplica, replicaCount)
	wires := make([]*FaultyTransport, replicaCount)
	pullParts := make([]*Partitioner, replicaCount)
	annParts := make([]*Partitioner, replicaCount)
	for i := range replicas {
		wires[i] = NewFaultyTransport(nil, mixed, uint64(2400+i))
		wires[i].SetRate(0.04) // constant background wire corruption
		pullParts[i] = NewPartitioner(wires[i])
		annParts[i] = NewPartitioner(nil)
		replicas[i] = &ChaosReplica{
			Name:          fmt.Sprintf("m%d", i+1),
			StoreDir:      filepath.Join(baseDir, fmt.Sprintf("member-%d", i+1)),
			PullFront:     front.URL,
			PullInterval:  pullEvery,
			Transport:     pullParts[i],
			Keep:          4,
			ScrubInterval: scrubEvery,
			ScrubPause:    time.Millisecond,
			// High enough that the ladder never quarantines a generation
			// the campaign's repair paths just haven't reached yet.
			ScrubQuarantineAfter: 25,
			ServeCfg: serve.Config{
				MaxInFlight:      4,
				MaxQueueWait:     2 * time.Millisecond,
				RequestTimeout:   5 * time.Second,
				BreakerThreshold: 1 << 30,
			},
			Front:             front.URL,
			AnnounceTransport: annParts[i],
			AnnounceInterval:  announceEvery,
		}
	}
	seed, err := store.Open(replicas[0].StoreDir, store.WithSegmentTarget(16<<10), store.WithBlockLicenses(8))
	if err != nil {
		t.Fatal(err)
	}
	gi, err := seed.Save(corpus(t), "heal soak seed")
	if err != nil {
		t.Fatal(err)
	}
	record(gi)
	seed.Close()
	for i := range replicas {
		if err := replicas[i].Start(); err != nil {
			t.Fatal(err)
		}
		defer replicas[i].Kill()
	}
	byName := func(name string) *ChaosReplica {
		for _, r := range replicas {
			if r.Name == name {
				return r
			}
		}
		return nil
	}

	// Bootstrap: the fleet assembles itself, elects m1 (the only member
	// holding a generation), and everyone replicates to routable.
	waitFor(t, 15*time.Second, "self-elected fleet bootstrap", func() bool {
		ready, _ := getJSON[struct {
			Routable int `json:"routable"`
			Members  int `json:"members"`
		}](t, front.Client(), front.URL+"/readyz")
		return ready.Members == replicaCount && ready.Routable == replicaCount &&
			f.Members().Source().Name == replicas[0].Name
	})

	// Epoch watcher: the fence must be monotone at the front for the
	// whole soak, through every promotion and rejoin.
	var epochViolations atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var maxEpoch int64
		for ctx.Err() == nil {
			if e := f.Members().Source().Epoch; e < maxEpoch {
				epochViolations.Add(1)
			} else {
				maxEpoch = e
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Publisher: saves fresh generations into whichever member currently
	// holds the source role — the writer follows the election. killMu
	// serializes publishing with kills so a Save never races the store
	// teardown of the member it targets.
	var killMu sync.Mutex
	pubCtx, pubCancel := context.WithCancel(ctx)
	defer pubCancel()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 1; ; n++ {
			select {
			case <-pubCtx.Done():
				return
			case <-time.After(publishEvery):
			}
			killMu.Lock()
			src := f.Members().Source()
			if r := byName(src.Name); r != nil {
				if st, srv := r.Store(), r.Server(); st != nil && srv != nil {
					gi, err := st.Save(corpus(t), fmt.Sprintf("heal soak update %d (epoch %d)", n, src.Epoch))
					if err == nil {
						srv.PublishStoreGeneration(corpus(t), gi)
						record(gi)
						// Bound the source's history (and with it each scrub
						// cycle's work); keeping more than the replicas'
						// Keep=4 leaves repair peers plenty of overlap.
						_, _ = st.GC(8)
					}
					// A failed save just means the source was being torn
					// down under us; the next tick follows the new role.
				}
			}
			killMu.Unlock()
		}
	}()

	// flipOnDisk injects bit rot: one payload byte of one committed
	// segment, preferring the second-newest generation (already
	// replicated to peers, so a verified repair copy exists). Returns
	// whether a byte actually flipped.
	flipOnDisk := func(r *ChaosReplica) bool {
		st := r.Store()
		if st == nil {
			return false
		}
		gens, err := st.List()
		if err != nil || len(gens) == 0 {
			return false
		}
		g := gens[len(gens)-1]
		if len(gens) >= 2 {
			g = gens[len(gens)-2]
		}
		if len(g.Segments) == 0 {
			return false
		}
		seg := g.Segments[len(g.Segments)/2]
		path := filepath.Join(r.StoreDir, fmt.Sprintf("gen-%06d", g.ID), seg.Name)
		fh, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return false // generation GC'd or quarantined mid-draw
		}
		defer fh.Close()
		buf := make([]byte, 1)
		// Offset 16 is the first payload byte: past the 8-byte magic and
		// the first frame's length+CRC header.
		if _, err := fh.ReadAt(buf, 16); err != nil {
			return false
		}
		buf[0] ^= 0x40
		_, err = fh.WriteAt(buf, 16)
		return err == nil
	}

	// The fault palette: transient kills (the source included — a kill
	// held past the failure detector forces a promotion and the victim
	// returns into a fleet that moved on), front partitions, corruption
	// bursts on the pull wire, and on-disk bit rot. Inject/Heal run only
	// on the campaign goroutine, so the counters are plain ints.
	var killN, frontPartN, corruptN, bitflipN int
	var faults []Fault
	for i, r := range replicas {
		wire, annPart := wires[i], annParts[i]
		faults = append(faults,
			Fault{
				Name: "kill-" + r.Name,
				Inject: func() {
					killN++
					killMu.Lock()
					r.Kill()
					killMu.Unlock()
				},
				Heal: func() {
					if !r.Running() {
						if err := r.Start(); err != nil {
							t.Errorf("chaos restart %s: %v", r.Name, err)
						}
					}
				},
			},
			Fault{
				Name:   "partition-front-" + r.Name,
				Inject: func() { frontPartN++; frontPart.Block(r.URL()); annPart.Block(front.URL) },
				Heal:   func() { frontPart.Unblock(r.URL()); annPart.Unblock(front.URL) },
			},
			Fault{
				Name:   "corrupt-burst-" + r.Name,
				Inject: func() { corruptN++; wire.SetRate(0.25) },
				Heal:   func() { wire.SetRate(0.04) },
			},
			Fault{
				Name: "bitrot-" + r.Name,
				Inject: func() {
					if flipOnDisk(r) {
						bitflipN++
					}
				},
				Heal: func() {}, // only the scrubber heals bit rot
			},
		)
	}

	// Client fleet: saturating audited read load through the front.
	queries := []string{
		"/v1/snapshot",
		"/v1/snapshot?licensee=New%20Line%20Networks",
		"/v1/rank?metric=rail",
		"/v1/evolution?licensee=Webline%20Holdings",
	}
	var oks, sheds atomic.Int64
	clientDeadline := time.Now().Add(soakFor + 4*time.Second*raceScale)
	cwg := sync.WaitGroup{}
	for c := 0; c < clients; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			client := &http.Client{Timeout: 8 * time.Second}
			for time.Now().Before(clientDeadline) {
				lo := latestGen.Load()
				resp, err := client.Get(front.URL + queries[c%len(queries)])
				if err != nil {
					t.Errorf("client %d: transport error through front: %v", c, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					oks.Add(1)
					genHdr := resp.Header.Get("X-Corpus-Generation")
					gen, err := strconv.ParseInt(genHdr, 10, 64)
					if err != nil || gen <= 0 {
						t.Errorf("200 with bad X-Corpus-Generation %q", genHdr)
						return
					}
					digest := resp.Header.Get("X-Corpus-Digest")
					if !publishedDigest(gen, digest) {
						t.Errorf("200 served generation %d digest %s that no source ever published", gen, digest)
						return
					}
					// +4 slack: publishes mid-flight, probe lag, and the
					// re-anchored generation floor after a promotion.
					if gen < lo-(stalenessBound+4) {
						t.Errorf("response generation %d beyond staleness budget (fleet was at %d, bound %d)", gen, lo, stalenessBound)
						return
					}
				case http.StatusServiceUnavailable:
					sheds.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Error("503 without Retry-After")
						return
					}
					time.Sleep(2 * time.Millisecond)
				default:
					t.Errorf("client saw status %d — the error surface must be exactly {200, 503}", resp.StatusCode)
					return
				}
			}
		}(c)
	}

	// The campaign proper: after every healed round the surviving fleet
	// must re-converge — every running replica back in the ring and a
	// source role held by a live member.
	campCtx, campCancel := context.WithTimeout(ctx, soakFor)
	defer campCancel()
	camp := &Campaign{
		Seed:    0xE24,
		Faults:  faults,
		HoldMin: holdMin,
		HoldMax: holdMax,
		OnRoundHealed: func(round int, injected []string) bool {
			healed := time.Now()
			for {
				converged := true
				for _, r := range replicas {
					if !r.Running() || !f.Members().Has(r.Name) {
						converged = false
						break
					}
				}
				if converged {
					src := f.Members().Source()
					if src.Name != "" && byName(src.Name) != nil && byName(src.Name).Running() {
						return true
					}
					converged = false
				}
				if time.Since(healed) > leaseTTL+promoteBudget {
					t.Errorf("round %d (%s): fleet did not re-converge within %v of heal; source now %+v",
						round, strings.Join(injected, "+"), leaseTTL+promoteBudget, f.Members().Source())
					return false
				}
				time.Sleep(2 * time.Millisecond)
			}
		},
	}
	rounds := camp.Run(campCtx)

	// Deterministic promotion drill: the elected source dies PERMANENTLY
	// — no restart — and the fleet must re-elect within the budget and
	// resume publishing. (The campaign's transient kills exercise the
	// same machinery with recovery; this is the unrecoverable case the
	// issue names.) An extra generation is saved but never announced
	// first: the dead source's unshipped tail, which the rebirth drill
	// below must find reconciled away, never served as fleet truth.
	srcBefore := f.Members().Source()
	victim := byName(srcBefore.Name)
	if victim == nil || !victim.Running() {
		t.Fatalf("no live source to kill: %+v", srcBefore)
	}
	killMu.Lock()
	if st := victim.Store(); st != nil {
		if gi, err := st.Save(corpus(t), "unshipped tail"); err == nil {
			record(gi) // it exists on disk; if anything ever serves it, the digest is legitimate
		}
	}
	killedAt := time.Now()
	genAtKill := latestGen.Load()
	victim.Kill()
	killMu.Unlock()
	t.Logf("heal soak: permanently killed source %s (epoch %d) at generation %d", victim.Name, srcBefore.Epoch, genAtKill)

	waitFor(t, promoteBudget+time.Second, "replacement source elected", func() bool {
		src := f.Members().Source()
		return src.Name != "" && src.Name != victim.Name && src.Epoch > srcBefore.Epoch
	})
	t.Logf("heal soak: re-elected %+v %v after source death", f.Members().Source(), time.Since(killedAt))
	waitFor(t, promoteBudget+6*publishEvery, "publishing resumed under the new source", func() bool {
		return latestGen.Load() > genAtKill
	})

	// Bit-rot drill, deterministic regardless of the campaign's draws:
	// rot a byte on a surviving replica and watch the scrubber repair it
	// in place — same store instance, no restart.
	var drill *ChaosReplica
	for _, r := range replicas {
		if r.Running() && r.Name != f.Members().Source().Name {
			drill = r
			break
		}
	}
	if drill == nil {
		t.Fatal("no surviving non-source replica for the bit-rot drill")
	}
	repairedBefore := drill.CumulativeScrub().Repaired
	stBefore := drill.Store()
	waitFor(t, 10*time.Second, "bit-rot drill injected", func() bool { return flipOnDisk(drill) })
	bitflipN++
	waitFor(t, 10*time.Second, "scrubber repaired the rot in place", func() bool {
		return drill.CumulativeScrub().Repaired > repairedBefore
	})
	if drill.Store() != stBefore {
		t.Error("store instance changed during the repair drill — a restart healed it, not the scrubber")
	}

	// Rebirth drill: the dead old source returns. It must rejoin as a
	// plain replica — it never takes the role back from a live fleet,
	// despite warm-starting with the highest generation id in it — and
	// converge on the living branch, its unshipped tail reconciled away
	// rather than adopted as fleet truth.
	pubCancel()
	epochAtRebirth := f.Members().Source().Epoch
	if err := victim.Start(); err != nil {
		t.Fatalf("restarting dead source: %v", err)
	}
	waitFor(t, 10*time.Second, "dead source rejoined as a plain member", func() bool {
		ann := victim.Announcer()
		return ann != nil && ann.State().Joined
	})
	if st := victim.Announcer().State(); st.IsSource {
		t.Error("returning dead source still believes it holds the role")
	}
	if src := f.Members().Source(); src.Name == victim.Name {
		t.Errorf("returning dead source took the role back: %+v", src)
	}
	if e := f.Members().Source().Epoch; e < epochAtRebirth {
		t.Errorf("epoch went backwards across the rebirth: %d → %d", epochAtRebirth, e)
	}
	// With publishing stopped, every branch is frozen; the reborn
	// replica must converge on exactly the live source's newest id AND
	// digest.
	waitFor(t, 15*time.Second, "reborn replica converged on the living branch", func() bool {
		src := byName(f.Members().Source().Name)
		if src == nil || src == victim || !src.Running() {
			return false
		}
		sst, vst := src.Store(), victim.Store()
		if sst == nil || vst == nil {
			return false
		}
		sid, serr := sst.LatestID()
		vid, verr := vst.LatestID()
		if serr != nil || verr != nil || sid != vid {
			return false
		}
		sd, serr := sst.GenDigest(sid)
		vd, verr := vst.GenDigest(vid)
		return serr == nil && verr == nil && sd == vd
	})

	campCancel()
	cwg.Wait()
	cancel()
	wg.Wait()

	// Every injected bit-flip healed without a restart: each surviving
	// store must scrub to Fsck-clean (quarantined debris is invisible to
	// Fsck by design — quarantine is how an unrepairable generation is
	// retired without deletion).
	for _, r := range replicas {
		if !r.Running() {
			continue
		}
		r := r
		waitFor(t, 15*time.Second, "store "+r.Name+" scrubbed clean", func() bool {
			st := r.Store()
			if st == nil {
				return false
			}
			rep, err := st.Fsck()
			return err == nil && rep.OK()
		})
	}

	if rounds < 3 {
		t.Errorf("only %d campaign rounds in %v — the fault mixer barely ran", rounds, soakFor)
	}
	if oks.Load() == 0 {
		t.Fatal("no successful responses during the soak")
	}
	if epochViolations.Load() != 0 {
		t.Errorf("%d epoch regressions observed at the front — the fence is not monotone", epochViolations.Load())
	}
	if bitflipN == 0 {
		t.Error("no bit-flips injected — the rot leg is vacuous")
	}
	var repaired, scrubCorrupt, installs, diverged, fenced int64
	var wireCorrupted, rejections int64
	for i, r := range replicas {
		wireCorrupted += wires[i].Corrupted.Load()
		scrub := r.CumulativeScrub()
		repaired += scrub.Repaired
		scrubCorrupt += scrub.Corrupt
		cum := r.CumulativeStatus()
		installs += cum.Installs
		rejections += cum.Rejections
		diverged += cum.Diverged
		fenced += cum.Fenced
	}
	if repaired == 0 {
		t.Error("bit rot was injected but the scrubbers repaired nothing")
	}
	if installs < replicaCount-1 {
		t.Errorf("%d installs across the fleet, want at least the %d bootstrap pulls", installs, replicaCount-1)
	}
	if wireCorrupted > 0 && rejections+repaired == 0 {
		t.Error("the wire corrupted segments but nothing was ever rejected or repaired")
	}
	ms := f.Members().Stats()
	t.Logf("heal soak: %d rounds, %d ok, %d shed; faults drawn: kill=%d partFront=%d corrupt=%d bitflip=%d; scrub: corrupt=%d repaired=%d; pulls: installs=%d diverged=%d fenced=%d wireCorrupted=%d; membership: joins=%d evictions=%d source=%+v",
		rounds, oks.Load(), sheds.Load(),
		killN, frontPartN, corruptN, bitflipN,
		scrubCorrupt, repaired,
		installs, diverged, fenced, wireCorrupted,
		ms.Joins, ms.Evictions, ms.Source)
}
