// Package fleet turns the single-process query service into a
// replicated serving tier with no load-bearing node — the paper's HFT
// corridor property (§5: no single tower failure severs the fastest
// networks) applied to our own serving path.
//
// The design leans entirely on invariants the store already provides:
//
//   - Generation shipping. A primary's committed manifest + segment
//     files ARE the wire format (self-checksummed manifest; per-segment
//     sizes and SHA-256; per-block CRC32C). The Shipper exports their
//     raw bytes over HTTP; nothing is re-encoded, so nothing new can be
//     torn or misframed in transit that the existing checksums miss.
//
//   - Pull replication. Each replica runs a Puller: a jittered poll
//     loop that downloads any newer generation, verifies every promise
//     the manifest makes (Fsck-deep: sizes, digests, CRCs, record
//     decode, license validation), atomically installs it into the
//     replica's own crash-safe store, and warm-swaps it live. A
//     download that fails verification is rejected whole — the replica
//     keeps serving its previous generation and the rejection is
//     surfaced on /statsz. A replica restarted after a crash warm-boots
//     from its local store and catches up from the primary.
//
//   - Failover front tier. The Front health-checks replicas over
//     /readyz (which now carries the cross-process generation id,
//     corpus digest, and age), consistent-hashes per-licensee traffic
//     so each replica's engine memos stay hot for its shard, hedges
//     slow reads and retries failed idempotent reads on the next
//     replica in ring order, excludes replicas staler than a bounded
//     number of generations behind the primary, and shed load with
//     503 + jittered Retry-After when no replica is serviceable.
//
// The chaos harness (ChaosReplica, FaultyTransport) and the E21 soak
// drive the whole assembly under SIGKILL-style replica crashes and
// corrupted downloads, asserting clients never observe a wrong or
// out-of-bounds-stale generation and never an error beyond 503.
package fleet

import "net/http"

// Replica names one replica of the serving fleet.
type Replica struct {
	Name string `json:"name"`
	URL  string `json:"url"` // base URL, e.g. http://10.0.0.7:8090
}

// WithShipping mounts st's generation-shipping endpoints (/v1/gen/...)
// in front of an existing handler — how a serving process becomes a
// replication primary without touching the query surface.
func WithShipping(h http.Handler, shipper *Shipper) http.Handler {
	mux := http.NewServeMux()
	mux.Handle(shipPrefix, shipper)
	mux.Handle("/", h)
	return mux
}
