package fleet

import (
	"context"
	"io"
	"sync"
	"time"
)

// Pull bandwidth budget: replication and repair traffic share the
// replica's NIC with live serving, and an unthrottled multi-hundred-MB
// generation pull is exactly the burst that blows a serving-tier p99.
// A token bucket refilled at MaxBytesPerSec meters every segment body
// the puller reads; transfers stretch out, serving keeps its headroom,
// and the staging area makes the stretched transfer safe to interrupt.

// throttleChunk bounds one metered read so a tiny budget still makes
// progress (the bucket's burst is never smaller than one chunk).
const throttleChunk = 16 << 10

// byteBucket is a token-bucket byte budget. A nil bucket is
// unthrottled; all methods are safe on nil.
type byteBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) added per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

func newByteBucket(bytesPerSec int64) *byteBucket {
	if bytesPerSec <= 0 {
		return nil
	}
	b := &byteBucket{rate: float64(bytesPerSec), burst: float64(bytesPerSec)}
	if b.burst < throttleChunk {
		b.burst = throttleChunk
	}
	b.tokens = b.burst
	b.last = time.Now()
	return b
}

// wait blocks until n bytes of budget are available or ctx ends,
// reporting whether it had to sleep at all.
func (b *byteBucket) wait(ctx context.Context, n int) (waited bool, err error) {
	if b == nil || n <= 0 {
		return false, nil
	}
	for {
		b.mu.Lock()
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
		if b.tokens >= float64(n) {
			b.tokens -= float64(n)
			b.mu.Unlock()
			return waited, nil
		}
		sleep := time.Duration((float64(n) - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		waited = true
		select {
		case <-ctx.Done():
			return waited, ctx.Err()
		case <-time.After(sleep):
		}
	}
}

// throttledReader meters an underlying reader against a bucket: each
// read is capped at one chunk and paid for after it lands (pay-after
// smooths to the rate while letting the first chunk through
// immediately). onWait is called once per read that had to sleep.
type throttledReader struct {
	ctx    context.Context
	r      io.Reader
	bucket *byteBucket
	onWait func()
}

func (t *throttledReader) Read(p []byte) (int, error) {
	if len(p) > throttleChunk {
		p = p[:throttleChunk]
	}
	n, err := t.r.Read(p)
	if n > 0 {
		waited, werr := t.bucket.wait(t.ctx, n)
		if waited && t.onWait != nil {
			t.onWait()
		}
		if werr != nil && err == nil {
			err = werr
		}
	}
	return n, err
}
