package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hftnetview/internal/serve"
	"hftnetview/internal/store"
	"hftnetview/internal/synth"
)

// TestMembershipChaosSoak is E23, the self-healing membership drill:
// a fleet built ENTIRELY from self-registering replicas (the front
// starts with zero static members), under saturating query load,
// while a seeded multi-fault campaign composes every failure mode the
// chaos layer knows — SIGKILL-shaped crashes, front↔replica and
// replica↔primary partitions, a full primary outage, slow and hung
// replicas, clock skew on the lease timestamps, silent heartbeat
// stalls, and corruption bursts on the shipping wire — several at a
// time, in random combinations.
//
// Invariants, checked on every single client response and after every
// round:
//
//   - zero wrong-generation responses: a 200's generation was really
//     published and carries that generation's digest;
//   - bounded staleness: every 200 within the staleness budget of the
//     primary's newest at request time;
//   - the error surface is exactly {200, 503+Retry-After} — crashes,
//     partitions, hangs, and overload all collapse into those two;
//   - ring convergence: within one lease TTL of a round healing,
//     every surviving replica is back in the member ring;
//   - lease-lapse eviction: a replica that silently stops renewing is
//     evicted within one TTL, and rejoins on its next heartbeat.
//
// Run under -race via `make membership-soak` (wired into `make ci`).
func TestMembershipChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		soakFor        = 4 * time.Second * raceScale
		replicaCount   = 3
		clients        = 6
		stalenessBound = 3
		publishEvery   = 350 * time.Millisecond * raceScale
		pullEvery      = 80 * time.Millisecond
		checkEvery     = 25 * time.Millisecond
		leaseTTL       = 300 * time.Millisecond * raceScale
		announceEvery  = 60 * time.Millisecond
		holdMin        = 200 * time.Millisecond * raceScale
		holdMax        = 550 * time.Millisecond * raceScale
		// convergeBudget is the issue's bound: one lease TTL from heal
		// to full ring re-convergence, plus sweep-cadence slack (the
		// sweeper and prober only look every checkEvery).
		convergeBudget = leaseTTL + 4*checkEvery
	)

	// Primary: publishing fresh generations throughout, except during
	// the primary-outage fault (a down primary publishes nothing, which
	// is exactly what keeps "serve the last installed generation"
	// within the staleness bound).
	pst, err := store.Open(t.TempDir(), store.WithSegmentTarget(32<<10), store.WithBlockLicenses(8))
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	var published sync.Map // generation id → corpus digest
	var latestGen atomic.Int64
	var pubPaused atomic.Bool
	record := func(gi *store.GenInfo) {
		published.Store(gi.ID, gi.CorpusSHA256)
		latestGen.Store(gi.ID)
	}
	gi, err := pst.Save(corpus(t), "membership soak seed")
	if err != nil {
		t.Fatal(err)
	}
	record(gi)
	primary := httptest.NewServer(NewShipper(pst))
	defer primary.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // publisher, pausable by the primary-outage fault
		defer wg.Done()
		for n := 1; ; n++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(publishEvery):
			}
			if pubPaused.Load() {
				continue
			}
			gi, err := pst.Save(corpus(t), fmt.Sprintf("membership soak update %d", n))
			if err != nil {
				t.Errorf("publisher save %d: %v", n, err)
				return
			}
			record(gi)
			if _, err := pst.GC(4); err != nil {
				t.Errorf("publisher gc: %v", err)
				return
			}
		}
	}()

	// Front tier: NO static replicas — the whole fleet must assemble
	// itself through /v1/fleet/join. Its client rides a Partitioner so
	// the campaign can sever the front→replica and front→primary links.
	frontPart := NewPartitioner(nil)
	f := NewFront(FrontConfig{
		Primary:        primary.URL,
		StalenessBound: stalenessBound,
		LeaseTTL:       leaseTTL,
		MinHealthy:     1,
		HedgeAfter:     50 * time.Millisecond,
		RequestTimeout: 3 * time.Second,
		RetryAfter:     100 * time.Millisecond,
		CheckInterval:  checkEvery,
		Client:         &http.Client{Timeout: 2 * time.Second, Transport: frontPart},
	})
	go f.Run(ctx)
	front := httptest.NewServer(f.Handler())
	defer front.Close()

	// Replicas: self-registering, killable, each behind a corrupting
	// wire stacked under a pull-side partitioner, an announce-side
	// partitioner, and a slow/hang gate.
	baseDir := t.TempDir()
	mixed := synth.Profiles()[len(synth.Profiles())-1]
	replicas := make([]*ChaosReplica, replicaCount)
	wires := make([]*FaultyTransport, replicaCount)
	pullParts := make([]*Partitioner, replicaCount)
	annParts := make([]*Partitioner, replicaCount)
	gates := make([]*SlowGate, replicaCount)
	for i := range replicas {
		wires[i] = NewFaultyTransport(nil, mixed, uint64(2000+i))
		wires[i].SetRate(0.05) // constant background corruption, as in E21
		pullParts[i] = NewPartitioner(wires[i])
		annParts[i] = NewPartitioner(nil)
		gates[i] = &SlowGate{}
		replicas[i] = &ChaosReplica{
			Name:         fmt.Sprintf("r%d", i+1),
			StoreDir:     filepath.Join(baseDir, fmt.Sprintf("replica-%d", i+1)),
			Primary:      primary.URL,
			PullInterval: pullEvery,
			Transport:    pullParts[i],
			Keep:         3,
			ServeCfg: serve.Config{
				MaxInFlight:      4,
				MaxQueueWait:     2 * time.Millisecond,
				RequestTimeout:   5 * time.Second,
				BreakerThreshold: 1 << 30,
			},
			Front:             front.URL,
			AnnounceTransport: annParts[i],
			AnnounceInterval:  announceEvery,
			Gate:              gates[i],
		}
	}
	// r3's clock runs two hours fast for the WHOLE soak: every one of
	// its announces carries a wildly skewed timestamp, and nothing
	// anywhere may care (leases live on the front's clock alone). Its
	// bootstrap join below is the first proof.
	replicas[2].SetSkew(2 * time.Hour)
	for i := range replicas {
		if err := replicas[i].Start(); err != nil {
			t.Fatal(err)
		}
		defer replicas[i].Kill()
	}

	// The fleet must assemble itself: all three announce, join, and
	// turn routable with no static configuration.
	waitFor(t, 10*time.Second, "self-registered fleet bootstrap", func() bool {
		ready, _ := getJSON[struct {
			Routable int `json:"routable"`
			Members  int `json:"members"`
		}](t, front.Client(), front.URL+"/readyz")
		return ready.Members == replicaCount && ready.Routable == replicaCount
	})

	// The fault palette. Inject/Heal run only on the campaign
	// goroutine, so the draw counters are plain ints.
	var killN, frontPartN, primaryPartN, outageN, corruptN, gateN, pauseN, skewN int
	var faults []Fault
	for i, r := range replicas {
		wire, pullPart, annPart := wires[i], pullParts[i], annParts[i]
		faults = append(faults,
			Fault{
				Name:   "kill-" + r.Name,
				Inject: func() { killN++; r.Kill() },
				Heal: func() {
					if !r.Running() {
						if err := r.Start(); err != nil {
							t.Errorf("chaos restart %s: %v", r.Name, err)
						}
					}
				},
			},
			Fault{
				// Both directions at once: the front can neither probe
				// nor proxy to the replica, and the replica's renewals
				// never arrive — held past the TTL this is an eviction.
				Name:   "partition-front-" + r.Name,
				Inject: func() { frontPartN++; frontPart.Block(r.URL()); annPart.Block(front.URL) },
				Heal:   func() { frontPart.Unblock(r.URL()); annPart.Unblock(front.URL) },
			},
			Fault{
				// The replica keeps serving its last installed
				// generation; the front's staleness exclusion handles
				// the rest if the primary races ahead.
				Name:   "partition-primary-" + r.Name,
				Inject: func() { primaryPartN++; pullPart.Block(primary.URL) },
				Heal:   func() { pullPart.Unblock(primary.URL) },
			},
			Fault{
				Name:   "corrupt-burst-" + r.Name,
				Inject: func() { corruptN++; wire.SetRate(0.25) },
				Heal:   func() { wire.SetRate(0.05) },
			},
		)
	}
	faults = append(faults,
		Fault{
			// Above the probe timeout: the slow replica goes unhealthy
			// and in-flight reads hedge to a sibling.
			Name:   "slow-r1",
			Inject: func() { gateN++; gates[0].SetDelay(120 * time.Millisecond) },
			Heal:   func() { gates[0].Clear() },
		},
		Fault{
			Name:   "hang-r2",
			Inject: func() { gateN++; gates[1].Hang() },
			Heal:   func() { gates[1].Clear() },
		},
		Fault{
			// r3's clock jumps from two hours fast to three hours slow
			// mid-lease. Renewals must sail through either way.
			Name:   "skew-flip-r3",
			Inject: func() { skewN++; replicas[2].SetSkew(-3 * time.Hour) },
			Heal:   func() { replicas[2].SetSkew(2 * time.Hour) },
		},
		Fault{
			// The silent death: the process is fine, the heartbeat just
			// stops. Held past the TTL, the lease lapses and r1 is
			// evicted with nobody telling the front anything.
			Name:   "pause-announce-r1",
			Inject: func() { pauseN++; replicas[0].SetAnnouncePaused(true) },
			Heal:   func() { replicas[0].SetAnnouncePaused(false) },
		},
		Fault{
			// Primary outage: nobody can pull, the front's generation
			// poll goes dark, nothing new is published — and the fleet
			// keeps answering from the last installed generation.
			Name: "primary-outage",
			Inject: func() {
				outageN++
				pubPaused.Store(true)
				frontPart.Block(primary.URL)
				for _, pp := range pullParts {
					pp.Block(primary.URL)
				}
			},
			Heal: func() {
				frontPart.Unblock(primary.URL)
				for _, pp := range pullParts {
					pp.Unblock(primary.URL)
				}
				pubPaused.Store(false)
			},
		},
	)

	// Client fleet: saturating read load, every response audited.
	queries := []string{
		"/v1/snapshot",
		"/v1/snapshot?licensee=New%20Line%20Networks",
		"/v1/rank?metric=rail",
		"/v1/evolution?licensee=Webline%20Holdings",
		"/v1/apa",
	}
	var oks, sheds atomic.Int64
	deadline := time.Now().Add(soakFor)
	cwg := sync.WaitGroup{}
	for c := 0; c < clients; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			client := &http.Client{Timeout: 8 * time.Second}
			for time.Now().Before(deadline) {
				lo := latestGen.Load()
				resp, err := client.Get(front.URL + queries[c%len(queries)])
				if err != nil {
					t.Errorf("client %d: transport error through front: %v", c, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					oks.Add(1)
					genHdr := resp.Header.Get("X-Corpus-Generation")
					gen, err := strconv.ParseInt(genHdr, 10, 64)
					if err != nil || gen <= 0 {
						t.Errorf("200 with bad X-Corpus-Generation %q", genHdr)
						return
					}
					wantDigest, ok := published.Load(gen)
					if !ok {
						t.Errorf("200 served generation %d the primary never published", gen)
						return
					}
					if got := resp.Header.Get("X-Corpus-Digest"); got != wantDigest.(string) {
						t.Errorf("generation %d served with digest %s, primary published %s — wrong corpus went live", gen, got, wantDigest)
						return
					}
					// +3 slack: generations published mid-flight, probe
					// lag, and partition-heal catchup.
					if gen < lo-(stalenessBound+3) {
						t.Errorf("response generation %d beyond staleness budget (primary was at %d, bound %d)", gen, lo, stalenessBound)
						return
					}
				case http.StatusServiceUnavailable:
					sheds.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Error("503 without Retry-After")
						return
					}
					// Back off a beat on shed: a client that hammers a
					// shedding front in a hot loop is its own chaos.
					time.Sleep(2 * time.Millisecond)
				default:
					t.Errorf("client saw status %d — the error surface must be exactly {200, 503}", resp.StatusCode)
					return
				}
			}
		}(c)
	}

	// The campaign proper: seeded multi-fault rounds, with the ring
	// convergence assertion after every heal.
	memberNames := func() []string {
		var names []string
		for _, m := range f.Members().Stats().Members {
			names = append(names, m.Name)
		}
		return names
	}
	campCtx, campCancel := context.WithTimeout(ctx, soakFor)
	defer campCancel()
	camp := &Campaign{
		Seed:    0xE23,
		Faults:  faults,
		HoldMin: holdMin,
		HoldMax: holdMax,
		OnRoundHealed: func(round int, injected []string) bool {
			healed := time.Now()
			for {
				converged := true
				for _, r := range replicas {
					if !r.Running() || !f.Members().Has(r.Name) {
						converged = false
						break
					}
				}
				if converged {
					return true
				}
				if time.Since(healed) > convergeBudget {
					t.Errorf("round %d (%s): ring did not re-converge within %v of heal; members now %v",
						round, strings.Join(injected, "+"), convergeBudget, memberNames())
					return false
				}
				time.Sleep(2 * time.Millisecond)
			}
		},
	}
	rounds := camp.Run(campCtx)
	cwg.Wait()

	// Deterministic lease-lapse epilogue (the campaign's pause fault
	// may not have held past the TTL): r1 goes silent, must be evicted
	// within one TTL of its last renewal plus sweep slack, then rejoin
	// on its next heartbeat once it resumes.
	drill := replicas[0]
	drill.SetAnnouncePaused(true)
	waitFor(t, leaseTTL+150*time.Millisecond*raceScale, "silently dead replica evicted", func() bool {
		return !f.Members().Has(drill.Name)
	})
	drill.SetAnnouncePaused(false)
	waitFor(t, convergeBudget, "resumed replica rejoined", func() bool {
		return f.Members().Has(drill.Name)
	})

	cancel()
	wg.Wait()

	// The drill must have actually drilled.
	if rounds < 3 {
		t.Errorf("only %d campaign rounds in %v — the fault mixer barely ran", rounds, soakFor)
	}
	if oks.Load() == 0 {
		t.Fatal("no successful responses during the soak")
	}
	ms := f.Members().Stats()
	if ms.Evictions == 0 {
		t.Error("no lease-lapse evictions — the failure detector never fired")
	}
	if ms.Joins < replicaCount+1 {
		t.Errorf("%d joins: want the %d bootstraps plus at least one post-eviction rejoin", ms.Joins, replicaCount)
	}
	// r3 announced with a clock hours off from its very first join: the
	// skew must be on the diagnostics surface and nowhere else.
	if ms.MaxSkewSeconds < 7000 {
		t.Errorf("max observed skew %.0fs, want ≥ ~2h — the skew leg is vacuous", ms.MaxSkewSeconds)
	}
	var corrupted, rejections, installs, backoffs int64
	for i, r := range replicas {
		corrupted += wires[i].Corrupted.Load()
		cum := r.CumulativeStatus()
		rejections += cum.Rejections
		installs += cum.Installs
		backoffs += cum.Backoffs
	}
	if corrupted == 0 {
		t.Error("fault transports injected nothing — the corruption leg is vacuous")
	}
	if corrupted > 0 && rejections == 0 {
		t.Error("segments were corrupted but no replica recorded a rejection")
	}
	if installs < replicaCount {
		t.Errorf("%d installs across the fleet, want at least the %d bootstraps", installs, replicaCount)
	}
	if primaryPartN+outageN > 0 && backoffs == 0 {
		t.Error("pulls were partitioned but no puller ever backed off")
	}
	var pullBlocked, annBlocked int64
	for i := range replicas {
		pullBlocked += pullParts[i].Blocked.Load()
		annBlocked += annParts[i].Blocked.Load()
	}
	t.Logf("soak: %d rounds, %d ok, %d shed; faults drawn: kill=%d partFront=%d partPrimary=%d outage=%d corrupt=%d gate=%d pause=%d skew=%d; refused: front=%d pull=%d announce=%d; pulls: %d backoffs, %d corrupted, %d rejections, %d installs; membership: joins=%d renews=%d leaves=%d evictions=%d maxSkew=%.0fs; front stats %+v",
		rounds, oks.Load(), sheds.Load(),
		killN, frontPartN, primaryPartN, outageN, corruptN, gateN, pauseN, skewN,
		frontPart.Blocked.Load(), pullBlocked, annBlocked,
		backoffs, corrupted, rejections, installs,
		ms.Joins, ms.Renews, ms.Leaves, ms.Evictions, ms.MaxSkewSeconds, f.Stats())
}
