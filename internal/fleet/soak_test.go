package fleet

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hftnetview/internal/serve"
	"hftnetview/internal/store"
	"hftnetview/internal/synth"
)

// TestFleetChaosSoak is E21, the issue's headline drill: three
// replicas behind the failover front tier, under saturating query
// load, while a chaos controller repeatedly SIGKILLs and restarts
// replicas, the primary keeps publishing (and GC'ing) generations, and
// every replica's wire corrupts segment downloads with the synth
// corruption profiles. The invariants, checked on every single client
// response:
//
//   - zero wrong-generation responses: a 200's generation header names
//     a generation the primary actually published, and its digest is
//     that generation's digest — a corrupted shipment that slipped
//     through verification would show up here;
//   - bounded staleness: every 200 was computed from a generation
//     within the staleness budget of the primary's newest at request
//     time;
//   - zero non-503 errors: clients see 200 or a well-formed 503 with
//     Retry-After, nothing else — kills mid-response, poisoned pulls,
//     and overload all collapse into those two statuses.
//
// Run under -race via `make fleet-soak` (wired into `make ci`).
func TestFleetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		soakFor        = 4 * time.Second * raceScale
		replicaCount   = 3
		clients        = 8
		stalenessBound = 3
		publishEvery   = 350 * time.Millisecond * raceScale
		pullEvery      = 80 * time.Millisecond
		checkEvery     = 25 * time.Millisecond
		killEvery      = 300 * time.Millisecond * raceScale
		restartAfter   = 150 * time.Millisecond
	)

	// Primary: a store publishing fresh generations throughout, shipped
	// over HTTP. The primary itself is never killed — E21 drills the
	// serving fleet, and the store crash drill (E20) covers the writer.
	pst, err := store.Open(t.TempDir(), store.WithSegmentTarget(32<<10), store.WithBlockLicenses(8))
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	var published sync.Map // generation id → corpus digest
	var latestGen atomic.Int64
	record := func(gi *store.GenInfo) {
		published.Store(gi.ID, gi.CorpusSHA256)
		latestGen.Store(gi.ID)
	}
	gi, err := pst.Save(corpus(t), "soak seed")
	if err != nil {
		t.Fatal(err)
	}
	record(gi)
	primary := httptest.NewServer(NewShipper(pst))
	defer primary.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // publisher: new generation + GC sweep on a steady cadence
		defer wg.Done()
		for n := 1; ; n++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(publishEvery):
			}
			gi, err := pst.Save(corpus(t), fmt.Sprintf("soak update %d", n))
			if err != nil {
				t.Errorf("publisher save %d: %v", n, err)
				return
			}
			record(gi)
			// GC races replica pulls by design: a swept generation must
			// surface to pullers as a clean retry, never a bad install.
			if _, err := pst.GC(4); err != nil {
				t.Errorf("publisher gc: %v", err)
				return
			}
		}
	}()

	// Replicas: killable, restartable, each behind a corrupting wire.
	baseDir := t.TempDir()
	replicas := make([]*ChaosReplica, replicaCount)
	faults := make([]*FaultyTransport, replicaCount)
	mixed := synth.Profiles()[len(synth.Profiles())-1] // the mixed profile
	for i := range replicas {
		faults[i] = NewFaultyTransport(nil, mixed, uint64(1000+i))
		// ~5% of segment downloads arrive mangled: with ~10 segments a
		// generation, roughly a third of pulls get poisoned — constant
		// rejection pressure while most replicas still keep up.
		faults[i].SetRate(0.05)
		replicas[i] = &ChaosReplica{
			Name:         fmt.Sprintf("r%d", i+1),
			StoreDir:     filepath.Join(baseDir, fmt.Sprintf("replica-%d", i+1)),
			Primary:      primary.URL,
			PullInterval: pullEvery,
			Transport:    faults[i],
			Keep:         3,
			ServeCfg: serve.Config{
				MaxInFlight:      4,
				MaxQueueWait:     2 * time.Millisecond,
				RequestTimeout:   5 * time.Second,
				BreakerThreshold: 1 << 30, // engine faults aren't this drill's chaos
			},
		}
		if err := replicas[i].Start(); err != nil {
			t.Fatal(err)
		}
		defer replicas[i].Kill()
	}

	frontReplicas := make([]Replica, replicaCount)
	for i, r := range replicas {
		frontReplicas[i] = Replica{Name: r.Name, URL: r.URL()}
	}
	f := NewFront(FrontConfig{
		Replicas:       frontReplicas,
		Primary:        primary.URL,
		StalenessBound: stalenessBound,
		HedgeAfter:     50 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
		CheckInterval:  checkEvery,
		Client:         &http.Client{Timeout: 5 * time.Second},
	})
	go f.Run(ctx)
	front := httptest.NewServer(f.Handler())
	defer front.Close()

	// Wait for the fleet to bootstrap before opening the floodgates.
	waitFor(t, 10*time.Second, "fleet bootstrap", func() bool {
		ready, _ := getJSON[struct {
			Routable int `json:"routable"`
		}](t, front.Client(), front.URL+"/readyz")
		return ready.Routable == replicaCount
	})

	// Chaos controller: kill a replica, let the fleet absorb it, bring
	// it back, repeat. Kills overlap client load the whole soak.
	var kills atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(42, 1))
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(killEvery):
			}
			r := replicas[rng.IntN(len(replicas))]
			r.Kill()
			kills.Add(1)
			select {
			case <-ctx.Done():
				return
			case <-time.After(restartAfter):
			}
			if err := r.Start(); err != nil {
				t.Errorf("chaos restart %s: %v", r.Name, err)
				return
			}
		}
	}()

	// Client fleet: saturating read load, every response audited.
	queries := []string{
		"/v1/snapshot",
		"/v1/snapshot?licensee=New%20Line%20Networks",
		"/v1/rank?metric=rail",
		"/v1/evolution?licensee=Webline%20Holdings",
		"/v1/apa",
	}
	var oks, sheds atomic.Int64
	deadline := time.Now().Add(soakFor)
	cwg := sync.WaitGroup{}
	for c := 0; c < clients; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			client := &http.Client{Timeout: 8 * time.Second}
			rng := rand.New(rand.NewPCG(uint64(c), 99))
			for time.Now().Before(deadline) {
				// Snapshot the primary's newest BEFORE the request: any
				// response must be within the staleness budget of it
				// (plus slack for generations published mid-flight and
				// the front's own probe lag).
				lo := latestGen.Load()
				resp, err := client.Get(front.URL + queries[rng.IntN(len(queries))])
				if err != nil {
					t.Errorf("client %d: transport error through front: %v", c, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					oks.Add(1)
					genHdr := resp.Header.Get("X-Corpus-Generation")
					gen, err := strconv.ParseInt(genHdr, 10, 64)
					if err != nil || gen <= 0 {
						t.Errorf("200 with bad X-Corpus-Generation %q", genHdr)
						return
					}
					wantDigest, ok := published.Load(gen)
					if !ok {
						t.Errorf("200 served generation %d the primary never published", gen)
						return
					}
					if got := resp.Header.Get("X-Corpus-Digest"); got != wantDigest.(string) {
						t.Errorf("generation %d served with digest %s, primary published %s — wrong corpus went live", gen, got, wantDigest)
						return
					}
					if gen < lo-(stalenessBound+2) {
						t.Errorf("response generation %d beyond staleness budget (primary was at %d, bound %d)", gen, lo, stalenessBound)
						return
					}
				case http.StatusServiceUnavailable:
					sheds.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Error("503 without Retry-After")
						return
					}
				default:
					t.Errorf("client saw status %d — the error surface must be exactly {200, 503}", resp.StatusCode)
					return
				}
			}
		}(c)
	}
	cwg.Wait()
	cancel()
	wg.Wait()

	// The drill must have actually drilled: kills landed, corruption
	// was injected and rejected, replicas re-installed after restarts,
	// and clients got real answers.
	if kills.Load() < 3 {
		t.Errorf("only %d kills in %v — chaos controller barely ran", kills.Load(), soakFor)
	}
	if oks.Load() == 0 {
		t.Fatal("no successful responses during the soak")
	}
	var corrupted, rejections, installs, retried int64
	for i, r := range replicas {
		corrupted += faults[i].Corrupted.Load()
		cum := r.CumulativeStatus()
		rejections += cum.Rejections
		installs += cum.Installs
		retried += cum.Retried
	}
	if corrupted == 0 {
		t.Error("fault transports injected nothing — the corruption leg is vacuous")
	}
	if corrupted > 0 && rejections == 0 {
		t.Error("segments were corrupted but no replica recorded a rejection")
	}
	if installs < replicaCount {
		t.Errorf("%d installs across the fleet, want at least the %d bootstraps", installs, replicaCount)
	}
	t.Logf("soak: %d ok, %d shed, %d kills, %d corrupted downloads, %d rejections, %d retried, %d installs, front stats %+v",
		oks.Load(), sheds.Load(), kills.Load(), corrupted, rejections, retried, installs, f.Stats())
}
