package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hftnetview/internal/serve"
)

// FrontConfig tunes the failover front tier. The zero value of every
// field falls back to the default documented on it.
type FrontConfig struct {
	// Replicas is the statically configured serving fleet: permanent
	// members that never lease-expire. May be empty when the fleet
	// self-registers via /v1/fleet/join.
	Replicas []Replica
	// Primary is the base URL of the primary's shipping endpoints;
	// the front polls /v1/gen/latest there to know the newest
	// published generation. "" disables staleness exclusion.
	Primary string
	// StalenessBound K: a replica whose live generation is more than K
	// behind the primary's newest is excluded from routing (default 2).
	StalenessBound int64
	// LeaseTTL is the membership lease granted to self-registering
	// replicas; a member that stops renewing is evicted from the ring
	// within one TTL (default 3s).
	LeaseTTL time.Duration
	// MinHealthy is the healthy-member floor: when fewer routable
	// members remain, the front sheds every request with 503 +
	// Retry-After instead of piling the whole fleet's load onto a
	// rump that cannot absorb it (default 1, i.e. serve from whatever
	// remains).
	MinHealthy int
	// HedgeAfter is the per-request hedging deadline: if the chosen
	// replica has not answered within it, the request is also sent to
	// the next replica in ring order and the first answer wins; the
	// loser is canceled (default 150ms).
	HedgeAfter time.Duration
	// RequestTimeout bounds one client request end to end, across all
	// attempts (default 15s).
	RequestTimeout time.Duration
	// RetryAfter is the base hint on shed responses; the emitted
	// header is jittered to break up retry waves (default 1s).
	RetryAfter time.Duration
	// CheckInterval is the health/staleness probe cadence, which also
	// paces the lease sweep (default 250ms); FailAfter the consecutive
	// probe failures that mark a replica down (default 2).
	CheckInterval time.Duration
	FailAfter     int
	// HedgeBulk extends tail-latency hedging to bulk segment fetches
	// (/v1/gen/segment/ proxied through the front). Default off: a
	// hedged segment fetch duplicates megabytes of transfer to shave a
	// tail the puller's resumable staging already tolerates, so bulk
	// reads fail over sequentially instead of racing two replicas.
	HedgeBulk bool
	// Promote enables epoch-fenced source promotion: the front tracks a
	// source role (the member pullers replicate from), and when the
	// role holder's lease lapses or its /readyz fails FailAfter
	// consecutive probes, deterministically promotes the healthy member
	// holding the newest generation under the next epoch. With Promote
	// on, the front's observed primary generation follows the probed
	// source instead of a static Primary URL. Default off: a statically
	// wired fleet (Primary + pull-from) behaves exactly as before.
	Promote bool
	// Vnodes is the consistent-hash virtual node count (default 64).
	Vnodes int
	// Client issues proxied requests and probes (default: 15s timeout,
	// keep-alives on — connection reuse per replica is the point).
	Client *http.Client
}

func (c FrontConfig) withDefaults() FrontConfig {
	if c.StalenessBound <= 0 {
		c.StalenessBound = 2
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.MinHealthy <= 0 {
		c.MinHealthy = 1
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 150 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 250 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 15 * time.Second}
	}
	return c
}

// Front is the fleet's failover proxy: consistent-hash routing over a
// self-healing member set, health- and staleness-aware failover,
// hedged idempotent reads, and load shedding when the healthy quorum
// drops below the floor.
type Front struct {
	cfg     FrontConfig
	checker *Checker
	members *Membership

	primaryGen atomic.Int64

	ctxMu sync.Mutex
	ctx   context.Context // the Run context; background before Run

	counters struct {
		requests atomic.Int64 // client requests entering /v1
		proxied  atomic.Int64 // attempts forwarded to replicas
		retried  atomic.Int64 // failovers to a later candidate
		hedged   atomic.Int64 // hedge attempts launched on the timer
		shed     atomic.Int64 // 503s from the front itself
	}
	started time.Time
}

// NewFront builds the front tier. Call Run to start its probe and
// lease-sweep loops, then serve Handler.
func NewFront(cfg FrontConfig) *Front {
	cfg = cfg.withDefaults()
	f := &Front{cfg: cfg, started: time.Now()}
	f.checker = NewChecker(cfg.Replicas, cfg.Client, cfg.FailAfter)
	// The membership change hook keeps the probed set in lockstep with
	// the ring: it runs under the membership lock, so by the time a
	// Join or eviction returns, both structures agree — there is no
	// window in which the ring offers a member the checker has
	// forgotten, or vice versa.
	f.members = NewMembership(cfg.Replicas, cfg.LeaseTTL, cfg.Vnodes, func(added, removed []Replica) {
		for _, r := range added {
			f.checker.Add(r)
		}
		for _, r := range removed {
			f.checker.Remove(r.Name)
		}
	})
	return f
}

// Members exposes the membership registry (tests and the fleet
// handlers use it; the proxy path goes through candidates).
func (f *Front) Members() *Membership { return f.members }

// Run drives the health checker, the lease sweep, and the
// primary-generation poll until ctx is done.
func (f *Front) Run(ctx context.Context) {
	f.ctxMu.Lock()
	f.ctx = ctx
	f.ctxMu.Unlock()
	if f.cfg.Primary != "" {
		go f.pollPrimary(ctx)
	}
	go f.sweepLeases(ctx)
	f.checker.Run(ctx, f.cfg.CheckInterval)
}

// runCtx returns the Run context (Background before Run is called) —
// join-triggered immediate probes hang off it, not the join request's
// own context, so they outlive the announce round-trip.
func (f *Front) runCtx() context.Context {
	f.ctxMu.Lock()
	defer f.ctxMu.Unlock()
	if f.ctx != nil {
		return f.ctx
	}
	return context.Background()
}

// sweepLeases evicts lapsed leases on the probe cadence.
func (f *Front) sweepLeases(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(f.cfg.CheckInterval):
		}
		if evicted := f.members.Sweep(); len(evicted) > 0 {
			for _, r := range evicted {
				log.Printf("fleet: lease lapsed, evicted %s (%s)", r.Name, r.URL)
			}
		}
		f.maybePromote()
	}
}

// maybePromote keeps the source role filled. While the role holder is
// a healthy member, the front just tracks its probed generation as the
// fleet's newest published truth. When the role is vacant (lease
// lapsed, graceful leave) or the holder has failed FailAfter
// consecutive probes, the healthy member holding the newest generation
// is promoted under the next epoch — ties broken on the smallest name,
// so every observer of the same snapshot elects the same member. The
// observed primary generation is reset to the new source's: the dead
// source's unshipped generations are gone, and a staleness bound
// anchored to them would strand the whole fleet as "too stale".
func (f *Front) maybePromote() {
	if !f.cfg.Promote {
		return
	}
	snap := f.checker.Snapshot()
	src := f.members.Source()
	if src.Name != "" && f.members.Has(src.Name) {
		for _, h := range snap {
			if h.Name != src.Name {
				continue
			}
			if h.Healthy {
				if h.Generation > 0 {
					f.primaryGen.Store(h.Generation)
				}
				return
			}
			break // held but failing probes: elect a replacement
		}
	}
	var best *ReplicaHealth
	for i := range snap {
		h := &snap[i]
		if !h.Healthy || h.Generation <= 0 || h.Name == src.Name {
			continue
		}
		if best == nil || h.Generation > best.Generation ||
			(h.Generation == best.Generation && h.Name < best.Name) {
			best = h
		}
	}
	if best == nil {
		return // nobody verified to hold a generation; stay vacant
	}
	if info, ok := f.members.Promote(best.Name); ok {
		f.primaryGen.Store(best.Generation)
		log.Printf("fleet: promoted %s (%s) to source at epoch %d, generation %d",
			best.Name, best.URL, info.Epoch, best.Generation)
	}
}

// PrimaryGeneration is the newest generation id observed at the
// primary (0 before the first successful poll or with no primary).
func (f *Front) PrimaryGeneration() int64 { return f.primaryGen.Load() }

func (f *Front) pollPrimary(ctx context.Context) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Primary+shipPrefix+"latest", nil)
		if err == nil {
			if resp, err := f.cfg.Client.Do(req); err == nil {
				var v struct {
					ID int64 `json:"id"`
				}
				if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&v) == nil && v.ID > 0 {
					f.primaryGen.Store(v.ID)
				}
				resp.Body.Close()
			}
			// An unreachable primary keeps the last known generation:
			// nothing new can have been published by a primary that is
			// down, so the staleness bound keeps meaning "within K of
			// the newest anything a replica could have pulled" — and the
			// replicas keep serving their last installed generation.
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(f.cfg.CheckInterval):
		}
	}
}

// routable returns the healthy, fresh-enough members by name. The
// checker's probed set tracks membership exactly (see NewFront), so an
// evicted member cannot appear here.
func (f *Front) routable() map[string]Replica {
	primary := f.primaryGen.Load()
	out := make(map[string]Replica)
	for _, h := range f.checker.Snapshot() {
		if !h.Healthy {
			continue
		}
		if primary > 0 && h.Generation > 0 && primary-h.Generation > f.cfg.StalenessBound {
			continue // too stale to serve: beyond the staleness budget
		}
		out[h.Name] = Replica{Name: h.Name, URL: h.URL}
	}
	return out
}

// candidates is the failover order for one key: the current ring's
// walk from the key's owner, restricted to routable members.
func (f *Front) candidates(key string) []Replica {
	routable := f.routable()
	var seq []Replica
	for _, name := range f.members.Ring().Seq(key) {
		if r, ok := routable[name]; ok {
			seq = append(seq, r)
		}
	}
	return seq
}

// shardKey derives the routing key: per-licensee when the query names
// one (so a licensee's snapshot memos concentrate on one replica's
// engine), else the full path+query (so identical queries still reuse
// one replica's memo).
func shardKey(r *http.Request) string {
	if l := r.URL.Query().Get("licensee"); l != "" {
		return "licensee:" + l
	}
	return r.URL.Path + "?" + r.URL.RawQuery
}

// Handler returns the front tier's HTTP surface: /v1/* proxied to the
// fleet, the membership control surface under /v1/fleet/, plus the
// front's own health endpoints.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", f.handleReadyz)
	mux.HandleFunc("/statsz", f.handleStatsz)
	mux.HandleFunc(fleetPrefix, f.handleFleet)
	mux.HandleFunc("/v1/", f.handleProxy)
	return mux
}

// io1MB bounds a control-surface request body read.
func io1MB(r *http.Request) io.Reader { return io.LimitReader(r.Body, 1<<20) }

// bufferedResp is one fully-read replica response: buffering decouples
// failover from streaming (a replica killed mid-body is a retry, never
// a truncated client response).
type bufferedResp struct {
	status  int
	header  http.Header
	body    []byte
	replica string
}

func (f *Front) handleProxy(w http.ResponseWriter, r *http.Request) {
	f.counters.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "fleet front proxies idempotent reads only", http.StatusMethodNotAllowed)
		return
	}
	cands := f.candidates(shardKey(r))
	if len(cands) == 0 {
		f.shed(w, "no healthy replica within the staleness bound")
		return
	}
	// The quorum floor: a rump fleet below MinHealthy sheds rather
	// than absorbing the whole fleet's load — a partition that leaves
	// one straggler serving everyone would just melt it down and turn
	// a partial outage into a total one.
	if healthy := len(f.routable()); healthy < f.cfg.MinHealthy {
		f.shed(w, fmt.Sprintf("healthy members %d below floor %d", healthy, f.cfg.MinHealthy))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), f.cfg.RequestTimeout)
	defer cancel()

	// Bulk segment fetches fail over but never hedge (unless opted in):
	// racing two replicas on a multi-megabyte body duplicates the very
	// transfer bytes the delta-shipping path exists to save.
	hedge := f.cfg.HedgeBulk || !strings.HasPrefix(r.URL.Path, shipPrefix+"segment/")
	resp := f.hedgedFetch(ctx, cands, r.URL.RequestURI(), r.Header, hedge)
	if resp == nil {
		f.shed(w, "all replicas failed")
		return
	}
	for k, vs := range resp.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Fleet-Replica", resp.replica)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// hedgedFetch tries candidates in order. One attempt runs at a time
// until HedgeAfter elapses without an answer — then the next candidate
// is raced against it (tail-latency hedging; the reads are idempotent
// by construction; hedge=false, used for bulk transfers, disables the
// timer so failover stays strictly sequential). An attempt that fails
// at transport level or answers 5xx/timeout triggers immediate
// failover to the next candidate. The first passable answer wins and
// cancels every losing attempt still in flight (the shared context is
// torn down on return, reeling in hedges so a slow loser never holds a
// replica slot after the race is decided); nil means everything
// failed.
func (f *Front) hedgedFetch(ctx context.Context, cands []Replica, uri string, hdr http.Header, hedge bool) *bufferedResp {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in the losing attempts

	results := make(chan *bufferedResp, len(cands))
	next := 0
	inFlight := 0
	launch := func() {
		if next >= len(cands) {
			return
		}
		rep := cands[next]
		next++
		inFlight++
		f.counters.proxied.Add(1)
		go func() { results <- f.attempt(ctx, rep, uri, hdr) }()
	}
	launch()

	var hedgeC <-chan time.Time
	if hedge {
		t := time.NewTimer(f.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	for inFlight > 0 {
		select {
		case res := <-results:
			inFlight--
			if res != nil && passable(res.status) {
				return res
			}
			// Transport failure or 5xx: fail over immediately.
			if next < len(cands) {
				f.counters.retried.Add(1)
				launch()
			}
		case <-hedgeC:
			if next < len(cands) {
				f.counters.hedged.Add(1)
				launch()
			}
		case <-ctx.Done():
			return nil
		}
	}
	return nil
}

// hopByHop are the headers a proxy must not forward (RFC 7230 §6.1);
// everything else from the client request — notably Range and
// If-Range, which a resuming puller behind the front depends on —
// passes through to the replica.
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Proxy-Connection":    true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

// passable reports whether a replica's status is returned to the
// client as-is. 2xx–4xx are real answers; a replica's own 503 shed,
// 5xx, and the replica-deadline 504 all mean "try another replica" —
// a saturated or broken replica is precisely when a sibling should
// absorb the read. When every candidate is exhausted the front sheds
// with its own 503 + jittered Retry-After, so the client-visible error
// surface stays exactly one status wide.
func passable(status int) bool { return status < 500 }

func (f *Front) attempt(ctx context.Context, rep Replica, uri string, hdr http.Header) *bufferedResp {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.URL+uri, nil)
	if err != nil {
		return nil
	}
	for k, vs := range hdr {
		if hopByHop[http.CanonicalHeaderKey(k)] || k == "Host" {
			continue
		}
		req.Header[http.CanonicalHeaderKey(k)] = vs
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShipBytes))
	if err != nil {
		// Killed mid-body: the buffered read makes this a clean retry.
		return nil
	}
	return &bufferedResp{status: resp.StatusCode, header: resp.Header, body: body, replica: rep.Name}
}

// shed is the front's own 503: jittered Retry-After, JSON error body.
func (f *Front) shed(w http.ResponseWriter, msg string) {
	f.counters.shed.Add(1)
	w.Header().Set("Retry-After", serve.RetryAfterJitter(f.cfg.RetryAfter))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

// FrontStats is the /statsz payload.
type FrontStats struct {
	UptimeSeconds     float64         `json:"uptime_seconds"`
	Requests          int64           `json:"requests"`
	Proxied           int64           `json:"proxied"`
	Retried           int64           `json:"retried"`
	Hedged            int64           `json:"hedged"`
	Shed              int64           `json:"shed"`
	PrimaryGeneration int64           `json:"primary_generation"`
	StalenessBound    int64           `json:"staleness_bound"`
	MinHealthy        int             `json:"min_healthy"`
	Replicas          []ReplicaHealth `json:"replicas"`
	Membership        MembershipStats `json:"membership"`
}

// Stats snapshots the front's counters and fleet view.
func (f *Front) Stats() FrontStats {
	return FrontStats{
		UptimeSeconds:     time.Since(f.started).Seconds(),
		Requests:          f.counters.requests.Load(),
		Proxied:           f.counters.proxied.Load(),
		Retried:           f.counters.retried.Load(),
		Hedged:            f.counters.hedged.Load(),
		Shed:              f.counters.shed.Load(),
		PrimaryGeneration: f.primaryGen.Load(),
		StalenessBound:    f.cfg.StalenessBound,
		MinHealthy:        f.cfg.MinHealthy,
		Replicas:          f.checker.Snapshot(),
		Membership:        f.members.Stats(),
	}
}

func (f *Front) handleReadyz(w http.ResponseWriter, r *http.Request) {
	routable := f.routable()
	body := struct {
		Ready             bool            `json:"ready"`
		Routable          int             `json:"routable"`
		Members           int             `json:"members"`
		MinHealthy        int             `json:"min_healthy"`
		PrimaryGeneration int64           `json:"primary_generation"`
		Replicas          []ReplicaHealth `json:"replicas"`
	}{
		Ready:             len(routable) >= f.cfg.MinHealthy,
		Routable:          len(routable),
		Members:           f.members.Len(),
		MinHealthy:        f.cfg.MinHealthy,
		PrimaryGeneration: f.primaryGen.Load(),
		Replicas:          f.checker.Snapshot(),
	}
	w.Header().Set("Content-Type", "application/json")
	if !body.Ready {
		w.Header().Set("Retry-After", serve.RetryAfterJitter(f.cfg.RetryAfter))
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(body); err != nil {
		log.Printf("fleet: encoding readyz: %v", err)
	}
}

func (f *Front) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(f.Stats())
}
