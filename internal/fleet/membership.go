package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Membership is the front tier's self-healing member registry: seeded
// (permanent) replicas from static configuration plus lease-holding
// replicas that announced themselves. Every membership change — join,
// graceful leave, lease-lapse eviction — rebuilds the consistent-hash
// ring atomically, so a reader that loads the ring after an eviction
// returns can never be handed the evicted member as a candidate.
//
// Two clocks could disagree about a lease; only one is used. A lease
// expires at (front receipt time + TTL) on the front's own clock. The
// announce payload's sent_at is recorded as observed skew for the
// member table and nothing else, which is what makes the subsystem
// indifferent to the chaos campaigns' clock-skew faults: a replica
// reporting timestamps hours off still renews on schedule as measured
// here.
type Membership struct {
	ttl    time.Duration
	vnodes int
	now    func() time.Time
	// onChange runs under the membership lock on every member-set
	// change, with the members added and removed — the front wires the
	// health checker through it so the probed set and the ring can
	// never disagree about who is in the fleet.
	onChange func(added, removed []Replica)

	mu      sync.Mutex
	members map[string]*member
	// source is the fleet's current replication origin under a monotone
	// epoch fence. The epoch only ever increases — it survives the
	// source leaving or lapsing (the role goes vacant, Name/URL empty,
	// Epoch kept), so a promotion after an outage always outranks
	// anything the dead source's era produced.
	source SourceInfo
	ring   atomic.Pointer[Ring]

	counters struct {
		joins     atomic.Int64 // first-time admissions
		renews    atomic.Int64 // lease renewals
		leaves    atomic.Int64 // graceful leaves
		evictions atomic.Int64 // lease-lapse evictions
		rejects   atomic.Int64 // malformed/conflicting join attempts
	}
	maxSkew atomic.Int64 // largest |observed skew| in nanoseconds
}

// member is one fleet member's registry entry.
type member struct {
	Replica
	permanent bool // seeded by configuration; never evicted by lease
	joinedAt  time.Time
	renewedAt time.Time
	expires   time.Time // zero for permanent members
	// generation/digest/skew are announce-payload diagnostics.
	generation int64
	digest     string
	skew       time.Duration
}

// SourceInfo names the member currently holding the fleet's source
// role — the replication origin every puller re-targets to — fenced by
// a monotone epoch. A vacant role has empty Name/URL but keeps the
// epoch; anything announcing itself under a lower epoch is stale by
// definition and must be refused.
type SourceInfo struct {
	Name  string `json:"name,omitempty"`
	URL   string `json:"url,omitempty"`
	Epoch int64  `json:"epoch"`
}

// NewMembership seeds the registry with the permanent replicas. ttl <=
// 0 means 3s; vnodes <= 0 means the ring default.
func NewMembership(seed []Replica, ttl time.Duration, vnodes int, onChange func(added, removed []Replica)) *Membership {
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	m := &Membership{
		ttl:      ttl,
		vnodes:   vnodes,
		now:      time.Now,
		onChange: onChange,
		members:  make(map[string]*member, len(seed)),
	}
	for _, r := range seed {
		m.members[r.Name] = &member{Replica: r, permanent: true, joinedAt: m.now()}
	}
	m.rebuildLocked()
	return m
}

// TTL returns the lease TTL granted to joining members.
func (m *Membership) TTL() time.Duration { return m.ttl }

// Ring returns the current consistent-hash ring over the member set.
// Lock-free: the proxy hot path loads one pointer.
func (m *Membership) Ring() *Ring { return m.ring.Load() }

// rebuildLocked rebuilds the ring from the current member set. Caller
// holds mu.
func (m *Membership) rebuildLocked() {
	names := make([]string, 0, len(m.members))
	for name := range m.members {
		names = append(names, name)
	}
	m.ring.Store(NewRing(names, m.vnodes))
}

// Join admits a member or renews its lease, granting ttl from the
// front's clock. A name collision with a different URL is rejected —
// two processes fighting over one member name is an operator error,
// not churn (the same name re-announcing from a new URL after its old
// lease lapsed joins cleanly, which is how a restarted replica on a
// fresh port rejoins).
func (m *Membership) Join(req joinRequest) (joinResponse, error) {
	if req.Name == "" || req.URL == "" {
		m.counters.rejects.Add(1)
		return joinResponse{}, fmt.Errorf("join needs name and url")
	}
	if u, err := url.Parse(req.URL); err != nil || u.Scheme == "" || u.Host == "" {
		m.counters.rejects.Add(1)
		return joinResponse{}, fmt.Errorf("join url %q is not absolute", req.URL)
	}
	now := m.now()
	skew := m.observeSkew(req.SentAt, now)

	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[req.Name]
	switch {
	case ok && mem.URL != req.URL:
		m.counters.rejects.Add(1)
		return joinResponse{}, fmt.Errorf("member %q already registered at %s", req.Name, mem.URL)
	case ok:
		mem.renewedAt = now
		mem.generation, mem.digest, mem.skew = req.Generation, req.Digest, skew
		if !mem.permanent {
			mem.expires = now.Add(m.ttl)
		}
		m.counters.renews.Add(1)
	default:
		mem = &member{
			Replica:    Replica{Name: req.Name, URL: req.URL},
			joinedAt:   now,
			renewedAt:  now,
			expires:    now.Add(m.ttl),
			generation: req.Generation,
			digest:     req.Digest,
			skew:       skew,
		}
		m.members[req.Name] = mem
		m.rebuildLocked()
		m.counters.joins.Add(1)
		if m.onChange != nil {
			m.onChange([]Replica{mem.Replica}, nil)
		}
	}
	// The grant carries the current source role: a rejoining stale
	// primary learns in the same round-trip that the fleet moved on
	// under a higher epoch and that it is a plain replica now.
	return joinResponse{
		TTLMillis:       m.ttl.Milliseconds(),
		HeartbeatMillis: (m.ttl / 3).Milliseconds(),
		Source:          m.source,
	}, nil
}

// Source returns the current source role holder (possibly vacant) and
// its epoch.
func (m *Membership) Source() SourceInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.source
}

// Promote hands the source role to an existing member under the next
// epoch. Promoting the member that already holds the role is a no-op
// (no epoch burn); promoting a non-member fails — the elector must
// pick from the registry it can actually route to. Returns the
// resulting SourceInfo and whether a new epoch was opened.
func (m *Membership) Promote(name string) (SourceInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[name]
	if !ok {
		return m.source, false
	}
	if m.source.Name == name {
		return m.source, false
	}
	m.source = SourceInfo{Name: name, URL: mem.URL, Epoch: m.source.Epoch + 1}
	return m.source, true
}

// vacateSourceLocked empties the role (keeping the epoch) if name held
// it. Caller holds mu.
func (m *Membership) vacateSourceLocked(name string) {
	if m.source.Name == name {
		m.source.Name, m.source.URL = "", ""
	}
}

// observeSkew records |sent_at - now| for the diagnostics surface. A
// missing or malformed timestamp is skew zero — never an error; the
// lease must not depend on the member's clock being parseable, let
// alone right.
func (m *Membership) observeSkew(sentAt string, now time.Time) time.Duration {
	if sentAt == "" {
		return 0
	}
	t, err := time.Parse(time.RFC3339Nano, sentAt)
	if err != nil {
		return 0
	}
	skew := t.Sub(now)
	abs := skew
	if abs < 0 {
		abs = -abs
	}
	for {
		cur := m.maxSkew.Load()
		if int64(abs) <= cur || m.maxSkew.CompareAndSwap(cur, int64(abs)) {
			break
		}
	}
	return skew
}

// Leave evicts a member immediately (graceful shutdown). Unknown
// names are a no-op: a leave racing a lease-lapse eviction is fine.
// Permanent members cannot leave — they are configuration.
func (m *Membership) Leave(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[name]
	if !ok || mem.permanent {
		return
	}
	delete(m.members, name)
	m.vacateSourceLocked(name)
	m.rebuildLocked()
	m.counters.leaves.Add(1)
	if m.onChange != nil {
		m.onChange(nil, []Replica{mem.Replica})
	}
}

// Sweep evicts every member whose lease has lapsed, returning the
// evicted replicas. The front runs it on the probe cadence; a lapsed
// lease is therefore detected within one sweep interval of the TTL.
func (m *Membership) Sweep() []Replica {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	var evicted []Replica
	for name, mem := range m.members {
		if !mem.permanent && now.After(mem.expires) {
			delete(m.members, name)
			m.vacateSourceLocked(name)
			evicted = append(evicted, mem.Replica)
		}
	}
	if len(evicted) > 0 {
		m.rebuildLocked()
		m.counters.evictions.Add(int64(len(evicted)))
		if m.onChange != nil {
			m.onChange(nil, evicted)
		}
	}
	return evicted
}

// Has reports whether name is currently a member.
func (m *Membership) Has(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.members[name]
	return ok
}

// Len returns the current member count.
func (m *Membership) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.members)
}

// MemberInfo is one member's row in the membership table.
type MemberInfo struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	Permanent bool   `json:"permanent,omitempty"`
	JoinedAt  string `json:"joined_at"`
	RenewedAt string `json:"renewed_at,omitempty"`
	// LeaseSeconds is time left on the lease (absent for permanent
	// members; negative never appears — lapsed members are swept).
	LeaseSeconds float64 `json:"lease_seconds,omitempty"`
	// Generation/Digest/SkewSeconds are announce-payload diagnostics.
	Generation  int64   `json:"generation,omitempty"`
	Digest      string  `json:"digest,omitempty"`
	SkewSeconds float64 `json:"skew_seconds,omitempty"`
}

// MembershipStats is the /statsz view of the registry.
type MembershipStats struct {
	TTLSeconds     float64      `json:"ttl_seconds"`
	Members        []MemberInfo `json:"members"`
	Joins          int64        `json:"joins"`
	Renews         int64        `json:"renews"`
	Leaves         int64        `json:"leaves"`
	Evictions      int64        `json:"evictions"`
	Rejects        int64        `json:"rejects"`
	MaxSkewSeconds float64      `json:"max_skew_seconds,omitempty"`
	Source         SourceInfo   `json:"source"`
}

// Stats snapshots the registry.
func (m *Membership) Stats() MembershipStats {
	now := m.now()
	m.mu.Lock()
	members := make([]MemberInfo, 0, len(m.members))
	for _, mem := range m.members {
		info := MemberInfo{
			Name:      mem.Name,
			URL:       mem.URL,
			Permanent: mem.permanent,
			JoinedAt:  mem.joinedAt.UTC().Format(time.RFC3339),
		}
		if !mem.renewedAt.IsZero() {
			info.RenewedAt = mem.renewedAt.UTC().Format(time.RFC3339)
		}
		if !mem.permanent {
			info.LeaseSeconds = mem.expires.Sub(now).Seconds()
		}
		info.Generation, info.Digest = mem.generation, mem.digest
		info.SkewSeconds = mem.skew.Seconds()
		members = append(members, info)
	}
	source := m.source
	m.mu.Unlock()
	return MembershipStats{
		TTLSeconds:     m.ttl.Seconds(),
		Source:         source,
		Members:        members,
		Joins:          m.counters.joins.Load(),
		Renews:         m.counters.renews.Load(),
		Leaves:         m.counters.leaves.Load(),
		Evictions:      m.counters.evictions.Load(),
		Rejects:        m.counters.rejects.Load(),
		MaxSkewSeconds: time.Duration(m.maxSkew.Load()).Seconds(),
	}
}

// handleFleet serves the membership control surface on the front tier:
//
//	POST /v1/fleet/join   announce/renew; responds with the lease grant
//	POST /v1/fleet/leave  graceful immediate eviction
//	GET  /v1/fleet/members  the member table
//	GET  /v1/fleet/source   the current source role + epoch fence
func (f *Front) handleFleet(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == fleetPrefix+"join" && r.Method == http.MethodPost:
		var req joinRequest
		if err := json.NewDecoder(io1MB(r)).Decode(&req); err != nil {
			http.Error(w, "bad join body: "+err.Error(), http.StatusBadRequest)
			return
		}
		grant, err := f.members.Join(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		// A fresh joiner becomes routable after its first good probe;
		// probe it now so that is one round-trip away, not one interval.
		if h := f.checker; h != nil {
			go h.ProbeNow(f.runCtx(), Replica{Name: req.Name, URL: req.URL})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(grant)
	case r.URL.Path == fleetPrefix+"leave" && r.Method == http.MethodPost:
		var req leaveRequest
		if err := json.NewDecoder(io1MB(r)).Decode(&req); err != nil {
			http.Error(w, "bad leave body: "+err.Error(), http.StatusBadRequest)
			return
		}
		f.members.Leave(req.Name)
		w.WriteHeader(http.StatusOK)
	case r.URL.Path == fleetPrefix+"members" && r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(f.members.Stats())
	case r.URL.Path == fleetPrefix+"source" && r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(f.members.Source())
	default:
		http.NotFound(w, r)
	}
}
