package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ReplicaHealth is one replica's last observed state.
type ReplicaHealth struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Generation is the replica's live store generation (0 unknown);
	// Digest its corpus digest; AgeSeconds how long that generation
	// has been live there. All read straight off the replica's
	// /readyz — the health probe doubles as the staleness probe.
	Generation int64   `json:"generation"`
	Digest     string  `json:"digest,omitempty"`
	AgeSeconds float64 `json:"age_seconds"`
	LastError  string  `json:"last_error,omitempty"`

	fails int // consecutive probe failures
}

// readyzProbe is the slice of the serve /readyz payload the fleet
// reads. Probing JSON instead of linking the store keeps the front
// tier deployable against any replica build.
type readyzProbe struct {
	Ready      bool `json:"ready"`
	Generation *struct {
		StoreGeneration int64   `json:"store_generation"`
		CorpusSHA256    string  `json:"corpus_sha256"`
		AgeSeconds      float64 `json:"age_seconds"`
	} `json:"generation"`
}

// Checker polls replica /readyz endpoints and maintains health +
// generation state. A replica is marked unhealthy after failAfter
// consecutive probe failures (or one not-ready answer) and healthy
// again after a single good probe — fail slow, recover fast is wrong
// for serving; here a kill must be noticed within one probe interval
// while a single dropped probe must not eject a healthy replica.
type Checker struct {
	replicas  []Replica
	client    *http.Client
	failAfter int

	mu    sync.Mutex
	state map[string]*ReplicaHealth
}

// NewChecker builds a checker over the replica set. failAfter <= 0
// means 2 consecutive failures.
func NewChecker(replicas []Replica, client *http.Client, failAfter int) *Checker {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	if failAfter <= 0 {
		failAfter = 2
	}
	c := &Checker{replicas: replicas, client: client, failAfter: failAfter,
		state: make(map[string]*ReplicaHealth, len(replicas))}
	for _, r := range replicas {
		// Replicas start unhealthy until the first good probe: routing
		// to an address nobody has ever answered on is a guess.
		c.state[r.Name] = &ReplicaHealth{Name: r.Name, URL: r.URL}
	}
	return c
}

// Run probes every replica each interval until ctx is done. The first
// sweep runs immediately so a freshly started front tier begins
// routing within one probe round-trip, not one interval.
func (c *Checker) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	for {
		c.CheckOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

// CheckOnce probes every replica concurrently.
func (c *Checker) CheckOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range c.replicas {
		wg.Add(1)
		go func(r Replica) {
			defer wg.Done()
			probe, err := c.probe(ctx, r)
			c.record(r.Name, probe, err)
		}(r)
	}
	wg.Wait()
}

func (c *Checker) probe(ctx context.Context, r Replica) (*readyzProbe, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.URL+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var p readyzProbe
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("readyz from %s: %w", r.URL, err)
	}
	if resp.StatusCode != http.StatusOK || !p.Ready {
		return &p, fmt.Errorf("readyz from %s: status %d ready=%v", r.URL, resp.StatusCode, p.Ready)
	}
	return &p, nil
}

func (c *Checker) record(name string, probe *readyzProbe, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state[name]
	if err != nil {
		st.fails++
		st.LastError = err.Error()
		if st.fails >= c.failAfter {
			st.Healthy = false
		}
		return
	}
	st.fails = 0
	st.Healthy = true
	st.LastError = ""
	if probe.Generation != nil {
		st.Generation = probe.Generation.StoreGeneration
		st.Digest = probe.Generation.CorpusSHA256
		st.AgeSeconds = probe.Generation.AgeSeconds
	}
}

// Snapshot returns a copy of every replica's health, in the configured
// replica order.
func (c *Checker) Snapshot() []ReplicaHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ReplicaHealth, 0, len(c.replicas))
	for _, r := range c.replicas {
		out = append(out, *c.state[r.Name])
	}
	return out
}
