package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ReplicaHealth is one replica's last observed state.
type ReplicaHealth struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Generation is the replica's live store generation (0 unknown);
	// Digest its corpus digest; AgeSeconds how long that generation
	// has been live there. All read straight off the replica's
	// /readyz — the health probe doubles as the staleness probe.
	Generation int64   `json:"generation"`
	Digest     string  `json:"digest,omitempty"`
	AgeSeconds float64 `json:"age_seconds"`
	LastError  string  `json:"last_error,omitempty"`

	fails int // consecutive probe failures
}

// readyzProbe is the slice of the serve /readyz payload the fleet
// reads. Probing JSON instead of linking the store keeps the front
// tier deployable against any replica build.
type readyzProbe struct {
	Ready      bool `json:"ready"`
	Generation *struct {
		StoreGeneration int64   `json:"store_generation"`
		CorpusSHA256    string  `json:"corpus_sha256"`
		AgeSeconds      float64 `json:"age_seconds"`
	} `json:"generation"`
}

// Checker polls replica /readyz endpoints and maintains health +
// generation state. A replica is marked unhealthy after failAfter
// consecutive probe failures (or one not-ready answer) and healthy
// again after a single good probe — fail slow, recover fast is wrong
// for serving; here a kill must be noticed within one probe interval
// while a single dropped probe must not eject a healthy replica.
//
// The probed set is dynamic: the membership layer Adds a replica when
// its lease is granted and Removes it on eviction, so the checker
// never wastes probes on — and routable() never consults — a member
// the fleet has already let go.
type Checker struct {
	client       *http.Client
	failAfter    int
	probeTimeout time.Duration

	mu    sync.Mutex
	order []string // configured/insertion order, for stable Snapshot
	state map[string]*ReplicaHealth
}

// NewChecker builds a checker over the initial replica set. failAfter
// <= 0 means 2 consecutive failures.
func NewChecker(replicas []Replica, client *http.Client, failAfter int) *Checker {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	if failAfter <= 0 {
		failAfter = 2
	}
	c := &Checker{client: client, failAfter: failAfter,
		state: make(map[string]*ReplicaHealth, len(replicas))}
	for _, r := range replicas {
		c.Add(r)
	}
	return c
}

// Add registers a replica with the checker. Like a configured replica,
// it starts unhealthy until its first good probe: routing to an
// address nobody has ever answered on is a guess. Re-adding an
// existing name updates its URL and resets its probe history (a
// rejoined member may be a fresh process on the same name).
func (c *Checker) Add(r Replica) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.state[r.Name]; !ok {
		c.order = append(c.order, r.Name)
	}
	c.state[r.Name] = &ReplicaHealth{Name: r.Name, URL: r.URL}
}

// Remove forgets a replica. Subsequent Snapshots exclude it; a probe
// already in flight for it is discarded when it lands.
func (c *Checker) Remove(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.state[name]; !ok {
		return
	}
	delete(c.state, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Run probes every replica each interval until ctx is done. The first
// sweep runs immediately so a freshly started front tier begins
// routing within one probe round-trip, not one interval. Each probe
// gets its own timeout derived from the interval (see CheckOnce), so
// one hung replica delays a sweep by at most that bound instead of
// pinning the loop on the HTTP client's (much longer) timeout.
func (c *Checker) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	c.mu.Lock()
	if c.probeTimeout <= 0 {
		c.probeTimeout = probeTimeoutFor(interval)
	}
	c.mu.Unlock()
	for {
		c.CheckOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

// probeTimeoutFor derives the per-probe deadline from the probe
// cadence: two intervals of grace (a healthy replica under load may
// straddle one), clamped so very tight test cadences still allow a
// real round-trip and very lazy ones don't reintroduce the hang.
func probeTimeoutFor(interval time.Duration) time.Duration {
	t := 2 * interval
	if t < 100*time.Millisecond {
		t = 100 * time.Millisecond
	}
	if t > 2*time.Second {
		t = 2 * time.Second
	}
	return t
}

// CheckOnce probes every currently registered replica concurrently,
// each under its own per-probe timeout.
func (c *Checker) CheckOnce(ctx context.Context) {
	c.mu.Lock()
	replicas := make([]Replica, 0, len(c.state))
	for _, name := range c.order {
		st := c.state[name]
		replicas = append(replicas, Replica{Name: st.Name, URL: st.URL})
	}
	timeout := c.probeTimeout
	c.mu.Unlock()
	if timeout <= 0 {
		timeout = probeTimeoutFor(0)
	}

	var wg sync.WaitGroup
	for _, r := range replicas {
		wg.Add(1)
		go func(r Replica) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			probe, err := c.probe(pctx, r)
			c.record(r.Name, probe, err)
		}(r)
	}
	wg.Wait()
}

// ProbeNow probes one replica immediately, outside the sweep cadence —
// the membership layer calls it on a fresh join so the member becomes
// routable within one round-trip instead of one probe interval.
func (c *Checker) ProbeNow(ctx context.Context, r Replica) {
	c.mu.Lock()
	timeout := c.probeTimeout
	c.mu.Unlock()
	if timeout <= 0 {
		timeout = probeTimeoutFor(0)
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	probe, err := c.probe(pctx, r)
	c.record(r.Name, probe, err)
}

func (c *Checker) probe(ctx context.Context, r Replica) (*readyzProbe, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.URL+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var p readyzProbe
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("readyz from %s: %w", r.URL, err)
	}
	if resp.StatusCode != http.StatusOK || !p.Ready {
		return &p, fmt.Errorf("readyz from %s: status %d ready=%v", r.URL, resp.StatusCode, p.Ready)
	}
	return &p, nil
}

func (c *Checker) record(name string, probe *readyzProbe, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.state[name]
	if !ok {
		return // removed while the probe was in flight
	}
	if err != nil {
		st.fails++
		st.LastError = err.Error()
		if st.fails >= c.failAfter {
			st.Healthy = false
		}
		return
	}
	st.fails = 0
	st.Healthy = true
	st.LastError = ""
	if probe.Generation != nil {
		st.Generation = probe.Generation.StoreGeneration
		st.Digest = probe.Generation.CorpusSHA256
		st.AgeSeconds = probe.Generation.AgeSeconds
	}
}

// Snapshot returns a copy of every registered replica's health, in
// registration order.
func (c *Checker) Snapshot() []ReplicaHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ReplicaHealth, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, *c.state[name])
	}
	return out
}
