package design

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
	"hftnetview/internal/units"
)

// corridorSites builds a candidate field along CME→NY4: a spine of
// near-geodesic sites every ~40 km plus laterally offset extras.
func corridorSites(extrasPerSpine int) []Site {
	rng := rand.New(rand.NewPCG(5, 5))
	a, b := sites.CME.Location, sites.NY4.Location
	brg := geo.InitialBearing(a, b)
	var out []Site
	out = append(out, Site{Point: a, TowerCost: 1})
	n := 30
	for i := 1; i < n; i++ {
		frac := float64(i) / float64(n)
		base := geo.Interpolate(a, b, frac)
		out = append(out, Site{
			Point:     geo.Offset(base, brg, 0, (rng.Float64()-0.5)*2000),
			TowerCost: 1,
		})
		for e := 0; e < extrasPerSpine; e++ {
			out = append(out, Site{
				Point:     geo.Offset(base, brg, 0, 4000+6000*rng.Float64()),
				TowerCost: 1,
			})
		}
	}
	out = append(out, Site{Point: b, TowerCost: 1})
	return out
}

func baseProblem(budget float64, extras int) Problem {
	cands := corridorSites(extras)
	return Problem{
		Src: 0, Dst: len(cands) - 1,
		Candidates:   cands,
		Cost:         DefaultCostModel(),
		Budget:       budget,
		StretchBound: 1.05,
	}
}

func TestDesignMinimalBudgetIsChain(t *testing.T) {
	p := baseProblem(1e9, 0)
	n, err := Design(p)
	if err != nil {
		t.Fatal(err)
	}
	// The optimizer skips spine towers where the 100 km link cap allows
	// — §6's "longer links allow cheaper builds using fewer towers".
	if len(n.Chain) < 13 || len(n.Chain) > 31 {
		t.Errorf("chain towers = %d, want 13..31", len(n.Chain))
	}
	// Latency close to the c-bound.
	c := units.CLatency(geo.Distance(sites.CME.Location, sites.NY4.Location))
	if stretch := n.Latency.Stretch(c); stretch > 1.01 {
		t.Errorf("designed latency stretch = %v, want < 1.01", stretch)
	}
	if n.Chain[0] != p.Src || n.Chain[len(n.Chain)-1] != p.Dst {
		t.Error("chain endpoints wrong")
	}
}

func TestDesignRespectsBudget(t *testing.T) {
	p := baseProblem(45, 2)
	n, err := Design(p)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cost > p.Budget {
		t.Errorf("cost %.2f exceeds budget %.2f", n.Cost, p.Budget)
	}
	// Impossible budget errors.
	p.Budget = 1
	if _, err := Design(p); err == nil {
		t.Error("sub-chain budget should fail")
	}
}

func TestDesignAPAGrowsWithBudget(t *testing.T) {
	// The §6 lesson: spend beyond the chain on redundancy and APA rises
	// while latency stays put.
	var prevAPA float64 = -1
	var chainLatency units.Latency
	for i, budget := range []float64{42, 50, 70, 100} {
		p := baseProblem(budget, 2)
		n, err := Design(p)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		apa := n.APA(p.Src, p.Dst, p.StretchBound)
		if math.IsNaN(apa) {
			t.Fatalf("budget %v: APA NaN", budget)
		}
		if apa < prevAPA-1e-9 {
			t.Errorf("APA fell when budget rose: %v -> %v at %v", prevAPA, apa, budget)
		}
		prevAPA = apa
		if i == 0 {
			chainLatency = n.Latency
		} else if n.Latency != chainLatency {
			t.Errorf("primary-path latency changed with budget: %v vs %v",
				n.Latency, chainLatency)
		}
	}
	if prevAPA <= 0.3 {
		t.Errorf("largest budget APA = %v, want substantial redundancy", prevAPA)
	}
}

func TestDesignAlternateLinksMarked(t *testing.T) {
	p := baseProblem(100, 2)
	n, err := Design(p)
	if err != nil {
		t.Fatal(err)
	}
	var primary, alternates int
	for _, l := range n.Links {
		if l.Alternate {
			alternates++
		} else {
			primary++
		}
	}
	if primary != len(n.Chain)-1 {
		t.Errorf("primary links = %d, want %d", primary, len(n.Chain)-1)
	}
	if alternates == 0 {
		t.Error("big budget bought no redundancy")
	}
}

func TestDesignLinkLengthCap(t *testing.T) {
	p := baseProblem(1e9, 0)
	n, err := Design(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range n.Links {
		if l.LengthM > p.Cost.MaxLinkKM*1000 {
			t.Errorf("link %d-%d is %.1f km, above the %v km cap",
				l.From, l.To, l.LengthM/1000, p.Cost.MaxLinkKM)
		}
	}
	// Sparse candidates with a tiny cap are infeasible.
	p.Cost.MaxLinkKM = 20
	if _, err := Design(p); err == nil {
		t.Error("20 km cap over 40 km spacing should be infeasible")
	}
}

func TestIncrementalSuperset(t *testing.T) {
	p := baseProblem(0, 2)
	stages, err := Incremental(p, []float64{42, 55, 75, 110})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("stages = %d", len(stages))
	}
	key := func(l Link) string {
		a, b := l.From, l.To
		if a > b {
			a, b = b, a
		}
		return fmt.Sprintf("%d-%d", a, b)
	}
	for i := 1; i < len(stages); i++ {
		prevLinks := map[string]bool{}
		for _, l := range stages[i-1].Links {
			prevLinks[key(l)] = true
		}
		for k := range prevLinks {
			found := false
			for _, l := range stages[i].Links {
				if key(l) == k {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("stage %d dropped link %s from stage %d — teardown!", i, k, i-1)
			}
		}
		if stages[i].Cost < stages[i-1].Cost {
			t.Errorf("cost fell between stages: %v -> %v", stages[i-1].Cost, stages[i].Cost)
		}
		if stages[i].Latency != stages[0].Latency {
			t.Errorf("stage %d latency changed", i)
		}
	}
	// Descending schedule rejected.
	if _, err := Incremental(p, []float64{75, 42}); err == nil {
		t.Error("descending schedule accepted")
	}
	if _, err := Incremental(p, nil); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestDesignValidation(t *testing.T) {
	cands := corridorSites(0)
	bad := []Problem{
		{Src: 0, Dst: 0, Candidates: cands, Cost: DefaultCostModel(), Budget: 100},
		{Src: -1, Dst: 1, Candidates: cands, Cost: DefaultCostModel(), Budget: 100},
		{Src: 0, Dst: 9999, Candidates: cands, Cost: DefaultCostModel(), Budget: 100},
	}
	for _, p := range bad {
		if _, err := Design(p); err == nil {
			t.Errorf("invalid problem accepted: %+v endpoints", p.Src)
		}
	}
}
