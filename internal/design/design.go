// Package design builds low-latency microwave networks from candidate
// tower sites under a budget — the cISP-style network design problem the
// paper relates to (§7), steered by its §6 lessons:
//
//   - engineer towards high APA using redundant links close to the
//     shortest path;
//   - longer links are cheaper (fewer towers) but less reliable;
//   - run the shortest path at high-capacity bands and the alternates at
//     lower, rain-robust frequencies.
//
// The designer works in two phases: a dynamic-programming pass picks the
// minimum-latency feasible chain between the endpoints, then the
// remaining budget buys redundancy links greedily by APA gain per
// dollar.
package design

import (
	"fmt"
	"math"
	"sort"

	"hftnetview/internal/geo"
	"hftnetview/internal/graph"
	"hftnetview/internal/units"
)

// Site is a candidate tower location.
type Site struct {
	Point geo.Point
	// TowerCost is the cost of acquiring/building the site.
	TowerCost float64
}

// CostModel prices a build.
type CostModel struct {
	// LinkCostPerKM prices radio links by length (antennas, licensing).
	LinkCostPerKM float64
	// MaxLinkKM is the longest link the radios support (the paper's
	// §2.2 screen uses 100 km as "too inefficient").
	MaxLinkKM float64
}

// DefaultCostModel prices towers at 1.0 and links at 0.02/km with the
// paper's 100 km ceiling; budgets are in the same arbitrary units.
func DefaultCostModel() CostModel {
	return CostModel{LinkCostPerKM: 0.02, MaxLinkKM: 100}
}

// Link is a designed hop.
type Link struct {
	From, To int // Site indices
	LengthM  float64
	// Alternate marks redundancy links (assigned to the low band per
	// §6's frequency lesson).
	Alternate bool
}

// Network is a designed build.
type Network struct {
	Sites []Site
	Links []Link
	// Chain is the site-index sequence of the primary path.
	Chain []int
	// Cost is the total spent (towers + links).
	Cost float64
	// Latency is the end-to-end one-way latency of the primary path,
	// endpoints included.
	Latency units.Latency
}

// Problem is one design instance.
type Problem struct {
	// Src and Dst index the endpoint sites within Candidates (they must
	// be part of the build).
	Src, Dst   int
	Candidates []Site
	Cost       CostModel
	Budget     float64
	// StretchBound is the APA latency budget relative to the c-latency
	// of the src–dst geodesic (the paper's 1.05).
	StretchBound float64
}

// Design solves the problem: a minimum-latency chain first, redundancy
// with the leftover budget. It errors when even the cheapest feasible
// chain exceeds the budget or no feasible chain exists.
func Design(p Problem) (*Network, error) {
	if p.Src == p.Dst || p.Src < 0 || p.Dst < 0 ||
		p.Src >= len(p.Candidates) || p.Dst >= len(p.Candidates) {
		return nil, fmt.Errorf("design: invalid endpoints %d, %d", p.Src, p.Dst)
	}
	if p.StretchBound <= 1 {
		p.StretchBound = 1.05
	}
	chain, err := bestChain(p)
	if err != nil {
		return nil, err
	}
	n := &Network{Sites: p.Candidates, Chain: chain}
	used := make(map[int]bool)
	for _, s := range chain {
		used[s] = true
		n.Cost += p.Candidates[s].TowerCost
	}
	var pathLen float64
	for i := 0; i+1 < len(chain); i++ {
		d := geo.Distance(p.Candidates[chain[i]].Point, p.Candidates[chain[i+1]].Point)
		pathLen += d
		n.Cost += d / 1000 * p.Cost.LinkCostPerKM
		n.Links = append(n.Links, Link{From: chain[i], To: chain[i+1], LengthM: d})
	}
	n.Latency = units.MicrowaveLatency(pathLen)
	if n.Cost > p.Budget {
		return nil, fmt.Errorf("design: cheapest chain costs %.2f, budget %.2f",
			n.Cost, p.Budget)
	}
	addRedundancy(p, n, used)
	return n, nil
}

// bestChain finds the minimum-latency src→dst chain over candidate
// sites with all links within MaxLinkKM, via Dijkstra on the feasibility
// graph. (Latency and link cost are both monotone in length, so the
// shortest-length chain is also the cheapest-link chain for its hop
// count; tower costs are handled by the budget check.)
func bestChain(p Problem) ([]int, error) {
	g := graph.New()
	ids := make([]graph.NodeID, len(p.Candidates))
	for i := range p.Candidates {
		ids[i] = g.EnsureNode(fmt.Sprintf("s%d", i))
	}
	maxM := p.Cost.MaxLinkKM * 1000
	for i := 0; i < len(p.Candidates); i++ {
		for j := i + 1; j < len(p.Candidates); j++ {
			d := geo.Distance(p.Candidates[i].Point, p.Candidates[j].Point)
			if d <= maxM {
				if _, err := g.AddEdge(ids[i], ids[j], d); err != nil {
					return nil, err
				}
			}
		}
	}
	path, ok := g.ShortestPath(ids[p.Src], ids[p.Dst])
	if !ok {
		return nil, fmt.Errorf("design: no feasible chain within %.0f km links",
			p.Cost.MaxLinkKM)
	}
	chain := make([]int, len(path.Nodes))
	for i, node := range path.Nodes {
		chain[i] = int(node)
	}
	return chain, nil
}

// addRedundancy spends the remaining budget on alternate links between
// non-adjacent chain towers (and unused nearby sites), picked greedily
// by APA gain per unit cost.
func addRedundancy(p Problem, n *Network, used map[int]bool) {
	type candidate struct {
		from, to int
		lengthM  float64
		cost     float64
	}
	var cands []candidate
	maxM := p.Cost.MaxLinkKM * 1000
	onChain := make(map[int]int) // site -> chain position
	for pos, s := range n.Chain {
		onChain[s] = pos
	}
	// Bypass links: chain[i] -> chain[i+2] (skip one tower), plus
	// detours through unused sites adjacent to the chain.
	for i := 0; i+2 < len(n.Chain); i++ {
		a, b := n.Chain[i], n.Chain[i+2]
		d := geo.Distance(p.Candidates[a].Point, p.Candidates[b].Point)
		if d <= maxM {
			cands = append(cands, candidate{a, b, d, d / 1000 * p.Cost.LinkCostPerKM})
		}
	}
	for s := range p.Candidates {
		if used[s] {
			continue
		}
		// A parallel relay: connect an unused site to two chain towers
		// it can see, forming a bypass of the span between them.
		var reach []int
		for _, c := range n.Chain {
			if geo.Distance(p.Candidates[s].Point, p.Candidates[c].Point) <= maxM {
				reach = append(reach, c)
			}
		}
		if len(reach) < 2 {
			continue
		}
		// Use the widest span this relay can bypass.
		sort.Slice(reach, func(i, j int) bool { return onChain[reach[i]] < onChain[reach[j]] })
		a, b := reach[0], reach[len(reach)-1]
		if onChain[b]-onChain[a] < 2 {
			continue
		}
		da := geo.Distance(p.Candidates[s].Point, p.Candidates[a].Point)
		db := geo.Distance(p.Candidates[s].Point, p.Candidates[b].Point)
		cost := p.Candidates[s].TowerCost + (da+db)/1000*p.Cost.LinkCostPerKM
		cands = append(cands, candidate{from: -s - 1, to: 0, lengthM: da + db, cost: cost})
		_ = b
	}
	// Greedy: cheapest redundancy first (APA gain per candidate is
	// roughly uniform — each bypass makes one more chain span failable —
	// so cost ordering maximizes count, and count drives APA).
	sort.Slice(cands, func(i, j int) bool { return cands[i].cost < cands[j].cost })
	for _, c := range cands {
		if n.Cost+c.cost > p.Budget {
			continue
		}
		if c.from < 0 {
			// Relay through unused site (-from-1): rebuild its two legs.
			s := -c.from - 1
			var reach []int
			for _, ch := range n.Chain {
				if geo.Distance(p.Candidates[s].Point, p.Candidates[ch].Point) <= maxM {
					reach = append(reach, ch)
				}
			}
			sort.Slice(reach, func(i, j int) bool { return onChain[reach[i]] < onChain[reach[j]] })
			a, b := reach[0], reach[len(reach)-1]
			used[s] = true
			n.Links = append(n.Links,
				Link{From: a, To: s, Alternate: true,
					LengthM: geo.Distance(p.Candidates[a].Point, p.Candidates[s].Point)},
				Link{From: s, To: b, Alternate: true,
					LengthM: geo.Distance(p.Candidates[s].Point, p.Candidates[b].Point)})
		} else {
			n.Links = append(n.Links, Link{From: c.from, To: c.to,
				LengthM: c.lengthM, Alternate: true})
		}
		n.Cost += c.cost
	}
}

// Incremental solves the problem at each budget of an ascending
// schedule — the paper's §7 note that "our longitudinal analysis may
// also help with considerations of incremental deployment". Because the
// chain is budget-independent and redundancy is bought greedily in a
// fixed cost order, each stage's build is a strict superset of the
// previous stage: nothing ever has to be torn down, matching how the
// real networks grew (§4).
func Incremental(p Problem, budgets []float64) ([]*Network, error) {
	if len(budgets) == 0 {
		return nil, fmt.Errorf("design: empty budget schedule")
	}
	var out []*Network
	prev := -math.MaxFloat64
	for _, b := range budgets {
		if b < prev {
			return nil, fmt.Errorf("design: budget schedule must be ascending")
		}
		prev = b
		stage := p
		stage.Budget = b
		n, err := Design(stage)
		if err != nil {
			return nil, fmt.Errorf("design: budget %v: %w", b, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// APA evaluates the designed network exactly as the paper evaluates real
// ones: the fraction of links whose removal keeps src–dst latency within
// stretchBound × the c-latency of the geodesic.
func (n *Network) APA(src, dst int, stretchBound float64) float64 {
	g := graph.New()
	ids := make(map[int]graph.NodeID)
	ensure := func(s int) graph.NodeID {
		if id, ok := ids[s]; ok {
			return id
		}
		id := g.EnsureNode(fmt.Sprintf("s%d", s))
		ids[s] = id
		return id
	}
	for _, l := range n.Links {
		a, b := ensure(l.From), ensure(l.To)
		if _, err := g.AddEdge(a, b, units.MicrowaveLatency(l.LengthM).Seconds()); err != nil {
			return math.NaN()
		}
	}
	s, okS := ids[src]
	t, okT := ids[dst]
	if !okS || !okT {
		return 0
	}
	geodesic := geo.Distance(n.Sites[src].Point, n.Sites[dst].Point)
	bound := stretchBound * units.CLatency(geodesic).Seconds()
	return g.APA(s, t, bound)
}
