package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// okHandler serves a fixed JSON-ish body so truncation has something to
// cut.
var okHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"total":1,"results":[{"call_sign":"WQAA001"}]}`)
})

func TestValidate(t *testing.T) {
	bad := []Profile{
		{RateLimitP: -0.1},
		{MalformedP: 1.5},
		{RateLimitP: 0.5, UnavailableP: 0.3, TruncateP: 0.3},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("profile %d validated, want error", i)
		}
	}
	for _, p := range []Profile{None(), Flaky(1), Hostile(1)} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset failed validation: %v", err)
		}
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("flaky", 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.FaultRate() < 0.19 {
		t.Errorf("flaky preset: seed=%d rate=%v", p.Seed, p.FaultRate())
	}
	p, err = Parse("rate_limit=0.1,truncate=0.05", 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.RateLimitP != 0.1 || p.TruncateP != 0.05 || p.MalformedP != 0 {
		t.Errorf("custom spec parsed wrong: %+v", p)
	}
	for _, bad := range []string{"nope=0.1", "rate_limit", "rate_limit=x", "rate_limit=0.9,unavailable=0.9"} {
		if _, err := Parse(bad, 0); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	if p, err := Parse("none", 3); err != nil || p.FaultRate() != 0 {
		t.Errorf("Parse(none) = %+v, %v", p, err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// Two injectors with the same seed must fault the same requests.
	run := func() []int {
		in := Wrap(okHandler, Flaky(99))
		ts := httptest.NewServer(in)
		defer ts.Close()
		var faulted []int
		for i := 0; i < 100; i++ {
			resp, err := http.Get(ts.URL + "/")
			if err != nil {
				faulted = append(faulted, i)
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK ||
				!strings.Contains(string(body), `"total":1`) {
				faulted = append(faulted, i)
			}
		}
		return faulted
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("flaky profile injected no faults in 100 requests")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault positions differ at %d: %v vs %v", i, a, b)
		}
	}
}

func TestRateLimitSetsRetryAfter(t *testing.T) {
	p := Profile{Seed: 1, RateLimitP: 1, RetryAfter: 2 * time.Second}
	ts := httptest.NewServer(Wrap(okHandler, p))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
}

func TestUnavailableBursts(t *testing.T) {
	// With UnavailableP=1 every request starts or continues a burst; all
	// responses are 503 and the burst counter must not leak negative.
	p := Profile{Seed: 1, UnavailableP: 1, BurstLen: 3}
	ts := httptest.NewServer(Wrap(okHandler, p))
	defer ts.Close()
	for i := 0; i < 7; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, resp.StatusCode)
		}
	}
}

func TestBurstContinuesAcrossPassProbability(t *testing.T) {
	// A burst, once started, must serve 503s even on draws that would
	// otherwise pass: probability ~0 after the first forced trigger.
	in := Wrap(okHandler, Profile{Seed: 5, UnavailableP: 1e-12, BurstLen: 3})
	in.mu.Lock()
	in.burstLeft = 2 // as if a burst just started
	in.mu.Unlock()
	ts := httptest.NewServer(in)
	defer ts.Close()
	codes := []int{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	if codes[0] != 503 || codes[1] != 503 || codes[2] != 200 {
		t.Errorf("burst continuation codes = %v, want [503 503 200]", codes)
	}
}

func TestTruncateBreaksBody(t *testing.T) {
	p := Profile{Seed: 1, TruncateP: 1}
	ts := httptest.NewServer(Wrap(okHandler, p))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err) // truncation severs mid-body, not at connect
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatalf("read %d bytes without error, want unexpected EOF", len(body))
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "EOF") {
		t.Errorf("read error = %v, want unexpected EOF", err)
	}
}

func TestMalformedServesGarbage(t *testing.T) {
	p := Profile{Seed: 1, MalformedP: 1}
	ts := httptest.NewServer(Wrap(okHandler, p))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if strings.Contains(string(body), `"results": [{"call_sign": "WQAA001"}]`) {
		t.Error("malformed fault served the real body")
	}
}

func TestHangDelaysThenServes(t *testing.T) {
	p := Profile{Seed: 1, HangP: 1, HangFor: 50 * time.Millisecond}
	ts := httptest.NewServer(Wrap(okHandler, p))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("hang served in %v, want >= 40ms", elapsed)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"total":1`) {
		t.Errorf("hung request not served normally: %d %q", resp.StatusCode, body)
	}
}

func TestStats(t *testing.T) {
	in := Wrap(okHandler, Flaky(3))
	ts := httptest.NewServer(in)
	defer ts.Close()
	const n = 200
	for i := 0; i < n; i++ {
		resp, err := http.Get(ts.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	s := in.Stats()
	if s.Requests != n {
		t.Errorf("Requests = %d, want %d", s.Requests, n)
	}
	if s.Passed+s.Faults() != n {
		t.Errorf("passed %d + faults %d != %d", s.Passed, s.Faults(), n)
	}
	// ~20% fault rate: expect a healthy spread, not exact numbers.
	if s.Faults() < n/10 || s.Faults() > n/2 {
		t.Errorf("faults = %d of %d, want roughly 20%%", s.Faults(), n)
	}
	if !strings.Contains(s.String(), "requests") {
		t.Errorf("Stats.String() = %q", s.String())
	}
}

func TestInjectorConcurrentUse(t *testing.T) {
	in := Wrap(okHandler, Flaky(7))
	ts := httptest.NewServer(in)
	defer ts.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(ts.URL)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got := in.Stats().Requests; got != 200 {
		t.Errorf("Requests = %d, want 200", got)
	}
}
