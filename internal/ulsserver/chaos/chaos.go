// Package chaos is a composable fault-injection layer for the simulated
// ULS portal. The paper's data collection (§2.2) ran for months against
// the live FCC portal, which throttles, times out, and serves partial
// pages; this package reproduces those failure modes deterministically
// so the scrape pipeline's retry, backoff, and resume machinery can be
// exercised in tests and examples.
//
// An Injector wraps any http.Handler and, per request, draws from a
// seeded RNG to decide whether to inject one of five fault kinds:
//
//   - KindRateLimit: 429 Too Many Requests with a Retry-After header
//   - KindUnavailable: 503 Service Unavailable, optionally in bursts of
//     consecutive requests (an overloaded portal rarely fails just once)
//   - KindHang: a latency spike before the request is served normally
//   - KindTruncate: the response advertises its full Content-Length but
//     the body is cut short, so clients see an unexpected EOF
//   - KindMalformed: HTTP 200 with a garbage body that is neither valid
//     JSON nor a parseable detail page
//
// Fault decisions depend only on the profile's Seed and the request
// arrival order, so a failing run is reproducible bit-for-bit.
package chaos

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind names one injected fault type.
type Kind string

// The supported fault kinds.
const (
	KindRateLimit   Kind = "rate_limit"
	KindUnavailable Kind = "unavailable"
	KindHang        Kind = "hang"
	KindTruncate    Kind = "truncate"
	KindMalformed   Kind = "malformed"
)

// Kinds lists all fault kinds in stable order.
var Kinds = []Kind{KindRateLimit, KindUnavailable, KindHang, KindTruncate, KindMalformed}

// Profile configures an Injector: one probability per fault kind plus
// the fault parameters. Probabilities are evaluated in the order of
// Kinds against a single uniform draw, so their sum must be <= 1; the
// remainder is the pass-through probability.
type Profile struct {
	// Seed seeds the fault RNG; runs with equal seeds and equal request
	// orders inject identical faults.
	Seed int64

	// RateLimitP is the probability of a 429 response.
	RateLimitP float64
	// RetryAfter is the duration advertised in the Retry-After header of
	// 429 responses, rounded up to whole seconds (the header's unit).
	// Zero advertises "Retry-After: 0".
	RetryAfter time.Duration

	// UnavailableP is the probability of starting a 503 burst.
	UnavailableP float64
	// BurstLen is the total number of consecutive 503s per burst
	// (minimum 1).
	BurstLen int

	// HangP is the probability of a latency spike of HangFor before the
	// request is served normally.
	HangP float64
	// HangFor is the injected delay; it is cut short if the client goes
	// away.
	HangFor time.Duration

	// TruncateP is the probability of a truncated response body.
	TruncateP float64

	// MalformedP is the probability of a 200 response with a garbage
	// body.
	MalformedP float64
}

// Validate checks that the probabilities are sane.
func (p Profile) Validate() error {
	sum := 0.0
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"rate_limit", p.RateLimitP},
		{"unavailable", p.UnavailableP},
		{"hang", p.HangP},
		{"truncate", p.TruncateP},
		{"malformed", p.MalformedP},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("chaos: %s probability %v outside [0,1]", pr.name, pr.v)
		}
		sum += pr.v
	}
	if sum > 1 {
		return fmt.Errorf("chaos: fault probabilities sum to %v > 1", sum)
	}
	return nil
}

// FaultRate returns the total per-request fault probability.
func (p Profile) FaultRate() float64 {
	return p.RateLimitP + p.UnavailableP + p.HangP + p.TruncateP + p.MalformedP
}

// None is the profile that injects nothing.
func None() Profile { return Profile{} }

// Flaky models the live portal on a bad day: ~20% of requests fail
// across all five kinds. Hangs and Retry-After are kept short so test
// runs stay fast; scale them up when pointing real tooling at it.
func Flaky(seed int64) Profile {
	return Profile{
		Seed:         seed,
		RateLimitP:   0.06,
		RetryAfter:   0,
		UnavailableP: 0.05,
		BurstLen:     2,
		HangP:        0.03,
		HangFor:      20 * time.Millisecond,
		TruncateP:    0.03,
		MalformedP:   0.03,
	}
}

// Hostile is a harsher profile (~40% faults, longer bursts) for soak
// testing retry budgets.
func Hostile(seed int64) Profile {
	return Profile{
		Seed:         seed,
		RateLimitP:   0.12,
		RetryAfter:   time.Second,
		UnavailableP: 0.10,
		BurstLen:     3,
		HangP:        0.06,
		HangFor:      50 * time.Millisecond,
		TruncateP:    0.06,
		MalformedP:   0.06,
	}
}

// Parse builds a Profile from a flag-friendly spec: either a preset
// name ("none", "flaky", "hostile") or a comma-separated list of
// kind=probability pairs, e.g.
//
//	rate_limit=0.1,unavailable=0.05,hang=0.02,truncate=0.03,malformed=0.02
//
// The seed is applied to whichever profile results.
func Parse(spec string, seed int64) (Profile, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "", "none", "off":
		p := None()
		p.Seed = seed
		return p, nil
	case "flaky":
		return Flaky(seed), nil
	case "hostile":
		return Hostile(seed), nil
	}
	p := Profile{
		Seed:       seed,
		RetryAfter: 0,
		BurstLen:   2,
		HangFor:    20 * time.Millisecond,
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Profile{}, fmt.Errorf("chaos: bad spec element %q (want kind=prob)", part)
		}
		prob, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Profile{}, fmt.Errorf("chaos: bad probability in %q: %v", part, err)
		}
		switch Kind(strings.TrimSpace(k)) {
		case KindRateLimit:
			p.RateLimitP = prob
		case KindUnavailable:
			p.UnavailableP = prob
		case KindHang:
			p.HangP = prob
		case KindTruncate:
			p.TruncateP = prob
		case KindMalformed:
			p.MalformedP = prob
		default:
			return Profile{}, fmt.Errorf("chaos: unknown fault kind %q", k)
		}
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// Stats summarizes what an Injector has done so far.
type Stats struct {
	// Requests is the total number of requests seen.
	Requests int64
	// Passed is the number served untouched.
	Passed int64
	// Injected counts injected faults by kind. Hangs count as injected
	// even though the request is ultimately served.
	Injected map[Kind]int64
}

// Faults returns the total number of injected faults.
func (s Stats) Faults() int64 {
	var n int64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// String renders the stats on one line, kinds in stable order.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests, %d passed, %d faults", s.Requests, s.Passed, s.Faults())
	kinds := make([]string, 0, len(s.Injected))
	for k := range s.Injected {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, s.Injected[Kind(k)])
	}
	return b.String()
}

// Injector is fault-injecting middleware around an http.Handler. It is
// safe for concurrent use.
type Injector struct {
	next    http.Handler
	profile Profile

	mu        sync.Mutex
	rng       *rand.Rand
	burstLeft int
	stats     Stats
}

// Wrap builds an Injector serving next under the given profile. It
// panics if the profile does not Validate, mirroring http.HandleFunc's
// treatment of programmer error.
func Wrap(next http.Handler, p Profile) *Injector {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		next:    next,
		profile: p,
		rng:     rand.New(rand.NewSource(p.Seed)),
	}
}

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := in.stats
	out.Injected = make(map[Kind]int64, len(in.stats.Injected))
	for k, v := range in.stats.Injected {
		out.Injected[k] = v
	}
	return out
}

// decide consumes one RNG draw and returns the fault to inject, or ""
// to pass the request through.
func (in *Injector) decide() Kind {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Requests++
	if in.stats.Injected == nil {
		in.stats.Injected = make(map[Kind]int64)
	}
	if in.burstLeft > 0 {
		in.burstLeft--
		in.stats.Injected[KindUnavailable]++
		return KindUnavailable
	}
	u := in.rng.Float64()
	p := in.profile
	for _, c := range []struct {
		kind Kind
		prob float64
	}{
		{KindRateLimit, p.RateLimitP},
		{KindUnavailable, p.UnavailableP},
		{KindHang, p.HangP},
		{KindTruncate, p.TruncateP},
		{KindMalformed, p.MalformedP},
	} {
		if u < c.prob {
			if c.kind == KindUnavailable {
				burst := p.BurstLen
				if burst < 1 {
					burst = 1
				}
				in.burstLeft = burst - 1
			}
			in.stats.Injected[c.kind]++
			return c.kind
		}
		u -= c.prob
	}
	in.stats.Passed++
	return ""
}

// ServeHTTP implements http.Handler.
func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch in.decide() {
	case KindRateLimit:
		secs := int(in.profile.RetryAfter.Round(time.Second) / time.Second)
		if in.profile.RetryAfter > 0 && secs == 0 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, "simulated throttling", http.StatusTooManyRequests)
	case KindUnavailable:
		http.Error(w, "simulated overload", http.StatusServiceUnavailable)
	case KindHang:
		select {
		case <-time.After(in.profile.HangFor):
		case <-r.Context().Done():
			return
		}
		in.next.ServeHTTP(w, r)
	case KindTruncate:
		in.truncate(w, r)
	case KindMalformed:
		// Looks enough like a search page to tempt a sloppy decoder, but
		// is cut mid-token: invalid JSON and an unparseable detail page.
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"total": 9999, "results": [{"call_sign": "WQ`)
	default:
		in.next.ServeHTTP(w, r)
	}
}

// truncate runs the inner handler against a buffer, then replays the
// response with the full Content-Length but only the first half of the
// body, so the client's read fails with an unexpected EOF.
func (in *Injector) truncate(w http.ResponseWriter, r *http.Request) {
	rec := &bufferingWriter{header: make(http.Header), status: http.StatusOK}
	in.next.ServeHTTP(rec, r)
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if len(rec.body) < 2 {
		// Nothing worth truncating; fall back to a 503 so the request
		// still fails.
		http.Error(w, "simulated overload", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(rec.body)))
	w.WriteHeader(rec.status)
	w.Write(rec.body[:len(rec.body)/2])
	// The handler returns without writing the rest; net/http notices the
	// short write and severs the connection.
}

// bufferingWriter captures a handler's response for later replay.
type bufferingWriter struct {
	header http.Header
	status int
	body   []byte
}

func (b *bufferingWriter) Header() http.Header { return b.header }

func (b *bufferingWriter) WriteHeader(status int) { b.status = status }

func (b *bufferingWriter) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}
