package ulsserver

import (
	"fmt"
	"html"
	"net/http"
	"net/url"
	"strconv"

	"hftnetview/internal/geo"
	"hftnetview/internal/uls"
)

// Browsable HTML views: the index page with the three search forms, and
// paginated HTML result listings that link to the detail pages. The
// scraper uses the JSON endpoints; these pages are for humans poking at
// the portal, exactly as the paper's authors browsed the real ULS.

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>ULS License Search</title></head><body>
<h1>Universal Licensing System</h1>
<p>%d licenses on file from %d licensees.</p>
<h2>Geographic search</h2>
<form action="/search" method="get">
<input type="hidden" name="type" value="geo">
lat <input name="lat" value="41.7625">
lon <input name="lon" value="-88.2030">
radius (km) <input name="radius_km" value="10">
<input type="submit" value="Search">
</form>
<h2>Site-based search</h2>
<form action="/search" method="get">
<input type="hidden" name="type" value="site">
service <input name="service" value="MG">
class <input name="class" value="FXO">
<input type="submit" value="Search">
</form>
<h2>Licensee search</h2>
<form action="/search" method="get">
<input type="hidden" name="type" value="licensee">
name <input name="name">
<input type="submit" value="Search">
</form>
</body></html>
`, s.db.Len(), len(s.db.Licensees()))
}

func (s *Server) handleSearchHTML(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var matches []*uls.License
	switch q.Get("type") {
	case "geo":
		lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
		lon, err2 := strconv.ParseFloat(q.Get("lon"), 64)
		radiusKM, err3 := strconv.ParseFloat(q.Get("radius_km"), 64)
		if err1 != nil || err2 != nil || err3 != nil || radiusKM <= 0 {
			http.Error(w, "geographic search requires lat, lon, radius_km", http.StatusBadRequest)
			return
		}
		center := geo.Point{Lat: lat, Lon: lon}
		if !center.Valid() {
			http.Error(w, "invalid coordinates", http.StatusBadRequest)
			return
		}
		matches = s.db.WithinRadiusIndexed(center, radiusKM*1000)
	case "site":
		if q.Get("service") == "" && q.Get("class") == "" {
			http.Error(w, "site search requires service and/or class", http.StatusBadRequest)
			return
		}
		matches = uls.FilterService(s.db.All(), q.Get("service"), q.Get("class"))
	case "licensee":
		if q.Get("name") == "" {
			http.Error(w, "licensee search requires name", http.StatusBadRequest)
			return
		}
		matches = s.db.ByLicensee(q.Get("name"))
	default:
		http.Error(w, "unknown search type", http.StatusBadRequest)
		return
	}

	page, perPage, err := pagination(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><head><title>ULS Search Results</title></head><body>\n")
	fmt.Fprintf(w, "<h1>%d matching licenses</h1>\n", len(matches))
	fmt.Fprintln(w, `<table class="results">`)
	fmt.Fprintln(w, "<tr><th>Call Sign</th><th>Licensee</th><th>Service</th><th>Status</th></tr>")
	start := (page - 1) * perPage
	if start < len(matches) {
		end := start + perPage
		if end > len(matches) {
			end = len(matches)
		}
		for _, l := range matches[start:end] {
			fmt.Fprintf(w, `<tr><td><a href="/license/%s">%s</a></td><td>%s</td><td>%s</td><td>%s</td></tr>`+"\n",
				url.PathEscape(l.CallSign), html.EscapeString(l.CallSign),
				html.EscapeString(l.Licensee), html.EscapeString(l.RadioService),
				html.EscapeString(string(l.Status)))
		}
	}
	fmt.Fprintln(w, "</table>")
	// Pagination links.
	if page > 1 {
		fmt.Fprintf(w, `<a rel="prev" href="%s">prev</a> `, pageLink(r, page-1))
	}
	if page*perPage < len(matches) {
		fmt.Fprintf(w, `<a rel="next" href="%s">next</a>`, pageLink(r, page+1))
	}
	fmt.Fprintln(w, "\n</body></html>")
}

func pageLink(r *http.Request, page int) string {
	q := r.URL.Query()
	q.Set("page", strconv.Itoa(page))
	return "/search?" + q.Encode()
}
