// Package ulsserver simulates the FCC Universal Licensing System's
// public search portal (§2.1) over a uls.Database: the geographic,
// site-based, and licensee search interfaces as JSON endpoints, and the
// per-license detail page as HTML — the page the paper's scraper parses.
//
// Endpoints:
//
//	GET /api/geographic?lat=&lon=&radius_km=&page=&per_page=
//	GET /api/site?service=&class=&page=&per_page=
//	GET /api/licensee?name=&page=&per_page=
//	GET /license/{callsign}
//	GET /healthz
//
// Search responses are JSON SearchPage documents; the detail page is
// HTML. The zero value is not usable; call New.
package ulsserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"hftnetview/internal/geo"
	"hftnetview/internal/uls"
)

// DefaultPerPage is the page size used when per_page is absent.
const DefaultPerPage = 50

// MaxPerPage caps per_page, as the real portal does.
const MaxPerPage = 200

// SearchResult is one row of a search response.
type SearchResult struct {
	CallSign string `json:"call_sign"`
	Licensee string `json:"licensee"`
	Service  string `json:"radio_service"`
	Status   string `json:"status"`
}

// SearchPage is a page of search results.
type SearchPage struct {
	Total   int            `json:"total"`
	Page    int            `json:"page"`
	PerPage int            `json:"per_page"`
	Results []SearchResult `json:"results"`
}

// Server serves the simulated portal.
type Server struct {
	db  *uls.Database
	mux *http.ServeMux

	// FailEveryN, when > 0, makes every Nth request fail with 503 —
	// the simplest knob for exercising the scraper's retry path. For
	// richer, probabilistic failure modes wrap the server with the
	// chaos package instead. It is safe to adjust while requests are in
	// flight.
	FailEveryN atomic.Int64
	reqCount   atomic.Int64
}

// New builds a portal server over a license database.
func New(db *uls.Database) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/geographic", s.handleGeographic)
	s.mux.HandleFunc("GET /api/site", s.handleSite)
	s.mux.HandleFunc("GET /api/licensee", s.handleLicensee)
	s.mux.HandleFunc("GET /license/{callsign}", s.handleDetail)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /search", s.handleSearchHTML)
	s.mux.HandleFunc("GET /", s.handleIndex)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if n := s.FailEveryN.Load(); n > 0 {
		if c := s.reqCount.Add(1); c%n == 0 {
			http.Error(w, "simulated overload", http.StatusServiceUnavailable)
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleGeographic(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
	lon, err2 := strconv.ParseFloat(q.Get("lon"), 64)
	radiusKM, err3 := strconv.ParseFloat(q.Get("radius_km"), 64)
	if err1 != nil || err2 != nil || err3 != nil || radiusKM <= 0 {
		http.Error(w, "geographic search requires lat, lon, radius_km", http.StatusBadRequest)
		return
	}
	center := geo.Point{Lat: lat, Lon: lon}
	if !center.Valid() {
		http.Error(w, "invalid coordinates", http.StatusBadRequest)
		return
	}
	s.writePage(w, r, s.db.WithinRadiusIndexed(center, radiusKM*1000))
}

func (s *Server) handleSite(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	service := q.Get("service")
	class := q.Get("class")
	if service == "" && class == "" {
		http.Error(w, "site search requires service and/or class", http.StatusBadRequest)
		return
	}
	s.writePage(w, r, uls.FilterService(s.db.All(), service, class))
}

func (s *Server) handleLicensee(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "licensee search requires name", http.StatusBadRequest)
		return
	}
	s.writePage(w, r, s.db.ByLicensee(name))
}

func (s *Server) writePage(w http.ResponseWriter, r *http.Request, matches []*uls.License) {
	page, perPage, err := pagination(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := SearchPage{Total: len(matches), Page: page, PerPage: perPage}
	start := (page - 1) * perPage
	if start < len(matches) {
		end := start + perPage
		if end > len(matches) {
			end = len(matches)
		}
		for _, l := range matches[start:end] {
			resp.Results = append(resp.Results, SearchResult{
				CallSign: l.CallSign,
				Licensee: l.Licensee,
				Service:  l.RadioService,
				Status:   string(l.Status),
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Connection-level failure; nothing more to do.
		return
	}
}

func pagination(r *http.Request) (page, perPage int, err error) {
	page, perPage = 1, DefaultPerPage
	q := r.URL.Query()
	if v := q.Get("page"); v != "" {
		page, err = strconv.Atoi(v)
		if err != nil || page < 1 {
			return 0, 0, fmt.Errorf("invalid page %q", v)
		}
	}
	if v := q.Get("per_page"); v != "" {
		perPage, err = strconv.Atoi(v)
		if err != nil || perPage < 1 {
			return 0, 0, fmt.Errorf("invalid per_page %q", v)
		}
		if perPage > MaxPerPage {
			perPage = MaxPerPage
		}
	}
	return page, perPage, nil
}

func (s *Server) handleDetail(w http.ResponseWriter, r *http.Request) {
	cs := strings.ToUpper(r.PathValue("callsign"))
	l, ok := s.db.ByCallSign(cs)
	if !ok {
		http.Error(w, "license not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	writeDetailHTML(w, l)
}
