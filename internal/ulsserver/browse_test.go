package ulsserver

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestIndexPage(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"Universal Licensing System",
		"7 licenses on file from 3 licensees",
		`action="/search"`,
		`name="radius_km"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// Unknown paths under / are 404.
	if code, _ := get(t, ts.URL+"/nonsense"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

func TestSearchHTMLGeo(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/search?type=geo&lat=41.76&lon=-88.20&radius_km=10")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "6 matching licenses") {
		t.Errorf("geo search body:\n%s", body)
	}
	if !strings.Contains(body, `<a href="/license/WQAA000">WQAA000</a>`) {
		t.Error("result rows should link to detail pages")
	}
	// Escaped licensee name.
	if !strings.Contains(body, "Alpha &amp; Sons &lt;HFT&gt;") {
		t.Error("licensee name not escaped")
	}
}

func TestSearchHTMLPagination(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/search?type=site&service=MG&per_page=3&page=1")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if strings.Count(body, "/license/") != 3 {
		t.Errorf("page 1 rows = %d, want 3", strings.Count(body, "/license/"))
	}
	if !strings.Contains(body, `rel="next"`) {
		t.Error("page 1 should link to next")
	}
	if strings.Contains(body, `rel="prev"`) {
		t.Error("page 1 should not link to prev")
	}
	_, body3 := get(t, ts.URL+"/search?type=site&service=MG&per_page=3&page=3")
	if strings.Count(body3, "/license/") != 1 {
		t.Errorf("page 3 rows = %d, want 1", strings.Count(body3, "/license/"))
	}
	if strings.Contains(body3, `rel="next"`) {
		t.Error("last page should not link to next")
	}
	if !strings.Contains(body3, `rel="prev"`) {
		t.Error("last page should link to prev")
	}
}

func TestSearchHTMLLicensee(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/search?type=licensee&name=Gamma+Net")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "1 matching licenses") {
		t.Errorf("licensee search:\n%s", body)
	}
}

func TestSearchHTMLValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []string{
		"/search",
		"/search?type=geo",
		"/search?type=geo&lat=x&lon=-88&radius_km=10",
		"/search?type=site",
		"/search?type=licensee",
		"/search?type=unknown",
		"/search?type=site&service=MG&page=0",
	}
	for _, p := range bad {
		if code, _ := get(t, ts.URL+p); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", p, code)
		}
	}
}

// TestBrowseToDetailFlow walks the human path: index → search → detail.
func TestBrowseToDetailFlow(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := get(t, ts.URL+"/search?type=geo&lat=41.76&lon=-88.20&radius_km=10")
	idx := strings.Index(body, `href="/license/`)
	if idx < 0 {
		t.Fatal("no detail link found")
	}
	rest := body[idx+len(`href="`):]
	link := rest[:strings.Index(rest, `"`)]
	code, detail := get(t, ts.URL+link)
	if code != http.StatusOK {
		t.Fatalf("detail status %d", code)
	}
	if !strings.Contains(detail, "Grant Date") {
		t.Error("detail page incomplete")
	}
}
