package ulsserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hftnetview/internal/geo"
	"hftnetview/internal/uls"
)

func buildDB(t *testing.T) *uls.Database {
	t.Helper()
	db := uls.NewDatabase()
	mk := func(cs, licensee, service, class string, near geo.Point) *uls.License {
		return &uls.License{
			CallSign: cs, LicenseID: 1, Licensee: licensee, FRN: "0000000001",
			RadioService: service, Status: uls.StatusActive,
			Grant: uls.NewDate(2015, time.June, 1),
			Locations: []uls.Location{
				{Number: 1, Point: near, GroundElevation: 200, SupportHeight: 90},
				{Number: 2, Point: geo.Point{Lat: near.Lat + 0.2, Lon: near.Lon + 0.3},
					GroundElevation: 195, SupportHeight: 85},
			},
			Paths: []uls.Path{{Number: 1, TXLocation: 1, RXLocation: 2,
				StationClass: class, FrequenciesMHz: []float64{11245.0, 6004.5}}},
		}
	}
	chicago := geo.Point{Lat: 41.76, Lon: -88.20}
	nj := geo.Point{Lat: 40.78, Lon: -74.10}
	for i := 0; i < 5; i++ {
		l := mk(fmt.Sprintf("WQAA%03d", i), "Alpha & Sons <HFT>", uls.ServiceMG, uls.ClassFXO, chicago)
		if err := db.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Add(mk("WQBB001", "Beta Net", uls.ServiceMG, "FB", chicago)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(mk("WQCC001", "Gamma Net", uls.ServiceMG, uls.ClassFXO, nj)); err != nil {
		t.Fatal(err)
	}
	return db
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(buildDB(t))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestGeographicSearch(t *testing.T) {
	_, ts := newTestServer(t)
	var page SearchPage
	getJSON(t, ts.URL+"/api/geographic?lat=41.76&lon=-88.20&radius_km=10", &page)
	// 5 Alpha + 1 Beta near Chicago; Gamma is in NJ.
	if page.Total != 6 {
		t.Errorf("Total = %d, want 6", page.Total)
	}
	for _, r := range page.Results {
		if r.Licensee == "Gamma Net" {
			t.Error("Gamma Net should be outside the radius")
		}
	}
}

func TestGeographicSearchValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []string{
		"/api/geographic",
		"/api/geographic?lat=41&lon=-88",
		"/api/geographic?lat=41&lon=-88&radius_km=-5",
		"/api/geographic?lat=99&lon=-88&radius_km=10",
		"/api/geographic?lat=x&lon=-88&radius_km=10",
	}
	for _, p := range bad {
		if resp := getJSON(t, ts.URL+p, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", p, resp.StatusCode)
		}
	}
}

func TestSiteSearch(t *testing.T) {
	_, ts := newTestServer(t)
	var page SearchPage
	getJSON(t, ts.URL+"/api/site?service=MG&class=FXO", &page)
	if page.Total != 6 { // 5 Alpha + Gamma; Beta's class is FB
		t.Errorf("Total = %d, want 6", page.Total)
	}
	getJSON(t, ts.URL+"/api/site?service=MG", &page)
	if page.Total != 7 {
		t.Errorf("service-only Total = %d, want 7", page.Total)
	}
	if resp := getJSON(t, ts.URL+"/api/site", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty site search: status %d, want 400", resp.StatusCode)
	}
}

func TestLicenseeSearch(t *testing.T) {
	_, ts := newTestServer(t)
	var page SearchPage
	getJSON(t, ts.URL+"/api/licensee?name="+escapeQuery("Alpha & Sons <HFT>"), &page)
	if page.Total != 5 {
		t.Errorf("Total = %d, want 5", page.Total)
	}
	getJSON(t, ts.URL+"/api/licensee?name=Nobody", &page)
	if page.Total != 0 {
		t.Errorf("unknown licensee Total = %d, want 0", page.Total)
	}
	if resp := getJSON(t, ts.URL+"/api/licensee", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing name: status %d, want 400", resp.StatusCode)
	}
}

func escapeQuery(s string) string {
	r := strings.NewReplacer(" ", "%20", "&", "%26", "<", "%3C", ">", "%3E")
	return r.Replace(s)
}

func TestPagination(t *testing.T) {
	_, ts := newTestServer(t)
	var p1, p2, p3 SearchPage
	getJSON(t, ts.URL+"/api/site?service=MG&page=1&per_page=3", &p1)
	getJSON(t, ts.URL+"/api/site?service=MG&page=2&per_page=3", &p2)
	getJSON(t, ts.URL+"/api/site?service=MG&page=3&per_page=3", &p3)
	if len(p1.Results) != 3 || len(p2.Results) != 3 || len(p3.Results) != 1 {
		t.Errorf("page sizes = %d, %d, %d; want 3, 3, 1",
			len(p1.Results), len(p2.Results), len(p3.Results))
	}
	seen := map[string]bool{}
	for _, page := range []SearchPage{p1, p2, p3} {
		if page.Total != 7 {
			t.Errorf("Total = %d, want 7", page.Total)
		}
		for _, r := range page.Results {
			if seen[r.CallSign] {
				t.Errorf("call sign %s repeated across pages", r.CallSign)
			}
			seen[r.CallSign] = true
		}
	}
	if len(seen) != 7 {
		t.Errorf("distinct results = %d, want 7", len(seen))
	}
	// Invalid pagination.
	for _, q := range []string{"page=0", "page=x", "per_page=0", "per_page=x"} {
		resp := getJSON(t, ts.URL+"/api/site?service=MG&"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestPaginationPastLastPage(t *testing.T) {
	// Paging beyond the results is not an error: the portal returns an
	// empty page with the true Total, which is how clients detect the
	// end under a shifting corpus.
	_, ts := newTestServer(t)
	var page SearchPage
	resp := getJSON(t, ts.URL+"/api/site?service=MG&page=99&per_page=3", &page)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if page.Total != 7 {
		t.Errorf("Total = %d, want 7", page.Total)
	}
	if len(page.Results) != 0 {
		t.Errorf("page 99 served %d results, want 0", len(page.Results))
	}
	if page.Page != 99 {
		t.Errorf("Page = %d, want 99 echoed back", page.Page)
	}
}

func TestPerPageClampedAtMax(t *testing.T) {
	_, ts := newTestServer(t)
	var page SearchPage
	getJSON(t, ts.URL+"/api/site?service=MG&per_page=100000", &page)
	if page.PerPage != MaxPerPage {
		t.Errorf("PerPage = %d, want clamped to %d", page.PerPage, MaxPerPage)
	}
	if len(page.Results) != 7 { // whole corpus fits under the clamp
		t.Errorf("results = %d, want 7", len(page.Results))
	}
}

func TestSearchesOverEmptyDatabase(t *testing.T) {
	s := New(uls.NewDatabase())
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	for _, p := range []string{
		"/api/geographic?lat=41.76&lon=-88.20&radius_km=10",
		"/api/site?service=MG&class=FXO",
		"/api/licensee?name=Anybody",
	} {
		var page SearchPage
		resp := getJSON(t, ts.URL+p, &page)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", p, resp.StatusCode)
			continue
		}
		if page.Total != 0 || len(page.Results) != 0 {
			t.Errorf("%s: Total=%d Results=%d over empty db", p, page.Total, len(page.Results))
		}
	}
}

func TestDetailPage(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/license/WQAA001")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	page := string(body)
	for _, want := range []string{
		"WQAA001",
		"Alpha &amp; Sons &lt;HFT&gt;", // licensee HTML-escaped
		"06/01/2015",
		"11245.0, 6004.5",
		"41-45-36.0 N",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("detail page missing %q", want)
		}
	}
}

func TestDetailPageCaseInsensitive(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/license/wqaa001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("lowercase call sign: status %d, want 200", resp.StatusCode)
	}
}

func TestDetailPageNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/license/WQZZ999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestFailEveryN(t *testing.T) {
	s, ts := newTestServer(t)
	s.FailEveryN.Store(2)
	fails := 0
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			fails++
		}
	}
	if fails != 5 {
		t.Errorf("failures = %d of 10 with FailEveryN=2, want 5", fails)
	}
}
