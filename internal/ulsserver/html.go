package ulsserver

import (
	"fmt"
	"html"
	"io"
	"strings"

	"hftnetview/internal/geo"
	"hftnetview/internal/uls"
)

// writeDetailHTML renders a license detail page in the portal's fixed
// row format. The scraper relies on the "<tr><td>Label</td><td>Value
// </td></tr>" structure and the section markers, so changes here must be
// mirrored in internal/scrape.
func writeDetailHTML(w io.Writer, l *uls.License) {
	esc := html.EscapeString
	fmt.Fprintf(w, "<html><head><title>ULS License - %s - %s</title></head><body>\n",
		esc(l.RadioService), esc(l.CallSign))
	fmt.Fprintf(w, "<h1>License %s</h1>\n", esc(l.CallSign))

	fmt.Fprintln(w, `<table class="license">`)
	row := func(label, value string) {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>\n", esc(label), esc(value))
	}
	row("Call Sign", l.CallSign)
	row("Licensee", l.Licensee)
	row("FRN", l.FRN)
	row("Contact Email", l.ContactEmail)
	row("Radio Service", l.RadioService)
	row("Status", string(l.Status))
	row("License ID", fmt.Sprintf("%d", l.LicenseID))
	row("Grant Date", l.Grant.String())
	row("Expiration Date", l.Expiration.String())
	row("Cancellation Date", l.Cancellation.String())
	fmt.Fprintln(w, "</table>")

	fmt.Fprintln(w, "<h2>Locations</h2>")
	fmt.Fprintln(w, `<table class="locations">`)
	fmt.Fprintln(w, "<tr><th>Loc</th><th>Latitude</th><th>Longitude</th><th>Ground Elev (m)</th><th>Height (m)</th></tr>")
	for _, loc := range l.Locations {
		lat, lon := geo.PointToDMS(loc.Point)
		fmt.Fprintf(w, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%.1f</td><td>%.1f</td></tr>\n",
			loc.Number, lat, lon, loc.GroundElevation, loc.SupportHeight)
	}
	fmt.Fprintln(w, "</table>")

	fmt.Fprintln(w, "<h2>Paths</h2>")
	fmt.Fprintln(w, `<table class="paths">`)
	fmt.Fprintln(w, "<tr><th>Path</th><th>TX Loc</th><th>RX Loc</th><th>Class</th><th>TX Azimuth</th><th>RX Azimuth</th><th>Gain (dBi)</th><th>Frequencies (MHz)</th></tr>")
	for _, p := range l.Paths {
		freqs := make([]string, 0, len(p.FrequenciesMHz))
		for _, f := range p.FrequenciesMHz {
			freqs = append(freqs, fmt.Sprintf("%.1f", f))
		}
		fmt.Fprintf(w, "<tr><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%.1f</td><td>%.1f</td><td>%.1f</td><td>%s</td></tr>\n",
			p.Number, p.TXLocation, p.RXLocation, esc(p.StationClass),
			p.TXAzimuthDeg, p.RXAzimuthDeg, p.AntennaGainDBi,
			strings.Join(freqs, ", "))
	}
	fmt.Fprintln(w, "</table>")
	fmt.Fprintln(w, "</body></html>")
}
