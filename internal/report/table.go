// Package report regenerates every table and figure of the paper's
// evaluation from a license database: Tables 1–3, the longitudinal
// series of Figs 1–2, the CDFs of Fig 4, the Fig 3 map artifacts, the
// Fig 5 satellite comparison, the §2.2 scrape funnel, and the §5
// weather extension. It is the shared backend of cmd/hftreport and the
// benchmark suite.
package report

import (
	"fmt"
	"strings"
)

// Table is a generic formatted result: a title, column headers, and
// string rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row built from the arguments' default formatting.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns in plain ASCII.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		sb.WriteString(strings.Repeat("-", total-2))
		sb.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// ms formats a latency in the paper's 5-decimal millisecond style.
func ms(v float64) string { return fmt.Sprintf("%.5f", v) }

// pct formats a fraction as a whole percentage.
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
