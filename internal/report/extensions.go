package report

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"hftnetview/internal/core"
	"hftnetview/internal/design"
	"hftnetview/internal/entity"
	"hftnetview/internal/geo"
	"hftnetview/internal/race"
	"hftnetview/internal/radio"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

// OverheadSweep reproduces the §3 thought experiment as a table: Table 1
// re-ranked under per-tower regeneration overheads, with the exact
// leader-change points ("if the per-tower added latency was higher than
// 1.4 µs, JM would offer lower end-end latency").
func OverheadSweep(p core.SnapshotProvider, date uls.Date) (*Table, error) {
	path := sites.Path{From: sites.CME, To: sites.NY4}
	rows, err := core.ConnectedNetworksVia(p, date, path, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Per-tower overhead sweep (§3), CME-NY4",
		Headers: []string{"Overhead (µs/tower)", "Rank 1", "Rank 2", "Rank 3"},
	}
	for _, us := range []float64{0, 0.5, 1.0, 1.4, 1.5, 2.0, 5.0} {
		adj := core.RankWithPerTowerOverhead(rows, units.Latency(us*1e-6))
		row := []string{fmt.Sprintf("%.1f", us)}
		for i := 0; i < 3 && i < len(adj); i++ {
			row = append(row, fmt.Sprintf("%s %.5f",
				abbreviate(adj[i].Licensee), adj[i].Adjusted.Milliseconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	for _, lr := range core.LeaderByOverhead(rows) {
		t.AddRow(fmt.Sprintf("leader from %.2f µs", lr.FromOverhead.Microseconds()),
			abbreviate(lr.Leader), "", "")
	}
	return t, nil
}

// EntityResolution reproduces the §2.4/§6 future work: registration
// clusters and complementary-link pairs among the shortlisted entities.
func EntityResolution(p core.SnapshotProvider, date uls.Date) (*Table, error) {
	t := &Table{
		Title:   "Entity resolution (§2.4/§6 future work)",
		Headers: []string{"Signal", "Finding"},
	}
	db := p.DB()
	for _, cluster := range entity.ClustersByFRN(db) {
		t.AddRow("shared FRN", strings.Join(cluster, " + "))
	}
	for _, cluster := range entity.ClustersByContact(db) {
		t.AddRow("shared contact", strings.Join(cluster, " + "))
	}
	path := sites.Path{From: sites.CME, To: sites.NY4}
	pairs, err := entity.ComplementaryPairsVia(p, date, path, nil, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	for _, pr := range pairs {
		t.AddRow("complementary links",
			fmt.Sprintf("%s + %s -> connected, %s over %d towers",
				pr.A, pr.B, pr.Latency, pr.TowerCount))
	}
	if len(t.Rows) == 0 {
		t.AddRow("none", "-")
	}
	return t, nil
}

// DesignSweep runs the cISP-style budgeted design experiment (§6/§7
// lessons): a candidate field along CME–NY4, designed at increasing
// budgets, reporting latency (which stays pinned to the best chain) and
// APA (which the extra budget buys).
func DesignSweep() (*Table, error) {
	cands := corridorCandidates()
	t := &Table{
		Title: "Budgeted design sweep (§6 lessons / cISP)",
		Headers: []string{"Budget", "Cost", "Towers", "Links", "Alt links",
			"Latency (ms)", "APA"},
	}
	for _, budget := range []float64{42, 50, 70, 100, 150} {
		p := design.Problem{
			Src: 0, Dst: len(cands) - 1,
			Candidates:   cands,
			Cost:         design.DefaultCostModel(),
			Budget:       budget,
			StretchBound: 1.05,
		}
		n, err := design.Design(p)
		if err != nil {
			return nil, fmt.Errorf("report: budget %v: %w", budget, err)
		}
		alt := 0
		for _, l := range n.Links {
			if l.Alternate {
				alt++
			}
		}
		t.AddRow(fmt.Sprintf("%.0f", budget), fmt.Sprintf("%.1f", n.Cost),
			fmt.Sprintf("%d", len(n.Chain)), fmt.Sprintf("%d", len(n.Links)),
			fmt.Sprintf("%d", alt), ms(n.Latency.Milliseconds()),
			pct(n.APA(p.Src, p.Dst, p.StretchBound)))
	}
	return t, nil
}

// corridorCandidates builds the deterministic candidate-site field the
// design experiment uses: a near-geodesic spine every ~40 km plus two
// offset sites per spine position.
func corridorCandidates() []design.Site {
	rng := rand.New(rand.NewPCG(5, 5))
	a, b := sites.CME.Location, sites.NY4.Location
	brg := geo.InitialBearing(a, b)
	var out []design.Site
	out = append(out, design.Site{Point: a, TowerCost: 1})
	n := 30
	for i := 1; i < n; i++ {
		frac := float64(i) / float64(n)
		base := geo.Interpolate(a, b, frac)
		out = append(out, design.Site{
			Point:     geo.Offset(base, brg, 0, (rng.Float64()-0.5)*2000),
			TowerCost: 1,
		})
		for e := 0; e < 2; e++ {
			out = append(out, design.Site{
				Point:     geo.Offset(base, brg, 0, 4000+6000*rng.Float64()),
				TowerCost: 1,
			})
		}
	}
	out = append(out, design.Site{Point: b, TowerCost: 1})
	return out
}

// AvailabilityBudget combines the two engineering outage mechanisms —
// annual rain fading (ITU-R P.530-style) and worst-month clear-air
// multipath (Vigants–Barnett) — into a per-network downtime budget on
// CME–NY4: the §5 reliability comparison as an availability table.
func AvailabilityBudget(p core.SnapshotProvider, date uls.Date, marginDB float64) (*Table, error) {
	path := sites.Path{From: sites.CME, To: sites.NY4}
	opts := core.DefaultOptions()
	t := &Table{
		Title: fmt.Sprintf("Availability budget, CME-NY4, %.0f dB margins", marginDB),
		Headers: []string{"Network", "Rain avail", "Rain downtime (min/yr)",
			"Multipath avail (worst month)"},
	}
	rows, err := core.ConnectedNetworksVia(p, date, path, opts)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		n, err := snap(p, row.Licensee, date, opts)
		if err != nil {
			return nil, err
		}
		rain, ok := n.RainAvailability(path, marginDB)
		if !ok {
			continue
		}
		clear, _ := n.ClearAirAvailability(path, marginDB)
		t.AddRow(abbreviate(row.Licensee),
			fmt.Sprintf("%.5f", rain),
			fmt.Sprintf("%.0f", radio.AnnualDowntimeSeconds(1-rain)/60),
			fmt.Sprintf("%.5f", clear))
	}
	return t, nil
}

// DiverseRoutes lists the k lowest-latency physically distinct routes
// per network on CME–NY4 — the concrete alternates behind the APA
// numbers (§5). A chain network shows a single route; Webline's braid
// shows alternates microseconds apart.
func DiverseRoutes(p core.SnapshotProvider, date uls.Date, k int) (*Table, error) {
	path := sites.Path{From: sites.CME, To: sites.NY4}
	opts := core.DefaultOptions()
	t := &Table{
		Title:   fmt.Sprintf("Top-%d diverse routes, CME-NY4 (Yen's algorithm)", k),
		Headers: []string{"Network", "Rank", "Latency (ms)", "Towers", "vs best (µs)"},
	}
	for _, name := range []string{"New Line Networks", "Webline Holdings", "Blueline Comm"} {
		n, err := snap(p, name, date, opts)
		if err != nil {
			return nil, err
		}
		routes := n.DiverseRoutes(path, k)
		if len(routes) == 0 {
			t.AddRow(abbreviate(name), "-", "not connected", "", "")
			continue
		}
		for i, r := range routes {
			t.AddRow(abbreviate(name), fmt.Sprintf("%d", i+1),
				ms(r.Latency.Milliseconds()),
				fmt.Sprintf("%d", r.TowerCount),
				fmt.Sprintf("%.2f", r.Latency.Sub(routes[0].Latency).Microseconds()))
		}
	}
	return t, nil
}

// RaceStrategies reproduces §5's closing speculation: season win shares
// for single-network subscriptions versus the NLN+WH combination, over
// seeded storms with Gaussian race jitter.
func RaceStrategies(p core.SnapshotProvider, date uls.Date, storms int,
	marginDB, sigmaSeconds float64) (*Table, error) {
	path := sites.Path{From: sites.CME, To: sites.NY4}
	opts := core.DefaultOptions()
	nlnNet, err := snap(p, "New Line Networks", date, opts)
	if err != nil {
		return nil, err
	}
	whNet, err := snap(p, "Webline Holdings", date, opts)
	if err != nil {
		return nil, err
	}
	nln := race.Strategy{Name: "NLN only", Networks: []*core.Network{nlnNet}}
	wh := race.Strategy{Name: "WH only", Networks: []*core.Network{whNet}}
	both := race.Strategy{Name: "NLN+WH", Networks: []*core.Network{nlnNet, whNet}}

	var season []radio.Storm
	season = append(season, radio.Storm{}) // one fair-weather day
	for seed := 1; seed <= storms; seed++ {
		season = append(season, radio.GenerateStorm(uint64(seed),
			sites.CME.Location, sites.NY4.Location, radio.DefaultStormConfig()))
	}

	t := &Table{
		Title: fmt.Sprintf("Subscription strategies (§5): %d storm days + 1 fair day, σ=%.1f µs",
			storms, sigmaSeconds*1e6),
		Headers: []string{"Matchup", "Win share", "A dark", "B dark"},
	}
	matchups := []struct {
		a, b race.Strategy
	}{
		{nln, wh},
		{both, nln},
		{both, wh},
	}
	for _, m := range matchups {
		res, err := race.Season(m.a, m.b, path, season, marginDB, sigmaSeconds)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%s vs %s", m.a.Name, m.b.Name),
			fmt.Sprintf("%.1f%%", res.WinShareA*100),
			fmt.Sprintf("%d", res.AUnavailable),
			fmt.Sprintf("%d", res.BUnavailable))
	}
	return t, nil
}
