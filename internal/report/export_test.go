package report

import (
	"bytes"
	"strings"
	"testing"
)

func exportFixture() *Table {
	t := &Table{
		Title:   "Fixture",
		Headers: []string{"Name", "Latency (ms)"},
	}
	t.AddRow("New Line Networks", "3.96171")
	t.AddRow("plain", "1")
	t.AddRow("", "2")
	return t
}

func TestWriteData(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WriteData(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "# Fixture") {
		t.Errorf("title comment missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "# Name") {
		t.Errorf("header comment missing: %q", lines[1])
	}
	if lines[2] != `"New Line Networks"	3.96171` {
		t.Errorf("quoted row = %q", lines[2])
	}
	if lines[3] != "plain\t1" {
		t.Errorf("plain row = %q", lines[3])
	}
	if lines[4] != `""	2` {
		t.Errorf("empty cell row = %q", lines[4])
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{Headers: []string{"A", "B"}}
	tb.AddRow("x,y", `say "hi"`)
	tb.AddRow("plain", "1")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\r\n")
	if lines[0] != "A,B" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"x,y","say ""hi"""` {
		t.Errorf("escaped row = %q", lines[1])
	}
	if lines[2] != "plain,1" {
		t.Errorf("plain row = %q", lines[2])
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := &Table{Title: "MD", Headers: []string{"A", "B"}}
	tb.AddRow("x|y", "1")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "### MD" {
		t.Errorf("title = %q", lines[0])
	}
	if lines[2] != "| A | B |" {
		t.Errorf("header = %q", lines[2])
	}
	if lines[3] != "| --- | --- |" {
		t.Errorf("separator = %q", lines[3])
	}
	if lines[4] != `| x\|y | 1 |` {
		t.Errorf("escaped row = %q", lines[4])
	}
}

func TestWriteCDFData(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCDFData(&buf, "lengths", []float64{3, 1, 2, 2}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 2 comment lines + 3 distinct values.
	if len(lines) != 5 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[2] != "1\t0.250000" {
		t.Errorf("first step = %q", lines[2])
	}
	if lines[3] != "2\t0.750000" { // duplicate collapses to final rank
		t.Errorf("dup step = %q", lines[3])
	}
	if lines[4] != "3\t1.000000" {
		t.Errorf("last step = %q", lines[4])
	}
}

func TestFig4aDataExport(t *testing.T) {
	tb, err := Fig4a(db(t), snapshot)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteData(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "median") {
		t.Error("exported data missing median row")
	}
	buf.Reset()
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "Percentile,WH,NLN") {
		t.Errorf("CSV header = %q", strings.SplitN(buf.String(), "\r\n", 2)[0])
	}
}
