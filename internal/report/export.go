package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteData renders the table as a gnuplot-friendly data file: a
// commented header, then whitespace-separated rows. Cells containing
// spaces are quoted.
func (t *Table) WriteData(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# %s\n", strings.Join(quoteCells(t.Headers), "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(quoteCells(row), "\t")); err != nil {
			return err
		}
	}
	return nil
}

func quoteCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, " \t") {
			out[i] = `"` + strings.ReplaceAll(c, `"`, `'`) + `"`
		} else if c == "" {
			out[i] = `""`
		} else {
			out[i] = c
		}
	}
	return out
}

// WriteCSV renders the table as RFC-4180-style CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\r\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as GitHub-flavored markdown (the
// format EXPERIMENTS.md uses).
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	esc := func(c string) string { return strings.ReplaceAll(c, "|", "\\|") }
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(mapCells(cells, esc), " | "))
		return err
	}
	if err := row(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

func mapCells(cells []string, f func(string) string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = f(c)
	}
	return out
}

// WriteCDFData writes an empirical CDF as two-column plot data
// (value, cumulative fraction), one step per distinct sample value —
// exactly what Fig 4's plots consume.
func WriteCDFData(w io.Writer, label string, values []float64) error {
	if _, err := fmt.Fprintf(w, "# CDF: %s (%d samples)\n# value\tfraction\n",
		label, len(values)); err != nil {
		return err
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	for i, v := range sorted {
		if i+1 < len(sorted) && sorted[i+1] == v {
			continue // emit each distinct value once, at its final rank
		}
		if _, err := fmt.Fprintf(w, "%g\t%.6f\n", v, float64(i+1)/n); err != nil {
			return err
		}
	}
	return nil
}
