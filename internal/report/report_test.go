package report

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hftnetview/internal/engine"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

var (
	corpus   *uls.Database
	shared   *engine.Engine
	snapshot = uls.NewDate(2020, time.April, 1)
)

// db returns a snapshot engine over the shared synthetic corpus. One
// engine serves the whole test package, so the suite also exercises
// cross-table snapshot reuse the way cmd/hftreport does.
func db(t *testing.T) *engine.Engine {
	t.Helper()
	if corpus == nil {
		d, err := synth.Generate()
		if err != nil {
			t.Fatal(err)
		}
		corpus = d
		shared = engine.New(corpus)
	}
	return shared
}

func TestTableString(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Headers: []string{"A", "BB"},
	}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, underline, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Errorf("title missing: %q", lines[0])
	}
	if !strings.Contains(out, "longer  2") {
		t.Errorf("row alignment wrong:\n%s", out)
	}
}

func TestTable1Report(t *testing.T) {
	tb, err := Table1(db(t), snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tb.Rows))
	}
	if tb.Rows[0][0] != "New Line Networks" || tb.Rows[0][1] != "3.96171" {
		t.Errorf("rank 1 = %v", tb.Rows[0])
	}
	if tb.Rows[8][0] != "SW Networks" {
		t.Errorf("rank 9 = %v", tb.Rows[8])
	}
	out := tb.String()
	for _, want := range []string{"Licensee", "APA", "#Towers", "Webline Holdings"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestTable2Report(t *testing.T) {
	tb, err := Table2(db(t), snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	want := map[string][2]string{
		"CME-NY4":    {"1186", "NLN 3.96171"},
		"CME-NYSE":   {"1174", "NLN 3.93209"},
		"CME-NASDAQ": {"1176", "NLN 3.92728"},
	}
	for _, row := range tb.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Fatalf("unexpected path %q", row[0])
		}
		if row[1] != w[0] {
			t.Errorf("%s geodesic = %q, want %q", row[0], row[1], w[0])
		}
		if row[2] != w[1] {
			t.Errorf("%s rank1 = %q, want %q", row[0], row[2], w[1])
		}
	}
}

func TestTable3Report(t *testing.T) {
	tb, err := Table3(db(t), snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if !strings.HasSuffix(row[1], "%") || !strings.HasSuffix(row[2], "%") {
			t.Errorf("APA cells not percentages: %v", row)
		}
	}
}

func TestFig1And2Reports(t *testing.T) {
	f1, err := Fig1(db(t), 2013, 2020)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Rows) != 8 {
		t.Fatalf("Fig1 rows = %d, want 8", len(f1.Rows))
	}
	if len(f1.Headers) != 6 {
		t.Fatalf("Fig1 headers = %v", f1.Headers)
	}
	// 2013: only NTC and WH connected.
	if f1.Rows[0][1] == "-" || f1.Rows[0][2] == "-" {
		t.Errorf("2013 NTC/WH should be connected: %v", f1.Rows[0])
	}
	if f1.Rows[0][4] != "-" || f1.Rows[0][5] != "-" {
		t.Errorf("2013 PB/NLN should be dashes: %v", f1.Rows[0])
	}
	// 2020: NTC gone, PB present.
	last := f1.Rows[7]
	if last[1] != "-" {
		t.Errorf("2020 NTC should be dash: %v", last)
	}
	if last[4] != "3.96209" || last[5] != "3.96171" {
		t.Errorf("2020 PB/NLN = %v", last)
	}

	f2, err := Fig2(db(t), 2013, 2020)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Rows) != 8 {
		t.Fatalf("Fig2 rows = %d", len(f2.Rows))
	}
	if f2.Rows[6][1] != "0" { // NTC in 2019
		t.Errorf("NTC 2019 count = %q, want 0", f2.Rows[6][1])
	}
}

func TestFig3Artifacts(t *testing.T) {
	dates := []uls.Date{
		uls.NewDate(2016, time.January, 1),
		uls.NewDate(2020, time.April, 1),
	}
	files, err := Fig3(db(t), "New Line Networks", dates)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Fatalf("files = %d, want 4 (2 dates × svg+geojson)", len(files))
	}
	svg2016, ok := files["NLN-20160101.svg"]
	if !ok {
		t.Fatalf("missing NLN-20160101.svg; have %v", keys(files))
	}
	svg2020 := files["NLN-20200401.svg"]
	// The 2020 network has visibly more infrastructure (Fig 3 top vs
	// bottom): more circle elements.
	if strings.Count(string(svg2020), "<circle") <= strings.Count(string(svg2016), "<circle") {
		t.Error("2020 map should show more towers than 2016")
	}
	if _, ok := files["NLN-20160101.geojson"]; !ok {
		t.Error("missing geojson artifact")
	}
}

func keys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestFig4aReport(t *testing.T) {
	tb, err := Fig4a(db(t), snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 { // 10 deciles + median
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[10][0] != "median" {
		t.Errorf("last row = %v", tb.Rows[10])
	}
}

func TestFig4bReport(t *testing.T) {
	tb, err := Fig4b(db(t), snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	if tb.Rows[0][0] != "WH" || tb.Rows[1][0] != "NLN-alternate" || tb.Rows[2][0] != "NLN" {
		t.Errorf("series order = %v", tb.Rows)
	}
}

func TestFig5Report(t *testing.T) {
	tb, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 { // 3 segments × 3 altitudes
		t.Fatalf("rows = %d, want 9", len(tb.Rows))
	}
	// Oceanic segments have no MW cell.
	for _, row := range tb.Rows {
		if row[0] != "CME-NY4" && row[3] != "-" {
			t.Errorf("oceanic row has MW value: %v", row)
		}
		if row[0] == "CME-NY4" && row[3] == "-" {
			t.Errorf("corridor row missing MW value: %v", row)
		}
	}
}

func TestWeatherReport(t *testing.T) {
	tb, err := Weather(db(t), snapshot, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	nln, wh := tb.Rows[0], tb.Rows[1]
	if nln[0] != "NLN" || wh[0] != "WH" {
		t.Fatalf("row order = %v", tb.Rows)
	}
	// The §5 thesis: WH's availability under storms is at least NLN's.
	nlnAvail := parsePct(t, nln[2])
	whAvail := parsePct(t, wh[2])
	if whAvail < nlnAvail {
		t.Errorf("WH availability %v below NLN %v", whAvail, nlnAvail)
	}
	if whAvail < 90 {
		t.Errorf("WH availability %v%%, want >= 90 (6 GHz links survive)", whAvail)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := sscanPct(s, &v); err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func sscanPct(s string, v *float64) (int, error) {
	n := strings.TrimSuffix(s, "%")
	var f float64
	_, err := fmtSscan(n, &f)
	*v = f
	return 1, err
}

func fmtSscan(s string, f *float64) (int, error) {
	var v float64
	_, err := fmt.Sscanf(s, "%f", &v)
	*f = v
	return 1, err
}

func TestScrapeFunnelTable(t *testing.T) {
	tb := ScrapeFunnelTable(140, 57, 29, 1200, []string{"B Net", "A Net"})
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[4][0], "A Net") {
		t.Errorf("names not sorted: %v", tb.Rows)
	}
}

func TestAbbreviate(t *testing.T) {
	cases := map[string]string{
		"New Line Networks":      "NLN",
		"Pierce Broadband":       "PB",
		"AQ2AT":                  "AQ2AT",
		"Webline Holdings":       "WH",
		"National Tower Company": "NTC",
		"lowercase":              "lowercase",
	}
	for in, want := range cases {
		if got := abbreviate(in); got != want {
			t.Errorf("abbreviate(%q) = %q, want %q", in, got, want)
		}
	}
}
