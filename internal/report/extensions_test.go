package report

import (
	"fmt"
	"strings"
	"testing"
)

func TestOverheadSweepReport(t *testing.T) {
	tb, err := OverheadSweep(db(t), snapshot)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	// At zero overhead NLN leads; at 1.5 µs JM leads (§3's claim).
	var zeroLeader, highLeader string
	for _, row := range tb.Rows {
		switch row[0] {
		case "0.0":
			zeroLeader = row[1]
		case "1.5":
			highLeader = row[1]
		}
	}
	if !strings.HasPrefix(zeroLeader, "NLN") {
		t.Errorf("leader at 0 = %q, want NLN", zeroLeader)
	}
	if !strings.HasPrefix(highLeader, "JM") {
		t.Errorf("leader at 1.5 µs = %q, want JM", highLeader)
	}
	// The crossover row sits near 1.4 µs.
	if !strings.Contains(out, "leader from 1.4") {
		t.Errorf("missing ≈1.4 µs crossover:\n%s", out)
	}
}

func TestEntityResolutionReport(t *testing.T) {
	tb, err := EntityResolution(db(t), snapshot)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "Fox River Relay + Laurel Highlands Comm") {
		t.Errorf("joint pair not found:\n%s", out)
	}
	// All three signals fire.
	if !strings.Contains(out, "shared FRN") || !strings.Contains(out, "shared contact") ||
		!strings.Contains(out, "complementary links") {
		t.Errorf("missing a resolution signal:\n%s", out)
	}
	if !strings.Contains(out, "4.05500") {
		t.Errorf("union latency missing:\n%s", out)
	}
}

func TestDesignSweepReport(t *testing.T) {
	tb, err := DesignSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Latency identical across budgets; APA non-decreasing and ending
	// high; alt links growing.
	lat := tb.Rows[0][5]
	prevAPA := -1.0
	for _, row := range tb.Rows {
		if row[5] != lat {
			t.Errorf("latency changed across budgets: %v", row)
		}
		apa := parsePct(t, row[6])
		if apa < prevAPA {
			t.Errorf("APA fell: %v", tb.Rows)
		}
		prevAPA = apa
	}
	if prevAPA < 60 {
		t.Errorf("max-budget APA = %v%%, want high redundancy", prevAPA)
	}
	if tb.Rows[0][4] != "0" {
		t.Errorf("chain-only budget bought alt links: %v", tb.Rows[0])
	}
}

func TestAvailabilityBudgetReport(t *testing.T) {
	tb, err := AvailabilityBudget(db(t), snapshot, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d, want the 9 connected networks", len(tb.Rows))
	}
	vals := map[string]float64{}
	for _, row := range tb.Rows {
		var v float64
		if _, err := fmt.Sscanf(row[1], "%f", &v); err != nil {
			t.Fatalf("bad availability cell %q", row[1])
		}
		if v <= 0.99 || v > 1 {
			t.Errorf("%s rain availability %v implausible", row[0], v)
		}
		vals[row[0]] = v
	}
	// §5: WH out-rides rain vs NLN.
	if vals["WH"] <= vals["NLN"] {
		t.Errorf("WH rain availability %v not above NLN %v", vals["WH"], vals["NLN"])
	}
}

func TestDiverseRoutesReport(t *testing.T) {
	tb, err := DiverseRoutes(db(t), snapshot, 3)
	if err != nil {
		t.Fatal(err)
	}
	perNet := map[string]int{}
	for _, row := range tb.Rows {
		perNet[row[0]]++
	}
	// Braided networks have 3 routes; Blueline's chain exactly 1.
	if perNet["NLN"] != 3 || perNet["WH"] != 3 {
		t.Errorf("route counts = %v, want 3 each for NLN/WH", perNet)
	}
	if perNet["BC"] != 1 {
		t.Errorf("BC routes = %d, want exactly 1 (pure chain)", perNet["BC"])
	}
	// Rank-1 rows are 0 µs behind themselves.
	for _, row := range tb.Rows {
		if row[1] == "1" && row[4] != "0.00" {
			t.Errorf("rank-1 row has nonzero gap: %v", row)
		}
	}
}

func TestRaceStrategiesReport(t *testing.T) {
	tb, err := RaceStrategies(db(t), snapshot, 10, 40, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	// The combination strategy must beat both single subscriptions.
	for _, row := range tb.Rows[1:] {
		share := parsePct(t, strings.TrimSpace(row[1]))
		if share <= 50 {
			t.Errorf("%s win share = %v%%, want > 50", row[0], share)
		}
	}
	// The combination is never dark.
	if tb.Rows[1][2] != "0" || tb.Rows[2][2] != "0" {
		t.Errorf("combo should never be dark: %v", tb.Rows)
	}
}
