package report

import (
	"fmt"
	"math"
	"sort"

	"hftnetview/internal/core"
	"hftnetview/internal/geo"
	"hftnetview/internal/leo"
	"hftnetview/internal/radio"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/viz"
)

// Fig1Networks are the five networks the paper's longitudinal figures
// track.
var Fig1Networks = []string{
	"National Tower Company",
	"Webline Holdings",
	"Jefferson Microwave",
	"Pierce Broadband",
	"New Line Networks",
}

// Every table takes a core.SnapshotProvider rather than a raw database:
// cmd/hftreport passes one shared snapshot engine, so reconstructions
// repeated across experiments (the same licensee at the same date shows
// up in Table 3, Fig 4, the weather runs, ...) are built once and
// served from the memo store thereafter.

// snap fetches a single-licensee snapshot over the full site set — the
// shape most tables want.
func snap(p core.SnapshotProvider, licensee string, date uls.Date, opts core.Options) (*core.Network, error) {
	return p.Snapshot(core.SnapshotRequest{
		Licensees: []string{licensee},
		Date:      date,
		DCs:       sites.All,
		Opts:      opts,
	})
}

// Table1 reproduces Table 1: connected CME–NY4 networks at the date, in
// latency order, with APA and shortest-path tower counts.
func Table1(p core.SnapshotProvider, date uls.Date) (*Table, error) {
	path := sites.Path{From: sites.CME, To: sites.NY4}
	rows, err := core.ConnectedNetworksVia(p, date, path, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Table 1: connected CME-NY4 networks as of %s", date),
		Headers: []string{"Licensee", "Latency (ms)", "APA (%)", "#Towers"},
	}
	for _, r := range rows {
		t.AddRow(r.Licensee, ms(r.Latency.Milliseconds()), pct(r.APA),
			fmt.Sprintf("%d", r.TowerCount))
	}
	return t, nil
}

// Table2 reproduces Table 2: per corridor path, the geodesic distance
// and the three fastest networks.
func Table2(p core.SnapshotProvider, date uls.Date) (*Table, error) {
	ranks, err := core.RankNetworksVia(p, date, sites.CorridorPaths(), 3, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Table 2: fastest networks per path as of %s", date),
		Headers: []string{"HFT Path", "Geodesic (km)", "Rank 1", "Rank 2", "Rank 3"},
	}
	for _, pr := range ranks {
		row := []string{pr.Path.Name(), fmt.Sprintf("%.0f", pr.GeodesicMeters/1000)}
		for i := 0; i < 3; i++ {
			if i < len(pr.Ranked) {
				r := pr.Ranked[i]
				row = append(row, fmt.Sprintf("%s %s", abbreviate(r.Licensee),
					ms(r.Latency.Milliseconds())))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// abbreviate shortens a licensee name to the initial-letters form the
// paper uses (NLN, PB, JM, ...).
func abbreviate(name string) string {
	var out []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return name
	}
	return string(out)
}

// Table3 reproduces Table 3: APA for New Line Networks vs Webline
// Holdings on all three paths.
func Table3(p core.SnapshotProvider, date uls.Date) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Table 3: alternate path availability as of %s", date),
		Headers: []string{"Path", "NLN", "WH"},
	}
	opts := core.DefaultOptions()
	nln, err := snap(p, "New Line Networks", date, opts)
	if err != nil {
		return nil, err
	}
	wh, err := snap(p, "Webline Holdings", date, opts)
	if err != nil {
		return nil, err
	}
	for _, pth := range sites.CorridorPaths() {
		a, _ := nln.APA(pth)
		b, _ := wh.APA(pth)
		t.AddRow(pth.Name(), pct(a), pct(b))
	}
	return t, nil
}

// Fig1 reproduces Fig 1's series: end-to-end CME–NY4 latency per year
// for the five tracked networks ("-" where not connected).
func Fig1(p core.SnapshotProvider, firstYear, lastYear int) (*Table, error) {
	return Fig1Grid(p, firstYear, lastYear, "yearly")
}

// Fig1Grid is Fig1 on an arbitrary sampling grid ("yearly", "monthly",
// "daily"). Dense grids are where the engine's delta sweep pays off:
// every date between two license events resolves to the same anchor
// snapshot, so a daily sweep costs one linear event-log pass, not one
// rebuild per day.
func Fig1Grid(p core.SnapshotProvider, firstYear, lastYear int, grid string) (*Table, error) {
	dates, err := core.GridDates(firstYear, lastYear, grid)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 1: CME-NY4 latency evolution (ms)",
		Headers: append([]string{"Date"}, abbreviateAll(Fig1Networks)...),
	}
	path := sites.Path{From: sites.CME, To: sites.NY4}
	series := make(map[string][]core.EvolutionPoint, len(Fig1Networks))
	for _, name := range Fig1Networks {
		pts, err := core.EvolutionVia(p, name, path, dates, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		series[name] = pts
	}
	for i, d := range dates {
		row := []string{d.String()}
		for _, name := range Fig1Networks {
			pt := series[name][i]
			if pt.Connected {
				row = append(row, ms(pt.Latency.Milliseconds()))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig2 reproduces Fig 2's series: active license counts per year for the
// five tracked networks.
func Fig2(p core.SnapshotProvider, firstYear, lastYear int) (*Table, error) {
	return Fig2Grid(p, firstYear, lastYear, "yearly")
}

// Fig2Grid is Fig2 on an arbitrary sampling grid. Counts come from the
// event log's prefix sums — O(log events) per cell — so a daily grid
// over the full corpus range stays instant.
func Fig2Grid(p core.SnapshotProvider, firstYear, lastYear int, grid string) (*Table, error) {
	dates, err := core.GridDates(firstYear, lastYear, grid)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 2: active licenses over time",
		Headers: append([]string{"Date"}, abbreviateAll(Fig1Networks)...),
	}
	log := p.DB().EventLog()
	for _, d := range dates {
		row := []string{d.String()}
		for _, name := range Fig1Networks {
			row = append(row, fmt.Sprintf("%d", log.ActiveCount(name, d)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func abbreviateAll(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = abbreviate(n)
	}
	return out
}

// Fig3 renders the Fig 3 map artifacts: the named network at each date,
// as SVG and GeoJSON, keyed by file name.
func Fig3(p core.SnapshotProvider, licensee string, dates []uls.Date) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for _, d := range dates {
		n, err := snap(p, licensee, d, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		base := fmt.Sprintf("%s-%04d%02d%02d", abbreviate(licensee), d.Year, d.Month, d.Day)
		out[base+".svg"] = viz.NetworkSVG(n, viz.SVGOptions{})
		gj, err := viz.NetworkGeoJSON(n)
		if err != nil {
			return nil, err
		}
		out[base+".geojson"] = gj
	}
	return out, nil
}

// Fig4a reproduces Fig 4(a): deciles of the link-length CDFs (km) for
// Webline Holdings and New Line Networks over CME–NY4 bounded paths.
func Fig4a(p core.SnapshotProvider, date uls.Date) (*Table, error) {
	path := sites.Path{From: sites.CME, To: sites.NY4}
	opts := core.DefaultOptions()
	t := &Table{
		Title:   "Fig 4a: link-length CDF deciles (km), CME-NY4 bounded paths",
		Headers: []string{"Percentile", "WH", "NLN"},
	}
	cdfs := make(map[string]core.CDF)
	for _, name := range []string{"Webline Holdings", "New Line Networks"} {
		n, err := snap(p, name, date, opts)
		if err != nil {
			return nil, err
		}
		lengths, ok := n.LinkLengthsOnBoundedPaths(path)
		if !ok {
			return nil, fmt.Errorf("report: %s has no bounded paths", name)
		}
		cdfs[abbreviate(name)] = core.NewCDF(lengths)
	}
	for pc := 10; pc <= 100; pc += 10 {
		q := float64(pc) / 100
		t.AddRow(fmt.Sprintf("p%d", pc),
			fmt.Sprintf("%.1f", cdfs["WH"].Quantile(q)/1000),
			fmt.Sprintf("%.1f", cdfs["NLN"].Quantile(q)/1000))
	}
	t.AddRow("median", fmt.Sprintf("%.1f", cdfs["WH"].Median()/1000),
		fmt.Sprintf("%.1f", cdfs["NLN"].Median()/1000))
	return t, nil
}

// Fig4b reproduces Fig 4(b): the operating-frequency distributions for
// WH and NLN shortest paths and NLN's alternate paths on CME–NY4.
func Fig4b(p core.SnapshotProvider, date uls.Date) (*Table, error) {
	path := sites.Path{From: sites.CME, To: sites.NY4}
	opts := core.DefaultOptions()
	wh, err := snap(p, "Webline Holdings", date, opts)
	if err != nil {
		return nil, err
	}
	nln, err := snap(p, "New Line Networks", date, opts)
	if err != nil {
		return nil, err
	}
	whSP, _ := wh.FrequenciesOnShortestPath(path)
	nlnSP, _ := nln.FrequenciesOnShortestPath(path)
	nlnAlt, _ := nln.FrequenciesOnAlternatePaths(path)

	t := &Table{
		Title:   "Fig 4b: operating frequencies, CME-NY4 (fractions per band)",
		Headers: []string{"Series", "n", "<7 GHz", "10-12 GHz", ">=17 GHz"},
	}
	addSeries := func(label string, freqs []float64) {
		var b6, b11, b18 int
		for _, f := range freqs {
			switch {
			case f < 7:
				b6++
			case f >= 10 && f < 12:
				b11++
			case f >= 17:
				b18++
			}
		}
		n := len(freqs)
		if n == 0 {
			t.AddRow(label, "0", "-", "-", "-")
			return
		}
		t.AddRow(label, fmt.Sprintf("%d", n),
			pct(float64(b6)/float64(n)),
			pct(float64(b11)/float64(n)),
			pct(float64(b18)/float64(n)))
	}
	addSeries("WH", whSP)
	addSeries("NLN-alternate", nlnAlt)
	addSeries("NLN", nlnSP)
	return t, nil
}

// Fig5 reproduces the Fig 5 / §6 comparison: LEO vs terrestrial MW vs
// fiber over a short land corridor and transoceanic segments, across
// shell altitudes.
func Fig5() (*Table, error) {
	frankfurt := geo.Point{Lat: 50.1109, Lon: 8.6821}
	washington := geo.Point{Lat: 38.9072, Lon: -77.0369}
	tokyo := geo.Point{Lat: 35.6762, Lon: 139.6503}
	newYork := geo.Point{Lat: 40.7128, Lon: -74.0060}

	t := &Table{
		Title: "Fig 5: LEO vs terrestrial microwave vs fiber (one-way ms)",
		Headers: []string{"Segment", "Shell (km)", "Ground (km)",
			"MW", "Fiber", "LEO"},
	}
	type seg struct {
		label                   string
		a, b                    geo.Point
		mwViable                bool
		mwStretch, fiberStretch float64
	}
	segs := []seg{
		{"CME-NY4", sites.CME.Location, sites.NY4.Location, true, 1.0014, 1.60},
		{"FRA-IAD", frankfurt, washington, false, 0, 1.40},
		{"TYO-NYC", tokyo, newYork, false, 0, 1.55},
	}
	for _, s := range segs {
		for _, alt := range []float64{300, 550, 1100} {
			c := leo.Constellation{AltitudeM: alt * 1000, SpacingM: 2000e3}
			cmp, err := leo.Compare(s.label, s.a, s.b, c, s.mwViable,
				s.mwStretch, s.fiberStretch)
			if err != nil {
				return nil, err
			}
			mwCell := "-"
			if s.mwViable && !math.IsNaN(cmp.MicrowaveMS) {
				mwCell = fmt.Sprintf("%.3f", cmp.MicrowaveMS)
			}
			t.AddRow(s.label, fmt.Sprintf("%.0f", alt),
				fmt.Sprintf("%.0f", cmp.GroundKM), mwCell,
				fmt.Sprintf("%.3f", cmp.FiberMS),
				fmt.Sprintf("%.3f", cmp.LEOMS))
		}
	}
	return t, nil
}

// Weather runs the §5 reliability extension: N seeded storms over the
// corridor, measuring survival and conditional latency for NLN vs WH on
// CME–NY4. The snapshots come from the provider; RouteUnderStorm
// toggles graph edges, which is safe because provider snapshots are
// private clones.
func Weather(p core.SnapshotProvider, date uls.Date, storms int, marginDB float64) (*Table, error) {
	path := sites.Path{From: sites.CME, To: sites.NY4}
	opts := core.DefaultOptions()
	t := &Table{
		Title: fmt.Sprintf("Weather extension: %d storms, %.0f dB fade margin, CME-NY4",
			storms, marginDB),
		Headers: []string{"Network", "Fair (ms)", "Available", "Mean storm (ms)",
			"Worst (ms)", "Mean links down", "Clear-air avail"},
	}
	for _, name := range []string{"New Line Networks", "Webline Holdings"} {
		n, err := snap(p, name, date, opts)
		if err != nil {
			return nil, err
		}
		fair, ok := n.BestRoute(path)
		if !ok {
			return nil, fmt.Errorf("report: %s not connected", name)
		}
		survived := 0
		var latencies []float64
		var downTotal int
		worst := fair.Latency.Milliseconds()
		for seed := 0; seed < storms; seed++ {
			storm := radio.GenerateStorm(uint64(seed+1), sites.CME.Location,
				sites.NY4.Location, radio.DefaultStormConfig())
			impact, err := n.RouteUnderStorm(path, storm, marginDB)
			if err != nil {
				return nil, err
			}
			downTotal += impact.LinksDown
			if impact.Connected {
				survived++
				lat := impact.Route.Latency.Milliseconds()
				latencies = append(latencies, lat)
				if lat > worst {
					worst = lat
				}
			}
		}
		mean := math.NaN()
		if len(latencies) > 0 {
			sum := 0.0
			for _, l := range latencies {
				sum += l
			}
			mean = sum / float64(len(latencies))
		}
		clearAir, _ := n.ClearAirAvailability(path, marginDB)
		t.AddRow(abbreviate(name), ms(fair.Latency.Milliseconds()),
			pct(float64(survived)/float64(storms)),
			ms(mean), ms(worst),
			fmt.Sprintf("%.1f", float64(downTotal)/float64(storms)),
			fmt.Sprintf("%.5f", clearAir))
	}
	return t, nil
}

// Fig3Diff quantifies the Fig 3 visual comparison: the infrastructure
// delta between a licensee's reconstructions at two dates.
func Fig3Diff(p core.SnapshotProvider, licensee string, before, after uls.Date) (*Table, error) {
	opts := core.DefaultOptions()
	oldNet, err := snap(p, licensee, before, opts)
	if err != nil {
		return nil, err
	}
	newNet, err := snap(p, licensee, after, opts)
	if err != nil {
		return nil, err
	}
	d := core.DiffNetworks(oldNet, newNet)
	t := &Table{
		Title:   fmt.Sprintf("Fig 3 delta: %s, %s -> %s", licensee, before, after),
		Headers: []string{"Quantity", "Kept", "Added", "Removed"},
	}
	t.AddRow("Towers", fmt.Sprintf("%d", d.TowersKept),
		fmt.Sprintf("%d", d.TowersAdded), fmt.Sprintf("%d", d.TowersRemoved))
	t.AddRow("Links", fmt.Sprintf("%d", d.LinksKept),
		fmt.Sprintf("%d", d.LinksAdded), fmt.Sprintf("%d", d.LinksRemoved))
	if d.TowersRemoved > 0 {
		moved := core.MovedTowers(oldNet, newNet, 30e3)
		t.AddRow("Replaced nearby (<30 km)", "", fmt.Sprintf("%d", moved), "")
	}
	return t, nil
}

// ScrapeFunnelTable formats a §2.2 funnel result.
func ScrapeFunnelTable(geographic, candidates, shortlisted, scraped int, names []string) *Table {
	t := &Table{
		Title:   "Scrape pipeline (§2.2) funnel",
		Headers: []string{"Stage", "Count"},
	}
	t.AddRow("Licenses within 10 km of CME", fmt.Sprintf("%d", geographic))
	t.AddRow("Candidate licensees (MG/FXO)", fmt.Sprintf("%d", candidates))
	t.AddRow("Shortlisted (>= 11 filings)", fmt.Sprintf("%d", shortlisted))
	t.AddRow("Licenses scraped", fmt.Sprintf("%d", scraped))
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		t.AddRow("  shortlisted: "+n, "")
	}
	return t
}
