package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hftnetview/internal/synth"
)

func TestKeyframeRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	payload := []byte(`{"corpus_sha256":"abc","keyframe_interval":16}`)
	if err := s.SaveKeyframes(3, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadKeyframes(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %q != %q", got, payload)
	}
	// Overwrite is atomic replace, not append.
	if err := s.SaveKeyframes(3, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.LoadKeyframes(3); err != nil || string(got) != "v2" {
		t.Fatalf("after overwrite: %q, %v", got, err)
	}
}

func TestKeyframeMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.LoadKeyframes(7); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing keyframes: err = %v, want os.ErrNotExist", err)
	}

	if err := s.SaveKeyframes(7, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, keyframeName(7))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a payload byte under the CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadKeyframes(7); err == nil {
		t.Fatal("corrupt keyframe payload loaded without error")
	}

	if err := os.WriteFile(path, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadKeyframes(7); err == nil {
		t.Fatal("truncated keyframe file loaded without error")
	}
}

// TestKeyframeGCSweep: GC removes keyframe files together with their
// generations, and orphan keyframes (no manifest) go too; the kept
// generation's keyframes survive.
func TestKeyframeGCSweep(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	db, err := synth.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 3; i++ {
		gi, err := s.Save(db, "test")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, gi.ID)
		if err := s.SaveKeyframes(gi.ID, []byte("kf")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveKeyframes(999, []byte("orphan")); err != nil {
		t.Fatal(err)
	}

	if _, err := s.GC(1); err != nil {
		t.Fatal(err)
	}
	last := ids[len(ids)-1]
	if _, err := s.LoadKeyframes(last); err != nil {
		t.Fatalf("kept generation's keyframes swept: %v", err)
	}
	for _, id := range append(ids[:len(ids)-1], 999) {
		if _, err := s.LoadKeyframes(id); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("generation %d keyframes survived GC: %v", id, err)
		}
	}
}
