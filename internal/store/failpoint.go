package store

import "errors"

// ErrFailpoint is the sentinel returned by armed failpoint hooks to
// simulate a crash: Save aborts immediately and — deliberately — leaves
// whatever is already on disk exactly as a real crash would, so the
// crash-consistency tests recover from authentic debris. Any hook error
// not wrapping ErrFailpoint is treated as an ordinary I/O failure and
// the in-progress temp directory is cleaned up.
var ErrFailpoint = errors.New("store: injected failpoint")

// Failpoints are the injectable crash hooks threaded through Save's
// publication protocol, in the order they fire:
//
//	segment bytes written ──BeforeFsync──▶ segment fsynced
//	all segments fsynced ──BeforeManifest──▶ segment dir renamed into place
//	manifest temp written+fsynced ──MidRename──▶ manifest renamed (COMMIT)
//	manifest renamed ──AfterPublish──▶ Save returns
//
// A nil hook is a no-op. Hooks returning an error wrapping ErrFailpoint
// simulate a kill at that instant. AfterPublish fires after the commit
// point; tests use it to flip bits in published files (the at-rest
// corruption recovery must catch) — an error from it still aborts Save,
// but the generation is already durable.
type Failpoints struct {
	// BeforeFsync fires before each segment file fsync, with the
	// segment's path. A crash here may leave a torn segment.
	BeforeFsync func(path string) error
	// BeforeManifest fires after every segment is fsynced but before
	// the manifest exists in any form. A crash here leaves a complete
	// segment directory that no manifest references.
	BeforeManifest func() error
	// MidRename fires after the manifest temp file is written and
	// fsynced but before the atomic rename that commits it. A crash
	// here leaves a *.tmp manifest recovery must ignore.
	MidRename func(tmpPath, finalPath string) error
	// AfterPublish fires after the manifest rename (the generation is
	// committed), with the generation's segment directory and manifest
	// path. Bit-flip corruption is injected here.
	AfterPublish func(genDir, manifestPath string) error
}

func callFP(hook func() error) error {
	if hook == nil {
		return nil
	}
	return hook()
}

// StagingFailpoints are the crash hooks threaded through the staging
// area's per-segment durability protocol (staging.go), in the order
// they fire:
//
//	fetched bytes appended ──MidSegmentWrite──▶ partial grows
//	partial verified + renamed ──BeforeJournal──▶ journal line appended
//	journal line fsynced ──AfterJournal──▶ segment counts as done
//
// A crash at MidSegmentWrite leaves an untrusted partial a resumed
// pull must range-fetch past and re-verify whole. A crash at
// BeforeJournal leaves a verified final-named segment with no journal
// line — the one window where the bytes lead the record — which
// OpenStaging re-hashes and adopts. A crash at AfterJournal loses
// nothing: bytes and record both landed.
type StagingFailpoints struct {
	// MidSegmentWrite fires before each append to a segment's partial
	// file, with the segment name and the offset the bytes would land
	// at.
	MidSegmentWrite func(name string, off int64) error
	// BeforeJournal fires after a segment is verified and renamed to
	// its final name but before its journal line is appended.
	BeforeJournal func(name string) error
	// AfterJournal fires after the segment's journal line is fsynced.
	AfterJournal func(name string) error
}

func (fp StagingFailpoints) midWrite(name string, off int64) error {
	if fp.MidSegmentWrite == nil {
		return nil
	}
	return fp.MidSegmentWrite(name, off)
}

func callNameFP(hook func(name string) error, name string) error {
	if hook == nil {
		return nil
	}
	return hook(name)
}
