package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fetchLog records every simulated wire fetch a staged pull performs:
// which segment, and from which byte offset. The crash-recovery
// assertions are all statements about this log — a verified segment
// must never be fetched again, a resumed partial must be fetched from
// exactly its surviving size.
type fetchLog struct {
	entries []fetchEntry
}

type fetchEntry struct {
	name string
	off  int64
}

func (l *fetchLog) add(name string, off int64) {
	l.entries = append(l.entries, fetchEntry{name, off})
}

func (l *fetchLog) fetchesOf(name string) []fetchEntry {
	var out []fetchEntry
	for _, e := range l.entries {
		if e.name == name {
			out = append(out, e)
		}
	}
	return out
}

// stagedPull drives one staging area the way the fleet puller does —
// resume partials, fetch missing ranges in chunks, verify, install —
// against a local source store standing in for the wire. Any error
// (including an injected crash) aborts mid-flight exactly like a kill,
// leaving the staging area as-is.
func stagedPull(t *testing.T, dst, src *Store, srcID int64, mb []byte, log *fetchLog) error {
	t.Helper()
	stg, err := dst.OpenStaging(mb)
	if err != nil {
		return err
	}
	defer stg.Close()
	const chunk = 8 << 10
	for _, si := range stg.Missing() {
		off := stg.PartialSize(si.Name)
		if off > si.Bytes {
			if err := stg.ResetPartial(si.Name); err != nil {
				return err
			}
			off = 0
		}
		if off < si.Bytes {
			data, err := src.ReadSegmentRaw(srcID, si.Name)
			if err != nil {
				return err
			}
			log.add(si.Name, off)
			w, werr := stg.SegmentWriter(si)
			if werr != nil {
				return werr
			}
			werr = func() error {
				for pos := off; pos < int64(len(data)); pos += chunk {
					end := min(pos+chunk, int64(len(data)))
					if _, err := w.Write(data[pos:end]); err != nil {
						return err
					}
				}
				return nil
			}()
			w.Close()
			if werr != nil {
				return werr
			}
		}
		if err := stg.CompleteSegment(si); err != nil {
			return err
		}
	}
	_, _, err = dst.InstallStaged(stg)
	return err
}

// crashBudget arms every staging failpoint with a shared countdown:
// the Nth event (partial write, pre-journal, post-journal) crashes.
type crashBudget struct {
	remaining int
	armed     bool
}

func (c *crashBudget) tick(where string) error {
	if !c.armed {
		return nil
	}
	c.remaining--
	if c.remaining <= 0 {
		c.armed = false
		return fmt.Errorf("%w: at %s", ErrFailpoint, where)
	}
	return nil
}

func (c *crashBudget) points() StagingFailpoints {
	return StagingFailpoints{
		MidSegmentWrite: func(name string, off int64) error {
			return c.tick(fmt.Sprintf("mid-write %s@%d", name, off))
		},
		BeforeJournal: func(name string) error { return c.tick("before-journal " + name) },
		AfterJournal:  func(name string) error { return c.tick("after-journal " + name) },
	}
}

// TestStagingCrashRecovery is the torn-transfer matrix: seeds 1–20
// each kill the pull at a different staging event — mid-partial-write,
// after a segment's verify+rename but before its journal line, and
// right after the journal append — then resume with a fresh pull.
// Invariants, per seed:
//
//   - resume never re-fetches a byte of any segment the crashed pull
//     verified (journaled or caught in the pre-journal window);
//   - resume never trusts an unverified partial: the surviving bytes
//     are continued from their exact offset and the whole file still
//     has to pass the size+SHA-256 ladder;
//   - the final install is byte-identical to the source corpus and
//     leaves no staging debris.
func TestStagingCrashRecovery(t *testing.T) {
	db := corpus(t)
	src := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))
	gi, err := src.Save(db, "crash matrix source")
	if err != nil {
		t.Fatal(err)
	}
	if len(gi.Segments) < 3 {
		t.Fatalf("want a multi-segment generation for the matrix, got %d", len(gi.Segments))
	}
	mb, _, err := src.ExportManifest(gi.ID)
	if err != nil {
		t.Fatal(err)
	}

	for seed := 1; seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			budget := &crashBudget{remaining: seed, armed: true}
			dst := open(t, t.TempDir(), WithStagingFailpoints(budget.points()))
			log := &fetchLog{}

			err := stagedPull(t, dst, src, gi.ID, mb, log)
			crashed := errors.Is(err, ErrFailpoint)
			if err != nil && !crashed {
				t.Fatalf("first pull failed outside the injected crash: %v", err)
			}

			if crashed {
				rep, rerr := dst.StagingReportFor(gi.ID)
				if rerr != nil {
					t.Fatalf("no staging area survived the crash: %v", rerr)
				}
				verifiedAtCrash := map[string]bool{}
				for _, name := range rep.Verified {
					verifiedAtCrash[name] = true
				}
				// The pre-journal window: a final-named file the journal
				// has not recorded. The report intentionally omits it, but
				// resume must adopt it; find such files on disk.
				sdir := filepath.Join(dst.Dir(), stagingRootName, stagingDirName(gi.ID))
				finalNamed := map[string]bool{}
				for _, si := range gi.Segments {
					if _, serr := os.Stat(filepath.Join(sdir, si.Name)); serr == nil {
						finalNamed[si.Name] = true
					}
				}
				partialAtCrash := map[string]int64{}
				for name, n := range rep.Partial {
					partialAtCrash[name] = n
				}

				mark := len(log.entries)
				if rerr := stagedPull(t, dst, src, gi.ID, mb, log); rerr != nil {
					t.Fatalf("resume pull: %v", rerr)
				}
				for _, e := range log.entries[mark:] {
					if finalNamed[e.name] {
						t.Errorf("resume re-fetched %s@%d — it was already verified on disk", e.name, e.off)
					}
					if want, ok := partialAtCrash[e.name]; ok && e.off != want {
						t.Errorf("resume fetched %s from %d, surviving partial was %d bytes", e.name, e.off, want)
					}
					if _, ok := partialAtCrash[e.name]; !ok && e.off != 0 {
						t.Errorf("resume fetched %s from %d with no surviving partial", e.name, e.off)
					}
				}
			}

			back, lgi, rep, err := dst.Load()
			if err != nil {
				t.Fatalf("load after recovery: %v\n%s", err, rep)
			}
			if lgi.ID != gi.ID || lgi.CorpusSHA256 != gi.CorpusSHA256 {
				t.Fatalf("recovered generation %d (%s), want %d (%s)",
					lgi.ID, lgi.CorpusSHA256[:8], gi.ID, gi.CorpusSHA256[:8])
			}
			if !bytes.Equal(bulkBytes(t, back), bulkBytes(t, db)) {
				t.Fatal("recovered corpus differs from the source")
			}
			if ids, _ := dst.StagingIDs(); len(ids) != 0 {
				t.Fatalf("staging leak after install: %v", ids)
			}
		})
	}
}

// TestStagingPoisonedPartialNeverTrusted plants garbage in a partial
// and asserts the resumed pull detects it at verification, discards
// the poison, and converges from a clean re-fetch — a partial is a
// hint, never a fact.
func TestStagingPoisonedPartialNeverTrusted(t *testing.T) {
	db := corpus(t)
	src := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))
	gi, err := src.Save(db, "poison source")
	if err != nil {
		t.Fatal(err)
	}
	mb, _, err := src.ExportManifest(gi.ID)
	if err != nil {
		t.Fatal(err)
	}

	dst := open(t, t.TempDir())
	stg, err := dst.OpenStaging(mb)
	if err != nil {
		t.Fatal(err)
	}
	// Write a poisoned prefix of the first segment: right length to
	// look like honest progress, wrong bytes.
	si := gi.Segments[0]
	w, err := stg.SegmentWriter(si)
	if err != nil {
		t.Fatal(err)
	}
	poison := bytes.Repeat([]byte{0xAB}, int(si.Bytes/2))
	if _, err := w.Write(poison); err != nil {
		t.Fatal(err)
	}
	w.Close()
	stg.Close()

	// The resumed pull continues from the poisoned offset — and must
	// reject the assembled segment, because the surviving prefix never
	// re-earned trust.
	log := &fetchLog{}
	err = stagedPull(t, dst, src, gi.ID, mb, log)
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("pull over a poisoned partial = %v, want ErrVerify", err)
	}
	if fs := log.fetchesOf(si.Name); len(fs) != 1 || fs[0].off != int64(len(poison)) {
		t.Fatalf("fetches of %s = %+v, want one resume from %d", si.Name, fs, len(poison))
	}
	if rep, _ := dst.StagingReportFor(gi.ID); rep != nil {
		if _, ok := rep.Partial[si.Name]; ok {
			t.Fatal("poisoned partial survived rejection — it must be discarded")
		}
	}

	// Next pull starts the segment from zero and converges.
	if err := stagedPull(t, dst, src, gi.ID, mb, log); err != nil {
		t.Fatalf("clean retry: %v", err)
	}
	if fs := log.fetchesOf(si.Name); fs[len(fs)-1].off != 0 {
		t.Fatalf("retry fetched %s from %d, want 0 after discard", si.Name, fs[len(fs)-1].off)
	}
	if back, lgi, _, err := dst.Load(); err != nil || lgi.ID != gi.ID ||
		!bytes.Equal(bulkBytes(t, back), bulkBytes(t, db)) {
		t.Fatalf("post-poison install not byte-identical (gen %v, err %v)", lgi, err)
	}
}

// TestStagingDeltaReuse proves the content-addressed path: a replica
// already holding generation N installs a re-publication N+1 of the
// same corpus without fetching a single byte — every segment is
// satisfied by digest from the committed generation.
func TestStagingDeltaReuse(t *testing.T) {
	db := corpus(t)
	src := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))
	if _, err := src.Save(db, "gen one"); err != nil {
		t.Fatal(err)
	}
	gi2, err := src.Save(db, "gen two, same corpus")
	if err != nil {
		t.Fatal(err)
	}

	dst := open(t, t.TempDir())
	mb1, _, err := src.ExportManifest(1)
	if err != nil {
		t.Fatal(err)
	}
	log := &fetchLog{}
	if err := stagedPull(t, dst, src, 1, mb1, log); err != nil {
		t.Fatal(err)
	}
	wireFetches := len(log.entries)
	if wireFetches == 0 {
		t.Fatal("bootstrap pull fetched nothing — vacuous")
	}

	mb2, _, err := src.ExportManifest(gi2.ID)
	if err != nil {
		t.Fatal(err)
	}
	stg, err := dst.OpenStaging(mb2)
	if err != nil {
		t.Fatal(err)
	}
	if missing := stg.Missing(); len(missing) != 0 {
		t.Fatalf("%d segments still missing after digest reuse, want 0", len(missing))
	}
	if s := stg.Stats(); s.ReusedSegments != int64(len(gi2.Segments)) || s.ReusedBytes != gi2.Bytes {
		t.Fatalf("reuse stats %+v, want %d segments / %d bytes", s, len(gi2.Segments), gi2.Bytes)
	}
	if _, _, err := dst.InstallStaged(stg); err != nil {
		t.Fatal(err)
	}
	if id, _ := dst.LatestID(); id != gi2.ID {
		t.Fatalf("latest = %d, want %d", id, gi2.ID)
	}
	if back, _, _, err := dst.Load(); err != nil || !bytes.Equal(bulkBytes(t, back), bulkBytes(t, db)) {
		t.Fatalf("delta-installed corpus differs (err %v)", err)
	}
}

// TestStagingAbandonOnDigestChange: same generation id, different
// manifest bytes = a different branch — staged progress for the old
// bytes must be discarded, never blended.
func TestStagingAbandonOnDigestChange(t *testing.T) {
	db := corpus(t)
	srcA := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))
	giA, err := srcA.Save(db, "branch A")
	if err != nil {
		t.Fatal(err)
	}
	// Branch B: same id from a different store with different framing
	// (bigger blocks → different segment bytes and digests).
	srcB := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(16))
	giB, err := srcB.Save(db, "branch B")
	if err != nil {
		t.Fatal(err)
	}
	if giA.ID != giB.ID || giA.CorpusSHA256 == giB.CorpusSHA256 {
		t.Fatalf("want same id, different digests: %+v vs %+v", giA, giB)
	}
	mbA, _, _ := srcA.ExportManifest(giA.ID)
	mbB, _, _ := srcB.ExportManifest(giB.ID)

	dst := open(t, t.TempDir())
	stg, err := dst.OpenStaging(mbA)
	if err != nil {
		t.Fatal(err)
	}
	si := giA.Segments[0]
	data, _ := srcA.ReadSegmentRaw(giA.ID, si.Name)
	w, _ := stg.SegmentWriter(si)
	w.Write(data)
	w.Close()
	if err := stg.CompleteSegment(si); err != nil {
		t.Fatal(err)
	}
	stg.Close()

	// Same id, branch B: the A progress is abandoned whole.
	stgB, err := dst.OpenStaging(mbB)
	if err != nil {
		t.Fatal(err)
	}
	if got := stgB.VerifiedCount(); got != 0 {
		t.Fatalf("branch switch kept %d verified segments from the old branch", got)
	}
	stgB.Close()

	// Back to branch A (B's empty staging is abandoned in turn): A's
	// verified segment would also have been thrown away with it —
	// unless it was harvested by digest. Either way the invariant is
	// "nothing unverifiable survives"; re-verify resume correctness.
	stgA, err := dst.OpenStaging(mbA)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{si.Name} {
		if stgA.Verified(name) {
			// Harvested: must still be byte-correct — InstallStaged
			// would deep-verify anyway, but check the digest path now.
			got, rerr := os.ReadFile(filepath.Join(dst.Dir(), stagingRootName, stagingDirName(giA.ID), name))
			if rerr != nil || segmentDigest(got) != si.SHA256 {
				t.Fatalf("harvested segment fails re-verification: %v", rerr)
			}
		}
	}
	stgA.Close()
}

// TestStagingJournalTornTail: a torn (half-written) journal line — the
// crash-mid-append shape — must invalidate only itself; the journaled
// prefix and the on-disk verified segments still resume.
func TestStagingJournalTornTail(t *testing.T) {
	db := corpus(t)
	src := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))
	gi, err := src.Save(db, "torn tail source")
	if err != nil {
		t.Fatal(err)
	}
	mb, _, _ := src.ExportManifest(gi.ID)

	dst := open(t, t.TempDir())
	stg, err := dst.OpenStaging(mb)
	if err != nil {
		t.Fatal(err)
	}
	si := gi.Segments[0]
	data, _ := src.ReadSegmentRaw(gi.ID, si.Name)
	w, _ := stg.SegmentWriter(si)
	w.Write(data)
	w.Close()
	if err := stg.CompleteSegment(si); err != nil {
		t.Fatal(err)
	}
	stg.Close()

	// Tear the journal tail: a checksum-less fragment of a line.
	jpath := filepath.Join(dst.Dir(), stagingRootName, stagingDirName(gi.ID), stagingJournalFile)
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"type":"segm`)
	f.Close()

	log := &fetchLog{}
	if err := stagedPull(t, dst, src, gi.ID, mb, log); err != nil {
		t.Fatalf("resume over torn journal: %v", err)
	}
	if fs := log.fetchesOf(si.Name); len(fs) != 0 {
		t.Fatalf("torn tail caused re-fetch of verified %s: %+v", si.Name, fs)
	}
	if back, _, _, err := dst.Load(); err != nil || !bytes.Equal(bulkBytes(t, back), bulkBytes(t, db)) {
		t.Fatalf("post-torn-tail install differs (err %v)", err)
	}
}

// TestParseJournal covers the checksummed line format directly.
func TestParseJournal(t *testing.T) {
	var buf bytes.Buffer
	entries := []journalEntry{
		{Type: "begin", Generation: 7, ManifestSHA256: "abc"},
		{Type: "segment", Name: "seg-0000.dat", SHA256: "def", Bytes: 42, Origin: "fetched"},
	}
	for _, e := range entries {
		if err := appendJournalLine(&buf, e); err != nil {
			t.Fatal(err)
		}
	}
	good := parseJournal(buf.Bytes())
	if len(good) != 2 || good[0].Type != "begin" || good[1].Name != "seg-0000.dat" {
		t.Fatalf("round trip = %+v", good)
	}
	// A flipped byte in the tail line invalidates that line only.
	raw := buf.Bytes()
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-3] ^= 0x40
	if got := parseJournal(flipped); len(got) != 1 || got[0].Type != "begin" {
		t.Fatalf("corrupt tail = %+v, want the begin record alone", got)
	}
	// Garbage up front poisons everything after it.
	if got := parseJournal(append([]byte("junk\n"), raw...)); len(got) != 0 {
		t.Fatalf("corrupt head = %+v, want nothing", got)
	}
}

// TestStagingGCSweep: a staging area whose generation has since been
// committed is garbage and GC removes it; an in-flight (uncommitted)
// one survives.
func TestStagingGCSweep(t *testing.T) {
	db := corpus(t)
	src := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))
	if _, err := src.Save(db, "gen one"); err != nil {
		t.Fatal(err)
	}
	gi2, err := src.Save(db, "gen two")
	if err != nil {
		t.Fatal(err)
	}

	dst := open(t, t.TempDir())
	// Install gen 1 the classic way, then open (and abandon) staging
	// progress for gen 2.
	mb1, _, _ := src.ExportManifest(1)
	if _, _, err := dst.Install(mb1, shipFetch(src, 1)); err != nil {
		t.Fatal(err)
	}
	mb2, _, _ := src.ExportManifest(gi2.ID)
	stg, err := dst.OpenStaging(mb2)
	if err != nil {
		t.Fatal(err)
	}
	stg.Close()

	// GC keeps the staging area: its generation is not committed here.
	if _, err := dst.GC(3); err != nil {
		t.Fatal(err)
	}
	if ids, _ := dst.StagingIDs(); len(ids) != 1 || ids[0] != gi2.ID {
		t.Fatalf("in-flight staging swept by GC: %v", ids)
	}

	// Commit gen 2 (digest reuse makes it instant), then GC: now the
	// staging area is spent and must go.
	stg2, err := dst.OpenStaging(mb2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dst.InstallStaged(stg2); err != nil {
		t.Fatal(err)
	}
	if ids, _ := dst.StagingIDs(); len(ids) != 0 {
		t.Fatalf("staging survived its own install: %v", ids)
	}
	// And a manually recreated spent dir is swept by the next GC.
	leftover := filepath.Join(dst.Dir(), stagingRootName, stagingDirName(gi2.ID))
	if err := os.MkdirAll(leftover, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.GC(3); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatal("spent staging dir survived GC")
	}
}

// TestOpenStagingRefusesCommitted: a generation this store already
// holds is os.ErrExist, mirroring Install's idempotence contract.
func TestOpenStagingRefusesCommitted(t *testing.T) {
	db := corpus(t)
	src := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))
	gi, err := src.Save(db, "seed")
	if err != nil {
		t.Fatal(err)
	}
	mb, _, _ := src.ExportManifest(gi.ID)
	dst := open(t, t.TempDir())
	if _, _, err := dst.Install(mb, shipFetch(src, gi.ID)); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.OpenStaging(mb); !errors.Is(err, os.ErrExist) {
		t.Fatalf("OpenStaging on a committed generation = %v, want os.ErrExist", err)
	}
	// And a garbled manifest is ErrVerify before any directory exists.
	garbled := append([]byte(nil), mb...)
	garbled[0] ^= 0xFF
	if _, err := dst.OpenStaging(garbled); !errors.Is(err, ErrVerify) {
		t.Fatalf("OpenStaging on garbled manifest = %v, want ErrVerify", err)
	}
	if strings.Contains(strings.Join(func() []string {
		ents, _ := os.ReadDir(dst.Dir())
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		return names
	}(), " "), stagingRootName) {
		t.Fatal("refused OpenStaging left a staging root behind")
	}
}
