package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hftnetview/internal/uls"
)

// Delta shipping & resumable transfer.
//
// Install (export.go) downloads a whole generation in one shot: a kill,
// partition, or slow link mid-pull discards every byte of progress, and
// every pull re-fetches segments the replica already holds as part of
// an earlier generation. The staging area fixes both:
//
//	dir/staging/<gen-000007>/
//	  MANIFEST.bin      the incoming manifest, verbatim, saved first
//	  JOURNAL           checksummed append-only resume journal
//	  seg-0003.dat      complete-and-verified segment
//	  seg-0007.dat.part in-progress partial (never trusted)
//
// The staging directory survives process restarts deliberately: it is
// not swept by Open/Close (unlike tmp-gen-*), so a replica killed
// mid-pull resumes where it stopped. The JOURNAL records which
// segments are complete-and-verified, one checksummed line per event;
// a torn tail line (crash mid-append) is ignored. A segment reaches
// the journal only after the full ladder passed — exact size, then
// SHA-256 against the manifest entry — and the verified file was
// renamed from its .part name and the directory synced, in that
// order. So every crash window is safe:
//
//	crash mid-.part-write  → the partial is resumed by a ranged fetch
//	                         and never trusted until the whole-file
//	                         digest passes;
//	crash after rename,    → the final-named file is re-hashed at the
//	  before journal append  next open and adopted iff it matches the
//	                         manifest (it was verified; the journal
//	                         line just never landed);
//	crash mid-journal-append → the torn line is dropped, the file is
//	                         re-hashed and re-adopted as above.
//
// OpenStaging re-verifies everything it adopts by re-hashing the bytes
// on disk, so resume never trusts state it cannot prove; the journal
// is the record of intent and provenance, not a substitute for proof.
//
// Segment reuse is what makes shipping delta-based: any segment of the
// incoming manifest whose (SHA-256, size) already exists in a local
// committed generation — or verified in another staging area — is
// hard-linked (copy fallback) into staging, re-hashed, and never
// fetched. Successive generations that share most of their corpus ship
// only the changed segments over the wire.
//
// A staging area is abandoned only when the manifest digest changes
// for its generation id (the source re-published a different id, or a
// promotion moved the branch): same id + same manifest digest always
// resumes. Opening a staging area for a new id harvests digest-matching
// segments from, then removes, any older staging debris, so at most one
// staging directory survives a pull cycle; GC sweeps staging dirs whose
// generation is already committed.

// stagingRootName is the store subdirectory holding per-pull staging
// areas. Like quarantine/, it is invisible to Load, List, Fsck, and the
// temp sweeps.
const stagingRootName = "staging"

const (
	stagingManifestFile = "MANIFEST.bin"
	stagingJournalFile  = "JOURNAL"
	partialSuffix       = ".part"
)

func stagingDirName(id int64) string { return genDirName(id) }

// parseStagingID extracts the generation id from a staging dir name.
func parseStagingID(name string) int64 { return parseGenDirID(name) }

// journalEntry is one checksummed JOURNAL line. Type "begin" pins the
// generation id and manifest digest the staging area was opened for;
// type "segment" records one complete-and-verified segment.
type journalEntry struct {
	Type string `json:"type"`
	// begin fields
	Generation     int64  `json:"generation,omitempty"`
	ManifestSHA256 string `json:"manifest_sha256,omitempty"`
	// segment fields
	Name   string `json:"name,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
	// Origin is how the bytes arrived: "fetched" over the wire,
	// "reused" from a local committed generation or older staging
	// area, "resumed" re-adopted from a prior pull of this very
	// generation (including the crash-before-journal window).
	Origin string `json:"origin,omitempty"`
}

func appendJournalLine(w io.Writer, e journalEntry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding journal entry: %w", err)
	}
	sum := sha256.Sum256(payload)
	_, err = fmt.Fprintf(w, "%s %s\n", hex.EncodeToString(sum[:]), payload)
	return err
}

// parseJournal decodes the checksummed journal lines, dropping any line
// whose checksum does not match (a torn append) and everything after it.
func parseJournal(data []byte) []journalEntry {
	var out []journalEntry
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		sumHex, payload, ok := strings.Cut(line, " ")
		if !ok {
			return out // torn tail
		}
		sum := sha256.Sum256([]byte(payload))
		if hex.EncodeToString(sum[:]) != sumHex {
			return out // torn or corrupted tail
		}
		var e journalEntry
		if json.Unmarshal([]byte(payload), &e) != nil {
			return out
		}
		out = append(out, e)
	}
	return out
}

// StagingStats is a staging area's account of where its verified bytes
// came from, read by the puller's transfer counters.
type StagingStats struct {
	// ResumedSegments were adopted from a prior pull of the same
	// generation (journal replay or the crash-before-journal window);
	// ResumedBytes is their total size.
	ResumedSegments int64
	ResumedBytes    int64
	// ReusedSegments were hard-linked/copied from a local committed
	// generation or older staging area by digest; ReusedBytes likewise.
	ReusedSegments int64
	ReusedBytes    int64
}

// Staging is one in-progress generation pull: a durable, resumable
// download area for the segments one manifest promises. Not safe for
// concurrent use; one puller drives one Staging at a time.
type Staging struct {
	st            *Store
	dir           string
	m             *manifest
	manifestBytes []byte
	manifestSHA   string

	journal  *os.File
	verified map[string]bool   // segment name -> verified on disk under its final name
	origins  map[string]string // segment name -> fetched | resumed | reused
	writer   *StagingWriter    // at most one open partial writer
	stats    StagingStats
	closed   bool
}

// OpenStaging opens (or resumes) the staging area for one shipped
// manifest. The manifest bytes are self-verified first; a staging
// directory already holding a different manifest digest for the same
// generation id is abandoned and restarted, the same digest is resumed
// with every previously verified segment re-hashed and adopted. Older
// staging areas (other generation ids) are harvested for digest-matching
// segments and removed. A generation this store already committed
// returns os.ErrExist.
func (s *Store) OpenStaging(manifestBytes []byte) (*Staging, error) {
	m, err := parseManifestBytes(manifestBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrVerify, err)
	}
	if m.Generation <= 0 {
		return nil, fmt.Errorf("%w: manifest names generation %d", ErrVerify, m.Generation)
	}
	for _, si := range m.Segments {
		if !segNameRE.MatchString(si.Name) {
			return nil, fmt.Errorf("%w: manifest names segment %q", ErrVerify, si.Name)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, err := os.Stat(filepath.Join(s.dir, manifestName(m.Generation))); err == nil {
		return nil, fmt.Errorf("store: generation %d already installed: %w", m.Generation, os.ErrExist)
	}

	sum := sha256.Sum256(manifestBytes)
	stg := &Staging{
		st:            s,
		dir:           filepath.Join(s.dir, stagingRootName, stagingDirName(m.Generation)),
		m:             m,
		manifestBytes: append([]byte(nil), manifestBytes...),
		manifestSHA:   hex.EncodeToString(sum[:]),
		verified:      make(map[string]bool),
		origins:       make(map[string]string),
	}

	// A prior staging area for this id resumes iff it was opened for
	// these exact manifest bytes; anything else is a different branch
	// or a re-publish and starts over.
	fresh := true
	if entries := stg.readJournal(); len(entries) > 0 {
		if entries[0].Type == "begin" &&
			entries[0].Generation == m.Generation &&
			entries[0].ManifestSHA256 == stg.manifestSHA {
			fresh = false
		} else {
			os.RemoveAll(stg.dir)
		}
	} else if _, err := os.Stat(stg.dir); err == nil {
		os.RemoveAll(stg.dir) // journal unreadable or missing: untrusted debris
	}

	if fresh {
		if err := os.MkdirAll(stg.dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating staging dir: %w", err)
		}
		if err := s.writeFileSync(filepath.Join(stg.dir, stagingManifestFile), manifestBytes); err != nil {
			return nil, err
		}
		j, err := stg.openJournal()
		if err != nil {
			return nil, err
		}
		stg.journal = j
		if err := stg.appendJournal(journalEntry{
			Type: "begin", Generation: m.Generation, ManifestSHA256: stg.manifestSHA,
		}); err != nil {
			j.Close()
			return nil, err
		}
	} else {
		j, err := stg.openJournal()
		if err != nil {
			return nil, err
		}
		stg.journal = j
		stg.adoptSurvivors()
	}

	// Delta reuse: harvest digest-matching segments from committed
	// generations and older staging debris, then drop the debris.
	stg.reuseAll()
	s.sweepStagingLocked(m.Generation)
	return stg, nil
}

func (g *Staging) openJournal() (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(g.dir, stagingJournalFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening staging journal: %w", err)
	}
	return f, nil
}

func (g *Staging) readJournal() []journalEntry {
	data, err := os.ReadFile(filepath.Join(g.dir, stagingJournalFile))
	if err != nil {
		return nil
	}
	return parseJournal(data)
}

// appendJournal durably appends one entry (write + fsync).
func (g *Staging) appendJournal(e journalEntry) error {
	if err := appendJournalLine(g.journal, e); err != nil {
		return fmt.Errorf("store: appending staging journal: %w", err)
	}
	if err := g.journal.Sync(); err != nil {
		return fmt.Errorf("store: syncing staging journal: %w", err)
	}
	return nil
}

// adoptSurvivors re-verifies what a prior pull of this generation left
// behind: every final-named segment file — journaled or caught in the
// crash-before-journal window — is re-hashed against the manifest and
// adopted iff it matches; anything else final-named is deleted (it can
// only be garbage from a torn rename). Partials are left alone: they
// are resumed by ranged fetches and verified at completion.
func (g *Staging) adoptSurvivors() {
	journaled := make(map[string]bool)
	for _, e := range g.readJournal() {
		if e.Type == "segment" {
			journaled[e.Name] = true
		}
	}
	for _, si := range g.m.Segments {
		path := filepath.Join(g.dir, si.Name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if int64(len(data)) == si.Bytes && segmentDigest(data) == si.SHA256 {
			g.verified[si.Name] = true
			g.origins[si.Name] = "resumed"
			g.stats.ResumedSegments++
			g.stats.ResumedBytes += si.Bytes
			if !journaled[si.Name] {
				// The crash-before-journal window: verified bytes whose
				// journal line never landed. Record them now.
				g.appendJournal(journalEntry{
					Type: "segment", Name: si.Name, SHA256: si.SHA256,
					Bytes: si.Bytes, Origin: "resumed",
				})
			}
			continue
		}
		os.Remove(path) // final-named but unverifiable: never trust it
	}
}

// reuseAll hard-links every still-missing segment whose digest already
// exists locally — in a committed generation or verified in an older
// staging area — re-hashing each link before adopting it.
func (g *Staging) reuseAll() {
	var index map[string]string // "sha256/bytes" -> source path
	build := func() {
		index = g.st.localSegmentIndexLocked()
	}
	for _, si := range g.m.Segments {
		if g.verified[si.Name] {
			continue
		}
		if index == nil {
			build()
		}
		src, ok := index[si.SHA256+"/"+strconv.FormatInt(si.Bytes, 10)]
		if !ok {
			continue
		}
		if err := g.adoptLocal(src, si, "reused"); err == nil {
			g.stats.ReusedSegments++
			g.stats.ReusedBytes += si.Bytes
		}
	}
}

// ReuseLocal retries local reuse for one still-missing segment (the
// puller calls it right before fetching, in case a concurrent install
// landed the digest since OpenStaging). It reports whether the segment
// is now verified locally.
func (g *Staging) ReuseLocal(si SegmentInfo) bool {
	if g.verified[si.Name] {
		return true
	}
	g.st.mu.Lock()
	index := g.st.localSegmentIndexLocked()
	g.st.mu.Unlock()
	src, ok := index[si.SHA256+"/"+strconv.FormatInt(si.Bytes, 10)]
	if !ok {
		return false
	}
	if err := g.adoptLocal(src, si, "reused"); err != nil {
		return false
	}
	g.stats.ReusedSegments++
	g.stats.ReusedBytes += si.Bytes
	return true
}

// adoptLocal links (or copies) src into the staging area under a temp
// name, re-hashes it against the manifest entry, and promotes it to
// verified exactly like a fetched segment: rename, dir sync, journal.
func (g *Staging) adoptLocal(src string, si SegmentInfo, origin string) error {
	tmp := filepath.Join(g.dir, si.Name+".reuse")
	os.Remove(tmp)
	if err := linkOrCopy(src, tmp); err != nil {
		return err
	}
	data, err := os.ReadFile(tmp)
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if int64(len(data)) != si.Bytes || segmentDigest(data) != si.SHA256 {
		os.Remove(tmp)
		return fmt.Errorf("%w: local copy of %s failed re-verification", ErrVerify, si.Name)
	}
	return g.promote(tmp, si, origin)
}

// promote renames a fully verified temp/partial file to its final
// segment name, syncs the directory, and journals the verification —
// in that order, so the journal never leads the bytes.
func (g *Staging) promote(from string, si SegmentInfo, origin string) error {
	final := filepath.Join(g.dir, si.Name)
	if err := os.Rename(from, final); err != nil {
		return fmt.Errorf("store: promoting staged segment: %w", err)
	}
	if err := syncDir(g.dir); err != nil {
		return fmt.Errorf("store: syncing %s: %w", g.dir, err)
	}
	if err := callNameFP(g.st.stagingFP.BeforeJournal, si.Name); err != nil {
		return err
	}
	if err := g.appendJournal(journalEntry{
		Type: "segment", Name: si.Name, SHA256: si.SHA256, Bytes: si.Bytes, Origin: origin,
	}); err != nil {
		return err
	}
	g.verified[si.Name] = true
	g.origins[si.Name] = origin
	if err := callNameFP(g.st.stagingFP.AfterJournal, si.Name); err != nil {
		return err
	}
	return nil
}

// linkOrCopy hard-links src to dst, falling back to a byte copy where
// links are unsupported. Segments are immutable once committed (repair
// replaces by rename, never in place), so shared inodes are safe.
func linkOrCopy(src, dst string) error {
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}

// Info returns the staged generation's description.
func (g *Staging) Info() GenInfo { return g.m.info() }

// ManifestBytes returns the manifest this staging area was opened for.
func (g *Staging) ManifestBytes() []byte { return g.manifestBytes }

// Origin reports where one verified segment's bytes came from:
// "fetched" (completed from a partial this staging wrote), "resumed"
// (adopted from a prior interrupted pull of the same generation), or
// "reused" (satisfied from local disk by digest). Empty for segments
// not yet verified.
func (g *Staging) Origin(name string) string { return g.origins[name] }

// Verified reports whether one segment is complete-and-verified.
func (g *Staging) Verified(name string) bool { return g.verified[name] }

// VerifiedCount returns how many of the manifest's segments are done.
func (g *Staging) VerifiedCount() int { return len(g.verified) }

// Stats returns the resume/reuse accounting.
func (g *Staging) Stats() StagingStats { return g.stats }

// PartialSize returns the byte length of a segment's in-progress
// partial (0 when none exists) — the offset a ranged fetch resumes at.
func (g *Staging) PartialSize(name string) int64 {
	fi, err := os.Stat(filepath.Join(g.dir, name+partialSuffix))
	if err != nil {
		return 0
	}
	return fi.Size()
}

// ResetPartial discards a segment's partial, forcing the next fetch to
// start from byte zero (a poisoned resume, or a source that ignored the
// range request).
func (g *Staging) ResetPartial(name string) error {
	g.closeWriter()
	err := os.Remove(filepath.Join(g.dir, name+partialSuffix))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// StagingWriter appends fetched bytes to one segment's partial file.
type StagingWriter struct {
	g    *Staging
	name string
	f    *os.File
	off  int64
}

// SegmentWriter opens (or continues) the partial for one manifest
// segment; writes append at the current partial size.
func (g *Staging) SegmentWriter(si SegmentInfo) (*StagingWriter, error) {
	if g.closed {
		return nil, ErrClosed
	}
	if g.verified[si.Name] {
		return nil, fmt.Errorf("store: segment %s already verified", si.Name)
	}
	g.closeWriter()
	path := filepath.Join(g.dir, si.Name+partialSuffix)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening partial %s: %w", si.Name, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &StagingWriter{g: g, name: si.Name, f: f, off: fi.Size()}
	g.writer = w
	return w, nil
}

// Offset is the byte position the next Write lands at.
func (w *StagingWriter) Offset() int64 { return w.off }

func (w *StagingWriter) Write(p []byte) (int, error) {
	if err := w.g.st.stagingFP.midWrite(w.name, w.off); err != nil {
		return 0, err
	}
	n, err := w.f.Write(p)
	w.off += int64(n)
	return n, err
}

// Close closes the partial file without verifying it; the bytes stay
// on disk for a later resume.
func (w *StagingWriter) Close() error {
	if w.g.writer == w {
		w.g.writer = nil
	}
	return w.f.Close()
}

func (g *Staging) closeWriter() {
	if g.writer != nil {
		g.writer.Close()
	}
}

// CompleteSegment runs one segment's verification ladder over its
// partial file: fsync, exact size, whole-file SHA-256 — and only then
// promotes it to its final name and journals it. A partial that fails
// verification is deleted (resume must never trust it) and the error
// wraps ErrVerify so the caller re-fetches from byte zero.
func (g *Staging) CompleteSegment(si SegmentInfo) error {
	if g.verified[si.Name] {
		return nil
	}
	g.closeWriter()
	path := filepath.Join(g.dir, si.Name+partialSuffix)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: completing %s: %w", si.Name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing partial %s: %w", si.Name, err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("store: reading partial %s: %w", si.Name, err)
	}
	if int64(len(data)) != si.Bytes {
		os.Remove(path)
		return fmt.Errorf("%w: segment %s is %d bytes, manifest says %d",
			ErrVerify, si.Name, len(data), si.Bytes)
	}
	if got := segmentDigest(data); got != si.SHA256 {
		os.Remove(path)
		return fmt.Errorf("%w: segment %s SHA-256 mismatch", ErrVerify, si.Name)
	}
	return g.promote(path, si, "fetched")
}

// Missing returns the manifest segments not yet verified, in manifest
// order — the fetch work list.
func (g *Staging) Missing() []SegmentInfo {
	var out []SegmentInfo
	for _, si := range g.m.Segments {
		if !g.verified[si.Name] {
			out = append(out, si)
		}
	}
	return out
}

// Close releases file handles. The staging directory stays on disk for
// a later resume unless the generation was committed by InstallStaged.
func (g *Staging) Close() {
	if g.closed {
		return
	}
	g.closed = true
	g.closeWriter()
	if g.journal != nil {
		g.journal.Close()
	}
}

// InstallStaged commits a fully staged generation: every manifest
// segment must be verified, the assembled set is deep-verified exactly
// like Fsck (rebuilding the database the caller publishes), and the
// commit uses Save's protocol — segment dir rename, then manifest write
// + atomic rename, both fsynced. On success the staging area is
// removed; on any failure it is left intact for resume.
func (s *Store) InstallStaged(g *Staging) (*GenInfo, *uls.Database, error) {
	if missing := g.Missing(); len(missing) > 0 {
		return nil, nil, fmt.Errorf("store: staging for generation %d is incomplete: %d segment(s) unverified",
			g.m.Generation, len(missing))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	if _, err := os.Stat(filepath.Join(s.dir, manifestName(g.m.Generation))); err == nil {
		return nil, nil, fmt.Errorf("store: generation %d already installed: %w", g.m.Generation, os.ErrExist)
	}

	// Assemble the generation directory from the staged segments by
	// hard link (copy fallback): the staging area keeps its files until
	// the commit lands, so a crash mid-assembly costs nothing.
	tmpDir := filepath.Join(s.dir, "tmp-"+genDirName(g.m.Generation))
	os.RemoveAll(tmpDir)
	if err := os.Mkdir(tmpDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating temp dir: %w", err)
	}
	fail := func(err error) (*GenInfo, *uls.Database, error) {
		os.RemoveAll(tmpDir)
		os.Remove(filepath.Join(s.dir, manifestName(g.m.Generation)+".tmp"))
		return nil, nil, err
	}
	for _, si := range g.m.Segments {
		if err := linkOrCopy(filepath.Join(g.dir, si.Name), filepath.Join(tmpDir, si.Name)); err != nil {
			return fail(fmt.Errorf("store: assembling staged generation: %w", err))
		}
	}

	// The same deep scrub Fsck runs — and the database rebuild the
	// caller needs to publish the generation.
	db, err := verifyGenerationDir(g.m, tmpDir, true)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrVerify, err))
	}
	gi, err := s.commitGeneration(g.m, g.manifestBytes, tmpDir)
	if err != nil {
		return fail(err)
	}

	g.Close()
	os.RemoveAll(g.dir)
	// Removing the last staging area leaves an empty staging/ root;
	// harmless, but tidy stores are easier to reason about.
	os.Remove(filepath.Join(s.dir, stagingRootName))
	return gi, db, nil
}

// localSegmentIndexLocked maps "sha256/bytes" of every segment in every
// committed generation — plus every verified segment in staging areas —
// to its on-disk path. Caller holds s.mu.
func (s *Store) localSegmentIndexLocked() map[string]string {
	index := make(map[string]string)
	ids, err := s.manifestIDs()
	if err != nil {
		return index
	}
	// Oldest first so the newest copy of a digest wins the map.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m, err := s.loadManifest(id)
		if err != nil {
			continue
		}
		for _, si := range m.Segments {
			index[si.SHA256+"/"+strconv.FormatInt(si.Bytes, 10)] =
				filepath.Join(s.dir, genDirName(id), si.Name)
		}
	}
	// Verified segments in staging areas (an abandoned pull's completed
	// work is still byte-proven — harvesting it is free).
	root := filepath.Join(s.dir, stagingRootName)
	ents, err := os.ReadDir(root)
	if err != nil {
		return index
	}
	for _, e := range ents {
		if !e.IsDir() || parseStagingID(e.Name()) <= 0 {
			continue
		}
		sdir := filepath.Join(root, e.Name())
		data, err := os.ReadFile(filepath.Join(sdir, stagingJournalFile))
		if err != nil {
			continue
		}
		for _, je := range parseJournal(data) {
			if je.Type != "segment" {
				continue
			}
			path := filepath.Join(sdir, je.Name)
			if fi, err := os.Stat(path); err == nil && fi.Size() == je.Bytes {
				index[je.SHA256+"/"+strconv.FormatInt(je.Bytes, 10)] = path
			}
		}
	}
	return index
}

// sweepStagingLocked removes staging areas other than keep's — older
// pulls abandoned mid-flight (their reusable segments were already
// harvested) and pulls of generations since committed. keep <= 0
// removes staging areas only for committed generations (the GC rule).
// Caller holds s.mu.
func (s *Store) sweepStagingLocked(keep int64) {
	root := filepath.Join(s.dir, stagingRootName)
	ents, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, e := range ents {
		id := parseStagingID(e.Name())
		switch {
		case id <= 0:
			// Unrecognized debris under staging/: remove.
		case keep > 0 && id == keep:
			continue
		case keep <= 0:
			// GC rule: a staging area for a committed generation is
			// garbage; an uncommitted one may be an in-flight pull.
			if _, err := os.Stat(filepath.Join(s.dir, manifestName(id))); err != nil {
				continue
			}
		}
		os.RemoveAll(filepath.Join(root, e.Name()))
	}
	if rest, err := os.ReadDir(root); err == nil && len(rest) == 0 {
		os.Remove(root)
	}
}

// StagingIDs lists the generation ids with a staging area on disk —
// the soak tests' staging-leak probe.
func (s *Store) StagingIDs() ([]int64, error) {
	ents, err := os.ReadDir(filepath.Join(s.dir, stagingRootName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []int64
	for _, e := range ents {
		if id := parseStagingID(e.Name()); id > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// StagingReport describes one staging area without opening it: which
// segments its journal records as verified (and still present under
// their final names), and the partial sizes of in-progress segments.
type StagingReport struct {
	Generation     int64
	ManifestSHA256 string
	Verified       []string
	Partial        map[string]int64
}

// StagingReportFor inspects one staging area read-only (tests and
// tooling; returns os.ErrNotExist when none exists for id).
func (s *Store) StagingReportFor(id int64) (*StagingReport, error) {
	dir := filepath.Join(s.dir, stagingRootName, stagingDirName(id))
	data, err := os.ReadFile(filepath.Join(dir, stagingJournalFile))
	if err != nil {
		return nil, err
	}
	rep := &StagingReport{Generation: id, Partial: make(map[string]int64)}
	for _, e := range parseJournal(data) {
		switch e.Type {
		case "begin":
			rep.ManifestSHA256 = e.ManifestSHA256
		case "segment":
			if fi, err := os.Stat(filepath.Join(dir, e.Name)); err == nil && fi.Size() == e.Bytes {
				rep.Verified = append(rep.Verified, e.Name)
			}
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if name, ok := strings.CutSuffix(e.Name(), partialSuffix); ok {
			if fi, err := e.Info(); err == nil {
				rep.Partial[name] = fi.Size()
			}
		}
	}
	sort.Strings(rep.Verified)
	return rep, nil
}
