package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
	"unsafe"

	"hftnetview/internal/geo"
	"hftnetview/internal/uls"
)

// Binary license codec.
//
// Segments carry licenses in a compact little-endian encoding rather
// than the pipe-delimited bulk text: decoding is a linear walk with no
// strconv work, which is what makes a warm boot an order of magnitude
// cheaper than re-ingesting the bulk file (E20). The codec is
// deliberately dumb — fixed-width integers, Float64bits floats,
// length-prefixed strings — so torn or bit-flipped input fails fast in
// the decoder (on top of the CRC that should have caught it first).

// codecVersion is bumped on any change to the license encoding; a
// manifest recording a different version is not readable by this
// binary and its generation is skipped during recovery.
const codecVersion = 1

// maxStringLen bounds decoded string fields; corrupt length prefixes
// must not drive allocations.
const maxStringLen = 1 << 16

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int)    { e.u64(uint64(int64(v))) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) date(d uls.Date) {
	e.u32(uint32(int32(d.Year)))
	e.u8(uint8(d.Month))
	e.u8(uint8(d.Day))
}

type decoder struct {
	buf []byte
	off int
}

var errShort = fmt.Errorf("store: truncated record block")

func (d *decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return errShort
	}
	return nil
}

func (d *decoder) u8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) i64() (int, error) {
	v, err := d.u64()
	return int(int64(v)), err
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("store: string length %d exceeds %d", n, maxStringLen)
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// strZ is the zero-copy variant: the returned string aliases the
// decoder's buffer instead of copying out of it. Callers own the
// aliasing contract — the buffer must never be mutated after decoding
// (the store reads each segment into a fresh private buffer and only
// ever hands it to the decoder), and the buffer stays reachable as
// long as any decoded string does. Worth it because string fields are
// most of a license's bytes: copying them dominated warm-boot CPU via
// allocator and GC pressure.
func (d *decoder) strZ() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("store: string length %d exceeds %d", n, maxStringLen)
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	if len(b) == 0 {
		return "", nil
	}
	return unsafe.String(&b[0], len(b)), nil
}

func (d *decoder) date() (uls.Date, error) {
	y, err := d.u32()
	if err != nil {
		return uls.Date{}, err
	}
	m, err := d.u8()
	if err != nil {
		return uls.Date{}, err
	}
	day, err := d.u8()
	if err != nil {
		return uls.Date{}, err
	}
	return uls.Date{Year: int(int32(y)), Month: time.Month(m), Day: int(day)}, nil
}

// encodeLicense appends one license record to the encoder.
func encodeLicense(e *encoder, l *uls.License) {
	e.str(l.CallSign)
	e.i64(l.LicenseID)
	e.str(l.Licensee)
	e.str(l.FRN)
	e.str(l.ContactEmail)
	e.str(l.RadioService)
	e.str(string(l.Status))
	e.date(l.Grant)
	e.date(l.Expiration)
	e.date(l.Cancellation)
	e.u32(uint32(len(l.Locations)))
	for _, loc := range l.Locations {
		e.i64(loc.Number)
		e.f64(loc.Point.Lat)
		e.f64(loc.Point.Lon)
		e.f64(loc.GroundElevation)
		e.f64(loc.SupportHeight)
	}
	e.u32(uint32(len(l.Paths)))
	for _, p := range l.Paths {
		e.i64(p.Number)
		e.i64(p.TXLocation)
		e.i64(p.RXLocation)
		e.str(p.StationClass)
		e.f64(p.TXAzimuthDeg)
		e.f64(p.RXAzimuthDeg)
		e.f64(p.AntennaGainDBi)
		e.u32(uint32(len(p.FrequenciesMHz)))
		for _, f := range p.FrequenciesMHz {
			e.f64(f)
		}
	}
}

// maxSliceLen bounds decoded location/path/frequency counts per
// license; a corrupt count must not drive allocations.
const maxSliceLen = 1 << 20

func sliceLen(n uint32, what string) (int, error) {
	if n > maxSliceLen {
		return 0, fmt.Errorf("store: %s count %d exceeds %d", what, n, maxSliceLen)
	}
	return int(n), nil
}

// decodeLicense reads one license record into l, cutting its
// sub-record slices out of the block arenas and aliasing string fields
// into the decoder's buffer (strZ). Fixed-width runs — the three
// dates, each location, each path's numeric halves — are bounds-checked
// once per run and read at direct offsets, which is most of what makes
// a warm boot cheap on a single core.
func decodeLicense(d *decoder, l *uls.License, a *blockArenas) error {
	le := binary.LittleEndian
	var err error
	if l.CallSign, err = d.strZ(); err != nil {
		return err
	}
	if l.LicenseID, err = d.i64(); err != nil {
		return err
	}
	if l.Licensee, err = d.strZ(); err != nil {
		return err
	}
	if l.FRN, err = d.strZ(); err != nil {
		return err
	}
	if l.ContactEmail, err = d.strZ(); err != nil {
		return err
	}
	if l.RadioService, err = d.strZ(); err != nil {
		return err
	}
	var status string
	if status, err = d.strZ(); err != nil {
		return err
	}
	l.Status = uls.Status(status)

	// Grant, expiration and cancellation dates: 3 × (u32 + u8 + u8).
	if err := d.need(18); err != nil {
		return err
	}
	b := d.buf[d.off:]
	readDate := func(b []byte) uls.Date {
		return uls.Date{
			Year:  int(int32(le.Uint32(b))),
			Month: time.Month(b[4]),
			Day:   int(b[5]),
		}
	}
	l.Grant = readDate(b)
	l.Expiration = readDate(b[6:])
	l.Cancellation = readDate(b[12:])
	d.off += 18

	nLoc, err := d.u32()
	if err != nil {
		return err
	}
	n, err := sliceLen(nLoc, "location")
	if err != nil {
		return err
	}
	if l.Locations, err = takeLocs(a, n); err != nil {
		return err
	}
	// Each location is a fixed 40 bytes: i64 number + 4 × f64.
	if err := d.need(40 * n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		b := d.buf[d.off : d.off+40]
		loc := &l.Locations[i]
		loc.Number = int(int64(le.Uint64(b)))
		loc.Point = geo.Point{
			Lat: math.Float64frombits(le.Uint64(b[8:])),
			Lon: math.Float64frombits(le.Uint64(b[16:])),
		}
		loc.GroundElevation = math.Float64frombits(le.Uint64(b[24:]))
		loc.SupportHeight = math.Float64frombits(le.Uint64(b[32:]))
		d.off += 40
	}

	nPath, err := d.u32()
	if err != nil {
		return err
	}
	if n, err = sliceLen(nPath, "path"); err != nil {
		return err
	}
	if l.Paths, err = takePaths(a, n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		p := &l.Paths[i]
		// Fixed head: 3 × i64.
		if err := d.need(24); err != nil {
			return err
		}
		b := d.buf[d.off:]
		p.Number = int(int64(le.Uint64(b)))
		p.TXLocation = int(int64(le.Uint64(b[8:])))
		p.RXLocation = int(int64(le.Uint64(b[16:])))
		d.off += 24
		if p.StationClass, err = d.strZ(); err != nil {
			return err
		}
		// Fixed tail: 3 × f64 + u32 frequency count.
		if err := d.need(28); err != nil {
			return err
		}
		b = d.buf[d.off:]
		p.TXAzimuthDeg = math.Float64frombits(le.Uint64(b))
		p.RXAzimuthDeg = math.Float64frombits(le.Uint64(b[8:]))
		p.AntennaGainDBi = math.Float64frombits(le.Uint64(b[16:]))
		nf := le.Uint32(b[24:])
		d.off += 28
		fn, err := sliceLen(nf, "frequency")
		if err != nil {
			return err
		}
		if p.FrequenciesMHz, err = takeFreqs(a, fn); err != nil {
			return err
		}
		if err := d.need(8 * fn); err != nil {
			return err
		}
		for j := 0; j < fn; j++ {
			p.FrequenciesMHz[j] = math.Float64frombits(le.Uint64(d.buf[d.off:]))
			d.off += 8
		}
	}
	return nil
}

// encodeBlock encodes a batch of licenses as one record block payload:
// a header carrying the license count and the block-wide location,
// path and frequency totals (so the decoder can arena-allocate exact
// slabs), followed by the license records.
func encodeBlock(ls []*uls.License) []byte {
	var totLoc, totPath, totFreq int
	for _, l := range ls {
		totLoc += len(l.Locations)
		totPath += len(l.Paths)
		for _, p := range l.Paths {
			totFreq += len(p.FrequenciesMHz)
		}
	}
	e := &encoder{}
	e.u32(uint32(len(ls)))
	e.u32(uint32(totLoc))
	e.u32(uint32(totPath))
	e.u32(uint32(totFreq))
	for _, l := range ls {
		encodeLicense(e, l)
	}
	return e.buf
}

// blockArenas are the decode-side slabs: one allocation per kind per
// block instead of one per license. Licenses cut three-index slices
// out of them (capacity pinned to length, so a later append on a
// recovered license reallocates instead of scribbling into its
// neighbor). Corrupt headers cannot oversize them past the payload's
// own implied bounds because take fails when a slab runs dry.
type blockArenas struct {
	locs  []uls.Location
	paths []uls.Path
	freqs []float64
}

func takeLocs(a *blockArenas, n int) ([]uls.Location, error) {
	if n > len(a.locs) {
		return nil, fmt.Errorf("store: block location totals lie (%d needed, %d left)", n, len(a.locs))
	}
	s := a.locs[:n:n]
	a.locs = a.locs[n:]
	return s, nil
}

func takePaths(a *blockArenas, n int) ([]uls.Path, error) {
	if n > len(a.paths) {
		return nil, fmt.Errorf("store: block path totals lie (%d needed, %d left)", n, len(a.paths))
	}
	s := a.paths[:n:n]
	a.paths = a.paths[n:]
	return s, nil
}

func takeFreqs(a *blockArenas, n int) ([]float64, error) {
	if n > len(a.freqs) {
		return nil, fmt.Errorf("store: block frequency totals lie (%d needed, %d left)", n, len(a.freqs))
	}
	s := a.freqs[:n:n]
	a.freqs = a.freqs[n:]
	return s, nil
}

// checkTotal bounds the arena sizes a block header may request; a
// corrupt header must not drive giant allocations. Checked against the
// payload size too: every record costs at least one encoded byte, so
// totals beyond len(payload) are lies.
func checkTotal(n uint32, payloadLen int, what string) (int, error) {
	v, err := sliceLen(n, what)
	if err != nil {
		return 0, err
	}
	if v > payloadLen {
		return 0, fmt.Errorf("store: block header claims %d %ss in a %d-byte payload", v, what, payloadLen)
	}
	return v, nil
}

// decodeBlock decodes one record block payload. Decoded licenses alias
// the payload for their string fields (see strZ): the payload must not
// be mutated afterwards.
func decodeBlock(payload []byte) ([]*uls.License, error) {
	d := &decoder{buf: payload}
	count, err := d.u32()
	if err != nil {
		return nil, err
	}
	n, err := checkTotal(count, len(payload), "license")
	if err != nil {
		return nil, err
	}
	totLoc, err := d.u32()
	if err != nil {
		return nil, err
	}
	totPath, err := d.u32()
	if err != nil {
		return nil, err
	}
	totFreq, err := d.u32()
	if err != nil {
		return nil, err
	}
	arenas := &blockArenas{}
	if v, err := checkTotal(totLoc, len(payload), "location"); err != nil {
		return nil, err
	} else {
		arenas.locs = make([]uls.Location, v)
	}
	if v, err := checkTotal(totPath, len(payload), "path"); err != nil {
		return nil, err
	} else {
		arenas.paths = make([]uls.Path, v)
	}
	if v, err := checkTotal(totFreq, len(payload), "frequency"); err != nil {
		return nil, err
	} else {
		arenas.freqs = make([]float64, v)
	}

	slab := make([]uls.License, n)
	ls := make([]*uls.License, n)
	for i := 0; i < n; i++ {
		if err := decodeLicense(d, &slab[i], arenas); err != nil {
			return nil, fmt.Errorf("store: license %d of %d: %w", i+1, n, err)
		}
		ls[i] = &slab[i]
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("store: %d trailing bytes after %d licenses", len(d.buf)-d.off, n)
	}
	return ls, nil
}
