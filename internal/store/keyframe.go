package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Keyframe sidecar files.
//
// The snapshot engine's delta path accumulates replay keyframes —
// active license sets captured at intervals along the temporal event
// log. They are expensive to re-derive (each one is a partial replay)
// but cheap to persist, so a serving process exports them next to the
// generation they were computed against: one KF-%06d.dat file per
// generation id, framed exactly like a segment (magic + one
// CRC32C-checked block) so the same verification discipline applies.
//
// Keyframes are advisory state, not corpus data: a missing or corrupt
// keyframe file only costs warm-boot replay speed, never correctness
// or recovery — Load ignores them entirely, and importers must match
// the payload's corpus digest before trusting event indexes. GC sweeps
// a generation's keyframe file together with its manifest.

func keyframeName(id int64) string { return fmt.Sprintf("KF-%06d.dat", id) }

// parseKeyframeID extracts the generation id from a keyframe file
// name, or -1.
func parseKeyframeID(name string) int64 {
	if !strings.HasPrefix(name, "KF-") || !strings.HasSuffix(name, ".dat") {
		return -1
	}
	id, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "KF-"), ".dat"), 10, 64)
	if err != nil || id <= 0 {
		return -1
	}
	return id
}

// SaveKeyframes persists an opaque keyframe payload (the engine's
// KeyframeExport JSON) alongside generation id, committed by temp file
// + fsync + atomic rename like every other store artifact. A payload
// for an id with no committed manifest is still written — the caller
// owns the pairing — but GC will sweep it.
func (s *Store) SaveKeyframes(id int64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if id <= 0 {
		return fmt.Errorf("store: keyframe generation id %d out of range", id)
	}
	if len(payload) > maxBlockBytes {
		return fmt.Errorf("store: keyframe payload %d bytes exceeds %d", len(payload), maxBlockBytes)
	}
	buf := append([]byte(nil), segMagic...)
	buf = appendBlockFrame(buf, payload)
	final := filepath.Join(s.dir, keyframeName(id))
	tmp := final + ".tmp"
	if err := s.writeFileSync(tmp, buf); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: committing keyframes %d: %w", id, err)
	}
	return syncDir(s.dir)
}

// LoadKeyframes reads generation id's keyframe payload, verifying the
// magic and the block CRC. It returns os.ErrNotExist (wrapped) when no
// keyframe file exists for the id; callers treat any error as a cold
// start, never a boot failure.
func (s *Store) LoadKeyframes(id int64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	data, err := os.ReadFile(filepath.Join(s.dir, keyframeName(id)))
	if err != nil {
		return nil, fmt.Errorf("store: reading keyframes %d: %w", id, err)
	}
	if len(data) < len(segMagic)+8 || string(data[:len(segMagic)]) != string(segMagic) {
		return nil, fmt.Errorf("store: keyframes %d: bad magic or truncated", id)
	}
	rest := data[len(segMagic):]
	n := binary.LittleEndian.Uint32(rest)
	sum := binary.LittleEndian.Uint32(rest[4:])
	if n > maxBlockBytes || len(rest) != 8+int(n) {
		return nil, fmt.Errorf("store: keyframes %d: frame length %d does not match file", id, n)
	}
	payload := rest[8:]
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, fmt.Errorf("store: keyframes %d: CRC32C mismatch (%08x != %08x)", id, got, sum)
	}
	return payload, nil
}

// sweepKeyframes removes keyframe files whose generation id is not in
// kept. Called from GC with the surviving manifest set.
func (s *Store) sweepKeyframes(kept map[int64]bool) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if id := parseKeyframeID(e.Name()); id > 0 && !kept[id] {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}
