package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"time"

	"hftnetview/internal/uls"
)

// Generation shipping: the manifest + segment files ARE the replication
// wire format. A primary exports the raw bytes of its committed
// artifacts; a replica downloads them, verifies everything the manifest
// promises (sizes, per-segment SHA-256, block CRCs, record decode,
// license validation), and only then commits the generation into its
// own store with the same temp-dir/rename protocol Save uses. A
// generation that fails any check is never committed, so a replica's
// store only ever contains fully-verified generations — exactly the
// invariant warm restart already depends on.

// ErrGenGone marks a read of a generation that is no longer (fully) on
// disk — typically a concurrent GC removed it between the reader
// learning its id and opening its files. It is retryable: the caller
// should re-list and pull a newer generation.
var ErrGenGone = errors.New("store: generation no longer on disk")

// ErrVerify marks a generation that failed verification during
// Install: the downloaded bytes do not match what the manifest
// promises. Retrying the same bytes is pointless; re-downloading may
// succeed.
var ErrVerify = errors.New("store: shipped generation failed verification")

// IsRetryable reports whether err is a transient read-side failure (a
// generation swept by concurrent GC) that a fresh pull can get past.
func IsRetryable(err error) bool { return errors.Is(err, ErrGenGone) }

// LatestID returns the newest committed generation id, or 0 for an
// empty store.
func (s *Store) LatestID() (int64, error) {
	ids, err := s.manifestIDs()
	if err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, nil
	}
	return ids[0], nil
}

// ExportManifest returns the raw bytes of one committed manifest file
// (id <= 0 means the newest). The bytes are self-checksummed and carry
// every segment's name, exact size, and SHA-256 — they are the
// replication wire format, handed to a replica's Install verbatim.
// A missing manifest is ErrGenGone (retryable).
func (s *Store) ExportManifest(id int64) ([]byte, int64, error) {
	if id <= 0 {
		latest, err := s.LatestID()
		if err != nil {
			return nil, 0, err
		}
		if latest == 0 {
			return nil, 0, fmt.Errorf("%w: store has no committed generation", ErrGenGone)
		}
		id = latest
	}
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName(id)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("%w: generation %d manifest", ErrGenGone, id)
		}
		return nil, 0, fmt.Errorf("store: reading manifest %d: %w", id, err)
	}
	return data, id, nil
}

// segNameRE is the only segment file name shape Save ever writes;
// anything else in a segment request is rejected before touching the
// filesystem (no separators, no traversal).
var segNameRE = regexp.MustCompile(`^seg-[0-9]{4}\.dat$`)

// ReadSegmentRaw returns the raw bytes of one committed segment file.
// The caller is expected to verify them against the manifest entry
// (Install does); this method only guards the name and maps a missing
// file to ErrGenGone (retryable: concurrent GC swept the generation).
func (s *Store) ReadSegmentRaw(id int64, name string) ([]byte, error) {
	if id <= 0 || !segNameRE.MatchString(name) {
		return nil, fmt.Errorf("store: bad segment reference %d/%q", id, name)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, genDirName(id), name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: generation %d segment %s", ErrGenGone, id, name)
		}
		return nil, fmt.Errorf("store: reading segment %d/%s: %w", id, name, err)
	}
	return data, nil
}

// GenDigest returns the corpus digest one committed manifest records —
// the cheap identity check pullers use to tell a divergent branch from
// an already-installed generation. A missing manifest is ErrGenGone.
func (s *Store) GenDigest(id int64) (string, error) {
	m, err := s.loadManifest(id)
	if err != nil {
		return "", err
	}
	return m.CorpusSHA256, nil
}

// ParseManifest self-verifies raw manifest bytes (as returned by
// ExportManifest or fetched over the wire) and returns the generation's
// public description — how a replica learns a shipped generation's id
// and segment list before deciding to pull it.
func ParseManifest(data []byte) (*GenInfo, error) {
	m, err := parseManifestBytes(data)
	if err != nil {
		return nil, err
	}
	gi := m.info()
	return &gi, nil
}

// Install commits a shipped generation into this store. manifestBytes
// are the primary's manifest verbatim; fetch returns the raw bytes of
// one named segment (a closure over an HTTP download, a test stub, or
// another store's ReadSegmentRaw). The protocol:
//
//  1. self-verify the manifest (checksum, layout + codec versions);
//  2. refuse ids this store already has committed (idempotence);
//  3. download every segment into a tmp-gen dir, checking the
//     manifest's exact size and SHA-256 per segment as it lands;
//  4. deep-verify the assembled directory exactly like Fsck — block
//     CRCs, record decode, full license validation, corpus digest —
//     rebuilding the database in the process;
//  5. only then commit: rename the segment dir into place, then write
//     and atomically rename the manifest, both fsynced.
//
// Any verification failure returns an error wrapping ErrVerify with
// nothing committed and the temp dir removed; the caller keeps serving
// its previous generation. Fetch errors pass through unwrapped (the
// puller classifies transport vs. verification failures; a fetch error
// wrapping ErrGenGone means the primary GC'd the generation mid-pull
// and the pull should be retried against a newer manifest).
func (s *Store) Install(manifestBytes []byte, fetch func(name string) ([]byte, error)) (*GenInfo, *uls.Database, error) {
	m, err := parseManifestBytes(manifestBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrVerify, err)
	}
	if m.Generation <= 0 {
		return nil, nil, fmt.Errorf("%w: manifest names generation %d", ErrVerify, m.Generation)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	if _, err := os.Stat(filepath.Join(s.dir, manifestName(m.Generation))); err == nil {
		return nil, nil, fmt.Errorf("store: generation %d already installed: %w", m.Generation, os.ErrExist)
	}

	tmpDir := filepath.Join(s.dir, "tmp-"+genDirName(m.Generation))
	if err := os.Mkdir(tmpDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating temp dir: %w", err)
	}
	gi, db, err := s.install(m, manifestBytes, tmpDir, fetch)
	if err != nil {
		os.RemoveAll(tmpDir)
		os.Remove(filepath.Join(s.dir, manifestName(m.Generation)+".tmp"))
	}
	return gi, db, err
}

func (s *Store) install(m *manifest, manifestBytes []byte, tmpDir string, fetch func(name string) ([]byte, error)) (*GenInfo, *uls.Database, error) {
	for _, si := range m.Segments {
		if !segNameRE.MatchString(si.Name) {
			return nil, nil, fmt.Errorf("%w: manifest names segment %q", ErrVerify, si.Name)
		}
		data, err := fetch(si.Name)
		if err != nil {
			return nil, nil, fmt.Errorf("store: fetching segment %s: %w", si.Name, err)
		}
		// Size and whole-file digest first: the cheapest checks that
		// already pin the exact published bytes, before any decode work.
		if int64(len(data)) != si.Bytes {
			return nil, nil, fmt.Errorf("%w: segment %s is %d bytes, manifest says %d",
				ErrVerify, si.Name, len(data), si.Bytes)
		}
		if got := segmentDigest(data); got != si.SHA256 {
			return nil, nil, fmt.Errorf("%w: segment %s SHA-256 mismatch", ErrVerify, si.Name)
		}
		if err := s.writeFileSync(filepath.Join(tmpDir, si.Name), data); err != nil {
			return nil, nil, err
		}
	}

	// Deep verification of the assembled directory — the same scrub
	// Fsck runs — doubles as the database rebuild the caller needs to
	// publish the generation.
	db, err := verifyGenerationDir(m, tmpDir, true)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrVerify, err)
	}
	gi, err := s.commitGeneration(m, manifestBytes, tmpDir)
	if err != nil {
		return nil, nil, err
	}
	return gi, db, nil
}

// commitGeneration publishes an assembled, fully verified segment
// directory with Save's protocol: rename the segment dir into place,
// then write and atomically rename the manifest, each made durable
// with a directory sync. Shared by Install and InstallStaged; the
// caller holds s.mu and has already deep-verified tmpDir against m.
func (s *Store) commitGeneration(m *manifest, manifestBytes []byte, tmpDir string) (*GenInfo, error) {
	genDir := filepath.Join(s.dir, genDirName(m.Generation))
	if err := os.Rename(tmpDir, genDir); err != nil {
		return nil, fmt.Errorf("store: publishing segment dir: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return nil, fmt.Errorf("store: syncing %s: %w", s.dir, err)
	}
	final := filepath.Join(s.dir, manifestName(m.Generation))
	tmp := final + ".tmp"
	if err := s.writeFileSync(tmp, manifestBytes); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("store: committing manifest: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return nil, fmt.Errorf("store: syncing %s: %w", s.dir, err)
	}
	gi := m.info()
	return &gi, nil
}

// SegmentHandle resolves one committed segment to its on-disk path,
// manifest entry, and commit time — what a shipper needs to stream it
// with http.ServeContent instead of loading it whole. The path points
// into an immutable generation directory; concurrent GC maps to
// ErrGenGone at open time on the caller's side.
func (s *Store) SegmentHandle(id int64, name string) (string, SegmentInfo, time.Time, error) {
	if id <= 0 || !segNameRE.MatchString(name) {
		return "", SegmentInfo{}, time.Time{}, fmt.Errorf("store: bad segment reference %d/%q", id, name)
	}
	m, err := s.loadManifest(id)
	if err != nil {
		return "", SegmentInfo{}, time.Time{}, err
	}
	for _, si := range m.Segments {
		if si.Name == name {
			return filepath.Join(s.dir, genDirName(id), name), si, m.CreatedAt, nil
		}
	}
	// A well-formed name the manifest does not list: the caller's view
	// of the generation is stale — retryable, like a GC'd generation.
	return "", SegmentInfo{}, time.Time{}, fmt.Errorf("%w: generation %d segment %s", ErrGenGone, id, name)
}
