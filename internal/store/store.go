// Package store is the crash-safe, generation-oriented persistence
// layer for the parsed corpus: the always-on query service's answer to
// "a restart cold-rebuilds eight years of snapshots from bulk text and
// a crash mid-write tears the only artifact".
//
// Each Save publishes one immutable generation:
//
//	dir/
//	  MANIFEST-000007.json   commit record (JSON line + its SHA-256)
//	  gen-000007/            segment directory
//	    seg-0000.dat         framed record blocks, CRC32C per block
//	  tmp-gen-000008/        in-progress write (never read, swept)
//
// Writes go segment-by-segment into a temp directory and are fsynced;
// the segment directory is renamed into place; then the manifest —
// naming every segment with its size and SHA-256 — is written to a
// temp file, fsynced, and atomically renamed. The manifest rename is
// the commit point: before it the generation does not exist, after it
// the generation is durable. There is no in-place mutation anywhere,
// so no crash can tear a published generation — it can only corrupt
// bytes at rest, which the per-block CRC32C and per-segment SHA-256
// catch on the next load.
//
// Recovery (Load) scans manifests newest-first, fully verifies each
// candidate — manifest self-checksum, segment sizes and digests, block
// CRCs, strict license validation — and serves the first generation
// that passes whole, reporting exactly which newer generations were
// discarded and why. A Store is safe for concurrent use by one
// process; concurrent writers from multiple processes are out of
// scope.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hftnetview/internal/uls"
)

// storeVersion is the on-disk layout version recorded in manifests.
const storeVersion = 1

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrNoGeneration is returned by Load when no generation verifies —
// an empty store, or one whose every generation is corrupt.
var ErrNoGeneration = errors.New("store: no verified generation")

// Defaults for segment sizing; override with WithSegmentTarget /
// WithBlockLicenses (tests shrink them to exercise multi-segment
// generations on small corpora).
const (
	defaultSegmentTarget = 256 << 10 // start a new segment past 256 KiB
	defaultBlockLicenses = 64        // licenses per CRC-framed block
)

// SegmentInfo is one segment as recorded in a manifest.
type SegmentInfo struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	Blocks int    `json:"blocks"`
	SHA256 string `json:"sha256"`
}

// manifest is the commit record of one generation.
type manifest struct {
	Version      int           `json:"version"`
	Codec        int           `json:"codec"`
	Generation   int64         `json:"generation"`
	CreatedAt    time.Time     `json:"created_at"`
	Source       string        `json:"source"`
	Licenses     int           `json:"licenses"`
	CorpusSHA256 string        `json:"corpus_sha256"`
	Segments     []SegmentInfo `json:"segments"`
}

// GenInfo is the public description of one persisted generation.
type GenInfo struct {
	ID           int64
	CreatedAt    time.Time
	Source       string
	Licenses     int
	Bytes        int64 // total segment bytes
	Segments     []SegmentInfo
	CorpusSHA256 string
}

func (m *manifest) info() GenInfo {
	gi := GenInfo{
		ID:           m.Generation,
		CreatedAt:    m.CreatedAt,
		Source:       m.Source,
		Licenses:     m.Licenses,
		Segments:     m.Segments,
		CorpusSHA256: m.CorpusSHA256,
	}
	for _, s := range m.Segments {
		gi.Bytes += s.Bytes
	}
	return gi
}

// DiscardedGeneration records one generation recovery refused to serve.
type DiscardedGeneration struct {
	ID     int64
	Reason string
}

// RecoveryReport is the account of one Load: how many manifests were
// scanned, which generation was served, and exactly what was discarded.
type RecoveryReport struct {
	Scanned   int
	Served    int64 // generation id served; 0 when nothing verified
	Discarded []DiscardedGeneration
}

// String renders the report in one terminal-friendly block.
func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery: scanned=%d served=%d discarded=%d\n",
		r.Scanned, r.Served, len(r.Discarded))
	for _, d := range r.Discarded {
		fmt.Fprintf(&b, "  discarded gen %d: %s\n", d.ID, d.Reason)
	}
	return b.String()
}

// Store is a generation store rooted at one directory.
type Store struct {
	dir           string
	fp            Failpoints
	stagingFP     StagingFailpoints
	segmentTarget int
	blockLicenses int

	mu     sync.Mutex // serializes Save/GC/Close; Load is read-only
	closed bool
}

// Option configures a Store.
type Option func(*Store)

// WithFailpoints installs crash-injection hooks (tests only).
func WithFailpoints(fp Failpoints) Option {
	return func(s *Store) { s.fp = fp }
}

// WithStagingFailpoints installs crash-injection hooks on the staging
// area's resumable-download protocol (tests only).
func WithStagingFailpoints(fp StagingFailpoints) Option {
	return func(s *Store) { s.stagingFP = fp }
}

// WithSegmentTarget sets the byte size past which Save starts a new
// segment file.
func WithSegmentTarget(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.segmentTarget = n
		}
	}
}

// WithBlockLicenses sets how many licenses share one CRC-framed block.
func WithBlockLicenses(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.blockLicenses = n
		}
	}
}

// Open roots a store at dir, creating it if needed and sweeping temp
// debris (in-progress segment directories and manifest temp files)
// left by a previous crash. Published generations are never touched.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:           dir,
		segmentTarget: defaultSegmentTarget,
		blockLicenses: defaultBlockLicenses,
	}
	for _, o := range opts {
		o(s)
	}
	s.sweepTemp()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes the store: it waits for any in-flight Save to finish,
// sweeps temp debris, and marks the store closed. Safe to call more
// than once.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.sweepTemp()
	return nil
}

// sweepTemp removes in-progress artifacts: tmp-gen-* directories and
// MANIFEST-*.json.tmp files. They are never read by recovery, so
// removing them is always safe.
func (s *Store) sweepTemp() {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "tmp-gen-") ||
			(strings.HasPrefix(name, "MANIFEST-") && strings.HasSuffix(name, ".json.tmp")) ||
			(strings.HasPrefix(name, "KF-") && strings.HasSuffix(name, ".dat.tmp")) {
			os.RemoveAll(filepath.Join(s.dir, name))
		}
	}
}

func manifestName(id int64) string { return fmt.Sprintf("MANIFEST-%06d.json", id) }
func genDirName(id int64) string   { return fmt.Sprintf("gen-%06d", id) }

// parseManifestID extracts the generation id from a committed manifest
// file name, or -1.
func parseManifestID(name string) int64 {
	if !strings.HasPrefix(name, "MANIFEST-") || !strings.HasSuffix(name, ".json") {
		return -1
	}
	id, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "MANIFEST-"), ".json"), 10, 64)
	if err != nil || id <= 0 {
		return -1
	}
	return id
}

// parseGenDirID extracts the generation id from a segment directory
// name, or -1.
func parseGenDirID(name string) int64 {
	if !strings.HasPrefix(name, "gen-") {
		return -1
	}
	id, err := strconv.ParseInt(strings.TrimPrefix(name, "gen-"), 10, 64)
	if err != nil || id <= 0 {
		return -1
	}
	return id
}

// manifestIDs returns the committed generation ids, descending.
func (s *Store) manifestIDs() ([]int64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	var ids []int64
	for _, e := range ents {
		if id := parseManifestID(e.Name()); id > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	return ids, nil
}

// nextID picks the next generation id: one past anything on disk in
// any state (committed manifest, orphan segment directory, temp dir),
// so a crashed write can never collide with a later one.
func (s *Store) nextID() (int64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	var max int64
	for _, e := range ents {
		name := e.Name()
		if id := parseManifestID(name); id > max {
			max = id
		}
		if id := parseGenDirID(name); id > max {
			max = id
		}
		if rest, ok := strings.CutPrefix(name, "tmp-"); ok {
			if id := parseGenDirID(rest); id > max {
				max = id
			}
		}
	}
	return max + 1, nil
}

// syncDir fsyncs a directory so renames and creations in it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Save publishes db as a new generation and returns its description.
// On an ordinary error the in-progress temp directory is removed; on an
// injected ErrFailpoint it is left in place, exactly like a crash.
func (s *Store) Save(db *uls.Database, source string) (*GenInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	id, err := s.nextID()
	if err != nil {
		return nil, err
	}
	tmpDir := filepath.Join(s.dir, "tmp-"+genDirName(id))
	if err := os.Mkdir(tmpDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating temp dir: %w", err)
	}
	gi, err := s.save(db, source, id, tmpDir)
	if err != nil && !errors.Is(err, ErrFailpoint) {
		os.RemoveAll(tmpDir)
		os.Remove(filepath.Join(s.dir, manifestName(id)+".tmp"))
	}
	return gi, err
}

func (s *Store) save(db *uls.Database, source string, id int64, tmpDir string) (*GenInfo, error) {
	licenses := db.All()
	m := &manifest{
		Version:    storeVersion,
		Codec:      codecVersion,
		Generation: id,
		CreatedAt:  time.Now().UTC(),
		Source:     source,
		Licenses:   len(licenses),
	}

	// Encode licenses block by block, rolling to a new segment file
	// whenever the current one passes the target size.
	seg := append([]byte(nil), segMagic...)
	segBlocks := 0
	flushSegment := func() error {
		if segBlocks == 0 {
			return nil
		}
		name := fmt.Sprintf("seg-%04d.dat", len(m.Segments))
		path := filepath.Join(tmpDir, name)
		if err := s.writeFileSync(path, seg); err != nil {
			return err
		}
		m.Segments = append(m.Segments, SegmentInfo{
			Name:   name,
			Bytes:  int64(len(seg)),
			Blocks: segBlocks,
			SHA256: segmentDigest(seg),
		})
		seg = append(seg[:0], segMagic...)
		segBlocks = 0
		return nil
	}
	for i := 0; i < len(licenses); i += s.blockLicenses {
		end := min(i+s.blockLicenses, len(licenses))
		payload := encodeBlock(licenses[i:end])
		seg = appendBlockFrame(seg, payload)
		segBlocks++
		if len(seg) >= s.segmentTarget {
			if err := flushSegment(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushSegment(); err != nil {
		return nil, err
	}
	m.CorpusSHA256 = corpusDigest(m.Segments)

	if err := callFP(s.fp.BeforeManifest); err != nil {
		return nil, err
	}

	// Publish the segment directory, then commit with the manifest
	// rename.
	genDir := filepath.Join(s.dir, genDirName(id))
	if err := os.Rename(tmpDir, genDir); err != nil {
		return nil, fmt.Errorf("store: publishing segment dir: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return nil, fmt.Errorf("store: syncing %s: %w", s.dir, err)
	}

	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("store: encoding manifest: %w", err)
	}
	sum := sha256.Sum256(body)
	body = append(body, '\n')
	body = append(body, hex.EncodeToString(sum[:])...)
	body = append(body, '\n')

	final := filepath.Join(s.dir, manifestName(id))
	tmp := final + ".tmp"
	if err := s.writeFileSync(tmp, body); err != nil {
		return nil, err
	}
	if s.fp.MidRename != nil {
		if err := s.fp.MidRename(tmp, final); err != nil {
			return nil, err
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("store: committing manifest: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return nil, fmt.Errorf("store: syncing %s: %w", s.dir, err)
	}
	if s.fp.AfterPublish != nil {
		if err := s.fp.AfterPublish(genDir, final); err != nil {
			return nil, err
		}
	}
	gi := m.info()
	return &gi, nil
}

// writeFileSync writes data to path and fsyncs it, threading the
// BeforeFsync failpoint between the write and the sync — the window in
// which a real crash tears the file.
func (s *Store) writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if s.fp.BeforeFsync != nil {
		if err := s.fp.BeforeFsync(path); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", path, err)
	}
	return nil
}

// loadManifest reads and self-verifies one committed manifest.
func (s *Store) loadManifest(id int64) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName(id)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: generation %d manifest", ErrGenGone, id)
		}
		return nil, fmt.Errorf("reading manifest: %w", err)
	}
	m, err := parseManifestBytes(data)
	if err != nil {
		return nil, err
	}
	if m.Generation != id {
		return nil, fmt.Errorf("manifest names generation %d, file says %d", m.Generation, id)
	}
	return m, nil
}

// parseManifestBytes self-verifies and decodes one manifest's raw bytes
// (the exact content of a MANIFEST-*.json file — also the generation
// shipping wire format).
func parseManifestBytes(data []byte) (*manifest, error) {
	line, rest, ok := strings.Cut(string(data), "\n")
	if !ok {
		return nil, errors.New("manifest missing checksum line")
	}
	sum := sha256.Sum256([]byte(line))
	if strings.TrimSpace(rest) != hex.EncodeToString(sum[:]) {
		return nil, errors.New("manifest body does not match its checksum")
	}
	var m manifest
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		return nil, fmt.Errorf("decoding manifest: %w", err)
	}
	if m.Version != storeVersion {
		return nil, fmt.Errorf("store layout version %d (this binary reads %d)", m.Version, storeVersion)
	}
	if m.Codec != codecVersion {
		return nil, fmt.Errorf("codec version %d (this binary reads %d)", m.Codec, codecVersion)
	}
	return &m, nil
}

// corpusDigest is the generation-level digest recorded in the
// manifest: the SHA-256 over the ordered per-segment SHA-256 values.
// Verifying it costs nothing beyond the per-segment hashing recovery
// already does (no second pass over the data), yet it still pins the
// exact segment set and order the generation was published with.
func corpusDigest(segs []SegmentInfo) string {
	h := sha256.New()
	for _, si := range segs {
		h.Write([]byte(si.SHA256))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// verifyGeneration verifies one generation and rebuilds its database.
// Segments are verified and decoded in parallel — every segment's
// exact size, every block CRC32C, every license decoded — then
// inserted in one duplicate-checked bulk step; finally the license
// count and corpus digest are checked against the manifest. Any
// failure poisons the generation whole — recovery never serves a
// partial corpus.
//
// The boot path (deep=false) trusts that chain: matching checksums
// over bytes Save encoded from an already-validated Database mean the
// licenses decode back semantically valid, so neither the whole-file
// SHA-256 nor per-license re-validation runs — both were the warm
// boot's biggest costs. Fsck passes deep=true to run them anyway,
// catching hash-level corruption a CRC could theoretically be collided
// past and codec bugs that byte integrity cannot see.
func (s *Store) verifyGeneration(m *manifest, deep bool) (*uls.Database, error) {
	return verifyGenerationDir(m, filepath.Join(s.dir, genDirName(m.Generation)), deep)
}

// verifyGenerationDir is verifyGeneration against an explicit segment
// directory — the committed gen-N dir on the boot path, a temp dir full
// of just-downloaded segments on the replica install path.
func verifyGenerationDir(m *manifest, genDir string, deep bool) (*uls.Database, error) {
	type segResult struct {
		ls  []*uls.License
		err error
	}
	results := make([]segResult, len(m.Segments))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, si := range m.Segments {
		wg.Add(1)
		go func(i int, si SegmentInfo) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			blocks, err := readSegment(filepath.Join(genDir, si.Name), si, deep)
			if err != nil {
				results[i].err = err
				return
			}
			if len(blocks) != si.Blocks {
				results[i].err = fmt.Errorf("store: segment %s has %d blocks, manifest says %d",
					si.Name, len(blocks), si.Blocks)
				return
			}
			for _, payload := range blocks {
				ls, err := decodeBlock(payload)
				if err != nil {
					results[i].err = err
					return
				}
				results[i].ls = append(results[i].ls, ls...)
			}
		}(i, si)
	}
	wg.Wait()

	total := 0
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		total += len(r.ls)
	}
	all := make([]*uls.License, 0, total)
	for _, r := range results {
		all = append(all, r.ls...)
	}
	db := uls.NewDatabase()
	if err := db.AddBulk(all, uls.BulkAddOptions{TrustValidated: !deep}); err != nil {
		return nil, fmt.Errorf("store: rejected license: %w", err)
	}
	// Recomputing the corpus digest from the manifest's per-segment
	// entries pins the segment set and order the generation was
	// published with, without a pass over the data (the entries
	// themselves are covered by the manifest self-checksum; deep mode
	// additionally re-derived each from the segment bytes).
	if got := corpusDigest(m.Segments); got != m.CorpusSHA256 {
		return nil, fmt.Errorf("store: corpus SHA-256 mismatch (%s != %s)",
			got[:12], m.CorpusSHA256[:min(12, len(m.CorpusSHA256))])
	}
	if db.Len() != m.Licenses {
		return nil, fmt.Errorf("store: recovered %d licenses, manifest says %d", db.Len(), m.Licenses)
	}
	return db, nil
}

// Load recovers the newest fully-verified generation. The report is
// never nil and accounts for every newer generation that was discarded
// and why; err is ErrNoGeneration when nothing on disk verifies.
func (s *Store) Load() (*uls.Database, *GenInfo, *RecoveryReport, error) {
	rep := &RecoveryReport{}
	ids, err := s.manifestIDs()
	if err != nil {
		return nil, nil, rep, err
	}
	for _, id := range ids {
		rep.Scanned++
		m, err := s.loadManifest(id)
		if err != nil {
			rep.Discarded = append(rep.Discarded, DiscardedGeneration{ID: id, Reason: err.Error()})
			continue
		}
		db, err := s.verifyGeneration(m, false)
		if err != nil {
			rep.Discarded = append(rep.Discarded, DiscardedGeneration{ID: id, Reason: err.Error()})
			continue
		}
		rep.Served = id
		gi := m.info()
		return db, &gi, rep, nil
	}
	return nil, nil, rep, ErrNoGeneration
}

// List describes the committed generations, newest first, without
// verifying segment contents (manifest self-checksums are enforced;
// unreadable manifests are skipped).
func (s *Store) List() ([]GenInfo, error) {
	ids, err := s.manifestIDs()
	if err != nil {
		return nil, err
	}
	var out []GenInfo
	for _, id := range ids {
		m, err := s.loadManifest(id)
		if err != nil {
			out = append(out, GenInfo{ID: id, Source: "(unreadable: " + err.Error() + ")"})
			continue
		}
		out = append(out, m.info())
	}
	return out, nil
}

// FsckGeneration is one generation's verification verdict.
type FsckGeneration struct {
	ID       int64
	Info     GenInfo
	OK       bool
	Err      string
	Licenses int // licenses recovered during verification (0 when !OK)
}

// FsckReport is the outcome of a full store verification.
type FsckReport struct {
	Generations []FsckGeneration // newest first
	Orphans     []string         // segment dirs with no manifest, temp debris
}

// OK reports whether at least one generation verifies and none is
// corrupt.
func (r *FsckReport) OK() bool {
	if len(r.Generations) == 0 {
		return false
	}
	for _, g := range r.Generations {
		if !g.OK {
			return false
		}
	}
	return true
}

// Fsck verifies every committed generation end to end and inventories
// debris (orphan segment directories, leftover temp files).
func (s *Store) Fsck() (*FsckReport, error) {
	rep := &FsckReport{}
	ids, err := s.manifestIDs()
	if err != nil {
		return nil, err
	}
	manifested := make(map[int64]bool)
	for _, id := range ids {
		manifested[id] = true
		fg := FsckGeneration{ID: id}
		m, err := s.loadManifest(id)
		if err != nil {
			fg.Err = err.Error()
		} else {
			fg.Info = m.info()
			db, err := s.verifyGeneration(m, true)
			if err != nil {
				fg.Err = err.Error()
			} else {
				fg.OK = true
				fg.Licenses = db.Len()
			}
		}
		rep.Generations = append(rep.Generations, fg)
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	for _, e := range ents {
		name := e.Name()
		if id := parseGenDirID(name); id > 0 && !manifested[id] {
			rep.Orphans = append(rep.Orphans, name)
		}
		if strings.HasPrefix(name, "tmp-gen-") ||
			(strings.HasPrefix(name, "MANIFEST-") && strings.HasSuffix(name, ".json.tmp")) {
			rep.Orphans = append(rep.Orphans, name)
		}
	}
	sort.Strings(rep.Orphans)
	return rep, nil
}

// GC retains the newest keep generations and removes the rest, plus
// orphan segment directories and temp debris. If none of the kept
// generations verifies, GC extends the kept set downward until one
// does — it never deletes the last recoverable corpus. It returns the
// removed generation ids, descending.
func (s *Store) GC(keep int) ([]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if keep < 1 {
		keep = 1
	}
	ids, err := s.manifestIDs()
	if err != nil {
		return nil, err
	}
	// Extend keep until the kept prefix contains a verified generation
	// (or we run out of generations to extend into).
	verified := func(id int64) bool {
		m, err := s.loadManifest(id)
		if err != nil {
			return false
		}
		_, err = s.verifyGeneration(m, false)
		return err == nil
	}
	cut := min(keep, len(ids))
	anyOK := false
	for _, id := range ids[:cut] {
		if verified(id) {
			anyOK = true
			break
		}
	}
	for !anyOK && cut < len(ids) {
		if verified(ids[cut]) {
			anyOK = true
		}
		cut++
	}
	var removed []int64
	for _, id := range ids[cut:] {
		if err := os.Remove(filepath.Join(s.dir, manifestName(id))); err != nil {
			return removed, fmt.Errorf("store: removing manifest %d: %w", id, err)
		}
		os.RemoveAll(filepath.Join(s.dir, genDirName(id)))
		removed = append(removed, id)
	}
	// Sweep orphans and temp debris.
	kept := make(map[int64]bool)
	for _, id := range ids[:cut] {
		kept[id] = true
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return removed, nil
	}
	for _, e := range ents {
		name := e.Name()
		if id := parseGenDirID(name); id > 0 && !kept[id] {
			os.RemoveAll(filepath.Join(s.dir, name))
		}
	}
	s.sweepKeyframes(kept)
	s.sweepTemp()
	// Staging areas for generations that have since been committed are
	// spent; uncommitted ones may be in-flight pulls and are kept.
	s.sweepStagingLocked(0)
	syncDir(s.dir)
	return removed, nil
}
