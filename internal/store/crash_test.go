package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

// The crash-consistency contract: a store holding generation N−1 that
// crashes anywhere inside the Save of generation N must, on recovery,
// serve *exactly* generation N (the crash landed after the commit
// point and the bytes survived) or *exactly* generation N−1 (it landed
// before, or the bytes did not) — never a hybrid, never a torn corpus,
// and always with every checksum verified. TestCrashConsistency loops
// that contract over every failpoint × seeds 1–20, with the kill
// instant, the torn-write prefix, and the flipped bit all drawn from
// the seed.

// crashCase is one failpoint family. arm installs seeded hooks into fp
// and reports (via the returned func) whether recovery may legally
// serve generation N (true) or must fall back to N−1 (false).
type crashCase struct {
	name string
	arm  func(fp *Failpoints, rng *rand.Rand, seed uint64) (mayServeNew bool)
}

func crashCases() []crashCase {
	return []crashCase{
		{
			// Kill before a seeded segment fsync, leaving that segment
			// torn at a seeded prefix: no manifest ever exists, so
			// recovery must serve N−1.
			name: "fail-before-fsync",
			arm: func(fp *Failpoints, rng *rand.Rand, seed uint64) bool {
				target := 1 + int(seed)%2
				calls := 0
				fp.BeforeFsync = func(path string) error {
					calls++
					if calls < target {
						return nil
					}
					fi, err := os.Stat(path)
					if err == nil && fi.Size() > 0 {
						os.Truncate(path, rng.Int64N(fi.Size()))
					}
					return fmt.Errorf("%w: before fsync of %s", ErrFailpoint, filepath.Base(path))
				}
				return false
			},
		},
		{
			// Kill after every segment is durable but before the
			// manifest exists in any form.
			name: "fail-between-segment-and-manifest",
			arm: func(fp *Failpoints, rng *rand.Rand, seed uint64) bool {
				fp.BeforeManifest = func() error {
					return fmt.Errorf("%w: between segments and manifest", ErrFailpoint)
				}
				return false
			},
		},
		{
			// Kill after the manifest temp file is durable but before
			// the atomic rename that commits it: the *.tmp manifest
			// must be invisible to recovery.
			name: "fail-mid-rename",
			arm: func(fp *Failpoints, rng *rand.Rand, seed uint64) bool {
				fp.MidRename = func(tmp, final string) error {
					return fmt.Errorf("%w: manifest rename %s", ErrFailpoint, filepath.Base(final))
				}
				return false
			},
		},
		{
			// The generation commits, then a seeded bit flips in one of
			// its published segments (at-rest rot): recovery must detect
			// the flip and fall back to N−1, reporting the discard.
			name: "bit-flip-segment-after-publish",
			arm: func(fp *Failpoints, rng *rand.Rand, seed uint64) bool {
				fp.AfterPublish = func(genDir, manifestPath string) error {
					ents, err := os.ReadDir(genDir)
					if err != nil || len(ents) == 0 {
						return fmt.Errorf("no segments in %s: %v", genDir, err)
					}
					path := filepath.Join(genDir, ents[rng.IntN(len(ents))].Name())
					data, err := os.ReadFile(path)
					if err != nil {
						return err
					}
					if err := os.WriteFile(path, synth.FlipBits(data, seed, 1), 0o644); err != nil {
						return err
					}
					return fmt.Errorf("%w: after publish (segment bit flip)", ErrFailpoint)
				}
				return false
			},
		},
		{
			// The generation commits, then a seeded bit flips in its
			// manifest: the manifest self-checksum must refuse it.
			name: "bit-flip-manifest-after-publish",
			arm: func(fp *Failpoints, rng *rand.Rand, seed uint64) bool {
				fp.AfterPublish = func(genDir, manifestPath string) error {
					data, err := os.ReadFile(manifestPath)
					if err != nil {
						return err
					}
					if err := os.WriteFile(manifestPath, synth.FlipBits(data, seed, 1), 0o644); err != nil {
						return err
					}
					return fmt.Errorf("%w: after publish (manifest bit flip)", ErrFailpoint)
				}
				return false
			},
		},
		{
			// Control: no failpoint fires; the Save commits and recovery
			// must serve generation N.
			name: "no-crash",
			arm: func(fp *Failpoints, rng *rand.Rand, seed uint64) bool {
				return true
			},
		},
	}
}

func TestCrashConsistency(t *testing.T) {
	clean := corpus(t)
	cleanBulk := bulkBytes(t, clean)

	for _, cc := range crashCases() {
		t.Run(cc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 20; seed++ {
				// Generation N−1 is a seed-distinct corpus: the salvage
				// of a seeded-corrupt encoding of the clean one.
				c := synth.Corrupt(clean, synth.Profile{
					Name: "mixed", Rate: 0.25,
					GarbleW: 3, TruncateW: 2, DuplicateW: 2, ReorderW: 1, ShredW: 2,
				}, seed)
				oldDB, _, err := uls.ReadBulkWithOptions(bytes.NewReader(c.Dirty),
					uls.ReadBulkOptions{Mode: uls.Lenient})
				if err != nil {
					t.Fatalf("seed %d: salvaging old corpus: %v", seed, err)
				}
				oldBulk := bulkBytes(t, oldDB)
				if bytes.Equal(oldBulk, cleanBulk) {
					t.Fatalf("seed %d: old and new corpora are identical; N vs N−1 would be unobservable", seed)
				}

				dir := t.TempDir()
				s := open(t, dir, WithSegmentTarget(16<<10), WithBlockLicenses(8))
				giOld, err := s.Save(oldDB, "generation N-1")
				if err != nil {
					t.Fatalf("seed %d: saving N−1: %v", seed, err)
				}

				rng := rand.New(rand.NewPCG(seed, 0xc7a54))
				var fp Failpoints
				mayServeNew := cc.arm(&fp, rng, seed)
				s.fp = fp

				_, err = s.Save(clean, "generation N")
				if mayServeNew {
					if err != nil {
						t.Fatalf("seed %d: clean save failed: %v", seed, err)
					}
				} else if !errors.Is(err, ErrFailpoint) {
					t.Fatalf("seed %d: want injected crash, got %v", seed, err)
				}

				// "Restart": reopen the store from disk and recover.
				s2 := open(t, dir)
				got, gi, rep, err := s2.Load()
				if err != nil {
					t.Fatalf("seed %d: recovery failed: %v\n%s", seed, err, rep)
				}
				gotBulk := bulkBytes(t, got)

				switch {
				case bytes.Equal(gotBulk, cleanBulk):
					if !mayServeNew {
						t.Fatalf("seed %d: recovery served generation N after a pre-commit crash\n%s", seed, rep)
					}
				case bytes.Equal(gotBulk, oldBulk):
					if gi.ID != giOld.ID {
						t.Fatalf("seed %d: N−1 corpus served under generation id %d, want %d", seed, gi.ID, giOld.ID)
					}
					if mayServeNew {
						t.Fatalf("seed %d: clean commit lost; recovery fell back to N−1\n%s", seed, rep)
					}
				default:
					t.Fatalf("seed %d: recovered corpus is a hybrid — matches neither N nor N−1\n%s", seed, rep)
				}

				// Post-publish corruption must be reported, not silent.
				if fp.AfterPublish != nil && len(rep.Discarded) == 0 {
					t.Fatalf("seed %d: corrupted generation discarded silently\n%s", seed, rep)
				}

				// The recovered store stays writable: the next Save must
				// pick an id above all debris and commit cleanly.
				gi3, err := s2.Save(got, "post-recovery")
				if err != nil {
					t.Fatalf("seed %d: post-recovery save: %v", seed, err)
				}
				if gi3.ID <= giOld.ID {
					t.Fatalf("seed %d: post-recovery id %d not above %d", seed, gi3.ID, giOld.ID)
				}
			}
		})
	}
}
