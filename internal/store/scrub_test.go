package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// flipByte corrupts one committed segment file of generation id in
// dir, returning the corrupted file's path.
func flipByte(t *testing.T, dir string, id int64, seg string) string {
	t.Helper()
	path := filepath.Join(dir, genDirName(id), seg)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
	return path
}

// peerFetch is a SegmentFetch over another open store holding the same
// generations.
func peerFetch(peer *Store) SegmentFetch {
	return func(_ context.Context, gen GenInfo, seg SegmentInfo) ([]byte, error) {
		return peer.ReadSegmentRaw(gen.ID, seg.Name)
	}
}

func TestScrubRepairsFromPeer(t *testing.T) {
	db := corpus(t)
	opts := []Option{WithSegmentTarget(16 << 10), WithBlockLicenses(8)}
	healthy := open(t, t.TempDir(), opts...)
	dir := t.TempDir()
	sick := open(t, dir, opts...)
	gi, err := healthy.Save(db, "peer copy")
	if err != nil {
		t.Fatalf("save healthy: %v", err)
	}
	// Ship the generation into the sick store so both hold identical
	// bytes under the same id and corpus digest.
	mb, _, err := healthy.ExportManifest(gi.ID)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if _, _, err := sick.Install(mb, func(name string) ([]byte, error) {
		return healthy.ReadSegmentRaw(gi.ID, name)
	}); err != nil {
		t.Fatalf("install: %v", err)
	}

	flipByte(t, dir, gi.ID, gi.Segments[0].Name)
	flipByte(t, dir, gi.ID, gi.Segments[1].Name)
	if rep, err := sick.Fsck(); err != nil || rep.OK() {
		t.Fatalf("fsck should flag the flipped bytes (err=%v ok=%v)", err, rep.OK())
	}

	sc := NewScrubber(sick, ScrubConfig{Pause: time.Microsecond, Fetch: peerFetch(healthy)})
	if err := sc.ScrubOnce(context.Background()); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	st := sc.Status()
	if st.Corrupt != 2 || st.Repaired != 2 || st.Quarantined != 2 || st.Unrepaired != 0 {
		t.Fatalf("unexpected status: %+v", st)
	}
	rep, err := sick.Fsck()
	if err != nil || !rep.OK() {
		t.Fatalf("store not fsck-clean after repair (err=%v): %+v", err, rep)
	}
	// The corrupt originals are preserved for forensics.
	for _, seg := range []string{gi.Segments[0].Name, gi.Segments[1].Name} {
		q := filepath.Join(dir, quarantineDirName, genDirName(gi.ID)+"-"+seg)
		if _, err := os.Stat(q); err != nil {
			t.Fatalf("quarantined original %s missing: %v", q, err)
		}
	}
	// A second cycle finds nothing.
	if err := sc.ScrubOnce(context.Background()); err != nil {
		t.Fatalf("scrub 2: %v", err)
	}
	if st := sc.Status(); st.Corrupt != 2 || st.Cycles != 2 {
		t.Fatalf("second cycle re-detected: %+v", st)
	}
}

func TestScrubRepairsMissingSegment(t *testing.T) {
	db := corpus(t)
	opts := []Option{WithSegmentTarget(16 << 10), WithBlockLicenses(8)}
	healthy := open(t, t.TempDir(), opts...)
	dir := t.TempDir()
	sick := open(t, dir, opts...)
	gi, err := healthy.Save(db, "peer copy")
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	mb, _, _ := healthy.ExportManifest(gi.ID)
	if _, _, err := sick.Install(mb, func(name string) ([]byte, error) {
		return healthy.ReadSegmentRaw(gi.ID, name)
	}); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, genDirName(gi.ID), gi.Segments[0].Name)); err != nil {
		t.Fatalf("remove segment: %v", err)
	}
	sc := NewScrubber(sick, ScrubConfig{Pause: time.Microsecond, Fetch: peerFetch(healthy)})
	if err := sc.ScrubOnce(context.Background()); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	st := sc.Status()
	// Repaired but nothing to quarantine: the original was gone.
	if st.Repaired != 1 || st.Quarantined != 0 {
		t.Fatalf("unexpected status: %+v", st)
	}
	if rep, err := sick.Fsck(); err != nil || !rep.OK() {
		t.Fatalf("store not clean after repair (err=%v)", err)
	}
}

func TestScrubUnrepairableFallsBackThenQuarantines(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir, WithSegmentTarget(16<<10), WithBlockLicenses(8))
	gi1, err := s.Save(db, "gen one")
	if err != nil {
		t.Fatalf("save 1: %v", err)
	}
	gi2, err := s.Save(db, "gen two")
	if err != nil {
		t.Fatalf("save 2: %v", err)
	}
	flipByte(t, dir, gi2.ID, gi2.Segments[0].Name)

	noPeer := func(context.Context, GenInfo, SegmentInfo) ([]byte, error) {
		return nil, errors.New("no peer holds a matching copy")
	}
	sc := NewScrubber(s, ScrubConfig{Pause: time.Microsecond, Fetch: noPeer, QuarantineAfter: 3})

	// Two cycles: detected, unrepaired, still on disk; Load falls back
	// to the previous generation.
	for i := 0; i < 2; i++ {
		if err := sc.ScrubOnce(context.Background()); err != nil {
			t.Fatalf("scrub %d: %v", i, err)
		}
	}
	st := sc.Status()
	if st.Corrupt != 2 || st.Repaired != 0 || st.Unrepaired != 2 || st.GenerationsQuarantined != 0 {
		t.Fatalf("unexpected status before quarantine: %+v", st)
	}
	_, lgi, rep, err := s.Load()
	if err != nil {
		t.Fatalf("load: %v\n%s", err, rep)
	}
	if lgi.ID != gi1.ID || len(rep.Discarded) != 1 || rep.Discarded[0].ID != gi2.ID {
		t.Fatalf("load should fall back to gen %d: served %d, %s", gi1.ID, lgi.ID, rep)
	}

	// Third consecutive miss crosses QuarantineAfter: the generation
	// moves aside whole and the store is fsck-clean again.
	if err := sc.ScrubOnce(context.Background()); err != nil {
		t.Fatalf("scrub 3: %v", err)
	}
	if st := sc.Status(); st.GenerationsQuarantined != 1 {
		t.Fatalf("generation not quarantined: %+v", st)
	}
	frep, err := s.Fsck()
	if err != nil || !frep.OK() || len(frep.Generations) != 1 {
		t.Fatalf("store not clean after quarantine (err=%v): %+v", err, frep)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDirName, manifestName(gi2.ID))); err != nil {
		t.Fatalf("quarantined manifest missing: %v", err)
	}
}

func TestScrubNeverQuarantinesLastGeneration(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir, WithSegmentTarget(16<<10), WithBlockLicenses(8))
	gi, err := s.Save(db, "only gen")
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	flipByte(t, dir, gi.ID, gi.Segments[0].Name)
	sc := NewScrubber(s, ScrubConfig{Pause: time.Microsecond, QuarantineAfter: 1})
	for i := 0; i < 3; i++ {
		if err := sc.ScrubOnce(context.Background()); err != nil {
			t.Fatalf("scrub %d: %v", i, err)
		}
	}
	if st := sc.Status(); st.GenerationsQuarantined != 0 {
		t.Fatalf("last generation must never be auto-quarantined: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName(gi.ID))); err != nil {
		t.Fatalf("only generation's manifest should stay on disk: %v", err)
	}
}

func TestScrubRunHonorsContext(t *testing.T) {
	db := corpus(t)
	s := open(t, t.TempDir())
	if _, err := s.Save(db, "gen"); err != nil {
		t.Fatalf("save: %v", err)
	}
	sc := NewScrubber(s, ScrubConfig{Interval: time.Millisecond, Pause: time.Microsecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { sc.Run(ctx); close(done) }()
	waitUntil := time.Now().Add(2 * time.Second)
	for sc.Status().Cycles == 0 && time.Now().Before(waitUntil) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
	if sc.Status().Cycles == 0 {
		t.Fatal("Run never completed a cycle")
	}
}

func TestQuarantineGeneration(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir)
	gi1, err := s.Save(db, "gen one")
	if err != nil {
		t.Fatalf("save 1: %v", err)
	}
	gi2, err := s.Save(db, "gen two")
	if err != nil {
		t.Fatalf("save 2: %v", err)
	}
	if err := s.QuarantineGeneration(gi2.ID); err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	gens, err := s.List()
	if err != nil || len(gens) != 1 || gens[0].ID != gi1.ID {
		t.Fatalf("list after quarantine: %v %+v", err, gens)
	}
	_, lgi, _, err := s.Load()
	if err != nil || lgi.ID != gi1.ID {
		t.Fatalf("load after quarantine served %v (err=%v), want %d", lgi, err, gi1.ID)
	}
	for _, name := range []string{manifestName(gi2.ID), genDirName(gi2.ID)} {
		if _, err := os.Stat(filepath.Join(dir, quarantineDirName, name)); err != nil {
			t.Fatalf("quarantine missing %s: %v", name, err)
		}
	}
	if err := s.QuarantineGeneration(gi2.ID); !errors.Is(err, ErrGenGone) {
		t.Fatalf("re-quarantine err = %v, want ErrGenGone", err)
	}
	// Quarantined debris is invisible to Fsck and survives GC.
	rep, err := s.Fsck()
	if err != nil || !rep.OK() || len(rep.Orphans) != 0 {
		t.Fatalf("fsck sees quarantine debris (err=%v): %+v", err, rep)
	}
	if _, err := s.GC(1); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDirName, manifestName(gi2.ID))); err != nil {
		t.Fatalf("gc swept quarantine: %v", err)
	}
}
