package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

// corpus returns the deterministic synthetic corpus (shared across
// tests; treat as read-only).
func corpus(t testing.TB) *uls.Database {
	t.Helper()
	db, err := synth.Generate()
	if err != nil {
		t.Fatalf("generating corpus: %v", err)
	}
	return db
}

// bulkBytes is the canonical bulk encoding of db, for whole-corpus
// equality checks.
func bulkBytes(t testing.TB, db *uls.Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := uls.WriteBulk(&buf, db); err != nil {
		t.Fatalf("encoding corpus: %v", err)
	}
	return buf.Bytes()
}

func open(t testing.TB, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := corpus(t)
	// Small segments force a multi-segment generation.
	s := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))

	gi, err := s.Save(db, "unit test")
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if gi.ID != 1 || gi.Licenses != db.Len() {
		t.Fatalf("bad GenInfo: %+v", gi)
	}
	if len(gi.Segments) < 2 {
		t.Fatalf("want multi-segment generation, got %d segments", len(gi.Segments))
	}

	back, lgi, rep, err := s.Load()
	if err != nil {
		t.Fatalf("load: %v\n%s", err, rep)
	}
	if lgi.ID != gi.ID {
		t.Fatalf("loaded generation %d, want %d", lgi.ID, gi.ID)
	}
	if rep.Served != gi.ID || len(rep.Discarded) != 0 {
		t.Fatalf("unexpected recovery report: %s", rep)
	}
	if !bytes.Equal(bulkBytes(t, back), bulkBytes(t, db)) {
		t.Fatal("recovered corpus differs from the saved one")
	}
}

func TestLoadServesNewestGeneration(t *testing.T) {
	db := corpus(t)
	s := open(t, t.TempDir())
	if _, err := s.Save(db, "gen one"); err != nil {
		t.Fatalf("save 1: %v", err)
	}
	gi2, err := s.Save(db, "gen two")
	if err != nil {
		t.Fatalf("save 2: %v", err)
	}
	_, lgi, _, err := s.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if lgi.ID != gi2.ID || lgi.Source != "gen two" {
		t.Fatalf("served %d (%s), want newest %d", lgi.ID, lgi.Source, gi2.ID)
	}
}

func TestLoadEmptyStore(t *testing.T) {
	s := open(t, t.TempDir())
	_, _, rep, err := s.Load()
	if !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("err = %v, want ErrNoGeneration", err)
	}
	if rep == nil || rep.Scanned != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestListAndGC(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 4; i++ {
		if _, err := s.Save(db, "gen"); err != nil {
			t.Fatalf("save %d: %v", i+1, err)
		}
	}
	gens, err := s.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(gens) != 4 || gens[0].ID != 4 || gens[3].ID != 1 {
		t.Fatalf("bad listing: %+v", gens)
	}

	removed, err := s.GC(2)
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if len(removed) != 2 || removed[0] != 2 || removed[1] != 1 {
		t.Fatalf("gc removed %v, want [2 1]", removed)
	}
	gens, _ = s.List()
	if len(gens) != 2 || gens[0].ID != 4 || gens[1].ID != 3 {
		t.Fatalf("post-gc listing: %+v", gens)
	}
	// The removed generations' segment dirs are gone too.
	for _, id := range removed {
		if _, err := os.Stat(filepath.Join(dir, genDirName(id))); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("segment dir for removed gen %d still present", id)
		}
	}
}

// TestGCKeepsLastRecoverable: when every generation inside the keep
// window is corrupt, GC must extend the window rather than delete the
// only corpus that still verifies.
func TestGCKeepsLastRecoverable(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir)
	gi1, err := s.Save(db, "good")
	if err != nil {
		t.Fatalf("save 1: %v", err)
	}
	gi2, err := s.Save(db, "to be corrupted")
	if err != nil {
		t.Fatalf("save 2: %v", err)
	}
	corruptSegment(t, dir, gi2.ID)

	removed, err := s.GC(1)
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if len(removed) != 0 {
		t.Fatalf("gc removed %v; the only verified generation is %d", removed, gi1.ID)
	}
	_, lgi, _, err := s.Load()
	if err != nil {
		t.Fatalf("load after gc: %v", err)
	}
	if lgi.ID != gi1.ID {
		t.Fatalf("served %d, want surviving good generation %d", lgi.ID, gi1.ID)
	}
}

// corruptSegment flips one bit in the middle of the first segment of
// the given generation.
func corruptSegment(t testing.TB, dir string, id int64) {
	t.Helper()
	genDir := filepath.Join(dir, genDirName(id))
	ents, err := os.ReadDir(genDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no segments for gen %d: %v", id, err)
	}
	path := filepath.Join(genDir, ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading segment: %v", err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing corrupted segment: %v", err)
	}
}

func TestBitFlipFallsBackOneGeneration(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir)
	gi1, err := s.Save(db, "good")
	if err != nil {
		t.Fatalf("save 1: %v", err)
	}
	gi2, err := s.Save(db, "flipped")
	if err != nil {
		t.Fatalf("save 2: %v", err)
	}
	corruptSegment(t, dir, gi2.ID)

	back, lgi, rep, err := s.Load()
	if err != nil {
		t.Fatalf("load: %v\n%s", err, rep)
	}
	if lgi.ID != gi1.ID {
		t.Fatalf("served gen %d, want fallback to %d", lgi.ID, gi1.ID)
	}
	if len(rep.Discarded) != 1 || rep.Discarded[0].ID != gi2.ID {
		t.Fatalf("discard report should name gen %d exactly: %s", gi2.ID, rep)
	}
	if !strings.Contains(rep.Discarded[0].Reason, "mismatch") &&
		!strings.Contains(rep.Discarded[0].Reason, "CRC") {
		t.Fatalf("discard reason should blame a checksum: %q", rep.Discarded[0].Reason)
	}
	if !bytes.Equal(bulkBytes(t, back), bulkBytes(t, db)) {
		t.Fatal("fallback corpus differs from the saved one")
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir)
	if _, err := s.Save(db, "good"); err != nil {
		t.Fatalf("save 1: %v", err)
	}
	gi2, err := s.Save(db, "manifest flipped")
	if err != nil {
		t.Fatalf("save 2: %v", err)
	}
	mp := filepath.Join(dir, manifestName(gi2.ID))
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(mp, data, 0o644); err != nil {
		t.Fatalf("writing corrupted manifest: %v", err)
	}

	_, lgi, rep, err := s.Load()
	if err != nil {
		t.Fatalf("load: %v\n%s", err, rep)
	}
	if lgi.ID != 1 || rep.Discarded[0].ID != gi2.ID {
		t.Fatalf("want fallback to 1 discarding %d, got served=%d report=%s", gi2.ID, lgi.ID, rep)
	}
}

func TestOpenSweepsTempDebris(t *testing.T) {
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "tmp-gen-000009"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST-000009.json.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	open(t, dir)
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		t.Fatalf("debris survived Open: %s", e.Name())
	}
}

func TestFsck(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir)
	if _, err := s.Save(db, "good"); err != nil {
		t.Fatal(err)
	}
	gi2, err := s.Save(db, "bad")
	if err != nil {
		t.Fatal(err)
	}
	corruptSegment(t, dir, gi2.ID)
	// An orphan segment dir (no manifest).
	if err := os.Mkdir(filepath.Join(dir, genDirName(99)), 0o755); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Fsck()
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if rep.OK() {
		t.Fatal("fsck passed a store with a corrupt generation")
	}
	if len(rep.Generations) != 2 || !rep.Generations[1].OK || rep.Generations[0].OK {
		t.Fatalf("unexpected verdicts: %+v", rep.Generations)
	}
	if len(rep.Orphans) != 1 || rep.Orphans[0] != genDirName(99) {
		t.Fatalf("orphans = %v, want [%s]", rep.Orphans, genDirName(99))
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	db := corpus(t)
	s := open(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := s.Save(db, "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("save on closed store: %v, want ErrClosed", err)
	}
	if _, err := s.GC(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("gc on closed store: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestCodecLicenseRoundTrip(t *testing.T) {
	db := corpus(t)
	ls := db.All()
	payload := encodeBlock(ls)
	back, err := decodeBlock(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back) != len(ls) {
		t.Fatalf("decoded %d licenses, want %d", len(back), len(ls))
	}
	db2 := uls.NewDatabase()
	for _, l := range back {
		if err := db2.Add(l); err != nil {
			t.Fatalf("decoded license failed validation: %v", err)
		}
	}
	if !bytes.Equal(bulkBytes(t, db2), bulkBytes(t, db)) {
		t.Fatal("codec round trip changed the corpus")
	}
}

func TestDecodeBlockRejectsTruncation(t *testing.T) {
	db := corpus(t)
	payload := encodeBlock(db.All()[:4])
	for cut := 0; cut < len(payload); cut += 7 {
		if _, err := decodeBlock(payload[:cut]); err == nil && cut < len(payload) {
			t.Fatalf("decodeBlock accepted a %d/%d-byte truncation", cut, len(payload))
		}
	}
}
