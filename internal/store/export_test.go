package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"hftnetview/internal/synth"
)

// shipFetch is a fetch closure over another store's raw reader — the
// in-process stand-in for the HTTP segment download.
func shipFetch(src *Store, id int64) func(name string) ([]byte, error) {
	return func(name string) ([]byte, error) { return src.ReadSegmentRaw(id, name) }
}

func TestExportInstallRoundTrip(t *testing.T) {
	db := corpus(t)
	primary := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))
	gi, err := primary.Save(db, "primary gen")
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if len(gi.Segments) < 2 {
		t.Fatalf("want a multi-segment generation, got %d segments", len(gi.Segments))
	}

	mb, id, err := primary.ExportManifest(0)
	if err != nil {
		t.Fatalf("export manifest: %v", err)
	}
	if id != gi.ID {
		t.Fatalf("exported generation %d, want %d", id, gi.ID)
	}
	pgi, err := ParseManifest(mb)
	if err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	if pgi.ID != gi.ID || pgi.CorpusSHA256 != gi.CorpusSHA256 || len(pgi.Segments) != len(gi.Segments) {
		t.Fatalf("parsed manifest %+v does not match saved %+v", pgi, gi)
	}

	replica := open(t, t.TempDir())
	igi, idb, err := replica.Install(mb, shipFetch(primary, id))
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if igi.ID != gi.ID || igi.CorpusSHA256 != gi.CorpusSHA256 {
		t.Fatalf("installed %+v, want %+v", igi, gi)
	}
	if !bytes.Equal(bulkBytes(t, idb), bulkBytes(t, db)) {
		t.Fatal("installed corpus differs from the shipped one")
	}

	// The replica's store is now warm-bootable on its own.
	back, lgi, _, err := replica.Load()
	if err != nil {
		t.Fatalf("replica load: %v", err)
	}
	if lgi.ID != gi.ID || !bytes.Equal(bulkBytes(t, back), bulkBytes(t, db)) {
		t.Fatal("replica warm boot does not reproduce the shipped corpus")
	}

	// Re-installing the same generation is refused (idempotence).
	if _, _, err := replica.Install(mb, shipFetch(primary, id)); !errors.Is(err, os.ErrExist) {
		t.Fatalf("re-install: err = %v, want os.ErrExist", err)
	}
}

// TestInstallRejectsCorruptDownload flips bits in (or truncates) a
// fetched segment and asserts Install refuses to commit anything.
func TestInstallRejectsCorruptDownload(t *testing.T) {
	db := corpus(t)
	primary := open(t, t.TempDir(), WithSegmentTarget(16<<10), WithBlockLicenses(8))
	gi, err := primary.Save(db, "primary gen")
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	mb, id, err := primary.ExportManifest(0)
	if err != nil {
		t.Fatalf("export manifest: %v", err)
	}

	for _, mode := range []string{"bitflip", "truncate"} {
		replica := open(t, t.TempDir())
		target := gi.Segments[len(gi.Segments)/2].Name
		fetch := func(name string) ([]byte, error) {
			data, err := primary.ReadSegmentRaw(id, name)
			if err != nil || name != target {
				return data, err
			}
			if mode == "bitflip" {
				return synth.FlipBits(data, 7, 3), nil
			}
			return data[:len(data)/2], nil
		}
		_, _, err := replica.Install(mb, fetch)
		if !errors.Is(err, ErrVerify) {
			t.Fatalf("%s: install err = %v, want ErrVerify", mode, err)
		}
		// Nothing committed, no temp debris.
		if latest, _ := replica.LatestID(); latest != 0 {
			t.Fatalf("%s: replica committed generation %d from corrupt download", mode, latest)
		}
		ents, _ := os.ReadDir(replica.Dir())
		for _, e := range ents {
			t.Errorf("%s: debris left in replica store: %s", mode, e.Name())
		}
	}
}

// TestGCReaderRace is the issue's GC-vs-concurrent-reader guarantee: a
// replica mid-pull of the oldest generation races `gc -keep`; the pull
// must either complete from intact files or fail cleanly with a
// retryable error — never hand over a half-deleted generation.
func TestGCReaderRace(t *testing.T) {
	db := corpus(t)
	primary := open(t, t.TempDir(), WithSegmentTarget(8<<10), WithBlockLicenses(8))
	for i := 0; i < 3; i++ {
		if _, err := primary.Save(db, fmt.Sprintf("gen %d", i+1)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}

	// Deterministic interleaving first: manifest exported, then GC
	// sweeps the generation, then the segment read lands on air.
	mb, _, err := primary.ExportManifest(1)
	if err != nil {
		t.Fatalf("export manifest 1: %v", err)
	}
	pgi, err := ParseManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.GC(1); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if _, err := primary.ReadSegmentRaw(1, pgi.Segments[0].Name); !IsRetryable(err) {
		t.Fatalf("segment read after GC: err = %v, want retryable ErrGenGone", err)
	}
	if _, _, err := primary.ExportManifest(1); !IsRetryable(err) {
		t.Fatalf("manifest read after GC: err = %v, want retryable ErrGenGone", err)
	}

	// Now the racing version: a replica pulls the oldest live
	// generation in a loop while GC(keep=1) runs concurrently after
	// every fresh Save. Every pull must either install a fully-verified
	// corpus or fail with an error the puller can classify (retryable
	// gone, or a fetch error wrapping it); ErrVerify here would mean a
	// half-deleted generation leaked through the read side.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn: new generations + GC pressure
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := primary.Save(db, fmt.Sprintf("churn %d", i)); err != nil {
				t.Errorf("churn save: %v", err)
				return
			}
			if _, err := primary.GC(1); err != nil {
				t.Errorf("churn gc: %v", err)
				return
			}
		}
	}()

	installed, retried := 0, 0
	for i := 0; i < 40; i++ {
		replica := open(t, t.TempDir())
		// Pull whatever is oldest right now — maximally exposed to GC.
		ids, err := primary.manifestIDs()
		if err != nil || len(ids) == 0 {
			continue
		}
		oldest := ids[len(ids)-1]
		mb, _, err := primary.ExportManifest(oldest)
		if err != nil {
			if !IsRetryable(err) {
				t.Fatalf("pull %d: manifest export failed non-retryably: %v", i, err)
			}
			retried++
			continue
		}
		_, idb, err := replica.Install(mb, shipFetch(primary, oldest))
		switch {
		case err == nil:
			if !bytes.Equal(bulkBytes(t, idb), bulkBytes(t, db)) {
				t.Fatalf("pull %d: installed corpus differs from the published one", i)
			}
			installed++
		case IsRetryable(err):
			retried++
		case errors.Is(err, ErrVerify):
			t.Fatalf("pull %d: verification failure under GC churn (half-deleted generation leaked): %v", i, err)
		default:
			t.Fatalf("pull %d: unexpected install error: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	t.Logf("gc race: %d pulls installed verified, %d failed retryably", installed, retried)
	if installed == 0 {
		t.Error("no pull ever completed — the race harness starved the reader")
	}
}
