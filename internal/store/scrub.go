package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Anti-entropy scrubbing.
//
// Install and boot verify a generation once; bit-rot after that point
// is only caught when the generation is next loaded — which for a
// long-serving replica is never. The Scrubber closes that gap: a
// throttled background walk over every committed generation running
// the same deep ladder Fsck uses (exact size, whole-file SHA-256,
// block CRC32C chain), segment by segment, with a configurable pause
// between files so scrubbing never competes with serving for disk
// bandwidth.
//
// The repair ladder, in order:
//
//  1. a corrupt segment is re-fetched from a peer (the injected
//     SegmentFetch; in the fleet, any member whose manifest for the
//     generation carries the same corpus digest). The replacement is
//     verified against the manifest's exact size and SHA-256 *before*
//     anything on disk moves; only then is the corrupt original moved
//     into quarantine/ (kept for forensics) and the verified bytes
//     renamed into place — repair in place, no restart;
//  2. a segment no peer can supply stays on disk and is retried every
//     cycle (counted Unrepaired) — boot's Load already falls back to
//     the previous generation if the process restarts meanwhile;
//  3. after QuarantineAfter consecutive failed cycles the whole
//     generation is moved into quarantine/ so the store returns to
//     fsck-clean — unless it is the only committed generation, which
//     is never auto-quarantined (the last copy beats a clean report).
//
// The quarantine/ subdirectory is invisible to Load, List, Fsck, GC,
// and the temp sweeps: none of their directory scans match its name,
// and none recurse into it.

// quarantineDirName is the store subdirectory holding quarantined
// artifacts: corrupt segment originals preserved by repair, and whole
// generations moved aside by QuarantineGeneration.
const quarantineDirName = "quarantine"

// SegmentFetch returns the raw bytes of one segment of one generation
// from somewhere else — a fleet peer, a backup, a test stub. The
// caller verifies the result against the manifest entry; the fetcher
// only has to find a candidate copy.
type SegmentFetch func(ctx context.Context, gen GenInfo, seg SegmentInfo) ([]byte, error)

// ScrubConfig configures a Scrubber.
type ScrubConfig struct {
	// Interval between full-store scrub cycles. Default 1m.
	Interval time.Duration
	// Pause between segment verifications inside a cycle — the
	// throttle that keeps scrubbing off the serving path's disk
	// bandwidth. Default 2ms.
	Pause time.Duration
	// Fetch supplies replacement bytes for a corrupt segment. Nil
	// means detect-only: corruption is counted but never repaired.
	Fetch SegmentFetch
	// QuarantineAfter moves a whole generation into quarantine/ once
	// one of its segments (or its manifest) has stayed unrepairable
	// for this many consecutive cycles. 0 disables auto-quarantine.
	QuarantineAfter int
}

// ScrubStatus is a Scrubber's cumulative account, for /statsz.
type ScrubStatus struct {
	Cycles      int64 `json:"cycles"`
	Segments    int64 `json:"segments"`    // segment verifications run
	Corrupt     int64 `json:"corrupt"`     // corruption detections (segments + manifests)
	Repaired    int64 `json:"repaired"`    // segments repaired in place from a peer
	Quarantined int64 `json:"quarantined"` // corrupt segment originals moved aside by repair
	Unrepaired  int64 `json:"unrepaired"`  // detections left in place for the next cycle
	// GenerationsQuarantined counts whole generations moved aside
	// after exhausting the repair ladder.
	GenerationsQuarantined int64  `json:"generations_quarantined"`
	LastError              string `json:"last_error,omitempty"`
	LastRepair             string `json:"last_repair,omitempty"`
}

// Scrubber runs the background anti-entropy walk over one Store.
type Scrubber struct {
	st  *Store
	cfg ScrubConfig

	mu     sync.Mutex
	status ScrubStatus
	misses map[string]int // "gen/segment" -> consecutive unrepaired cycles
}

// NewScrubber builds a scrubber over st. Call Run to start it, or
// ScrubOnce for a single synchronous cycle (tests, fsck tooling).
func NewScrubber(st *Store, cfg ScrubConfig) *Scrubber {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	if cfg.Pause <= 0 {
		cfg.Pause = 2 * time.Millisecond
	}
	return &Scrubber{st: st, cfg: cfg, misses: make(map[string]int)}
}

// Status returns a snapshot of the cumulative counters.
func (sc *Scrubber) Status() ScrubStatus {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.status
}

// Run scrubs on the configured interval until ctx is cancelled.
func (sc *Scrubber) Run(ctx context.Context) {
	t := time.NewTicker(sc.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			sc.ScrubOnce(ctx)
		}
	}
}

// ScrubOnce walks every committed generation once, verifying each
// segment on the deep Fsck ladder and repairing what it can. It
// returns early (with ctx.Err) on cancellation; all other failures are
// recorded in the status counters rather than returned, because a
// scrub cycle is best-effort by design.
func (sc *Scrubber) ScrubOnce(ctx context.Context) error {
	ids, err := sc.st.manifestIDs()
	if err != nil {
		sc.note(func(st *ScrubStatus) { st.LastError = err.Error() })
		return err
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		m, err := sc.st.loadManifest(id)
		if err != nil {
			if errors.Is(err, ErrGenGone) {
				continue // GC swept it mid-walk
			}
			// An unreadable manifest poisons the generation whole and
			// cannot be repaired segment-wise; it rides the same
			// miss-counted ladder toward quarantine.
			sc.note(func(st *ScrubStatus) {
				st.Corrupt++
				st.LastError = fmt.Sprintf("gen %d manifest: %v", id, err)
			})
			sc.miss(id, "manifest", len(ids))
			continue
		}
		gi := m.info()
		for _, si := range m.Segments {
			if err := ctx.Err(); err != nil {
				return err
			}
			sc.scrubSegment(ctx, m, gi, si, len(ids))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(sc.cfg.Pause):
			}
		}
	}
	sc.note(func(st *ScrubStatus) { st.Cycles++ })
	return nil
}

// scrubSegment verifies one segment and, on corruption, runs the
// repair ladder.
func (sc *Scrubber) scrubSegment(ctx context.Context, m *manifest, gi GenInfo, si SegmentInfo, committed int) {
	id := m.Generation
	path := filepath.Join(sc.st.dir, genDirName(id), si.Name)
	_, verr := readSegment(path, si, true)
	sc.note(func(st *ScrubStatus) { st.Segments++ })
	if verr == nil {
		sc.clearMiss(id, si.Name)
		return
	}
	if errors.Is(verr, os.ErrNotExist) {
		// Segment file gone: either GC swept the generation (manifest
		// gone too — not corruption) or the file itself vanished
		// (corruption, repairable like any other bad segment).
		if _, err := os.Stat(filepath.Join(sc.st.dir, manifestName(id))); err != nil {
			return
		}
	}
	sc.note(func(st *ScrubStatus) {
		st.Corrupt++
		st.LastError = fmt.Sprintf("gen %d %s: %v", id, si.Name, verr)
	})
	if sc.cfg.Fetch == nil {
		sc.miss(id, si.Name, committed)
		return
	}
	data, ferr := sc.cfg.Fetch(ctx, gi, si)
	if ferr != nil {
		sc.note(func(st *ScrubStatus) {
			st.LastError = fmt.Sprintf("gen %d %s: fetch: %v", id, si.Name, ferr)
		})
		sc.miss(id, si.Name, committed)
		return
	}
	if int64(len(data)) != si.Bytes || segmentDigest(data) != si.SHA256 {
		sc.note(func(st *ScrubStatus) {
			st.LastError = fmt.Sprintf("gen %d %s: peer copy failed verification", id, si.Name)
		})
		sc.miss(id, si.Name, committed)
		return
	}
	quarantined, rerr := sc.st.repairSegment(id, si, data)
	if rerr != nil {
		if errors.Is(rerr, ErrGenGone) {
			sc.clearMiss(id, si.Name)
			return
		}
		sc.note(func(st *ScrubStatus) {
			st.LastError = fmt.Sprintf("gen %d %s: repair: %v", id, si.Name, rerr)
		})
		sc.miss(id, si.Name, committed)
		return
	}
	sc.note(func(st *ScrubStatus) {
		st.Repaired++
		if quarantined {
			st.Quarantined++
		}
		st.LastRepair = fmt.Sprintf("gen %d %s", id, si.Name)
	})
	sc.clearMiss(id, si.Name)
}

func (sc *Scrubber) note(f func(*ScrubStatus)) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	f(&sc.status)
}

// miss records one unrepaired detection and, once a segment has
// missed QuarantineAfter consecutive cycles, moves the whole
// generation aside — unless it is the only committed one.
func (sc *Scrubber) miss(id int64, what string, committed int) {
	key := fmt.Sprintf("%d/%s", id, what)
	sc.mu.Lock()
	sc.status.Unrepaired++
	sc.misses[key]++
	hit := sc.cfg.QuarantineAfter > 0 && sc.misses[key] >= sc.cfg.QuarantineAfter
	sc.mu.Unlock()
	if !hit || committed <= 1 {
		return
	}
	if err := sc.st.QuarantineGeneration(id); err != nil {
		sc.note(func(st *ScrubStatus) {
			st.LastError = fmt.Sprintf("gen %d: quarantine: %v", id, err)
		})
		return
	}
	sc.mu.Lock()
	sc.status.GenerationsQuarantined++
	prefix := fmt.Sprintf("%d/", id)
	for k := range sc.misses {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(sc.misses, k)
		}
	}
	sc.mu.Unlock()
}

func (sc *Scrubber) clearMiss(id int64, what string) {
	key := fmt.Sprintf("%d/%s", id, what)
	sc.mu.Lock()
	delete(sc.misses, key)
	sc.mu.Unlock()
}

// repairSegment atomically replaces one committed segment with
// verified replacement bytes: the corrupt original moves into
// quarantine/ (when still present), the replacement is written and
// fsynced beside the generation, then renamed into place with a
// directory sync. It runs under the store lock so it cannot
// interleave with Save, Install, or GC; a generation GC'd meanwhile
// returns ErrGenGone untouched. A crash between the quarantine move
// and the rename leaves the segment missing — exactly the state
// Load's fall-back and the next scrub cycle already handle.
func (s *Store) repairSegment(id int64, si SegmentInfo, data []byte) (quarantined bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	if _, err := os.Stat(filepath.Join(s.dir, manifestName(id))); err != nil {
		return false, fmt.Errorf("%w: generation %d", ErrGenGone, id)
	}
	genDir := filepath.Join(s.dir, genDirName(id))
	final := filepath.Join(genDir, si.Name)
	qdir := filepath.Join(s.dir, quarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return false, fmt.Errorf("store: creating quarantine dir: %w", err)
	}
	qdst := filepath.Join(qdir, genDirName(id)+"-"+si.Name)
	switch err := os.Rename(final, qdst); {
	case err == nil:
		quarantined = true
	case os.IsNotExist(err):
		// Nothing on disk to preserve (the corruption was a missing
		// file); the repair still lands below.
	default:
		return false, fmt.Errorf("store: quarantining %s: %w", si.Name, err)
	}
	tmp := final + ".tmp"
	if err := s.writeFileSync(tmp, data); err != nil {
		return quarantined, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return quarantined, fmt.Errorf("store: committing repaired segment: %w", err)
	}
	if err := syncDir(genDir); err != nil {
		return quarantined, fmt.Errorf("store: syncing %s: %w", genDir, err)
	}
	return quarantined, nil
}

// QuarantineGeneration moves one committed generation — manifest,
// segment directory, keyframe sidecar — into the store's quarantine/
// subdirectory, uncommitting it. The manifest moves first, so a crash
// mid-quarantine leaves at worst an orphan segment directory, which
// GC already sweeps. Quarantined artifacts are invisible to Load,
// List, Fsck, and GC; operators inspect or delete them offline.
// A generation with nothing on disk returns ErrGenGone.
func (s *Store) QuarantineGeneration(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if id <= 0 {
		return fmt.Errorf("store: bad generation id %d", id)
	}
	qdir := filepath.Join(s.dir, quarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: creating quarantine dir: %w", err)
	}
	moved := false
	for _, name := range []string{manifestName(id), genDirName(id), keyframeName(id)} {
		src := filepath.Join(s.dir, name)
		if _, err := os.Stat(src); err != nil {
			continue
		}
		dst := filepath.Join(qdir, name)
		os.RemoveAll(dst) // a prior quarantine of a reused id
		if err := os.Rename(src, dst); err != nil {
			return fmt.Errorf("store: quarantining %s: %w", name, err)
		}
		moved = true
	}
	if !moved {
		return fmt.Errorf("%w: generation %d", ErrGenGone, id)
	}
	syncDir(s.dir)
	return nil
}
