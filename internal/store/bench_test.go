package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

// E20: warm boot (recover the checksummed binary generation from the
// store) vs cold boot (re-ingest the dirty bulk file through lenient
// parsing and the integrity pass — what every restart paid before the
// store existed). See EXPERIMENTS.md E20 for recorded numbers.

// BenchmarkWarmBoot measures Open+Load of the newest generation,
// checksum verification included.
func BenchmarkWarmBoot(b *testing.B) {
	db := corpus(b)
	dir := b.TempDir()
	s := open(b, dir)
	if _, err := s.Save(db, "bench"); err != nil {
		b.Fatalf("save: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		recovered, _, _, err := s.Load()
		if err != nil {
			b.Fatal(err)
		}
		if recovered.Len() != db.Len() {
			b.Fatalf("recovered %d licenses, want %d", recovered.Len(), db.Len())
		}
	}
}

// BenchmarkColdBoot measures what a warm boot replaces: lenient
// re-ingestion of a realistically dirty bulk extract plus the
// cross-record integrity pass with repair.
func BenchmarkColdBoot(b *testing.B) {
	db := corpus(b)
	c := synth.Corrupt(db, synth.Profile{
		Name: "mixed", Rate: 0.25,
		GarbleW: 3, TruncateW: 2, DuplicateW: 2, ReorderW: 1, ShredW: 2,
	}, 1)
	// The bulk file is read from disk each boot, as the warm path's
	// segments are.
	path := filepath.Join(b.TempDir(), "bulk.txt")
	if err := os.WriteFile(path, c.Dirty, 0o644); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := os.ReadFile(path)
		if err != nil {
			b.Fatal(err)
		}
		got, _, err := uls.ReadBulkWithOptions(bytes.NewReader(data),
			uls.ReadBulkOptions{Mode: uls.Lenient})
		if err != nil {
			b.Fatal(err)
		}
		uls.Validate(got, uls.ValidateOptions{Repair: true})
		if got.Len() == 0 {
			b.Fatal("empty salvage")
		}
	}
}

// BenchmarkColdBootClean is the lower bound for any text-based boot:
// strict parsing of a perfectly clean bulk file, no salvage, no
// integrity pass.
func BenchmarkColdBootClean(b *testing.B) {
	db := corpus(b)
	var buf bytes.Buffer
	if err := uls.WriteBulk(&buf, db); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := uls.ReadBulk(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != db.Len() {
			b.Fatal("lost licenses")
		}
	}
}
