package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Load edge cases: whatever is (or is not) on disk, Load must return a
// clean RecoveryReport — never a panic, never a partial corpus.

func TestLoadEmptyDirReportsClean(t *testing.T) {
	s := open(t, t.TempDir())
	db, gi, rep, err := s.Load()
	if !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("err = %v, want ErrNoGeneration", err)
	}
	if db != nil || gi != nil {
		t.Fatal("empty store must not return a corpus")
	}
	if rep == nil || rep.Scanned != 0 || rep.Served != 0 || len(rep.Discarded) != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestLoadMissingSegmentDiscardsGeneration(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir, WithSegmentTarget(16<<10), WithBlockLicenses(8))
	gi, err := s.Save(db, "gen one")
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, genDirName(gi.ID), gi.Segments[0].Name)); err != nil {
		t.Fatalf("remove segment: %v", err)
	}
	got, lgi, rep, err := s.Load()
	if !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("err = %v, want ErrNoGeneration", err)
	}
	if got != nil || lgi != nil {
		t.Fatal("generation with a missing segment must not serve a partial corpus")
	}
	if rep.Scanned != 1 || len(rep.Discarded) != 1 || rep.Discarded[0].ID != gi.ID {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestLoadQuarantinedOnlyDirReportsClean(t *testing.T) {
	db := corpus(t)
	dir := t.TempDir()
	s := open(t, dir)
	gi, err := s.Save(db, "gen one")
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := s.QuarantineGeneration(gi.ID); err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	got, lgi, rep, err := s.Load()
	if !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("err = %v, want ErrNoGeneration", err)
	}
	if got != nil || lgi != nil {
		t.Fatal("quarantined-only store must not return a corpus")
	}
	if rep.Scanned != 0 || len(rep.Discarded) != 0 {
		t.Fatalf("quarantined artifacts leaked into recovery: %+v", rep)
	}
	// Reopening over the same dir must not resurrect or sweep the
	// quarantined generation either.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2 := open(t, dir)
	if _, _, _, err := s2.Load(); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("reopened err = %v, want ErrNoGeneration", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDirName, manifestName(gi.ID))); err != nil {
		t.Fatalf("reopen disturbed quarantine: %v", err)
	}
}
