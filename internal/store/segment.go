package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
)

// Segment file format.
//
// A segment is a sequence of framed record blocks:
//
//	magic "HFTSEG1\n" (8 bytes)
//	repeat: u32 payload length | u32 CRC32C(payload) | payload
//
// The CRC catches torn or flipped bytes inside one block; the
// manifest's exact byte count catches a segment truncated or extended
// at a frame boundary (every CRC fine, data missing); a corrupted
// frame header either breaks the framing outright or shifts the CRC
// window off its payload. Together the shallow checks cover every byte
// of the file, so the boot path stops there — hashing 400KB of segment
// through SHA-256 was the single largest line in the warm-boot
// profile. The manifest still records each segment's SHA-256: Fsck
// (and hftstore fsck) verifies it, pinning the exact published bytes
// against multi-field corruption that a per-block CRC could in
// principle be collided past.

var segMagic = []byte("HFTSEG1\n")

// castagnoli is the CRC32C polynomial table (the checksum storage
// systems conventionally use; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxBlockBytes bounds a single block frame; a corrupt length prefix
// must not drive a giant allocation.
const maxBlockBytes = 64 << 20

// appendBlockFrame frames one payload into buf.
func appendBlockFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// segmentDigest is the hex SHA-256 of a segment's full byte content.
func segmentDigest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// readSegment verifies and unframes one segment file against its
// manifest entry: size, magic, then every block CRC — plus, when deep,
// the whole-file SHA-256 (the Fsck scrub; the boot path relies on the
// CRC chain, see the format comment above). It returns the block
// payloads; any failure poisons the whole segment (and with it the
// generation).
func readSegment(path string, want SegmentInfo, deep bool) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading segment: %w", err)
	}
	if int64(len(data)) != want.Bytes {
		return nil, fmt.Errorf("store: segment %s is %d bytes, manifest says %d",
			want.Name, len(data), want.Bytes)
	}
	if deep {
		if got := segmentDigest(data); got != want.SHA256 {
			return nil, fmt.Errorf("store: segment %s SHA-256 mismatch (%s != %s)",
				want.Name, got[:12], want.SHA256[:min(12, len(want.SHA256))])
		}
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic) {
		return nil, fmt.Errorf("store: segment %s has bad magic", want.Name)
	}
	data = data[len(segMagic):]
	var blocks [][]byte
	for len(data) > 0 {
		if len(data) < 8 {
			return nil, fmt.Errorf("store: segment %s: truncated block frame", want.Name)
		}
		n := binary.LittleEndian.Uint32(data)
		sum := binary.LittleEndian.Uint32(data[4:])
		if n > maxBlockBytes {
			return nil, fmt.Errorf("store: segment %s: block length %d exceeds %d", want.Name, n, maxBlockBytes)
		}
		if len(data) < 8+int(n) {
			return nil, fmt.Errorf("store: segment %s: block overruns segment", want.Name)
		}
		payload := data[8 : 8+int(n)]
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			return nil, fmt.Errorf("store: segment %s: block CRC32C mismatch (%08x != %08x)",
				want.Name, got, sum)
		}
		blocks = append(blocks, payload)
		data = data[8+int(n):]
	}
	return blocks, nil
}
