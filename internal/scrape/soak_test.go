package scrape

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hftnetview/internal/uls"
	"hftnetview/internal/ulsserver"
	"hftnetview/internal/ulsserver/chaos"
)

// bulkBytes serializes a database in the canonical bulk form, the
// byte-identity yardstick for soak runs.
func bulkBytes(t *testing.T, db *uls.Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := uls.WriteBulk(&buf, db); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// soakClient returns a client tuned for fast test runs: aggressive
// retries, millisecond backoffs, and a per-request timeout big enough
// for the chaos profile's hangs but small enough to not stall the
// suite.
func soakClient(baseURL string) *Client {
	c := NewClient(baseURL)
	c.MaxRetries = 12
	c.RetryBackoff = time.Millisecond
	c.MaxBackoff = 20 * time.Millisecond
	c.RequestTimeout = 2 * time.Second
	return c
}

// faultFreeReference runs the funnel against a clean portal once and
// caches the canonical bulk bytes.
var faultFreeRef []byte

func referenceBulk(t *testing.T) []byte {
	t.Helper()
	if faultFreeRef != nil {
		return faultFreeRef
	}
	ts := httptest.NewServer(ulsserver.New(corpusDB(t)))
	defer ts.Close()
	db, funnel, err := Run(context.Background(), soakClient(ts.URL), DefaultPipelineOptions())
	if err != nil {
		t.Fatalf("fault-free reference run: %v", err)
	}
	if len(funnel.Failed) != 0 || len(funnel.FailedLicensees) != 0 {
		t.Fatalf("fault-free run recorded failures: %+v", funnel)
	}
	faultFreeRef = bulkBytes(t, db)
	return faultFreeRef
}

func TestSoakFunnelUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow in -short mode")
	}
	want := referenceBulk(t)

	// The full §2.2 funnel against a portal injecting ~20% mixed faults
	// (429/503 bursts/hangs/truncation/garbage). With retries, backoff,
	// and per-license fault tolerance the scraped corpus must come out
	// byte-identical to the fault-free run — no missing licenses, no
	// corrupted fields, no duplicates.
	profile := chaos.Flaky(20260806)
	if profile.FaultRate() < 0.20 {
		t.Fatalf("flaky profile injects %.0f%%, soak wants >= 20%%", 100*profile.FaultRate())
	}
	inj := chaos.Wrap(ulsserver.New(corpusDB(t)), profile)
	ts := httptest.NewServer(inj)
	defer ts.Close()

	db, funnel, err := Run(context.Background(), soakClient(ts.URL), DefaultPipelineOptions())
	if err != nil {
		t.Fatalf("soak run failed outright: %v", err)
	}
	if len(funnel.Failed) != 0 {
		t.Fatalf("licenses abandoned despite retries: %+v", funnel.Failed)
	}
	if len(funnel.FailedLicensees) != 0 {
		t.Fatalf("licensees abandoned despite retries: %v", funnel.FailedLicensees)
	}
	stats := inj.Stats()
	if stats.Faults() == 0 {
		t.Fatal("chaos injected nothing; soak proved nothing")
	}
	t.Logf("chaos: %s", stats)
	if got := bulkBytes(t, db); !bytes.Equal(got, want) {
		t.Errorf("scraped corpus differs from fault-free run: %d vs %d bytes", len(got), len(want))
	}
}

func TestSoakInterruptAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow in -short mode")
	}
	want := referenceBulk(t)
	journal := filepath.Join(t.TempDir(), "scrape.journal")

	// Phase 1: run against a chaotic portal and kill the run mid-scrape
	// by cancelling the context after a fixed number of detail-page
	// requests have been answered.
	inj := chaos.Wrap(ulsserver.New(corpusDB(t)), chaos.Flaky(7))
	ctx, cancel := context.WithCancel(context.Background())
	var detailServed atomic.Int64
	killer := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inj.ServeHTTP(w, r)
		if strings.HasPrefix(r.URL.Path, "/license/") && detailServed.Add(1) == 40 {
			cancel() // forced mid-run interruption
		}
	})
	ts := httptest.NewServer(killer)
	defer ts.Close()

	opts := DefaultPipelineOptions()
	opts.CheckpointPath = journal
	_, funnel1, err := Run(ctx, soakClient(ts.URL), opts)
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	// The interruption must not zero out progress already made.
	if funnel1.GeographicMatches == 0 || funnel1.Shortlisted == 0 {
		t.Fatalf("interrupted funnel lost its progress: %+v", funnel1)
	}

	// Phase 2: resume with the same options. The journal supplies the
	// plan and the completed licenses; only the remainder is scraped.
	db, funnel2, err := Run(context.Background(), soakClient(ts.URL), opts)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if funnel2.ResumedLicenses == 0 {
		t.Error("resume scraped everything from scratch; journal unused")
	}
	if funnel2.ResumedLicenses+funnel2.LicensesScraped != db.Len() {
		t.Errorf("resumed %d + scraped %d != stored %d",
			funnel2.ResumedLicenses, funnel2.LicensesScraped, db.Len())
	}
	if len(funnel2.Failed) != 0 {
		t.Fatalf("resumed run abandoned licenses: %+v", funnel2.Failed)
	}
	// The decisive assertion: interrupted-then-resumed equals fault-free,
	// byte for byte.
	if got := bulkBytes(t, db); !bytes.Equal(got, want) {
		t.Errorf("resumed corpus differs from fault-free run: %d vs %d bytes", len(got), len(want))
	}
	// And the funnel counters must match the §2.2 ground truth.
	if funnel2.Candidates != 57 || funnel2.Shortlisted != 29 {
		t.Errorf("funnel = %d candidates / %d shortlisted, want 57 / 29",
			funnel2.Candidates, funnel2.Shortlisted)
	}
}

func TestSoakResumeAfterSearchPhaseFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow in -short mode")
	}
	want := referenceBulk(t)
	journal := filepath.Join(t.TempDir(), "scrape.journal")

	// A portal that dies entirely before the plan is complete: the run
	// fails, the journal holds no plan, and a later run against a
	// healthy portal starts clean and still converges.
	inner := ulsserver.New(corpusDB(t))
	var alive atomic.Bool
	gate := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !alive.Load() {
			http.Error(w, "gone", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(gate)
	defer ts.Close()

	opts := DefaultPipelineOptions()
	opts.CheckpointPath = journal
	c := soakClient(ts.URL)
	c.MaxRetries = 1
	if _, _, err := Run(context.Background(), c, opts); err == nil {
		t.Fatal("run against a dead portal succeeded")
	}
	alive.Store(true)
	db, funnel, err := Run(context.Background(), soakClient(ts.URL), opts)
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if funnel.ResumedLicenses != 0 {
		t.Errorf("resumed %d licenses from a journal that never had a plan", funnel.ResumedLicenses)
	}
	if got := bulkBytes(t, db); !bytes.Equal(got, want) {
		t.Error("recovery corpus differs from fault-free run")
	}
}
