package scrape

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hftnetview/internal/uls"
)

// The checkpoint journal makes a long scrape resumable: an append-only
// file of JSON lines recording first the funnel plan (the search-phase
// results that determine exactly which detail pages will be fetched)
// and then one record per detail page scraped or abandoned. A run that
// is interrupted — crash, ^C, network death — can be restarted with the
// same options and portal and will skip straight to the unfetched
// remainder. Records are self-delimiting lines, so a crash mid-write
// costs at most the final, truncated line, which loading ignores.
//
// Journal layout:
//
//	{"type":"plan","portal":...,"options":{...},"geographic_matches":N,
//	 "candidates":N,"shortlisted":[...],"licenses_by_name":{...}}
//	{"type":"license","license":{...}}
//	{"type":"failed","call_sign":...,"class":...,"error":...}
//
// "failed" records are informational; resuming retries those call
// signs, because a fault that killed one run may be gone in the next.
//
// Durability: every append is flushed and fsynced before the worker
// that scraped the page moves on, so a completed detail page survives
// not just a process crash but a machine crash. On open, a journal
// carrying dead weight — failed records, corrupt lines, licenses
// superseded by a later re-scrape — is compacted: the surviving state
// (plan + completed licenses) is rewritten to a temp file in the same
// directory, fsynced, and atomically renamed over the original, so a
// crash mid-compaction leaves the old journal intact.

// ErrCheckpointMismatch reports a journal whose plan was recorded for a
// different portal or different pipeline options — resuming it would
// silently mix corpora.
var ErrCheckpointMismatch = errors.New("scrape: checkpoint journal does not match this run")

// planKey is the identity of a funnel run: resuming requires an exact
// match so a journal can never graft one corpus onto another.
type planKey struct {
	Portal     string  `json:"portal"`
	CenterLat  float64 `json:"center_lat"`
	CenterLon  float64 `json:"center_lon"`
	RadiusKM   float64 `json:"radius_km"`
	Service    string  `json:"service"`
	Class      string  `json:"class"`
	MinFilings int     `json:"min_filings"`
}

func makePlanKey(baseURL string, opts PipelineOptions) planKey {
	return planKey{
		Portal:     baseURL,
		CenterLat:  opts.CenterLat,
		CenterLon:  opts.CenterLon,
		RadiusKM:   opts.RadiusKM,
		Service:    opts.Service,
		Class:      opts.Class,
		MinFilings: opts.MinFilings,
	}
}

// journalRecord is one line of the checkpoint file.
type journalRecord struct {
	Type string `json:"type"`

	// Plan fields.
	Options           *planKey                  `json:"options,omitempty"`
	GeographicMatches int                       `json:"geographic_matches,omitempty"`
	Candidates        int                       `json:"candidates,omitempty"`
	Shortlisted       []string                  `json:"shortlisted,omitempty"`
	LicensesByName    map[string][]SearchResult `json:"licenses_by_name,omitempty"`

	// License fields.
	License *uls.License `json:"license,omitempty"`

	// Failure fields.
	CallSign string `json:"call_sign,omitempty"`
	Class    string `json:"class,omitempty"`
	Error    string `json:"error,omitempty"`
}

// checkpointState is what a loaded journal contributes to a resuming
// run.
type checkpointState struct {
	plan      *journalRecord          // nil when the journal has no plan yet
	completed map[string]*uls.License // call sign -> parsed license
	skipped   int                     // corrupt journal lines ignored on load
	lines     int                     // non-blank journal lines seen on load
	truncated bool                    // journal ended in a partial line
}

// compactable reports whether rewriting the journal would shrink it:
// any line that is not the plan or a current completed license —
// corrupt lines, failed records, superseded duplicates — is dead
// weight a resume no longer needs. A truncated tail also forces a
// rewrite; appending after a partial line would otherwise weld the
// next record onto it and lose both.
func (st *checkpointState) compactable() bool {
	if st.truncated {
		return true
	}
	keep := len(st.completed)
	if st.plan != nil {
		keep++
	}
	return st.lines > keep
}

// checkpoint appends journal records; it is safe for concurrent use by
// the detail-page workers.
type checkpoint struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openCheckpoint loads whatever a journal already holds and opens it
// for appending. A missing file is an empty journal. The caller must
// verify the loaded plan against its own planKey before trusting the
// completed set.
func openCheckpoint(path string) (*checkpoint, checkpointState, error) {
	// Sweep a temp file stranded by a crash mid-compaction: the rename
	// never happened, so the original journal is the truth.
	os.Remove(path + compactSuffix)

	state := checkpointState{completed: make(map[string]*uls.License)}
	if data, err := os.ReadFile(path); err == nil {
		loadJournal(data, &state)
		if state.compactable() {
			if err := compactJournal(path, &state); err != nil {
				return nil, state, fmt.Errorf("scrape: compacting checkpoint %s: %w", path, err)
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, state, fmt.Errorf("scrape: reading checkpoint %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, state, fmt.Errorf("scrape: opening checkpoint %s: %w", path, err)
	}
	return &checkpoint{f: f, w: bufio.NewWriter(f)}, state, nil
}

// compactSuffix names the rewrite-in-progress file next to the
// journal; same directory, so the final rename is atomic.
const compactSuffix = ".compact.tmp"

// compactJournal rewrites the journal as exactly the loaded state —
// the plan record followed by the completed licenses in call-sign
// order — via fsynced temp file and atomic rename. Either the old
// journal or the new one exists at every instant; a crash anywhere in
// here costs nothing but the cleanup openCheckpoint already does.
func compactJournal(path string, state *checkpointState) error {
	tmp := path + compactSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after a successful rename

	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	write := func(rec *journalRecord) error { return enc.Encode(rec) }
	if state.plan != nil {
		if err := write(state.plan); err != nil {
			f.Close()
			return err
		}
	}
	signs := make([]string, 0, len(state.completed))
	for cs := range state.completed {
		signs = append(signs, cs)
	}
	sort.Strings(signs)
	for _, cs := range signs {
		if err := write(&journalRecord{Type: "license", License: state.completed[cs]}); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	// The journal now holds exactly what the state describes; skipped
	// stays as loaded so the run can still report the damage it healed.
	state.lines = len(state.completed)
	if state.plan != nil {
		state.lines++
	}
	state.truncated = false
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best effort: some filesystems refuse directory fsync, and the
// rename itself already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// loadJournal replays journal lines into state, line by line and
// leniently — the same salvage discipline uls.ReadBulkWithOptions
// applies to bulk corpora. A truncated final line (the signature of a
// crash mid-append) is ignored; a corrupt line anywhere else — garbage
// JSON, a license record that fails Validate, an unknown record type —
// is skipped and counted in state.skipped rather than killing the
// resume. Skipping is always safe: a lost "license" record simply gets
// that call sign re-scraped, and a lost plan re-runs the search phase
// against the same portal and options.
func loadJournal(data []byte, state *checkpointState) {
	// Drop the trailing partial line (no final newline) silently: it is
	// an interrupted append, not corruption.
	if n := len(data); n > 0 && data[n-1] != '\n' {
		state.truncated = true
		if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
			data = data[:i+1]
		} else {
			data = nil
		}
	}
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		state.lines++
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			state.skipped++
			continue
		}
		switch rec.Type {
		case "plan":
			r := rec
			state.plan = &r
		case "license":
			if rec.License == nil || rec.License.Validate() != nil {
				state.skipped++
				continue
			}
			state.completed[rec.License.CallSign] = rec.License
		case "failed":
			// Informational only — resuming retries failures.
		default:
			state.skipped++
		}
	}
}

// append writes one record, flushes it to the OS, and fsyncs it to
// the disk, so not even a machine crash can lose it. A scrape is
// network-bound — one fsync per detail page is noise next to the
// fetch that produced it.
func (cp *checkpoint) append(rec journalRecord) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	enc := json.NewEncoder(cp.w)
	if err := enc.Encode(rec); err != nil {
		return fmt.Errorf("scrape: appending checkpoint record: %w", err)
	}
	if err := cp.w.Flush(); err != nil {
		return fmt.Errorf("scrape: flushing checkpoint: %w", err)
	}
	if err := cp.f.Sync(); err != nil {
		return fmt.Errorf("scrape: syncing checkpoint: %w", err)
	}
	return nil
}

func (cp *checkpoint) writePlan(key planKey, funnel Funnel, byName map[string][]SearchResult) error {
	return cp.append(journalRecord{
		Type:              "plan",
		Options:           &key,
		GeographicMatches: funnel.GeographicMatches,
		Candidates:        funnel.Candidates,
		Shortlisted:       funnel.ShortlistedNames,
		LicensesByName:    byName,
	})
}

func (cp *checkpoint) writeLicense(l *uls.License) error {
	return cp.append(journalRecord{Type: "license", License: l})
}

func (cp *checkpoint) writeFailure(f DetailFailure) error {
	return cp.append(journalRecord{Type: "failed", CallSign: f.CallSign, Class: f.Class, Error: f.Err})
}

func (cp *checkpoint) close() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if err := cp.w.Flush(); err != nil {
		cp.f.Close()
		return err
	}
	if err := cp.f.Sync(); err != nil {
		cp.f.Close()
		return err
	}
	return cp.f.Close()
}
