package scrape

import "testing"

// FuzzParseDetailHTML asserts the detail-page parser never panics on
// arbitrary HTML, and that whatever it accepts is a valid license.
func FuzzParseDetailHTML(f *testing.F) {
	seeds := []string{
		"",
		"<html><body>no tables</body></html>",
		`<table><tr><td>Call Sign</td><td>WQAA001</td></tr>
<tr><td>Licensee</td><td>Net</td></tr>
<tr><td>Grant Date</td><td>06/01/2015</td></tr>
<tr><th>Loc</th><th>Latitude</th><th>Longitude</th><th>Ground Elev (m)</th><th>Height (m)</th></tr>
<tr><td>1</td><td>41-45-00.0 N</td><td>88-12-00.0 W</td><td>200.0</td><td>100.0</td></tr>
<tr><td>2</td><td>41-42-00.0 N</td><td>87-42-00.0 W</td><td>190.0</td><td>100.0</td></tr>
<tr><th>Path</th><th>TX Loc</th><th>RX Loc</th><th>Class</th><th>Frequencies (MHz)</th></tr>
<tr><td>1</td><td>1</td><td>2</td><td>FXO</td><td>11245.0</td></tr></table>`,
		"<tr><td>Call Sign</td>",
		"<tr>" + "<td>x</td>",
		"<tr><td>Grant Date</td><td>13/99/0000</td></tr>",
		"<tr><th>Loc</th></tr><tr><td>1</td><td>a</td><td>b</td><td>c</td><td>d</td></tr>",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, page []byte) {
		l, err := ParseDetailHTML(page)
		if err != nil {
			return
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid license: %v", err)
		}
	})
}
