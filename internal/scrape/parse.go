package scrape

import (
	"fmt"
	"strconv"
	"strings"

	"hftnetview/internal/geo"
	"hftnetview/internal/uls"
)

// ParseDetailHTML extracts a license from a portal detail page. The
// parser walks the page's <tr> rows with plain string operations —
// the portal's markup is fixed-format, so a full HTML parser is
// unnecessary (and the stdlib has none).
func ParseDetailHTML(page []byte) (*uls.License, error) {
	rows := tableRows(string(page))
	if len(rows) == 0 {
		return nil, fmt.Errorf("scrape: detail page has no table rows")
	}

	l := &uls.License{}
	section := "license"
	for _, cells := range rows {
		if len(cells) == 0 {
			continue
		}
		// Header rows switch sections.
		if cells[0] == "Loc" {
			section = "locations"
			continue
		}
		if cells[0] == "Path" {
			section = "paths"
			continue
		}
		switch section {
		case "license":
			if len(cells) != 2 {
				continue
			}
			if err := applyHeaderField(l, cells[0], cells[1]); err != nil {
				return nil, err
			}
		case "locations":
			if len(cells) != 5 {
				return nil, fmt.Errorf("scrape: malformed location row %v", cells)
			}
			loc, err := parseLocationRow(cells)
			if err != nil {
				return nil, err
			}
			l.Locations = append(l.Locations, loc)
		case "paths":
			if len(cells) != 8 {
				return nil, fmt.Errorf("scrape: malformed path row %v", cells)
			}
			p, err := parsePathRow(cells)
			if err != nil {
				return nil, err
			}
			l.Paths = append(l.Paths, p)
		}
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("scrape: scraped license invalid: %w", err)
	}
	return l, nil
}

// tableRows extracts the cell texts of every <tr> on the page. Both
// <td> and <th> cells are returned; markup inside cells is not expected.
func tableRows(page string) [][]string {
	var rows [][]string
	rest := page
	for {
		start := strings.Index(rest, "<tr>")
		if start < 0 {
			break
		}
		end := strings.Index(rest[start:], "</tr>")
		if end < 0 {
			break
		}
		row := rest[start+4 : start+end]
		rest = rest[start+end+5:]
		rows = append(rows, rowCells(row))
	}
	return rows
}

func rowCells(row string) []string {
	var cells []string
	rest := row
	for {
		tdStart, tag := -1, ""
		for _, t := range []string{"<td>", "<th>"} {
			if i := strings.Index(rest, t); i >= 0 && (tdStart < 0 || i < tdStart) {
				tdStart, tag = i, t
			}
		}
		if tdStart < 0 {
			break
		}
		closeTag := "</td>"
		if tag == "<th>" {
			closeTag = "</th>"
		}
		end := strings.Index(rest[tdStart:], closeTag)
		if end < 0 {
			break
		}
		cell := rest[tdStart+4 : tdStart+end]
		rest = rest[tdStart+end+5:]
		cells = append(cells, htmlUnescape(strings.TrimSpace(cell)))
	}
	return cells
}

// htmlUnescape reverses html.EscapeString's five entities.
func htmlUnescape(s string) string {
	r := strings.NewReplacer(
		"&lt;", "<", "&gt;", ">", "&#34;", `"`, "&#39;", "'", "&amp;", "&",
	)
	return r.Replace(s)
}

func applyHeaderField(l *uls.License, label, value string) error {
	switch label {
	case "Call Sign":
		l.CallSign = value
	case "Licensee":
		l.Licensee = value
	case "FRN":
		l.FRN = value
	case "Contact Email":
		l.ContactEmail = value
	case "Radio Service":
		l.RadioService = value
	case "Status":
		l.Status = uls.Status(value)
	case "License ID":
		id, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("scrape: bad license id %q", value)
		}
		l.LicenseID = id
	case "Grant Date", "Expiration Date", "Cancellation Date":
		d, err := uls.ParseDate(value)
		if err != nil {
			return fmt.Errorf("scrape: bad %s %q: %w", label, value, err)
		}
		switch label {
		case "Grant Date":
			l.Grant = d
		case "Expiration Date":
			l.Expiration = d
		case "Cancellation Date":
			l.Cancellation = d
		}
	}
	return nil
}

func parseLocationRow(cells []string) (uls.Location, error) {
	num, err := strconv.Atoi(cells[0])
	if err != nil {
		return uls.Location{}, fmt.Errorf("scrape: bad location number %q", cells[0])
	}
	lat, err := geo.ParseDMS(cells[1])
	if err != nil {
		return uls.Location{}, err
	}
	lon, err := geo.ParseDMS(cells[2])
	if err != nil {
		return uls.Location{}, err
	}
	pt, err := geo.PointFromDMS(lat, lon)
	if err != nil {
		return uls.Location{}, err
	}
	elev, err := strconv.ParseFloat(cells[3], 64)
	if err != nil {
		return uls.Location{}, fmt.Errorf("scrape: bad elevation %q", cells[3])
	}
	height, err := strconv.ParseFloat(cells[4], 64)
	if err != nil {
		return uls.Location{}, fmt.Errorf("scrape: bad height %q", cells[4])
	}
	return uls.Location{
		Number: num, Point: pt, GroundElevation: elev, SupportHeight: height,
	}, nil
}

func parsePathRow(cells []string) (uls.Path, error) {
	num, err := strconv.Atoi(cells[0])
	if err != nil {
		return uls.Path{}, fmt.Errorf("scrape: bad path number %q", cells[0])
	}
	tx, err := strconv.Atoi(cells[1])
	if err != nil {
		return uls.Path{}, fmt.Errorf("scrape: bad TX location %q", cells[1])
	}
	rx, err := strconv.Atoi(cells[2])
	if err != nil {
		return uls.Path{}, fmt.Errorf("scrape: bad RX location %q", cells[2])
	}
	txAz, err := strconv.ParseFloat(cells[4], 64)
	if err != nil {
		return uls.Path{}, fmt.Errorf("scrape: bad TX azimuth %q", cells[4])
	}
	rxAz, err := strconv.ParseFloat(cells[5], 64)
	if err != nil {
		return uls.Path{}, fmt.Errorf("scrape: bad RX azimuth %q", cells[5])
	}
	gain, err := strconv.ParseFloat(cells[6], 64)
	if err != nil {
		return uls.Path{}, fmt.Errorf("scrape: bad antenna gain %q", cells[6])
	}
	p := uls.Path{Number: num, TXLocation: tx, RXLocation: rx, StationClass: cells[3],
		TXAzimuthDeg: txAz, RXAzimuthDeg: rxAz, AntennaGainDBi: gain}
	for _, f := range strings.Split(cells[7], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		mhz, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return uls.Path{}, fmt.Errorf("scrape: bad frequency %q", f)
		}
		p.FrequenciesMHz = append(p.FrequenciesMHz, mhz)
	}
	return p, nil
}
