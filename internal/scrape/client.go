// Package scrape implements the paper's data-collection methodology
// (§2.2) against a ULS portal: geographic search around the CME data
// center, site-based filtering to the MG radio service and FXO station
// class, per-licensee license enumeration with the ≥11-filings cutoff,
// and per-license detail-page scraping.
//
// The client is polite and paranoid by construction — a minimum
// inter-request interval, jittered exponential backoff that honors
// Retry-After, per-request timeouts, and an overall retry budget —
// because the same code is meant to be pointable at a real portal that
// throttles, hangs, and serves partial pages. It is safe for concurrent
// use by multiple goroutines.
package scrape

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// Client is a rate-limited, retrying ULS portal client. All exported
// fields must be set before first use; a Client is then safe for
// concurrent use.
type Client struct {
	// BaseURL is the portal root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MinInterval is the minimum spacing between requests across all
	// goroutines sharing the client (0 = none).
	MinInterval time.Duration
	// MaxRetries bounds retries on retryable failures: 429/5xx statuses,
	// transport errors, truncated bodies, and undecodable JSON. 0 means
	// "no retries" — fail on the first error; negative values behave
	// like 0. NewClient defaults it to 3.
	MaxRetries int
	// RetryBackoff is the base backoff, doubled per attempt and jittered
	// into [½, 1]× of the nominal value (default 50 ms). A Retry-After
	// header on a 429/503 overrides the computed backoff when longer.
	RetryBackoff time.Duration
	// MaxBackoff caps a single backoff sleep (default 5 s).
	MaxBackoff time.Duration
	// RequestTimeout bounds each individual request attempt, so a portal
	// that hangs mid-response costs one attempt, not the whole scrape
	// (0 = no per-attempt bound).
	RequestTimeout time.Duration
	// RetryBudget bounds the total wall-clock time one logical fetch may
	// spend across attempts and backoffs (0 = unbounded). When the
	// budget would be exceeded by the next backoff, the fetch fails with
	// an error wrapping ErrBudgetExhausted.
	RetryBudget time.Duration

	mu          sync.Mutex
	lastRequest time.Time
	rng         *rand.Rand
}

// NewClient returns a client with sane defaults for a local simulated
// portal (no rate limit, 3 retries, no per-request timeout).
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:      baseURL,
		HTTPClient:   http.DefaultClient,
		MaxRetries:   3,
		RetryBackoff: 50 * time.Millisecond,
	}
}

// SearchResult mirrors the portal's search row.
type SearchResult struct {
	CallSign string `json:"call_sign"`
	Licensee string `json:"licensee"`
	Service  string `json:"radio_service"`
	Status   string `json:"status"`
}

type searchPage struct {
	Total   int            `json:"total"`
	Page    int            `json:"page"`
	PerPage int            `json:"per_page"`
	Results []SearchResult `json:"results"`
}

// ErrBudgetExhausted marks a fetch abandoned because RetryBudget ran
// out before a retryable failure resolved.
var ErrBudgetExhausted = errors.New("scrape: retry budget exhausted")

// HTTPError is an HTTP-status failure. 4xx (other than 429) statuses
// are terminal; 429 and 5xx are retried.
type HTTPError struct {
	URL        string
	StatusCode int
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("scrape: %s: status %d", e.URL, e.StatusCode)
}

// MalformedResponseError is a 200 response whose body failed
// validation (e.g. undecodable JSON from a portal mid-deploy). It is
// retried like a 5xx: the next attempt usually gets a good copy.
type MalformedResponseError struct {
	URL    string
	Reason string
}

func (e *MalformedResponseError) Error() string {
	return fmt.Sprintf("scrape: %s: malformed response: %s", e.URL, e.Reason)
}

// reserveSlot blocks until this request's MinInterval slot arrives,
// spacing requests across all goroutines sharing the client.
func (c *Client) reserveSlot(ctx context.Context) error {
	if c.MinInterval <= 0 {
		return nil
	}
	c.mu.Lock()
	now := time.Now()
	slot := c.lastRequest.Add(c.MinInterval)
	if slot.Before(now) {
		slot = now
	}
	c.lastRequest = slot
	c.mu.Unlock()
	if wait := time.Until(slot); wait > 0 {
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// jitter maps a nominal backoff into [½, 1]× of itself so synchronized
// clients don't stampede a recovering portal in lockstep.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	j := c.rng.Int63n(int64(d) / 2)
	c.mu.Unlock()
	return d/2 + time.Duration(j)
}

// backoffFor computes the sleep before the given retry attempt
// (attempt >= 1), honoring a server-provided Retry-After when longer.
func (c *Client) backoffFor(attempt int, retryAfter time.Duration) time.Duration {
	base := c.RetryBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	d = c.jitter(d)
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads a Retry-After header: integer seconds or an
// HTTP date. Returns 0 when absent or unparseable.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// get fetches a URL with rate limiting and retries; it returns the body.
func (c *Client) get(ctx context.Context, u string) ([]byte, error) {
	return c.getChecked(ctx, u, nil)
}

// getChecked is get with an optional body validator: a 200 whose body
// fails check is treated as a retryable MalformedResponseError, which
// is how truncated-but-complete-looking and garbage payloads from a
// flaky portal get healed by the retry loop.
func (c *Client) getChecked(ctx context.Context, u string, check func([]byte) error) ([]byte, error) {
	client := c.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	retries := c.MaxRetries
	if retries < 0 {
		retries = 0
	}
	start := time.Now()
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			wait := c.backoffFor(attempt, retryAfter)
			if c.RetryBudget > 0 && time.Since(start)+wait > c.RetryBudget {
				return nil, fmt.Errorf("scrape: %s: %w after %d attempts: %w",
					u, ErrBudgetExhausted, attempt, lastErr)
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		retryAfter = 0
		if err := c.reserveSlot(ctx); err != nil {
			return nil, err
		}

		body, status, header, err := c.do(ctx, client, u)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		switch {
		case status == http.StatusOK:
			if check != nil {
				if cerr := check(body); cerr != nil {
					lastErr = &MalformedResponseError{URL: u, Reason: cerr.Error()}
					continue
				}
			}
			return body, nil
		case status == http.StatusTooManyRequests || status >= 500:
			lastErr = &HTTPError{URL: u, StatusCode: status}
			retryAfter = parseRetryAfter(header)
			continue
		default:
			return nil, &HTTPError{URL: u, StatusCode: status}
		}
	}
	return nil, fmt.Errorf("scrape: %s: retries exhausted: %w", u, lastErr)
}

// do performs one request attempt under RequestTimeout.
func (c *Client) do(ctx context.Context, client *http.Client, u string) (body []byte, status int, header http.Header, err error) {
	attemptCtx := ctx
	if c.RequestTimeout > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeout(ctx, c.RequestTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("scrape: building request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		// Truncated mid-body (short write against Content-Length, reset
		// connection, ...): retryable transport failure.
		return nil, 0, nil, err
	}
	return body, resp.StatusCode, resp.Header, nil
}

// getJSON fetches u and decodes it into v, retrying undecodable bodies.
func (c *Client) getJSON(ctx context.Context, u string, v any) error {
	body, err := c.getChecked(ctx, u, func(b []byte) error {
		if !json.Valid(b) {
			return errors.New("invalid JSON")
		}
		return nil
	})
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// TruncatedResultsError reports a search whose portal claimed more
// results than it ultimately served — a lying, mutating, or endlessly
// paginating portal. The partial results accompany the error.
type TruncatedResultsError struct {
	Path     string
	Reported int // the portal's final Total claim
	Got      int // distinct results actually collected
}

func (e *TruncatedResultsError) Error() string {
	return fmt.Sprintf("scrape: %s: portal reported %d results but served %d",
		e.Path, e.Reported, e.Got)
}

// maxSearchPages is a hard ceiling on pages fetched per search,
// independent of whatever Total the portal claims. At 200 rows per
// page this allows two million results — far beyond any plausible
// corpus, but finite when a portal's Total field lies or drifts.
const maxSearchPages = 10_000

// searchAll pages through one search endpoint until all results are
// collected. The page loop is capped, repeated call signs across pages
// are deduplicated (overlapping pages happen when the corpus shifts
// under the crawl), and a portal that reports more results than it
// serves yields the partial results plus a *TruncatedResultsError.
func (c *Client) searchAll(ctx context.Context, path string, params url.Values) ([]SearchResult, error) {
	var out []SearchResult
	seen := make(map[string]bool)
	perPage := 200
	reported := 0
	for page := 1; page <= maxSearchPages; page++ {
		p := url.Values{}
		for k, vs := range params {
			p[k] = vs
		}
		p.Set("page", strconv.Itoa(page))
		p.Set("per_page", strconv.Itoa(perPage))
		var sp searchPage
		if err := c.getJSON(ctx, c.BaseURL+path+"?"+p.Encode(), &sp); err != nil {
			return out, fmt.Errorf("scrape: %s page %d: %w", path, page, err)
		}
		reported = sp.Total
		for _, r := range sp.Results {
			if seen[r.CallSign] {
				continue
			}
			seen[r.CallSign] = true
			out = append(out, r)
		}
		if len(out) >= sp.Total {
			return out, nil
		}
		if len(sp.Results) == 0 {
			// Portal claims more results but has no more pages to give.
			return out, &TruncatedResultsError{Path: path, Reported: sp.Total, Got: len(out)}
		}
	}
	return out, &TruncatedResultsError{Path: path, Reported: reported, Got: len(out)}
}

// GeographicSearch finds licenses with any site within radiusKM of the
// given coordinate (§2.1's geographic search).
func (c *Client) GeographicSearch(ctx context.Context, lat, lon, radiusKM float64) ([]SearchResult, error) {
	return c.searchAll(ctx, "/api/geographic", url.Values{
		"lat":       {strconv.FormatFloat(lat, 'f', -1, 64)},
		"lon":       {strconv.FormatFloat(lon, 'f', -1, 64)},
		"radius_km": {strconv.FormatFloat(radiusKM, 'f', -1, 64)},
	})
}

// SiteSearch filters by radio service code and station class (§2.1's
// site-based search).
func (c *Client) SiteSearch(ctx context.Context, service, class string) ([]SearchResult, error) {
	return c.searchAll(ctx, "/api/site", url.Values{
		"service": {service},
		"class":   {class},
	})
}

// LicenseeSearch lists all licenses filed by an entity name.
func (c *Client) LicenseeSearch(ctx context.Context, name string) ([]SearchResult, error) {
	return c.searchAll(ctx, "/api/licensee", url.Values{"name": {name}})
}

// FetchDetailHTML retrieves the raw license detail page.
func (c *Client) FetchDetailHTML(ctx context.Context, callSign string) ([]byte, error) {
	return c.get(ctx, c.BaseURL+"/license/"+url.PathEscape(callSign))
}
